examples/benchmark_stats.ml: Array Filename Float Format List Printf Tb_core Tb_derby Tb_query Tb_sim Tb_statdb Tb_store
