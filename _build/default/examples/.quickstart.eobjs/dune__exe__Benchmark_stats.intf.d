examples/benchmark_stats.mli:
