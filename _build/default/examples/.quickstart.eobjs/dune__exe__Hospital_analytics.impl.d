examples/hospital_analytics.ml: Array List Printf String Tb_core Tb_derby Tb_query Tb_sim
