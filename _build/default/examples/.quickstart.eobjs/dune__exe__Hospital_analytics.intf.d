examples/hospital_analytics.mli:
