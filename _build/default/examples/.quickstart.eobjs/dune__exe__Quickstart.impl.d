examples/quickstart.ml: Array Format List Printf Tb_core Tb_derby Tb_query Tb_sim Tb_store
