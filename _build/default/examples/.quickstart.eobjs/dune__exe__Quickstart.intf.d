examples/quickstart.mli:
