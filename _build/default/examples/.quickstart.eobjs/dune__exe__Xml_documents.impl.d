examples/xml_documents.ml: Array Format List Printf Tb_query Tb_sim Tb_store
