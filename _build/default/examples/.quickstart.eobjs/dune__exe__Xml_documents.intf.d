examples/xml_documents.mli:
