(* The Section 3.3 workflow: run experiments, store every result as a Stat
   object in an object database, then use the query language to analyse
   them and export for plotting.

     dune exec examples/benchmark_stats.exe *)

module Generator = Tb_derby.Generator
module Plan = Tb_query.Plan

let () =
  let store = Tb_statdb.Stat_store.create () in
  (* Declare the extents of the measured database, with their link ratio,
     as Figure 3's Extent class records them. *)
  let scale = 300 in
  let cfg = Generator.config ~scale `Deep Generator.Class_clustered in
  let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg in
  ignore
    (Tb_statdb.Stat_store.register_extent store ~classname:"Provider"
       ~size:(Array.length b.Generator.providers) ~links:[]);
  ignore
    (Tb_statdb.Stat_store.register_extent store ~classname:"Patient"
       ~size:(Array.length b.Generator.patients)
       ~links:[ ("Provider", cfg.Generator.fanout) ]);

  (* A little experiment campaign: 4 algorithms x 3 selectivities. *)
  let numtest = ref 0 in
  List.iter
    (fun sel ->
      List.iter
        (fun algo ->
          let nc = Array.length b.Generator.patients in
          let np = Array.length b.Generator.providers in
          let q =
            Printf.sprintf
              "select [p.name, pa.age] from p in Providers, pa in p.clients \
               where pa.mrn < %d and p.upin < %d"
              (sel * nc / 100) (sel * np / 100)
          in
          let m =
            Tb_core.Measurement.run_cold b.Generator.db q
              ~force_algo:algo ~force_sorted:true
              ~label:(Plan.algo_name algo)
          in
          incr numtest;
          ignore
            (Tb_statdb.Stat_store.record store
               (Tb_core.Measurement.to_observation m ~numtest:!numtest
                  ~query_text:q ~selectivity:sel ~database:"deep/300"
                  ~cluster:"class" ~algo:(Plan.algo_name algo)
                  ~server_cache_pages:cfg.Generator.server_pages
                  ~client_cache_pages:cfg.Generator.client_pages)))
        [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ ])
    [ 10; 50; 90 ];
  Printf.printf "Recorded %d Stat objects.\n\n" (Tb_statdb.Stat_store.count store);

  (* "Once in a database, benchmark results are really easy to process.
     Notably, a query language can be used to extract the information you
     are looking for." *)
  let oql = "select [s.algo, s.ElapsedTimeMs] from s in Stats where s.numtest < 5" in
  Printf.printf "%s\n" oql;
  let r = Tb_statdb.Stat_store.query store oql in
  List.iter
    (fun v -> Format.printf "  %a@." Tb_store.Value.pp v)
    (Tb_query.Query_result.sample r);
  Tb_query.Query_result.dispose r;

  (* Slowest runs, straight from the observations. *)
  Printf.printf "\nslowest three runs:\n";
  let by_time =
    List.sort
      (fun a b ->
        Float.compare b.Tb_statdb.Stat_store.elapsed_s
          a.Tb_statdb.Stat_store.elapsed_s)
      (Tb_statdb.Stat_store.observations store)
  in
  List.iteri
    (fun i o ->
      if i < 3 then
        Printf.printf "  %-8s sel=%2d%%  %8.2f s\n" o.Tb_statdb.Stat_store.algo
          o.Tb_statdb.Stat_store.selectivity o.Tb_statdb.Stat_store.elapsed_s)
    by_time;

  (* Export for the data-analysis / Gnuplot step the authors used YAT for. *)
  let path = Filename.temp_file "treebench" ".csv" in
  let oc = open_out path in
  output_string oc (Tb_statdb.Stat_store.to_csv store);
  close_out oc;
  Printf.printf "\nCSV exported to %s\n" path
