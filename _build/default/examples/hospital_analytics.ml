(* Hospital analytics: the workload the paper's schema models.

   An analyst wants, over a large medical database, the (provider, patient)
   pairs matching selectivity cut-offs — and the DBA wants to know which
   physical design and join strategy to pick.  This example runs the same
   question against two physical organizations and all four algorithms, then
   shows what the cost-based optimizer would have picked.

     dune exec examples/hospital_analytics.exe *)

module Generator = Tb_derby.Generator
module Plan = Tb_query.Plan

let scale = 200

let question b =
  let nc = Array.length b.Generator.patients in
  let np = Array.length b.Generator.providers in
  (* "Young patients of the first quarter of providers." *)
  Printf.sprintf
    "select [p.name, pa.age] from p in Providers, pa in p.clients where \
     pa.mrn < %d and p.upin < %d"
    (nc / 2) (np / 4)

let run_one org name =
  let cfg = Generator.config ~scale `Deep org in
  let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg in
  let q = question b in
  Printf.printf "\n-- physical organization: %s --\n" name;
  let times =
    List.map
      (fun algo ->
        let m =
          Tb_core.Measurement.run_cold b.Generator.db q
            ~organization:(Generator.estimate_organization b.Generator.cfg)
            ~force_algo:algo ~force_sorted:true
            ~label:(Plan.algo_name algo)
        in
        Printf.printf "  %-8s %8.2f sim-seconds  (%d rows, %d page reads)\n"
          (Plan.algo_name algo) m.Tb_core.Measurement.elapsed_s
          m.Tb_core.Measurement.result_count m.Tb_core.Measurement.disk_reads;
        (algo, m.Tb_core.Measurement.elapsed_s))
      [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ ]
  in
  let best =
    fst (List.fold_left (fun (ba, bt) (a, t) -> if t < bt then (a, t) else (ba, bt))
           (Plan.NL, infinity) times)
  in
  (* What would the optimizer have done on its own? *)
  let chosen =
    Tb_query.Planner.plan b.Generator.db
      ~organization:(Generator.estimate_organization b.Generator.cfg)
      (Tb_query.Oql_parser.parse q)
  in
  let chosen_algo =
    match chosen with
    | Plan.Hier_join { algo; _ } -> Plan.algo_name algo
    | Plan.Selection _ -> "selection"
  in
  Printf.printf "  measured best: %s — cost-based optimizer picked: %s%s\n"
    (Plan.algo_name best) chosen_algo
    (if String.equal (Plan.algo_name best) chosen_algo then "  [agreed]"
     else "  [disagreed]")

let () =
  Printf.printf
    "Hospital analytics on the Derby schema (1/%d of the paper's 1,000,000x3 \
     database).\n"
    scale;
  run_one Generator.Class_clustered "one file per class";
  run_one Generator.Composition "patients clustered behind their provider";
  Printf.printf
    "\nMoral (Section 5): the right join strategy is a property of the \
     physical design,\nnot of the query — class clustering wants hash joins, \
     composition clustering wants navigation.\n"
