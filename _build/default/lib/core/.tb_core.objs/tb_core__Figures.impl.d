lib/core/figures.ml: Array Float Format List Measurement Option Paper_ref Printf Table_fmt Tb_derby Tb_oo7 Tb_query Tb_sim Tb_statdb Tb_store
