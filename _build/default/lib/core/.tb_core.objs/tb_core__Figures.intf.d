lib/core/figures.mli: Format Tb_statdb
