lib/core/measurement.ml: Format Tb_query Tb_sim Tb_statdb Tb_store
