lib/core/measurement.mli: Format Tb_query Tb_statdb Tb_store
