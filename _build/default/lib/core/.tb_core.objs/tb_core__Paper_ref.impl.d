lib/core/paper_ref.ml:
