lib/core/paper_ref.mli:
