lib/core/table_fmt.ml: Buffer Float List Printf String
