lib/core/table_fmt.mli:
