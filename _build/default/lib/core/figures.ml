module Generator = Tb_derby.Generator
module Database = Tb_store.Database
module Plan = Tb_query.Plan

type shape = [ `Wide | `Deep ]

type ctx = {
  scale : int;
  stats : Tb_statdb.Stat_store.t;
  mutable builts : ((shape * Generator.organization) * Generator.built) list;
  mutable numtest : int;
}

let create ~scale =
  if scale <= 0 then invalid_arg "Figures.create: scale";
  { scale; stats = Tb_statdb.Stat_store.create (); builts = []; numtest = 0 }

let scale ctx = ctx.scale
let stats ctx = ctx.stats

let shape_name = function `Wide -> "2000x1000" | `Deep -> "1000000x3"

let org_name = function
  | Generator.Class_clustered -> "class"
  | Generator.Randomized -> "random"
  | Generator.Composition -> "composition"
  | Generator.Assoc_ordered -> "assoc"

let built ctx shape org =
  match List.assoc_opt (shape, org) ctx.builts with
  | Some b -> b
  | None ->
      Printf.eprintf "[treebench] building %s / %s at 1/%d scale...\n%!"
        (shape_name shape) (org_name org) ctx.scale;
      let cfg = Generator.config ~scale:ctx.scale shape org in
      let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled ctx.scale) cfg in
      ctx.builts <- ((shape, org), b) :: ctx.builts;
      b

(* Drop cached databases the remaining figures do not need (they hold the
   whole simulated disk in memory). *)
let release ctx shape org =
  ctx.builts <- List.remove_assoc (shape, org) ctx.builts

let record ctx (b : Generator.built) ~algo ~selectivity ~query_text m =
  ctx.numtest <- ctx.numtest + 1;
  ignore
    (Tb_statdb.Stat_store.record ctx.stats
       (Measurement.to_observation m ~numtest:ctx.numtest ~query_text
          ~selectivity
          ~database:(Printf.sprintf "%dx%d" b.Generator.cfg.Generator.n_providers b.Generator.cfg.Generator.fanout)
          ~cluster:(org_name b.Generator.cfg.Generator.organization)
          ~algo
          ~server_cache_pages:b.Generator.cfg.Generator.server_pages
          ~client_cache_pages:b.Generator.cfg.Generator.client_pages))

(* --- join machinery --- *)

let n_patients (b : Generator.built) = Array.length b.Generator.patients
let n_providers (b : Generator.built) = Array.length b.Generator.providers

let join_query b ~sel_pat ~sel_prov =
  let k1 = sel_pat * n_patients b / 100 in
  let k2 = sel_prov * n_providers b / 100 in
  Printf.sprintf
    "select [p.name, pa.age] from p in Providers, pa in p.clients where \
     pa.mrn < %d and p.upin < %d"
    k1 k2

let join_measure ctx shape org algo (sel_pat, sel_prov) =
  let b = built ctx shape org in
  let q = join_query b ~sel_pat ~sel_prov in
  let m =
    Measurement.run_cold b.Generator.db q
      ~organization:(Generator.estimate_organization b.Generator.cfg)
      ~force_algo:algo ~force_sorted:true
      ~label:(Plan.algo_name algo)
  in
  record ctx b ~algo:(Plan.algo_name algo) ~selectivity:sel_pat ~query_text:q m;
  m

let algos = [ Plan.PHJ; Plan.CHJ; Plan.NOJOIN; Plan.NL ]
let cells = [ (10, 10); (10, 90); (90, 10); (90, 90) ]

let join_figure ctx ppf ~title ~shape ~org ~paper =
  Format.fprintf ppf "@.=== %s (measured at 1/%d scale) ===@.@." title ctx.scale;
  List.iter
    (fun cell ->
      let measured =
        List.map
          (fun algo ->
            let m = join_measure ctx shape org algo cell in
            (Plan.algo_name algo, m.Measurement.elapsed_s))
          algos
      in
      let paper_cell =
        Option.map (fun rows -> (cell, List.assoc cell rows)) paper
      in
      Format.fprintf ppf "%s@."
        (Table_fmt.ranked ~title ?paper:paper_cell (cell, measured) ()))
    cells

let fig11 ctx ppf =
  join_figure ctx ppf
    ~title:"Figure 11: One file per Class, 2x10^3 Providers, 2x10^6 Patients"
    ~shape:`Wide ~org:Generator.Class_clustered
    ~paper:(Some (Paper_ref.join_cells `Wide `Class))

let fig12 ctx ppf =
  join_figure ctx ppf
    ~title:"Figure 12: One file per Class, 10^6 Providers, 3x10^6 Patients"
    ~shape:`Deep ~org:Generator.Class_clustered
    ~paper:(Some (Paper_ref.join_cells `Deep `Class))

let fig13 ctx ppf =
  join_figure ctx ppf
    ~title:"Figure 13: Composition Cluster, 2x10^3 Providers, 2x10^6 Patients"
    ~shape:`Wide ~org:Generator.Composition
    ~paper:(Some (Paper_ref.join_cells `Wide `Composition))

let fig14 ctx ppf =
  join_figure ctx ppf
    ~title:"Figure 14: Composition Cluster, 10^6 Providers, 3x10^6 Patients"
    ~shape:`Deep ~org:Generator.Composition
    ~paper:(Some (Paper_ref.join_cells `Deep `Composition))

let fig15 ctx ppf =
  Format.fprintf ppf
    "@.=== Figure 15: Summarizing Results: Winning Algorithms (1/%d scale) \
     ===@.@."
    ctx.scale;
  let orgs =
    [
      (Generator.Randomized, `Random, "Rand. Org.");
      (Generator.Class_clustered, `Class, "Class Cluster");
      (Generator.Composition, `Composition, "Comp. Cluster");
    ]
  in
  let rows = ref [] in
  List.iter
    (fun shape ->
      List.iter
        (fun cell ->
          let sel_pat, sel_prov = cell in
          let row =
            List.concat_map
              (fun (org, porg, _) ->
                let best_name, best_time =
                  List.fold_left
                    (fun (bn, bt) algo ->
                      let m = join_measure ctx shape org algo cell in
                      if m.Measurement.elapsed_s < bt then
                        (Plan.algo_name algo, m.Measurement.elapsed_s)
                      else (bn, bt))
                    ("-", infinity) algos
                in
                let paper_best, paper_time =
                  match
                    List.find_opt
                      (fun (s, o, sp, sq, _, _) ->
                        s = shape && o = porg && sp = sel_pat && sq = sel_prov)
                      Paper_ref.fig15
                  with
                  | Some (_, _, _, _, name, t) -> (name, t)
                  | None -> ("?", 0.0)
                in
                [
                  Printf.sprintf "%s %s" best_name (Table_fmt.secs best_time);
                  Printf.sprintf "%s %s" paper_best (Table_fmt.secs paper_time);
                ])
              orgs
          in
          rows :=
            ([
               (match shape with `Wide -> "1:1000" | `Deep -> "1:3");
               string_of_int sel_pat;
               string_of_int sel_prov;
             ]
            @ row)
            :: !rows)
        cells;
      (* The randomized databases are only needed for this figure. *)
      release ctx shape Generator.Randomized)
    [ `Wide; `Deep ];
  Format.fprintf ppf "%s@."
    (Table_fmt.render ~title:"Best algorithm and time per organization"
       ~header:
         [
           "Rel";
           "Sel.pat";
           "Sel.prov";
           "Rand (ours)";
           "Rand (paper)";
           "Class (ours)";
           "Class (paper)";
           "Comp (ours)";
           "Comp (paper)";
         ]
       (List.rev !rows))

(* --- selections (Figures 6, 7, 9) --- *)

let selection_query b ~sel_permille =
  let k = sel_permille * n_patients b / 1000 in
  Printf.sprintf "select pa.age from pa in Patients where pa.num < %d" k

let selection_measure ctx ~access ~sel_permille =
  let b = built ctx `Wide Generator.Class_clustered in
  let q = selection_query b ~sel_permille in
  let label, force_seq, force_sorted =
    match access with
    | `Scan -> ("no index", true, None)
    | `Index -> ("unclustered index", false, Some false)
    | `Sorted_index -> ("sorted unclustered index", false, Some true)
  in
  let m =
    Measurement.run_cold b.Generator.db q ~force_seq ?force_sorted ~label
  in
  record ctx b ~algo:label ~selectivity:(sel_permille / 10) ~query_text:q m;
  m

let fig6 ctx ppf =
  Format.fprintf ppf
    "@.=== Figure 6 (reconstructed): selection via unclustered index vs no \
     index (1/%d scale) ===@." ctx.scale;
  Format.fprintf ppf
    "(The published table is corrupted in the available copy; structure \
     reconstructed from Section 4.2.@.Anchors: no-index 0.1%% = %.2fs, \
     no-index 90%% = %.2fs on the Sparc 20.)@.@."
    Paper_ref.fig6_scan_lo Paper_ref.fig6_scan_hi;
  let rows =
    List.map
      (fun sel_permille ->
        let idx = selection_measure ctx ~access:`Index ~sel_permille in
        let scan = selection_measure ctx ~access:`Scan ~sel_permille in
        [
          Printf.sprintf "%.1f" (float_of_int sel_permille /. 10.0);
          Table_fmt.secs idx.Measurement.elapsed_s;
          string_of_int idx.Measurement.disk_reads;
          Table_fmt.secs scan.Measurement.elapsed_s;
          string_of_int scan.Measurement.disk_reads;
          (if idx.Measurement.elapsed_s > scan.Measurement.elapsed_s then
             "index loses"
           else "index wins");
        ])
      [ 1; 10; 50; 100; 300; 600; 900 ]
  in
  Format.fprintf ppf "%s@."
    (Table_fmt.render ~title:"Selection on Patients.num (random key)"
       ~header:
         [
           "Sel. %";
           "Index (s)";
           "Index reads";
           "No index (s)";
           "No index reads";
           "Verdict";
         ]
       rows)

let fig7 ctx ppf =
  Format.fprintf ppf
    "@.=== Figure 7: Sorted Unclustered Index vs No Index (1/%d scale) ===@.@."
    ctx.scale;
  let rows =
    List.map
      (fun sel ->
        let sorted = selection_measure ctx ~access:`Sorted_index ~sel_permille:(sel * 10) in
        let scan = selection_measure ctx ~access:`Scan ~sel_permille:(sel * 10) in
        let _, paper_sorted, paper_scan =
          List.find (fun (s, _, _) -> s = sel) Paper_ref.fig7
        in
        [
          string_of_int sel;
          Table_fmt.secs sorted.Measurement.elapsed_s;
          Table_fmt.secs scan.Measurement.elapsed_s;
          Printf.sprintf "%.2f"
            (scan.Measurement.elapsed_s /. sorted.Measurement.elapsed_s);
          Table_fmt.secs paper_sorted;
          Table_fmt.secs paper_scan;
          Printf.sprintf "%.2f" (paper_scan /. paper_sorted);
        ])
      [ 10; 30; 60; 90 ]
  in
  Format.fprintf ppf "%s@."
    (Table_fmt.render ~title:"Sorted unclustered index scan vs full scan"
       ~header:
         [
           "Sel. %";
           "Sorted idx (s)";
           "No index (s)";
           "Speedup";
           "Paper idx";
           "Paper scan";
           "Paper speedup";
         ]
       rows)

let fig9 ctx ppf =
  Format.fprintf ppf
    "@.=== Figure 9: Standard Scan vs Sorted Index Scan, cost decomposition \
     (90%% selectivity, 1/%d scale) ===@.@."
    ctx.scale;
  let scan = selection_measure ctx ~access:`Scan ~sel_permille:900 in
  let sorted = selection_measure ctx ~access:`Sorted_index ~sel_permille:900 in
  let row name f = [ name; string_of_int (f scan); string_of_int (f sorted) ] in
  Format.fprintf ppf "%s@."
    (Table_fmt.render ~title:"Event counts"
       ~header:[ "Event"; "Standard scan"; "Sorted index scan" ]
       [
         row "Page reads (data + index)" (fun m -> m.Measurement.disk_reads);
         row "Handle allocations" (fun m -> m.Measurement.handle_allocs);
         row "Handle frees" (fun m -> m.Measurement.handle_frees);
         row "Predicate comparisons" (fun m -> m.Measurement.comparisons);
         row "Sort comparisons" (fun m -> m.Measurement.sort_comparisons);
         row "Result appends" (fun m -> m.Measurement.result_appends);
       ]);
  Format.fprintf ppf
    "The index scan avoids one Handle get/unreference pair per rejected \
     object@.and pays a Rid sort instead — the Figure 9 trade-off.@."

let fig10 ctx ppf =
  Format.fprintf ppf
    "@.=== Figure 10: Approximation of the hash table sizes ===@.@.";
  (* Model at paper scale, using our hash-table cost structure. *)
  let name_bytes = 19 and age_bytes = 5 and rid_bytes = 8 in
  let model algo providers fanout sel_pat sel_prov =
    let patients = providers * fanout in
    match algo with
    | "PHJ" ->
        let entries = sel_prov * providers / 100 in
        float_of_int
          (entries
          * (name_bytes + rid_bytes + Tb_query.Mem_hash.entry_overhead
           + Tb_query.Mem_hash.group_overhead))
        /. 1048576.0
    | _ ->
        let entries = sel_pat * patients / 100 in
        let groups = min (sel_prov * providers / 100) entries in
        float_of_int
          ((entries * (age_bytes + rid_bytes + Tb_query.Mem_hash.entry_overhead))
          + (groups * Tb_query.Mem_hash.group_overhead))
        /. 1048576.0
  in
  let rows =
    List.map
      (fun (algo, providers, fanout, sel_pat, sel_prov, paper_mb) ->
        let ours = model algo providers fanout sel_pat sel_prov in
        [
          algo;
          string_of_int providers;
          Printf.sprintf "1:%d" fanout;
          string_of_int sel_pat;
          string_of_int sel_prov;
          Printf.sprintf "%.4f" ours;
          Printf.sprintf "%.4f" paper_mb;
        ])
      Paper_ref.fig10
  in
  Format.fprintf ppf "%s@."
    (Table_fmt.render ~title:"Hash table sizes at paper scale (MB)"
       ~header:
         [
           "Algorithm";
           "Providers";
           "Children";
           "Sel.pat %";
           "Sel.prov %";
           "Ours (MB)";
           "Paper (MB)";
         ]
       rows);
  (* Measured peaks at bench scale for the two extreme cells. *)
  let peak shape algo cell =
    let m = join_measure ctx shape Generator.Class_clustered algo cell in
    float_of_int m.Measurement.peak_working_bytes /. 1048576.0
  in
  let measured =
    [
      [ "PHJ"; "1:1000"; "90/90"; Printf.sprintf "%.4f" (peak `Wide Plan.PHJ (90, 90)) ];
      [ "CHJ"; "1:1000"; "90/90"; Printf.sprintf "%.4f" (peak `Wide Plan.CHJ (90, 90)) ];
      [ "PHJ"; "1:3"; "90/90"; Printf.sprintf "%.4f" (peak `Deep Plan.PHJ (90, 90)) ];
      [ "CHJ"; "1:3"; "90/90"; Printf.sprintf "%.4f" (peak `Deep Plan.CHJ (90, 90)) ];
    ]
  in
  Format.fprintf ppf "%s@."
    (Table_fmt.render
       ~title:
         (Printf.sprintf
            "Measured peak working memory at 1/%d scale (hash table + \
             result, MB)"
            ctx.scale)
       ~header:[ "Algorithm"; "Shape"; "Cell"; "Peak (MB)" ]
       measured)

(* --- Section 3.2: loading --- *)

let loading ctx ppf =
  Format.fprintf ppf
    "@.=== Loading the hard way (Section 3.2 ablations, 1/%d scale, 1:3 \
     shape) ===@.@."
    ctx.scale;
  let base = Generator.config ~scale:ctx.scale `Deep Generator.Class_clustered in
  let variants =
    [
      ("tuned: txn off, slotted headers, 32MB client", base);
      ( "standard transactions (log + commits)",
        { base with Generator.txn_mode = Tb_store.Transaction.Standard } );
      ( "unindexed creation (first index reallocates)",
        { base with Generator.indexed_creation = false } );
      ( "default caches (4MB server / 4MB client)",
        { base with Generator.client_pages = base.Generator.server_pages } );
    ]
  in
  let rows =
    List.map
      (fun (name, cfg) ->
        let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled ctx.scale) cfg in
        [ name; Table_fmt.secs b.Generator.load_seconds ])
      variants
  in
  Format.fprintf ppf "%s@."
    (Table_fmt.render ~title:"Load time by configuration"
       ~header:[ "Configuration"; "Load time (sim s)" ]
       rows);
  Format.fprintf ppf
    "The paper's trajectory: 12 hours naive, 5 hours after tuning, 1 hour \
     claimed possible.@.The orderings above reproduce each lesson: \
     transaction-off loading, pre-slotted@.headers, and a large client cache \
     each cut the load time.@."

(* --- Section 4.4: handle ablation --- *)

let handles ctx ppf =
  Format.fprintf ppf
    "@.=== Handles: fat (60-byte, measured) vs compact (proposed), 1/%d \
     scale ===@.@."
    ctx.scale;
  let run kind =
    let cfg =
      {
        (Generator.config ~scale:ctx.scale `Wide Generator.Class_clustered) with
        Generator.handle_kind = kind;
      }
    in
    let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled ctx.scale) cfg in
    let scan =
      Measurement.run_cold b.Generator.db
        (selection_query b ~sel_permille:900)
        ~force_seq:true ~label:"scan"
    in
    let join =
      Measurement.run_cold b.Generator.db
        (join_query b ~sel_pat:90 ~sel_prov:90)
        ~force_algo:Plan.PHJ ~force_sorted:true ~label:"phj"
    in
    (scan.Measurement.elapsed_s, join.Measurement.elapsed_s)
  in
  let fat_scan, fat_join = run Tb_sim.Cost_model.Fat in
  let compact_scan, compact_join = run Tb_sim.Cost_model.Compact in
  Format.fprintf ppf "%s@."
    (Table_fmt.render
       ~title:"Cold associative accesses under each Handle design"
       ~header:[ "Workload"; "Fat (s)"; "Compact (s)"; "Speedup" ]
       [
         [
           "90% selection, no index";
           Table_fmt.secs fat_scan;
           Table_fmt.secs compact_scan;
           Printf.sprintf "%.2fx" (fat_scan /. compact_scan);
         ];
         [
           "PHJ join 90/90";
           Table_fmt.secs fat_join;
           Table_fmt.secs compact_join;
           Printf.sprintf "%.2fx" (fat_join /. compact_join);
         ];
       ]);
  Format.fprintf ppf
    "Section 4.4's conclusion quantified: compacting Handles and \
     bulk-allocating them@.speeds up cold associative accesses without \
     touching warm navigation.@."

(* --- Section 5.3: association-ordered layout --- *)

let assoc ctx ppf =
  Format.fprintf ppf
    "@.=== Association-ordered files (the Section 5.3 alternative), 1/%d \
     scale, 1:3 shape ===@.@."
    ctx.scale;
  List.iter
    (fun cell ->
      let measured org =
        List.map
          (fun algo ->
            let m = join_measure ctx `Deep org algo cell in
            (Plan.algo_name algo, m.Measurement.elapsed_s))
          algos
      in
      let row name t = Printf.sprintf "%s %.2f" name t in
      let best ms =
        match List.sort (fun (_, a) (_, b) -> Float.compare a b) ms with
        | (n, t) :: _ -> row n t
        | [] -> "-"
      in
      let class_ms = measured Generator.Class_clustered in
      let comp_ms = measured Generator.Composition in
      let assoc_ms = measured Generator.Assoc_ordered in
      let sel_pat, sel_prov = cell in
      Format.fprintf ppf "%s@."
        (Table_fmt.render
           ~title:
             (Printf.sprintf "Cell sel.pat %d%% / sel.prov %d%%" sel_pat
                sel_prov)
           ~header:[ "Organization"; "Best"; "NL"; "NOJOIN"; "PHJ"; "CHJ" ]
           (List.map
              (fun (name, ms) ->
                name :: best ms
                :: List.map
                     (fun a -> Table_fmt.secs (List.assoc a ms))
                     [ "NL"; "NOJOIN"; "PHJ"; "CHJ" ])
              [
                ("class", class_ms);
                ("composition", comp_ms);
                ("assoc-ordered", assoc_ms);
              ])))
    cells;
  Format.fprintf ppf
    "Claim check (Section 5.3): assoc-ordered keeps navigation close to \
     composition@.clustering while hash joins and selections stay close to \
     class clustering.@."

(* --- extensions the paper names but never ran --- *)

let hybrid ctx ppf =
  Format.fprintf ppf
    "@.=== Hybrid hashing (the fix Section 5.1 points at but never tested), \
     1/%d scale, 1:3 class clustering ===@.@."
    ctx.scale;
  let extended = algos @ [ Plan.PHHJ; Plan.CHHJ ] in
  List.iter
    (fun cell ->
      let measured =
        List.map
          (fun algo ->
            let m = join_measure ctx `Deep Generator.Class_clustered algo cell in
            (Plan.algo_name algo, m.Measurement.elapsed_s))
          extended
      in
      Format.fprintf ppf "%s@."
        (Table_fmt.ranked
           ~title:"Figure 12 cells with hybrid hash joins added"
           (cell, measured) ()))
    [ (90, 10); (90, 90) ];
  Format.fprintf ppf
    "At 90/90 the in-memory tables outgrow RAM and thrash; the hybrid \
     variants spill whole@.partitions sequentially instead and keep the \
     hash joins competitive with navigation —@.confirming the authors' \
     conjecture that \"the need for hybrid hashing\" was the missing \
     piece.@."

let sortjoin ctx ppf =
  Format.fprintf ppf
    "@.=== Sort-merge joins (\"they proved to be worse [...] and we dropped \
     them\"), 1/%d scale ===@.@."
    ctx.scale;
  let extended = [ Plan.PHJ; Plan.CHJ; Plan.SMJ ] in
  List.iter
    (fun (shape, cell, title) ->
      let measured =
        List.map
          (fun algo ->
            let m = join_measure ctx shape Generator.Class_clustered algo cell in
            (Plan.algo_name algo, m.Measurement.elapsed_s))
          extended
      in
      Format.fprintf ppf "%s@." (Table_fmt.ranked ~title (cell, measured) ()))
    [
      (`Wide, (10, 10), "2x10^3 providers, class clustering");
      (`Deep, (10, 10), "10^6 providers, class clustering");
      (`Deep, (90, 90), "10^6 providers, class clustering, memory-bound");
    ];
  Format.fprintf ppf
    "In the in-memory regime the sort-merge join pays two sorts the hash \
     joins avoid and@.loses, as the authors found before dropping it.  \
     Reproduction bonus the paper missed:@.at 90/90, where the in-memory \
     hash tables thrash, sort-merge's sequential spills make it@.robust — \
     the same property hybrid hashing buys.@."

let costmodel ctx ppf =
  Format.fprintf ppf
    "@.=== Cost-model validation (the paper's original, abandoned goal), \
     1/%d scale ===@.@."
    ctx.scale;
  (* The authors set out to elicit a cost model from benchmark data and
     "failed on both points".  Here the model of lib/query/estimate.ml is
     checked against the simulator: predicted vs measured time per
     algorithm per cell, plus whether the predicted winner is the real
     one. *)
  let shapes = [ (`Wide, "1:1000"); (`Deep, "1:3") ] in
  let hits = ref 0 and total = ref 0 in
  List.iter
    (fun (shape, shape_label) ->
      List.iter
        (fun cell ->
          let sel_pat, sel_prov = cell in
          let b = built ctx shape Generator.Class_clustered in
          let bound =
            Tb_query.Plan.bind b.Generator.db
              (Tb_query.Oql_parser.parse (join_query b ~sel_pat ~sel_prov))
          in
          let env =
            Tb_query.Planner.join_env b.Generator.db bound
              ~organization:(Generator.estimate_organization b.Generator.cfg)
          in
          let rows =
            List.map
              (fun algo ->
                let predicted = Tb_query.Estimate.join_ms env algo /. 1000.0 in
                let measured =
                  (join_measure ctx shape Generator.Class_clustered algo cell)
                    .Measurement.elapsed_s
                in
                (algo, predicted, measured))
              algos
          in
          let best_by f =
            fst
              (List.fold_left
                 (fun (ba, bv) (a, p, m) ->
                   let v = f p m in
                   if v < bv then (a, v) else (ba, bv))
                 (Plan.NL, infinity) rows)
          in
          let predicted_winner = best_by (fun p _ -> p) in
          let measured_winner = best_by (fun _ m -> m) in
          incr total;
          if predicted_winner = measured_winner then incr hits;
          Format.fprintf ppf "%s@."
            (Table_fmt.render
               ~title:
                 (Printf.sprintf
                    "%s class clustering, sel.pat %d%% / sel.prov %d%% — \
                     predicted winner %s, measured winner %s"
                    shape_label sel_pat sel_prov
                    (Plan.algo_name predicted_winner)
                    (Plan.algo_name measured_winner))
               ~header:[ "Algorithm"; "Predicted (s)"; "Measured (s)"; "Pred/Meas" ]
               (List.map
                  (fun (a, p, m) ->
                    [
                      Plan.algo_name a;
                      Table_fmt.secs p;
                      Table_fmt.secs m;
                      Printf.sprintf "%.2f" (p /. m);
                    ])
                  rows)))
        cells)
    shapes;
  Format.fprintf ppf
    "Predicted winner matches the measured winner in %d of %d cells.  The \
     statistics this needs@.(cardinalities, pages, index clustering factors, \
     key histograms, link ratios, memory) are@.exactly the catalog Section 2 \
     says the system should maintain.@."
    !hits !total

let oo7 ctx ppf =
  ignore ctx;
  Format.fprintf ppf
    "@.=== A miniature 007: why the Handle problem went undetected ===@.@.";
  let cost = Tb_sim.Cost_model.scaled 100 in
  let b = Tb_oo7.Oo7.build ~cost Tb_oo7.Oo7.tiny in
  let db = b.Tb_oo7.Oo7.db in
  let sim = Tb_store.Database.sim db in
  Tb_store.Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let visits = Tb_oo7.Oo7.traversal_t1 b in
  let t1_cold = Tb_sim.Sim.elapsed_s sim in
  Tb_sim.Sim.reset sim;
  ignore (Tb_oo7.Oo7.traversal_t1 b);
  let t1_warm = Tb_sim.Sim.elapsed_s sim in
  Tb_store.Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let matched = Tb_oo7.Oo7.query_q ~frac:0.9 b in
  let q_cold = Tb_sim.Sim.elapsed_s sim in
  Format.fprintf ppf "%s@."
    (Table_fmt.render
       ~title:
         (Printf.sprintf
            "007 tiny module (%d atomic-part visits; associative query \
             matches %d parts)"
            visits matched)
       ~header:[ "Workload"; "Time (s)" ]
       [
         [ "T1 traversal, cold"; Table_fmt.secs t1_cold ];
         [ "T1 traversal, warm"; Table_fmt.secs t1_warm ];
         [ "associative count over 90% of parts, cold"; Table_fmt.secs q_cold ];
       ]);
  Format.fprintf ppf
    "The warm traversal — the number 007 leaderboards ranked systems by — \
     runs an order of@.magnitude faster than any cold access and performs \
     no I/O and no Handle allocation.@.A system tuned on T1-style warm \
     numbers never sees the costs Sections 4-5 dissect.@."

let aggregates ctx ppf =
  Format.fprintf ppf
    "@.=== Result construction vs aggregation (the 18-minute collection of \
     Section 4.2), 1/%d scale ===@.@."
    ctx.scale;
  let b = built ctx `Wide Generator.Class_clustered in
  let nc = n_patients b in
  let rows =
    List.map
      (fun sel ->
        let k = sel * nc / 100 in
        let materialize =
          Measurement.run_cold b.Generator.db
            (Printf.sprintf "select pa.age from pa in Patients where pa.num < %d" k)
            ~force_seq:true ~label:"materialize"
        in
        let fold =
          Measurement.run_cold b.Generator.db
            (Printf.sprintf
               "select count(pa.age) from pa in Patients where pa.num < %d" k)
            ~force_seq:true ~label:"count"
        in
        [
          string_of_int sel;
          Table_fmt.secs materialize.Measurement.elapsed_s;
          Table_fmt.secs fold.Measurement.elapsed_s;
          Printf.sprintf "%.2fx"
            (materialize.Measurement.elapsed_s /. fold.Measurement.elapsed_s);
        ])
      [ 10; 50; 90 ]
  in
  Format.fprintf ppf "%s@."
    (Table_fmt.render
       ~title:"Full scan of Patients: materialize ages vs count them"
       ~header:[ "Sel. %"; "Materialize (s)"; "count() (s)"; "Ratio" ]
       rows);
  Format.fprintf ppf
    "Section 4.2 derives ~18 minutes just to construct a collection of 1.8M \
     integers under a@.standard transaction.  Folding the same rows into an \
     aggregate skips that entire cost —@.the single cheapest optimization \
     for analytic queries over O2-style engines.@."

let warm ctx ppf =
  Format.fprintf ppf
    "@.=== Warm navigation vs cold first touch (the object-benchmark bias \
     of Section 4.4), 1/%d scale ===@.@."
    ctx.scale;
  (* The workload object benchmarks measured: repeated pointer-chasing over
     a working set that fits in memory — under both Handle designs, to
     check the paper's "without hurting those of main memory navigation". *)
  let run kind =
    let cfg =
      {
        (Generator.config ~scale:ctx.scale `Deep Generator.Class_clustered) with
        Generator.handle_kind = kind;
      }
    in
    let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled ctx.scale) cfg in
    let db = b.Generator.db in
    let sim = Tb_store.Database.sim db in
    (* A working set small enough that its pages fit the client cache and
       its Handles fit the zombie pool. *)
    let ws_size =
      max 4 (min (cfg.Generator.client_pages / 8) (Array.length b.Generator.providers))
    in
    let working_set = Array.sub b.Generator.providers 0 ws_size in
    let traverse () =
      Array.iter
        (fun prid ->
          let ph = Database.acquire db prid in
          Database.iter_set db (Database.get_att db ph "clients") (fun r ->
              match r with
              | Tb_store.Value.Ref crid ->
                  let ch = Database.acquire db crid in
                  ignore (Database.get_att db ch "age");
                  Database.unref db ch
              | _ -> ());
          Database.unref db ph)
        working_set
    in
    Database.cold_restart db;
    Tb_sim.Sim.reset sim;
    traverse ();
    let cold_s = Tb_sim.Sim.elapsed_s sim in
    Tb_sim.Sim.reset sim;
    traverse ();
    traverse ();
    traverse ();
    let warm_s = Tb_sim.Sim.elapsed_s sim /. 3.0 in
    let warm_reads = sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads in
    let warm_allocs = sim.Tb_sim.Sim.counters.Tb_sim.Counters.handle_allocs in
    (cold_s, warm_s, warm_reads, warm_allocs)
  in
  let fat_cold, fat_warm, fat_reads, fat_allocs = run Tb_sim.Cost_model.Fat in
  let compact_cold, compact_warm, _, _ = run Tb_sim.Cost_model.Compact in
  Format.fprintf ppf "%s@."
    (Table_fmt.render
       ~title:"Traversal of a resident working set of providers and their clients"
       ~header:
         [ "Handles"; "Cold pass (s)"; "Warm pass (s)"; "Warm reads"; "Warm allocs" ]
       [
         [
           "fat (O2)";
           Printf.sprintf "%.4f" fat_cold;
           Printf.sprintf "%.4f" fat_warm;
           string_of_int fat_reads;
           string_of_int fat_allocs;
         ];
         [
           "compact (proposed)";
           Printf.sprintf "%.4f" compact_cold;
           Printf.sprintf "%.4f" compact_warm;
           "-";
           "-";
         ];
       ]);
  Format.fprintf ppf
    "Warm traversal performs no I/O and no Handle allocation (delayed \
     destruction pays off),@.so both designs cost the same warm — while the \
     compact design is cheaper cold.  This is@.why the problem \"went \
     undetected\": object benchmarks only measured the warm rows.@."

let all ctx ppf =
  fig6 ctx ppf;
  fig7 ctx ppf;
  fig9 ctx ppf;
  fig11 ctx ppf;
  fig13 ctx ppf;
  fig10 ctx ppf;
  release ctx `Wide Generator.Class_clustered;
  release ctx `Wide Generator.Composition;
  fig12 ctx ppf;
  fig14 ctx ppf;
  fig15 ctx ppf;
  hybrid ctx ppf;
  sortjoin ctx ppf;
  aggregates ctx ppf;
  costmodel ctx ppf;
  ctx.builts <- [];
  warm ctx ppf;
  oo7 ctx ppf;
  loading ctx ppf;
  handles ctx ppf;
  assoc ctx ppf

let names =
  [
    "fig6";
    "fig7";
    "fig9";
    "fig10";
    "fig11";
    "fig12";
    "fig13";
    "fig14";
    "fig15";
    "loading";
    "handles";
    "assoc";
    "hybrid";
    "sortjoin";
    "warm";
    "aggregates";
    "oo7";
    "costmodel";
    "all";
  ]

let by_name = function
  | "fig6" -> fig6
  | "fig7" -> fig7
  | "fig9" -> fig9
  | "fig10" -> fig10
  | "fig11" -> fig11
  | "fig12" -> fig12
  | "fig13" -> fig13
  | "fig14" -> fig14
  | "fig15" -> fig15
  | "loading" -> loading
  | "handles" -> handles
  | "assoc" -> assoc
  | "hybrid" -> hybrid
  | "sortjoin" -> sortjoin
  | "warm" -> warm
  | "aggregates" -> aggregates
  | "oo7" -> oo7
  | "costmodel" -> costmodel
  | "all" -> all
  | _ -> raise Not_found
