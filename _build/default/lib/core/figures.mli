(** Regeneration of every table and figure in the paper's evaluation, plus
    the ablations DESIGN.md calls out.

    All experiments run at [1/scale] of the paper's cardinalities with
    memory scaled identically, so page/cache and table/RAM ratios — and
    therefore winners and crossovers — are preserved.  Simulated times are
    roughly [1/scale] of the paper's seconds.

    Every measured run is also recorded as a [Stat] object in the context's
    stats database (Section 3.3, dogfooded). *)

type ctx

(** [create ~scale] — [scale] must be positive; the paper's own size is
    [scale = 1]. *)
val create : scale:int -> ctx

val scale : ctx -> int
val stats : ctx -> Tb_statdb.Stat_store.t

(** Each figure prints its table(s) to [ppf] and returns. *)

val fig6 : ctx -> Format.formatter -> unit
(** Reconstructed: selection with an (unsorted) unclustered index vs no
    index across selectivities — the duplicate-I/O effect of Section 4.2. *)

val fig7 : ctx -> Format.formatter -> unit
(** Sorted unclustered index vs no index. *)

val fig9 : ctx -> Format.formatter -> unit
(** Cost decomposition: standard scan vs sorted index scan at 90%. *)

val fig10 : ctx -> Format.formatter -> unit
(** Hash-table sizes: paper's approximations vs our model at paper scale,
    and measured peaks at bench scale. *)

val fig11 : ctx -> Format.formatter -> unit
val fig12 : ctx -> Format.formatter -> unit
val fig13 : ctx -> Format.formatter -> unit
val fig14 : ctx -> Format.formatter -> unit

val fig15 : ctx -> Format.formatter -> unit
(** Summary: winning algorithm per organization, including the randomized
    one. *)

val loading : ctx -> Format.formatter -> unit
(** Section 3.2 ablations: transaction mode, cache split, first-index
    reallocation. *)

val handles : ctx -> Format.formatter -> unit
(** Section 4.4 ablation: fat vs compact Handles. *)

val assoc : ctx -> Format.formatter -> unit
(** Section 5.3's proposed association-ordered layout vs class and
    composition clustering. *)

val hybrid : ctx -> Format.formatter -> unit
(** The extension Section 5.1 calls for: hybrid hash joins that spill
    partitions instead of swapping, on the memory-bound Figure 12 cells. *)

val sortjoin : ctx -> Format.formatter -> unit
(** The sort-merge joins the authors dropped early, reproduced losing. *)

val warm : ctx -> Format.formatter -> unit
(** Warm navigation under both Handle designs: the Section 4.4 claim that
    fixing cold associative access need not hurt in-memory navigation. *)

val aggregates : ctx -> Format.formatter -> unit
(** Result construction vs aggregation: what Section 4.2's 18-minute
    collection would have cost as a [count(...)]. *)

val costmodel : ctx -> Format.formatter -> unit
(** Predicted vs measured times for every algorithm and cell: the validated
    cost model the paper set out to build. *)

val oo7 : ctx -> Format.formatter -> unit
(** A miniature 007 benchmark: warm traversals vs one cold associative
    sweep — why the costs of Section 4 never showed up on the benchmarks
    object systems were tuned with. *)

val all : ctx -> Format.formatter -> unit

(** Names accepted by {!by_name}. *)
val names : string list

(** [by_name name] — raises [Not_found] for unknown names. *)
val by_name : string -> ctx -> Format.formatter -> unit
