module Database = Tb_store.Database
module Sim = Tb_sim.Sim
module Counters = Tb_sim.Counters

type t = {
  label : string;
  elapsed_s : float;
  result_count : int;
  disk_reads : int;
  disk_writes : int;
  rpcs : int;
  rpc_pages : int;
  sc2cc_reads : int;
  client_missrate : float;
  server_missrate : float;
  handle_allocs : int;
  handle_frees : int;
  handle_hits : int;
  comparisons : int;
  sort_comparisons : int;
  hash_inserts : int;
  hash_probes : int;
  result_appends : int;
  swap_faults : int;
  peak_working_bytes : int;
}

let run_cold ?mode ?organization ?force_algo ?force_sorted ?force_seq ~label db
    oql =
  let sim = Database.sim db in
  Database.cold_restart db;
  Sim.reset sim;
  let result =
    Tb_query.Planner.run ?mode ?organization ?force_algo ?force_sorted
      ?force_seq ~keep:false db oql
  in
  let result_count = Tb_query.Query_result.count result in
  Tb_query.Query_result.dispose result;
  let c = sim.Sim.counters in
  {
    label;
    elapsed_s = Sim.elapsed_s sim;
    result_count;
    disk_reads = c.Counters.disk_reads;
    disk_writes = c.Counters.disk_writes;
    rpcs = c.Counters.rpc_count;
    rpc_pages = c.Counters.rpc_pages;
    sc2cc_reads = c.Counters.rpc_pages;
    client_missrate = Counters.client_miss_rate c;
    server_missrate = Counters.server_miss_rate c;
    handle_allocs = c.Counters.handle_allocs;
    handle_frees = c.Counters.handle_frees;
    handle_hits = c.Counters.handle_hits;
    comparisons = c.Counters.comparisons;
    sort_comparisons = c.Counters.sort_comparisons;
    hash_inserts = c.Counters.hash_inserts;
    hash_probes = c.Counters.hash_probes;
    result_appends = c.Counters.result_appends;
    swap_faults = c.Counters.swap_faults;
    peak_working_bytes = sim.Sim.peak_working_bytes;
  }

let to_observation t ~numtest ~query_text ~selectivity ~database ~cluster ~algo
    ~server_cache_pages ~client_cache_pages =
  {
    Tb_statdb.Stat_store.numtest;
    query_text;
    projection = "tuple";
    selectivity;
    cold = true;
    database;
    cluster;
    algo;
    server_cache_pages;
    client_cache_pages;
    elapsed_s = t.elapsed_s;
    rpcs = t.rpcs;
    rpc_pages = t.rpc_pages;
    d2sc_reads = t.disk_reads;
    sc2cc_reads = t.sc2cc_reads;
    cc_missrate = t.client_missrate;
    sc_missrate = t.server_missrate;
    cc_pagefaults = t.swap_faults;
  }

let pp ppf t =
  Format.fprintf ppf
    "%s: %.2fs, %d rows, %d reads, %d rpcs, %d/%d handles (%d hits), %d swap \
     faults, peak %.1f MB"
    t.label t.elapsed_s t.result_count t.disk_reads t.rpcs t.handle_allocs
    t.handle_frees t.handle_hits t.swap_faults
    (float_of_int t.peak_working_bytes /. 1048576.0)
