(** Running one experiment: a cold query execution with full metric
    capture.

    Every measured run reproduces the paper's protocol (Section 2): the
    server is shut down first so both caches are empty, the clock and
    counters are reset, and the result is a [Stat]-shaped record. *)

type t = {
  label : string;
  elapsed_s : float;
  result_count : int;
  disk_reads : int;
  disk_writes : int;
  rpcs : int;
  rpc_pages : int;
  sc2cc_reads : int;
  client_missrate : float;
  server_missrate : float;
  handle_allocs : int;
  handle_frees : int;
  handle_hits : int;
  comparisons : int;
  sort_comparisons : int;
  hash_inserts : int;
  hash_probes : int;
  result_appends : int;
  swap_faults : int;
  peak_working_bytes : int;
}

(** [run_cold db oql ~label ...] cold-restarts, executes, and captures. The
    optional arguments are passed to {!Tb_query.Planner.plan}. *)
val run_cold :
  ?mode:Tb_query.Planner.mode ->
  ?organization:Tb_query.Estimate.organization ->
  ?force_algo:Tb_query.Plan.join_algo ->
  ?force_sorted:bool ->
  ?force_seq:bool ->
  label:string ->
  Tb_store.Database.t ->
  string ->
  t

(** Convert to a Figure-3 observation for the stats database. *)
val to_observation :
  t ->
  numtest:int ->
  query_text:string ->
  selectivity:int ->
  database:string ->
  cluster:string ->
  algo:string ->
  server_cache_pages:int ->
  client_cache_pages:int ->
  Tb_statdb.Stat_store.observation

val pp : Format.formatter -> t -> unit
