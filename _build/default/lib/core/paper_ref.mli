(** The numbers published in the paper, as data.

    Used to print paper-vs-measured tables and to check that the measured
    *shape* (who wins, by roughly what factor) matches.  Times are seconds
    on the authors' Sparc 20. *)

(** Figure 7: sorted unclustered index vs no index, (selectivity%, sorted
    index, no index). *)
val fig7 : (int * float * float) list

(** Figure 10: (algo, providers, fanout, sel_pat, sel_prov, table MB). *)
val fig10 : (string * int * int * int * int * float) list

(** Figures 11-14: per (sel_pat, sel_prov) cell, the four algorithm times.
    Shapes: [`Wide] = 2,000 x 1,000, [`Deep] = 1,000,000 x 3. *)
val join_cells :
  [ `Wide | `Deep ] ->
  [ `Class | `Composition ] ->
  ((int * int) * (string * float) list) list

(** Figure 15: per (shape, organization, sel_pat, sel_prov), the winning
    algorithm and its time. *)
val fig15 :
  ([ `Wide | `Deep ] * [ `Random | `Class | `Composition ] * int * int * string * float)
  list

(** Section 4.2 anchors for the reconstructed Figure 6: full-scan times at
    0.1% and 90% selectivity. *)
val fig6_scan_lo : float

val fig6_scan_hi : float
