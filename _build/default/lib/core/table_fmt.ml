let secs s = Printf.sprintf "%.2f" s

let render ~title ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Table_fmt.render: row arity")
    rows;
  let all = header :: rows in
  let ncols = List.length header in
  let width col =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row col))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let ranked ~title ?paper ((sel_pat, sel_prov), cells) () =
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) cells in
  let best = match sorted with (_, t) :: _ -> t | [] -> 1.0 in
  let paper_rank =
    match paper with
    | Some (_, cells) ->
        List.map fst (List.sort (fun (_, a) (_, b) -> Float.compare a b) cells)
    | None -> []
  in
  let rows =
    List.mapi
      (fun i (name, t) ->
        let paper_col =
          match paper with
          | Some (_, cells) -> (
              let pos =
                match List.find_index (String.equal name) paper_rank with
                | Some k -> k + 1
                | None -> 0
              in
              match List.assoc_opt name cells with
              | Some pt -> Printf.sprintf "%s (#%d)" (secs pt) pos
              | None -> "-")
          | None -> ""
        in
        let base =
          [
            (if i = 0 then "->" else "  ");
            name;
            Printf.sprintf "%.2f" (t /. best);
            secs t;
          ]
        in
        if paper = None then base else base @ [ paper_col ])
      sorted
  in
  let header =
    [ ""; "Algorithm"; "Time ratio"; "Time (sec)" ]
    @ if paper = None then [] else [ "Paper (sec, rank)" ]
  in
  render
    ~title:(Printf.sprintf "%s   [sel. patients %d%%, sel. providers %d%%]" title sel_pat sel_prov)
    ~header rows
