(** Plain-text tables in the paper's style. *)

(** [render ~title ~header rows] — column widths auto-fit; every row must
    have the header's arity (checked). *)
val render : title:string -> header:string list -> string list list -> string

(** [ranked ~title cells] renders a Figure-11-style table: one block per
    (selectivity-pair) cell, algorithms sorted by time, with the time ratio
    against the winner — optionally annotated with the paper's own ranking
    for the same cell. *)
val ranked :
  title:string ->
  ?paper:(int * int) * (string * float) list ->
  (int * int) * (string * float) list ->
  unit ->
  string

(** Seconds with the paper's two decimals. *)
val secs : float -> string
