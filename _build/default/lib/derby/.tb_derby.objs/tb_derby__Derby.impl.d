lib/derby/derby.ml: Printf Tb_store
