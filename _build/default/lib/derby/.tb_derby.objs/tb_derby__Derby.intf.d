lib/derby/derby.mli: Tb_store
