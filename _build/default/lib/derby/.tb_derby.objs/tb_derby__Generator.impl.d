lib/derby/generator.ml: Array Derby List Tb_query Tb_sim Tb_storage Tb_store
