lib/derby/generator.mli: Tb_query Tb_sim Tb_storage Tb_store
