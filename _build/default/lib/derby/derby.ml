module Schema = Tb_store.Schema
module Value = Tb_store.Value

let provider_cls = "Provider"
let patient_cls = "Patient"
let providers_extent = "Providers"
let patients_extent = "Patients"

let schema =
  Schema.make
    ~classes:
      [
        {
          Schema.cls_name = provider_cls;
          attrs =
            [
              ("name", Schema.TString);
              ("upin", Schema.TInt);
              ("address", Schema.TString);
              ("specialty", Schema.TString);
              ("office", Schema.TString);
              ("clients", Schema.TSet (Schema.TRef patient_cls));
            ];
        };
        {
          Schema.cls_name = patient_cls;
          attrs =
            [
              ("name", Schema.TString);
              ("mrn", Schema.TInt);
              ("age", Schema.TInt);
              ("sex", Schema.TChar);
              ("random_integer", Schema.TInt);
              ("num", Schema.TInt);
              ("primary_care_provider", Schema.TRef provider_cls);
            ];
        };
      ]
    ~roots:
      [
        (providers_extent, Schema.TSet (Schema.TRef provider_cls));
        (patients_extent, Schema.TSet (Schema.TRef patient_cls));
      ]

let pad16 n = Printf.sprintf "%016d" n

let provider_value ~upin ~clients =
  Value.Tuple
    [
      ("name", Value.String (pad16 upin));
      ("upin", Value.Int upin);
      ("address", Value.String (pad16 (upin * 7)));
      ("specialty", Value.String (pad16 (upin mod 40)));
      ("office", Value.String (pad16 (upin mod 100)));
      ("clients", clients);
    ]

let patient_value ~mrn ~age ~sex ~random_integer ~num ~pcp =
  Value.Tuple
    [
      ("name", Value.String (pad16 mrn));
      ("mrn", Value.Int mrn);
      ("age", Value.Int age);
      ("sex", Value.Char sex);
      ("random_integer", Value.Int random_integer);
      ("num", Value.Int num);
      ("primary_care_provider", pcp);
    ]
