(** The Derby doctors-and-patients schema (Figure 1), as the paper adapted
    it from the 1997 Derby benchmark schema.

    Object sizes reproduce the paper's arithmetic: 16-character strings,
    4-byte integers, 8-byte references put a [Provider] at ~120 bytes and a
    [Patient] at ~60 (clients sets above a page spill to a separate file,
    making the 1:1000 provider slightly smaller). *)

val schema : Tb_store.Schema.t

(** Class and extent names. *)
val provider_cls : string

val patient_cls : string
val providers_extent : string
val patients_extent : string

(** [pad16 n] is the canonical 16-character string for id [n] (all string
    attributes are 16 characters, as in the paper). *)
val pad16 : int -> string

(** [provider_value ~upin ~clients] builds a conforming Provider.  [clients]
    is the inline set value ([Set] of refs, or a placeholder). *)
val provider_value : upin:int -> clients:Tb_store.Value.t -> Tb_store.Value.t

(** [patient_value ~mrn ~age ~sex ~random_integer ~num ~pcp] builds a
    conforming Patient. *)
val patient_value :
  mrn:int ->
  age:int ->
  sex:char ->
  random_integer:int ->
  num:int ->
  pcp:Tb_store.Value.t ->
  Tb_store.Value.t
