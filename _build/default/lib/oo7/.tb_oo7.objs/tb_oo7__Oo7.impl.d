lib/oo7/oo7.ml: Array Hashtbl List Printf Tb_query Tb_sim Tb_storage Tb_store
