lib/oo7/oo7.mli: Tb_sim Tb_storage Tb_store
