module Schema = Tb_store.Schema
module Value = Tb_store.Value
module Database = Tb_store.Database
module Rid = Tb_storage.Rid
module Rng = Tb_sim.Rng

type config = {
  assembly_fanout : int;
  assembly_levels : int;
  components_per_base : int;
  atomics_per_composite : int;
  connections : int;
  seed : int;
}

let tiny =
  {
    assembly_fanout = 3;
    assembly_levels = 4;
    components_per_base = 3;
    atomics_per_composite = 20;
    connections = 3;
    seed = 1993;
  }

let small = { tiny with atomics_per_composite = 40 }

let schema =
  Schema.make
    ~classes:
      [
        {
          Schema.cls_name = "ComplexAssembly";
          attrs =
            [
              ("id", Schema.TInt);
              ("buildDate", Schema.TInt);
              ("subComplex", Schema.TSet (Schema.TRef "ComplexAssembly"));
              ("subBase", Schema.TSet (Schema.TRef "BaseAssembly"));
            ];
        };
        {
          Schema.cls_name = "BaseAssembly";
          attrs =
            [
              ("id", Schema.TInt);
              ("buildDate", Schema.TInt);
              ("components", Schema.TSet (Schema.TRef "CompositePart"));
            ];
        };
        {
          Schema.cls_name = "CompositePart";
          attrs =
            [
              ("id", Schema.TInt);
              ("buildDate", Schema.TInt);
              ("rootPart", Schema.TRef "AtomicPart");
              ("parts", Schema.TSet (Schema.TRef "AtomicPart"));
            ];
        };
        {
          Schema.cls_name = "AtomicPart";
          attrs =
            [
              ("id", Schema.TInt);
              ("buildDate", Schema.TInt);
              ("x", Schema.TInt);
              ("y", Schema.TInt);
              ("partOf", Schema.TRef "CompositePart");
              ("connections", Schema.TSet (Schema.TRef "AtomicPart"));
            ];
        };
      ]
    ~roots:
      [
        ("ComplexAssemblies", Schema.TSet (Schema.TRef "ComplexAssembly"));
        ("BaseAssemblies", Schema.TSet (Schema.TRef "BaseAssembly"));
        ("CompositeParts", Schema.TSet (Schema.TRef "CompositePart"));
        ("AtomicParts", Schema.TSet (Schema.TRef "AtomicPart"));
      ]

type built = {
  db : Database.t;
  cfg : config;
  design_root : Rid.t;
  atomic_parts : Rid.t array;
  composite_parts : Rid.t array;
  build_date_index : Tb_store.Index_def.t;
}

let build ?(cost = Tb_sim.Cost_model.scaled 100) cfg =
  let sim = Tb_sim.Sim.create ~seed:cfg.seed cost in
  let rng = sim.Tb_sim.Sim.rng in
  let db =
    Database.create sim ~schema ~server_pages:64 ~client_pages:512
      ~txn_mode:Tb_store.Transaction.Load_off ()
  in
  (* One composition-clustered file, as OO systems laid 007 out. *)
  let file = Database.new_file db ~name:"design" in
  List.iter
    (fun cls -> Database.bind_class db ~cls file)
    [ "ComplexAssembly"; "BaseAssembly"; "CompositePart"; "AtomicPart" ];
  let atomic_counter = ref 0 in
  let composite_counter = ref 0 in
  let assembly_counter = ref 0 in
  let atomics = ref [] and composites = ref [] in
  let date () = Rng.int rng 10_000 in
  (* One composite part: its atomic parts follow it physically; connections
     form a ring plus random chords, as in 007. *)
  let make_composite () =
    let id = !composite_counter in
    incr composite_counter;
    let n = cfg.atomics_per_composite in
    let comp_rid =
      Database.insert_object db ~cls:"CompositePart" ~indexed:true
        (Value.Tuple
           [
             ("id", Value.Int id);
             ("buildDate", Value.Int (date ()));
             ("rootPart", Value.Nil);
             ("parts", Value.Set (List.init n (fun _ -> Value.Ref Rid.nil)));
           ])
    in
    let part_rids =
      Array.init n (fun i ->
          let pid = !atomic_counter in
          incr atomic_counter;
          let rid =
            Database.insert_object db ~cls:"AtomicPart" ~indexed:true
              (Value.Tuple
                 [
                   ("id", Value.Int pid);
                   ("buildDate", Value.Int (date ()));
                   ("x", Value.Int (Rng.int rng 100_000));
                   ("y", Value.Int (Rng.int rng 100_000));
                   ("partOf", Value.Ref comp_rid);
                   ( "connections",
                     Value.Set
                       (List.init cfg.connections (fun _ -> Value.Ref Rid.nil)) );
                 ])
          in
          ignore i;
          rid)
    in
    (* Wire the connections: successor ring + random chords. *)
    Array.iteri
      (fun i rid ->
        let succ = part_rids.((i + 1) mod n) in
        let chords =
          List.init (cfg.connections - 1) (fun _ ->
              Value.Ref part_rids.(Rng.int rng n))
        in
        let _, v = Database.read_object db rid in
        Database.update_object db rid
          (Value.set_field v "connections" (Value.Set (Value.Ref succ :: chords))))
      part_rids;
    let _, v = Database.read_object db comp_rid in
    let v = Value.set_field v "rootPart" (Value.Ref part_rids.(0)) in
    Database.update_object db comp_rid
      (Value.set_field v "parts"
         (Value.Set (Array.to_list (Array.map (fun r -> Value.Ref r) part_rids))));
    atomics := Array.to_list part_rids @ !atomics;
    composites := comp_rid :: !composites;
    comp_rid
  in
  let make_base () =
    let id = !assembly_counter in
    incr assembly_counter;
    let comps = List.init cfg.components_per_base (fun _ -> make_composite ()) in
    Database.insert_object db ~cls:"BaseAssembly" ~indexed:true
      (Value.Tuple
         [
           ("id", Value.Int id);
           ("buildDate", Value.Int (date ()));
           ("components", Value.Set (List.map (fun r -> Value.Ref r) comps));
         ])
  in
  let rec make_complex level =
    let id = !assembly_counter in
    incr assembly_counter;
    let sub_complex, sub_base =
      if level <= 1 then
        ([], List.init cfg.assembly_fanout (fun _ -> make_base ()))
      else
        (List.init cfg.assembly_fanout (fun _ -> make_complex (level - 1)), [])
    in
    Database.insert_object db ~cls:"ComplexAssembly" ~indexed:true
      (Value.Tuple
         [
           ("id", Value.Int id);
           ("buildDate", Value.Int (date ()));
           ("subComplex", Value.Set (List.map (fun r -> Value.Ref r) sub_complex));
           ("subBase", Value.Set (List.map (fun r -> Value.Ref r) sub_base));
         ])
  in
  let design_root = make_complex cfg.assembly_levels in
  let build_date_index =
    Database.create_index db ~name:"buildDate" ~cls:"AtomicPart" ~attr:"buildDate"
  in
  Database.commit db;
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  {
    db;
    cfg;
    design_root;
    atomic_parts = Array.of_list (List.rev !atomics);
    composite_parts = Array.of_list (List.rev !composites);
    build_date_index;
  }

(* T1: DFS through assemblies, then through each composite's connection
   graph starting at its root part. *)
let traversal_t1 b =
  let db = b.db in
  let visits = ref 0 in
  let traverse_composite comp_rid =
    let seen = Hashtbl.create 64 in
    let rec dfs rid =
      if not (Hashtbl.mem seen rid) then begin
        Hashtbl.replace seen rid ();
        incr visits;
        let h = Database.acquire db rid in
        ignore (Database.get_att db h "x");
        Database.iter_set db
          (Database.get_att db h "connections")
          (fun r ->
            match r with Value.Ref next -> dfs next | _ -> ());
        Database.unref db h
      end
    in
    let ch = Database.acquire db comp_rid in
    (match Database.get_att db ch "rootPart" with
    | Value.Ref root -> dfs root
    | _ -> ());
    Database.unref db ch
  in
  let rec down rid =
    let h = Database.acquire db rid in
    let cls = Database.class_name db h in
    (match cls with
    | "ComplexAssembly" ->
        Database.iter_set db (Database.get_att db h "subComplex") (fun r ->
            match r with Value.Ref c -> down c | _ -> ());
        Database.iter_set db (Database.get_att db h "subBase") (fun r ->
            match r with Value.Ref c -> down c | _ -> ())
    | "BaseAssembly" ->
        Database.iter_set db (Database.get_att db h "components") (fun r ->
            match r with Value.Ref c -> traverse_composite c | _ -> ())
    | _ -> ());
    Database.unref db h
  in
  down b.design_root;
  !visits

let query_q ~frac b =
  if frac < 0.0 || frac > 1.0 then invalid_arg "Oo7.query_q: frac";
  let cutoff = int_of_float ((1.0 -. frac) *. 10_000.0) in
  let r =
    Tb_query.Planner.run b.db
      (Printf.sprintf
         "select count(a) from a in AtomicParts where a.buildDate >= %d" cutoff)
      ~keep:true
  in
  let n =
    match Tb_query.Query_result.values r with
    | [ Value.Int n ] -> n
    | _ -> invalid_arg "Oo7.query_q: unexpected result"
  in
  Tb_query.Query_result.dispose r;
  n
