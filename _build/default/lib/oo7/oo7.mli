(** A miniature 007 benchmark (Carey, DeWitt & Naughton, SIGMOD 1993).

    The paper cites 007 as the benchmark object systems were tuned for:
    it "aims at comparing the performances of object-oriented systems, not
    the different strategies for object query evaluation" — it exercises
    "navigation down hierarchical structures but not alternative join
    evaluation of this navigation".  This module rebuilds 007's design
    hierarchy (module → complex assemblies → base assemblies → composite
    parts → atomic parts with a connection graph) on our engine, so the
    [oo7] bench can demonstrate *why* the Handle problem went undetected:
    the traversals object benchmarks measure run warm and allocation-free,
    while one associative sweep over the atomic parts exposes everything
    Section 4 diagnoses. *)

type config = {
  assembly_fanout : int;  (** children per complex assembly *)
  assembly_levels : int;  (** depth of the complex-assembly tree *)
  components_per_base : int;  (** composite parts per base assembly *)
  atomics_per_composite : int;  (** atomic parts per composite part *)
  connections : int;  (** outgoing connections per atomic part *)
  seed : int;
}

(** 007's "tiny" flavour: fanout 3, 4 levels, 3 components, 20 atomic
    parts, 3 connections. *)
val tiny : config

(** [small] doubles the atomic-part population. *)
val small : config

val schema : Tb_store.Schema.t

type built = {
  db : Tb_store.Database.t;
  cfg : config;
  design_root : Tb_storage.Rid.t;  (** the module's root complex assembly *)
  atomic_parts : Tb_storage.Rid.t array;  (** by id *)
  composite_parts : Tb_storage.Rid.t array;
  build_date_index : Tb_store.Index_def.t;  (** on AtomicPart.buildDate *)
}

(** [build ?cost cfg] creates the design database, composition-clustered
    (each composite part physically followed by its atomic parts, as OO
    databases cluster 007), cold. *)
val build : ?cost:Tb_sim.Cost_model.t -> config -> built

(** [traversal_t1 built] is 007's T1: depth-first sweep of the assembly
    hierarchy, visiting every atomic part of every composite part reached,
    following the connection graph part-to-part.  Returns the number of
    atomic-part visits. *)
val traversal_t1 : built -> int

(** [query_q ~frac built] is a 007-style associative query: count the
    atomic parts in the most recent [frac] (0..1) of build dates, through
    the build-date index. *)
val query_q : frac:float -> built -> int
