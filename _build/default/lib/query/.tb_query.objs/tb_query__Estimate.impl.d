lib/query/estimate.ml: Float List Mem_hash Plan Tb_sim
