lib/query/estimate.mli: Plan Tb_sim
