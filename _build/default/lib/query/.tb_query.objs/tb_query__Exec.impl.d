lib/query/exec.ml: Array List Mem_hash Oql_ast Plan Printf Query_result String Tb_sim Tb_storage Tb_store
