lib/query/exec.mli: Plan Query_result Tb_store
