lib/query/mem_hash.ml: Hashtbl List Tb_sim Tb_storage
