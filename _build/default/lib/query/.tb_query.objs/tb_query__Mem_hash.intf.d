lib/query/mem_hash.mli: Tb_sim Tb_storage
