lib/query/oql_ast.ml: Bool Char Float Format Int String Tb_storage Tb_store
