lib/query/oql_ast.mli: Format Tb_store
