lib/query/oql_lexer.ml: Format List Printf String
