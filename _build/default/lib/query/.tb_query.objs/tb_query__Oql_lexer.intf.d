lib/query/oql_lexer.mli: Format
