lib/query/oql_parser.ml: Format List Oql_ast Oql_lexer String
