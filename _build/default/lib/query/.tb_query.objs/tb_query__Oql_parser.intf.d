lib/query/oql_parser.mli: Oql_ast
