lib/query/plan.ml: Format List Oql_ast Printf String Tb_store
