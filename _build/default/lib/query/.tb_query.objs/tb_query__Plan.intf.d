lib/query/plan.mli: Format Oql_ast Tb_store
