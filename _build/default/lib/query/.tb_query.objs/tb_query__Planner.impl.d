lib/query/planner.ml: Estimate Exec Float List Mem_hash Oql_ast Oql_parser Plan Tb_sim Tb_storage Tb_store
