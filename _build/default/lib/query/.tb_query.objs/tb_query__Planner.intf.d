lib/query/planner.mli: Estimate Oql_ast Plan Query_result Tb_store
