lib/query/query_result.ml: List Oql_ast String Tb_sim Tb_store
