lib/query/query_result.mli: Oql_ast Tb_sim Tb_store
