type organization =
  | Separate_files
  | Shared_random
  | Shared_composition
  | Assoc_clustered

type side = {
  card : int;
  pages : int;
  sel : float;
  has_index : bool;
  index_clustered : bool;
  payload_bytes : int;
}

type env = {
  cost : Tb_sim.Cost_model.t;
  organization : organization;
  client_cache_pages : int;
  parent : side;
  child : side;
  fanout : float;
  result_bytes_per_row : int;
}

let fi = float_of_int

(* Effective cost of moving one cold page up to the client: disk read plus
   the RPC that ships it. *)
let cold_page_ms cost =
  cost.Tb_sim.Cost_model.page_read_ms
  +. cost.Tb_sim.Cost_model.rpc_fixed_ms
  +. cost.Tb_sim.Cost_model.rpc_page_ms

let handle_pair_ms cost =
  (cost.Tb_sim.Cost_model.handle_alloc_fat_us
  +. cost.Tb_sim.Cost_model.handle_free_fat_us)
  /. 1000.0

let distinct_pages ~n ~pages =
  if pages <= 0.0 then 0.0
  else pages *. (1.0 -. exp (-.n /. pages))

let random_fetch_ms ~cost ~n ~pages ~cache =
  if n <= 0.0 then 0.0
  else begin
    let d = distinct_pages ~n ~pages in
    (* First touches read [d] pages; re-touches miss in proportion to how
       much of the file the cache cannot hold. *)
    let retouches = Float.max 0.0 (n -. d) in
    let miss = Float.max 0.0 ((pages -. cache) /. pages) in
    ((d +. (retouches *. miss)) *. cold_page_ms cost)
    +. (retouches *. (1.0 -. miss) *. cost.Tb_sim.Cost_model.client_hit_ms)
  end

let seq_ms cost pages = fi pages *. cold_page_ms cost

let sort_ms cost n =
  if n <= 1.0 then 0.0
  else n *. (log n /. log 2.0) *. cost.Tb_sim.Cost_model.sort_cmp_us /. 1000.0

let append_ms cost n =
  n *. cost.Tb_sim.Cost_model.result_append_standard_us /. 1000.0

(* Leaf pages an index scan of [n] entries touches (~200 entries/leaf). *)
let leaf_pages n = ceil (n /. 200.0)

(* Thrash penalty for [ops] random operations against working structures of
   [bytes] resident bytes — mirrors Sim's fault accounting. *)
let swap_ms cost ~bytes ~ops =
  let avail = fi (Tb_sim.Cost_model.available_bytes cost) in
  if avail <= 0.0 then 0.0
  else
    let excess = Float.max 0.0 ((bytes -. avail) /. avail) in
    let p = Float.min 1.0 (excess *. cost.Tb_sim.Cost_model.thrash_factor) in
    ops *. p *. cost.Tb_sim.Cost_model.swap_fault_ms

(* --- selections (single side: we use [parent]) --- *)

let selection_seq_ms env =
  let c = env.cost and s = env.parent in
  let n = fi s.card in
  seq_ms c s.pages +. (n *. handle_pair_ms c) +. append_ms c (s.sel *. n)

let selection_index_ms env ~sorted =
  let c = env.cost and s = env.parent in
  let k = s.sel *. fi s.card in
  let leaf = leaf_pages k *. cold_page_ms c in
  let fetch =
    if s.index_clustered then
      (* Contiguous keys sit on contiguous pages. *)
      s.sel *. fi s.pages *. cold_page_ms c
    else if sorted then distinct_pages ~n:k ~pages:(fi s.pages) *. cold_page_ms c
    else
      random_fetch_ms ~cost:c ~n:k ~pages:(fi s.pages)
        ~cache:(fi env.client_cache_pages)
  in
  let sort = if sorted then sort_ms c k else 0.0 in
  leaf +. fetch +. sort +. (k *. handle_pair_ms c) +. append_ms c k

(* --- joins --- *)

(* Pages to read one side's selected objects through its (sorted) index, or
   by scanning.  Under a shared file, touching a fraction of an extent
   means touching that fraction of the whole file. *)
let side_read_ms env s =
  let c = env.cost in
  let k = s.sel *. fi s.card in
  if s.has_index then
    let data =
      if s.index_clustered then s.sel *. fi s.pages
      else distinct_pages ~n:k ~pages:(fi s.pages)
    in
    (leaf_pages k +. data) *. cold_page_ms c
  else seq_ms c s.pages

let result_rows env =
  env.parent.sel *. env.child.sel *. fi env.child.card

(* Resident result memory: the collection spills sequentially past physical
   memory, so at most ~RAM of it stays resident. *)
let result_mem env =
  Float.min
    (result_rows env *. fi env.result_bytes_per_row)
    (0.9 *. fi (Tb_sim.Cost_model.available_bytes env.cost))

let join_ms env algo =
  let c = env.cost in
  let p = env.parent and ch = env.child in
  let np_sel = p.sel *. fi p.card in
  let nc_sel = ch.sel *. fi ch.card in
  let rows = result_rows env in
  let build_result = append_ms c rows in
  match algo with
  | Plan.NL ->
      (* Parents through their index; every child of a selected parent is
         fetched and tested. *)
      let children_touched = np_sel *. env.fanout in
      let parent_read = side_read_ms env p in
      let child_read =
        match env.organization with
        | Shared_composition ->
            (* The children sit on the pages the parent sweep already
               read. *)
            0.0
        | Assoc_clustered ->
            (* Children live in their own file but in parent order: the
               fetches are one sequential sweep over the touched slice. *)
            let per_page = Float.max 1.0 (fi ch.card /. Float.max 1.0 (fi ch.pages)) in
            children_touched /. per_page *. cold_page_ms c
        | Separate_files | Shared_random ->
            random_fetch_ms ~cost:c ~n:children_touched ~pages:(fi ch.pages)
              ~cache:(fi env.client_cache_pages)
      in
      parent_read +. child_read
      +. ((np_sel +. children_touched) *. handle_pair_ms c)
      +. build_result
      +. swap_ms c ~bytes:(result_mem env) ~ops:0.0
  | Plan.NOJOIN ->
      (* Children through their index; one parent navigation per selected
         child. *)
      let child_read = side_read_ms env ch in
      let parent_read =
        match env.organization with
        | Shared_composition -> 0.0 (* the parent is on a nearby page *)
        | Assoc_clustered ->
            (* Children arrive in parent order, so parent fetches sweep the
               parent file at most once. *)
            distinct_pages ~n:nc_sel ~pages:(fi p.pages) *. cold_page_ms c
        | Separate_files | Shared_random ->
            random_fetch_ms ~cost:c ~n:nc_sel ~pages:(fi p.pages)
              ~cache:(fi env.client_cache_pages)
      in
      (* Distinct parents get a Handle; repeats are resident hits. *)
      let parent_handles = Float.min nc_sel (fi p.card) in
      child_read +. parent_read
      +. ((nc_sel +. parent_handles) *. handle_pair_ms c)
      +. build_result
      +. swap_ms c ~bytes:(result_mem env) ~ops:0.0
  | Plan.PHJ ->
      let table_bytes =
        np_sel *. fi (p.payload_bytes + Mem_hash.entry_overhead + Mem_hash.group_overhead)
      in
      let mem = table_bytes +. result_mem env in
      side_read_ms env p +. side_read_ms env ch
      +. ((np_sel +. nc_sel) *. handle_pair_ms c)
      +. (np_sel *. c.Tb_sim.Cost_model.hash_insert_us /. 1000.0)
      +. (nc_sel *. c.Tb_sim.Cost_model.hash_probe_us /. 1000.0)
      +. build_result
      +. swap_ms c ~bytes:mem ~ops:(np_sel +. nc_sel)
  | Plan.CHJ ->
      let groups = Float.min np_sel (fi p.card) in
      let table_bytes =
        (nc_sel *. fi (ch.payload_bytes + Mem_hash.entry_overhead))
        +. (groups *. fi Mem_hash.group_overhead)
      in
      let mem = table_bytes +. result_mem env in
      side_read_ms env p +. side_read_ms env ch
      +. ((np_sel +. nc_sel) *. handle_pair_ms c)
      +. (nc_sel *. c.Tb_sim.Cost_model.hash_insert_us /. 1000.0)
      +. (np_sel *. c.Tb_sim.Cost_model.hash_probe_us /. 1000.0)
      +. build_result
      +. swap_ms c ~bytes:mem ~ops:(np_sel +. nc_sel)
  | Plan.PHHJ | Plan.CHHJ ->
      (* Hybrid hashing: instead of swapping, the overflow fraction of both
         sides is written out and read back once. *)
      let build_n, probe_n, build_payload, probe_payload =
        if algo = Plan.PHHJ then (np_sel, nc_sel, p.payload_bytes, ch.payload_bytes)
        else (nc_sel, np_sel, ch.payload_bytes, p.payload_bytes)
      in
      let table_bytes =
        build_n *. fi (build_payload + Mem_hash.entry_overhead + Mem_hash.group_overhead)
      in
      let budget = 0.8 *. fi (Tb_sim.Cost_model.available_bytes c) in
      let sf =
        if budget <= 0.0 then 1.0
        else Float.max 0.0 (1.0 -. (budget /. table_bytes))
      in
      let spill_bytes =
        sf *. ((build_n *. fi (build_payload + 20)) +. (probe_n *. fi (probe_payload + 20)))
      in
      let spill_io =
        2.0 *. spill_bytes /. fi c.Tb_sim.Cost_model.page_size *. cold_page_ms c
      in
      side_read_ms env p +. side_read_ms env ch
      +. ((np_sel +. nc_sel) *. handle_pair_ms c)
      +. (build_n *. c.Tb_sim.Cost_model.hash_insert_us *. (1.0 +. sf) /. 1000.0)
      +. (probe_n *. c.Tb_sim.Cost_model.hash_probe_us *. (1.0 +. sf) /. 1000.0)
      +. spill_io +. build_result
  | Plan.SMJ ->
      let run_ms n bytes =
        let sorted = sort_ms c n in
        let avail = fi (Tb_sim.Cost_model.available_bytes c) in
        let external_io =
          if bytes > avail && avail > 0.0 then
            let passes = ceil (log (bytes /. avail) /. log 8.0) in
            2.0 *. passes *. bytes /. fi c.Tb_sim.Cost_model.page_size
            *. cold_page_ms c
          else 0.0
        in
        sorted +. external_io
      in
      let p_bytes = np_sel *. fi (p.payload_bytes + 16) in
      let c_bytes = nc_sel *. fi (ch.payload_bytes + 16) in
      side_read_ms env p +. side_read_ms env ch
      +. ((np_sel +. nc_sel) *. handle_pair_ms c)
      +. run_ms np_sel p_bytes +. run_ms nc_sel c_bytes
      +. ((np_sel +. nc_sel) *. c.Tb_sim.Cost_model.compare_us /. 1000.0)
      +. build_result

let all_algos =
  [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]

let rank_joins env =
  List.sort
    (fun (_, a) (_, b) -> Float.compare a b)
    (List.map (fun a -> (a, join_ms env a)) all_algos)
