(** The query executor: runs a physical plan against a database, charging
    every page fetch, Handle, comparison, hash operation, sort and result
    append to the simulated clock.

    Each operator follows the paper's pseudo-code:
    - sequential scans and (sorted) index scans are Figure 8;
    - NL, NOJOIN, PHJ, CHJ are the four algorithms of Section 5.1, with
      PHJ/CHJ the pointer-based hash joins (CHJ being the paper's variation
      of Shekita & Carey's pointer-based join that scans the outer
      collection sequentially). *)

(** [run db plan ~keep] executes the plan and returns the materialized
    result.  [keep] retains the tuples (small runs and tests); the caller
    must {!Query_result.dispose} the result when done with it. *)
val run : Tb_store.Database.t -> Plan.t -> keep:bool -> Query_result.t
