type 'a t = {
  sim : Tb_sim.Sim.t;
  table : (Tb_storage.Rid.t, 'a list ref) Hashtbl.t;
  mutable elements : int;
  mutable bytes : int;
  mutable disposed : bool;
}

let entry_overhead = 16
let group_overhead = 40

let create sim =
  { sim; table = Hashtbl.create 1024; elements = 0; bytes = 0; disposed = false }

let add t ~key ~payload_bytes v =
  if t.disposed then invalid_arg "Mem_hash.add: disposed";
  let cost =
    match Hashtbl.find_opt t.table key with
    | Some group ->
        group := v :: !group;
        entry_overhead + payload_bytes
    | None ->
        Hashtbl.replace t.table key (ref [ v ]);
        group_overhead + entry_overhead + payload_bytes
  in
  t.elements <- t.elements + 1;
  t.bytes <- t.bytes + cost;
  Tb_sim.Sim.claim_bytes t.sim cost;
  Tb_sim.Sim.charge_hash_insert t.sim

let find t ~key =
  Tb_sim.Sim.charge_hash_probe t.sim;
  match Hashtbl.find_opt t.table key with
  | Some group -> List.rev !group
  | None -> []

let group_count t = Hashtbl.length t.table
let element_count t = t.elements
let size_bytes t = t.bytes

let dispose t =
  if not t.disposed then begin
    Tb_sim.Sim.release_bytes t.sim t.bytes;
    t.disposed <- true;
    Hashtbl.reset t.table
  end
