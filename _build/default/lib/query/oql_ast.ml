type literal =
  | L_int of int
  | L_string of string
  | L_char of char
  | L_bool of bool
  | L_nil

type expr =
  | Const of literal
  | Var of string
  | Path of string * string
  | Mk_tuple of (string * expr) list

type agg = Count | Sum | Avg | Min | Max
type projection = Rows of expr | Aggregate of agg * expr
type cmp = Lt | Le | Gt | Ge | Eq | Ne

type pred = True | Cmp of expr * cmp * expr | And of pred * pred
type source = Extent of string | Sub_collection of string * string
type binding = { var : string; source : source }
type query = { select : projection; from : binding list; where : pred }

let literal_to_value = function
  | L_int i -> Tb_store.Value.Int i
  | L_string s -> Tb_store.Value.String s
  | L_char c -> Tb_store.Value.Char c
  | L_bool b -> Tb_store.Value.Bool b
  | L_nil -> Tb_store.Value.Nil

let eval_cmp cmp a b =
  let open Tb_store.Value in
  let ord =
    match (a, b) with
    | Int x, Int y -> Int.compare x y
    | Real x, Real y -> Float.compare x y
    | String x, String y -> String.compare x y
    | Char x, Char y -> Char.compare x y
    | Bool x, Bool y -> Bool.compare x y
    | Ref x, Ref y -> Tb_storage.Rid.compare x y
    | Nil, Nil -> 0
    | _ -> invalid_arg "Oql_ast.eval_cmp: incomparable values"
  in
  match cmp with
  | Lt -> ord < 0
  | Le -> ord <= 0
  | Gt -> ord > 0
  | Ge -> ord >= 0
  | Eq -> ord = 0
  | Ne -> ord <> 0

let agg_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let pp_cmp ppf cmp =
  Format.pp_print_string ppf
    (match cmp with
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | Eq -> "="
    | Ne -> "<>")

let pp_literal ppf = function
  | L_int i -> Format.pp_print_int ppf i
  | L_string s -> Format.fprintf ppf "%S" s
  | L_char c -> Format.fprintf ppf "'%c'" c
  | L_bool b -> Format.pp_print_bool ppf b
  | L_nil -> Format.pp_print_string ppf "nil"

let rec pp_expr ppf = function
  | Const l -> pp_literal ppf l
  | Var v -> Format.pp_print_string ppf v
  | Path (v, a) -> Format.fprintf ppf "%s.%s" v a
  | Mk_tuple fields ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (n, e) -> Format.fprintf ppf "%s: %a" n pp_expr e))
        fields

let pp_projection ppf = function
  | Rows e -> pp_expr ppf e
  | Aggregate (a, e) -> Format.fprintf ppf "%s(%a)" (agg_name a) pp_expr e

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Cmp (a, cmp, b) ->
      Format.fprintf ppf "%a %a %a" pp_expr a pp_cmp cmp pp_expr b
  | And (p, q) -> Format.fprintf ppf "%a and %a" pp_pred p pp_pred q

let pp_source ppf = function
  | Extent name -> Format.pp_print_string ppf name
  | Sub_collection (v, a) -> Format.fprintf ppf "%s.%s" v a

let pp_query ppf q =
  Format.fprintf ppf "@[select %a@ from %a" pp_projection q.select
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf b -> Format.fprintf ppf "%s in %a" b.var pp_source b.source))
    q.from;
  (match q.where with
  | True -> ()
  | p -> Format.fprintf ppf "@ where %a" pp_pred p);
  Format.fprintf ppf "@]"

let rec conjuncts = function
  | True -> []
  | Cmp _ as c -> [ c ]
  | And (p, q) -> conjuncts p @ conjuncts q
