(** Abstract syntax for the OQL subset.

    Covers the query family the paper studies:

    {v
    select [p.name, pa.age]
    from p in Providers, pa in p.clients
    where pa.mrn < k1 and p.upin < k2
    v}

    i.e. select-from-where over named extents and dependent collections,
    with conjunctive comparison predicates and tuple-building projections. *)

type literal =
  | L_int of int
  | L_string of string
  | L_char of char
  | L_bool of bool
  | L_nil

type expr =
  | Const of literal
  | Var of string  (** a range variable: the object itself *)
  | Path of string * string  (** [p.name]: attribute of a range variable *)
  | Mk_tuple of (string * expr) list  (** [\[name: p.name, age: pa.age\]] *)

(** Aggregates fold the rows into one value instead of materializing the
    collection — sidestepping the ~0.6 ms/element result-construction cost
    Section 4.2 measures. *)
type agg = Count | Sum | Avg | Min | Max

(** What the [select] clause produces. *)
type projection = Rows of expr | Aggregate of agg * expr

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type pred =
  | True
  | Cmp of expr * cmp * expr
  | And of pred * pred

type source =
  | Extent of string  (** a named root, e.g. [Providers] *)
  | Sub_collection of string * string  (** [p.clients]: set-valued attribute *)

type binding = { var : string; source : source }
type query = { select : projection; from : binding list; where : pred }

val literal_to_value : literal -> Tb_store.Value.t

(** [eval_cmp cmp a b] compares two primitive values.
    Raises [Invalid_argument] on incomparable values. *)
val eval_cmp : cmp -> Tb_store.Value.t -> Tb_store.Value.t -> bool

val agg_name : agg -> string
val pp_cmp : Format.formatter -> cmp -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_projection : Format.formatter -> projection -> unit
val pp_pred : Format.formatter -> pred -> unit
val pp_query : Format.formatter -> query -> unit

(** Conjuncts of a predicate, [True]s dropped. *)
val conjuncts : pred -> pred list
