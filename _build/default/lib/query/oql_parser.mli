(** Recursive-descent parser for the OQL subset.

    Grammar:
    {v
    query    ::= SELECT expr FROM binding (, binding)* [WHERE pred]
    binding  ::= ident IN source
    source   ::= ident | ident . ident
    pred     ::= atom (AND atom)*
    atom     ::= expr cmp expr | ( pred )
    expr     ::= literal | ident [. ident]
               | [ field (, field)* ]        -- tuple constructor
    select   ::= expr | agg ( expr )         -- agg: count sum avg min max
    field    ::= ident : expr | ident . ident  -- shorthand names the attr
    v} *)

exception Parse_error of string

(** [parse s] — raises {!Parse_error} (or {!Oql_lexer.Lex_error}) on bad
    input. *)
val parse : string -> Oql_ast.query

(** Parse just a predicate (handy in tests). *)
val parse_pred : string -> Oql_ast.pred
