(** Physical plans and the binder that type-checks OQL onto a database.

    Two plan shapes cover the paper's workloads: single-extent selections
    (Sections 4.2-4.3) and the hierarchical parent/child join (Section 5)
    evaluated by one of the four algorithms NL / NOJOIN / PHJ / CHJ. *)

exception Unsupported of string

(** A conjunct of the form [var.attr CMP constant], already normalized. *)
type attr_pred = { attr : string; cmp : Oql_ast.cmp; const : Tb_store.Value.t }

(** How one extent is reached. *)
type access =
  | Seq_scan of { cls : string; preds : attr_pred list }
      (** full scan; all predicates evaluated through Handles (Figure 8
          left) *)
  | Index_scan of {
      index : Tb_store.Index_def.t;
      lo : int option;  (** inclusive *)
      hi : int option;  (** exclusive *)
      sorted : bool;
          (** sort the matching Rids before fetching — the Section 4.2
              optimization (Figure 8 right) *)
      residual : attr_pred list;
    }

type join_algo =
  | NL  (** parent-to-child navigation *)
  | NOJOIN  (** child-to-parent navigation *)
  | PHJ  (** hash the parents and join *)
  | CHJ  (** hash the children and join *)
  | PHHJ
      (** hybrid PHJ: partitions that exceed memory spill to disk instead
          of swapping — the fix the paper names but never tested *)
  | CHHJ  (** hybrid CHJ *)
  | SMJ
      (** pointer-based sort-merge — the family the authors "started
          testing [...] but they proved to be worse than hash-based ones" *)

type t =
  | Selection of {
      var : string;
      cls : string;
      access : access;
      select : Oql_ast.expr;
      aggregate : Oql_ast.agg option;
    }
  | Hier_join of {
      algo : join_algo;
      parent_var : string;
      parent_cls : string;
      child_var : string;
      child_cls : string;
      set_attr : string;  (** parent's collection of children (NL) *)
      inv_attr : string option;
          (** child's back-reference (all algorithms except NL) *)
      parent_access : access;
      child_access : access;
      partitions : int;
          (** hybrid hashing: how many partitions the build side is split
              into (1 = everything stays in memory) *)
      select : Oql_ast.expr;
      aggregate : Oql_ast.agg option;
    }

(** {2 Binding} *)

(** The semantic shape of a bound query, before access paths and algorithms
    are chosen. *)
type bound =
  | B_selection of {
      var : string;
      cls : string;
      preds : attr_pred list;
      select : Oql_ast.expr;
      aggregate : Oql_ast.agg option;
    }
  | B_hier of {
      parent_var : string;
      parent_cls : string;
      child_var : string;
      child_cls : string;
      set_attr : string;
      inv_attr : string option;
      parent_preds : attr_pred list;
      child_preds : attr_pred list;
      select : Oql_ast.expr;
      aggregate : Oql_ast.agg option;
    }

(** [bind db q] resolves extents against the schema roots, splits the
    predicate per range variable, and infers the child→parent inverse
    attribute from the schema when one exists.
    Raises {!Unsupported} on queries outside the subset, [Invalid_argument]
    on unknown names/attributes. *)
val bind : Tb_store.Database.t -> Oql_ast.query -> bound

(** {2 Helpers shared with the executor and planner} *)

(** [key_range pred] is the (lo, hi) window (inclusive, exclusive) an
    integer comparison pins down, or [None] for non-integer predicates. *)
val key_range : attr_pred -> (int option * int option) option

(** Attributes of [var] the expression reads, and whether it uses the
    object itself. *)
val needed_attrs : string -> Oql_ast.expr -> string list * bool

val algo_name : join_algo -> string
val pp : Format.formatter -> t -> unit
