lib/sim/clock.ml:
