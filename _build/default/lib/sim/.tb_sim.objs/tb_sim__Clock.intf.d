lib/sim/clock.mli:
