lib/sim/rng.mli:
