lib/sim/sim.ml: Clock Cost_model Counters Float Rng
