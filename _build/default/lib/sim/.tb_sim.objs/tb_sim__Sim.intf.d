lib/sim/sim.mli: Clock Cost_model Counters Rng
