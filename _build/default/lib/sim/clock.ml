type t = { mutable now_ms : float }

let create () = { now_ms = 0.0 }

let advance t ms =
  if ms < 0.0 then invalid_arg "Clock.advance: negative duration";
  t.now_ms <- t.now_ms +. ms

let now_ms t = t.now_ms
let now_s t = t.now_ms /. 1000.0
let reset t = t.now_ms <- 0.0
