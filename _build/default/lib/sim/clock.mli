(** The simulated elapsed-time clock.

    All times are kept in milliseconds of simulated wall-clock time.  The
    paper concludes (Section 3.5) that elapsed time is "as good a measure as
    anything else" because it tracks I/Os and RPCs; here it is defined as
    exactly their weighted sum. *)

type t

val create : unit -> t

(** [advance t ms] moves the clock forward; negative amounts are rejected. *)
val advance : t -> float -> unit

(** Current simulated time in milliseconds since [create]/[reset]. *)
val now_ms : t -> float

(** Current simulated time in seconds — the unit of every paper table. *)
val now_s : t -> float

val reset : t -> unit
