type t = { mutable state : int }

(* lrand48 parameters: x' = (a * x + c) mod 2^48, output = bits 47..17. *)
let a = 0x5DEECE66D
let c = 0xB
let mask48 = (1 lsl 48) - 1

let create seed = { state = ((seed lsl 16) lxor 0x330E) land mask48 }

let copy t = { state = t.state }

let step t =
  t.state <- ((a * t.state) + c) land mask48;
  t.state lsr 17 (* 31 random bits *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then step t land (bound - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let limit = 0x40000000 - (0x40000000 mod bound) in
    let rec draw () =
      let v = step t land 0x3FFFFFFF in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let float t bound = float_of_int (step t) /. 2147483648.0 *. bound

let bool t = step t land 1 = 1

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
