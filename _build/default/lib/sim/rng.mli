(** Deterministic pseudo-random number generator.

    A 48-bit linear congruential generator with the same parameters as the
    Unix [lrand48] family, which is what the paper's loading programs used to
    randomize the doctor/patient relationship (Section 2).  Determinism
    matters: every experiment must be exactly reproducible from a seed. *)

type t

(** [create seed] returns a generator initialised from [seed]. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0., bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] is a random permutation of [0 .. n-1]. *)
val permutation : t -> int -> int array

(** [pick t arr] is a uniformly chosen element of [arr].
    Raises [Invalid_argument] on an empty array. *)
val pick : t -> 'a array -> 'a
