lib/statdb/stat_report.ml: Buffer Hashtbl Int List Printf Stat_store
