lib/statdb/stat_report.mli: Stat_store
