lib/statdb/stat_schema.ml: Tb_store
