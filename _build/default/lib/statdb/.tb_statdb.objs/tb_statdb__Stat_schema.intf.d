lib/statdb/stat_schema.mli: Tb_store
