lib/statdb/stat_store.ml: Buffer List Printf Stat_schema Tb_query Tb_sim Tb_storage Tb_store
