lib/statdb/stat_store.mli: Tb_query Tb_storage Tb_store
