let groups store =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (o : Stat_store.observation) ->
      let key = (o.Stat_store.cluster, o.Stat_store.algo) in
      (match Hashtbl.find_opt table key with
      | Some rows -> rows := o :: !rows
      | None ->
          Hashtbl.replace table key (ref [ o ]);
          order := key :: !order))
    (Stat_store.observations store);
  List.rev_map (fun key -> (key, List.rev !(Hashtbl.find table key))) !order

let group_name (cluster, algo) = Printf.sprintf "%s/%s" cluster algo

let gnuplot_data store =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (key, rows) ->
      Buffer.add_string buf (Printf.sprintf "# %s\n" (group_name key));
      Buffer.add_string buf "# selectivity_pct  elapsed_s\n";
      let sorted =
        List.sort
          (fun (a : Stat_store.observation) b ->
            Int.compare a.Stat_store.selectivity b.Stat_store.selectivity)
          rows
      in
      List.iter
        (fun (o : Stat_store.observation) ->
          Buffer.add_string buf
            (Printf.sprintf "%d  %.3f\n" o.Stat_store.selectivity
               o.Stat_store.elapsed_s))
        sorted;
      Buffer.add_string buf "\n\n")
    (groups store);
  Buffer.contents buf

let gnuplot_script ~data_file store =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "set xlabel \"selectivity (%)\"\n";
  Buffer.add_string buf "set ylabel \"elapsed (simulated s)\"\n";
  Buffer.add_string buf "set key left top\n";
  Buffer.add_string buf "plot \\\n";
  let gs = groups store in
  List.iteri
    (fun i (key, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S index %d with linespoints title %S%s\n" data_file
           i (group_name key)
           (if i = List.length gs - 1 then "" else ", \\")))
    gs;
  Buffer.contents buf

let summary store =
  let buf = Buffer.create 256 in
  let obs = Stat_store.observations store in
  Buffer.add_string buf
    (Printf.sprintf "%d observations across %d groups\n" (List.length obs)
       (List.length (groups store)));
  List.iter
    (fun ((_, algo) as key, rows) ->
      let n = List.length rows in
      let total =
        List.fold_left
          (fun acc (o : Stat_store.observation) -> acc +. o.Stat_store.elapsed_s)
          0.0 rows
      in
      ignore algo;
      Buffer.add_string buf
        (Printf.sprintf "  %-24s %4d runs, mean %8.2f s\n" (group_name key) n
           (total /. float_of_int (max 1 n))))
    (groups store);
  (match
     List.fold_left
       (fun acc (o : Stat_store.observation) ->
         match acc with
         | Some (w : Stat_store.observation)
           when w.Stat_store.elapsed_s >= o.Stat_store.elapsed_s ->
             acc
         | _ -> Some o)
       None obs
   with
  | Some w ->
      Buffer.add_string buf
        (Printf.sprintf "slowest: %s on %s at %d%% — %.2f s\n" w.Stat_store.algo
           w.Stat_store.cluster w.Stat_store.selectivity w.Stat_store.elapsed_s)
  | None -> ());
  Buffer.contents buf
