(** Turning stored benchmark results into analysis inputs.

    The authors thank Jérôme Siméon "for giving us a hand in using YAT to
    convert data from O2 to Gnuplot" — the stats database is only useful if
    its contents can reach plotting and data-analysis tools.  This module
    renders a {!Stat_store} into Gnuplot-ready [.dat] series and a plot
    script, plus a quick textual digest. *)

(** [gnuplot_data store] renders one [.dat] block per (cluster, algorithm)
    group — selectivity vs elapsed seconds, sorted by selectivity —
    separated by double blank lines with [# name] headers, directly
    loadable with Gnuplot's [index] syntax. *)
val gnuplot_data : Stat_store.t -> string

(** [gnuplot_script ~data_file store] is a plot script covering every group
    present in the store. *)
val gnuplot_script : data_file:string -> Stat_store.t -> string

(** [summary store] is a short digest: observation count, per-algorithm
    mean elapsed time, and the slowest run. *)
val summary : Stat_store.t -> string
