lib/storage/buffer_pool.ml: Hashtbl Page_id Page_layout
