lib/storage/buffer_pool.mli: Page_id Page_layout
