lib/storage/cache_stack.ml: Buffer_pool Disk Page_layout Tb_sim
