lib/storage/cache_stack.mli: Disk Page_id Page_layout Tb_sim
