lib/storage/disk.ml: Array List Page_id Page_layout String Tb_sim
