lib/storage/disk.mli: Page_id Page_layout Tb_sim
