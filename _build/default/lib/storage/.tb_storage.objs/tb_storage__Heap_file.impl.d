lib/storage/heap_file.ml: Bytes Cache_stack Disk Page_id Page_layout Rid Tb_sim
