lib/storage/heap_file.mli: Cache_stack Rid
