lib/storage/page_layout.ml: Bytes Int List
