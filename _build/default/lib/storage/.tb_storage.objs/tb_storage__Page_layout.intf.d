lib/storage/page_layout.mli:
