lib/storage/rid.ml: Bytes Format Hashtbl Int Int32
