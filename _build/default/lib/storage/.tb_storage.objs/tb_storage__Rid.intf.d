lib/storage/rid.mli: Format
