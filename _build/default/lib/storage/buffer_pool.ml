(* Doubly-linked LRU list threaded through a hash table. [head] is the least
   recently used node, [tail] the most recent. *)

type node = {
  id : Page_id.t;
  page : Page_layout.t;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (Page_id.t, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
}

let create ~capacity_pages =
  if capacity_pages <= 0 then invalid_arg "Buffer_pool.create: capacity";
  { capacity = capacity_pages; table = Hashtbl.create 1024; head = None; tail = None }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_tail t node =
  node.prev <- t.tail;
  node.next <- None;
  (match t.tail with Some old -> old.next <- Some node | None -> t.head <- Some node);
  t.tail <- Some node

let find t id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some node ->
      unlink t node;
      push_tail t node;
      Some node.page

let mem t id = Hashtbl.mem t.table id

let add t id page =
  match Hashtbl.find_opt t.table id with
  | Some node ->
      unlink t node;
      push_tail t node;
      None
  | None ->
      let victim =
        if Hashtbl.length t.table >= t.capacity then
          match t.head with
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.id;
              Some (lru.id, lru.page)
          | None -> None
        else None
      in
      let node = { id; page; prev = None; next = None } in
      Hashtbl.replace t.table id node;
      push_tail t node;
      victim

let remove t id =
  match Hashtbl.find_opt t.table id with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table id

let iter t f =
  let rec go = function
    | None -> ()
    | Some node ->
        f node.id node.page;
        go node.next
  in
  go t.head

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
