(** The simulated disk: a set of files, each an extendable array of slotted
    pages.

    The disk is the authoritative store.  It charges nothing by itself —
    I/O costs are charged by the buffer layer ({!Cache_stack}) when pages
    actually cross the disk/server-cache boundary, mirroring how the paper
    counts [D2SCreadpages]. *)

type t

val create : Tb_sim.Sim.t -> t

(** Page size in bytes (from the cost model; 4K in the paper). *)
val page_size : t -> int

(** [new_file t ~name] allocates an empty file and returns its id. *)
val new_file : t -> name:string -> int

val file_count : t -> int
val file_name : t -> int -> string

(** [find_file t ~name] is the id of the file named [name], if any. *)
val find_file : t -> name:string -> int option

(** Number of pages currently allocated to a file. *)
val page_count : t -> int -> int

(** [page t id] is the in-memory image of that page. Raises
    [Invalid_argument] if the page does not exist. *)
val page : t -> Page_id.t -> Page_layout.t

(** [append_page t ~file] allocates a fresh page at the end of [file] and
    returns its index. *)
val append_page : t -> file:int -> int

(** Total pages across all files (the "buy big!" arithmetic of §3.1). *)
val total_pages : t -> int

(** Total bytes of allocated pages. *)
val total_bytes : t -> int
