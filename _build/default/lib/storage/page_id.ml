type t = { file : int; index : int }

let make ~file ~index = { file; index }

let compare a b =
  let c = Int.compare a.file b.file in
  if c <> 0 then c else Int.compare a.index b.index

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (t.file, t.index)
let pp ppf t = Format.fprintf ppf "%d/%d" t.file t.index
