(** Identity of one page: which file, which page index within it. *)

type t = { file : int; index : int }

val make : file:int -> index:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
