lib/store/big_collection.ml: Bytes Codec List Tb_storage
