lib/store/big_collection.mli: Tb_storage Value
