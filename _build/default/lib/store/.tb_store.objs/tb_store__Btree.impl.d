lib/store/btree.ml: Array Bytes Int Int32 Int64 List Tb_sim Tb_storage
