lib/store/btree.mli: Tb_storage
