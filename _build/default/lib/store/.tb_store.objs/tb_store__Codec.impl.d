lib/store/codec.ml: Bytes Int32 Int64 List String Tb_storage Value
