lib/store/codec.mli: Value
