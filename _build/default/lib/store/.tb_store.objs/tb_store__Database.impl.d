lib/store/database.ml: Big_collection Btree Bytes Codec Handle Handle_table Hashtbl Index_def List Obj_header Schema String Tb_sim Tb_storage Transaction Value
