lib/store/database.mli: Handle Handle_table Index_def Obj_header Schema Tb_sim Tb_storage Transaction Value
