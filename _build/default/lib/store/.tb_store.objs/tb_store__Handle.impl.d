lib/store/handle.ml: Tb_storage Value
