lib/store/handle.mli: Tb_storage Value
