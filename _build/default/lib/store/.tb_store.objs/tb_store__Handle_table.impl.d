lib/store/handle_table.ml: Handle Hashtbl Queue Tb_sim Tb_storage
