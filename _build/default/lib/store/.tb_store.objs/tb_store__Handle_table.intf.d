lib/store/handle_table.mli: Handle Tb_sim Tb_storage Value
