lib/store/index_def.ml: Array Btree Float
