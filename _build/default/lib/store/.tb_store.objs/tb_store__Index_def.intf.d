lib/store/index_def.mli: Btree
