lib/store/obj_header.ml: Array Bytes Option
