lib/store/obj_header.mli:
