lib/store/schema.ml: Array Format List String Value
