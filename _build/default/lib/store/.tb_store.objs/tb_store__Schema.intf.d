lib/store/schema.mli: Format Value
