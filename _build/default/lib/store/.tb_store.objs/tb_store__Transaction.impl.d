lib/store/transaction.ml: Tb_sim Tb_storage
