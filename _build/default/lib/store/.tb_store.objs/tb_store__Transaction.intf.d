lib/store/transaction.mli: Tb_sim Tb_storage
