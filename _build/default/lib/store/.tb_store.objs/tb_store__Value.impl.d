lib/store/value.ml: Bool Char Float Format Int List String Tb_storage
