lib/store/value.mli: Format Tb_storage
