(** Spilled large collections.

    Collections whose encoding exceeds a page are stored outside their owner
    as a chain of chunk records in a dedicated collection file (Section 2).
    The owner keeps a [Value.Big_set] holding the head chunk's Rid.
    Iterating the collection therefore costs real page fetches — which is
    why, in the 1:1000 database, a provider's 1000 clients live away from
    the provider object itself. *)

(** Encoded-collection size (bytes) above which {!Database} spills a set.
    Equal to the page size in the paper's O2. *)
val spill_threshold : int

(** [create heap elems] writes the chunks into [heap] and returns the head
    chunk's Rid. The element order is preserved. *)
val create : Tb_storage.Heap_file.t -> Value.t list -> Tb_storage.Rid.t

(** [iter heap head f] visits every element in order, fetching chunk pages
    as it goes. *)
val iter : Tb_storage.Heap_file.t -> Tb_storage.Rid.t -> (Value.t -> unit) -> unit

(** [length heap head] walks the chain and counts elements. *)
val length : Tb_storage.Heap_file.t -> Tb_storage.Rid.t -> int

val to_list : Tb_storage.Heap_file.t -> Tb_storage.Rid.t -> Value.t list
