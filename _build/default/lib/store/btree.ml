(* One node per page, stored as record 0 of the page.

   Leaf encoding:     u8 1 | i32 next_page | u16 n | n * (i64 key, 8B rid)
   Internal encoding: u8 0 | u16 n | (n+1) * i32 child | n * (i64 key, 8B rid)

   Entries and separators are (key, rid) pairs under lexicographic order, so
   the tree never contains equal keys internally; child_i of an internal
   node covers entries e with sep_(i-1) <= e < sep_i. *)

module Rid = Tb_storage.Rid

type entry = { key : int; rid : Rid.t }

type node =
  | Leaf of { next : int; entries : entry array }
  | Internal of { children : int array; seps : entry array }

type t = {
  stack : Tb_storage.Cache_stack.t;
  file : int;
  name : string;
  mutable root : int;
  mutable entries : int;
}

let leaf_cap = 200
let internal_cap = 150

let cmp_entry a b =
  let c = Int.compare a.key b.key in
  if c <> 0 then c else Rid.compare a.rid b.rid

(* --- node serialization --- *)

let entry_bytes = 16

let encode_node node =
  match node with
  | Leaf { next; entries } ->
      let b = Bytes.create (7 + (entry_bytes * Array.length entries)) in
      Bytes.set_uint8 b 0 1;
      Bytes.set_int32_le b 1 (Int32.of_int next);
      Bytes.set_uint16_le b 5 (Array.length entries);
      Array.iteri
        (fun i e ->
          let pos = 7 + (entry_bytes * i) in
          Bytes.set_int64_le b pos (Int64.of_int e.key);
          Bytes.blit (Rid.encode e.rid) 0 b (pos + 8) 8)
        entries;
      b
  | Internal { children; seps } ->
      let n = Array.length seps in
      assert (Array.length children = n + 1);
      let b = Bytes.create (3 + (4 * (n + 1)) + (entry_bytes * n)) in
      Bytes.set_uint8 b 0 0;
      Bytes.set_uint16_le b 1 n;
      Array.iteri
        (fun i c -> Bytes.set_int32_le b (3 + (4 * i)) (Int32.of_int c))
        children;
      let base = 3 + (4 * (n + 1)) in
      Array.iteri
        (fun i e ->
          let pos = base + (entry_bytes * i) in
          Bytes.set_int64_le b pos (Int64.of_int e.key);
          Bytes.blit (Rid.encode e.rid) 0 b (pos + 8) 8)
        seps;
      b

let decode_node b =
  let read_entry pos =
    {
      key = Int64.to_int (Bytes.get_int64_le b pos);
      rid = Rid.decode b ~pos:(pos + 8);
    }
  in
  if Bytes.get_uint8 b 0 = 1 then begin
    let next = Int32.to_int (Bytes.get_int32_le b 1) in
    let n = Bytes.get_uint16_le b 5 in
    Leaf { next; entries = Array.init n (fun i -> read_entry (7 + (entry_bytes * i))) }
  end
  else begin
    let n = Bytes.get_uint16_le b 1 in
    let children =
      Array.init (n + 1) (fun i -> Int32.to_int (Bytes.get_int32_le b (3 + (4 * i))))
    in
    let base = 3 + (4 * (n + 1)) in
    Internal { children; seps = Array.init n (fun i -> read_entry (base + (entry_bytes * i))) }
  end

(* --- page access --- *)

let page_for t index writable =
  let pid = Tb_storage.Page_id.make ~file:t.file ~index in
  if writable then Tb_storage.Cache_stack.fetch_for_write t.stack pid
  else Tb_storage.Cache_stack.fetch t.stack pid

let read_node t index =
  decode_node (Tb_storage.Page_layout.read (page_for t index false) 0)

let write_node t index node =
  let page = page_for t index true in
  let b = encode_node node in
  if Tb_storage.Page_layout.slot_count page = 0 then
    match Tb_storage.Page_layout.insert page b with
    | Some 0 -> ()
    | Some _ | None -> failwith "Btree: node page corrupt"
  else if not (Tb_storage.Page_layout.update page 0 b) then
    failwith "Btree: node exceeds page"

let alloc_node t node =
  let index =
    Tb_storage.Disk.append_page (Tb_storage.Cache_stack.disk t.stack) ~file:t.file
  in
  write_node t index node;
  index

let create stack ~name =
  let file = Tb_storage.Disk.new_file (Tb_storage.Cache_stack.disk stack) ~name in
  let t = { stack; file; name; root = 0; entries = 0 } in
  t.root <- alloc_node t (Leaf { next = -1; entries = [||] });
  t

let name t = t.name
let entry_count t = t.entries

let page_count t =
  Tb_storage.Disk.page_count (Tb_storage.Cache_stack.disk t.stack) t.file

let sim t = Tb_storage.Cache_stack.sim t.stack

(* Binary search: index of the first element of [arr] strictly greater than
   [e]; charges the comparisons it performs. *)
let upper_bound t arr e =
  let cmps = ref 0 in
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr cmps;
    if cmp_entry e arr.(mid) < 0 then hi := mid else lo := mid + 1
  done;
  Tb_sim.Sim.charge_compare (sim t) !cmps;
  !lo

(* Position of the first element >= e. *)
let lower_bound t arr e =
  let cmps = ref 0 in
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr cmps;
    if cmp_entry arr.(mid) e < 0 then lo := mid + 1 else hi := mid
  done;
  Tb_sim.Sim.charge_compare (sim t) !cmps;
  !lo

let array_insert arr pos x =
  let n = Array.length arr in
  Array.init (n + 1) (fun i ->
      if i < pos then arr.(i) else if i = pos then x else arr.(i - 1))

let array_remove arr pos =
  let n = Array.length arr in
  Array.init (n - 1) (fun i -> if i < pos then arr.(i) else arr.(i + 1))

(* --- insertion --- *)

type split = No_split | Split of entry * int (* separator, right page *)

let rec ins t index e =
  match read_node t index with
  | Leaf { next; entries } ->
      let pos = lower_bound t entries e in
      if pos < Array.length entries && cmp_entry entries.(pos) e = 0 then
        No_split (* duplicate (key, rid): ignored *)
      else begin
        let entries = array_insert entries pos e in
        t.entries <- t.entries + 1;
        if Array.length entries <= leaf_cap then begin
          write_node t index (Leaf { next; entries });
          No_split
        end
        else begin
          let mid = Array.length entries / 2 in
          let left = Array.sub entries 0 mid in
          let right = Array.sub entries mid (Array.length entries - mid) in
          let right_page = alloc_node t (Leaf { next; entries = right }) in
          write_node t index (Leaf { next = right_page; entries = left });
          Split (right.(0), right_page)
        end
      end
  | Internal { children; seps } -> (
      let child_idx = upper_bound t seps e in
      match ins t children.(child_idx) e with
      | No_split -> No_split
      | Split (sep, right_page) ->
          let seps = array_insert seps child_idx sep in
          let children = array_insert children (child_idx + 1) right_page in
          if Array.length seps <= internal_cap then begin
            write_node t index (Internal { children; seps });
            No_split
          end
          else begin
            let mid = Array.length seps / 2 in
            let up = seps.(mid) in
            let left_seps = Array.sub seps 0 mid in
            let right_seps = Array.sub seps (mid + 1) (Array.length seps - mid - 1) in
            let left_children = Array.sub children 0 (mid + 1) in
            let right_children =
              Array.sub children (mid + 1) (Array.length children - mid - 1)
            in
            let right_page =
              alloc_node t (Internal { children = right_children; seps = right_seps })
            in
            write_node t index (Internal { children = left_children; seps = left_seps });
            Split (up, right_page)
          end)

let insert t ~key ~rid =
  match ins t t.root { key; rid } with
  | No_split -> ()
  | Split (sep, right_page) ->
      let new_root =
        alloc_node t (Internal { children = [| t.root; right_page |]; seps = [| sep |] })
      in
      t.root <- new_root

(* --- lookup --- *)

(* Leaf that may contain the first entry >= e, plus the in-leaf position. *)
let rec descend t index e =
  match read_node t index with
  | Leaf { next; entries } -> (index, next, entries, lower_bound t entries e)
  | Internal { children; seps } -> descend t children.(upper_bound t seps e) e

(* Walk entries in order starting at the first >= start, while [keep] holds. *)
let walk_from t start ~keep f =
  let _, next, entries, pos = descend t t.root start in
  let rec leaf_loop next entries pos =
    if pos >= Array.length entries then begin
      if next >= 0 then
        match read_node t next with
        | Leaf { next; entries } -> leaf_loop next entries 0
        | Internal _ -> failwith "Btree: leaf chain reaches internal node"
    end
    else begin
      let e = entries.(pos) in
      Tb_sim.Sim.charge_compare (sim t) 1;
      if keep e then begin
        f e;
        leaf_loop next entries (pos + 1)
      end
    end
  in
  leaf_loop next entries pos

let search t ~key =
  let acc = ref [] in
  walk_from t { key; rid = Rid.nil }
    ~keep:(fun e -> e.key = key)
    (fun e -> acc := e.rid :: !acc);
  List.rev !acc

let range t ?lo ?hi f =
  let start =
    match lo with Some k -> { key = k; rid = Rid.nil } | None -> { key = min_int; rid = Rid.nil }
  in
  let keep e = match hi with Some h -> e.key < h | None -> true in
  walk_from t start ~keep (fun e -> f e.key e.rid)

let iter t f = range t f

(* --- deletion with rebalancing ---

   Underfull nodes (below half capacity) borrow from a sibling when one can
   spare an entry, and merge with a sibling otherwise; merges may propagate
   underflow upward, and an internal root left with a single child is
   replaced by it (height shrink).  Merged-away pages are simply abandoned
   (the simulated disk has no free list; O2 reclaimed space on
   dump-and-reload, Section 2). *)

let min_leaf = leaf_cap / 2
let min_internal = internal_cap / 2

let internal_parts = function
  | Internal { children; seps } -> (children, seps)
  | Leaf _ -> failwith "Btree: expected internal node"

(* Rebalance underfull child [i] of the internal node at [index]; returns
   the parent's new state. *)
let fix_child t index i =
  let children, seps = internal_parts (read_node t index) in
  let child = read_node t children.(i) in
  let borrow_from_left () =
    if i = 0 then false
    else
      match (read_node t children.(i - 1), child) with
      | Leaf left, Leaf right when Array.length left.entries > min_leaf ->
          let n = Array.length left.entries in
          let moved = left.entries.(n - 1) in
          write_node t children.(i - 1)
            (Leaf { left with entries = Array.sub left.entries 0 (n - 1) });
          write_node t children.(i)
            (Leaf { right with entries = array_insert right.entries 0 moved });
          let seps = Array.copy seps in
          seps.(i - 1) <- moved;
          write_node t index (Internal { children; seps });
          true
      | Internal left, Internal right
        when Array.length left.seps > min_internal ->
          let n = Array.length left.seps in
          (* Rotate through the parent separator. *)
          let right' =
            Internal
              {
                children = array_insert right.children 0 left.children.(n);
                seps = array_insert right.seps 0 seps.(i - 1);
              }
          in
          let seps = Array.copy seps in
          seps.(i - 1) <- left.seps.(n - 1);
          write_node t children.(i - 1)
            (Internal
               {
                 children = Array.sub left.children 0 n;
                 seps = Array.sub left.seps 0 (n - 1);
               });
          write_node t children.(i) right';
          write_node t index (Internal { children; seps });
          true
      | _ -> false
  in
  let borrow_from_right () =
    if i >= Array.length children - 1 then false
    else
      match (child, read_node t children.(i + 1)) with
      | Leaf left, Leaf right when Array.length right.entries > min_leaf ->
          let moved = right.entries.(0) in
          write_node t children.(i)
            (Leaf { left with entries = array_insert left.entries (Array.length left.entries) moved });
          write_node t
            children.(i + 1)
            (Leaf { right with entries = array_remove right.entries 0 });
          let seps = Array.copy seps in
          seps.(i) <- right.entries.(1);
          write_node t index (Internal { children; seps });
          true
      | Internal left, Internal right
        when Array.length right.seps > min_internal ->
          let left' =
            Internal
              {
                children =
                  array_insert left.children (Array.length left.children)
                    right.children.(0);
                seps = array_insert left.seps (Array.length left.seps) seps.(i);
              }
          in
          let seps = Array.copy seps in
          seps.(i) <- right.seps.(0);
          write_node t children.(i) left';
          write_node t
            children.(i + 1)
            (Internal
               {
                 children = array_remove right.children 0;
                 seps = array_remove right.seps 0;
               });
          write_node t index (Internal { children; seps });
          true
      | _ -> false
  in
  (* Merge child [l] with child [l+1]. *)
  let merge l =
    (match (read_node t children.(l), read_node t children.(l + 1)) with
    | Leaf left, Leaf right ->
        write_node t children.(l)
          (Leaf { next = right.next; entries = Array.append left.entries right.entries })
    | Internal left, Internal right ->
        write_node t children.(l)
          (Internal
             {
               children = Array.append left.children right.children;
               seps =
                 Array.concat [ left.seps; [| seps.(l) |]; right.seps ];
             })
    | _ -> failwith "Btree: sibling arity mismatch");
    write_node t index
      (Internal
         { children = array_remove children (l + 1); seps = array_remove seps l })
  in
  if not (borrow_from_left () || borrow_from_right ()) then
    if i > 0 then merge (i - 1) else merge i

let underfull = function
  | Leaf { entries; _ } -> Array.length entries < min_leaf
  | Internal { seps; _ } -> Array.length seps < min_internal

(* Returns (found, now_underfull). *)
let rec delete_rec t index e =
  match read_node t index with
  | Leaf { next; entries } ->
      let pos = lower_bound t entries e in
      if pos < Array.length entries && cmp_entry entries.(pos) e = 0 then begin
        let entries = array_remove entries pos in
        write_node t index (Leaf { next; entries });
        (true, Array.length entries < min_leaf)
      end
      else (false, false)
  | Internal { children; seps } ->
      let i = upper_bound t seps e in
      let found, under = delete_rec t children.(i) e in
      if found && under then begin
        fix_child t index i;
        (true, underfull (read_node t index))
      end
      else (found, false)

let delete t ~key ~rid =
  let found, _ = delete_rec t t.root { key; rid } in
  if found then begin
    t.entries <- t.entries - 1;
    (* Height shrink: an internal root with a single child is redundant. *)
    (match read_node t t.root with
    | Internal { children; seps } when Array.length seps = 0 ->
        t.root <- children.(0)
    | Internal _ | Leaf _ -> ())
  end;
  found

let clustering_factor t =
  let in_order = ref 0 and total = ref 0 in
  let prev = ref None in
  iter t (fun _ rid ->
      (match !prev with
      | Some p -> begin
          incr total;
          if Rid.compare p rid <= 0 then incr in_order
        end
      | None -> ());
      prev := Some rid);
  if !total = 0 then 1.0 else float_of_int !in_order /. float_of_int !total

let key_bounds t =
  let bounds = ref None in
  iter t (fun key _ ->
      bounds :=
        Some
          (match !bounds with
          | None -> (key, key)
          | Some (lo, hi) -> (min lo key, max hi key)));
  !bounds

let check_invariants t =
  let rec check index lo hi =
    match read_node t index with
    | Leaf { entries; _ } ->
        Array.iteri
          (fun i e ->
            (match lo with
            | Some l when cmp_entry e l < 0 -> failwith "btree: entry below bound"
            | _ -> ());
            (match hi with
            | Some h when cmp_entry e h >= 0 -> failwith "btree: entry above bound"
            | _ -> ());
            if i > 0 && cmp_entry entries.(i - 1) e >= 0 then
              failwith "btree: leaf out of order")
          entries
    | Internal { children; seps } ->
        if Array.length children <> Array.length seps + 1 then
          failwith "btree: child/sep arity";
        Array.iteri
          (fun i sep ->
            if i > 0 && cmp_entry seps.(i - 1) sep >= 0 then
              failwith "btree: separators out of order")
          seps;
        Array.iteri
          (fun i child ->
            let lo' = if i = 0 then lo else Some seps.(i - 1) in
            let hi' = if i = Array.length seps then hi else Some seps.(i) in
            check child lo' hi')
          children
  in
  (* Occupancy: every non-root node is at least half full. *)
  let rec occupancy index =
    if index <> t.root then begin
      match read_node t index with
      | Leaf { entries; _ } ->
          if Array.length entries < min_leaf then failwith "btree: underfull leaf"
      | Internal { seps; children } ->
          if Array.length seps < min_internal then
            failwith "btree: underfull internal node"
          else Array.iter occupancy children
    end
    else
      match read_node t index with
      | Leaf _ -> ()
      | Internal { children; _ } -> Array.iter occupancy children
  in
  occupancy t.root;
  check t.root None None;
  (* Every entry is reachable through the leaf chain. *)
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  if !n <> t.entries then failwith "btree: entry count mismatch"
