type t = {
  rid : Tb_storage.Rid.t;
  class_id : int;
  mutable value : Value.t;
  mutable refcount : int;
  mem_bytes : int;
}

let make ~rid ~class_id ~value ~mem_bytes =
  { rid; class_id; value; refcount = 1; mem_bytes }
