(** In-memory object representatives.

    Section 4 is a post-mortem of these: every object touched by a query
    gets a Handle — a structure that in O2 carries ~60 bytes of flags,
    type/version/index pointers and a refcount, and whose allocation and
    (delayed) destruction dominate the CPU cost of cold associative
    accesses.  The [kind] (fat vs compact) selects between the measured O2
    behaviour and the slimmed-down representative the paper proposes in
    Section 4.4; the ablation bench flips it. *)

type t = {
  rid : Tb_storage.Rid.t;
  class_id : int;
  mutable value : Value.t;
  mutable refcount : int;
  mem_bytes : int;  (** accounted against simulated RAM while live *)
}

val make :
  rid:Tb_storage.Rid.t -> class_id:int -> value:Value.t -> mem_bytes:int -> t
