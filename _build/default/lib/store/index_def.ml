type t = {
  id : int;
  name : string;
  cls : string;
  attr : string;
  tree : Btree.t;
  mutable clustering : float;
  mutable lo_key : int;
  mutable hi_key : int;
  mutable histogram : histogram option;
}

and histogram = { bucket_width : int; counts : int array; total : int }

let make ~id ~name ~cls ~attr ~tree =
  {
    id;
    name;
    cls;
    attr;
    tree;
    clustering = 1.0;
    lo_key = 0;
    hi_key = 0;
    histogram = None;
  }

let refresh_stats t =
  t.clustering <- Btree.clustering_factor t.tree;
  match Btree.key_bounds t.tree with
  | Some (lo, hi) ->
      t.lo_key <- lo;
      t.hi_key <- hi
  | None ->
      t.lo_key <- 0;
      t.hi_key <- 0

let build_histogram t ~buckets =
  if buckets <= 0 then invalid_arg "Index_def.build_histogram: buckets";
  refresh_stats t;
  let span = t.hi_key - t.lo_key + 1 in
  let bucket_width = max 1 ((span + buckets - 1) / buckets) in
  let counts = Array.make buckets 0 in
  let total = ref 0 in
  Btree.iter t.tree (fun key _ ->
      let b = min (buckets - 1) ((key - t.lo_key) / bucket_width) in
      counts.(b) <- counts.(b) + 1;
      incr total);
  t.histogram <- Some { bucket_width; counts; total = !total }

let uniform_below t k =
  if t.hi_key <= t.lo_key then if k > t.lo_key then 1.0 else 0.0
  else
    let span = float_of_int (t.hi_key - t.lo_key + 1) in
    Float.max 0.0 (Float.min 1.0 (float_of_int (k - t.lo_key) /. span))

let histogram_below t h k =
  if h.total = 0 then 0.0
  else if k <= t.lo_key then 0.0
  else begin
    let offset = k - t.lo_key in
    let full_buckets = min (Array.length h.counts) (offset / h.bucket_width) in
    let below = ref 0.0 in
    for b = 0 to full_buckets - 1 do
      below := !below +. float_of_int h.counts.(b)
    done;
    (* Linear interpolation inside the bucket the boundary falls in. *)
    if full_buckets < Array.length h.counts then begin
      let into = offset - (full_buckets * h.bucket_width) in
      below :=
        !below
        +. float_of_int h.counts.(full_buckets)
           *. float_of_int into /. float_of_int h.bucket_width
    end;
    Float.min 1.0 (!below /. float_of_int h.total)
  end

let selectivity_below t k =
  match t.histogram with
  | Some h -> histogram_below t h k
  | None -> uniform_below t k

let is_clustered t = t.clustering >= 0.8
