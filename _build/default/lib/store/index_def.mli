(** Index metadata: the catalog entry wrapping a {!Btree}.

    Keeps what the optimizer needs — which class and attribute the index
    covers, key bounds for uniform selectivity estimates, and the measured
    clustering factor (how well key order tracks physical order). *)

type t = {
  id : int;
  name : string;
  cls : string;
  attr : string;
  tree : Btree.t;
  mutable clustering : float;
  mutable lo_key : int;
  mutable hi_key : int;
  mutable histogram : histogram option;
}

(** Equi-width histogram over the key domain — the kind of statistic the
    paper set out to identify for its cost model ("our first task was to
    find out what statistics the system should maintain"). *)
and histogram = { bucket_width : int; counts : int array; total : int }

val make : id:int -> name:string -> cls:string -> attr:string -> tree:Btree.t -> t

(** Recompute clustering factor and key bounds by walking the leaves. *)
val refresh_stats : t -> unit

(** [build_histogram t ~buckets] walks the leaves once and installs an
    equi-width histogram ([buckets] must be positive). *)
val build_histogram : t -> buckets:int -> unit

(** [selectivity_below t k] estimates the fraction of entries with
    key < [k]: from the histogram when one is installed (with linear
    interpolation inside the boundary bucket), otherwise assuming uniform
    keys between the recorded bounds. *)
val selectivity_below : t -> int -> float

(** A clustered index: key order mostly follows physical order. *)
val is_clustered : t -> bool
