type ty =
  | TInt
  | TReal
  | TBool
  | TChar
  | TString
  | TRef of string
  | TSet of ty
  | TList of ty
  | TTuple of (string * ty) list

type cls = { cls_name : string; attrs : (string * ty) list }
type t = { classes : cls array; roots : (string * ty) list }

let rec check_ty class_names = function
  | TInt | TReal | TBool | TChar | TString -> ()
  | TRef name ->
      if not (List.mem name class_names) then
        invalid_arg ("Schema: reference to unknown class " ^ name)
  | TSet ty | TList ty -> check_ty class_names ty
  | TTuple fields -> List.iter (fun (_, ty) -> check_ty class_names ty) fields

let make ~classes ~roots =
  let names = List.map (fun c -> c.cls_name) classes in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup names with
  | Some n -> invalid_arg ("Schema: duplicate class " ^ n)
  | None -> ());
  List.iter
    (fun c -> List.iter (fun (_, ty) -> check_ty names ty) c.attrs)
    classes;
  List.iter (fun (_, ty) -> check_ty names ty) roots;
  { classes = Array.of_list classes; roots }

let classes t = Array.to_list t.classes
let roots t = t.roots

let find_class t name =
  match Array.find_opt (fun c -> String.equal c.cls_name name) t.classes with
  | Some c -> c
  | None -> raise Not_found

let class_id t name =
  let rec go i =
    if i >= Array.length t.classes then raise Not_found
    else if String.equal t.classes.(i).cls_name name then i
    else go (i + 1)
  in
  go 0

let class_of_id t id =
  if id < 0 || id >= Array.length t.classes then raise Not_found
  else t.classes.(id)

let attr_type t ~cls ~attr =
  let c = find_class t cls in
  match List.assoc_opt attr c.attrs with
  | Some ty -> ty
  | None -> raise Not_found

let rec conforms t ty v =
  match (ty, v) with
  | _, Value.Nil -> true
  | TInt, Value.Int _ -> true
  | TReal, Value.Real _ -> true
  | TBool, Value.Bool _ -> true
  | TChar, Value.Char _ -> true
  | TString, Value.String _ -> true
  | TRef _, Value.Ref _ -> true
  | (TSet _ | TList _), Value.Big_set _ -> true
  | TSet ty, Value.Set xs | TList ty, Value.List xs ->
      List.for_all (conforms t ty) xs
  | TTuple fields, Value.Tuple vs ->
      List.length fields = List.length vs
      && List.for_all2
           (fun (n, ty) (n', v) -> String.equal n n' && conforms t ty v)
           fields vs
  | ( ( TInt | TReal | TBool | TChar | TString | TRef _ | TSet _ | TList _
      | TTuple _ ),
      _ ) ->
      false

let rec pp_ty ppf = function
  | TInt -> Format.pp_print_string ppf "integer"
  | TReal -> Format.pp_print_string ppf "real"
  | TBool -> Format.pp_print_string ppf "boolean"
  | TChar -> Format.pp_print_string ppf "char"
  | TString -> Format.pp_print_string ppf "string"
  | TRef c -> Format.pp_print_string ppf c
  | TSet ty -> Format.fprintf ppf "set(%a)" pp_ty ty
  | TList ty -> Format.fprintf ppf "list(%a)" pp_ty ty
  | TTuple fields ->
      Format.fprintf ppf "tuple(@[%a@])"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (n, ty) -> Format.fprintf ppf "%s: %a" n pp_ty ty))
        fields
