type mode = Standard | Load_off

exception Out_of_memory

type t = {
  sim : Tb_sim.Sim.t;
  mutable mode : mode;
  mutable uncommitted : int;
  mutable log_bytes_pending : int;
  uncommitted_limit : int;
}

let create sim mode ~uncommitted_limit =
  if uncommitted_limit <= 0 then invalid_arg "Transaction.create: limit";
  { sim; mode; uncommitted = 0; log_bytes_pending = 0; uncommitted_limit }

let mode t = t.mode
let set_mode t m = t.mode <- m
let uncommitted t = t.uncommitted

let on_write t ~bytes =
  match t.mode with
  | Load_off -> ()
  | Standard ->
      t.uncommitted <- t.uncommitted + 1;
      if t.uncommitted > t.uncommitted_limit then raise Out_of_memory;
      (* Before/after images go to the log; charge a write per filled log
         page. *)
      t.log_bytes_pending <- t.log_bytes_pending + (2 * bytes);
      let page = t.sim.Tb_sim.Sim.cost.Tb_sim.Cost_model.page_size in
      while t.log_bytes_pending >= page do
        Tb_sim.Sim.charge_disk_write t.sim;
        t.log_bytes_pending <- t.log_bytes_pending - page
      done

let commit t stack =
  (match t.mode with
  | Standard ->
      if t.log_bytes_pending > 0 then begin
        Tb_sim.Sim.charge_disk_write t.sim;
        t.log_bytes_pending <- 0
      end
  | Load_off -> ());
  Tb_storage.Cache_stack.flush stack;
  t.uncommitted <- 0
