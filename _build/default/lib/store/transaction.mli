(** Transaction management: standard mode vs the "transaction-off" loading
    mode.

    Section 3.2's loading lessons, reproduced:
    - in standard mode every write is logged (costing I/O) and uncommitted
      objects pile up in memory until the famous "out of memory" — the
      loader must commit every few thousand objects;
    - the transaction-off mode drops the log and the locks, which is how a
      1 GB load gets from 12 hours toward 1. *)

type mode =
  | Standard  (** log maintained, bounded uncommitted set *)
  | Load_off  (** the O2 transaction-off loading mode *)

exception Out_of_memory
(** Raised in [Standard] mode when too many objects are created without
    committing. *)

type t

(** [create sim mode ~uncommitted_limit] — the limit is the number of
    uncommitted object creations/updates tolerated before
    {!Out_of_memory}. *)
val create : Tb_sim.Sim.t -> mode -> uncommitted_limit:int -> t

val mode : t -> mode
val set_mode : t -> mode -> unit
val uncommitted : t -> int

(** [on_write t ~bytes] accounts one object creation or update of [bytes]
    encoded size.  In [Standard] mode this charges log I/O (one page write
    per page worth of log) and may raise {!Out_of_memory}. *)
val on_write : t -> bytes:int -> unit

(** [commit t stack] flushes dirty pages and releases the uncommitted set.
    Charges the flush. *)
val commit : t -> Tb_storage.Cache_stack.t -> unit
