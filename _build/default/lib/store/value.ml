type t =
  | Nil
  | Int of int
  | Real of float
  | Bool of bool
  | Char of char
  | String of string
  | Ref of Tb_storage.Rid.t
  | Tuple of (string * t) list
  | Set of t list
  | List of t list
  | Big_set of Tb_storage.Rid.t

let field v name =
  match v with
  | Tuple fields -> (
      match List.assoc_opt name fields with
      | Some x -> x
      | None -> invalid_arg ("Value.field: no field " ^ name))
  | _ -> invalid_arg "Value.field: not a tuple"

let set_field v name x =
  match v with
  | Tuple fields ->
      if not (List.mem_assoc name fields) then
        invalid_arg ("Value.set_field: no field " ^ name);
      Tuple (List.map (fun (n, old) -> (n, if String.equal n name then x else old)) fields)
  | _ -> invalid_arg "Value.set_field: not a tuple"

let to_int = function Int i -> i | _ -> invalid_arg "Value.to_int"
let to_real = function Real r -> r | _ -> invalid_arg "Value.to_real"
let to_bool = function Bool b -> b | _ -> invalid_arg "Value.to_bool"
let to_char = function Char c -> c | _ -> invalid_arg "Value.to_char"
let to_string_exn = function String s -> s | _ -> invalid_arg "Value.to_string_exn"
let to_ref = function Ref r -> r | _ -> invalid_arg "Value.to_ref"

let elements = function
  | Set xs | List xs -> xs
  | _ -> invalid_arg "Value.elements"

let rec equal a b =
  match (a, b) with
  | Nil, Nil -> true
  | Int x, Int y -> Int.equal x y
  | Real x, Real y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Char x, Char y -> Char.equal x y
  | String x, String y -> String.equal x y
  | Ref x, Ref y | Big_set x, Big_set y -> Tb_storage.Rid.equal x y
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (nx, vx) (ny, vy) -> String.equal nx ny && equal vx vy)
           xs ys
  | Set xs, Set ys | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | ( ( Nil | Int _ | Real _ | Bool _ | Char _ | String _ | Ref _ | Tuple _
      | Set _ | List _ | Big_set _ ),
      _ ) ->
      false

let rec pp ppf = function
  | Nil -> Format.pp_print_string ppf "nil"
  | Int i -> Format.pp_print_int ppf i
  | Real r -> Format.pp_print_float ppf r
  | Bool b -> Format.pp_print_bool ppf b
  | Char c -> Format.fprintf ppf "%C" c
  | String s -> Format.fprintf ppf "%S" s
  | Ref rid -> Tb_storage.Rid.pp ppf rid
  | Tuple fields ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (n, v) -> Format.fprintf ppf "%s: %a" n pp v))
        fields
  | Set xs -> Format.fprintf ppf "set(@[%a@])" pp_list xs
  | List xs -> Format.fprintf ppf "list(@[%a@])" pp_list xs
  | Big_set rid -> Format.fprintf ppf "bigset(%a)" Tb_storage.Rid.pp rid

and pp_list ppf xs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp ppf xs
