(** ODMG-style values.

    O2 implements the full ODMG model: objects, arbitrarily nested complex
    values (tuples, sets, lists), literals and references.  Values here are
    what gets encoded into heap-file records; references are physical
    {!Tb_storage.Rid}s.  Sets small enough to live inside their owner are
    [Set]; collections whose encoding exceeds a page threshold are spilled
    into a separate collection file and represented by [Big_set] (Section 2:
    "collections whose size is over 4K ... are always stored in a separate
    file"). *)

type t =
  | Nil
  | Int of int
  | Real of float
  | Bool of bool
  | Char of char
  | String of string
  | Ref of Tb_storage.Rid.t
  | Tuple of (string * t) list
  | Set of t list
  | List of t list
  | Big_set of Tb_storage.Rid.t
      (** head chunk of a spilled collection — see {!Big_collection} *)

(** [field v name] extracts a tuple field.
    Raises [Invalid_argument] if [v] is not a tuple or lacks the field. *)
val field : t -> string -> t

(** [set_field v name x] returns the tuple with [name] rebound to [x]. *)
val set_field : t -> string -> t -> t

(** Typed projections; raise [Invalid_argument] on the wrong constructor. *)
val to_int : t -> int

val to_real : t -> float
val to_bool : t -> bool
val to_char : t -> char
val to_string_exn : t -> string
val to_ref : t -> Tb_storage.Rid.t

(** Elements of an inline [Set] or [List].
    Raises [Invalid_argument] otherwise (including on [Big_set] — those are
    iterated through {!Big_collection}). *)
val elements : t -> t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
