test/core_tests.ml: Alcotest Array Figures Float Format List Measurement Printf Tb_core Tb_derby Tb_query Tb_sim Tb_statdb
