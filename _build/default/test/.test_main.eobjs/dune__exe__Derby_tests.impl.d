test/derby_tests.ml: Alcotest Array Derby Generator List Option Printf Tb_derby Tb_sim Tb_storage Tb_store
