test/edge_tests.ml: Alcotest Array Bytes Exec Format Gen List Oql_ast Oql_parser Plan Planner Printf QCheck QCheck_alcotest Query_result Tb_derby Tb_query Tb_sim Tb_storage Tb_store
