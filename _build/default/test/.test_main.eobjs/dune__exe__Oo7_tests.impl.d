test/oo7_tests.ml: Alcotest Array Oo7 Tb_oo7 Tb_sim Tb_store
