test/sim_tests.ml: Alcotest Array Clock Cost_model Counters Fun QCheck QCheck_alcotest Rng Sim Tb_sim
