test/statdb_tests.ml: Alcotest List Stat_report Stat_schema Stat_store String Tb_query Tb_statdb Tb_store
