test/storage_tests.ml: Alcotest Array Buffer_pool Bytes Cache_stack Char Disk Gen Hashtbl Heap_file List Option Page_id Page_layout Printf QCheck QCheck_alcotest Rid String Tb_sim Tb_storage Test
