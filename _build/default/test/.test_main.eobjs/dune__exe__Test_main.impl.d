test/test_main.ml: Alcotest Core_tests Derby_tests Edge_tests Oo7_tests Query_tests Sim_tests Statdb_tests Storage_tests Store_tests
