(* Integration tests: miniature versions of the paper's figures, asserting
   the qualitative orderings the paper reports. *)

open Tb_core
module Generator = Tb_derby.Generator
module Plan = Tb_query.Plan

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A context small enough for tests: 1/200 of the paper. *)
let ctx () = Figures.create ~scale:200

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let join_time b algo ~sel_pat ~sel_prov =
  let nc = Array.length b.Generator.patients in
  let np = Array.length b.Generator.providers in
  let q =
    Printf.sprintf
      "select [p.name, pa.age] from p in Providers, pa in p.clients where \
       pa.mrn < %d and p.upin < %d"
      (sel_pat * nc / 100) (sel_prov * np / 100)
  in
  (Measurement.run_cold b.Generator.db q
     ~organization:(Generator.estimate_organization b.Generator.cfg)
     ~force_algo:algo ~force_sorted:true ~label:"t")
    .Measurement.elapsed_s

let build shape org scale =
  Generator.build
    ~cost:(Tb_sim.Cost_model.scaled scale)
    (Generator.config ~scale shape org)

let test_fig11_shape () =
  (* Wide shape, class clustering, 10/10: hash joins and NOJOIN are close,
     NL is an order of magnitude off (Figure 11 row 1). *)
  let b = build `Wide Generator.Class_clustered 100 in
  let nl = join_time b Plan.NL ~sel_pat:10 ~sel_prov:10 in
  let phj = join_time b Plan.PHJ ~sel_pat:10 ~sel_prov:10 in
  let nojoin = join_time b Plan.NOJOIN ~sel_pat:10 ~sel_prov:10 in
  check_bool "NL dreadful" true (nl > 4.0 *. phj);
  check_bool "NOJOIN comparable to hash" true (nojoin < 2.0 *. phj)

let test_fig12_shape () =
  (* Deep shape, class clustering, 10/10: navigation falls behind the hash
     joins by a large factor (Figure 12 row 1). *)
  let b = build `Deep Generator.Class_clustered 100 in
  let phj = join_time b Plan.PHJ ~sel_pat:10 ~sel_prov:10 in
  let chj = join_time b Plan.CHJ ~sel_pat:10 ~sel_prov:10 in
  let nojoin = join_time b Plan.NOJOIN ~sel_pat:10 ~sel_prov:10 in
  let nl = join_time b Plan.NL ~sel_pat:10 ~sel_prov:10 in
  check_bool "PHJ ~ CHJ" true (Float.max phj chj /. Float.min phj chj < 2.0);
  check_bool "NOJOIN far behind" true (nojoin > 3.0 *. phj);
  check_bool "NL worst" true (nl > nojoin)

let test_fig13_shape () =
  (* Composition clustering: NL wins by a wide margin (Figure 13). *)
  let b = build `Wide Generator.Composition 100 in
  let nl = join_time b Plan.NL ~sel_pat:10 ~sel_prov:10 in
  let phj = join_time b Plan.PHJ ~sel_pat:10 ~sel_prov:10 in
  check_bool "NL wins under composition" true (nl < phj /. 2.0)

let test_fig14_90_90_memory_inversion () =
  (* Deep shape at 90/90: the hash tables outgrow memory and navigation
     takes over (Figure 12/14's 90/90 rows). *)
  let b = build `Deep Generator.Class_clustered 100 in
  let nojoin = join_time b Plan.NOJOIN ~sel_pat:90 ~sel_prov:90 in
  let chj = join_time b Plan.CHJ ~sel_pat:90 ~sel_prov:90 in
  check_bool "CHJ collapses at 90/90" true (chj > nojoin)

let test_composition_beats_class_for_navigation () =
  let cc = build `Deep Generator.Class_clustered 150 in
  let comp = build `Deep Generator.Composition 150 in
  let t_cc = join_time cc Plan.NL ~sel_pat:10 ~sel_prov:10 in
  let t_comp = join_time comp Plan.NL ~sel_pat:10 ~sel_prov:10 in
  check_bool "composition accelerates NL" true (t_comp < t_cc /. 2.0)

let test_assoc_ordered_is_both_worlds () =
  (* Section 5.3's claim: assoc-ordered keeps NL fast (like composition)
     and keeps hash joins fast (like class clustering). *)
  let scale = 150 in
  let cc = build `Deep Generator.Class_clustered scale in
  let comp = build `Deep Generator.Composition scale in
  let assoc = build `Deep Generator.Assoc_ordered scale in
  let nl_assoc = join_time assoc Plan.NL ~sel_pat:90 ~sel_prov:10 in
  let nl_cc = join_time cc Plan.NL ~sel_pat:90 ~sel_prov:10 in
  let phj_assoc = join_time assoc Plan.PHJ ~sel_pat:90 ~sel_prov:10 in
  let phj_comp = join_time comp Plan.PHJ ~sel_pat:90 ~sel_prov:10 in
  check_bool "assoc NL much faster than class NL" true (nl_assoc < nl_cc /. 2.0);
  check_bool "assoc PHJ no slower than composition PHJ" true
    (phj_assoc <= phj_comp *. 1.1)

let test_figures_run_and_record () =
  (* The figure drivers run end to end and record observations. *)
  let ctx = ctx () in
  Figures.fig7 ctx null_ppf;
  Figures.fig9 ctx null_ppf;
  check_bool "observations recorded" true
    (Tb_statdb.Stat_store.count (Figures.stats ctx) >= 10);
  (* And the recorded stats answer OQL. *)
  let r =
    Tb_statdb.Stat_store.query (Figures.stats ctx)
      "select s.algo from s in Stats where s.numtest < 3"
  in
  check_int "queryable" 2 (Tb_query.Query_result.count r);
  Tb_query.Query_result.dispose r

let test_by_name_total () =
  List.iter
    (fun name ->
      let (_ : Figures.ctx -> Format.formatter -> unit) = Figures.by_name name in
      ())
    Figures.names;
  check_bool "unknown rejected" true
    (match Figures.by_name "nope" with
    | exception Not_found -> true
    | (_ : Figures.ctx -> Format.formatter -> unit) -> false)

let test_measurement_is_cold () =
  let b = build `Deep Generator.Class_clustered 500 in
  let q = "select pa.age from pa in Patients where pa.num < 100" in
  let m1 = Measurement.run_cold b.Generator.db q ~label:"a" in
  let m2 = Measurement.run_cold b.Generator.db q ~label:"b" in
  (* Cold protocol: identical runs give identical simulated results. *)
  Alcotest.(check (float 1e-9))
    "deterministic cold runs" m1.Measurement.elapsed_s m2.Measurement.elapsed_s;
  check_int "same reads" m1.Measurement.disk_reads m2.Measurement.disk_reads;
  check_bool "actually touched the disk" true (m1.Measurement.disk_reads > 0)

let suite =
  [
    Alcotest.test_case "fig11 shape" `Slow test_fig11_shape;
    Alcotest.test_case "fig12 shape" `Slow test_fig12_shape;
    Alcotest.test_case "fig13 shape" `Slow test_fig13_shape;
    Alcotest.test_case "fig12/14 90/90 memory inversion" `Slow
      test_fig14_90_90_memory_inversion;
    Alcotest.test_case "composition accelerates navigation" `Slow
      test_composition_beats_class_for_navigation;
    Alcotest.test_case "assoc-ordered gets both worlds" `Slow
      test_assoc_ordered_is_both_worlds;
    Alcotest.test_case "figure drivers record stats" `Slow
      test_figures_run_and_record;
    Alcotest.test_case "figure registry" `Quick test_by_name_total;
    Alcotest.test_case "cold measurements are deterministic" `Quick
      test_measurement_is_cold;
  ]
