(* Tests for the Derby workload generator: cardinalities, key properties,
   and the physical layouts that drive Figures 11-15. *)

open Tb_derby
module Database = Tb_store.Database
module Value = Tb_store.Value
module Rid = Tb_storage.Rid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build ?(organization = Generator.Class_clustered) ?(n_providers = 40)
    ?(fanout = 5) ?(txn_mode = Tb_store.Transaction.Load_off)
    ?(indexed_creation = true) () =
  let cfg =
    {
      (Generator.config ~scale:100 `Deep organization) with
      Generator.n_providers;
      fanout;
      txn_mode;
      indexed_creation;
    }
  in
  Generator.build ~cost:(Tb_sim.Cost_model.scaled 1000) cfg

let test_cardinalities () =
  let b = build () in
  let db = b.Generator.db in
  check_int "providers" 40 (Database.cardinality db ~cls:Derby.provider_cls);
  check_int "patients" 200 (Database.cardinality db ~cls:Derby.patient_cls);
  check_int "provider rids" 40 (Array.length b.Generator.providers);
  check_int "patient rids" 200 (Array.length b.Generator.patients)

let test_relationship_consistency () =
  (* clients and primary_care_provider are mutual inverses, every provider
     has exactly [fanout] patients. *)
  let b = build () in
  let db = b.Generator.db in
  Array.iteri
    (fun i prid ->
      let _, pv = Database.read_object db prid in
      check_int "upin is logical id" i (Value.to_int (Value.field pv "upin"));
      let clients = Value.field pv "clients" in
      check_int "exact fanout" 5 (Database.set_length db clients);
      Database.iter_set db clients (fun r ->
          let _, cv = Database.read_object db (Value.to_ref r) in
          check_bool "inverse points back" true
            (Rid.equal prid (Value.to_ref (Value.field cv "primary_care_provider")))))
    b.Generator.providers

let test_num_is_permutation () =
  let b = build () in
  let db = b.Generator.db in
  let seen = Array.make 200 false in
  Array.iter
    (fun rid ->
      let _, v = Database.read_object db rid in
      let num = Value.to_int (Value.field v "num") in
      check_bool "in range" true (num >= 0 && num < 200);
      check_bool "no duplicate" false seen.(num);
      seen.(num) <- true)
    b.Generator.patients

let test_determinism () =
  let a = build () and b = build () in
  let digest (x : Generator.built) =
    Array.map Rid.to_string x.Generator.patients
  in
  check_bool "same seed, same database" true (digest a = digest b)

let test_wide_shape_spills_clients () =
  let cfg =
    {
      (Generator.config ~scale:100 `Wide Generator.Class_clustered) with
      Generator.n_providers = 3;
    }
  in
  let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled 1000) cfg in
  let db = b.Generator.db in
  let _, pv = Database.read_object db b.Generator.providers.(0) in
  (match Value.field pv "clients" with
  | Value.Big_set _ -> ()
  | _ -> Alcotest.fail "1:1000 clients should spill");
  check_int "still iterable" 1000 (Database.set_length db (Value.field pv "clients"))

let test_organizations_layout () =
  (* Class clustering: separate files; patients' physical order follows
     mrn, so the mrn index is clustered. *)
  let cc = build ~organization:Generator.Class_clustered () in
  check_bool "class: separate files" true
    (Tb_storage.Heap_file.file_id
       (Database.class_file cc.Generator.db ~cls:Derby.provider_cls)
    <> Tb_storage.Heap_file.file_id
         (Database.class_file cc.Generator.db ~cls:Derby.patient_cls));
  check_bool "class: mrn clustered" true
    (Tb_store.Index_def.is_clustered cc.Generator.mrn_index);
  check_bool "class: num unclustered" true
    (not
       (Tb_store.Index_def.is_clustered (Option.get cc.Generator.num_index)));
  (* Composition: one shared file; the mrn index loses its clustering
     because patients are placed by owner, not by logical id. *)
  let comp = build ~organization:Generator.Composition () in
  check_bool "composition: shared file" true
    (Tb_storage.Heap_file.file_id
       (Database.class_file comp.Generator.db ~cls:Derby.provider_cls)
    = Tb_storage.Heap_file.file_id
        (Database.class_file comp.Generator.db ~cls:Derby.patient_cls));
  check_bool "composition: mrn no longer clustered" true
    (comp.Generator.mrn_index.Tb_store.Index_def.clustering
    < cc.Generator.mrn_index.Tb_store.Index_def.clustering);
  (* Composition adjacency: a provider's patients sit right after it. *)
  let db = comp.Generator.db in
  Array.iteri
    (fun i prid ->
      let _, pv = Database.read_object db prid in
      Database.iter_set db (Value.field pv "clients") (fun r ->
          let crid = Value.to_ref r in
          check_bool
            (Printf.sprintf "provider %d's patients follow it" i)
            true
            (Rid.compare prid crid < 0
            &&
            (* ... and come before the next provider. *)
            (i = Array.length comp.Generator.providers - 1
            || Rid.compare crid comp.Generator.providers.(i + 1) < 0))))
    comp.Generator.providers

let test_assoc_ordered_layout () =
  (* Separate files, but patients stored in provider order: consecutive
     patients of one provider are physically adjacent. *)
  let b = build ~organization:Generator.Assoc_ordered () in
  let db = b.Generator.db in
  check_bool "separate files" true
    (Tb_storage.Heap_file.file_id (Database.class_file db ~cls:Derby.provider_cls)
    <> Tb_storage.Heap_file.file_id (Database.class_file db ~cls:Derby.patient_cls));
  (* Walk the patients file and check providers appear in blocks. *)
  let last_provider = ref Rid.nil in
  let switches = ref 0 in
  Tb_storage.Heap_file.scan
    (Database.class_file db ~cls:Derby.patient_cls)
    (fun _ _ -> ());
  Database.scan_extent db ~cls:Derby.patient_cls (fun rid ->
      let _, v = Database.read_object db rid in
      let p = Value.to_ref (Value.field v "primary_care_provider") in
      if not (Rid.equal p !last_provider) then begin
        incr switches;
        last_provider := p
      end);
  check_int "one block per provider" 40 !switches

let test_randomized_interleaves () =
  let b = build ~organization:Generator.Randomized ~n_providers:30 ~fanout:3 () in
  let db = b.Generator.db in
  (* Both classes in one file, and class runs are short (interleaved). *)
  let kinds = ref [] in
  let heap = Database.class_file db ~cls:Derby.provider_cls in
  Tb_storage.Heap_file.scan heap (fun _ body ->
      let header, _ = Tb_store.Obj_header.decode body ~pos:0 in
      kinds := Tb_store.Obj_header.class_id header :: !kinds);
  let kinds = Array.of_list (List.rev !kinds) in
  check_int "all objects in one file" 120 (Array.length kinds);
  let runs = ref 1 in
  for i = 1 to Array.length kinds - 1 do
    if kinds.(i) <> kinds.(i - 1) then incr runs
  done;
  check_bool "classes interleave" true (!runs > 10)

let test_standard_mode_load_commits () =
  (* Loading under full transactions works (commits bound the uncommitted
     set) and costs more simulated time than transaction-off mode. *)
  let slow =
    build ~txn_mode:Tb_store.Transaction.Standard ~n_providers:40 ~fanout:5 ()
  in
  let fast = build ~txn_mode:Tb_store.Transaction.Load_off () in
  check_bool "standard-mode load is slower" true
    (slow.Generator.load_seconds > fast.Generator.load_seconds)

let test_unindexed_creation_costs_more_at_index_time () =
  let clean = build ~indexed_creation:true () in
  let dirty = build ~indexed_creation:false () in
  (* Same data either way; the difference is load cost (reallocation). *)
  check_int "same cardinality"
    (Database.cardinality clean.Generator.db ~cls:Derby.patient_cls)
    (Database.cardinality dirty.Generator.db ~cls:Derby.patient_cls);
  check_bool "reallocation load is slower" true
    (dirty.Generator.load_seconds > clean.Generator.load_seconds)

let suite =
  [
    Alcotest.test_case "cardinalities" `Quick test_cardinalities;
    Alcotest.test_case "relationship consistency" `Quick
      test_relationship_consistency;
    Alcotest.test_case "num is a permutation" `Quick test_num_is_permutation;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "1:1000 clients spill" `Quick test_wide_shape_spills_clients;
    Alcotest.test_case "organization layouts" `Slow test_organizations_layout;
    Alcotest.test_case "assoc-ordered layout" `Quick test_assoc_ordered_layout;
    Alcotest.test_case "randomized interleaving" `Quick test_randomized_interleaves;
    Alcotest.test_case "standard-mode load" `Quick test_standard_mode_load_commits;
    Alcotest.test_case "first-index reallocation at load" `Quick
      test_unindexed_creation_costs_more_at_index_time;
  ]
