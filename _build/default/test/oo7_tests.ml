(* Tests for the miniature 007 workload. *)

open Tb_oo7
module Database = Tb_store.Database
module Value = Tb_store.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny_counts (cfg : Oo7.config) =
  let rec complex level =
    if level <= 1 then cfg.Oo7.assembly_fanout (* base assemblies *)
    else cfg.Oo7.assembly_fanout * complex (level - 1)
  in
  let bases = complex cfg.Oo7.assembly_levels in
  let composites = bases * cfg.Oo7.components_per_base in
  let atomics = composites * cfg.Oo7.atomics_per_composite in
  (bases, composites, atomics)

let test_cardinalities () =
  let b = Oo7.build Oo7.tiny in
  let bases, composites, atomics = tiny_counts Oo7.tiny in
  check_int "base assemblies" bases
    (Database.cardinality b.Oo7.db ~cls:"BaseAssembly");
  check_int "composite parts" composites
    (Database.cardinality b.Oo7.db ~cls:"CompositePart");
  check_int "atomic parts" atomics
    (Database.cardinality b.Oo7.db ~cls:"AtomicPart");
  check_int "rid arrays" atomics (Array.length b.Oo7.atomic_parts)

let test_connection_graph_well_formed () =
  let b = Oo7.build Oo7.tiny in
  let db = b.Oo7.db in
  (* Every atomic part has the configured out-degree, and connections stay
     inside the database. *)
  Array.iter
    (fun rid ->
      let _, v = Database.read_object db rid in
      check_int "out-degree" Oo7.tiny.Oo7.connections
        (Database.set_length db (Value.field v "connections"));
      Database.iter_set db (Value.field v "connections") (fun r ->
          let _, cv = Database.read_object db (Value.to_ref r) in
          check_bool "connection target is an atomic part" true
            (match Value.field cv "partOf" with Value.Ref _ -> true | _ -> false)))
    (Array.sub b.Oo7.atomic_parts 0 40)

let test_t1_visits_every_part () =
  (* The ring connection guarantees every atomic part of every reached
     composite is visited exactly once. *)
  let b = Oo7.build Oo7.tiny in
  let _, _, atomics = tiny_counts Oo7.tiny in
  check_int "t1 visits all atomic parts" atomics (Oo7.traversal_t1 b)

let test_t1_warm_is_free_of_io () =
  let b = Oo7.build Oo7.tiny in
  let sim = Database.sim b.Oo7.db in
  ignore (Oo7.traversal_t1 b);
  Tb_sim.Sim.reset sim;
  ignore (Oo7.traversal_t1 b);
  check_int "warm traversal: no disk reads" 0
    sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads;
  check_bool "warm traversal: almost no allocations" true
    (sim.Tb_sim.Sim.counters.Tb_sim.Counters.handle_allocs < 50)

let test_query_q_selectivity () =
  let b = Oo7.build Oo7.tiny in
  let _, _, atomics = tiny_counts Oo7.tiny in
  check_int "frac 1.0 counts everything" atomics (Oo7.query_q ~frac:1.0 b);
  check_int "frac 0.0 counts nothing" 0 (Oo7.query_q ~frac:0.0 b);
  let half = Oo7.query_q ~frac:0.5 b in
  check_bool "frac 0.5 near half" true
    (abs (half - (atomics / 2)) < atomics / 8);
  check_bool "bad frac rejected" true
    (match Oo7.query_q ~frac:1.5 b with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_determinism () =
  let a = Oo7.build Oo7.tiny and b = Oo7.build Oo7.tiny in
  check_int "same shape" (Array.length a.Oo7.atomic_parts)
    (Array.length b.Oo7.atomic_parts);
  check_int "same query answer" (Oo7.query_q ~frac:0.3 a) (Oo7.query_q ~frac:0.3 b)

let suite =
  [
    Alcotest.test_case "cardinalities" `Quick test_cardinalities;
    Alcotest.test_case "connection graph" `Quick test_connection_graph_well_formed;
    Alcotest.test_case "T1 visits every part" `Quick test_t1_visits_every_part;
    Alcotest.test_case "warm T1 needs no I/O" `Quick test_t1_warm_is_free_of_io;
    Alcotest.test_case "associative query selectivity" `Quick
      test_query_q_selectivity;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
