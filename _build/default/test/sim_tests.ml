(* Tests for the simulation substrate: PRNG, cost model, clock, charging. *)

open Tb_sim

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    check_bool "in range" true (v >= 0 && v < 13)
  done

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  let _ = Rng.int a 10 in
  let b = Rng.copy a in
  check_int "copies agree" (Rng.int a 1_000_000) (Rng.int b 1_000_000)

let test_rng_permutation () =
  let r = Rng.create 11 in
  let p = Rng.permutation r 50 in
  let seen = Array.make 50 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  check_bool "is a permutation" true (Array.for_all Fun.id seen)

let test_rng_uniformity =
  QCheck.Test.make ~name:"rng: mean of uniform draws is near the middle"
    ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let r = Rng.create seed in
      let n = 5000 in
      let sum = ref 0 in
      for _ = 1 to n do
        sum := !sum + Rng.int r 100
      done;
      let mean = float_of_int !sum /. float_of_int n in
      mean > 44.0 && mean < 55.0)

let test_cost_model_scaled () =
  let m = Cost_model.scaled 10 in
  check_int "ram scaled" (Cost_model.default.Cost_model.ram_bytes / 10)
    m.Cost_model.ram_bytes;
  check_float "per-event cost unchanged"
    Cost_model.default.Cost_model.page_read_ms m.Cost_model.page_read_ms

let test_records_per_page () =
  let m = Cost_model.default in
  (* Paper arithmetic: ~30 providers (120 B) and ~57 patients (60 B + slot)
     per 4K page, giving ~33,000 and ~49,000 pages for the 1Mx3 database. *)
  let providers = Cost_model.records_per_page m ~record_bytes:124 in
  let patients = Cost_model.records_per_page m ~record_bytes:64 in
  check_bool "provider density" true (providers >= 28 && providers <= 32);
  check_bool "patient density" true (patients >= 55 && patients <= 62)

let test_clock () =
  let c = Clock.create () in
  Clock.advance c 1500.0;
  check_float "ms to s" 1.5 (Clock.now_s c);
  Clock.reset c;
  check_float "reset" 0.0 (Clock.now_s c)

let test_charges_advance_clock () =
  let sim = Sim.create Cost_model.default in
  Sim.charge_disk_read sim;
  check_float "one page read = 10ms" 0.010 (Sim.elapsed_s sim);
  Sim.charge_rpc sim ~pages:1;
  check_float "plus one rpc" 0.011 (Sim.elapsed_s sim);
  check_int "counted" 1 sim.Sim.counters.Counters.disk_reads

let test_result_append_modes () =
  let sim = Sim.create Cost_model.default in
  Sim.charge_result_append sim ~bytes:8 ~standard:true;
  let standard = Sim.elapsed_s sim in
  Sim.reset sim;
  Sim.release_bytes sim 8;
  Sim.charge_result_append sim ~bytes:8 ~standard:false;
  let load = Sim.elapsed_s sim in
  check_bool "standard transactions pay much more" true (standard > 10.0 *. load)

let test_swap_kicks_in_only_past_available () =
  let sim = Sim.create Cost_model.default in
  let avail = Cost_model.available_bytes sim.Sim.cost in
  Sim.claim_bytes sim (avail / 2);
  for _ = 1 to 1000 do
    Sim.charge_hash_probe sim
  done;
  check_int "no faults under the limit" 0 sim.Sim.counters.Counters.swap_faults;
  Sim.claim_bytes sim avail;
  for _ = 1 to 1000 do
    Sim.charge_hash_probe sim
  done;
  check_bool "faults past the limit" true
    (sim.Sim.counters.Counters.swap_faults > 0)

let test_swap_sequential_is_cheaper () =
  let cost = Cost_model.default in
  let over = Cost_model.available_bytes cost + (1 lsl 20) in
  let random_sim = Sim.create cost in
  Sim.claim_bytes random_sim over;
  Sim.reset random_sim;
  for _ = 1 to 10_000 do
    Sim.charge_hash_probe random_sim
  done;
  let seq_sim = Sim.create cost in
  Sim.claim_bytes seq_sim over;
  Sim.reset seq_sim;
  for _ = 1 to 10_000 do
    Sim.charge_result_append seq_sim ~bytes:24 ~standard:false
  done;
  check_bool "random thrash costs more than sequential spill" true
    (Sim.elapsed_s random_sim > Sim.elapsed_s seq_sim)

let test_excess_ratio () =
  let sim = Sim.create Cost_model.default in
  check_float "no claim, no excess" 0.0 (Sim.excess_ratio sim);
  let avail = Cost_model.available_bytes sim.Sim.cost in
  Sim.claim_bytes sim (2 * avail);
  check_float "double claim = ratio 1" 1.0 (Sim.excess_ratio sim);
  Sim.release_bytes sim (2 * avail);
  check_float "released" 0.0 (Sim.excess_ratio sim)

let test_counters_diff () =
  let sim = Sim.create Cost_model.default in
  Sim.charge_disk_read sim;
  let before = Counters.snapshot sim.Sim.counters in
  Sim.charge_disk_read sim;
  Sim.charge_disk_read sim;
  let d = Counters.diff ~later:(Counters.snapshot sim.Sim.counters) ~earlier:before in
  check_int "diff counts window only" 2 d.Counters.disk_reads

let test_miss_rates () =
  let c = Counters.create () in
  c.Counters.client_hits <- 3;
  c.Counters.client_misses <- 1;
  check_float "25%" 25.0 (Counters.client_miss_rate c);
  check_float "no traffic" 0.0 (Counters.server_miss_rate c)

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: copy independence" `Quick test_rng_copy_independent;
    Alcotest.test_case "rng: permutation" `Quick test_rng_permutation;
    QCheck_alcotest.to_alcotest test_rng_uniformity;
    Alcotest.test_case "cost model: scaling" `Quick test_cost_model_scaled;
    Alcotest.test_case "cost model: page densities match the paper" `Quick
      test_records_per_page;
    Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "charges advance the clock" `Quick
      test_charges_advance_clock;
    Alcotest.test_case "result append: standard vs load mode" `Quick
      test_result_append_modes;
    Alcotest.test_case "swap starts at the memory limit" `Quick
      test_swap_kicks_in_only_past_available;
    Alcotest.test_case "swap: sequential spill cheaper than thrash" `Quick
      test_swap_sequential_is_cheaper;
    Alcotest.test_case "excess ratio" `Quick test_excess_ratio;
    Alcotest.test_case "counters: diff" `Quick test_counters_diff;
    Alcotest.test_case "counters: miss rates" `Quick test_miss_rates;
  ]
