(* Regenerate the counter-invariance golden file:

     dune exec bench/fingerprint_dump.exe > test/counter_golden_scale40.txt

   Only legitimate when the cost model itself changes on purpose; a pure
   performance PR must leave the output byte-identical. *)

let () =
  let scale =
    match Sys.argv with
    | [| _ |] -> 40
    | [| _; "--scale"; v |] -> int_of_string v
    | _ ->
        prerr_endline "usage: fingerprint_dump [--scale N]";
        exit 2
  in
  List.iter print_endline (Tb_core.Fingerprint.collect ~scale ())
