(* Benchmark harness.

   Usage:
     dune exec bench/main.exe                    — every figure, default scale
     dune exec bench/main.exe -- fig11 fig15     — selected figures
     dune exec bench/main.exe -- --scale 10 all  — deeper scale
     dune exec bench/main.exe -- --micro         — Bechamel wall-clock suite
     dune exec bench/main.exe -- --csv out.csv   — export the stats database

   Figures print simulated (paper-protocol) elapsed times side by side with
   the paper's published numbers; the Bechamel suite measures the real
   wall-clock cost of the engine operations behind each table. *)

let default_scale = 40

let usage msg =
  Printf.eprintf "%s\n" msg;
  Printf.eprintf
    "usage: main [--scale N] [--micro] [--batch N[,N...]] [--csv FILE] \
     [figure ...]\n\
     known figures: %s\n"
    (String.concat ", " Tb_core.Figures.names);
  exit 2

let parse_args () =
  let scale = ref default_scale in
  let micro = ref false in
  let batches = ref [] in
  let shards = ref [] in
  let csv = ref None in
  let figures = ref [] in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> scale := n
        | Some _ | None ->
            usage (Printf.sprintf "--scale expects a positive integer, got %S" v));
        go rest
    | [ "--scale" ] -> usage "--scale requires a value"
    | "--micro" :: rest ->
        micro := true;
        go rest
    | "--batch" :: v :: rest ->
        let parsed =
          List.map
            (fun s ->
              match int_of_string_opt (String.trim s) with
              | Some n when n > 0 -> n
              | Some _ | None ->
                  usage
                    (Printf.sprintf "--batch expects positive integers, got %S" v))
            (String.split_on_char ',' v)
        in
        batches := !batches @ parsed;
        go rest
    | [ "--batch" ] -> usage "--batch requires a value, e.g. 1,64,256,1024"
    | "--shards" :: rest ->
        (* An explicit comma list may follow; bare --shards sweeps the
           default S ∈ {1, 2, 4, 8}. *)
        let parse_list v =
          List.map
            (fun s ->
              match int_of_string_opt (String.trim s) with
              | Some n when n > 0 -> Some n
              | Some _ | None -> None)
            (String.split_on_char ',' v)
        in
        let taken, rest =
          match rest with
          | v :: more -> (
              match parse_list v with
              | parsed when List.for_all Option.is_some parsed ->
                  (List.filter_map Fun.id parsed, more)
              | _ -> ([ 1; 2; 4; 8 ], rest))
          | [] -> ([ 1; 2; 4; 8 ], [])
        in
        shards := !shards @ taken;
        go rest
    | "--csv" :: path :: rest ->
        csv := Some path;
        go rest
    | [ "--csv" ] -> usage "--csv requires a path"
    | name :: rest ->
        if List.mem name Tb_core.Figures.names then figures := name :: !figures
        else usage (Printf.sprintf "unknown figure %S" name);
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let figures = match List.rev !figures with [] -> [ "all" ] | fs -> fs in
  (!scale, !micro, !batches, !shards, !csv, figures)

(* The Bechamel micro suite itself lives in {!Micro}, shared with
   bench/perf_gate.exe. *)
let run_micro () =
  Printf.printf "\n=== Bechamel microbenchmarks (wall clock) ===\n";
  List.iter
    (fun (name, est) -> Printf.printf "%-36s %14.1f ns/run\n" name est)
    (Micro.estimates ~quota:0.5 ())

(* Wall-clock only — the parity test guarantees the batch size cannot move
   a simulated charge. *)
let run_batch_sweep batches =
  Printf.printf "\n=== Batch-size sweep (fig7 full scan, wall clock) ===\n";
  List.iter
    (fun (name, est) -> Printf.printf "%-36s %14.1f ns/run\n" name est)
    (Micro.batch_sweep ~quota:0.5 ~batches ())

(* Simulated elapsed, not wall clock: the fork/join clock's speedup with
   the Gather merge cost itemized. *)
let run_shard_sweep shards_list =
  Printf.printf
    "\n=== Shard sweep (fig7 full scan, simulated elapsed) ===\n";
  let sweep = Micro.shard_sweep ~shards_list () in
  let base =
    match sweep with (_, l) :: _ -> l.Tb_query.Exec.elapsed_ms | [] -> 1.0
  in
  List.iter
    (fun (s, l) ->
      Printf.printf
        "S=%-2d  elapsed %10.3f ms  speedup %5.2fx  merge %7.3f ms  \
         critical shard %d\n"
        s l.Tb_query.Exec.elapsed_ms
        (base /. l.Tb_query.Exec.elapsed_ms)
        l.Tb_query.Exec.merge_ms l.Tb_query.Exec.critical)
    sweep

let () =
  let scale, micro, batches, shards, csv, figures = parse_args () in
  let ppf = Format.std_formatter in
  Format.fprintf ppf
    "treebench — reproducing \"Benchmarking Queries over Trees: Learning \
     the Hard Truth the Hard Way\" (SIGMOD 2000)@.Databases at 1/%d of the \
     paper's cardinalities; memory scaled identically, so winners and@.\
     crossovers are preserved and simulated times are roughly 1/%d of the \
     paper's seconds.@."
    scale scale;
  let ctx = Tb_core.Figures.create ~scale in
  List.iter (fun name -> (Tb_core.Figures.by_name name) ctx ppf) figures;
  (match csv with
  | Some path ->
      let oc = open_out path in
      output_string oc (Tb_statdb.Stat_store.to_csv (Tb_core.Figures.stats ctx));
      close_out oc;
      Format.fprintf ppf "@.[stats] %d observations written to %s@."
        (Tb_statdb.Stat_store.count (Tb_core.Figures.stats ctx))
        path
  | None ->
      Format.fprintf ppf
        "@.[stats] %d observations recorded in the Figure-3 stats database \
         (use --csv FILE to export)@."
        (Tb_statdb.Stat_store.count (Tb_core.Figures.stats ctx)));
  if micro then run_micro ();
  if batches <> [] then run_batch_sweep batches;
  if shards <> [] then run_shard_sweep shards
