(* The Bechamel micro suite: one wall-clock benchmark per paper table,
   exercising the code path that dominates it, at a tiny fixed scale.
   Shared by bench/main.exe (--micro) and bench/perf_gate.exe, so the
   interactive listing and the regression gate always measure the same
   thing. *)

let bench_cfg () =
  {
    (Tb_derby.Generator.config ~scale:500 `Deep
       Tb_derby.Generator.Class_clustered)
    with
    Tb_derby.Generator.n_providers = 200;
    fanout = 3;
  }

let built =
  lazy (Tb_derby.Generator.build ~cost:(Tb_sim.Cost_model.scaled 500) (bench_cfg ()))

let sharded_built =
  lazy
    (Tb_derby.Generator.build_sharded ~cost:(Tb_sim.Cost_model.scaled 500)
       ~shards:4 (bench_cfg ()))

let replicated_built =
  lazy
    (Tb_derby.Generator.build_sharded ~cost:(Tb_sim.Cost_model.scaled 500)
       ~shards:4 ~replicas:2 (bench_cfg ()))

let run_query ?force_algo ?force_seq ?force_sorted ?packed ?batch q () =
  let b = Lazy.force built in
  Tb_store.Database.cold_restart b.Tb_derby.Generator.db;
  let r =
    Tb_query.Planner.run b.Tb_derby.Generator.db q ?force_algo ?force_seq
      ?force_sorted ?packed ?batch ~keep:false
  in
  let n = Tb_query.Query_result.count r in
  Tb_query.Query_result.dispose r;
  n

let join_q =
  lazy
    (let b = Lazy.force built in
     let nc = Array.length b.Tb_derby.Generator.patients in
     let np = Array.length b.Tb_derby.Generator.providers in
     Printf.sprintf
       "select [p.name, pa.age] from p in Providers, pa in p.clients where \
        pa.mrn < %d and p.upin < %d"
       (nc / 2) (np / 2))

let sel_q =
  lazy
    (let b = Lazy.force built in
     Printf.sprintf "select pa.age from pa in Patients where pa.num < %d"
       (Array.length b.Tb_derby.Generator.patients / 2))

let opt_stats =
  lazy
    (let b = Lazy.force built in
     Tb_statcore.Stat_catalog.analyze b.Tb_derby.Generator.db)

let tests () =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    (* Figure 6: selection through an unclustered index, unsorted. *)
    t "fig6.index_scan" (fun () ->
        run_query ~force_sorted:false (Lazy.force sel_q) ());
    (* The optimizer itself: enumerate + cost + pick over the Figure 6
       selectivity sweep, no execution — bounds what `--optimize` adds on
       top of a forced run.  The catalog is analyzed once and retained,
       as a session would. *)
    t "fig6.optimizer_sweep" (fun () ->
        let b = Lazy.force built in
        let db = b.Tb_derby.Generator.db in
        let stats = Lazy.force opt_stats in
        let n = Array.length b.Tb_derby.Generator.patients in
        List.fold_left
          (fun acc permille ->
            let d =
              Tb_query.Planner.optimize ~stats db
                (Printf.sprintf
                   "select pa.age from pa in Patients where pa.num < %d"
                   (permille * n / 1000))
            in
            acc + List.length d.Tb_query.Planner.d_candidates)
          0
          [ 1; 10; 50; 100; 300; 600; 900 ]);
    (* Figure 7: the sorted variant and the full scan it competes with. *)
    t "fig7.sorted_index_scan" (fun () ->
        run_query ~force_sorted:true (Lazy.force sel_q) ());
    t "fig7.full_scan" (fun () -> run_query ~force_seq:true (Lazy.force sel_q) ());
    (* The same scan fanned out over 4 shards: wall-clock cost of the
       sharded interpreter (simulated elapsed is the shard sweep's job). *)
    t "fig7.sharded_scan" (fun () ->
        let b = Lazy.force sharded_built in
        let smap = b.Tb_derby.Generator.smap in
        Tb_store.Shard_map.cold_restart smap;
        let r =
          Tb_query.Planner.run_sharded smap (Lazy.force sel_q) ~force_seq:true
            ~keep:false
        in
        let n = Tb_query.Query_result.count r in
        Tb_query.Query_result.dispose r;
        n);
    (* The same sharded scan with one shard killed at its first exchange
       boundary: wall-clock cost of detecting the crash, promoting the
       follower (WAL catch-up + checksum walk) and re-driving the lane.
       Each iteration restores original placement and re-arms the kill so
       every run pays the same promotion. *)
    t "fig7.sharded_scan_degraded" (fun () ->
        let b = Lazy.force replicated_built in
        let smap = b.Tb_derby.Generator.smap in
        Tb_store.Shard_map.repair smap;
        let reg = Tb_storage.Fault.registry ~seed:7 ~shards:4 in
        Tb_store.Shard_map.set_fault_registry smap (Some reg);
        Tb_storage.Fault.schedule_shard_crash
          (Tb_storage.Fault.shard_fault reg 2)
          ~at_boundary:1;
        Tb_store.Shard_map.cold_restart smap;
        let r =
          Tb_query.Planner.run_sharded smap (Lazy.force sel_q) ~force_seq:true
            ~keep:false
        in
        let n = Tb_query.Query_result.count r in
        Tb_query.Query_result.dispose r;
        n);
    (* The packed engine floor under fig7: the same selection evaluated
       directly on record bytes — acquire, pin, seek, compare — without
       the planner/materialize shell around it. *)
    t "fig7.packed_scan" (fun () ->
        let b = Lazy.force built in
        let db = b.Tb_derby.Generator.db in
        Tb_store.Database.cold_restart db;
        let nc = Array.length b.Tb_derby.Generator.patients in
        let prog =
          Tb_query.Packed.compile db ~cls:Tb_derby.Derby.patient_cls
            ~preds:
              [
                {
                  Tb_query.Plan.attr = "num";
                  cmp = Tb_query.Oql_ast.Lt;
                  const = Tb_store.Value.Int (nc / 2);
                };
              ]
            ()
        in
        let n = ref 0 in
        Array.iter
          (fun rid ->
            let h = Tb_store.Database.acquire db rid in
            (match Tb_store.Database.packed_body db h with
            | Some (buf, pos) ->
                Tb_query.Packed.seek_all prog buf ~pos;
                if Tb_query.Packed.eval_preds db prog buf then incr n
            | None -> ());
            Tb_store.Database.unref db h)
          b.Tb_derby.Generator.patients;
        !n);
    (* Figures 11-14: one test per join algorithm. *)
    t "fig11_14.nl" (fun () ->
        run_query ~force_algo:Tb_query.Plan.NL (Lazy.force join_q) ());
    t "fig11_14.nojoin" (fun () ->
        run_query ~force_algo:Tb_query.Plan.NOJOIN (Lazy.force join_q) ());
    t "fig11_14.phj" (fun () ->
        run_query ~force_algo:Tb_query.Plan.PHJ (Lazy.force join_q) ());
    t "fig11_14.chj" (fun () ->
        run_query ~force_algo:Tb_query.Plan.CHJ (Lazy.force join_q) ());
    (* Extensions: hybrid hashing and sort-merge. *)
    t "ext.phhj" (fun () ->
        run_query ~force_algo:Tb_query.Plan.PHHJ (Lazy.force join_q) ());
    t "ext.smj" (fun () ->
        run_query ~force_algo:Tb_query.Plan.SMJ (Lazy.force join_q) ());
    (* Aggregation vs materialization. *)
    t "ext.count" (fun () ->
        let b = Lazy.force built in
        let nc = Array.length b.Tb_derby.Generator.patients in
        run_query ~force_seq:true
          (Printf.sprintf "select count(pa) from pa in Patients where pa.num < %d" (nc / 2))
          ());
    (* Figure 10: hash-table build over every patient. *)
    t "fig10.hash_build" (fun () ->
        let b = Lazy.force built in
        let sim = Tb_store.Database.sim b.Tb_derby.Generator.db in
        let h = Tb_query.Mem_hash.create sim in
        Array.iter
          (fun rid -> Tb_query.Mem_hash.add h ~key:rid ~payload_bytes:13 0)
          b.Tb_derby.Generator.patients;
        Tb_query.Mem_hash.dispose h);
    (* Figure 9 / Section 4: the Handle churn of a full scan. *)
    t "fig9.handle_churn" (fun () ->
        let b = Lazy.force built in
        let db = b.Tb_derby.Generator.db in
        Array.iter
          (fun rid ->
            let h = Tb_store.Database.acquire db rid in
            Tb_store.Database.unref db h)
          b.Tb_derby.Generator.patients);
    (* The same churn with one attribute read per Handle: the packed repr
       decodes it straight off the pinned page instead of materializing
       the record. *)
    t "fig9.packed_churn" (fun () ->
        let b = Lazy.force built in
        let db = b.Tb_derby.Generator.db in
        let slot =
          Tb_store.Database.attr_slot db ~cls:Tb_derby.Derby.patient_cls "mrn"
        in
        Array.iter
          (fun rid ->
            let h = Tb_store.Database.acquire db rid in
            ignore (Tb_store.Database.get_att_slot db h slot);
            Tb_store.Database.unref db h)
          b.Tb_derby.Generator.patients);
    (* Section 3.2: B+-tree build, the first-index path. *)
    t "sec3.btree_insert_1k" (fun () ->
        let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 500) in
        let disk = Tb_storage.Disk.create sim in
        let stack =
          Tb_storage.Cache_stack.create sim disk ~server_pages:64
            ~client_pages:256
        in
        let tree = Tb_store.Btree.create stack ~name:"bench" in
        for i = 0 to 999 do
          Tb_store.Btree.insert tree ~key:(i * 37 mod 1000)
            ~rid:(Tb_storage.Rid.make ~file:0 ~page:i ~slot:0)
        done);
    (* 1000 entries through the bulk-build path, fed the already-sorted run
       that Database.create_index produces over a clustered extent — the
       production fast case.  The ratio against sec3.btree_insert_1k (the
       same entry count built incrementally) is the bulk-build speedup the
       gate watches. *)
    t "sec3.btree_bulk_build_1k"
      (let run =
         (* Built once: the run is the bench input, not bulk-build work. *)
         Array.init 1000 (fun i ->
             (i, Tb_storage.Rid.make ~file:0 ~page:i ~slot:0))
       in
       fun () ->
         let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 500) in
         let disk = Tb_storage.Disk.create sim in
         let stack =
           Tb_storage.Cache_stack.create sim disk ~server_pages:64
             ~client_pages:256
         in
         ignore (Tb_store.Btree.bulk_build stack ~name:"bench" run));
    (* Build then drain: exercises borrow/merge rebalancing and height
       shrink. *)
    t "sec3.btree_delete_1k" (fun () ->
        let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 500) in
        let disk = Tb_storage.Disk.create sim in
        let stack =
          Tb_storage.Cache_stack.create sim disk ~server_pages:64
            ~client_pages:256
        in
        let tree = Tb_store.Btree.create stack ~name:"bench" in
        for i = 0 to 999 do
          Tb_store.Btree.insert tree ~key:(i * 37 mod 1000)
            ~rid:(Tb_storage.Rid.make ~file:0 ~page:i ~slot:0)
        done;
        for i = 0 to 999 do
          ignore
            (Tb_store.Btree.delete tree ~key:(i * 37 mod 1000)
               ~rid:(Tb_storage.Rid.make ~file:0 ~page:i ~slot:0))
        done);
    (* Figure 6's index half in isolation: a cold range scan over the
       clustered mrn index (leaf-chain walk through the cache stack). *)
    t "fig6.index_range" (fun () ->
        let b = Lazy.force built in
        Tb_store.Database.cold_restart b.Tb_derby.Generator.db;
        let tree = b.Tb_derby.Generator.mrn_index.Tb_store.Index_def.tree in
        let n = ref 0 in
        Tb_store.Btree.range tree ~lo:0
          ~hi:(Array.length b.Tb_derby.Generator.patients / 2)
          (fun _ _ -> incr n);
        !n);
  ]

(* Benchmark names come back as "treebench/<name>". *)
let strip_group name =
  match String.index_opt name '/' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

(* Run a test list and return [(name, ns_per_run)], sorted by name. *)
let estimates_of ~quota tests =
  let open Bechamel in
  let grouped = Test.make_grouped ~name:"treebench" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> rows := (strip_group name, est) :: !rows
          | Some [] | None -> ())
        tbl)
    merged;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let estimates ~quota () = estimates_of ~quota (tests ())

(* Batch-size sweep over the fig7 full scan: how much interpreter dispatch
   the row vectors amortize.  Charge-invariant by construction (the parity
   test pins that), so this is wall-clock tuning data only — deliberately
   not part of [tests ()], the perf_gate baseline tracks the default. *)
(* Shard-count sweep over the fig7 full scan, in *simulated* elapsed time:
   the near-linear fork/join speedup, with the Gather merge cost bending
   the curve.  Deterministic — one cold run per shard count, no Bechamel;
   each S gets its own freshly built partitioning. *)
let shard_sweep ~shards_list () =
  List.map
    (fun shards ->
      let b =
        Tb_derby.Generator.build_sharded ~cost:(Tb_sim.Cost_model.scaled 500)
          ~shards (bench_cfg ())
      in
      let smap = b.Tb_derby.Generator.smap in
      Tb_store.Shard_map.cold_restart smap;
      let q =
        Printf.sprintf "select pa.age from pa in Patients where pa.num < %d"
          (Array.length b.Tb_derby.Generator.sh_patients / 2)
      in
      let r, _, _, lanes =
        Tb_query.Planner.run_sharded_explained smap q ~force_seq:true
          ~keep:false
      in
      Tb_query.Query_result.dispose r;
      (shards, lanes))
    shards_list

let batch_sweep ~quota ~batches () =
  let open Bechamel in
  let tests =
    List.map
      (fun batch ->
        Test.make
          ~name:(Printf.sprintf "fig7.full_scan.b%d" batch)
          (Staged.stage (fun () ->
               run_query ~force_seq:true ~batch (Lazy.force sel_q) ())))
      batches
  in
  estimates_of ~quota tests
