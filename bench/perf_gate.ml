(* Perf-regression gate.

   Usage:
     dune exec bench/perf_gate.exe              — full run (0.5 s/bench quota)
     dune exec bench/perf_gate.exe -- --smoke   — quick sanity run for CI
     dune exec bench/perf_gate.exe -- --out F   — write the JSON elsewhere

   Runs the shared Bechamel micro suite ({!Micro}: one benchmark per paper
   table) and writes BENCH_treebench.json:

     {"benchmarks": [{"name": "fig6.index_scan", "ns_per_op": 123.4}, ...]}

   Compare ns_per_op against a baseline capture to catch wall-clock
   regressions.  These numbers are real time only — the simulated cost
   model has its own gate, the counter-invariance test in
   test/invariance_tests.ml. *)

let usage msg =
  Printf.eprintf "%s\nusage: perf_gate [--smoke] [--out FILE]\n" msg;
  exit 2

let () =
  let smoke = ref false in
  let out = ref "BENCH_treebench.json" in
  let rec go = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        go rest
    | "--out" :: path :: rest ->
        out := path;
        go rest
    | [ "--out" ] -> usage "--out requires a path"
    | arg :: _ -> usage (Printf.sprintf "unknown argument %S" arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  let quota = if !smoke then 0.05 else 0.5 in
  let rows = Micro.estimates ~quota () in
  if rows = [] then begin
    prerr_endline "perf_gate: no estimates produced";
    exit 1
  end;
  let oc = open_out !out in
  output_string oc "{\n  \"benchmarks\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    {\"name\": %S, \"ns_per_op\": %.1f}%s\n" name est
        (if i = last then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "perf_gate: %d benchmarks -> %s%s\n" (List.length rows) !out
    (if !smoke then " (smoke quota)" else "");
  List.iter
    (fun (name, est) -> Printf.printf "  %-36s %14.1f ns/op\n" name est)
    rows
