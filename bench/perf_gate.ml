(* Perf-regression gate.

   Usage:
     dune exec bench/perf_gate.exe              — full run (0.5 s/bench quota)
     dune exec bench/perf_gate.exe -- --smoke   — quick sanity run for CI
     dune exec bench/perf_gate.exe -- --out F   — write the JSON elsewhere
     dune exec bench/perf_gate.exe -- --check [--tolerance PCT] [--baseline F]
        — compare fresh numbers against the committed baseline and exit
          non-zero when any benchmark regressed beyond the tolerance
          (default 25%).  Check mode does not rewrite the baseline unless
          --out is given explicitly.

   Runs the shared Bechamel micro suite ({!Micro}: one benchmark per paper
   table) and writes BENCH_treebench.json:

     {"benchmarks": [{"name": "fig6.index_scan", "ns_per_op": 123.4}, ...]}

   These numbers are real time only — the simulated cost model has its own
   gate, the counter-invariance test in test/invariance_tests.ml. *)

let usage msg =
  Printf.eprintf
    "%s\n\
     usage: perf_gate [--smoke] [--out FILE] [--check] [--tolerance PCT] \
     [--baseline FILE]\n"
    msg;
  exit 2

(* Parse the exact shape this program writes: one
     {"name": "...", "ns_per_op": 123.4}
   object per line.  Not a JSON parser — just the inverse of our printer. *)
let read_baseline path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "perf_gate: cannot read baseline: %s\n" msg;
      exit 1
  in
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       try Scanf.sscanf line "{\"name\": %S, \"ns_per_op\": %f" (fun name ns ->
               rows := (name, ns) :: !rows)
       with Scanf.Scan_failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let () =
  let smoke = ref false in
  let check = ref false in
  let tolerance = ref 25.0 in
  let baseline = ref "BENCH_treebench.json" in
  let out = ref None in
  let rec go = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        go rest
    | "--check" :: rest ->
        check := true;
        go rest
    | "--tolerance" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some v when v >= 0.0 ->
            tolerance := v;
            go rest
        | Some _ | None -> usage (Printf.sprintf "bad tolerance %S" pct))
    | [ "--tolerance" ] -> usage "--tolerance requires a percentage"
    | "--baseline" :: path :: rest ->
        baseline := path;
        go rest
    | [ "--baseline" ] -> usage "--baseline requires a path"
    | "--out" :: path :: rest ->
        out := Some path;
        go rest
    | [ "--out" ] -> usage "--out requires a path"
    | arg :: _ -> usage (Printf.sprintf "unknown argument %S" arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  let quota = if !smoke then 0.05 else 0.5 in
  let rows = Micro.estimates ~quota () in
  if rows = [] then begin
    prerr_endline "perf_gate: no estimates produced";
    exit 1
  end;
  (* Capture: always when not checking; in check mode only on explicit
     --out, so a check never clobbers the baseline it compares against. *)
  let write_to =
    match (!out, !check) with
    | Some path, _ -> Some path
    | None, false -> Some "BENCH_treebench.json"
    | None, true -> None
  in
  (match write_to with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc "{\n  \"benchmarks\": [\n";
      let last = List.length rows - 1 in
      List.iteri
        (fun i (name, est) ->
          Printf.fprintf oc "    {\"name\": %S, \"ns_per_op\": %.1f}%s\n" name
            est
            (if i = last then "" else ","))
        rows;
      output_string oc "  ]\n}\n";
      close_out oc;
      Printf.printf "perf_gate: %d benchmarks -> %s%s\n" (List.length rows)
        path
        (if !smoke then " (smoke quota)" else ""));
  if not !check then
    List.iter
      (fun (name, est) -> Printf.printf "  %-36s %14.1f ns/op\n" name est)
      rows
  else begin
    let base = read_baseline !baseline in
    if base = [] then begin
      Printf.eprintf "perf_gate: no baseline rows in %s\n" !baseline;
      exit 1
    end;
    Printf.printf "perf_gate: checking %d benchmarks against %s (tolerance %+.0f%%)\n"
      (List.length rows) !baseline !tolerance;
    let regressions = ref 0 in
    List.iter
      (fun (name, est) ->
        match List.assoc_opt name base with
        | None -> Printf.printf "  %-36s %14.1f ns/op  (no baseline)\n" name est
        | Some b ->
            let delta = if b > 0.0 then (est -. b) /. b *. 100.0 else 0.0 in
            let regressed = est > b *. (1.0 +. (!tolerance /. 100.0)) in
            if regressed then incr regressions;
            Printf.printf "  %-36s %14.1f ns/op  baseline %14.1f  %+7.1f%%%s\n"
              name est b delta
              (if regressed then "  REGRESSION" else ""))
      rows;
    if !regressions > 0 then begin
      Printf.eprintf "perf_gate: %d benchmark(s) regressed beyond %.0f%%\n"
        !regressions !tolerance;
      exit 1
    end;
    print_endline "perf_gate: no regressions"
  end
