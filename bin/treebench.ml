(* treebench command-line interface.

   Subcommands:
     figure  — regenerate one of the paper's tables/figures
     query   — build a Derby database and run an OQL query against it,
               with any algorithm/access-path override
     plan    — show the plan both optimizers pick for a query
     load    — loading-cost experiment (Section 3.2 knobs exposed)
     list    — list reproducible figures *)

open Cmdliner

let scale_arg =
  let doc = "Scale divisor: databases at 1/SCALE of the paper's size." in
  Arg.(value & opt int 100 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let shape_arg =
  let shape_conv =
    Arg.enum [ ("wide", `Wide); ("1:1000", `Wide); ("deep", `Deep); ("1:3", `Deep) ]
  in
  let doc = "Database shape: wide (2,000 x 1,000) or deep (1,000,000 x 3)." in
  Arg.(value & opt shape_conv `Deep & info [ "shape" ] ~docv:"SHAPE" ~doc)

let org_conv =
  Arg.enum
    [
      ("class", Tb_derby.Generator.Class_clustered);
      ("random", Tb_derby.Generator.Randomized);
      ("composition", Tb_derby.Generator.Composition);
      ("assoc", Tb_derby.Generator.Assoc_ordered);
    ]

let org_arg =
  let doc = "Physical organization: class, random, composition or assoc." in
  Arg.(
    value
    & opt org_conv Tb_derby.Generator.Class_clustered
    & info [ "o"; "organization" ] ~docv:"ORG" ~doc)

let build_db ~scale ~shape ~org =
  let cfg = Tb_derby.Generator.config ~scale shape org in
  Tb_derby.Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg

(* --- figure --- *)

let figure_cmd =
  let name_arg =
    let doc =
      Printf.sprintf "Figure to regenerate: %s."
        (String.concat ", " Tb_core.Figures.names)
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)
  in
  let csv_arg =
    let doc = "Export the recorded observations as CSV to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let gnuplot_arg =
    let doc =
      "Write $(docv).dat and $(docv).gp (Gnuplot series and plot script) \
       from the recorded observations — the paper's O2-to-Gnuplot pipeline."
    in
    Arg.(value & opt (some string) None & info [ "gnuplot" ] ~docv:"PREFIX" ~doc)
  in
  let run name scale csv gnuplot =
    match Tb_core.Figures.by_name name with
    | exception Not_found ->
        Printf.eprintf "unknown figure %S\n" name;
        exit 2
    | f ->
        let ctx = Tb_core.Figures.create ~scale in
        f ctx Format.std_formatter;
        let stats = Tb_core.Figures.stats ctx in
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Tb_statdb.Stat_store.to_csv stats);
            close_out oc;
            Printf.printf "[stats] written to %s\n" path)
          csv;
        Option.iter
          (fun prefix ->
            let dat = prefix ^ ".dat" and gp = prefix ^ ".gp" in
            let oc = open_out dat in
            output_string oc (Tb_statdb.Stat_report.gnuplot_data stats);
            close_out oc;
            let oc = open_out gp in
            output_string oc
              (Tb_statdb.Stat_report.gnuplot_script ~data_file:dat stats);
            close_out oc;
            print_string (Tb_statdb.Stat_report.summary stats);
            Printf.printf "[gnuplot] %s and %s written\n" dat gp)
          gnuplot
  in
  let doc = "Regenerate one of the paper's tables or figures." in
  Cmd.v (Cmd.info "figure" ~doc)
    Term.(const run $ name_arg $ scale_arg $ csv_arg $ gnuplot_arg)

(* --- query --- *)

let query_cmd =
  let oql_arg =
    let doc = "The OQL query (extents: Providers, Patients)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL" ~doc)
  in
  let algo_arg =
    let algo_conv =
      Arg.enum
        [
          ("nl", Tb_query.Plan.NL);
          ("nojoin", Tb_query.Plan.NOJOIN);
          ("phj", Tb_query.Plan.PHJ);
          ("chj", Tb_query.Plan.CHJ);
          ("phhj", Tb_query.Plan.PHHJ);
          ("chhj", Tb_query.Plan.CHHJ);
          ("smj", Tb_query.Plan.SMJ);
        ]
    in
    let doc = "Force the join algorithm (nl, nojoin, phj, chj, phhj, chhj, smj)." in
    Arg.(value & opt (some algo_conv) None & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)
  in
  let seq_arg =
    let doc = "Force sequential scans (ignore indexes)." in
    Arg.(value & flag & info [ "seq" ] ~doc)
  in
  let sorted_arg =
    let doc = "Sort Rids in index scans (true/false)." in
    Arg.(value & opt (some bool) None & info [ "sorted" ] ~docv:"BOOL" ~doc)
  in
  let show_arg =
    let doc = "Print the first rows of the result." in
    Arg.(value & flag & info [ "show" ] ~doc)
  in
  let explain_arg =
    let doc =
      "EXPLAIN ANALYZE: print the physical operator tree with per-operator \
       rows, pages, Handles, hash/sort work and simulated ms, reconciled \
       against the global counters."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let optimize_arg =
    let doc =
      "Run the four-stage optimizer pipeline (enumerate, cost, pick, \
       validate) instead of the forced path: every candidate plan is \
       costed from catalog statistics, the argmin executes, and each \
       operator's estimate is reconciled against its accounted frame.  \
       With --explain the per-operator estimated-vs-actual columns and the \
       feedback summary are printed.  Excludes --algo/--seq/--sorted and \
       --shards > 1."
    in
    Arg.(value & flag & info [ "optimize" ] ~doc)
  in
  let shards_arg =
    let doc =
      "Run the query over $(docv) hash-partitioned shards.  Parallelism is \
       simulated but exact: elapsed is the max over per-shard clock lanes \
       plus the Gather merge cost; with --explain the per-shard operator \
       frames and the critical-path shard are printed."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let replicas_arg =
    let doc =
      "Keep $(docv) copies of every shard (primary + followers on distinct \
       nodes).  The build applies each statement to the whole replica group; \
       a mid-query shard death fails over to the next copy.  Requires \
       1 <= R <= shards."
    in
    Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"R" ~doc)
  in
  let chaos_seed_arg =
    let doc =
      "Chaos mode: derive per-shard fault schedules from $(docv) — transient \
       RPC losses on every shard plus one scheduled shard kill at a seeded \
       exchange boundary — and print the failover report.  Deterministic: \
       the same seed reproduces the same kills, retries and fingerprint.  \
       Requires --shards > 1 and --replicas >= 2."
    in
    Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~docv:"SEED" ~doc)
  in
  let run_sharded oql ~scale ~shape ~org ~shards ~replicas ~chaos_seed ~algo
      ~seq ~sorted ~show ~explain =
    let cfg = Tb_derby.Generator.config ~scale shape org in
    let b =
      Tb_derby.Generator.build_sharded ~cost:(Tb_sim.Cost_model.scaled scale)
        ~shards ~replicas cfg
    in
    let smap = b.Tb_derby.Generator.smap in
    let organization = Tb_derby.Generator.estimate_organization cfg in
    Tb_store.Shard_map.cold_restart smap;
    Option.iter
      (fun seed ->
        let reg = Tb_storage.Fault.registry ~seed ~shards in
        Tb_store.Shard_map.set_fault_registry smap (Some reg);
        Tb_storage.Fault.iter_registry reg (fun f ->
            Tb_storage.Fault.set_rpc_faults f ~permille:100 ~max_retries:4);
        let rng = Tb_sim.Rng.create seed in
        let victim = Tb_sim.Rng.int rng shards in
        let boundary = 1 + Tb_sim.Rng.int rng 2 in
        Tb_storage.Fault.schedule_shard_crash
          (Tb_storage.Fault.shard_fault reg victim)
          ~at_boundary:boundary;
        Format.printf "chaos: seed=%d kill shard %d at boundary %d@." seed
          victim boundary)
      chaos_seed;
    let r, root, global, lanes =
      Tb_query.Planner.run_sharded_explained smap oql ~organization
        ?force_algo:algo ~force_seq:seq ?force_sorted:sorted ~keep:show
    in
    Format.printf "rows=%d  shards=%d  work=%.3f ms  elapsed=%.3f ms@."
      (Tb_query.Query_result.count r)
      shards global.Tb_query.Op.t_ms lanes.Tb_query.Exec.elapsed_ms;
    if lanes.Tb_query.Exec.degraded then begin
      Format.printf "degraded: completed with reduced replicas@.";
      List.iter
        (fun fo ->
          Format.printf
            "failover: shard %d died at boundary %d (%s phase), recovered in \
             %.3f ms@."
            fo.Tb_query.Exec.fo_shard fo.Tb_query.Exec.fo_boundary
            fo.Tb_query.Exec.fo_phase fo.Tb_query.Exec.fo_ms)
        lanes.Tb_query.Exec.failovers
    end;
    if explain then begin
      Format.printf "%a" (Tb_query.Op.pp_report ~global) root;
      Array.iteri
        (fun i ms ->
          Format.printf "lane %d: %10.3f ms%s@." i ms
            (if i = lanes.Tb_query.Exec.critical then "   <- critical path"
             else ""))
        lanes.Tb_query.Exec.lane_ms;
      Format.printf "gather merge: %.3f ms@." lanes.Tb_query.Exec.merge_ms
    end;
    if show then
      List.iter
        (fun v -> Format.printf "  %a@." Tb_store.Value.pp v)
        (Tb_query.Query_result.sample r);
    Tb_query.Query_result.dispose r
  in
  let run_optimized oql ~scale ~shape ~org ~show ~explain =
    let b = build_db ~scale ~shape ~org in
    let db = b.Tb_derby.Generator.db in
    let organization =
      Tb_derby.Generator.estimate_organization b.Tb_derby.Generator.cfg
    in
    Tb_store.Database.cold_restart db;
    let r, d, global, checks =
      Tb_query.Planner.run_optimized_explained db oql ~organization ~keep:show
    in
    Format.printf "optimizer: %d candidates, chose %s (est %.3f ms)@."
      (List.length d.Tb_query.Planner.d_candidates)
      d.Tb_query.Planner.d_desc d.Tb_query.Planner.d_cost_ms;
    List.iteri
      (fun i ch ->
        if i < 3 then
          Format.printf "  #%d %-44s %12.3f ms@." (i + 1)
            ch.Tb_query.Planner.ch_desc ch.Tb_query.Planner.ch_cost_ms)
      d.Tb_query.Planner.d_candidates;
    Format.printf "plan: %a@." Tb_query.Plan.pp d.Tb_query.Planner.d_plan;
    Format.printf "rows=%d  actual=%.3f ms@."
      (Tb_query.Query_result.count r)
      global.Tb_query.Op.t_ms;
    if explain then begin
      Format.printf "%a"
        (Tb_query.Op.Est.pp_report ~global)
        d.Tb_query.Planner.d_root;
      let fed =
        List.filter (fun c -> c.Tb_query.Exec.ec_fed_back) checks
      in
      Format.printf
        "validate: %d operators checked, %d corrections fed back, worst \
         q-error %.2f@."
        (List.length checks) (List.length fed)
        (Tb_query.Exec.worst_q checks)
    end;
    if show then
      List.iter
        (fun v -> Format.printf "  %a@." Tb_store.Value.pp v)
        (Tb_query.Query_result.sample r);
    Tb_query.Query_result.dispose r
  in
  let run oql scale shape org algo seq sorted show explain optimize shards
      replicas chaos_seed =
    if shards < 1 then begin
      Printf.eprintf "treebench: --shards expects a positive count\n";
      exit 2
    end;
    if optimize then begin
      if shards > 1 then begin
        Printf.eprintf
          "treebench: --optimize plans single-node queries (use \
           Planner.optimize_sharded for the break-even analysis)\n";
        exit 2
      end;
      (match (algo, seq, sorted) with
      | None, false, None -> ()
      | _ ->
          Printf.eprintf
            "treebench: --optimize searches the whole candidate space; it \
             excludes --algo, --seq and --sorted\n";
          exit 2)
    end;
    let extent = (Tb_derby.Generator.config ~scale shape org).n_providers in
    if shards > extent then begin
      Printf.eprintf
        "treebench: --shards %d exceeds the Providers extent (%d at 1/%d \
         scale); every shard needs at least one provider\n"
        shards extent scale;
      exit 2
    end;
    if replicas < 1 || replicas > shards then begin
      Printf.eprintf
        "treebench: --replicas expects 1 <= R <= shards (%d copies need %d \
         distinct nodes, have %d)\n"
        replicas replicas shards;
      exit 2
    end;
    (match chaos_seed with
    | Some _ when shards < 2 || replicas < 2 ->
        Printf.eprintf
          "treebench: --chaos-seed needs --shards > 1 and --replicas >= 2 (a \
           killed shard must have a replica to fail over to)\n";
        exit 2
    | _ -> ());
    if shards > 1 then
      run_sharded oql ~scale ~shape ~org ~shards ~replicas ~chaos_seed ~algo
        ~seq ~sorted ~show ~explain
    else if optimize then run_optimized oql ~scale ~shape ~org ~show ~explain
    else begin
    let b = build_db ~scale ~shape ~org in
    let organization =
      Tb_derby.Generator.estimate_organization b.Tb_derby.Generator.cfg
    in
    let m =
      Tb_core.Measurement.run_cold b.Tb_derby.Generator.db oql ~organization
        ?force_algo:algo ~force_seq:seq ?force_sorted:sorted ~label:"query"
    in
    Format.printf "%a@." Tb_core.Measurement.pp m;
    if explain then begin
      Tb_store.Database.cold_restart b.Tb_derby.Generator.db;
      let r, root, global =
        Tb_query.Planner.run_explained b.Tb_derby.Generator.db oql
          ~organization ?force_algo:algo ~force_seq:seq ?force_sorted:sorted
          ~keep:false
      in
      Format.printf "%a" (Tb_query.Op.pp_report ~global) root;
      Tb_query.Query_result.dispose r
    end;
    if show then begin
      Tb_store.Database.cold_restart b.Tb_derby.Generator.db;
      let r =
        Tb_query.Planner.run b.Tb_derby.Generator.db oql ?force_algo:algo
          ~force_seq:seq ?force_sorted:sorted ~keep:false
      in
      List.iter
        (fun v -> Format.printf "  %a@." Tb_store.Value.pp v)
        (Tb_query.Query_result.sample r);
      Tb_query.Query_result.dispose r
    end
    end
  in
  let doc = "Build a Derby database and run one OQL query, cold." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ oql_arg $ scale_arg $ shape_arg $ org_arg $ algo_arg
      $ seq_arg $ sorted_arg $ show_arg $ explain_arg $ optimize_arg
      $ shards_arg $ replicas_arg $ chaos_seed_arg)

(* --- plan --- *)

let plan_cmd =
  let oql_arg =
    let doc = "The OQL query to plan." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OQL" ~doc)
  in
  let run oql scale shape org =
    let b = build_db ~scale ~shape ~org in
    let db = b.Tb_derby.Generator.db in
    let q = Tb_query.Oql_parser.parse oql in
    let organization =
      Tb_derby.Generator.estimate_organization b.Tb_derby.Generator.cfg
    in
    let heuristic = Tb_query.Planner.plan ~mode:Tb_query.Planner.Heuristic ~organization db q in
    let cost_based = Tb_query.Planner.plan ~mode:Tb_query.Planner.Cost_based ~organization db q in
    Format.printf "parsed:     %a@." Tb_query.Oql_ast.pp_query q;
    Format.printf "heuristic:  %a@." Tb_query.Plan.pp heuristic;
    Format.printf "cost-based: %a@." Tb_query.Plan.pp cost_based;
    match Tb_query.Plan.bind db q with
    | Tb_query.Plan.B_hier _ as bound ->
        let env = Tb_query.Planner.join_env db bound ~organization in
        Format.printf "estimates:@.";
        List.iter
          (fun (algo, ms) ->
            Format.printf "  %-8s %10.2f s@."
              (Tb_query.Plan.algo_name algo)
              (ms /. 1000.0))
          (Tb_query.Estimate.rank_joins env)
    | Tb_query.Plan.B_selection _ -> ()
  in
  let doc = "Show the plans both optimizers pick, with cost estimates." in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(const run $ oql_arg $ scale_arg $ shape_arg $ org_arg)

(* --- load --- *)

let load_cmd =
  let txn_arg =
    let doc = "Load under standard transactions instead of transaction-off." in
    Arg.(value & flag & info [ "standard-txn" ] ~doc)
  in
  let unindexed_arg =
    let doc =
      "Create objects without index slots (the first index then reallocates \
       every object — the Section 3.2 trap)."
    in
    Arg.(value & flag & info [ "unindexed-creation" ] ~doc)
  in
  let small_cache_arg =
    let doc = "Use the default 4 MB client cache instead of the tuned 32 MB." in
    Arg.(value & flag & info [ "small-client-cache" ] ~doc)
  in
  let run scale shape org standard unindexed small_cache =
    let cfg = Tb_derby.Generator.config ~scale shape org in
    let cfg =
      {
        cfg with
        Tb_derby.Generator.txn_mode =
          (if standard then Tb_store.Transaction.Standard
           else Tb_store.Transaction.Load_off);
        indexed_creation = not unindexed;
        client_pages =
          (if small_cache then cfg.Tb_derby.Generator.server_pages
           else cfg.Tb_derby.Generator.client_pages);
      }
    in
    let b = Tb_derby.Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg in
    Printf.printf
      "loaded %d providers and %d patients (%s, 1/%d scale) in %.2f simulated \
       seconds\n"
      (Array.length b.Tb_derby.Generator.providers)
      (Array.length b.Tb_derby.Generator.patients)
      (match org with
      | Tb_derby.Generator.Class_clustered -> "class clustering"
      | Tb_derby.Generator.Randomized -> "random"
      | Tb_derby.Generator.Composition -> "composition"
      | Tb_derby.Generator.Assoc_ordered -> "assoc-ordered")
      scale b.Tb_derby.Generator.load_seconds
  in
  let doc = "Measure database-loading cost under the Section 3.2 knobs." in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      const run $ scale_arg $ shape_arg $ org_arg $ txn_arg $ unindexed_arg
      $ small_cache_arg)

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter print_endline Tb_core.Figures.names
  in
  let doc = "List the figures that can be regenerated." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc =
    "reproduce `Benchmarking Queries over Trees: Learning the Hard Truth the \
     Hard Way' (SIGMOD 2000)"
  in
  let info = Cmd.info "treebench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ figure_cmd; query_cmd; plan_cmd; load_cmd; list_cmd ]))
