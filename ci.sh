#!/usr/bin/env bash
# Full local CI: build everything, run the test suite (including the
# counter-invariance gate), then smoke the perf gate so BENCH_treebench.json
# stays producible.
set -euo pipefail
cd "$(dirname "$0")"

dune build @all
dune runtest
dune exec bench/perf_gate.exe -- --smoke
