#!/usr/bin/env bash
# Full local CI: build everything, run the test suite (including the
# counter-invariance gate), then smoke the perf gate against the committed
# baseline.  The wide tolerance absorbs smoke-quota noise while still
# catching order-of-magnitude regressions; check mode never rewrites the
# baseline.
set -euo pipefail
cd "$(dirname "$0")"

dune build @all
# Static discipline gate: charge accounting, layer DAG, determinism,
# mutable-state registry, unsafe-op containment, and the interprocedural
# dataflow rules (pin/release pairing, RNG-stream taint, charge/effect
# ordering) over the typed ASTs.
# Prints `treelint: N rules, M files, 0 violations` on success.
dune build @lint
# The same sweep again, driven directly: emit the SARIF artifact for CI
# upload, prove the baseline holds an empty delta (every fingerprint in
# treelint.baseline still corresponds to a live diagnostic — a rewrite
# under --update-baseline must be a no-op), and require the content-hash
# cache to cut a warm run below 25% of the cold one.
TREELINT="./_build/default/tools/treelint/bin/treelint_main.exe"
TREELINT_ARGS=(--config treelint.toml --baseline treelint.baseline \
  --cmi _build/default/.fmt.objs/byte/fmt.cmi lib)
now_ms() { echo $(( $(date +%s%N) / 1000000 )); }
rm -f _build/treelint.cache
t0=$(now_ms)
"$TREELINT" "${TREELINT_ARGS[@]}" --cache _build/treelint.cache \
  --sarif treelint.sarif > /dev/null
t_cold=$(( $(now_ms) - t0 ))
t0=$(now_ms)
"$TREELINT" "${TREELINT_ARGS[@]}" --cache _build/treelint.cache > /dev/null
t_warm=$(( $(now_ms) - t0 ))
echo "treelint: cold ${t_cold}ms, warm ${t_warm}ms (sarif: treelint.sarif)"
if [ $(( t_warm * 4 )) -ge "$t_cold" ]; then
  echo "treelint: warm cache run took >=25% of the cold run" >&2
  exit 1
fi
cp -f treelint.baseline _build/treelint.baseline.orig 2>/dev/null || \
  touch _build/treelint.baseline.orig
"$TREELINT" "${TREELINT_ARGS[@]}" --update-baseline > /dev/null
if ! diff -u _build/treelint.baseline.orig treelint.baseline; then
  echo "treelint: baseline delta is not empty — stale grandfathered entries" >&2
  exit 1
fi
# runtest also diffs the plan-lowering / explain snapshots in test/snapshot/
# against their committed expectations (including the sharded S=1/S=4
# matrix); after an intentional plan or operator change — including
# anything that flips a fetch/harvest between mode=packed and mode=handle
# or changes the batch size shown in its label — run `dune promote` and
# commit the updated .expected.
#
# The optimizer-choice snapshots (test/snapshot/optimizer.expected) ride the
# same pass: chosen plan + top-3 candidate costs across the Figure 6
# selectivity sweep, the index-vs-scan switch point, and the sharded
# break-even, all derived from catalog statistics without executing.  A
# cost-model change that moves a crossover shows up as a diff here — promote
# it only if the new verdicts are intended.
#
# Sharding gates ride in the same pass: test/shard_parity_tests.ml runs the
# full algorithm x access-path matrix on twin S=1/S=4 databases (identical
# result multisets, per-shard frames reconciling exactly against the global
# counters), and the invariance suite pins S=1 to the golden scale-40
# fingerprint byte for byte — one shard must BE the unsharded engine.
dune runtest
# Exhaustive crash-recovery fuzz: crash at every durable write of the
# fixed-seed workload (the default runtest pass strides the same sweep).
TREEBENCH_RECOVERY_FULL=1 dune exec test/test_main.exe -- test recovery
# Exhaustive chaos sweep: kill every shard at every exchange boundary of
# every (algorithm x access path) plan on the S=4/R=2 database and require
# the fault-free result multiset plus exactly one failover (the default
# runtest pass runs a strided smoke of the same matrix).
TREEBENCH_CHAOS_FULL=1 dune exec test/test_main.exe -- test chaos
dune exec bench/perf_gate.exe -- --smoke --check --tolerance 150
