#!/usr/bin/env bash
# Full local CI: build everything, run the test suite (including the
# counter-invariance gate), then smoke the perf gate against the committed
# baseline.  The wide tolerance absorbs smoke-quota noise while still
# catching order-of-magnitude regressions; check mode never rewrites the
# baseline.
set -euo pipefail
cd "$(dirname "$0")"

dune build @all
# Static discipline gate: charge accounting, layer DAG, determinism,
# mutable-state registry and unsafe-op containment over the typed ASTs.
# Prints `treelint: N rules, M files, 0 violations` on success.
dune build @lint
# runtest also diffs the plan-lowering / explain snapshots in test/snapshot/
# against their committed expectations (including the sharded S=1/S=4
# matrix); after an intentional plan or operator change — including
# anything that flips a fetch/harvest between mode=packed and mode=handle
# or changes the batch size shown in its label — run `dune promote` and
# commit the updated .expected.
#
# Sharding gates ride in the same pass: test/shard_parity_tests.ml runs the
# full algorithm x access-path matrix on twin S=1/S=4 databases (identical
# result multisets, per-shard frames reconciling exactly against the global
# counters), and the invariance suite pins S=1 to the golden scale-40
# fingerprint byte for byte — one shard must BE the unsharded engine.
dune runtest
# Exhaustive crash-recovery fuzz: crash at every durable write of the
# fixed-seed workload (the default runtest pass strides the same sweep).
TREEBENCH_RECOVERY_FULL=1 dune exec test/test_main.exe -- test recovery
# Exhaustive chaos sweep: kill every shard at every exchange boundary of
# every (algorithm x access path) plan on the S=4/R=2 database and require
# the fault-free result multiset plus exactly one failover (the default
# runtest pass runs a strided smoke of the same matrix).
TREEBENCH_CHAOS_FULL=1 dune exec test/test_main.exe -- test chaos
dune exec bench/perf_gate.exe -- --smoke --check --tolerance 150
