(* Quickstart: build a small doctors-and-patients database, run OQL over it,
   and look at what the optimizer did.

     dune exec examples/quickstart.exe *)

let () =
  (* A database at 1/500 of the paper's 1,000,000x3 shape: 2,000 providers,
     6,000 patients, one file per class, with indexes on upin and mrn. *)
  let scale = 500 in
  let cfg =
    Tb_derby.Generator.config ~scale `Deep Tb_derby.Generator.Class_clustered
  in
  let built = Tb_derby.Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg in
  let db = built.Tb_derby.Generator.db in
  Printf.printf "Loaded %d providers and %d patients in %.2f simulated seconds.\n\n"
    (Array.length built.Tb_derby.Generator.providers)
    (Array.length built.Tb_derby.Generator.patients)
    built.Tb_derby.Generator.load_seconds;

  (* A selection. *)
  let selection = "select pa.name from pa in Patients where pa.num < 5" in
  let r = Tb_query.Planner.run db selection ~keep:true in
  Format.printf "%s@." selection;
  List.iter
    (fun v -> Format.printf "  -> %a@." Tb_store.Value.pp v)
    (Tb_query.Query_result.values r);
  Tb_query.Query_result.dispose r;

  (* The paper's hierarchical join. *)
  let join =
    "select [p.name, pa.age] from p in Providers, pa in p.clients where \
     pa.mrn < 600 and p.upin < 200"
  in
  Format.printf "@.%s@." join;
  let q = Tb_query.Oql_parser.parse join in
  let plan = Tb_query.Planner.plan db q in
  Format.printf "  optimizer chose: %a@." Tb_query.Plan.pp plan;
  let r = Tb_query.Exec.run db (Tb_query.Planner.lower plan) ~keep:false in
  Format.printf "  %d result tuples, first few:@." (Tb_query.Query_result.count r);
  List.iteri
    (fun i v -> if i < 3 then Format.printf "    %a@." Tb_store.Value.pp v)
    (Tb_query.Query_result.sample r);
  Tb_query.Query_result.dispose r;

  (* Simulated-cost introspection: what did that query do to the machine? *)
  Tb_store.Database.cold_restart db;
  let m = Tb_core.Measurement.run_cold db join ~label:"join, cold" in
  Format.printf "@.cold-run profile: %a@." Tb_core.Measurement.pp m
