(* XML-ish document store: the paper's introduction motivates everything
   with hierarchical structures "popular nowadays, thanks to XML": either
   you follow links node-to-node (the title of the first section of one
   document) or you run a large associative access (the titles of a whole
   collection).

   This example defines its own Document/Section schema on the library's
   public API — nothing Derby-specific — loads a corpus with composition
   clustering, and runs both access patterns.

     dune exec examples/xml_documents.exe *)

module Schema = Tb_store.Schema
module Value = Tb_store.Value
module Database = Tb_store.Database

let schema =
  Schema.make
    ~classes:
      [
        {
          Schema.cls_name = "Document";
          attrs =
            [
              ("title", Schema.TString);
              ("docid", Schema.TInt);
              ("year", Schema.TInt);
              ("sections", Schema.TList (Schema.TRef "Section"));
            ];
        };
        {
          Schema.cls_name = "Section";
          attrs =
            [
              ("title", Schema.TString);
              ("secid", Schema.TInt);
              ("length", Schema.TInt);
              ("document", Schema.TRef "Document");
            ];
        };
      ]
    ~roots:
      [
        ("Documents", Schema.TSet (Schema.TRef "Document"));
        ("Sections", Schema.TSet (Schema.TRef "Section"));
      ]

let n_documents = 2_000
let sections_per_doc = 8

let () =
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100) in
  let db =
    Database.create sim ~schema ~server_pages:64 ~client_pages:512
      ~txn_mode:Tb_store.Transaction.Load_off ()
  in
  (* Composition clustering: each document is followed by its sections. *)
  let shared = Database.new_file db ~name:"corpus" in
  Database.bind_class db ~cls:"Document" shared;
  Database.bind_class db ~cls:"Section" shared;
  let rng = sim.Tb_sim.Sim.rng in
  let sec_counter = ref 0 in
  let docs =
    Array.init n_documents (fun d ->
        let doc_rid =
          Database.insert_object db ~cls:"Document" ~indexed:true
            (Value.Tuple
               [
                 ("title", Value.String (Printf.sprintf "Document %05d" d));
                 ("docid", Value.Int d);
                 ("year", Value.Int (1980 + Tb_sim.Rng.int rng 20));
                 ("sections", Value.List []);
               ])
        in
        let sections =
          List.init sections_per_doc (fun s ->
              incr sec_counter;
              Database.insert_object db ~cls:"Section" ~indexed:true
                (Value.Tuple
                   [
                     ("title", Value.String (Printf.sprintf "Section %d.%d" d s));
                     ("secid", Value.Int !sec_counter);
                     ("length", Value.Int (Tb_sim.Rng.int rng 5_000));
                     ("document", Value.Ref doc_rid);
                   ]))
        in
        let _, v = Database.read_object db doc_rid in
        Database.update_object db doc_rid
          (Value.set_field v "sections"
             (Value.List (List.map (fun r -> Value.Ref r) sections)));
        doc_rid)
  in
  ignore (Database.create_index db ~name:"docid" ~cls:"Document" ~attr:"docid");
  ignore (Database.create_index db ~name:"secid" ~cls:"Section" ~attr:"secid");
  Database.commit db;
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  Printf.printf "Corpus: %d documents x %d sections, composition-clustered.\n\n"
    n_documents sections_per_doc;

  (* Navigation: the title of the first section of one given document. *)
  let doc = docs.(n_documents / 2) in
  let h = Database.acquire db doc in
  let first_section =
    match Database.get_att db h "sections" with
    | Value.List (Value.Ref s :: _) -> s
    | _ -> failwith "document has no sections"
  in
  let sh = Database.acquire db first_section in
  Format.printf "navigation:  first section of %s is %S@."
    (Value.to_string_exn (Database.get_att db h "title"))
    (Value.to_string_exn (Database.get_att db sh "title"));
  Database.unref db sh;
  Database.unref db h;
  Printf.printf "             cost: %.4f simulated seconds (%d page reads)\n\n"
    (Tb_sim.Sim.elapsed_s sim) sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads;

  (* Associative access: titles of a large slice of the corpus, via OQL. *)
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let q =
    Printf.sprintf "select d.title from d in Documents where d.docid < %d"
      (n_documents / 2)
  in
  let r = Tb_query.Planner.run db q ~keep:false in
  Format.printf "associative: %s@." q;
  Printf.printf "             %d titles in %.2f simulated seconds (%d page reads)\n\n"
    (Tb_query.Query_result.count r) (Tb_sim.Sim.elapsed_s sim)
    sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads;
  Tb_query.Query_result.dispose r;

  (* And the hierarchical join over the whole corpus. *)
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let join =
    Printf.sprintf
      "select [d.title, s.title] from d in Documents, s in d.sections where \
       s.secid < %d and d.docid < %d"
      (n_documents * sections_per_doc / 2)
      (n_documents / 2)
  in
  let plan =
    Tb_query.Planner.plan db
      ~organization:Tb_query.Estimate.Shared_composition
      (Tb_query.Oql_parser.parse join)
  in
  Format.printf "join:        %a@." Tb_query.Plan.pp plan;
  let r = Tb_query.Exec.run db (Tb_query.Planner.lower plan) ~keep:false in
  Printf.printf
    "             %d (document, section) pairs in %.2f simulated seconds\n"
    (Tb_query.Query_result.count r) (Tb_sim.Sim.elapsed_s sim);
  Tb_query.Query_result.dispose r;
  Printf.printf
    "\nOn a composition-clustered corpus the optimizer navigates (NL) rather \
     than hash-joining —\nthe Section 5.3 result, on a schema that is not \
     Derby.\n"
