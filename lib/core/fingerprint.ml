module Generator = Tb_derby.Generator
module Database = Tb_store.Database
module Sim = Tb_sim.Sim
module Counters = Tb_sim.Counters
module Plan = Tb_query.Plan

(* The same algorithm/cell grid as Figures 11-15. *)
let algos = [ Plan.PHJ; Plan.CHJ; Plan.NOJOIN; Plan.NL ]
let cells = [ (10, 10); (10, 90); (90, 10); (90, 90) ]

(* One canonical line per measured run: every Counters field, the simulated
   clock (as raw float bits, so "identical" means bit-identical), the result
   cardinality and the simulated memory peak.  Any engine change that
   perturbs the cost model shows up as a diff against the recorded golden
   file. *)
let line ~tag db result_count =
  let sim = Database.sim db in
  let c = sim.Sim.counters in
  (* Logging/recovery activity appears as a suffix only when present, so
     fault-free measured runs (which never log: queries commit nothing)
     keep producing the exact lines the golden file pins down. *)
  let recovery =
    if
      c.Counters.wal_appends = 0 && c.Counters.redo_pages = 0
      && c.Counters.undo_pages = 0
      && c.Counters.read_retries = 0
    then ""
    else
      Printf.sprintf " wal=%d redo=%d undo=%d rr=%d" c.Counters.wal_appends
        c.Counters.redo_pages c.Counters.undo_pages c.Counters.read_retries
  in
  (* Likewise for shard-failure activity: RPC timeouts/retries and replica
     promotions only ever show up when a fault schedule fired, so the
     fault-free golden lines are untouched while a chaos run's fingerprint
     pins down the exact failover story. *)
  let chaos =
    if
      c.Counters.rpc_timeouts = 0 && c.Counters.rpc_retries = 0
      && c.Counters.failovers = 0
    then ""
    else
      Printf.sprintf " rpct=%d rpcr=%d fo=%d" c.Counters.rpc_timeouts
        c.Counters.rpc_retries c.Counters.failovers
  in
  let recovery = recovery ^ chaos in
  Printf.sprintf
    "%s | elapsed=%Lx rows=%d dr=%d dw=%d rpc=%d rpcp=%d sh=%d sm=%d ch=%d \
     cm=%d ha=%d hf=%d hh=%d ga=%d cmp=%d hi=%d hp=%d sc=%d ra=%d sw=%d \
     peak=%d%s"
    tag
    (Int64.bits_of_float (Sim.elapsed_s sim))
    result_count c.Counters.disk_reads c.Counters.disk_writes
    c.Counters.rpc_count c.Counters.rpc_pages c.Counters.server_hits
    c.Counters.server_misses c.Counters.client_hits c.Counters.client_misses
    c.Counters.handle_allocs c.Counters.handle_frees c.Counters.handle_hits
    c.Counters.get_atts c.Counters.comparisons c.Counters.hash_inserts
    c.Counters.hash_probes c.Counters.sort_comparisons
    c.Counters.result_appends c.Counters.swap_faults
    sim.Sim.peak_working_bytes recovery

(* Compact per-operator suffix: opcode:rows_out:pages_read per node in
   pre-order.  Off by default so the golden file stays byte-identical; the
   per-operator view is an opt-in refinement that pins down not just the
   totals but which operator produced them. *)
let per_op_suffix root =
  let buf = Buffer.create 64 in
  Tb_query.Op.iter
    (fun node ->
      let fr = node.Tb_query.Op.frame in
      Buffer.add_string buf
        (Printf.sprintf " %s:%d:%d"
           (Tb_query.Op.opcode node)
           fr.Tb_query.Op.rows_out fr.Tb_query.Op.pages_read))
    root;
  Buffer.contents buf

let run_cold ?(per_op = false) ?organization ?force_algo ?force_seq
    ?force_sorted ~tag db q =
  let sim = Database.sim db in
  Database.cold_restart db;
  Sim.reset sim;
  if per_op then begin
    let r, root, _global =
      Tb_query.Planner.run_explained ?organization ?force_algo ?force_seq
        ?force_sorted ~keep:false db q
    in
    let n = Tb_query.Query_result.count r in
    Tb_query.Query_result.dispose r;
    line ~tag db n ^ " ops:" ^ per_op_suffix root
  end
  else begin
    let r =
      Tb_query.Planner.run ?organization ?force_algo ?force_seq ?force_sorted
        ~keep:false db q
    in
    let n = Tb_query.Query_result.count r in
    Tb_query.Query_result.dispose r;
    line ~tag db n
  end

let selection_query (b : Generator.built) ~sel_permille =
  let k = sel_permille * Array.length b.Generator.patients / 1000 in
  Printf.sprintf "select pa.age from pa in Patients where pa.num < %d" k

let join_query (b : Generator.built) ~sel_pat ~sel_prov =
  let k1 = sel_pat * Array.length b.Generator.patients / 100 in
  let k2 = sel_prov * Array.length b.Generator.providers / 100 in
  Printf.sprintf
    "select [p.name, pa.age] from p in Providers, pa in p.clients where \
     pa.mrn < %d and p.upin < %d"
    k1 k2

let shape_name = function `Wide -> "wide" | `Deep -> "deep"

let org_name = function
  | Generator.Class_clustered -> "class"
  | Generator.Randomized -> "random"
  | Generator.Composition -> "composition"
  | Generator.Assoc_ordered -> "assoc"

let join_lines ?per_op ~scale shape org =
  let cfg = Generator.config ~scale shape org in
  let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg in
  let organization = Generator.estimate_organization cfg in
  List.concat_map
    (fun (sel_pat, sel_prov) ->
      List.map
        (fun algo ->
          let tag =
            Printf.sprintf "join %s %s %s %d/%d" (shape_name shape)
              (org_name org) (Plan.algo_name algo) sel_pat sel_prov
          in
          run_cold ?per_op ~organization ~force_algo:algo ~force_sorted:true ~tag
            b.Generator.db
            (join_query b ~sel_pat ~sel_prov))
        algos)
    cells

(* Selections of Figures 6/7/9 on the wide class-clustered database: plain
   scan, unsorted index scan and sorted index scan across selectivities. *)
let selection_lines ?per_op ~scale () =
  let cfg = Generator.config ~scale `Wide Generator.Class_clustered in
  let b = Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg in
  let sel accesses =
    List.concat_map
      (fun sel_permille ->
        let q = selection_query b ~sel_permille in
        List.map
          (fun access ->
            match access with
            | `Scan ->
                run_cold ?per_op ~force_seq:true
                  ~tag:(Printf.sprintf "sel scan p=%d" sel_permille)
                  b.Generator.db q
            | `Index ->
                run_cold ?per_op ~force_sorted:false
                  ~tag:(Printf.sprintf "sel index p=%d" sel_permille)
                  b.Generator.db q
            | `Sorted ->
                run_cold ?per_op ~force_sorted:true
                  ~tag:(Printf.sprintf "sel sorted p=%d" sel_permille)
                  b.Generator.db q)
          accesses)
  in
  sel [ `Index; `Scan ] [ 1; 10; 50; 100; 300; 600; 900 ]
  @ sel [ `Sorted ] [ 100; 300; 600; 900 ]

(* The selection workload again, through the sharded engine.  At S=1 the
   tags and every byte after them must reproduce the golden file's "sel "
   lines exactly: a one-shard map is the unsharded engine by construction
   (same build charge stream, same plans, no Gather/Shard_lane nodes), and
   this is the cheap gate that pins it.  At S>1 the lines are a fingerprint
   of the partitioned physics instead. *)
let sharded_selection_lines ~shards ~scale () =
  let cfg = Generator.config ~scale `Wide Generator.Class_clustered in
  let b =
    Generator.build_sharded ~cost:(Tb_sim.Cost_model.scaled scale) ~shards cfg
  in
  let smap = b.Generator.smap in
  let sim = Tb_store.Shard_map.sim smap in
  let n_patients = Array.length b.Generator.sh_patients in
  let run_cold_sharded ?force_seq ?force_sorted ~tag q =
    Tb_store.Shard_map.cold_restart smap;
    Sim.reset sim;
    let r =
      Tb_query.Planner.run_sharded ?force_seq ?force_sorted ~keep:false smap q
    in
    let n = Tb_query.Query_result.count r in
    Tb_query.Query_result.dispose r;
    line ~tag (Tb_store.Shard_map.shard smap 0) n
  in
  let sel accesses =
    List.concat_map
      (fun sel_permille ->
        let k = sel_permille * n_patients / 1000 in
        let q =
          Printf.sprintf "select pa.age from pa in Patients where pa.num < %d"
            k
        in
        List.map
          (fun access ->
            match access with
            | `Scan ->
                run_cold_sharded ~force_seq:true
                  ~tag:(Printf.sprintf "sel scan p=%d" sel_permille)
                  q
            | `Index ->
                run_cold_sharded ~force_sorted:false
                  ~tag:(Printf.sprintf "sel index p=%d" sel_permille)
                  q
            | `Sorted ->
                run_cold_sharded ~force_sorted:true
                  ~tag:(Printf.sprintf "sel sorted p=%d" sel_permille)
                  q)
          accesses)
  in
  sel [ `Index; `Scan ] [ 1; 10; 50; 100; 300; 600; 900 ]
  @ sel [ `Sorted ] [ 100; 300; 600; 900 ]

(* The full workload behind fig6/fig7/fig9/fig11-fig15, in a fixed order.
   Each database is built, measured and dropped before the next one so peak
   RSS stays one simulated disk. *)
let collect ?per_op ~scale () =
  selection_lines ?per_op ~scale ()
  @ List.concat_map
      (fun (shape, org) -> join_lines ?per_op ~scale shape org)
      [
        (`Wide, Generator.Class_clustered);
        (`Wide, Generator.Composition);
        (`Wide, Generator.Randomized);
        (`Deep, Generator.Class_clustered);
        (`Deep, Generator.Composition);
        (`Deep, Generator.Randomized);
      ]
