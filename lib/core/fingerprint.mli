(** Canonical cost-model fingerprints of the paper's figure workloads.

    [collect ~scale] rebuilds the databases behind Figures 6/7/9/11-15 and
    re-runs every measured cell cold, emitting one line per run that folds
    in every {!Tb_sim.Counters} field, the simulated elapsed time (as raw
    IEEE-754 bits) and the simulated memory peak.

    The golden file recorded from the engine as of the perf overhaul
    ([test/counter_golden_scale40.txt]) pins these lines down: real-time
    optimisations of the engine must leave every simulated number
    bit-identical, which is what the invariance test asserts.

    Logging/recovery counters (WAL appends, redo/undo pages, read retries)
    join the line as a [wal=… redo=… undo=… rr=…] suffix only when any is
    non-zero, so fault-free measured runs — which never log — keep matching
    the recorded golden lines byte for byte. *)

(** [per_op] (default false) appends an [ops:] suffix to every line —
    [opcode:rows_out:pages_read] per operator of the executed tree, in
    pre-order.  The default output is unchanged, so the golden file stays
    byte-identical; the suffix refines the totals down to the operator
    that produced them. *)
val collect : ?per_op:bool -> scale:int -> unit -> string list

(** [sharded_selection_lines ~shards ~scale ()] re-runs the selection part
    of the workload through the sharded engine ([Planner.run_sharded] over
    a [~shards]-way {!Tb_derby.Generator.build_sharded} database), with the
    same tags as the unsharded lines.  At [shards = 1] the output must
    equal the golden file's ["sel "] lines byte for byte — the gate that
    pins "one shard is the unsharded engine".  At higher shard counts it
    fingerprints the partitioned physics instead. *)
val sharded_selection_lines : shards:int -> scale:int -> unit -> string list
