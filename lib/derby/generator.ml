module Value = Tb_store.Value
module Database = Tb_store.Database
module Transaction = Tb_store.Transaction
module Rid = Tb_storage.Rid
module Rng = Tb_sim.Rng

type organization = Class_clustered | Randomized | Composition | Assoc_ordered

type config = {
  n_providers : int;
  fanout : int;
  organization : organization;
  seed : int;
  handle_kind : Tb_sim.Cost_model.handle_kind;
  server_pages : int;
  client_pages : int;
  txn_mode : Tb_store.Transaction.mode;
  commit_every : int;
  indexed_creation : bool;
  build_num_index : bool;
}

let config ~scale shape organization =
  if scale <= 0 then invalid_arg "Generator.config: scale";
  let n_providers, fanout =
    match shape with
    | `Wide -> (max 2 (2_000 / scale), 1_000)
    | `Deep -> (max 2 (1_000_000 / scale), 3)
  in
  let page = Tb_sim.Cost_model.default.Tb_sim.Cost_model.page_size in
  {
    n_providers;
    fanout;
    organization;
    seed = 1997;
    handle_kind = Tb_sim.Cost_model.Fat;
    (* 4 MB server cache, 32 MB client cache, scaled with the data. *)
    server_pages = max 4 (4 * 1024 * 1024 / page / scale);
    client_pages = max 8 (32 * 1024 * 1024 / page / scale);
    txn_mode = Transaction.Load_off;
    commit_every = 10_000;
    indexed_creation = true;
    build_num_index = true;
  }

type built = {
  db : Database.t;
  cfg : config;
  cost : Tb_sim.Cost_model.t;
  providers : Rid.t array;
  patients : Rid.t array;
  upin_index : Tb_store.Index_def.t;
  mrn_index : Tb_store.Index_def.t;
  num_index : Tb_store.Index_def.t option;
  load_seconds : float;
}

type built_sharded = {
  smap : Tb_store.Shard_map.t;
  sh_cfg : config;
  sh_cost : Tb_sim.Cost_model.t;
  sh_providers : Rid.t array;
  sh_patients : Rid.t array;
  provider_shard : int array;
  patient_shard : int array;
  sh_load_seconds : float;
}

let estimate_organization cfg =
  match cfg.organization with
  | Class_clustered -> Tb_query.Estimate.Separate_files
  | Randomized -> Tb_query.Estimate.Shared_random
  | Composition -> Tb_query.Estimate.Shared_composition
  | Assoc_ordered -> Tb_query.Estimate.Assoc_clustered

(* Assignment of patients to providers: each provider gets exactly [fanout]
   patients, but which patients (hence the clients orderings and the
   provider seen by consecutive patients) is a deterministic shuffle — the
   randomized relationship of Section 2. *)
let assignment rng ~n_providers ~fanout =
  let n_patients = n_providers * fanout in
  let provider_of = Array.init n_patients (fun j -> j / fanout) in
  Rng.shuffle rng provider_of;
  let children = Array.make n_providers [] in
  for j = n_patients - 1 downto 0 do
    children.(provider_of.(j)) <- j :: children.(provider_of.(j))
  done;
  (* Shuffle each clients list: the relationship is randomized in *both*
     directions, so composition blocks are not ordered by mrn (otherwise a
     selective mrn range would artificially touch only block prefixes). *)
  let children =
    Array.map
      (fun js ->
        let arr = Array.of_list js in
        Rng.shuffle rng arr;
        Array.to_list arr)
      children
  in
  (provider_of, children)

let build ?(cost = Tb_sim.Cost_model.default) cfg =
  let sim = Tb_sim.Sim.create ~seed:cfg.seed cost in
  let rng = sim.Tb_sim.Sim.rng in
  let db =
    (* The pool of not-yet-destroyed Handles scales with client memory,
       like everything else on the simulated machine. *)
    Database.create sim ~schema:Derby.schema ~server_pages:cfg.server_pages
      ~client_pages:cfg.client_pages ~handle_kind:cfg.handle_kind
      ~txn_mode:cfg.txn_mode
      ~zombie_limit:(max 64 cfg.client_pages) ()
  in
  let np = cfg.n_providers in
  let nc = np * cfg.fanout in
  let provider_of, children = assignment rng ~n_providers:np ~fanout:cfg.fanout in
  let num_key = Rng.permutation rng nc in
  let ages = Array.init nc (fun _ -> Rng.int rng 100) in
  (* Files per organization. *)
  (match cfg.organization with
  | Class_clustered | Assoc_ordered ->
      Database.bind_class db ~cls:Derby.provider_cls
        (Database.new_file db ~name:"providers");
      Database.bind_class db ~cls:Derby.patient_cls
        (Database.new_file db ~name:"patients")
  | Randomized | Composition ->
      let shared = Database.new_file db ~name:"objects" in
      Database.bind_class db ~cls:Derby.provider_cls shared;
      Database.bind_class db ~cls:Derby.patient_cls shared);
  let providers = Array.make np Rid.nil in
  let patients = Array.make nc Rid.nil in
  let created = ref 0 in
  let maybe_commit () =
    incr created;
    if
      cfg.txn_mode = Transaction.Standard
      && !created mod cfg.commit_every = 0
    then Database.commit db
  in
  (* The clients attribute is created pre-sized: an inline set of nil
     references when it will stay inline, an empty set when it will spill
     (the Big_set reference that replaces it has a fixed 9-byte encoding),
     so the later association update never relocates providers. *)
  let clients_placeholder =
    let inline = Value.Set (List.init cfg.fanout (fun _ -> Value.Ref Rid.nil)) in
    if Tb_store.Codec.encoded_size inline > Tb_store.Big_collection.spill_threshold
    then Value.Set []
    else inline
  in
  let create_provider i =
    providers.(i) <-
      Database.insert_object db ~cls:Derby.provider_cls
        ~indexed:cfg.indexed_creation
        (Derby.provider_value ~upin:i ~clients:clients_placeholder);
    maybe_commit ()
  in
  let create_patient ?pcp j =
    let pcp =
      match pcp with Some rid -> Value.Ref rid | None -> Value.Ref Rid.nil
    in
    patients.(j) <-
      Database.insert_object db ~cls:Derby.patient_cls
        ~indexed:cfg.indexed_creation
        (Derby.patient_value ~mrn:j ~age:ages.(j)
           ~sex:(if j land 1 = 0 then 'F' else 'M')
           ~random_integer:(1 + Rng.int rng np)
           ~num:num_key.(j) ~pcp);
    maybe_commit ()
  in
  let set_clients i =
    let refs = List.map (fun j -> Value.Ref patients.(j)) children.(i) in
    let header, value = Database.read_object db providers.(i) in
    ignore header;
    Database.update_object db providers.(i)
      (Value.set_field value "clients" (Value.Set refs));
    maybe_commit ()
  in
  let set_pcp j =
    let _, value = Database.read_object db patients.(j) in
    Database.update_object db patients.(j)
      (Value.set_field value "primary_care_provider"
         (Value.Ref providers.(provider_of.(j))));
    maybe_commit ()
  in
  (match cfg.organization with
  | Class_clustered ->
      for i = 0 to np - 1 do
        create_provider i
      done;
      for j = 0 to nc - 1 do
        create_patient ~pcp:providers.(provider_of.(j)) j
      done;
      for i = 0 to np - 1 do
        set_clients i
      done
  | Randomized ->
      (* Interleave both classes in one shuffled creation order, then fix
         the references up. *)
      let order = Array.init (np + nc) (fun k -> k) in
      Rng.shuffle rng order;
      Array.iter
        (fun k -> if k < np then create_provider k else create_patient (k - np))
        order;
      for j = 0 to nc - 1 do
        set_pcp j
      done;
      for i = 0 to np - 1 do
        set_clients i
      done
  | Composition ->
      for i = 0 to np - 1 do
        create_provider i;
        List.iter (fun j -> create_patient ~pcp:providers.(i) j) children.(i);
        set_clients i
      done
  | Assoc_ordered ->
      for i = 0 to np - 1 do
        create_provider i
      done;
      for i = 0 to np - 1 do
        List.iter (fun j -> create_patient ~pcp:providers.(i) j) children.(i)
      done;
      for i = 0 to np - 1 do
        set_clients i
      done);
  let upin_index =
    Database.create_index db ~name:"upin" ~cls:Derby.provider_cls ~attr:"upin"
  in
  let mrn_index =
    Database.create_index db ~name:"mrn" ~cls:Derby.patient_cls ~attr:"mrn"
  in
  let num_index =
    if cfg.build_num_index then
      Some (Database.create_index db ~name:"num" ~cls:Derby.patient_cls ~attr:"num")
    else None
  in
  Database.commit db;
  let load_seconds = Tb_sim.Sim.elapsed_s sim in
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  {
    db;
    cfg;
    cost;
    providers;
    patients;
    upin_index;
    mrn_index;
    num_index;
    load_seconds;
  }

(* The sharded twin of [build]: same RNG draw sequence, same global object
   creation order, but each provider — and, colocated with it, its patients
   — is created in the shard its upin hashes to.  At [shards = 1] every
   call lands on shard 0 with the same cache budgets as [build]'s single
   database, so the charge stream (counters, clock, peak) is bit-identical
   to the unsharded load; the parity suite pins that.

   With [replicas > 1] every statement is applied to the whole replica
   group — primary first, then each follower — so follower databases are
   byte-identical twins (same Rids, same page images) and the load cost
   honestly includes the replication stream.  At the default [replicas =
   1] the follower lists are empty and the loop bodies never run. *)
let build_sharded ?(cost = Tb_sim.Cost_model.default) ~shards ?replicas cfg =
  let sim = Tb_sim.Sim.create ~seed:cfg.seed cost in
  let rng = sim.Tb_sim.Sim.rng in
  let smap =
    Tb_store.Shard_map.create sim ~schema:Derby.schema ~shards ?replicas
      ~server_pages:cfg.server_pages ~client_pages:cfg.client_pages
      ~handle_kind:cfg.handle_kind ~txn_mode:cfg.txn_mode
      ~zombie_limit:(max 64 (cfg.client_pages / shards))
      ~key_attr:"upin" ~seed:cfg.seed ()
  in
  let np = cfg.n_providers in
  let nc = np * cfg.fanout in
  let provider_of, children = assignment rng ~n_providers:np ~fanout:cfg.fanout in
  let num_key = Rng.permutation rng nc in
  let ages = Array.init nc (fun _ -> Rng.int rng 100) in
  let provider_shard =
    Array.init np (fun i -> Tb_store.Shard_map.shard_of_key smap i)
  in
  let patient_shard = Array.init nc (fun j -> provider_shard.(provider_of.(j))) in
  Tb_store.Shard_map.iter_group smap (fun s dbs ->
      List.iter
        (fun db ->
          match cfg.organization with
          | Class_clustered | Assoc_ordered ->
              Database.bind_class db ~cls:Derby.provider_cls
                (Database.new_file db ~name:(Printf.sprintf "providers.%d" s));
              Database.bind_class db ~cls:Derby.patient_cls
                (Database.new_file db ~name:(Printf.sprintf "patients.%d" s))
          | Randomized | Composition ->
              let shared =
                Database.new_file db ~name:(Printf.sprintf "objects.%d" s)
              in
              Database.bind_class db ~cls:Derby.provider_cls shared;
              Database.bind_class db ~cls:Derby.patient_cls shared)
        dbs);
  let providers = Array.make np Rid.nil in
  let patients = Array.make nc Rid.nil in
  let created = ref 0 in
  let maybe_commit () =
    incr created;
    if cfg.txn_mode = Transaction.Standard && !created mod cfg.commit_every = 0
    then Tb_store.Shard_map.commit smap
  in
  let clients_placeholder =
    let inline = Value.Set (List.init cfg.fanout (fun _ -> Value.Ref Rid.nil)) in
    if Tb_store.Codec.encoded_size inline > Tb_store.Big_collection.spill_threshold
    then Value.Set []
    else inline
  in
  let provider_dbs i = Tb_store.Shard_map.group smap provider_shard.(i) in
  let patient_dbs j = Tb_store.Shard_map.group smap patient_shard.(j) in
  (* Apply one insert to the whole replica group.  The primary's Rid is
     the object's address; followers replay the identical statement
     stream, so their copies land at the same Rid by construction. *)
  let insert_replicated dbs ~cls value =
    match dbs with
    | [] -> assert false
    | primary :: rest ->
        let rid =
          Database.insert_object primary ~cls ~indexed:cfg.indexed_creation
            value
        in
        List.iter
          (fun db ->
            ignore
              (Database.insert_object db ~cls ~indexed:cfg.indexed_creation
                 value))
          rest;
        rid
  in
  let create_provider i =
    providers.(i) <-
      insert_replicated (provider_dbs i) ~cls:Derby.provider_cls
        (Derby.provider_value ~upin:i ~clients:clients_placeholder);
    maybe_commit ()
  in
  let create_patient ?pcp j =
    let pcp =
      match pcp with Some rid -> Value.Ref rid | None -> Value.Ref Rid.nil
    in
    patients.(j) <-
      insert_replicated (patient_dbs j) ~cls:Derby.patient_cls
        (Derby.patient_value ~mrn:j ~age:ages.(j)
           ~sex:(if j land 1 = 0 then 'F' else 'M')
           ~random_integer:(1 + Rng.int rng np)
           ~num:num_key.(j) ~pcp);
    maybe_commit ()
  in
  let set_clients i =
    let dbs = provider_dbs i in
    let refs = List.map (fun j -> Value.Ref patients.(j)) children.(i) in
    let header, value = Database.read_object (List.hd dbs) providers.(i) in
    ignore header;
    let value' = Value.set_field value "clients" (Value.Set refs) in
    List.iter (fun db -> Database.update_object db providers.(i) value') dbs;
    maybe_commit ()
  in
  let set_pcp j =
    let dbs = patient_dbs j in
    let _, value = Database.read_object (List.hd dbs) patients.(j) in
    let value' =
      Value.set_field value "primary_care_provider"
        (Value.Ref providers.(provider_of.(j)))
    in
    List.iter (fun db -> Database.update_object db patients.(j) value') dbs;
    maybe_commit ()
  in
  (match cfg.organization with
  | Class_clustered ->
      for i = 0 to np - 1 do
        create_provider i
      done;
      for j = 0 to nc - 1 do
        create_patient ~pcp:providers.(provider_of.(j)) j
      done;
      for i = 0 to np - 1 do
        set_clients i
      done
  | Randomized ->
      let order = Array.init (np + nc) (fun k -> k) in
      Rng.shuffle rng order;
      Array.iter
        (fun k -> if k < np then create_provider k else create_patient (k - np))
        order;
      for j = 0 to nc - 1 do
        set_pcp j
      done;
      for i = 0 to np - 1 do
        set_clients i
      done
  | Composition ->
      for i = 0 to np - 1 do
        create_provider i;
        List.iter (fun j -> create_patient ~pcp:providers.(i) j) children.(i);
        set_clients i
      done
  | Assoc_ordered ->
      for i = 0 to np - 1 do
        create_provider i
      done;
      for i = 0 to np - 1 do
        List.iter (fun j -> create_patient ~pcp:providers.(i) j) children.(i)
      done;
      for i = 0 to np - 1 do
        set_clients i
      done);
  Tb_store.Shard_map.iter_group smap (fun _ dbs ->
      List.iter
        (fun db ->
          ignore
            (Database.create_index db ~name:"upin" ~cls:Derby.provider_cls
               ~attr:"upin");
          ignore
            (Database.create_index db ~name:"mrn" ~cls:Derby.patient_cls
               ~attr:"mrn");
          if cfg.build_num_index then
            ignore
              (Database.create_index db ~name:"num" ~cls:Derby.patient_cls
                 ~attr:"num"))
        dbs);
  Tb_store.Shard_map.commit smap;
  let sh_load_seconds = Tb_sim.Sim.elapsed_s sim in
  Tb_store.Shard_map.cold_restart smap;
  Tb_sim.Sim.reset sim;
  {
    smap;
    sh_cfg = cfg;
    sh_cost = cost;
    sh_providers = providers;
    sh_patients = patients;
    provider_shard;
    patient_shard;
    sh_load_seconds;
  }
