(** Database generation: the two shapes and four physical organizations.

    Shapes (Section 2): [`Wide] is 2,000 providers with 1,000 patients each
    (clients sets spill to a separate file); [`Deep] is 1,000,000 providers
    with 3 patients each (clients inline).  A [scale] divisor shrinks the
    provider count while {!Tb_sim.Cost_model.scaled} shrinks memory by the
    same factor, preserving every capacity ratio.

    Organizations (Figure 2):
    - [Class_clustered]: one file per class;
    - [Randomized]: both classes interleaved randomly in one file;
    - [Composition]: each provider physically followed by its patients;
    - [Assoc_ordered]: the alternative the paper suggests in Section 5.3 —
      separate files, but patients ordered by their provider association.

    The doctor/patient relationship is randomized (patients are assigned
    providers by a shuffled assignment, as the paper did with lrand48), and
    key attributes are *logical*: [upin] and [mrn] follow logical creation
    order, [num] is a random permutation.  Hence the mrn index is
    physically clustered under class clustering but not under composition —
    the asymmetry behind Figures 11-14. *)

type organization = Class_clustered | Randomized | Composition | Assoc_ordered

type config = {
  n_providers : int;
  fanout : int;
  organization : organization;
  seed : int;
  handle_kind : Tb_sim.Cost_model.handle_kind;
  server_pages : int;
  client_pages : int;
  txn_mode : Tb_store.Transaction.mode;
  commit_every : int;  (** objects per commit under [Standard] *)
  indexed_creation : bool;
      (** create objects with index-slot headers (avoids the Section 3.2
          reallocation) *)
  build_num_index : bool;  (** the unclustered index of Figures 6-7 *)
}

(** [config ~scale shape organization] is the paper's configuration for
    [shape] at [1/scale] size, with the tuned loading setup (transaction-off
    mode, 4 MB server / 32 MB client caches scaled, indexed creation). *)
val config : scale:int -> [ `Wide | `Deep ] -> organization -> config

type built = {
  db : Tb_store.Database.t;
  cfg : config;
  cost : Tb_sim.Cost_model.t;
  providers : Tb_storage.Rid.t array;  (** by logical id (= upin) *)
  patients : Tb_storage.Rid.t array;  (** by logical id (= mrn) *)
  upin_index : Tb_store.Index_def.t;
  mrn_index : Tb_store.Index_def.t;
  num_index : Tb_store.Index_def.t option;
  load_seconds : float;  (** simulated time the load took *)
}

(** [build ?cost cfg] creates the database from scratch and returns it cold
    (caches cleared, clock reset).  [cost] defaults to
    [Cost_model.scaled 1]. *)
val build : ?cost:Tb_sim.Cost_model.t -> config -> built

type built_sharded = {
  smap : Tb_store.Shard_map.t;
  sh_cfg : config;
  sh_cost : Tb_sim.Cost_model.t;
  sh_providers : Tb_storage.Rid.t array;
      (** by logical id; each Rid lives in its owning shard's database *)
  sh_patients : Tb_storage.Rid.t array;
  provider_shard : int array;  (** logical provider id → shard number *)
  patient_shard : int array;  (** colocated with the patient's provider *)
  sh_load_seconds : float;
}

(** [build_sharded ?cost ~shards cfg] is the horizontally partitioned twin
    of {!build}: the same RNG draw sequence and the same global creation
    order, with each provider and its patients created in the shard
    [hash(upin)] selects (colocation, so every join pair is shard-local).
    Every shard gets its own files and its own upin/mrn/num indexes.  With
    [~shards:1] the load's charge stream is bit-identical to {!build}.
    [replicas] (default 1) builds that many byte-identical copies of each
    shard by applying every statement to the whole replica group — the
    load cost honestly includes the replication stream. *)
val build_sharded :
  ?cost:Tb_sim.Cost_model.t ->
  shards:int ->
  ?replicas:int ->
  config ->
  built_sharded

(** [estimate_organization cfg] maps the generator's organization onto the
    planner's coarser view. *)
val estimate_organization : config -> Tb_query.Estimate.organization
