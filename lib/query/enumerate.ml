(* Stage one of the optimizer pipeline: the candidate space.

   [candidates] expands a bound query into every (join algorithm × access
   path per side × packed/handle evaluation mode) combination the lowering
   can execute.  Pure plan surgery over catalog statistics — index lookups
   are Database bookkeeping, selectivities come from {!Tb_statcore} — so
   enumeration never touches a page and never charges (treelint R1).

   List order encodes the tie policy: the cost stage's argmin keeps the
   FIRST candidate on equal cost, so index paths precede scans (the
   Section 4.2 preference at low selectivity), the paper's algorithms keep
   {!Estimate.all_algos} order, and packed precedes handle evaluation
   (charge-identical by construction; packed is the cheaper wallclock). *)

module Database = Tb_store.Database
module Sc = Tb_statcore.Stat_catalog

type candidate = {
  c_plan : Plan.t;
  c_packed : bool;
  c_desc : string;  (* human-readable shape, e.g. "PHJ parent=index child=seq packed" *)
}

let indexable db ~cls preds =
  List.filter_map
    (fun p ->
      match
        (Plan.key_range p, Database.find_index db ~cls ~attr:p.Plan.attr)
      with
      | Some (lo, hi), Some ix -> Some (p, ix, lo, hi)
      | _ -> None)
    preds

(* The most selective indexable conjunct (by catalog statistics), mirroring
   the forced path's [choose_access]. *)
let best_index stats db ~cls preds =
  match indexable db ~cls preds with
  | [] -> None
  | first :: rest ->
      let sel (p, _, _, _) = Estimate.stat_pred_sel stats ~cls p in
      let best =
        List.fold_left
          (fun acc c -> if sel c < sel acc then c else acc)
          first rest
      in
      let chosen, index, lo, hi = best in
      let residual = List.filter (fun p -> p != chosen) preds in
      Some (fun ~sorted -> Plan.Index_scan { index; lo; hi; sorted; residual })

(* Selections get the full Section 4.2 menu: fetch in index order, sort the
   Rids first, or sweep the extent. *)
let selection_accesses stats db ~cls preds =
  let seq = (Plan.Seq_scan { cls; preds }, "seq") in
  match best_index stats db ~cls preds with
  | None -> [ seq ]
  | Some mk ->
      [ (mk ~sorted:false, "index"); (mk ~sorted:true, "index+sort"); seq ]

(* Join sides fetch through a sorted index when one applies, or scan. *)
let side_accesses stats db ~cls preds =
  let seq = (Plan.Seq_scan { cls; preds }, "seq") in
  match best_index stats db ~cls preds with
  | None -> [ seq ]
  | Some mk -> [ (mk ~sorted:true, "index"); seq ]

let packed_modes = [ (true, "packed"); (false, "handle") ]

(* Estimated resident bytes of one side's hash table, for sizing hybrid
   spill partitions. *)
let side_bytes stats ~cls ~var ~preds select =
  let sel =
    List.fold_left
      (fun acc p -> acc *. Estimate.stat_pred_sel stats ~cls p)
      1.0 preds
  in
  let attrs, _self = Plan.needed_attrs var select in
  let payload =
    List.fold_left
      (fun acc a -> acc + Sc.attr_bytes stats ~cls a)
      Tb_storage.Rid.on_disk_bytes attrs
  in
  let card =
    match Sc.extent stats ~cls with Some e -> e.Sc.x_card | None -> 0
  in
  sel *. float_of_int card
  *. float_of_int (payload + Mem_hash.entry_overhead + Mem_hash.group_overhead)

let partitions_for stats bytes =
  let budget = 0.8 *. float_of_int (Sc.available_bytes stats) in
  if budget <= 0.0 then 8 else max 1 (int_of_float (ceil (bytes /. budget)))

let candidates stats db bound =
  match bound with
  | Plan.B_selection { var; cls; preds; select; aggregate } ->
      List.concat_map
        (fun (access, adesc) ->
          List.map
            (fun (packed, pdesc) ->
              {
                c_plan = Plan.Selection { var; cls; access; select; aggregate };
                c_packed = packed;
                c_desc = adesc ^ " " ^ pdesc;
              })
            packed_modes)
        (selection_accesses stats db ~cls preds)
  | Plan.B_hier
      {
        parent_var;
        parent_cls;
        child_var;
        child_cls;
        set_attr;
        inv_attr;
        parent_preds;
        child_preds;
        select;
        aggregate;
      } ->
      List.concat_map
        (fun algo ->
          let needs_inv =
            match algo with
            | Plan.NL -> false
            | Plan.NOJOIN | Plan.PHJ | Plan.CHJ | Plan.PHHJ | Plan.CHHJ
            | Plan.SMJ ->
                true
          in
          if needs_inv && Option.is_none inv_attr then []
          else
            let parent_opts =
              match algo with
              | Plan.NOJOIN ->
                  (* NOJOIN reaches parents by navigation: scan semantics. *)
                  [ (Plan.Seq_scan { cls = parent_cls; preds = parent_preds }, "seq") ]
              | Plan.NL | Plan.PHJ | Plan.CHJ | Plan.PHHJ | Plan.CHHJ
              | Plan.SMJ ->
                  side_accesses stats db ~cls:parent_cls parent_preds
            in
            let child_opts =
              match algo with
              | Plan.NL ->
                  (* NL evaluates child predicates during navigation. *)
                  [ (Plan.Seq_scan { cls = child_cls; preds = child_preds }, "seq") ]
              | Plan.NOJOIN | Plan.PHJ | Plan.CHJ | Plan.PHHJ | Plan.CHHJ
              | Plan.SMJ ->
                  side_accesses stats db ~cls:child_cls child_preds
            in
            let partitions =
              match algo with
              | Plan.PHHJ ->
                  partitions_for stats
                    (side_bytes stats ~cls:parent_cls ~var:parent_var
                       ~preds:parent_preds select)
              | Plan.CHHJ ->
                  partitions_for stats
                    (side_bytes stats ~cls:child_cls ~var:child_var
                       ~preds:child_preds select)
              | Plan.NL | Plan.NOJOIN | Plan.PHJ | Plan.CHJ | Plan.SMJ -> 1
            in
            List.concat_map
              (fun (parent_access, pad) ->
                List.concat_map
                  (fun (child_access, cad) ->
                    List.map
                      (fun (packed, pkd) ->
                        {
                          c_plan =
                            Plan.Hier_join
                              {
                                algo;
                                parent_var;
                                parent_cls;
                                child_var;
                                child_cls;
                                set_attr;
                                inv_attr;
                                parent_access;
                                child_access;
                                partitions;
                                select;
                                aggregate;
                              };
                          c_packed = packed;
                          c_desc =
                            Printf.sprintf "%s parent=%s child=%s %s"
                              (Plan.algo_name algo) pad cad pkd;
                        })
                      packed_modes)
                  child_opts)
              parent_opts)
        Estimate.all_algos
