(** Stage one of the optimizer pipeline: the candidate space.

    Expands a bound query into every (join algorithm × access path per
    side × packed/handle mode) plan the lowering can execute, in an order
    that encodes the tie policy — the cost stage's argmin keeps the first
    candidate on equal cost, so index paths precede scans, the paper's
    algorithms keep {!Estimate.all_algos} order, and packed precedes
    handle evaluation.  Pure catalog arithmetic: no page access, no
    charges. *)

type candidate = {
  c_plan : Plan.t;
  c_packed : bool;  (** lower with packed-bytes evaluation *)
  c_desc : string;
      (** human-readable shape, e.g. ["PHJ parent=index child=seq packed"] *)
}

(** The full candidate list for a bound query.  Inverse-requiring
    algorithms are dropped when the schema declares no back-reference;
    NL's child side and NOJOIN's parent side stay scans (their predicates
    are evaluated during navigation). *)
val candidates :
  Tb_statcore.Stat_catalog.t ->
  Tb_store.Database.t ->
  Plan.bound ->
  candidate list
