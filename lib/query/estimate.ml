type organization =
  | Separate_files
  | Shared_random
  | Shared_composition
  | Assoc_clustered

type side = {
  card : int;
  pages : int;
  sel : float;
  has_index : bool;
  index_clustered : bool;
  payload_bytes : int;
}

type env = {
  cost : Tb_sim.Cost_model.t;
  organization : organization;
  client_cache_pages : int;
  parent : side;
  child : side;
  fanout : float;
  result_bytes_per_row : int;
}

let fi = float_of_int

(* Effective cost of moving one cold page up to the client: disk read plus
   the RPC that ships it. *)
let cold_page_ms cost =
  cost.Tb_sim.Cost_model.page_read_ms
  +. cost.Tb_sim.Cost_model.rpc_fixed_ms
  +. cost.Tb_sim.Cost_model.rpc_page_ms

let handle_pair_ms cost =
  (cost.Tb_sim.Cost_model.handle_alloc_fat_us
  +. cost.Tb_sim.Cost_model.handle_free_fat_us)
  /. 1000.0

(* Yao/Cardenas-style approximation, clamped at its boundaries: an empty
   file (or a non-positive reference count) touches nothing, and once [n]
   reaches the file's total row count every page must be touched — the
   exponential form alone never quite reaches [pages], understating full
   sweeps.  [rows_per_page] defaults to infinity (no saturation) for
   callers without row-density statistics. *)
let distinct_pages ?(rows_per_page = infinity) ~n ~pages () =
  if pages <= 0.0 || n <= 0.0 then 0.0
  else if n >= pages *. rows_per_page then pages
  else pages *. (1.0 -. exp (-.n /. pages))

let random_fetch_ms ?rows_per_page ~cost ~n ~pages ~cache () =
  if n <= 0.0 then 0.0
  else begin
    let d = distinct_pages ?rows_per_page ~n ~pages () in
    (* First touches read [d] pages; re-touches miss in proportion to how
       much of the file the cache cannot hold. *)
    let retouches = Float.max 0.0 (n -. d) in
    let miss = Float.max 0.0 ((pages -. cache) /. pages) in
    ((d +. (retouches *. miss)) *. cold_page_ms cost)
    +. (retouches *. (1.0 -. miss) *. cost.Tb_sim.Cost_model.client_hit_ms)
  end

let seq_ms cost pages = fi pages *. cold_page_ms cost

let sort_ms cost n =
  if n <= 1.0 then 0.0
  else n *. (log n /. log 2.0) *. cost.Tb_sim.Cost_model.sort_cmp_us /. 1000.0

let append_ms cost n =
  n *. cost.Tb_sim.Cost_model.result_append_standard_us /. 1000.0

(* Leaf pages an index scan of [n] entries touches (~200 entries/leaf). *)
let leaf_pages n = ceil (n /. 200.0)

(* Thrash penalty for [ops] random operations against working structures of
   [bytes] resident bytes — mirrors Sim's fault accounting. *)
let swap_ms cost ~bytes ~ops =
  let avail = fi (Tb_sim.Cost_model.available_bytes cost) in
  if avail <= 0.0 then 0.0
  else
    let excess = Float.max 0.0 ((bytes -. avail) /. avail) in
    let p = Float.min 1.0 (excess *. cost.Tb_sim.Cost_model.thrash_factor) in
    ops *. p *. cost.Tb_sim.Cost_model.swap_fault_ms

(* --- selections (single side: we use [parent]) --- *)

let selection_seq_ms env =
  let c = env.cost and s = env.parent in
  let n = fi s.card in
  seq_ms c s.pages +. (n *. handle_pair_ms c) +. append_ms c (s.sel *. n)

let selection_index_ms env ~sorted =
  let c = env.cost and s = env.parent in
  let k = s.sel *. fi s.card in
  let leaf = leaf_pages k *. cold_page_ms c in
  let fetch =
    if s.index_clustered then
      (* Contiguous keys sit on contiguous pages. *)
      s.sel *. fi s.pages *. cold_page_ms c
    else if sorted then distinct_pages ~n:k ~pages:(fi s.pages) () *. cold_page_ms c
    else
      random_fetch_ms ~cost:c ~n:k ~pages:(fi s.pages)
        ~cache:(fi env.client_cache_pages) ()
  in
  let sort = if sorted then sort_ms c k else 0.0 in
  leaf +. fetch +. sort +. (k *. handle_pair_ms c) +. append_ms c k

(* --- joins --- *)

(* Pages to read one side's selected objects through its (sorted) index, or
   by scanning.  Under a shared file, touching a fraction of an extent
   means touching that fraction of the whole file. *)
let side_read_ms env s =
  let c = env.cost in
  let k = s.sel *. fi s.card in
  if s.has_index then
    let data =
      if s.index_clustered then s.sel *. fi s.pages
      else distinct_pages ~n:k ~pages:(fi s.pages) ()
    in
    (leaf_pages k +. data) *. cold_page_ms c
  else seq_ms c s.pages

let result_rows env =
  env.parent.sel *. env.child.sel *. fi env.child.card

(* Resident result memory: the collection spills sequentially past physical
   memory, so at most ~RAM of it stays resident. *)
let result_mem env =
  Float.min
    (result_rows env *. fi env.result_bytes_per_row)
    (0.9 *. fi (Tb_sim.Cost_model.available_bytes env.cost))

let join_ms env algo =
  let c = env.cost in
  let p = env.parent and ch = env.child in
  let np_sel = p.sel *. fi p.card in
  let nc_sel = ch.sel *. fi ch.card in
  let rows = result_rows env in
  let build_result = append_ms c rows in
  match algo with
  | Plan.NL ->
      (* Parents through their index; every child of a selected parent is
         fetched and tested. *)
      let children_touched = np_sel *. env.fanout in
      let parent_read = side_read_ms env p in
      let child_read =
        match env.organization with
        | Shared_composition ->
            (* The children sit on the pages the parent sweep already
               read. *)
            0.0
        | Assoc_clustered ->
            (* Children live in their own file but in parent order: the
               fetches are one sequential sweep over the touched slice. *)
            let per_page = Float.max 1.0 (fi ch.card /. Float.max 1.0 (fi ch.pages)) in
            children_touched /. per_page *. cold_page_ms c
        | Separate_files | Shared_random ->
            random_fetch_ms ~cost:c ~n:children_touched ~pages:(fi ch.pages)
              ~cache:(fi env.client_cache_pages) ()
      in
      parent_read +. child_read
      +. ((np_sel +. children_touched) *. handle_pair_ms c)
      +. build_result
      +. swap_ms c ~bytes:(result_mem env) ~ops:0.0
  | Plan.NOJOIN ->
      (* Children through their index; one parent navigation per selected
         child. *)
      let child_read = side_read_ms env ch in
      let parent_read =
        match env.organization with
        | Shared_composition -> 0.0 (* the parent is on a nearby page *)
        | Assoc_clustered ->
            (* Children arrive in parent order, so parent fetches sweep the
               parent file at most once. *)
            distinct_pages ~n:nc_sel ~pages:(fi p.pages) () *. cold_page_ms c
        | Separate_files | Shared_random ->
            random_fetch_ms ~cost:c ~n:nc_sel ~pages:(fi p.pages)
              ~cache:(fi env.client_cache_pages) ()
      in
      (* Distinct parents get a Handle; repeats are resident hits. *)
      let parent_handles = Float.min nc_sel (fi p.card) in
      child_read +. parent_read
      +. ((nc_sel +. parent_handles) *. handle_pair_ms c)
      +. build_result
      +. swap_ms c ~bytes:(result_mem env) ~ops:0.0
  | Plan.PHJ ->
      let table_bytes =
        np_sel *. fi (p.payload_bytes + Mem_hash.entry_overhead + Mem_hash.group_overhead)
      in
      let mem = table_bytes +. result_mem env in
      side_read_ms env p +. side_read_ms env ch
      +. ((np_sel +. nc_sel) *. handle_pair_ms c)
      +. (np_sel *. c.Tb_sim.Cost_model.hash_insert_us /. 1000.0)
      +. (nc_sel *. c.Tb_sim.Cost_model.hash_probe_us /. 1000.0)
      +. build_result
      +. swap_ms c ~bytes:mem ~ops:(np_sel +. nc_sel)
  | Plan.CHJ ->
      let groups = Float.min np_sel (fi p.card) in
      let table_bytes =
        (nc_sel *. fi (ch.payload_bytes + Mem_hash.entry_overhead))
        +. (groups *. fi Mem_hash.group_overhead)
      in
      let mem = table_bytes +. result_mem env in
      side_read_ms env p +. side_read_ms env ch
      +. ((np_sel +. nc_sel) *. handle_pair_ms c)
      +. (nc_sel *. c.Tb_sim.Cost_model.hash_insert_us /. 1000.0)
      +. (np_sel *. c.Tb_sim.Cost_model.hash_probe_us /. 1000.0)
      +. build_result
      +. swap_ms c ~bytes:mem ~ops:(np_sel +. nc_sel)
  | Plan.PHHJ | Plan.CHHJ ->
      (* Hybrid hashing: instead of swapping, the overflow fraction of both
         sides is written out and read back once. *)
      let build_n, probe_n, build_payload, probe_payload =
        if algo = Plan.PHHJ then (np_sel, nc_sel, p.payload_bytes, ch.payload_bytes)
        else (nc_sel, np_sel, ch.payload_bytes, p.payload_bytes)
      in
      let table_bytes =
        build_n *. fi (build_payload + Mem_hash.entry_overhead + Mem_hash.group_overhead)
      in
      let budget = 0.8 *. fi (Tb_sim.Cost_model.available_bytes c) in
      let sf =
        if budget <= 0.0 then 1.0
        else Float.max 0.0 (1.0 -. (budget /. table_bytes))
      in
      let spill_bytes =
        sf *. ((build_n *. fi (build_payload + 20)) +. (probe_n *. fi (probe_payload + 20)))
      in
      let spill_io =
        2.0 *. spill_bytes /. fi c.Tb_sim.Cost_model.page_size *. cold_page_ms c
      in
      side_read_ms env p +. side_read_ms env ch
      +. ((np_sel +. nc_sel) *. handle_pair_ms c)
      +. (build_n *. c.Tb_sim.Cost_model.hash_insert_us *. (1.0 +. sf) /. 1000.0)
      +. (probe_n *. c.Tb_sim.Cost_model.hash_probe_us *. (1.0 +. sf) /. 1000.0)
      +. spill_io +. build_result
  | Plan.SMJ ->
      let run_ms n bytes =
        let sorted = sort_ms c n in
        let avail = fi (Tb_sim.Cost_model.available_bytes c) in
        let external_io =
          if bytes > avail && avail > 0.0 then
            let passes = ceil (log (bytes /. avail) /. log 8.0) in
            2.0 *. passes *. bytes /. fi c.Tb_sim.Cost_model.page_size
            *. cold_page_ms c
          else 0.0
        in
        sorted +. external_io
      in
      let p_bytes = np_sel *. fi (p.payload_bytes + 16) in
      let c_bytes = nc_sel *. fi (ch.payload_bytes + 16) in
      side_read_ms env p +. side_read_ms env ch
      +. ((np_sel +. nc_sel) *. handle_pair_ms c)
      +. run_ms np_sel p_bytes +. run_ms nc_sel c_bytes
      +. ((np_sel +. nc_sel) *. c.Tb_sim.Cost_model.compare_us /. 1000.0)
      +. build_result

let all_algos =
  [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]

let rank_joins env =
  List.sort
    (fun (_, a) (_, b) -> Float.compare a b)
    (List.map (fun a -> (a, join_ms env a)) all_algos)

(* ===== per-operator estimation: the optimizer's cost stage =====

   The closed forms above predict a whole query at once; the optimizer
   pipeline needs the same components attached to the operators that will
   actually accrue them, so the validate stage can reconcile prediction
   against the accounted frames node by node.  [annotate] walks a lowered
   tree bottom-up, threading an estimated row stream, and writes one
   {!Op.est} per node; every ms figure passes through the catalog's
   per-key correction before landing, which is what makes repeated queries
   converge after feedback.  Pure arithmetic over {!Tb_statcore}
   statistics: no database access, no charges (treelint R1 keeps costing
   code out of the charging set). *)

module Sc = Tb_statcore.Stat_catalog
module Index_def = Tb_store.Index_def

(* Feedback key: opcode plus the class the operator works over — stable
   across re-lowerings of the same logical plan, and distinct between the
   two sides of a join (parent and child classes differ). *)
let rec est_cls (n : Op.t) =
  match n.Op.kind with
  | Op.Seq_scan { cls } -> cls
  | Op.Index_scan { index; _ } -> index.Index_def.cls
  | Op.Fetch { cls; _ } -> cls
  | Op.Harvest { cls; _ } -> cls
  | Op.Nav_set { nav_cls; _ } -> nav_cls
  | Op.Nav_inverse { nav_cls; _ } -> nav_cls
  | Op.Hash_probe { probe_cls; _ } -> probe_cls
  | Op.Sort_rids { child }
  | Op.Hash_build { child }
  | Op.Spill_partition { child; _ }
  | Op.Sort { child }
  | Op.Project { child; _ }
  | Op.Materialize { child; _ }
  | Op.Shard_lane { child; _ }
  | Op.Exchange { child; _ } ->
      est_cls child
  | Op.Merge { left; _ } -> est_cls left
  | Op.Gather { lanes; _ } ->
      if Array.length lanes = 0 then "" else est_cls lanes.(0)

let est_key n = Op.opcode n ^ "/" ^ est_cls n

(* What flows between operators during estimation: a row count plus the
   physical context downstream fetch costing needs. *)
type stream = {
  s_rows : float;
  s_cls : string;
  s_sorted : bool;  (** rid stream in page order (Sort_rids below) *)
  s_seq : bool;  (** rows arrive off a sequential sweep: pages resident *)
  s_clustered : bool;  (** rows located through a clustered index *)
  s_bytes : float;  (** per-row payload bytes once harvested *)
  s_spill : float;  (** spill fraction applied below (hybrid hashing) *)
}

let null_extent cls =
  {
    Sc.x_cls = cls;
    x_card = 0;
    x_pages = 0;
    x_rows_per_page = 0.0;
    x_file = -1;
  }

let cat_extent stats cls =
  match Sc.extent stats ~cls with Some e -> e | None -> null_extent cls

(* Predicate selectivity from catalog statistics: the indexed window when
   an index covers the attribute, System-R magic numbers otherwise. *)
let stat_pred_sel stats ~cls (p : Plan.attr_pred) =
  match (Plan.key_range p, Sc.index_on stats ~cls ~attr:p.Plan.attr) with
  | Some (lo, hi), Some ix ->
      let below = function
        | Some k -> Sc.selectivity_below ix k
        | None -> 1.0
      in
      let above =
        match lo with Some k -> Sc.selectivity_below ix k | None -> 0.0
      in
      (* Floor at one matching row — a point lookup should not be costed
         as if it returned a fixed fraction of the extent. *)
      let card = Float.max 1.0 (fi (cat_extent stats cls).Sc.x_card) in
      Float.max (1.0 /. card) (below hi -. above)
  | _ -> (
      match p.Plan.cmp with
      | Oql_ast.Eq -> 0.01
      | Oql_ast.Ne -> 0.99
      | Oql_ast.Lt | Oql_ast.Le | Oql_ast.Gt | Oql_ast.Ge -> 1.0 /. 3.0)

let stat_preds_sel stats ~cls preds =
  List.fold_left (fun acc p -> acc *. stat_pred_sel stats ~cls p) 1.0 preds

let stat_payload_bytes stats ~cls attrs =
  List.fold_left
    (fun acc a -> acc + Sc.attr_bytes stats ~cls a)
    Tb_storage.Rid.on_disk_bytes attrs

let annotate ~stats ?(organization = Separate_files) root =
  let c = Sc.cost stats in
  let cache = fi (Sc.client_cache_pages stats) in
  let avail = fi (Sc.available_bytes stats) in
  let page_sz = fi c.Tb_sim.Cost_model.page_size in
  let get_att_ms n = n *. c.Tb_sim.Cost_model.get_att_us /. 1000.0 in
  let set stats n ~rows ~pages ~handles raw_ms =
    let ms = Sc.corrected_ms stats ~key:(est_key n) raw_ms in
    Op.Est.set n
      { Op.est_rows = rows; est_pages = pages; est_handles = handles; est_ms = ms }
  in
  let rec go (stats : Sc.t) (n : Op.t) : stream =
    let null_stream cls =
      {
        s_rows = 0.0;
        s_cls = cls;
        s_sorted = false;
        s_seq = false;
        s_clustered = false;
        s_bytes = 0.0;
        s_spill = 0.0;
      }
    in
    match n.Op.kind with
    | Op.Seq_scan { cls } ->
        let e = cat_extent stats cls in
        let rows = fi e.Sc.x_card in
        set stats n ~rows ~pages:(fi e.Sc.x_pages) ~handles:0.0
          (seq_ms c e.Sc.x_pages);
        { (null_stream cls) with s_rows = rows; s_seq = true }
    | Op.Index_scan { index; lo; hi } ->
        let cls = index.Index_def.cls in
        let e = cat_extent stats cls in
        let sel =
          match Sc.index_on stats ~cls ~attr:index.Index_def.attr with
          | Some ix ->
              let below = function
                | Some k -> Sc.selectivity_below ix k
                | None -> 1.0
              in
              let above =
                match lo with Some k -> Sc.selectivity_below ix k | None -> 0.0
              in
              Float.max
                (1.0 /. Float.max 1.0 (fi e.Sc.x_card))
                (below hi -. above)
          | None -> 1.0 /. 3.0
        in
        let k = sel *. fi e.Sc.x_card in
        (* Leaf pages plus the root-to-leaf descent that positions the
           cursor. *)
        let leaves = leaf_pages k +. 1.0 in
        set stats n ~rows:k ~pages:leaves ~handles:0.0
          (leaves *. cold_page_ms c);
        let clustered =
          match Sc.index_on stats ~cls ~attr:index.Index_def.attr with
          | Some ix -> Sc.is_clustered ix
          | None -> false
        in
        { (null_stream cls) with s_rows = k; s_clustered = clustered }
    | Op.Sort_rids { child } ->
        let s = go stats child in
        set stats n ~rows:s.s_rows ~pages:0.0 ~handles:0.0 (sort_ms c s.s_rows);
        { s with s_sorted = true }
    | Op.Fetch { child; cls; preds; covering; _ } ->
        let s = go stats child in
        if covering then begin
          set stats n ~rows:s.s_rows ~pages:0.0 ~handles:0.0 0.0;
          { s with s_cls = cls }
        end
        else begin
          let e = cat_extent stats cls in
          let n_in = s.s_rows in
          let rows = n_in *. stat_preds_sel stats ~cls preds in
          let pages = fi e.Sc.x_pages in
          let io_pages, io_ms =
            if s.s_seq then
              (* Records sit on the pages the scan cursor just shipped. *)
              (0.0, n_in *. c.Tb_sim.Cost_model.client_hit_ms)
            else if s.s_clustered then
              let d = Float.min pages (n_in /. Float.max 1.0 (fi e.Sc.x_card) *. pages) in
              (d, d *. cold_page_ms c)
            else if s.s_sorted then
              let d =
                distinct_pages ~rows_per_page:e.Sc.x_rows_per_page ~n:n_in
                  ~pages ()
              in
              (d, d *. cold_page_ms c)
            else
              let d =
                distinct_pages ~rows_per_page:e.Sc.x_rows_per_page ~n:n_in
                  ~pages ()
              in
              ( d,
                random_fetch_ms ~rows_per_page:e.Sc.x_rows_per_page ~cost:c
                  ~n:n_in ~pages ~cache () )
          in
          let ms =
            io_ms
            +. (n_in *. handle_pair_ms c)
            +. get_att_ms (n_in *. fi (List.length preds))
          in
          set stats n ~rows ~pages:io_pages ~handles:n_in ms;
          {
            (null_stream cls) with
            s_rows = rows;
            s_sorted = s.s_sorted;
            s_clustered = s.s_clustered;
          }
        end
    | Op.Nav_set { child; nav_cls; preds; _ } ->
        let s = go stats child in
        let pe = cat_extent stats s.s_cls in
        let ce = cat_extent stats nav_cls in
        let fanout =
          if pe.Sc.x_card = 0 then 0.0
          else fi ce.Sc.x_card /. fi pe.Sc.x_card
        in
        let touched = s.s_rows *. fanout in
        let rows = touched *. stat_preds_sel stats ~cls:nav_cls preds in
        let cpages = fi ce.Sc.x_pages in
        let io_pages, io_ms =
          match organization with
          | Shared_composition -> (0.0, touched *. c.Tb_sim.Cost_model.client_hit_ms)
          | Assoc_clustered ->
              let per_page =
                Float.max 1.0 (fi ce.Sc.x_card /. Float.max 1.0 cpages)
              in
              let d = touched /. per_page in
              (d, d *. cold_page_ms c)
          | Separate_files | Shared_random ->
              ( distinct_pages ~rows_per_page:ce.Sc.x_rows_per_page ~n:touched
                  ~pages:cpages (),
                random_fetch_ms ~rows_per_page:ce.Sc.x_rows_per_page ~cost:c
                  ~n:touched ~pages:cpages ~cache () )
        in
        let ms =
          io_ms
          +. (touched *. handle_pair_ms c)
          +. get_att_ms (s.s_rows +. (touched *. fi (List.length preds)))
        in
        set stats n ~rows ~pages:io_pages ~handles:touched ms;
        { (null_stream nav_cls) with s_rows = rows }
    | Op.Nav_inverse { child; nav_cls; preds; _ } ->
        let s = go stats child in
        let pe = cat_extent stats nav_cls in
        let nc = s.s_rows in
        let ppages = fi pe.Sc.x_pages in
        let parent_handles = Float.min nc (fi pe.Sc.x_card) in
        let io_pages, io_ms =
          match organization with
          | Shared_composition -> (0.0, nc *. c.Tb_sim.Cost_model.client_hit_ms)
          | Assoc_clustered ->
              let d =
                distinct_pages ~rows_per_page:pe.Sc.x_rows_per_page ~n:nc
                  ~pages:ppages ()
              in
              (d, d *. cold_page_ms c)
          | Separate_files | Shared_random ->
              ( distinct_pages ~rows_per_page:pe.Sc.x_rows_per_page ~n:nc
                  ~pages:ppages (),
                random_fetch_ms ~rows_per_page:pe.Sc.x_rows_per_page ~cost:c
                  ~n:nc ~pages:ppages ~cache () )
        in
        let rows = nc *. stat_preds_sel stats ~cls:nav_cls preds in
        let ms =
          io_ms
          +. (parent_handles *. handle_pair_ms c)
          +. get_att_ms (nc +. (nc *. fi (List.length preds)))
        in
        set stats n ~rows ~pages:io_pages ~handles:parent_handles ms;
        { (null_stream nav_cls) with s_rows = rows }
    | Op.Harvest { child; cls; attrs; _ } ->
        let s = go stats child in
        let bytes = fi (stat_payload_bytes stats ~cls attrs) in
        set stats n ~rows:s.s_rows ~pages:0.0 ~handles:0.0
          (get_att_ms (s.s_rows *. fi (1 + List.length attrs)));
        { s with s_cls = cls; s_bytes = bytes }
    | Op.Hash_build { child } ->
        let s = go stats child in
        let rows = s.s_rows in
        let table_bytes =
          rows
          *. (s.s_bytes +. fi (Mem_hash.entry_overhead + Mem_hash.group_overhead))
        in
        let ms =
          (rows *. c.Tb_sim.Cost_model.hash_insert_us *. (1.0 +. s.s_spill)
          /. 1000.0)
          +.
          if s.s_spill > 0.0 then 0.0
          else swap_ms c ~bytes:table_bytes ~ops:rows
        in
        set stats n ~rows ~pages:0.0 ~handles:0.0 ms;
        s
    | Op.Spill_partition { child; _ } ->
        let s = go stats child in
        let rows = s.s_rows in
        let table_bytes =
          rows
          *. (s.s_bytes +. fi (Mem_hash.entry_overhead + Mem_hash.group_overhead))
        in
        let budget = 0.8 *. avail in
        let sf =
          if budget <= 0.0 then 1.0
          else if table_bytes <= 0.0 then 0.0
          else Float.max 0.0 (1.0 -. (budget /. table_bytes))
        in
        let spill_bytes = sf *. rows *. (s.s_bytes +. 20.0) in
        let io_pages = 2.0 *. spill_bytes /. page_sz in
        set stats n ~rows ~pages:io_pages ~handles:0.0
          (io_pages *. cold_page_ms c);
        { s with s_spill = sf }
    | Op.Hash_probe { build; probe; probe_key; probe_cls; _ } ->
        let b = go stats build in
        let p = go stats probe in
        let rows =
          match probe_key with
          | Op.K_self ->
              (* Probing parents against a child-keyed table: each stored
                 child joins iff its parent probes. *)
              let pe = cat_extent stats probe_cls in
              b.s_rows *. (p.s_rows /. Float.max 1.0 (fi pe.Sc.x_card))
          | Op.K_inverse _ ->
              (* Probing children against a parent-keyed table. *)
              let pe = cat_extent stats b.s_cls in
              p.s_rows *. (b.s_rows /. Float.max 1.0 (fi pe.Sc.x_card))
        in
        let result_bytes_row = b.s_bytes +. p.s_bytes +. 16.0 in
        let result_mem = Float.min (rows *. result_bytes_row) (0.9 *. avail) in
        let table_bytes =
          b.s_rows
          *. (b.s_bytes +. fi (Mem_hash.entry_overhead + Mem_hash.group_overhead))
        in
        let ms =
          (p.s_rows *. c.Tb_sim.Cost_model.hash_probe_us *. (1.0 +. p.s_spill)
          /. 1000.0)
          +.
          if b.s_spill > 0.0 || p.s_spill > 0.0 then 0.0
          else swap_ms c ~bytes:(table_bytes +. result_mem) ~ops:p.s_rows
        in
        set stats n ~rows ~pages:0.0 ~handles:0.0 ms;
        {
          (null_stream probe_cls) with
          s_rows = rows;
          s_bytes = result_bytes_row;
        }
    | Op.Sort { child } ->
        let s = go stats child in
        let rows = s.s_rows in
        let bytes = rows *. (s.s_bytes +. 16.0) in
        let external_io =
          if bytes > avail && avail > 0.0 then
            let passes = ceil (log (bytes /. avail) /. log 8.0) in
            2.0 *. passes *. bytes /. page_sz *. cold_page_ms c
          else 0.0
        in
        set stats n ~rows ~pages:0.0 ~handles:0.0 (sort_ms c rows +. external_io);
        { s with s_sorted = true }
    | Op.Merge { left; right; _ } ->
        let l = go stats left in
        let r = go stats right in
        let pe = cat_extent stats l.s_cls in
        let rows = r.s_rows *. (l.s_rows /. Float.max 1.0 (fi pe.Sc.x_card)) in
        set stats n ~rows ~pages:0.0 ~handles:0.0
          ((l.s_rows +. r.s_rows) *. c.Tb_sim.Cost_model.compare_us /. 1000.0);
        {
          (null_stream l.s_cls) with
          s_rows = rows;
          s_bytes = l.s_bytes +. r.s_bytes +. 16.0;
        }
    | Op.Project { child; _ } ->
        let s = go stats child in
        set stats n ~rows:s.s_rows ~pages:0.0 ~handles:0.0
          (get_att_ms s.s_rows);
        s
    | Op.Materialize { child; aggregate } ->
        let s = go stats child in
        let rows_out =
          match aggregate with Some _ -> 1.0 | None -> s.s_rows
        in
        let ms = match aggregate with Some _ -> 0.0 | None -> append_ms c s.s_rows in
        set stats n ~rows:rows_out ~pages:0.0 ~handles:0.0 ms;
        { s with s_rows = rows_out; s_bytes = Float.max s.s_bytes 24.0 }
    | Op.Shard_lane { child; shards; _ } ->
        let s = go (Sc.scale stats ~shards) child in
        set stats n ~rows:s.s_rows ~pages:0.0 ~handles:0.0 0.0;
        s
    | Op.Exchange { child; shards; _ } ->
        let s = go stats child in
        let ship_rows = s.s_rows *. fi (shards - 1) /. fi (max 1 shards) in
        let ship_pages = ship_rows *. (s.s_bytes +. 16.0) /. page_sz in
        let ms =
          (ship_pages
          *. (c.Tb_sim.Cost_model.rpc_fixed_ms +. c.Tb_sim.Cost_model.rpc_page_ms))
          +. (fi (shards - 1) *. c.Tb_sim.Cost_model.rpc_fixed_ms)
        in
        set stats n ~rows:s.s_rows ~pages:0.0 ~handles:0.0 ms;
        s
    | Op.Gather { lanes; shards; ordered; _ } ->
        let ls = Array.map (go stats) lanes in
        let rows = Array.fold_left (fun acc s -> acc +. s.s_rows) 0.0 ls in
        let row_bytes =
          Array.fold_left (fun acc s -> Float.max acc s.s_bytes) 24.0 ls
        in
        let ship_pages = rows *. row_bytes /. page_sz in
        let ms =
          (fi shards *. c.Tb_sim.Cost_model.rpc_fixed_ms)
          +. (ship_pages *. c.Tb_sim.Cost_model.rpc_page_ms)
          +.
          if ordered then rows *. c.Tb_sim.Cost_model.compare_us /. 1000.0
          else 0.0
        in
        set stats n ~rows ~pages:0.0 ~handles:0.0 ms;
        {
          s_rows = rows;
          s_cls = (if Array.length ls = 0 then "" else ls.(0).s_cls);
          s_sorted = ordered;
          s_seq = false;
          s_clustered = false;
          s_bytes = row_bytes;
          s_spill = 0.0;
        }
  in
  ignore (go stats root)

(* Plan-level estimated elapsed: a plain sum for unsharded trees; for a
   Gather root, fork/join semantics — the slowest lane plus the gather's
   own shipping and merge (mirrors the simulated clock's lane model). *)
let plan_cost_ms (root : Op.t) =
  match root.Op.kind with
  | Op.Gather { lanes; _ } ->
      let own =
        match Op.Est.get root with Some e -> e.Op.est_ms | None -> 0.0
      in
      Array.fold_left
        (fun acc lane -> Float.max acc (Op.Est.sum_ms lane))
        0.0 lanes
      +. own
  | _ -> Op.Est.sum_ms root
