(** Cost formulas for the optimizer.

    The project the paper set out on — "what statistics the system should
    maintain and how to incorporate them into a cost model" — distilled into
    closed-form estimates of the event counts the simulator charges: page
    reads (sequential vs random through an LRU cache), Handle pairs, hash
    traffic, Rid sorts, result construction and swap thrash.  The cost-based
    planner ranks access paths and the four join algorithms with these. *)

type organization =
  | Separate_files  (** one file per class (Figure 2 left) *)
  | Shared_random  (** everything in one file, randomly (Figure 2 middle) *)
  | Shared_composition
      (** children clustered behind their parent (Figure 2 right) *)
  | Assoc_clustered
      (** Section 5.3's alternative: separate files, children stored in
          parent-association order *)

(** One side of a query: an extent with a selectivity already folded in. *)
type side = {
  card : int;  (** extent cardinality *)
  pages : int;  (** pages of the file holding the extent *)
  sel : float;  (** fraction surviving this side's predicates *)
  has_index : bool;  (** a usable index covers the predicate window *)
  index_clustered : bool;
  payload_bytes : int;  (** bytes of this side stowed per hash entry *)
}

type env = {
  cost : Tb_sim.Cost_model.t;
  organization : organization;
  client_cache_pages : int;
  parent : side;
  child : side;
  fanout : float;  (** average children per parent *)
  result_bytes_per_row : int;
}

(** Expected distinct pages touched when [n] uniform references hit a
    [pages]-page file.  Clamped at both boundaries: zero when the file is
    empty (or [n] non-positive), and saturating at [pages] once [n] covers
    every stored row ([rows_per_page], default infinity, sets that limit). *)
val distinct_pages : ?rows_per_page:float -> n:float -> pages:float -> unit -> float

(** Cost (ms) of [n] random record fetches against a [pages]-page file
    behind an LRU cache of [cache] pages, cold start. *)
val random_fetch_ms :
  ?rows_per_page:float ->
  cost:Tb_sim.Cost_model.t ->
  n:float ->
  pages:float ->
  cache:float ->
  unit ->
  float

(** {2 Selections} *)

val selection_seq_ms : env -> float
val selection_index_ms : env -> sorted:bool -> float

(** {2 Joins} — cost (ms) of each Section 5.1 algorithm. *)

val join_ms : env -> Plan.join_algo -> float

(** Every join algorithm, in a fixed order. *)
val all_algos : Plan.join_algo list

(** All algorithms ranked, best first (ties keep [all_algos] order, so the
    paper's four originals win ties against the extensions). *)
val rank_joins : env -> (Plan.join_algo * float) list

(** {2 Per-operator estimation — the optimizer's cost stage}

    Where the closed forms above predict a whole query at once, [annotate]
    attaches the same components to the operators that will actually accrue
    them, writing one {!Op.est} per node of a lowered tree.  Pure
    arithmetic over {!Tb_statcore.Stat_catalog} statistics — no database
    access, no charges — and every ms figure passes through the catalog's
    per-key correction, which is how validate-stage feedback reaches the
    next optimization round. *)

(** The feedback/correction key for an operator: its opcode plus the class
    it works over, so the two sides of a join correct independently. *)
val est_key : Op.t -> string

(** Predicate selectivity from catalog statistics: the indexed histogram
    window when an index covers the attribute, System-R magic numbers
    otherwise. *)
val stat_pred_sel : Tb_statcore.Stat_catalog.t -> cls:string -> Plan.attr_pred -> float

(** Write an estimate on every node of a lowered tree (bottom-up). *)
val annotate :
  stats:Tb_statcore.Stat_catalog.t -> ?organization:organization -> Op.t -> unit

(** Plan-level estimated elapsed ms over an annotated tree: a plain sum,
    except a Gather root takes the slowest lane plus its own shipping
    (fork/join, mirroring the simulated clock's lane model). *)
val plan_cost_ms : Op.t -> float
