(* Exchange/Gather charge kernels: the shipping side of sharded execution.

   This module is the only place the repartition and gather traffic is
   charged (treelint R1 lists it next to Operators); the interpreter in
   {!Exec} drives the loops but never touches the cost model itself.

   An ['a t] is one S-way routed buffer: rows sent to a destination lane
   accumulate there, claim simulated memory, and pay one client/server
   round trip per filled page — rows move between shards by RPC, exactly
   like the page traffic of Figure 5, batched a page at a time.  A source
   that finishes its stream ships its partial pages ([flush_source]), so
   an S-shard exchange pays at most S partial-page RPCs per source. *)

module Sim = Tb_sim.Sim
module Rid = Tb_storage.Rid

type 'a t = {
  sim : Sim.t;
  page : int;
  dest : 'a list array;  (* per destination lane, newest first *)
  pending : int array;  (* buffered-but-unbilled bytes per destination *)
  claimed : int array;  (* simulated bytes held per destination *)
}

let create sim ~shards =
  if shards <= 0 then invalid_arg "Exchange.create: shards must be positive";
  {
    sim;
    page = sim.Sim.cost.Tb_sim.Cost_model.page_size;
    dest = Array.make shards [];
    pending = Array.make shards 0;
    claimed = Array.make shards 0;
  }

let shards t = Array.length t.dest

(* Tag a key Rid with its source shard: per-shard disks reuse file ids, so
   two different objects on two shards can carry the same raw Rid.  The
   join sides are colocated (a patient's inverse reference names a
   provider on its own shard), so matching pairs always carry the same
   tag and still meet on the same destination lane. *)
let retag ~shard rid =
  Rid.make
    ~file:((shard * 0x10000) + rid.Rid.file)
    ~page:rid.Rid.page ~slot:rid.Rid.slot

let dest_of t key = Rid.hash key mod Array.length t.dest

let send t ~dest ~bytes v =
  if bytes < 0 then invalid_arg "Exchange.send: negative bytes";
  t.dest.(dest) <- v :: t.dest.(dest);
  Sim.claim_bytes t.sim bytes;
  t.claimed.(dest) <- t.claimed.(dest) + bytes;
  t.pending.(dest) <- t.pending.(dest) + bytes;
  while t.pending.(dest) >= t.page do
    Sim.charge_rpc t.sim ~pages:1;
    t.pending.(dest) <- t.pending.(dest) - t.page
  done

let flush_source t =
  Array.iteri
    (fun d pending ->
      if pending > 0 then begin
        Sim.charge_rpc t.sim ~pages:1;
        t.pending.(d) <- 0
      end)
    t.pending

let take t ~dest =
  let rows = List.rev t.dest.(dest) in
  t.dest.(dest) <- [];
  rows

let release_dest t ~dest =
  Sim.release_bytes t.sim t.claimed.(dest);
  t.claimed.(dest) <- 0

let dispose t =
  Array.iteri (fun d _ -> release_dest t ~dest:d) t.claimed;
  Array.iteri (fun d _ -> t.dest.(d) <- []) t.dest

(* --- gather kernels --- *)

(* Ship one shard's partial result to the coordinator: one RPC carrying
   the result's pages (an empty or aggregate-only partial still pays the
   fixed round-trip cost). *)
let ship_partial sim ~bytes =
  if bytes < 0 then invalid_arg "Exchange.ship_partial: negative bytes";
  let page = sim.Sim.cost.Tb_sim.Cost_model.page_size in
  Sim.charge_rpc sim ~pages:((bytes + page - 1) / page)

let log2ceil n =
  let rec go acc pow = if pow >= n then acc else go (acc + 1) (pow * 2) in
  go 0 1

(* An order-preserving gather runs an S-way tournament merge on the sort
   key: one comparison per row per tree level. *)
let merge_ordered sim ~rows ~streams =
  if streams > 1 && rows > 0 then
    Sim.charge_compare sim (rows * log2ceil streams)
