(* Exchange/Gather charge kernels: the shipping side of sharded execution.

   This module is the only place the repartition and gather traffic is
   charged (treelint R1 lists it next to Operators); the interpreter in
   {!Exec} drives the loops but never touches the cost model itself.

   An ['a t] is one S-way routed buffer: rows sent to a destination lane
   accumulate there, claim simulated memory, and pay one client/server
   round trip per filled page — rows move between shards by RPC, exactly
   like the page traffic of Figure 5, batched a page at a time.  A source
   that finishes its stream ships its partial pages ([flush_source]), so
   an S-shard exchange pays at most S partial-page RPCs per source.

   Buffers are per (source, destination) pair so that one source's stream
   can be dropped and re-routed from a replica ([drop_source]) without
   touching what the other sources already shipped.  Since PR 8 the RPCs
   themselves are fallible: when a destination shard has an armed fault
   schedule, each page RPC first rides out its drawn timeouts — a full
   timeout window plus an exponentially backed-off, jittered re-issue per
   loss, every wait charged to the simulated clock — before the page goes
   through.  A quiescent fault layer costs nothing and draws nothing, so
   fault-free runs stay bit-identical. *)

module Sim = Tb_sim.Sim
module Rid = Tb_storage.Rid
module Fault = Tb_storage.Fault

type 'a t = {
  sim : Sim.t;
  page : int;
  fault_of : int -> Fault.t option;
  rows : 'a list array array;  (* rows.(src).(dest), newest first *)
  pending : int array array;  (* buffered-but-unbilled bytes per (src,dest) *)
  claimed : int array array;  (* simulated bytes held per (src,dest) *)
}

let no_fault (_ : int) : Fault.t option = None

let create ?(fault_of = no_fault) sim ~shards =
  if shards <= 0 then invalid_arg "Exchange.create: shards must be positive";
  {
    sim;
    page = sim.Sim.cost.Tb_sim.Cost_model.page_size;
    fault_of;
    rows = Array.init shards (fun _ -> Array.make shards []);
    pending = Array.init shards (fun _ -> Array.make shards 0);
    claimed = Array.init shards (fun _ -> Array.make shards 0);
  }

let shards t = Array.length t.rows

(* Tag a key Rid with its source shard: per-shard disks reuse file ids, so
   two different objects on two shards can carry the same raw Rid.  The
   join sides are colocated (a patient's inverse reference names a
   provider on its own shard), so matching pairs always carry the same
   tag and still meet on the same destination lane. *)
let retag ~shard rid =
  Rid.make
    ~file:((shard * 0x10000) + rid.Rid.file)
    ~page:rid.Rid.page ~slot:rid.Rid.slot

let dest_of t key = Rid.hash key mod Array.length t.rows

(* Ride out the drawn RPC losses on the link to a faulted shard: each loss
   burns the full timeout window, then an exponentially backed-off wait
   (base * 2^k, jittered from the fault's seeded Rng) before the re-issue.
   The successful RPC itself is charged by the caller. *)
let ride_out_losses sim f =
  let budget = Fault.max_rpc_retries f in
  let base = sim.Sim.cost.Tb_sim.Cost_model.rpc_retry_base_ms in
  let rec attempt k scale =
    if k < budget && Fault.rpc_fails f then begin
      Sim.charge_rpc_timeout sim;
      Sim.charge_rpc_retry sim
        ~backoff_ms:(base *. scale *. Fault.backoff_jitter f);
      attempt (k + 1) (scale *. 2.0)
    end
  in
  attempt 0 1.0

let charge_page_rpc t ~dest =
  (match t.fault_of dest with
  | None -> ()
  | Some f -> ride_out_losses t.sim f);
  Sim.charge_rpc t.sim ~pages:1

let send t ~src ~dest ~bytes v =
  if bytes < 0 then invalid_arg "Exchange.send: negative bytes";
  t.rows.(src).(dest) <- v :: t.rows.(src).(dest);
  Sim.claim_bytes t.sim bytes;
  t.claimed.(src).(dest) <- t.claimed.(src).(dest) + bytes;
  t.pending.(src).(dest) <- t.pending.(src).(dest) + bytes;
  while t.pending.(src).(dest) >= t.page do
    charge_page_rpc t ~dest;
    t.pending.(src).(dest) <- t.pending.(src).(dest) - t.page
  done

let flush_source t ~src =
  Array.iteri
    (fun d pending ->
      if pending > 0 then begin
        charge_page_rpc t ~dest:d;
        t.pending.(src).(d) <- 0
      end)
    t.pending.(src)

(* Arrival order: sources are driven in ascending shard order inside the
   fork scope, so concatenating per-source streams in that order is the
   order rows actually reached the lane. *)
let take t ~dest =
  let acc = ref [] in
  for src = Array.length t.rows - 1 downto 0 do
    acc := List.rev_append t.rows.(src).(dest) !acc
  done;
  !acc

let drop_source t ~src =
  Array.iteri
    (fun d bytes ->
      Sim.release_bytes t.sim bytes;
      t.claimed.(src).(d) <- 0;
      t.pending.(src).(d) <- 0;
      t.rows.(src).(d) <- [])
    t.claimed.(src)

let release_dest t ~dest =
  for src = 0 to Array.length t.rows - 1 do
    Sim.release_bytes t.sim t.claimed.(src).(dest);
    t.claimed.(src).(dest) <- 0;
    t.rows.(src).(dest) <- []
  done

let dispose t =
  for d = 0 to Array.length t.rows - 1 do
    release_dest t ~dest:d
  done

(* --- failure kernels --- *)

(* One exchange boundary on a shard's lane: tick the shard's fault
   schedule.  A partition rides out its rounds (timeout + backed-off
   re-probe per round, all charged); a scheduled crash escapes as
   [Fault.Shard_down] for the executor to turn into a failover.  With no
   armed fault this is free — no draws, no charges. *)
let boundary sim fault_opt =
  match fault_opt with
  | None -> ()
  | Some f -> (
      match Fault.on_boundary f with
      | Fault.B_ok -> ()
      | Fault.B_partitioned rounds ->
          let base = sim.Sim.cost.Tb_sim.Cost_model.rpc_retry_base_ms in
          let scale = ref 1.0 in
          for _ = 1 to rounds do
            Sim.charge_rpc_timeout sim;
            Sim.charge_rpc_retry sim
              ~backoff_ms:(base *. !scale *. Fault.backoff_jitter f);
            scale := !scale *. 2.0
          done)

(* The coordinator learning a lane is dead: one full timeout window.  The
   promotion itself is charged by [Shard_map.promote]. *)
let detect_failure sim = Sim.charge_rpc_timeout sim

(* --- gather kernels --- *)

(* Ship one shard's partial result to the coordinator: one RPC carrying
   the result's pages (an empty or aggregate-only partial still pays the
   fixed round-trip cost). *)
let ship_partial sim ~bytes =
  if bytes < 0 then invalid_arg "Exchange.ship_partial: negative bytes";
  let page = sim.Sim.cost.Tb_sim.Cost_model.page_size in
  Sim.charge_rpc sim ~pages:((bytes + page - 1) / page)

let log2ceil n =
  let rec go acc pow = if pow >= n then acc else go (acc + 1) (pow * 2) in
  go 0 1

(* An order-preserving gather runs an S-way tournament merge on the sort
   key: one comparison per row per tree level. *)
let merge_ordered sim ~rows ~streams =
  if streams > 1 && rows > 0 then
    Sim.charge_compare sim (rows * log2ceil streams)
