(** Exchange/Gather charge kernels — the shipping side of sharded execution.

    The only module that charges repartition and gather traffic (treelint
    R1): {!Exec} drives the loops, this module pays for them.  Rows move
    between shard lanes by client/server RPC, batched one page at a time,
    mirroring the page-shipping architecture of the paper's client/server
    engine.

    Buffers are kept per (source, destination) pair so that a source lane
    that dies mid-route can be dropped and re-routed from a replica
    without disturbing the other sources' streams; and every page RPC to a
    shard with an armed {!Tb_storage.Fault} schedule first rides out its
    drawn losses — a charged timeout window plus an exponentially
    backed-off, jittered re-issue per loss.  Quiescent faults charge
    nothing and draw nothing: fault-free runs are bit-identical to PR 7. *)

(** An S-way routed buffer: rows accumulate per (source, destination)
    cell, claim simulated memory, and pay one RPC per filled page. *)
type 'a t

(** [create ?fault_of sim ~shards] — [fault_of d] is the fault layer
    guarding the link to destination shard [d] (default: none).  Raises
    [Invalid_argument] when [shards <= 0]. *)
val create :
  ?fault_of:(int -> Tb_storage.Fault.t option) ->
  Tb_sim.Sim.t ->
  shards:int ->
  'a t

val shards : 'a t -> int

(** [retag ~shard rid] tags a key Rid with its source shard so keys from
    different shards can never collide after repartitioning.  Colocated
    join sides carry the same tag on both sides of a matching pair. *)
val retag : shard:int -> Tb_storage.Rid.t -> Tb_storage.Rid.t

(** Destination lane of a (retagged) key: its hash modulo the lane count. *)
val dest_of : 'a t -> Tb_storage.Rid.t -> int

(** [send t ~src ~dest ~bytes v] routes one row from source lane [src]:
    buffers it, claims [bytes] of simulated memory, and charges one
    single-page RPC (riding out any drawn losses first) each time the
    pair's buffered bytes fill a page. *)
val send : 'a t -> src:int -> dest:int -> bytes:int -> 'a -> unit

(** End of source [src]'s stream: ship its partial page to every
    destination holding one (one single-page RPC per non-empty partial). *)
val flush_source : 'a t -> src:int -> unit

(** [take t ~dest] is lane [dest]'s rows in arrival order (per-source
    streams concatenated in ascending source order).  Charge-free and
    non-destructive: rows stay buffered until {!release_dest}, so a
    destination lane that fails over can be re-driven on the replica. *)
val take : 'a t -> dest:int -> 'a list

(** Discard everything source [src] routed — rows and claimed bytes —
    so the stream can be re-sent from a replica after a source-side
    failover. *)
val drop_source : 'a t -> src:int -> unit

(** Release the rows and simulated memory still held for lane [dest]
    (call after the lane's output has been shipped to the coordinator). *)
val release_dest : 'a t -> dest:int -> unit

(** Release everything (exception cleanup). *)
val dispose : 'a t -> unit

(** {2 Failure kernels} *)

(** [boundary sim fault] ticks one exchange boundary on a shard's lane:
    charges a partition's ride-out (timeout + backed-off re-probe per
    round) and lets a scheduled shard crash escape as
    {!Tb_storage.Fault.Shard_down}.  Free when [fault] is [None] or
    quiescent. *)
val boundary : Tb_sim.Sim.t -> Tb_storage.Fault.t option -> unit

(** The coordinator's cost of learning a lane is dead: one timeout
    window.  Promotion is charged separately by [Shard_map.promote]. *)
val detect_failure : Tb_sim.Sim.t -> unit

(** {2 Gather kernels} *)

(** Ship one shard's partial result to the coordinator: one RPC carrying
    [bytes] rounded up to whole pages (0 pages for an empty partial still
    pays the fixed round-trip). *)
val ship_partial : Tb_sim.Sim.t -> bytes:int -> unit

val log2ceil : int -> int

(** [merge_ordered sim ~rows ~streams] charges the comparisons of an
    S-way tournament merge: [rows * log2ceil streams].  No-op for a single
    stream or an empty result. *)
val merge_ordered : Tb_sim.Sim.t -> rows:int -> streams:int -> unit
