(** Exchange/Gather charge kernels — the shipping side of sharded execution.

    The only module that charges repartition and gather traffic (treelint
    R1): {!Exec} drives the loops, this module pays for them.  Rows move
    between shard lanes by client/server RPC, batched one page at a time,
    mirroring the page-shipping architecture of the paper's client/server
    engine. *)

(** An S-way routed buffer: rows accumulate per destination lane, claim
    simulated memory, and pay one RPC per filled page. *)
type 'a t

(** [create sim ~shards] — raises [Invalid_argument] when [shards <= 0]. *)
val create : Tb_sim.Sim.t -> shards:int -> 'a t

val shards : 'a t -> int

(** [retag ~shard rid] tags a key Rid with its source shard so keys from
    different shards can never collide after repartitioning.  Colocated
    join sides carry the same tag on both sides of a matching pair. *)
val retag : shard:int -> Tb_storage.Rid.t -> Tb_storage.Rid.t

(** Destination lane of a (retagged) key: its hash modulo the lane count. *)
val dest_of : 'a t -> Tb_storage.Rid.t -> int

(** [send t ~dest ~bytes v] routes one row: buffers it, claims [bytes] of
    simulated memory, and charges one single-page RPC each time the
    destination's buffered bytes fill a page. *)
val send : 'a t -> dest:int -> bytes:int -> 'a -> unit

(** End of one source's stream: ship every destination's partial page
    (one single-page RPC per non-empty partial). *)
val flush_source : 'a t -> unit

(** [take t ~dest] returns (and clears) lane [dest]'s rows in arrival
    order.  Charge-free: shipping was paid by [send]/[flush_source]. *)
val take : 'a t -> dest:int -> 'a list

(** Release the simulated memory still claimed for lane [dest] (call after
    the lane's rows have been consumed into their next operator). *)
val release_dest : 'a t -> dest:int -> unit

(** Release everything (exception cleanup). *)
val dispose : 'a t -> unit

(** {2 Gather kernels} *)

(** Ship one shard's partial result to the coordinator: one RPC carrying
    [bytes] rounded up to whole pages (0 pages for an empty partial still
    pays the fixed round-trip). *)
val ship_partial : Tb_sim.Sim.t -> bytes:int -> unit

val log2ceil : int -> int

(** [merge_ordered sim ~rows ~streams] charges the comparisons of an
    S-way tournament merge: [rows * log2ceil streams].  No-op for a single
    stream or an empty result. *)
val merge_ordered : Tb_sim.Sim.t -> rows:int -> streams:int -> unit
