(* The physical-plan interpreter.

   One small recursive walk drives the operator tree {!Planner.lower}
   assembles: rid streams (scans), binding streams (fetch / navigation /
   joins), (key, payload) streams (harvests) and value streams
   (projection) are pushed bottom-up through emit callbacks, which keeps
   the charge order — Handle lifetimes, page-fetch interleaving, hash and
   sort traffic — identical to the monolithic drivers this replaced.

   Charge discipline (treelint R1): this module never charges the cost
   model itself.  All Sim charges happen inside the engine components it
   calls (Database, Btree, Heap_file, Mem_hash, Query_result) and the
   operator kernels in {!Operators}.  The interpreter only switches the
   accounting frame ({!Op.Acct.enter}) so the charges land on the operator
   responsible for them. *)

module Value = Tb_store.Value
module Database = Tb_store.Database
module Handle = Tb_store.Handle
module Heap_file = Tb_storage.Heap_file
module Rid = Tb_storage.Rid
module Counters = Tb_sim.Counters

type state = { db : Database.t; acct : Op.Acct.acct }

let lookup_env env v =
  match List.assoc_opt v env with
  | Some s -> s
  | None -> invalid_arg ("Exec: unknown var " ^ v)

(* The single live Handle a Fetch put in scope — what navigation, harvest
   and probe operators consume. *)
let live_of_env = function
  | [ (_, Op.Live h) ] -> h
  | _ -> invalid_arg "Exec: operator expects one Handle-backed variable"

(* --- Rid streams --- *)

let rec iter_rids st node emit =
  let fr = node.Op.frame in
  match node.Op.kind with
  | Op.Seq_scan { cls } ->
      Op.Acct.enter st.acct fr;
      let cur = Database.scan_cursor st.db ~cls in
      let rec go () =
        match Database.cursor_next cur with
        | Some rid ->
            fr.Op.rows_out <- fr.Op.rows_out + 1;
            emit rid;
            Op.Acct.enter st.acct fr;
            go ()
        | None -> ()
      in
      go ()
  | Op.Index_scan { index; lo; hi } ->
      Op.Acct.enter st.acct fr;
      Tb_store.Btree.range index.Tb_store.Index_def.tree ?lo ?hi (fun _ rid ->
          fr.Op.rows_out <- fr.Op.rows_out + 1;
          emit rid;
          Op.Acct.enter st.acct fr)
  | Op.Sort_rids { child } ->
      let rids = ref [] in
      let n = ref 0 in
      iter_rids st child (fun rid ->
          rids := rid :: !rids;
          incr n);
      Op.Acct.enter st.acct fr;
      fr.Op.rows_in <- !n;
      fr.Op.bytes <- !n * Rid.on_disk_bytes;
      Operators.sorted_rids (Database.sim st.db) ~rids:!rids ~count:!n
        (fun rid ->
          fr.Op.rows_out <- fr.Op.rows_out + 1;
          emit rid;
          Op.Acct.enter st.acct fr)
  | _ -> invalid_arg "Exec: operator does not produce Rids"

(* --- batched Rid streams ---

   The vector-at-a-time feed for Fetch: Rids arrive in chunks of at most
   [batch], and the producer's frame is re-entered once per chunk instead
   of once per row.  Chunks never straddle a page boundary (Seq_scan feeds
   page by page via [Database.cursor_next_page]), so interleaving the
   consumer's per-row page accesses with the producer's page fetches keeps
   the exact charge order of the row-at-a-time stream — batching is
   charge-order-preserving by construction and needs no planner
   eligibility rules. *)

(* Emit [rids] in [batch]-sized chunks, bumping rows_out per chunk. *)
and emit_rid_chunks st fr ~batch rids emit =
  match rids with
  | [] -> ()
  | _ ->
      let rec split n acc rest =
        match rest with
        | _ when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | rid :: tl -> split (n - 1) (rid :: acc) tl
      in
      let chunk, rest = split batch [] rids in
      fr.Op.rows_out <- fr.Op.rows_out + List.length chunk;
      emit chunk;
      Op.Acct.enter st.acct fr;
      emit_rid_chunks st fr ~batch rest emit

and iter_rid_batches st ~batch node emit =
  let fr = node.Op.frame in
  match node.Op.kind with
  | Op.Seq_scan { cls } ->
      Op.Acct.enter st.acct fr;
      let cur = Database.scan_cursor st.db ~cls in
      let rec go () =
        match Database.cursor_next_page cur with
        | Some rids ->
            emit_rid_chunks st fr ~batch rids emit;
            go ()
        | None -> ()
      in
      go ()
  | Op.Index_scan { index; lo; hi } ->
      (* Index entries surface one at a time; singleton chunks keep the
         per-row tree-page fetches interleaved exactly as before. *)
      Op.Acct.enter st.acct fr;
      Tb_store.Btree.range index.Tb_store.Index_def.tree ?lo ?hi (fun _ rid ->
          fr.Op.rows_out <- fr.Op.rows_out + 1;
          emit [ rid ];
          Op.Acct.enter st.acct fr)
  | Op.Sort_rids { child } ->
      let rids = ref [] in
      let n = ref 0 in
      iter_rids st child (fun rid ->
          rids := rid :: !rids;
          incr n);
      Op.Acct.enter st.acct fr;
      fr.Op.rows_in <- !n;
      fr.Op.bytes <- !n * Rid.on_disk_bytes;
      (* Chunk emission happens inside the claim window, so the buffer
         release still follows the last emitted row as it always did. *)
      Operators.with_sorted_rids (Database.sim st.db) ~rids:!rids ~count:!n
        (fun arr ->
          let len = Array.length arr in
          let i = ref 0 in
          while !i < len do
            let stop = min len (!i + batch) in
            let chunk = ref [] in
            for j = stop - 1 downto !i do
              chunk := arr.(j) :: !chunk
            done;
            fr.Op.rows_out <- fr.Op.rows_out + (stop - !i);
            emit !chunk;
            Op.Acct.enter st.acct fr;
            i := stop
          done)
  | _ -> invalid_arg "Exec: operator does not produce Rids"

(* --- binding streams: (var, source) environments --- *)

and iter_envs st node emit =
  let db = st.db in
  let fr = node.Op.frame in
  match node.Op.kind with
  | Op.Fetch { child; cls; var; preds; covering; mode; batch } ->
      if covering then
        (* Identity-only projection with no residual predicates: no
           Handle traffic at all (Section 5's remark that navigation need
           not read patients when returning objects). *)
        iter_rid_batches st ~batch child (fun rids ->
            List.iter
              (fun rid ->
                Op.Acct.enter st.acct fr;
                fr.Op.rows_in <- fr.Op.rows_in + 1;
                fr.Op.rows_out <- fr.Op.rows_out + 1;
                emit [ (var, Op.Stored { Op.self = rid; attrs = [] }) ];
                Op.Acct.enter st.acct fr)
              rids)
      else begin
        (* Emission stays inline per row in both modes: deferring it past
           the batch would reorder Handle releases against downstream
           claims and move the simulated memory peak. *)
        let eval =
          match mode with
          | Op.Handle ->
              let cpreds = Operators.compile_preds db ~cls preds in
              fun h -> Operators.eval_preds db h cpreds
          | Op.Packed ->
              let prog = Packed.compile db ~cls ~preds () in
              (* A resident handle materialized by an update has no packed
                 body; those rows take the Handle kernel (same charges). *)
              let cpreds = lazy (Operators.compile_preds db ~cls preds) in
              fun h -> (
                match Database.packed_body db h with
                | Some (buf, pos) ->
                    Packed.seek_all prog buf ~pos;
                    Packed.eval_preds db prog buf
                | None -> Operators.eval_preds db h (Lazy.force cpreds))
        in
        iter_rid_batches st ~batch child (fun rids ->
            List.iter
              (fun rid ->
                Op.Acct.enter st.acct fr;
                fr.Op.rows_in <- fr.Op.rows_in + 1;
                let h = Database.acquire db rid in
                Fun.protect
                  ~finally:(fun () -> Database.unref db h)
                  (fun () ->
                    if eval h then begin
                      fr.Op.rows_out <- fr.Op.rows_out + 1;
                      emit [ (var, Op.Live h) ];
                      Op.Acct.enter st.acct fr
                    end))
              rids)
      end
  | Op.Nav_set { child; set_attr; owner_cls; nav_var; nav_cls; preds } ->
      let set_slot = Database.attr_slot db ~cls:owner_cls set_attr in
      let cpreds = Operators.compile_preds db ~cls:nav_cls preds in
      iter_envs st child (fun env ->
          Op.Acct.enter st.acct fr;
          fr.Op.rows_in <- fr.Op.rows_in + 1;
          let ph = live_of_env env in
          let clients = Database.get_att_slot db ph set_slot in
          Database.iter_set db clients (fun elt ->
              match elt with
              | Value.Ref crid ->
                  let ch = Database.acquire db crid in
                  Fun.protect
                    ~finally:(fun () -> Database.unref db ch)
                    (fun () ->
                      if Operators.eval_preds db ch cpreds then begin
                        fr.Op.rows_out <- fr.Op.rows_out + 1;
                        emit ((nav_var, Op.Live ch) :: env);
                        Op.Acct.enter st.acct fr
                      end)
              | Value.Nil -> ()
              | _ -> invalid_arg "Exec: collection element is not a reference"))
  | Op.Nav_inverse { child; inv_attr; owner_cls; nav_var; nav_cls; preds } ->
      let inv_slot = Database.attr_slot db ~cls:owner_cls inv_attr in
      let cpreds = Operators.compile_preds db ~cls:nav_cls preds in
      iter_envs st child (fun env ->
          Op.Acct.enter st.acct fr;
          fr.Op.rows_in <- fr.Op.rows_in + 1;
          let ch = live_of_env env in
          match Database.get_att_slot db ch inv_slot with
          | Value.Ref prid ->
              let ph = Database.acquire db prid in
              Fun.protect
                ~finally:(fun () -> Database.unref db ph)
                (fun () ->
                  if Operators.eval_preds db ph cpreds then begin
                    fr.Op.rows_out <- fr.Op.rows_out + 1;
                    emit ((nav_var, Op.Live ph) :: env);
                    Op.Acct.enter st.acct fr
                  end)
          | Value.Nil -> ()
          | _ -> invalid_arg "Exec: inverse attribute is not a reference")
  | Op.Hash_probe { build; probe; probe_key; probe_cls; build_var; probe_var }
    ->
      run_hash_probe st node.Op.frame ~build ~probe ~probe_key ~probe_cls
        ~build_var ~probe_var emit
  | Op.Merge { left; right; left_var; right_var } ->
      run_merge st node.Op.frame ~left ~right ~left_var ~right_var emit
  | _ -> invalid_arg "Exec: operator does not produce bindings"

(* --- (key, payload) streams --- *)

and iter_kvs st node emit =
  let fr = node.Op.frame in
  match node.Op.kind with
  | Op.Harvest { child; key; cls; attrs; mode = Op.Handle } ->
      let slots = Operators.compile_attrs st.db ~cls attrs in
      let keyf = Operators.compile_key st.db ~cls key in
      iter_envs st child (fun env ->
          Op.Acct.enter st.acct fr;
          fr.Op.rows_in <- fr.Op.rows_in + 1;
          let h = live_of_env env in
          match keyf h with
          | Some k ->
              let payload = Operators.make_payload st.db h ~slots in
              fr.Op.rows_out <- fr.Op.rows_out + 1;
              emit (k, payload);
              Op.Acct.enter st.acct fr
          | None -> ())
  | Op.Harvest { child; key; cls; attrs; mode = Op.Packed } ->
      let prog = Packed.compile st.db ~cls ~key ~attrs () in
      let slots = lazy (Operators.compile_attrs st.db ~cls attrs) in
      let keyf = lazy (Operators.compile_key st.db ~cls key) in
      iter_envs st child (fun env ->
          Op.Acct.enter st.acct fr;
          fr.Op.rows_in <- fr.Op.rows_in + 1;
          let h = live_of_env env in
          let self = h.Handle.rid in
          match Database.packed_body st.db h with
          | Some (buf, pos) -> (
              Packed.seek_all prog buf ~pos;
              match Packed.eval_key st.db prog buf ~self with
              | Some k ->
                  let payload = Packed.make_payload st.db prog buf ~self in
                  fr.Op.rows_out <- fr.Op.rows_out + 1;
                  emit (k, payload);
                  Op.Acct.enter st.acct fr
              | None -> ())
          | None -> (
              (* Materialized resident: Handle kernel, identical charges. *)
              match (Lazy.force keyf) h with
              | Some k ->
                  let payload =
                    Operators.make_payload st.db h ~slots:(Lazy.force slots)
                  in
                  fr.Op.rows_out <- fr.Op.rows_out + 1;
                  emit (k, payload);
                  Op.Acct.enter st.acct fr
              | None -> ()))
  | _ -> invalid_arg "Exec: operator does not produce key/value pairs"

(* --- hash joins --- *)

(* In-memory build: PHJ hashes the parents, CHJ the children (keyed by the
   parent reference).  The probe side stays live; matches extend its
   binding environment with the stowed build payload. *)
and run_hash_probe st fr ~build ~probe ~probe_key ~probe_cls ~build_var
    ~probe_var emit =
  let db = st.db in
  let sim = Database.sim db in
  match (probe.Op.kind, build.Op.kind) with
  | Op.Spill_partition _, _ ->
      run_hybrid st fr ~build ~probe ~build_var ~probe_var emit
  | _, Op.Hash_build { child = bharv } ->
      let bfr = build.Op.frame in
      let table : Op.payload Mem_hash.t = Mem_hash.create sim in
      Fun.protect
        ~finally:(fun () ->
          bfr.Op.bytes <- max bfr.Op.bytes (Mem_hash.size_bytes table);
          Mem_hash.dispose table)
        (fun () ->
          iter_kvs st bharv (fun (key, payload) ->
              Op.Acct.enter st.acct bfr;
              bfr.Op.rows_in <- bfr.Op.rows_in + 1;
              Mem_hash.add table ~key
                ~payload_bytes:(Operators.payload_bytes payload)
                payload);
          let keyf = Operators.compile_key db ~cls:probe_cls probe_key in
          iter_envs st probe (fun env ->
              Op.Acct.enter st.acct fr;
              fr.Op.rows_in <- fr.Op.rows_in + 1;
              let h = live_of_env env in
              match keyf h with
              | Some key ->
                  List.iter
                    (fun bp ->
                      fr.Op.rows_out <- fr.Op.rows_out + 1;
                      emit ((build_var, Op.Stored bp) :: env);
                      Op.Acct.enter st.acct fr)
                    (Mem_hash.find table ~key)
              | None -> ()))
  | _ -> invalid_arg "Exec: Hash_probe expects a Hash_build build side"

(* Hybrid hash join.  The build side is split into [partitions] buckets by
   key hash: bucket 0 is joined in memory on the fly, the others are
   written to temporary files on both sides and joined bucket by bucket.
   Disk traffic replaces the swap thrash of the in-memory algorithms: the
   fix the paper points at ("the need for hybrid hashing") but never
   measured. *)
and run_hybrid st fr ~build ~probe ~build_var ~probe_var emit =
  let db = st.db in
  let sim = Database.sim db in
  let hb_fr, bspill_node, bharv =
    match build.Op.kind with
    | Op.Hash_build { child = ({ Op.kind = Op.Spill_partition { child; _ }; _ } as sp) }
      ->
        (build.Op.frame, sp, child)
    | _ -> invalid_arg "Exec: hybrid build side must spill-partition"
  in
  let psp_fr, pharv_node, partitions =
    match probe.Op.kind with
    | Op.Spill_partition { child; partitions } ->
        (probe.Op.frame, child, partitions)
    | _ -> invalid_arg "Exec: hybrid probe side must spill-partition"
  in
  let bsp_fr = bspill_node.Op.frame in
  let ph_fr = pharv_node.Op.frame in
  let probe_fetch, pkey, pcls, pattrs =
    match pharv_node.Op.kind with
    | Op.Harvest { child; key; cls; attrs; _ } -> (child, key, cls, attrs)
    | _ -> invalid_arg "Exec: hybrid probe side must harvest"
  in
  let bucket key = Rid.hash key mod partitions in
  let live = ref None in
  let dispose_live () =
    match !live with
    | Some t ->
        hb_fr.Op.bytes <- max hb_fr.Op.bytes (Mem_hash.size_bytes t);
        Mem_hash.dispose t;
        live := None
    | None -> ()
  in
  Fun.protect ~finally:dispose_live @@ fun () ->
  let table : Op.payload Mem_hash.t = Mem_hash.create sim in
  live := Some table;
  let build_spill = Operators.new_spill_files db (max 0 (partitions - 1)) in
  let probe_spill = Operators.new_spill_files db (max 0 (partitions - 1)) in
  (* Build pass. *)
  iter_kvs st bharv (fun (key, payload) ->
      Op.Acct.enter st.acct bsp_fr;
      bsp_fr.Op.rows_in <- bsp_fr.Op.rows_in + 1;
      if bucket key = 0 then begin
        bsp_fr.Op.rows_out <- bsp_fr.Op.rows_out + 1;
        Op.Acct.enter st.acct hb_fr;
        hb_fr.Op.rows_in <- hb_fr.Op.rows_in + 1;
        Mem_hash.add table ~key
          ~payload_bytes:(Operators.payload_bytes payload)
          payload
      end
      else Operators.spill build_spill.(bucket key - 1) ~key payload);
  (* Probe pass: bucket 0 joins immediately, the rest spill.  Bucket-0
     probe payloads are harvested lazily, once per match. *)
  let pslots = Operators.compile_attrs db ~cls:pcls pattrs in
  let pkeyf = Operators.compile_key db ~cls:pcls pkey in
  iter_envs st probe_fetch (fun env ->
      Op.Acct.enter st.acct fr;
      fr.Op.rows_in <- fr.Op.rows_in + 1;
      let h = live_of_env env in
      match pkeyf h with
      | Some key ->
          if bucket key = 0 then
            List.iter
              (fun bp ->
                Op.Acct.enter st.acct ph_fr;
                ph_fr.Op.rows_in <- ph_fr.Op.rows_in + 1;
                let pl = Operators.make_payload db h ~slots:pslots in
                ph_fr.Op.rows_out <- ph_fr.Op.rows_out + 1;
                Op.Acct.enter st.acct fr;
                fr.Op.rows_out <- fr.Op.rows_out + 1;
                emit [ (build_var, Op.Stored bp); (probe_var, Op.Stored pl) ];
                Op.Acct.enter st.acct fr)
              (Mem_hash.find table ~key)
          else begin
            Op.Acct.enter st.acct ph_fr;
            ph_fr.Op.rows_in <- ph_fr.Op.rows_in + 1;
            let pl = Operators.make_payload db h ~slots:pslots in
            ph_fr.Op.rows_out <- ph_fr.Op.rows_out + 1;
            Op.Acct.enter st.acct psp_fr;
            psp_fr.Op.rows_in <- psp_fr.Op.rows_in + 1;
            Operators.spill probe_spill.(bucket key - 1) ~key pl
          end
      | None -> ());
  dispose_live ();
  (* Spilled buckets, one at a time: each fits memory by construction. *)
  for b = 0 to partitions - 2 do
    let tb : Op.payload Mem_hash.t = Mem_hash.create sim in
    live := Some tb;
    Op.Acct.enter st.acct bsp_fr;
    Heap_file.scan build_spill.(b) (fun _ body ->
        Op.Acct.enter st.acct hb_fr;
        let key, payload = Operators.unspill_record body in
        hb_fr.Op.rows_in <- hb_fr.Op.rows_in + 1;
        Mem_hash.add tb ~key
          ~payload_bytes:(Operators.payload_bytes payload)
          payload;
        Op.Acct.enter st.acct bsp_fr);
    Op.Acct.enter st.acct psp_fr;
    Heap_file.scan probe_spill.(b) (fun _ body ->
        Op.Acct.enter st.acct fr;
        let key, pl = Operators.unspill_record body in
        List.iter
          (fun bp ->
            fr.Op.rows_out <- fr.Op.rows_out + 1;
            emit [ (build_var, Op.Stored bp); (probe_var, Op.Stored pl) ];
            Op.Acct.enter st.acct fr)
          (Mem_hash.find tb ~key);
        Op.Acct.enter st.acct psp_fr);
    dispose_live ()
  done

(* --- pointer-based sort-merge join --- *)

and run_merge st fr ~left ~right ~left_var ~right_var emit =
  let sim = Database.sim st.db in
  let run_sort node =
    match node.Op.kind with
    | Op.Sort { child } ->
        let sfr = node.Op.frame in
        let acc = ref [] in
        let bytes = ref 0 in
        iter_kvs st child (fun (k, p) ->
            Op.Acct.enter st.acct sfr;
            sfr.Op.rows_in <- sfr.Op.rows_in + 1;
            acc := (k, p) :: !acc;
            bytes := !bytes + Operators.payload_bytes p);
        Op.Acct.enter st.acct sfr;
        let arr = Operators.claim_and_sort sim !acc ~bytes:!bytes in
        sfr.Op.bytes <- !bytes;
        sfr.Op.rows_out <- Array.length arr;
        (arr, !bytes)
    | _ -> invalid_arg "Exec: Merge expects Sort children"
  in
  (* Both runs stay claimed until the merge is done; release also on
     exception so a failed query cannot leak simulated RAM. *)
  let claimed = ref 0 in
  Fun.protect ~finally:(fun () -> Operators.release_bytes sim !claimed)
  @@ fun () ->
  let parents, p_bytes = run_sort left in
  claimed := !claimed + p_bytes;
  let children, c_bytes = run_sort right in
  claimed := !claimed + c_bytes;
  Op.Acct.enter st.acct fr;
  fr.Op.rows_in <- Array.length parents + Array.length children;
  Operators.merge_join sim ~bytes:(p_bytes + c_bytes) ~parents ~children
    (fun pp cp ->
      fr.Op.rows_out <- fr.Op.rows_out + 1;
      emit [ (left_var, Op.Stored pp); (right_var, Op.Stored cp) ];
      Op.Acct.enter st.acct fr)

(* --- value streams and the sink --- *)

let iter_values st node emit =
  match node.Op.kind with
  | Op.Project { child; select } ->
      let fr = node.Op.frame in
      iter_envs st child (fun env ->
          Op.Acct.enter st.acct fr;
          fr.Op.rows_in <- fr.Op.rows_in + 1;
          let v = Operators.eval_select st.db select ~lookup:(lookup_env env) in
          fr.Op.rows_out <- fr.Op.rows_out + 1;
          emit v;
          Op.Acct.enter st.acct fr)
  | _ -> invalid_arg "Exec: operator does not produce values"

(* Drive a Materialize subtree to completion and return its result. *)
let drive_materialize st node ~keep =
  match node.Op.kind with
  | Op.Materialize { child; aggregate } ->
      let fr = node.Op.frame in
      let result = Query_result.create ?aggregate (Database.sim st.db) ~keep in
      iter_values st child (fun v ->
          Op.Acct.enter st.acct fr;
          fr.Op.rows_in <- fr.Op.rows_in + 1;
          Query_result.append result v;
          fr.Op.rows_out <- fr.Op.rows_out + 1);
      Op.Acct.enter st.acct fr;
      fr.Op.bytes <- Query_result.size_bytes result;
      result
  | _ -> invalid_arg "Exec: operator tree root must be Materialize"

(* Global counter deltas between two snapshots, in explain-report fields.
   [t_ms] reads [work_ms], the monotone sum of every advance: inside a
   fork/join scope elapsed time takes the max over lanes while the per-
   operator frames (also fed from [work_ms]) stay additive — and outside a
   scope the two clocks are bit-identical. *)
type snapshot = {
  p_ms : float;
  p_dr : int;
  p_dw : int;
  p_ha : int;
  p_ga : int;
  p_cmp : int;
  p_hi : int;
  p_hp : int;
  p_sc : int;
}

let snapshot sim =
  let c = sim.Tb_sim.Sim.counters in
  {
    p_ms = Tb_sim.Clock.work_ms sim.Tb_sim.Sim.clock;
    p_dr = c.Counters.disk_reads;
    p_dw = c.Counters.disk_writes;
    p_ha = c.Counters.handle_allocs;
    p_ga = c.Counters.get_atts;
    p_cmp = c.Counters.comparisons;
    p_hi = c.Counters.hash_inserts;
    p_hp = c.Counters.hash_probes;
    p_sc = c.Counters.sort_comparisons;
  }

let deltas sim s0 =
  let c = sim.Tb_sim.Sim.counters in
  {
    Op.t_handles = c.Counters.handle_allocs - s0.p_ha;
    t_pages_read = c.Counters.disk_reads - s0.p_dr;
    t_pages_written = c.Counters.disk_writes - s0.p_dw;
    t_get_atts = c.Counters.get_atts - s0.p_ga;
    t_cmps = c.Counters.comparisons - s0.p_cmp;
    t_hash_ops =
      c.Counters.hash_inserts - s0.p_hi + c.Counters.hash_probes - s0.p_hp;
    t_sort_cmps = c.Counters.sort_comparisons - s0.p_sc;
    t_ms = Tb_sim.Clock.work_ms sim.Tb_sim.Sim.clock -. s0.p_ms;
  }

let run_explained db root ~keep =
  let sim = Database.sim db in
  Op.reset_frames root;
  let acct = Op.Acct.create sim root.Op.frame in
  let st = { db; acct } in
  let s0 = snapshot sim in
  let result = drive_materialize st root ~keep in
  Op.Acct.flush acct;
  (result, deltas sim s0)

let run db root ~keep = fst (run_explained db root ~keep)

(* --- sharded execution ---

   The root is a Gather over S Shard_lane subtrees.  Shard-local plans
   (selections, navigation joins, sort-merge — sound because placement
   colocates each provider with its patients) run one fork/join scope:
   lane s drives shard s's Materialize subtree on shard s's clock lane,
   then the join takes the max.  Exchange plans (the hash joins) run two
   scopes with a barrier between them: phase A harvests both sides on
   every source lane and routes rows by key hash through {!Exchange}
   (shipping charged on the source's lane), the join is the all-to-all
   barrier, then phase B builds and probes each destination's hash table
   on the destination's lane.  The Gather runs after the final join on
   the joined timeline: shipping each shard's partial result and the
   ordered-merge comparisons are the modeled merge cost that bends the
   speedup curve. *)

type failover = {
  fo_shard : int;  (** the shard that died *)
  fo_boundary : int;  (** 1-based exchange-boundary ordinal of the death *)
  fo_phase : string;  (** "local" | "route" | "dest" *)
  fo_ms : float;  (** detection + promotion + re-execution, lane time *)
}

type lane_report = {
  lane_ms : float array;  (** per-shard busy time inside the fork scopes *)
  merge_ms : float;  (** the Gather's own elapsed after the last join *)
  elapsed_ms : float;  (** simulated elapsed of the whole run (max + merge) *)
  critical : int;  (** the critical-path shard: argmax of [lane_ms] *)
  failovers : failover list;  (** replica promotions, in occurrence order *)
  degraded : bool;  (** completed with reduced replicas *)
}

(* Rebuild a shard-local subtree against a promoted replica: the only
   db-bound state an operator node carries is its Index_scan catalog
   entry, swapped for the replica's index over the same (cls, attr).
   Frames are SHARED with the original nodes, so the wasted first attempt
   and the re-execution accumulate into the same per-operator report and
   [Op.reconciles] stays exact. *)
let rec retarget db node =
  let re = retarget db in
  let kind =
    match node.Op.kind with
    | Op.Seq_scan _ as k -> k
    | Op.Index_scan { index; lo; hi } -> (
        let cls = index.Tb_store.Index_def.cls in
        let attr = index.Tb_store.Index_def.attr in
        match Database.find_index db ~cls ~attr with
        | Some index -> Op.Index_scan { index; lo; hi }
        | None ->
            invalid_arg
              (Printf.sprintf "Exec: replica lacks index %s.%s" cls attr))
    | Op.Sort_rids { child } -> Op.Sort_rids { child = re child }
    | Op.Fetch { child; cls; var; preds; covering; mode; batch } ->
        Op.Fetch { child = re child; cls; var; preds; covering; mode; batch }
    | Op.Nav_set { child; set_attr; owner_cls; nav_var; nav_cls; preds } ->
        Op.Nav_set
          { child = re child; set_attr; owner_cls; nav_var; nav_cls; preds }
    | Op.Nav_inverse { child; inv_attr; owner_cls; nav_var; nav_cls; preds } ->
        Op.Nav_inverse
          { child = re child; inv_attr; owner_cls; nav_var; nav_cls; preds }
    | Op.Harvest { child; key; cls; attrs; mode } ->
        Op.Harvest { child = re child; key; cls; attrs; mode }
    | Op.Hash_build { child } -> Op.Hash_build { child = re child }
    | Op.Spill_partition { child; partitions } ->
        Op.Spill_partition { child = re child; partitions }
    | Op.Hash_probe { build; probe; probe_key; probe_cls; build_var; probe_var }
      ->
        Op.Hash_probe
          {
            build = re build;
            probe = re probe;
            probe_key;
            probe_cls;
            build_var;
            probe_var;
          }
    | Op.Sort { child } -> Op.Sort { child = re child }
    | Op.Merge { left; right; left_var; right_var } ->
        Op.Merge { left = re left; right = re right; left_var; right_var }
    | Op.Project { child; select } -> Op.Project { child = re child; select }
    | Op.Materialize { child; aggregate } ->
        Op.Materialize { child = re child; aggregate }
    | Op.Shard_lane _ | Op.Exchange _ | Op.Gather _ ->
        invalid_arg "Exec: cannot retarget a sharding operator"
  in
  { Op.kind; frame = node.Op.frame; est = node.Op.est }

(* Promote until a replica passes its checksum walk (a refusing replica is
   consumed, so the loop advances); fail the query only when the shard has
   nothing left to promote. *)
let rec promote_replica smap ~shard =
  match Tb_store.Shard_map.promote smap ~shard with
  | Ok db -> db
  | Error msg ->
      if Tb_store.Shard_map.live_replicas smap shard <= 1 then
        failwith
          (Printf.sprintf "Exec: shard %d unrecoverable: %s" shard msg)
      else promote_replica smap ~shard

(* The per-lane pieces of an exchange (hash-join) plan. *)
type xlane = {
  xl_shard : int;
  xl_mat : Op.t;
  xl_proj : Op.t;
  xl_hp : Op.t;
  xl_hb : Op.t;
  xl_bex : Op.t;
  xl_bharv : Op.t;
  xl_pex : Op.t;
  xl_pharv : Op.t;
  xl_build_var : string;
  xl_probe_var : string;
}

let exchange_parts lane =
  match lane.Op.kind with
  | Op.Shard_lane { child = mat; shard; _ } -> (
      match mat.Op.kind with
      | Op.Materialize { child = proj; _ } -> (
          match proj.Op.kind with
          | Op.Project { child = hp; _ } -> (
              match hp.Op.kind with
              | Op.Hash_probe { build = hb; probe = pex; build_var; probe_var; _ }
                -> (
                  match (hb.Op.kind, pex.Op.kind) with
                  | ( Op.Hash_build { child = bex },
                      Op.Exchange { child = pharv; _ } ) -> (
                      match bex.Op.kind with
                      | Op.Exchange { child = bharv; _ } ->
                          Some
                            {
                              xl_shard = shard;
                              xl_mat = mat;
                              xl_proj = proj;
                              xl_hp = hp;
                              xl_hb = hb;
                              xl_bex = bex;
                              xl_bharv = bharv;
                              xl_pex = pex;
                              xl_pharv = pharv;
                              xl_build_var = build_var;
                              xl_probe_var = probe_var;
                            }
                      | _ -> None)
                  | _ -> None)
              | _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Phase B of an exchange plan: build the destination's table from the
   routed build rows, probe with the routed probe rows, project and
   materialize on this lane. *)
let run_exchange_dest acct db xl ~keep ~(bx : (Rid.t * Op.payload) Exchange.t)
    ~(px : (Rid.t * Op.payload) Exchange.t) =
  let sim = Database.sim db in
  let hb_fr = xl.xl_hb.Op.frame in
  let hp_fr = xl.xl_hp.Op.frame in
  let proj_fr = xl.xl_proj.Op.frame in
  let mat_fr = xl.xl_mat.Op.frame in
  let select, aggregate =
    match (xl.xl_proj.Op.kind, xl.xl_mat.Op.kind) with
    | Op.Project { select; _ }, Op.Materialize { aggregate; _ } ->
        (select, aggregate)
    | _ -> assert false
  in
  let table : Op.payload Mem_hash.t = Mem_hash.create sim in
  Fun.protect
    ~finally:(fun () ->
      hb_fr.Op.bytes <- max hb_fr.Op.bytes (Mem_hash.size_bytes table);
      Mem_hash.dispose table)
    (fun () ->
      Op.Acct.enter acct hb_fr;
      List.iter
        (fun (key, payload) ->
          hb_fr.Op.rows_in <- hb_fr.Op.rows_in + 1;
          Mem_hash.add table ~key
            ~payload_bytes:(Operators.payload_bytes payload)
            payload)
        (Exchange.take bx ~dest:xl.xl_shard);
      Exchange.release_dest bx ~dest:xl.xl_shard;
      let result = Query_result.create ?aggregate sim ~keep in
      (* The result survives the return — the gather owns it — but a raise
         while probing must not leak its claimed bytes: dispose on the
         unwind (the failover path then rebuilds on the replica). *)
      (match
         Op.Acct.enter acct hp_fr;
         List.iter
           (fun (key, pl) ->
             hp_fr.Op.rows_in <- hp_fr.Op.rows_in + 1;
             List.iter
               (fun bp ->
                 hp_fr.Op.rows_out <- hp_fr.Op.rows_out + 1;
                 Op.Acct.enter acct proj_fr;
                 proj_fr.Op.rows_in <- proj_fr.Op.rows_in + 1;
                 let lookup v =
                   if String.equal v xl.xl_build_var then Op.Stored bp
                   else if String.equal v xl.xl_probe_var then Op.Stored pl
                   else invalid_arg ("Exec: unknown var " ^ v)
                 in
                 let v = Operators.eval_select db select ~lookup in
                 proj_fr.Op.rows_out <- proj_fr.Op.rows_out + 1;
                 Op.Acct.enter acct mat_fr;
                 mat_fr.Op.rows_in <- mat_fr.Op.rows_in + 1;
                 Query_result.append result v;
                 mat_fr.Op.rows_out <- mat_fr.Op.rows_out + 1;
                 Op.Acct.enter acct hp_fr)
               (Mem_hash.find table ~key))
           (Exchange.take px ~dest:xl.xl_shard);
         Exchange.release_dest px ~dest:xl.xl_shard;
         Op.Acct.enter acct mat_fr;
         mat_fr.Op.bytes <- Query_result.size_bytes result
       with
      | () -> ()
      | exception e ->
          Query_result.dispose result;
          raise e);
      result)

let run_sharded_explained smap root ~keep =
  let sim = Tb_store.Shard_map.sim smap in
  let clock = sim.Tb_sim.Sim.clock in
  Op.reset_frames root;
  let lanes, shards, ordered, gfr =
    match root.Op.kind with
    | Op.Gather { lanes; shards; ordered; _ } ->
        (lanes, shards, ordered, root.Op.frame)
    | _ -> invalid_arg "Exec: sharded operator tree root must be Gather"
  in
  if Array.length lanes <> shards then
    invalid_arg "Exec: Gather lane count does not match shard count";
  let acct = Op.Acct.create sim gfr in
  let s0 = snapshot sim in
  let now0 = Tb_sim.Clock.now_ms clock in
  let lane_ms = Array.make shards 0.0 in
  let failovers = ref [] in
  let fault_of s = Tb_store.Shard_map.fault smap s in
  (* A shard died at an exchange boundary on the current lane: charge the
     detection timeout, promote its next replica (WAL catch-up + checksum
     walk, charged by Shard_map), then [resume] against it.  Everything
     lands on the lane's clock lane attributed to the Shard_lane frame, so
     a failover stretches the critical path exactly when its shard sits on
     it.  The dying fault layer is read *before* promotion clears it — the
     boundary ordinal is the chaos sweep's kill-point coordinate. *)
  let failover ~shard ~phase ~lane_fr resume =
    let t0 = Tb_sim.Clock.work_ms clock in
    let boundary =
      match fault_of shard with
      | Some f -> Tb_storage.Fault.boundaries_seen f
      | None -> 0
    in
    Op.Acct.enter acct lane_fr;
    Exchange.detect_failure sim;
    let db = promote_replica smap ~shard in
    let r = resume db in
    let fo_ms = Tb_sim.Clock.work_ms clock -. t0 in
    failovers :=
      { fo_shard = shard; fo_boundary = boundary; fo_phase = phase; fo_ms }
      :: !failovers;
    r
  in
  let xls = Array.map exchange_parts lanes in
  let partials =
    if Array.for_all Option.is_some xls then begin
      (* Exchange plan: phase A routes both sides source-by-source, the
         join is the all-to-all barrier, phase B joins per destination.
         Boundaries: one before a source routes, one after both its sides
         flushed (phase A), one before a destination builds (phase B) —
         in phase A a failover drops the dead source's partial traffic
         from both buffers and re-routes from the replica; in phase B the
         routed rows are all still intact, so the replica only re-runs
         the destination's build/probe. *)
      let xls = Array.map Option.get xls in
      let bx : (Rid.t * Op.payload) Exchange.t =
        Exchange.create ~fault_of sim ~shards
      in
      (* Nested protects, one per exchange: with a single shared finally,
         the second [create] raising — or the first dispose unwinding past
         the second — would leak the survivor's claimed buffers. *)
      Fun.protect ~finally:(fun () -> Exchange.dispose bx) @@ fun () ->
      let px : (Rid.t * Op.payload) Exchange.t =
        Exchange.create ~fault_of sim ~shards
      in
      Fun.protect ~finally:(fun () -> Exchange.dispose px) @@ fun () ->
      let scope_a = Tb_sim.Clock.fork clock ~lanes:shards in
          Array.iteri
            (fun i xl ->
              Tb_sim.Clock.enter_lane scope_a i;
              let shard = xl.xl_shard in
              let route db (ex_fr : Op.frame) buf harv =
                let st = { db; acct } in
                iter_kvs st harv (fun (key, payload) ->
                    Op.Acct.enter acct ex_fr;
                    ex_fr.Op.rows_in <- ex_fr.Op.rows_in + 1;
                    let key = Exchange.retag ~shard key in
                    ex_fr.Op.rows_out <- ex_fr.Op.rows_out + 1;
                    Exchange.send buf ~src:shard
                      ~dest:(Exchange.dest_of buf key)
                      ~bytes:(Operators.payload_bytes payload + Rid.on_disk_bytes)
                      (key, payload));
                Op.Acct.enter acct ex_fr;
                Exchange.flush_source buf ~src:shard
              in
              let route_both db bharv pharv =
                route db xl.xl_bex.Op.frame bx bharv;
                route db xl.xl_pex.Op.frame px pharv
              in
              try
                Exchange.boundary sim (fault_of shard);
                route_both
                  (Tb_store.Shard_map.shard smap shard)
                  xl.xl_bharv xl.xl_pharv;
                Exchange.boundary sim (fault_of shard)
              with Tb_storage.Fault.Shard_down s when s = shard ->
                failover ~shard ~phase:"route" ~lane_fr:lanes.(i).Op.frame
                  (fun db ->
                    Exchange.drop_source bx ~src:shard;
                    Exchange.drop_source px ~src:shard;
                    route_both db
                      (retarget db xl.xl_bharv)
                      (retarget db xl.xl_pharv)))
            xls;
          Tb_sim.Clock.join scope_a;
          let scope_b = Tb_sim.Clock.fork clock ~lanes:shards in
          let partials =
            Array.mapi
              (fun i xl ->
                Tb_sim.Clock.enter_lane scope_b i;
                let shard = xl.xl_shard in
                try
                  Exchange.boundary sim (fault_of shard);
                  let db = Tb_store.Shard_map.shard smap shard in
                  run_exchange_dest acct db xl ~keep ~bx ~px
                with Tb_storage.Fault.Shard_down s when s = shard ->
                  failover ~shard ~phase:"dest" ~lane_fr:lanes.(i).Op.frame
                    (fun db -> run_exchange_dest acct db xl ~keep ~bx ~px))
              xls
          in
          Array.iteri
            (fun i _ ->
              lane_ms.(i) <-
                Tb_sim.Clock.lane_ms scope_a i +. Tb_sim.Clock.lane_ms scope_b i)
            lane_ms;
          Tb_sim.Clock.join scope_b;
          partials
    end
    else begin
      (* Shard-local plan: one scope, each lane drives its own subtree.
         Boundaries: dispatch (before the drive) and pre-ship (after it,
         still inside the lane).  A pre-ship death abandons the finished
         partial — its rows die with the shard — and the replica redoes
         the whole subtree, which is exactly the re-execution the elapsed
         model should see. *)
      let scope = Tb_sim.Clock.fork clock ~lanes:shards in
      let partials =
        Array.mapi
          (fun i lane ->
            match lane.Op.kind with
            | Op.Shard_lane { child; shard; _ } ->
                Tb_sim.Clock.enter_lane scope i;
                let lfr = lane.Op.frame in
                let finish r =
                  lfr.Op.rows_out <- Query_result.count r;
                  r
                in
                let drive db node =
                  let st = { db; acct } in
                  drive_materialize st node ~keep
                in
                (try
                   Exchange.boundary sim (fault_of shard);
                   let r = drive (Tb_store.Shard_map.shard smap shard) child in
                   (try Exchange.boundary sim (fault_of shard)
                    with e ->
                      Query_result.dispose r;
                      raise e);
                   finish r
                 with Tb_storage.Fault.Shard_down s when s = shard ->
                   failover ~shard ~phase:"local" ~lane_fr:lfr (fun db ->
                       finish (drive db (retarget db child))))
            | _ -> invalid_arg "Exec: Gather lanes must be Shard_lane")
          lanes
      in
      Array.iteri
        (fun i _ -> lane_ms.(i) <- Tb_sim.Clock.lane_ms scope i)
        lane_ms;
      Tb_sim.Clock.join scope;
      partials
    end
  in
  (* The gather itself, on the joined timeline: ship every shard's partial
     to the coordinator, merge charge-free ([Query_result.absorb]), and
     pay the tournament comparisons when order must be preserved. *)
  Op.Acct.enter acct gfr;
  let merge0 = Tb_sim.Clock.now_ms clock in
  let total = partials.(0) in
  Array.iteri
    (fun i p ->
      gfr.Op.rows_in <- gfr.Op.rows_in + Query_result.rows_seen p;
      Exchange.ship_partial sim ~bytes:(Query_result.size_bytes p);
      if i > 0 then Query_result.absorb total p)
    partials;
  if ordered then
    Exchange.merge_ordered sim ~rows:(Query_result.rows_seen total)
      ~streams:shards;
  gfr.Op.rows_out <- Query_result.count total;
  gfr.Op.bytes <- Query_result.size_bytes total;
  Op.Acct.flush acct;
  let now1 = Tb_sim.Clock.now_ms clock in
  let critical = ref 0 in
  Array.iteri
    (fun i ms -> if ms > lane_ms.(!critical) then critical := i)
    lane_ms;
  let failovers = List.rev !failovers in
  ( total,
    deltas sim s0,
    {
      lane_ms;
      merge_ms = now1 -. merge0;
      elapsed_ms = now1 -. now0;
      critical = !critical;
      failovers;
      degraded = (match failovers with [] -> false | _ :: _ -> true);
    } )

(* --- validate: reconcile estimates against accounted frames --- *)

type est_check = {
  ec_label : string;
  ec_key : string;
  ec_est_ms : float;
  ec_actual_ms : float;
  ec_q : float;
  ec_fed_back : bool;
}

(* The fourth optimizer stage: after a run, compare every operator's
   estimate against the ms its accounted frame actually accrued.  Operators
   whose q-error exceeds [threshold] feed a correction back into the stat
   catalog — [Stat_catalog.observe] rescales that operator's key so the
   next optimization of the same logical query estimates it exactly.  The
   walk only reads frames; it never charges. *)
let validate ?(threshold = 2.0) ~stats root =
  let checks = ref [] in
  Op.iter
    (fun n ->
      match Op.Est.get n with
      | None -> ()
      | Some e ->
          let actual = n.Op.frame.Op.ms in
          let q = Op.Est.q ~est:e.Op.est_ms ~actual in
          let fed = q > threshold in
          if fed then
            Tb_statcore.Stat_catalog.observe stats ~key:(Estimate.est_key n)
              ~est_ms:e.Op.est_ms ~actual_ms:actual;
          checks :=
            {
              ec_label = Op.label n;
              ec_key = Estimate.est_key n;
              ec_est_ms = e.Op.est_ms;
              ec_actual_ms = actual;
              ec_q = q;
              ec_fed_back = fed;
            }
            :: !checks)
    root;
  List.rev !checks

let worst_q checks =
  List.fold_left (fun acc c -> Float.max acc c.ec_q) 1.0 checks
