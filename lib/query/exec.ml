module Value = Tb_store.Value
module Database = Tb_store.Database
module Handle = Tb_store.Handle
module Btree = Tb_store.Btree
module Rid = Tb_storage.Rid
module Sim = Tb_sim.Sim

(* A join side is visible either as a live Handle or as information stowed
   in a hash table: "We always store in the hash tables the elements needed
   to construct f(p, pa)" (Section 5). *)
type source = Live of Handle.t | Stored of payload
and payload = { self : Rid.t; attrs : (string * Value.t) list }

let payload_bytes p =
  List.fold_left
    (fun acc (_, v) -> acc + 4 + Tb_store.Codec.encoded_size v)
    Rid.on_disk_bytes p.attrs

(* Attribute names are resolved to schema slots once per plan; the per-row
   work below (predicate evaluation, payload harvest, inverse navigation)
   is then an integer-indexed load instead of a string lookup. *)
type compiled_pred = { pslot : int; pcmp : Oql_ast.cmp; pconst : Value.t }

let compile_preds db ~cls preds =
  List.map
    (fun { Plan.attr; cmp; const } ->
      { pslot = Database.attr_slot db ~cls attr; pcmp = cmp; pconst = const })
    preds

(* [(name, slot)] for the attributes [select] needs from a side. *)
let compile_needed db ~cls needed =
  let attrs, _self = needed in
  List.map (fun a -> (a, Database.attr_slot db ~cls a)) attrs

(* Harvest exactly the attributes [select] needs from a live Handle. *)
let make_payload db h ~slots =
  {
    self = h.Handle.rid;
    attrs = List.map (fun (a, slot) -> (a, Database.get_att_slot db h slot)) slots;
  }

let eval_select db select ~lookup =
  let rec ev = function
    | Oql_ast.Const lit -> Oql_ast.literal_to_value lit
    | Oql_ast.Var v -> (
        match lookup v with
        | Live h -> Value.Ref h.Handle.rid
        | Stored p -> Value.Ref p.self)
    | Oql_ast.Path (v, attr) -> (
        match lookup v with
        | Live h -> Database.get_att db h attr
        | Stored p -> (
            match List.assoc_opt attr p.attrs with
            | Some x -> x
            | None -> invalid_arg ("Exec: attribute " ^ attr ^ " not stowed")))
    | Oql_ast.Mk_tuple fields -> Value.Tuple (List.map (fun (n, e) -> (n, ev e)) fields)
  in
  ev select

let eval_preds db h preds =
  List.for_all
    (fun { pslot; pcmp; pconst } ->
      Sim.charge_compare (Database.sim db) 1;
      Oql_ast.eval_cmp pcmp (Database.get_att_slot db h pslot) pconst)
    preds

(* Iterate the Rids an access path yields, in its natural order. Residual
   predicates are NOT applied here — the caller owns Handle traffic. *)
let iter_access db access f =
  match access with
  | Plan.Seq_scan { cls; _ } -> Database.scan_extent db ~cls f
  | Plan.Index_scan { index; lo; hi; sorted; _ } ->
      let tree = index.Tb_store.Index_def.tree in
      if not sorted then Btree.range tree ?lo ?hi (fun _ rid -> f rid)
      else begin
        (* Figure 8 right: collect the matching Rids, sort them so the
           fetches become (at worst) one sequential sweep. *)
        let sim = Database.sim db in
        let rids = ref [] in
        let n = ref 0 in
        Btree.range tree ?lo ?hi (fun _ rid ->
            rids := rid :: !rids;
            incr n);
        let claim = !n * Rid.on_disk_bytes in
        Sim.claim_bytes sim claim;
        Sim.charge_sort sim !n;
        let arr = Array.of_list !rids in
        Array.sort Rid.compare arr;
        Array.iter f arr;
        Sim.release_bytes sim claim
      end

let access_preds = function
  | Plan.Seq_scan { preds; _ } -> preds
  | Plan.Index_scan { residual; _ } -> residual

(* Whether a side must be materialized at all: an index-covered side whose
   predicates are fully absorbed and that contributes only its identity to
   the result can skip Handles entirely (Section 5's remark that navigation
   needs not read patients when returning objects). *)
let needs_handle ~residual ~needed =
  let attrs, _ = needed in
  match (residual, attrs) with [], [] -> false | _ -> true

(* --- Selection (Figure 8) --- *)

let run_selection db ~keep ~var ~cls ~access ~select ~aggregate =
  let sim = Database.sim db in
  let result = Query_result.create ?aggregate sim ~keep in
  let preds = compile_preds db ~cls (access_preds access) in
  let needed = Plan.needed_attrs var select in
  let lookup h v =
    if String.equal v var then Live h else invalid_arg ("Exec: unknown var " ^ v)
  in
  iter_access db access (fun rid ->
      if needs_handle ~residual:preds ~needed then begin
        let h = Database.acquire db rid in
        if eval_preds db h preds then
          Query_result.append result (eval_select db select ~lookup:(lookup h));
        Database.unref db h
      end
      else begin
        (* Identity-only projection under a covering index: no Handle. *)
        let stored v =
          if String.equal v var then Stored { self = rid; attrs = [] }
          else invalid_arg ("Exec: unknown var " ^ v)
        in
        Query_result.append result (eval_select db select ~lookup:stored)
      end);
  result

(* --- The four join algorithms (Section 5.1) --- *)

let require_inv = function
  | Some attr -> attr
  | None ->
      raise
        (Plan.Unsupported
           "this algorithm navigates child-to-parent but the schema declares \
            no inverse reference")

(* Parent-to-child navigation. Only the parent access path may use an
   index; children are reached through the parent's collection. *)
let run_nl db ~keep ~parent_var ~parent_cls ~child_var ~child_cls ~set_attr
    ~parent_access ~child_preds ~select ~aggregate =
  let sim = Database.sim db in
  let result = Query_result.create ?aggregate sim ~keep in
  let p_preds = compile_preds db ~cls:parent_cls (access_preds parent_access) in
  let c_preds = compile_preds db ~cls:child_cls child_preds in
  let set_slot = Database.attr_slot db ~cls:parent_cls set_attr in
  let lookup ph ch v =
    if String.equal v parent_var then Live ph
    else if String.equal v child_var then Live ch
    else invalid_arg ("Exec: unknown var " ^ v)
  in
  iter_access db parent_access (fun prid ->
      let ph = Database.acquire db prid in
      if eval_preds db ph p_preds then begin
        let clients = Database.get_att_slot db ph set_slot in
        Database.iter_set db clients (fun elt ->
            match elt with
            | Value.Ref crid ->
                let ch = Database.acquire db crid in
                if eval_preds db ch c_preds then
                  Query_result.append result
                    (eval_select db select ~lookup:(lookup ph ch));
                Database.unref db ch
            | Value.Nil -> ()
            | _ -> invalid_arg "Exec: collection element is not a reference")
      end;
      Database.unref db ph);
  result

(* Child-to-parent navigation: "the join is hidden within the navigation
   pattern".  Only the child access path may use an index; the parent
   condition is tested once per child. *)
let run_nojoin db ~keep ~parent_var ~parent_cls ~child_var ~child_cls
    ~inv_attr ~parent_preds ~child_access ~select ~aggregate =
  let sim = Database.sim db in
  let result = Query_result.create ?aggregate sim ~keep in
  let c_preds = compile_preds db ~cls:child_cls (access_preds child_access) in
  let p_preds = compile_preds db ~cls:parent_cls parent_preds in
  let inv_slot = Database.attr_slot db ~cls:child_cls (require_inv inv_attr) in
  let lookup ph ch v =
    if String.equal v parent_var then Live ph
    else if String.equal v child_var then Live ch
    else invalid_arg ("Exec: unknown var " ^ v)
  in
  iter_access db child_access (fun crid ->
      let ch = Database.acquire db crid in
      if eval_preds db ch c_preds then begin
        match Database.get_att_slot db ch inv_slot with
        | Value.Ref prid ->
            let ph = Database.acquire db prid in
            if eval_preds db ph p_preds then
              Query_result.append result
                (eval_select db select ~lookup:(lookup ph ch));
            Database.unref db ph
        | Value.Nil -> ()
        | _ -> invalid_arg "Exec: inverse attribute is not a reference"
      end;
      Database.unref db ch);
  result

(* Hash the parents, probe with the children. Both access paths may use
   indexes and both collections are read sequentially. *)
let run_phj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls ~inv_attr
    ~parent_access ~child_access ~select ~aggregate =
  let sim = Database.sim db in
  let result = Query_result.create ?aggregate sim ~keep in
  let p_preds = compile_preds db ~cls:parent_cls (access_preds parent_access) in
  let c_preds = compile_preds db ~cls:child_cls (access_preds child_access) in
  let inv_slot = Database.attr_slot db ~cls:child_cls (require_inv inv_attr) in
  let slots_p =
    compile_needed db ~cls:parent_cls (Plan.needed_attrs parent_var select)
  in
  let table : payload Mem_hash.t = Mem_hash.create sim in
  iter_access db parent_access (fun prid ->
      let ph = Database.acquire db prid in
      if eval_preds db ph p_preds then begin
        let payload = make_payload db ph ~slots:slots_p in
        Mem_hash.add table ~key:prid ~payload_bytes:(payload_bytes payload) payload
      end;
      Database.unref db ph);
  let lookup pp ch v =
    if String.equal v parent_var then Stored pp
    else if String.equal v child_var then Live ch
    else invalid_arg ("Exec: unknown var " ^ v)
  in
  iter_access db child_access (fun crid ->
      let ch = Database.acquire db crid in
      if eval_preds db ch c_preds then begin
        match Database.get_att_slot db ch inv_slot with
        | Value.Ref prid ->
            List.iter
              (fun pp ->
                Query_result.append result
                  (eval_select db select ~lookup:(lookup pp ch)))
              (Mem_hash.find table ~key:prid)
        | Value.Nil -> ()
        | _ -> invalid_arg "Exec: inverse attribute is not a reference"
      end;
      Database.unref db ch);
  Mem_hash.dispose table;
  result

(* Hash the children by their parent reference, probe with the parents.
   The paper's variation of the pointer-based join: because the table is
   keyed by parent identity, the provider collection is scanned
   sequentially instead of being fetched in hash order. *)
let run_chj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls ~inv_attr
    ~parent_access ~child_access ~select ~aggregate =
  let sim = Database.sim db in
  let result = Query_result.create ?aggregate sim ~keep in
  let p_preds = compile_preds db ~cls:parent_cls (access_preds parent_access) in
  let c_preds = compile_preds db ~cls:child_cls (access_preds child_access) in
  let inv_slot = Database.attr_slot db ~cls:child_cls (require_inv inv_attr) in
  let slots_c =
    compile_needed db ~cls:child_cls (Plan.needed_attrs child_var select)
  in
  let table : payload Mem_hash.t = Mem_hash.create sim in
  iter_access db child_access (fun crid ->
      let ch = Database.acquire db crid in
      if eval_preds db ch c_preds then begin
        match Database.get_att_slot db ch inv_slot with
        | Value.Ref prid ->
            let payload = make_payload db ch ~slots:slots_c in
            Mem_hash.add table ~key:prid
              ~payload_bytes:(payload_bytes payload)
              payload
        | Value.Nil -> ()
        | _ -> invalid_arg "Exec: inverse attribute is not a reference"
      end;
      Database.unref db ch);
  let lookup ph cp v =
    if String.equal v parent_var then Live ph
    else if String.equal v child_var then Stored cp
    else invalid_arg ("Exec: unknown var " ^ v)
  in
  iter_access db parent_access (fun prid ->
      let ph = Database.acquire db prid in
      if eval_preds db ph p_preds then
        List.iter
          (fun cp ->
            Query_result.append result (eval_select db select ~lookup:(lookup ph cp)))
          (Mem_hash.find table ~key:prid);
      Database.unref db ph);
  Mem_hash.dispose table;
  result

(* --- spilled partitions (hybrid hashing, DeWitt/Katz/Olken-style) --- *)

(* A spilled payload travels as an encoded tuple whose first field is the
   join key. *)
let spill_record ~key payload =
  Tb_store.Codec.encode
    (Value.Tuple
       (("@key", Value.Ref key)
       :: ("@self", Value.Ref payload.self)
       :: payload.attrs))

let unspill_record body =
  match Tb_store.Codec.decode_exn body with
  | Value.Tuple (("@key", Value.Ref key) :: ("@self", Value.Ref self) :: attrs)
    ->
      (key, { self; attrs })
  | _ -> invalid_arg "Exec: corrupt spill record"

let new_spill_file db = Tb_storage.Heap_file.create_temp (Database.stack db)

(* Hybrid hash join.  The build side is split into [partitions] buckets by
   key hash: bucket 0 is joined in memory on the fly, the others are
   written to temporary files on both sides and joined bucket by bucket.
   Disk traffic replaces the swap thrash of the in-memory algorithms: the
   fix the paper points at ("the need for hybrid hashing") but never
   measured. *)
let run_hybrid db ~keep ~aggregate
    ~build:(build_access, build_key, build_slots, build_preds)
    ~probe:(probe_access, probe_key, probe_slots, probe_preds) ~partitions ~emit =
  let sim = Database.sim db in
  let result = Query_result.create ?aggregate sim ~keep in
  let partitions = max 1 partitions in
  let bucket key = Rid.hash key mod partitions in
  let table : payload Mem_hash.t = Mem_hash.create sim in
  let build_spill = Array.init (max 0 (partitions - 1)) (fun _ -> new_spill_file db) in
  let probe_spill = Array.init (max 0 (partitions - 1)) (fun _ -> new_spill_file db) in
  (* Build pass. *)
  iter_access db build_access (fun rid ->
      let h = Database.acquire db rid in
      if eval_preds db h build_preds then begin
        match build_key h with
        | Some key ->
            let payload = make_payload db h ~slots:build_slots in
            if bucket key = 0 then
              Mem_hash.add table ~key ~payload_bytes:(payload_bytes payload)
                payload
            else
              ignore
                (Tb_storage.Heap_file.insert
                   build_spill.(bucket key - 1)
                   (spill_record ~key payload))
        | None -> ()
      end;
      Database.unref db h);
  (* Probe pass: bucket 0 joins immediately, the rest spill. *)
  iter_access db probe_access (fun rid ->
      let h = Database.acquire db rid in
      if eval_preds db h probe_preds then begin
        match probe_key h with
        | Some key ->
            if bucket key = 0 then
              List.iter
                (fun bp -> emit result bp (make_payload db h ~slots:probe_slots))
                (Mem_hash.find table ~key)
            else
              ignore
                (Tb_storage.Heap_file.insert
                   probe_spill.(bucket key - 1)
                   (spill_record ~key (make_payload db h ~slots:probe_slots)))
        | None -> ()
      end;
      Database.unref db h);
  Mem_hash.dispose table;
  (* Spilled buckets, one at a time: each fits memory by construction. *)
  for b = 0 to partitions - 2 do
    let table : payload Mem_hash.t = Mem_hash.create sim in
    Tb_storage.Heap_file.scan build_spill.(b) (fun _ body ->
        let key, payload = unspill_record body in
        Mem_hash.add table ~key ~payload_bytes:(payload_bytes payload) payload);
    Tb_storage.Heap_file.scan probe_spill.(b) (fun _ body ->
        let key, payload = unspill_record body in
        List.iter (fun bp -> emit result bp payload) (Mem_hash.find table ~key));
    Mem_hash.dispose table
  done;
  result

let key_of_inverse db inv_slot h =
  match Database.get_att_slot db h inv_slot with
  | Value.Ref prid -> Some prid
  | Value.Nil -> None
  | _ -> invalid_arg "Exec: inverse attribute is not a reference"

let run_phhj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls ~inv_attr
    ~parent_access ~child_access ~partitions ~select ~aggregate =
  let inv_slot = Database.attr_slot db ~cls:child_cls (require_inv inv_attr) in
  let p_preds = compile_preds db ~cls:parent_cls (access_preds parent_access) in
  let c_preds = compile_preds db ~cls:child_cls (access_preds child_access) in
  let slots_p =
    compile_needed db ~cls:parent_cls (Plan.needed_attrs parent_var select)
  in
  let slots_c =
    compile_needed db ~cls:child_cls (Plan.needed_attrs child_var select)
  in
  let lookup pp cp v =
    if String.equal v parent_var then Stored pp
    else if String.equal v child_var then Stored cp
    else invalid_arg ("Exec: unknown var " ^ v)
  in
  let emit result pp cp =
    Query_result.append result (eval_select db select ~lookup:(lookup pp cp))
  in
  run_hybrid db ~keep ~aggregate
    ~build:(parent_access, (fun h -> Some h.Handle.rid), slots_p, p_preds)
    ~probe:(child_access, key_of_inverse db inv_slot, slots_c, c_preds)
    ~partitions ~emit

let run_chhj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls ~inv_attr
    ~parent_access ~child_access ~partitions ~select ~aggregate =
  let inv_slot = Database.attr_slot db ~cls:child_cls (require_inv inv_attr) in
  let p_preds = compile_preds db ~cls:parent_cls (access_preds parent_access) in
  let c_preds = compile_preds db ~cls:child_cls (access_preds child_access) in
  let slots_p =
    compile_needed db ~cls:parent_cls (Plan.needed_attrs parent_var select)
  in
  let slots_c =
    compile_needed db ~cls:child_cls (Plan.needed_attrs child_var select)
  in
  let lookup cp pp v =
    if String.equal v parent_var then Stored pp
    else if String.equal v child_var then Stored cp
    else invalid_arg ("Exec: unknown var " ^ v)
  in
  let emit result cp pp =
    Query_result.append result (eval_select db select ~lookup:(lookup cp pp))
  in
  run_hybrid db ~keep ~aggregate
    ~build:(child_access, key_of_inverse db inv_slot, slots_c, c_preds)
    ~probe:(parent_access, (fun h -> Some h.Handle.rid), slots_p, p_preds)
    ~partitions ~emit

(* --- pointer-based sort-merge join --- *)

(* External-sort accounting: [n log n] comparisons, plus write+read passes
   when the run does not fit in memory. *)
let charge_external_sort sim ~elems ~bytes =
  Sim.charge_sort sim elems;
  let avail = Tb_sim.Cost_model.available_bytes sim.Sim.cost in
  if bytes > avail && avail > 0 then begin
    let fan_in = 8.0 in
    let passes =
      int_of_float
        (ceil (log (float_of_int bytes /. float_of_int avail) /. log fan_in))
    in
    let pages = (bytes / sim.Sim.cost.Tb_sim.Cost_model.page_size) + 1 in
    for _ = 1 to max 1 passes * pages do
      Sim.charge_disk_write sim;
      Sim.charge_disk_read sim
    done
  end

let run_smj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls ~inv_attr
    ~parent_access ~child_access ~select ~aggregate =
  let sim = Database.sim db in
  let result = Query_result.create ?aggregate sim ~keep in
  let inv_slot = Database.attr_slot db ~cls:child_cls (require_inv inv_attr) in
  let p_preds = compile_preds db ~cls:parent_cls (access_preds parent_access) in
  let c_preds = compile_preds db ~cls:child_cls (access_preds child_access) in
  let slots_p =
    compile_needed db ~cls:parent_cls (Plan.needed_attrs parent_var select)
  in
  let slots_c =
    compile_needed db ~cls:child_cls (Plan.needed_attrs child_var select)
  in
  let gather access preds key_of slots =
    let acc = ref [] in
    let bytes = ref 0 in
    iter_access db access (fun rid ->
        let h = Database.acquire db rid in
        if eval_preds db h preds then begin
          match key_of h with
          | Some key ->
              let payload = make_payload db h ~slots in
              acc := (key, payload) :: !acc;
              bytes := !bytes + payload_bytes payload
        | None -> ()
        end;
        Database.unref db h);
    Sim.claim_bytes sim !bytes;
    let arr = Array.of_list !acc in
    charge_external_sort sim ~elems:(Array.length arr) ~bytes:!bytes;
    Array.sort (fun (a, _) (b, _) -> Rid.compare a b) arr;
    (arr, !bytes)
  in
  let parents, p_bytes =
    gather parent_access p_preds (fun h -> Some h.Handle.rid) slots_p
  in
  let children, c_bytes =
    gather child_access c_preds (key_of_inverse db inv_slot) slots_c
  in
  (* Runs that do not fit in memory together are streamed through disk once
     more (write out, read back for the merge). *)
  if Sim.excess_ratio sim > 0.0 then begin
    let pages =
      ((p_bytes + c_bytes) / sim.Sim.cost.Tb_sim.Cost_model.page_size) + 1
    in
    for _ = 1 to pages do
      Sim.charge_disk_write sim;
      Sim.charge_disk_read sim
    done
  end;
  (* Merge: parents' keys are unique (their own rids). *)
  let lookup pp cp v =
    if String.equal v parent_var then Stored pp
    else if String.equal v child_var then Stored cp
    else invalid_arg ("Exec: unknown var " ^ v)
  in
  let np = Array.length parents and nc = Array.length children in
  let i = ref 0 in
  for j = 0 to nc - 1 do
    let ckey, cp = children.(j) in
    while !i < np && Rid.compare (fst parents.(!i)) ckey < 0 do
      Sim.charge_compare sim 1;
      incr i
    done;
    Sim.charge_compare sim 1;
    if !i < np && Rid.equal (fst parents.(!i)) ckey then
      Query_result.append result
        (eval_select db select ~lookup:(lookup (snd parents.(!i)) cp))
  done;
  Sim.release_bytes sim (p_bytes + c_bytes);
  result

let run db plan ~keep =
  match plan with
  | Plan.Selection { var; cls; access; select; aggregate } ->
      run_selection db ~keep ~var ~cls ~access ~select ~aggregate
  | Plan.Hier_join
      {
        algo;
        parent_var;
        parent_cls;
        child_var;
        child_cls;
        set_attr;
        inv_attr;
        parent_access;
        child_access;
        partitions;
        select;
        aggregate;
      } -> (
      match algo with
      | Plan.NL ->
          (* NL cannot use the child index: fold the child side's window
             and residual back into plain predicates. *)
          let child_preds =
            match child_access with
            | Plan.Seq_scan { preds; _ } -> preds
            | Plan.Index_scan _ ->
                invalid_arg "Exec: NL child access must be a scan"
          in
          run_nl db ~keep ~parent_var ~parent_cls ~child_var ~child_cls
            ~set_attr ~parent_access ~child_preds ~select ~aggregate
      | Plan.NOJOIN ->
          let parent_preds =
            match parent_access with
            | Plan.Seq_scan { preds; _ } -> preds
            | Plan.Index_scan _ ->
                invalid_arg "Exec: NOJOIN parent access must be a scan"
          in
          run_nojoin db ~keep ~parent_var ~parent_cls ~child_var ~child_cls
            ~inv_attr ~parent_preds ~child_access ~select ~aggregate
      | Plan.PHJ ->
          run_phj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls
            ~inv_attr ~parent_access ~child_access ~select ~aggregate
      | Plan.CHJ ->
          run_chj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls
            ~inv_attr ~parent_access ~child_access ~select ~aggregate
      | Plan.PHHJ ->
          run_phhj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls
            ~inv_attr ~parent_access ~child_access ~partitions ~select
            ~aggregate
      | Plan.CHHJ ->
          run_chhj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls
            ~inv_attr ~parent_access ~child_access ~partitions ~select
            ~aggregate
      | Plan.SMJ ->
          run_smj db ~keep ~parent_var ~parent_cls ~child_var ~child_cls
            ~inv_attr ~parent_access ~child_access ~select ~aggregate)
