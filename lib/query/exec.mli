(** The physical-plan interpreter.

    One recursive walk drives the operator tree {!Planner.lower} builds,
    pushing rows bottom-up through emit callbacks so the charge order —
    Handle lifetimes, page-fetch interleaving, hash and sort traffic — is
    identical to the monolithic per-algorithm drivers this replaced.

    Charge discipline (treelint R1): this module never charges the cost
    model itself; all charges happen inside the engine components and the
    {!Operators} kernels it calls.  The interpreter only switches the
    accounting frame ({!Op.Acct.enter}) so charges land on the operator
    responsible for them. *)

(** [run db root ~keep] executes the tree.  The root must be
    {!Op.Materialize}; frames are reset first, so a tree can be run
    repeatedly.  Raises [Invalid_argument] on malformed trees (the planner
    never builds one). *)
val run : Tb_store.Database.t -> Op.t -> keep:bool -> Query_result.t

(** Like {!run}, but also returns the run's global counter deltas in
    explain-report shape.  [Op.reconciles ~global root] must hold
    afterwards: per-operator frames sum exactly to these totals. *)
val run_explained :
  Tb_store.Database.t -> Op.t -> keep:bool -> Query_result.t * Op.totals
