(** The physical-plan interpreter.

    One recursive walk drives the operator tree {!Planner.lower} builds,
    pushing rows bottom-up through emit callbacks so the charge order —
    Handle lifetimes, page-fetch interleaving, hash and sort traffic — is
    identical to the monolithic per-algorithm drivers this replaced.

    Charge discipline (treelint R1): this module never charges the cost
    model itself; all charges happen inside the engine components and the
    {!Operators} kernels it calls.  The interpreter only switches the
    accounting frame ({!Op.Acct.enter}) so charges land on the operator
    responsible for them. *)

(** [run db root ~keep] executes the tree.  The root must be
    {!Op.Materialize}; frames are reset first, so a tree can be run
    repeatedly.  Raises [Invalid_argument] on malformed trees (the planner
    never builds one). *)
val run : Tb_store.Database.t -> Op.t -> keep:bool -> Query_result.t

(** Like {!run}, but also returns the run's global counter deltas in
    explain-report shape.  [Op.reconciles ~global root] must hold
    afterwards: per-operator frames sum exactly to these totals. *)
val run_explained :
  Tb_store.Database.t -> Op.t -> keep:bool -> Query_result.t * Op.totals

(** One mid-query replica promotion: which shard died, at which 1-based
    exchange-boundary ordinal, in which phase (["local"] for shard-local
    plans, ["route"] / ["dest"] for the two exchange phases), and how much
    lane time the detection + promotion + re-execution cost. *)
type failover = {
  fo_shard : int;
  fo_boundary : int;
  fo_phase : string;
  fo_ms : float;
}

(** How the simulated parallelism of one sharded run unfolded. *)
type lane_report = {
  lane_ms : float array;  (** per-shard busy time inside the fork scopes *)
  merge_ms : float;  (** the Gather's own elapsed after the last join *)
  elapsed_ms : float;  (** simulated elapsed of the whole run (max + merge) *)
  critical : int;  (** the critical-path shard: argmax of [lane_ms] *)
  failovers : failover list;  (** replica promotions, in occurrence order *)
  degraded : bool;  (** completed with reduced replicas *)
}

(** [run_sharded_explained smap root ~keep] executes a sharded tree — an
    {!Op.Gather} over S {!Op.Shard_lane} subtrees, as built by
    [Planner.lower ~shards] — against the shard map.  Shard-local subtrees
    run in one fork/join clock scope (simulated elapsed = max over lanes);
    hash-join plans with {!Op.Exchange} children run two scopes with an
    all-to-all barrier between the route and the build/probe phase.  The
    returned totals are work totals ([Op.reconciles] holds against them);
    the lane report carries the elapsed-time story.

    When the shard map carries an armed fault registry
    ({!Tb_store.Shard_map.set_fault_registry}), each lane ticks its
    shard's boundary schedule at every exchange boundary; a scheduled
    crash raises {!Tb_storage.Fault.Shard_down}, which the executor
    catches on the lane: it charges a detection timeout, promotes the
    shard's next replica (refusing replicas are consumed until one passes
    its checksum walk), retargets the shard-local subtree at the replica
    and re-executes it — all inside the lane's clock scope, so the
    failover stretches [elapsed_ms] exactly when the dead shard is on the
    critical path.  Wasted first-attempt work stays in the frames (they
    are shared with the retargeted subtree), so [Op.reconciles] still
    holds.  Fault-free and at [replicas = 1] the machinery adds zero
    charges and zero RNG draws: the PR 7 charge stream is bit-identical. *)
val run_sharded_explained :
  Tb_store.Shard_map.t ->
  Op.t ->
  keep:bool ->
  Query_result.t * Op.totals * lane_report

(** {2 Validate — the fourth optimizer stage}

    After execution, each annotated operator's estimate is reconciled
    against the ms its accounted frame accrued. *)

type est_check = {
  ec_label : string;  (** [Op.label] of the operator *)
  ec_key : string;  (** its correction key ({!Estimate.est_key}) *)
  ec_est_ms : float;
  ec_actual_ms : float;
  ec_q : float;  (** q-error, [max (est/actual, actual/est)] *)
  ec_fed_back : bool;  (** exceeded the threshold: correction recorded *)
}

(** [validate ~stats root] walks an executed, annotated tree in pre-order
    and returns one check per estimated operator.  Operators whose q-error
    exceeds [threshold] (default 2.0) feed a correction back into [stats]
    ({!Tb_statcore.Stat_catalog.observe}), so re-optimizing the same query
    converges.  Reads frames only; never charges. *)
val validate :
  ?threshold:float -> stats:Tb_statcore.Stat_catalog.t -> Op.t -> est_check list

(** Largest q-error in a check list (1.0 when empty). *)
val worst_q : est_check list -> float
