(* A group holds its elements newest-first (O(1) insert) and memoizes the
   insertion-order view that probes return, so a group probed many times —
   every CHJ inner loop — is reversed once, not once per probe. *)
type 'a group = { mutable rev : 'a list; mutable fwd : 'a list option }

module H = Hashtbl.Make (Tb_storage.Rid)

type 'a t = {
  sim : Tb_sim.Sim.t;
  table : 'a group H.t;
  mutable elements : int;
  mutable bytes : int;
  mutable disposed : bool;
}

let entry_overhead = 16
let group_overhead = 40

let create sim =
  { sim; table = H.create 1024; elements = 0; bytes = 0; disposed = false }

let add t ~key ~payload_bytes v =
  if t.disposed then invalid_arg "Mem_hash.add: disposed";
  let cost =
    match H.find_opt t.table key with
    | Some group ->
        group.rev <- v :: group.rev;
        group.fwd <- None;
        entry_overhead + payload_bytes
    | None ->
        H.replace t.table key { rev = [ v ]; fwd = None };
        group_overhead + entry_overhead + payload_bytes
  in
  t.elements <- t.elements + 1;
  t.bytes <- t.bytes + cost;
  Tb_sim.Sim.claim_bytes t.sim cost;
  Tb_sim.Sim.charge_hash_insert t.sim

let find t ~key =
  if t.disposed then invalid_arg "Mem_hash.find: disposed";
  Tb_sim.Sim.charge_hash_probe t.sim;
  match H.find_opt t.table key with
  | Some group -> (
      match group.fwd with
      | Some l -> l
      | None ->
          let l = List.rev group.rev in
          group.fwd <- Some l;
          l)
  | None -> []

let group_count t = H.length t.table
let element_count t = t.elements
let size_bytes t = t.bytes

let dispose t =
  if not t.disposed then begin
    Tb_sim.Sim.release_bytes t.sim t.bytes;
    t.disposed <- true;
    H.reset t.table
  end
