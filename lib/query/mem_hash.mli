(** Memory-accounted in-memory hash tables for the pointer-based joins.

    The paper's Figure 10 is about exactly this structure: "An entry in the
    hash table = (providerid, provider information)" for PHJ, or
    "(provider, {patient1, patient2, ...})" for CHJ.  Every insert claims
    simulated memory; once the working set outgrows what the machine has
    left (128 MB minus caches and window manager), inserts and probes start
    thrashing — the swap the authors saw in the 1:3 / 90% configurations. *)

type 'a t

(** Bytes charged per element beyond its payload. *)
val entry_overhead : int

(** Bytes charged when a key appears for the first time. *)
val group_overhead : int

val create : Tb_sim.Sim.t -> 'a t

(** [add t ~key ~payload_bytes v] appends [v] to [key]'s group, charging one
    hash insert and claiming the memory. *)
val add : 'a t -> key:Tb_storage.Rid.t -> payload_bytes:int -> 'a -> unit

(** [find t ~key] is [key]'s group (insertion order), charging one probe;
    empty when absent.  The insertion-order view is memoized per group, so
    repeated probes of the same key do not re-reverse it.
    Raises [Invalid_argument] after {!dispose}, as {!add} does. *)
val find : 'a t -> key:Tb_storage.Rid.t -> 'a list

val group_count : 'a t -> int
val element_count : 'a t -> int

(** Simulated resident size. *)
val size_bytes : 'a t -> int

(** Release the claimed memory. Must be called when the join finishes. *)
val dispose : 'a t -> unit
