module Value = Tb_store.Value
module Handle = Tb_store.Handle
module Index_def = Tb_store.Index_def
module Rid = Tb_storage.Rid
module Sim = Tb_sim.Sim
module Counters = Tb_sim.Counters

(* A join side is visible either as a live Handle or as information stowed
   in a hash table: "We always store in the hash tables the elements needed
   to construct f(p, pa)" (Section 5). *)
type source = Live of Handle.t | Stored of payload
and payload = { self : Rid.t; attrs : (string * Value.t) list }

(* How an operator derives the join key from a live Handle: the object's
   own identity (parents) or the inverse reference it stores (children). *)
type key_spec = K_self | K_inverse of string

(* How Fetch/Harvest evaluate their per-row work: [Packed] runs the
   offset program of {!Packed} straight on the record's page bytes,
   [Handle] decodes attributes through {!Database.get_att_slot}.  Charges
   are identical either way; the planner picks [Packed] whenever the
   predicates are packed-compilable. *)
type mode = Packed | Handle

(* Per-operator instrumentation.  Counters are attributed by reading the
   global Tb_sim deltas between frame switches (see {!Acct}); the frame
   itself never charges anything, so execution stays bit-identical whether
   or not anyone looks at the explain output. *)
type frame = {
  mutable rows_in : int;
  mutable rows_out : int;
  mutable handles : int;  (** Handles allocated while this frame was live *)
  mutable pages_read : int;
  mutable pages_written : int;
  mutable get_atts : int;
  mutable cmps : int;
  mutable hash_ops : int;  (** hash inserts + probes *)
  mutable sort_cmps : int;
  mutable bytes : int;  (** simulated bytes claimed (hash/sort/result) *)
  mutable ms : float;  (** simulated clock advanced while live *)
}

(* The cost stage's per-operator prediction, written by Estimate.annotate
   before execution.  Mirrors the frame {!Acct} fills during execution, in
   the units the validate stage compares: rows produced, pages touched,
   Handles allocated, simulated ms. *)
type est = {
  est_rows : float;
  est_pages : float;
  est_handles : float;
  est_ms : float;
}

type kind =
  | Seq_scan of { cls : string }
  | Index_scan of { index : Index_def.t; lo : int option; hi : int option }
  | Sort_rids of { child : t }
      (** buffer + sort the child's Rids (Figure 8 right) *)
  | Fetch of {
      child : t;
      cls : string;
      var : string;
      preds : Plan.attr_pred list;
      covering : bool;
          (** no residual predicates and only the identity is needed: skip
              Handles entirely (the covering-index shortcut) *)
      mode : mode;
      batch : int;  (** rows per vector pulled from the rid stream *)
    }
  | Nav_set of {
      child : t;
      set_attr : string;
      owner_cls : string;
      nav_var : string;
      nav_cls : string;
      preds : Plan.attr_pred list;
    }  (** parent-to-child navigation through the set attribute (NL) *)
  | Nav_inverse of {
      child : t;
      inv_attr : string;
      owner_cls : string;
      nav_var : string;
      nav_cls : string;
      preds : Plan.attr_pred list;
    }  (** child-to-parent navigation through the inverse (NOJOIN) *)
  | Harvest of {
      child : t;
      key : key_spec;
      cls : string;
      attrs : string list;
      mode : mode;
    }  (** slot-compiled (key, payload) extraction from live Handles *)
  | Hash_build of { child : t }
  | Spill_partition of { child : t; partitions : int }
      (** hybrid hashing: bucket 0 flows through, buckets 1.. spill to
          temporary heap files *)
  | Hash_probe of {
      build : t;
      probe : t;
      probe_key : key_spec;
      probe_cls : string;
      build_var : string;
      probe_var : string;
    }
  | Sort of { child : t }  (** buffer + external-sort (key, payload) runs *)
  | Merge of { left : t; right : t; left_var : string; right_var : string }
  | Project of { child : t; select : Oql_ast.expr }
  | Materialize of { child : t; aggregate : Oql_ast.agg option }
  | Shard_lane of { child : t; shard : int; shards : int }
      (** one shard's subplan: everything under it runs on that shard's
          clock lane *)
  | Exchange of { child : t; shards : int; part_key : string }
      (** hash-repartition the child's (key, payload) stream across shard
          lanes; charges the page-batched shipping RPCs *)
  | Gather of { lanes : t array; shards : int; part_key : string; ordered : bool }
      (** merge N shard lanes after the join point; order-preserving
          (streamed merge on the sort key) when [ordered] *)

and t = { kind : kind; frame : frame; mutable est : est option }

let fresh_frame () =
  {
    rows_in = 0;
    rows_out = 0;
    handles = 0;
    pages_read = 0;
    pages_written = 0;
    get_atts = 0;
    cmps = 0;
    hash_ops = 0;
    sort_cmps = 0;
    bytes = 0;
    ms = 0.0;
  }

let make kind = { kind; frame = fresh_frame (); est = None }

let children node =
  match node.kind with
  | Seq_scan _ | Index_scan _ -> []
  | Sort_rids { child }
  | Fetch { child; _ }
  | Nav_set { child; _ }
  | Nav_inverse { child; _ }
  | Harvest { child; _ }
  | Hash_build { child }
  | Spill_partition { child; _ }
  | Sort { child }
  | Project { child; _ }
  | Materialize { child; _ }
  | Shard_lane { child; _ }
  | Exchange { child; _ } ->
      [ child ]
  | Hash_probe { build; probe; _ } -> [ build; probe ]
  | Merge { left; right; _ } -> [ left; right ]
  | Gather { lanes; _ } -> Array.to_list lanes

let rec iter f node =
  f node;
  List.iter (iter f) (children node)

let reset_frames node =
  iter
    (fun n ->
      let fr = n.frame in
      fr.rows_in <- 0;
      fr.rows_out <- 0;
      fr.handles <- 0;
      fr.pages_read <- 0;
      fr.pages_written <- 0;
      fr.get_atts <- 0;
      fr.cmps <- 0;
      fr.hash_ops <- 0;
      fr.sort_cmps <- 0;
      fr.bytes <- 0;
      fr.ms <- 0.0)
    node

let opcode node =
  match node.kind with
  | Seq_scan _ -> "seq_scan"
  | Index_scan _ -> "index_scan"
  | Sort_rids _ -> "sort_rids"
  | Fetch _ -> "fetch"
  | Nav_set _ -> "nav_set"
  | Nav_inverse _ -> "nav_inverse"
  | Harvest _ -> "harvest"
  | Hash_build _ -> "hash_build"
  | Spill_partition _ -> "spill_partition"
  | Hash_probe _ -> "hash_probe"
  | Sort _ -> "sort"
  | Merge _ -> "merge"
  | Project _ -> "project"
  | Materialize _ -> "materialize"
  | Shard_lane _ -> "shard_lane"
  | Exchange _ -> "exchange"
  | Gather _ -> "gather"

let key_name = function
  | K_self -> "self"
  | K_inverse attr -> "inverse." ^ attr

let pred_count = function [] -> "" | ps -> Printf.sprintf "[%d preds]" (List.length ps)
let mode_name = function Packed -> "packed" | Handle -> "handle"

let label node =
  match node.kind with
  | Seq_scan { cls } -> Printf.sprintf "seq_scan(%s)" cls
  | Index_scan { index; lo; hi } ->
      Printf.sprintf "index_scan(%s)[%s,%s)" index.Index_def.name
        (match lo with Some k -> string_of_int k | None -> "-inf")
        (match hi with Some k -> string_of_int k | None -> "+inf")
  | Sort_rids _ -> "sort_rids"
  | Fetch { cls; var; preds; covering; mode; batch; _ } ->
      if covering then
        Printf.sprintf "fetch(%s:%s)%s covering" var cls (pred_count preds)
      else
        Printf.sprintf "fetch(%s:%s)%s mode=%s b=%d" var cls (pred_count preds)
          (mode_name mode) batch
  | Nav_set { set_attr; nav_var; nav_cls; preds; _ } ->
      Printf.sprintf "nav_set(.%s -> %s:%s)%s" set_attr nav_var nav_cls
        (pred_count preds)
  | Nav_inverse { inv_attr; nav_var; nav_cls; preds; _ } ->
      Printf.sprintf "nav_inverse(.%s -> %s:%s)%s" inv_attr nav_var nav_cls
        (pred_count preds)
  | Harvest { key; attrs; mode; _ } ->
      Printf.sprintf "harvest(key=%s; attrs=[%s]) mode=%s" (key_name key)
        (String.concat "," attrs) (mode_name mode)
  | Hash_build _ -> "hash_build"
  | Spill_partition { partitions; _ } ->
      Printf.sprintf "spill_partition(%d)" partitions
  | Hash_probe { probe_key; build_var; probe_var; _ } ->
      Printf.sprintf "hash_probe(%s with %s, key=%s)" build_var probe_var
        (key_name probe_key)
  | Sort _ -> "sort"
  | Merge { left_var; right_var; _ } ->
      Printf.sprintf "merge(%s, %s)" left_var right_var
  | Project _ -> "project"
  | Materialize { aggregate = None; _ } -> "materialize"
  | Materialize { aggregate = Some a; _ } ->
      Printf.sprintf "aggregate(%s)" (Oql_ast.agg_name a)
  | Shard_lane { shard; shards; _ } ->
      Printf.sprintf "shard[%d/%d]" shard shards
  | Exchange { shards; part_key; _ } ->
      Printf.sprintf "exchange(shards=%d, key=%s)" shards part_key
  | Gather { shards; part_key; ordered; _ } ->
      Printf.sprintf "gather(shards=%d, key=%s, %s)" shards part_key
        (if ordered then "ordered" else "unordered")

let pp_tree ppf node =
  let rec go indent n =
    Format.fprintf ppf "%s%s@." indent (label n);
    List.iter (go (indent ^ "  ")) (children n)
  in
  go "" node

(* --- reconciliation against the global counters --- *)

type totals = {
  t_handles : int;
  t_pages_read : int;
  t_pages_written : int;
  t_get_atts : int;
  t_cmps : int;
  t_hash_ops : int;
  t_sort_cmps : int;
  t_ms : float;
}

let sum_frames node =
  let acc =
    ref
      {
        t_handles = 0;
        t_pages_read = 0;
        t_pages_written = 0;
        t_get_atts = 0;
        t_cmps = 0;
        t_hash_ops = 0;
        t_sort_cmps = 0;
        t_ms = 0.0;
      }
  in
  iter
    (fun n ->
      let f = n.frame and a = !acc in
      acc :=
        {
          t_handles = a.t_handles + f.handles;
          t_pages_read = a.t_pages_read + f.pages_read;
          t_pages_written = a.t_pages_written + f.pages_written;
          t_get_atts = a.t_get_atts + f.get_atts;
          t_cmps = a.t_cmps + f.cmps;
          t_hash_ops = a.t_hash_ops + f.hash_ops;
          t_sort_cmps = a.t_sort_cmps + f.sort_cmps;
          t_ms = a.t_ms +. f.ms;
        })
    node;
  !acc

let ms_close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b)

let reconciles ~global node =
  let s = sum_frames node in
  s.t_handles = global.t_handles
  && s.t_pages_read = global.t_pages_read
  && s.t_pages_written = global.t_pages_written
  && s.t_get_atts = global.t_get_atts
  && s.t_cmps = global.t_cmps
  && s.t_hash_ops = global.t_hash_ops
  && s.t_sort_cmps = global.t_sort_cmps
  && ms_close s.t_ms global.t_ms

let report_line ppf ~name ~depth fr =
  Format.fprintf ppf "%-46s %9d %9d %7d %6d %6d %8d %9d %8d %9d %10d %11.3f@."
    (String.make (2 * depth) ' ' ^ name)
    fr.rows_in fr.rows_out fr.handles fr.pages_read fr.pages_written
    fr.get_atts fr.cmps fr.hash_ops fr.sort_cmps fr.bytes fr.ms

let pp_report ~global ppf node =
  Format.fprintf ppf "%-46s %9s %9s %7s %6s %6s %8s %9s %8s %9s %10s %11s@."
    "operator" "rows_in" "rows_out" "handles" "pg_r" "pg_w" "get_att" "cmp"
    "hash" "sort_cmp" "bytes" "ms";
  let rec go depth n =
    report_line ppf ~name:(label n) ~depth n.frame;
    List.iter (go (depth + 1)) (children n)
  in
  go 0 node;
  let s = sum_frames node in
  let line tag (t : totals) =
    Format.fprintf ppf "%-46s %9s %9s %7d %6d %6d %8d %9d %8d %9d %10s %11.3f@."
      tag "" "" t.t_handles t.t_pages_read t.t_pages_written t.t_get_atts
      t.t_cmps t.t_hash_ops t.t_sort_cmps "" t.t_ms
  in
  line "= operator totals" s;
  line "= global counter deltas" global;
  Format.fprintf ppf "= reconciled: %s@."
    (if reconciles ~global node then "yes (integer columns exact)" else "NO")

(* --- charge attribution ---

   One rolling snapshot of the counters the explain output reports, plus
   the simulated clock.  [enter] attributes everything that accrued since
   the last switch to the frame that was current, then makes the new frame
   current.  Read-only: attribution never touches the counters themselves,
   so the charge stream is identical with or without instrumentation. *)
module Acct = struct
  type acct = {
    sim : Sim.t;
    mutable cur : frame;
    mutable s_ms : float;
    mutable s_dr : int;
    mutable s_dw : int;
    mutable s_ha : int;
    mutable s_ga : int;
    mutable s_cmp : int;
    mutable s_hi : int;
    mutable s_hp : int;
    mutable s_sc : int;
  }

  (* Attribution reads [work_ms], not [now_ms]: inside a fork/join scope
     the elapsed clock jumps backwards and forwards as the executor
     switches shard lanes, but total work only ever grows — and outside a
     scope the two fields are bit-identical, so unsharded explain output
     is unchanged. *)
  let now_ms sim = Tb_sim.Clock.work_ms sim.Sim.clock

  let create sim frame =
    let c = sim.Sim.counters in
    {
      sim;
      cur = frame;
      s_ms = now_ms sim;
      s_dr = c.Counters.disk_reads;
      s_dw = c.Counters.disk_writes;
      s_ha = c.Counters.handle_allocs;
      s_ga = c.Counters.get_atts;
      s_cmp = c.Counters.comparisons;
      s_hi = c.Counters.hash_inserts;
      s_hp = c.Counters.hash_probes;
      s_sc = c.Counters.sort_comparisons;
    }

  let flush t =
    let c = t.sim.Sim.counters in
    let f = t.cur in
    f.pages_read <- f.pages_read + c.Counters.disk_reads - t.s_dr;
    f.pages_written <- f.pages_written + c.Counters.disk_writes - t.s_dw;
    f.handles <- f.handles + c.Counters.handle_allocs - t.s_ha;
    f.get_atts <- f.get_atts + c.Counters.get_atts - t.s_ga;
    f.cmps <- f.cmps + c.Counters.comparisons - t.s_cmp;
    f.hash_ops <-
      f.hash_ops + c.Counters.hash_inserts - t.s_hi + c.Counters.hash_probes
      - t.s_hp;
    f.sort_cmps <- f.sort_cmps + c.Counters.sort_comparisons - t.s_sc;
    let ms = now_ms t.sim in
    f.ms <- f.ms +. (ms -. t.s_ms);
    t.s_ms <- ms;
    t.s_dr <- c.Counters.disk_reads;
    t.s_dw <- c.Counters.disk_writes;
    t.s_ha <- c.Counters.handle_allocs;
    t.s_ga <- c.Counters.get_atts;
    t.s_cmp <- c.Counters.comparisons;
    t.s_hi <- c.Counters.hash_inserts;
    t.s_hp <- c.Counters.hash_probes;
    t.s_sc <- c.Counters.sort_comparisons

  let enter t frame =
    if frame != t.cur then begin
      flush t;
      t.cur <- frame
    end
end

(* --- estimates: the cost stage's mirror of Acct ---

   Acct attributes what actually accrued; Est carries what the optimizer
   predicted would accrue.  Both hang off the same node so the validate
   stage (and the --optimize --explain report) can put the two columns side
   by side and compute per-operator q-errors. *)
module Est = struct
  let set node e = node.est <- Some e
  let get node = node.est
  let clear root = iter (fun n -> n.est <- None) root

  (* q-error between an estimated and an accounted ms, floored at 0.01 ms
     (below the cost model's practical resolution) so near-zero pairs
     compare as exact rather than exploding the ratio. *)
  let q ~est ~actual =
    let e = Float.max 0.01 est and a = Float.max 0.01 actual in
    Float.max (e /. a) (a /. e)

  let sum_ms root =
    let acc = ref 0.0 in
    iter
      (fun n -> match n.est with Some e -> acc := !acc +. e.est_ms | None -> ())
      root;
    !acc

  let report_line ppf ~name ~depth n =
    let fr = n.frame in
    match n.est with
    | Some e ->
        Format.fprintf ppf "%-46s %10.0f %9d %8.0f %6d %12.3f %12.3f %8.2f@."
          (String.make (2 * depth) ' ' ^ name)
          e.est_rows fr.rows_out e.est_pages fr.pages_read e.est_ms fr.ms
          (q ~est:e.est_ms ~actual:fr.ms)
    | None ->
        Format.fprintf ppf "%-46s %10s %9d %8s %6d %12s %12.3f %8s@."
          (String.make (2 * depth) ' ' ^ name)
          "-" fr.rows_out "-" fr.pages_read "-" fr.ms "-"

  (* Estimated-vs-actual rendering: one row per operator with the
     prediction next to the accounted frame, closing with plan-level
     totals and the worst per-operator q-error. *)
  let pp_report ~global ppf node =
    Format.fprintf ppf "%-46s %10s %9s %8s %6s %12s %12s %8s@." "operator"
      "est_rows" "rows_out" "est_pg" "pg_r" "est_ms" "ms" "q(ms)";
    let rec go depth n =
      report_line ppf ~name:(label n) ~depth n;
      List.iter (go (depth + 1)) (children n)
    in
    go 0 node;
    let est_total = sum_ms node in
    let worst = ref 1.0 in
    iter
      (fun n ->
        match n.est with
        | Some e -> worst := Float.max !worst (q ~est:e.est_ms ~actual:n.frame.ms)
        | None -> ())
      node;
    Format.fprintf ppf "%-46s %10s %9s %8s %6s %12.3f %12.3f %8.2f@."
      "= plan totals" "" "" "" "" est_total global.t_ms
      (q ~est:est_total ~actual:global.t_ms);
    Format.fprintf ppf "= worst operator q-error: %.2f@." !worst
end
