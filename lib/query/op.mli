(** Physical operator trees — the Volcano-style decomposition of the seven
    paper algorithms, with per-operator cost accounting.

    A {!t} is an instrumented operator node: the planner lowers a {!Plan.t}
    into a tree of these ({!Planner.lower}), the interpreter in {!Exec}
    drives it, and every node carries a {!frame} recording the rows that
    flowed through it and the slice of the simulated cost model it is
    responsible for.  Attribution is read-only ({!Acct} diffs the global
    {!Tb_sim.Counters} between frame switches), so the charge stream — and
    the golden counter fingerprint — is identical whether or not anyone
    looks at the explain output. *)

(** A join side is visible either as a live Handle or as information stowed
    in a hash table / sort run (Section 5). *)
type source =
  | Live of Tb_store.Handle.t
  | Stored of payload

and payload = {
  self : Tb_storage.Rid.t;
  attrs : (string * Tb_store.Value.t) list;
}

(** How an operator derives the join key from a live Handle. *)
type key_spec =
  | K_self  (** the object's own Rid (parents) *)
  | K_inverse of string  (** the inverse reference attribute (children) *)

(** How Fetch/Harvest evaluate their per-row work.  Charges are identical
    either way; the planner picks [Packed] whenever the predicates are
    packed-compilable ({!Packed.compilable}). *)
type mode =
  | Packed  (** offset program straight on the record's page bytes *)
  | Handle  (** attribute decode through {!Tb_store.Database.get_att_slot} *)

(** Per-operator instrumentation, mutated by the executor only. *)
type frame = {
  mutable rows_in : int;
  mutable rows_out : int;
  mutable handles : int;
  mutable pages_read : int;
  mutable pages_written : int;
  mutable get_atts : int;
  mutable cmps : int;
  mutable hash_ops : int;
  mutable sort_cmps : int;
  mutable bytes : int;
  mutable ms : float;
}

type kind =
  | Seq_scan of { cls : string }
  | Index_scan of {
      index : Tb_store.Index_def.t;
      lo : int option;
      hi : int option;
    }
  | Sort_rids of { child : t }
  | Fetch of {
      child : t;
      cls : string;
      var : string;
      preds : Plan.attr_pred list;
      covering : bool;
      mode : mode;
      batch : int;
    }
  | Nav_set of {
      child : t;
      set_attr : string;
      owner_cls : string;
      nav_var : string;
      nav_cls : string;
      preds : Plan.attr_pred list;
    }
  | Nav_inverse of {
      child : t;
      inv_attr : string;
      owner_cls : string;
      nav_var : string;
      nav_cls : string;
      preds : Plan.attr_pred list;
    }
  | Harvest of {
      child : t;
      key : key_spec;
      cls : string;
      attrs : string list;
      mode : mode;
    }
  | Hash_build of { child : t }
  | Spill_partition of { child : t; partitions : int }
  | Hash_probe of {
      build : t;
      probe : t;
      probe_key : key_spec;
      probe_cls : string;
      build_var : string;
      probe_var : string;
    }
  | Sort of { child : t }
  | Merge of { left : t; right : t; left_var : string; right_var : string }
  | Project of { child : t; select : Oql_ast.expr }
  | Materialize of { child : t; aggregate : Oql_ast.agg option }
  | Shard_lane of { child : t; shard : int; shards : int }
      (** one shard's subplan, run on that shard's clock lane *)
  | Exchange of { child : t; shards : int; part_key : string }
      (** hash-repartition the child's rows across shard lanes *)
  | Gather of {
      lanes : t array;
      shards : int;
      part_key : string;
      ordered : bool;
    }
      (** merge N shard lanes; order-preserving for sorted inputs.  The
          merge loop itself never charges — shipping and merge comparisons
          are charged at this node by the executor. *)

and t = { kind : kind; frame : frame; mutable est : est option }

(** The cost stage's per-operator prediction ({!Estimate.annotate} writes
    it, {!Est} compares it against the accounted frame). *)
and est = {
  est_rows : float;
  est_pages : float;
  est_handles : float;
  est_ms : float;
}

val make : kind -> t
val fresh_frame : unit -> frame

(** Zero every frame in the tree (the executor does this before a run, so a
    tree can be executed repeatedly). *)
val reset_frames : t -> unit

val children : t -> t list

(** Pre-order traversal. *)
val iter : (t -> unit) -> t -> unit

(** Bare constructor name, e.g. ["hash_probe"] — stable, used by the
    fingerprint suffix. *)
val opcode : t -> string

(** Human-readable one-line description with arguments. *)
val label : t -> string

(** The lowered tree shape, one indented line per operator (the lowering
    snapshots pin this down). *)
val pp_tree : Format.formatter -> t -> unit

(** {2 Reconciliation}

    The counter deltas the whole run produced, in the fields the explain
    report shows.  {!Exec.run_explained} measures them globally; summing
    the frames must give the same numbers (exact for the integer columns,
    within float epsilon for the simulated ms). *)
type totals = {
  t_handles : int;
  t_pages_read : int;
  t_pages_written : int;
  t_get_atts : int;
  t_cmps : int;
  t_hash_ops : int;
  t_sort_cmps : int;
  t_ms : float;
}

val sum_frames : t -> totals
val reconciles : global:totals -> t -> bool

(** The EXPLAIN ANALYZE rendering: one row per operator plus an
    operator-totals row, the global-counter-deltas row and a reconciliation
    verdict. *)
val pp_report : global:totals -> Format.formatter -> t -> unit

(** {2 Charge attribution}

    The executor's accounting context: a rolling snapshot of the reported
    counters plus the simulated clock.  [enter acct frame] attributes
    everything accrued since the last switch to the previously-current
    frame; it reads the counters but never writes them. *)
module Acct : sig
  type acct

  val create : Tb_sim.Sim.t -> frame -> acct
  val enter : acct -> frame -> unit

  (** Attribute the tail of the run to the current frame. *)
  val flush : acct -> unit
end

(** {2 Estimates}

    The cost stage's mirror of {!Acct}: where Acct attributes what actually
    accrued to each operator, Est carries what the optimizer predicted.
    Both hang off the same node, so the validate stage can compute
    per-operator q-errors and the [--optimize --explain] report can print
    the two columns side by side. *)
module Est : sig
  val set : t -> est -> unit
  val get : t -> est option

  (** Drop every estimate in the tree. *)
  val clear : t -> unit

  (** q-error [max (est/actual, actual/est)], both sides floored at
      0.01 ms so near-zero pairs compare as exact. *)
  val q : est:float -> actual:float -> float

  (** Sum of the tree's estimated ms (barrier semantics are
      {!Estimate.plan_cost_ms}'s job — this is the plain sum). *)
  val sum_ms : t -> float

  (** Estimated-vs-actual rendering: per-operator est/actual columns with
      q-errors, plan totals, and the worst per-operator q-error. *)
  val pp_report : global:totals -> Format.formatter -> t -> unit
end
