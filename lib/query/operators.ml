(* The charging kernels behind the physical operators.

   treelint's R1 discipline is split along this boundary: these functions
   are the modeled engine components and may call Sim.charge_* / claim
   simulated memory; the interpreter in Exec orchestrates them and may
   not charge anything itself.  Every kernel reproduces the charge order
   of the pre-operator monolithic drivers verbatim — the golden counter
   fingerprint depends on the sequence, not just the totals. *)

module Value = Tb_store.Value
module Database = Tb_store.Database
module Handle = Tb_store.Handle
module Rid = Tb_storage.Rid
module Sim = Tb_sim.Sim

let payload_bytes (p : Op.payload) =
  List.fold_left
    (fun acc (_, v) -> acc + 4 + Tb_store.Codec.encoded_size v)
    Rid.on_disk_bytes p.Op.attrs

(* Attribute names are resolved to schema slots once per operator; the
   per-row work below (predicate evaluation, payload harvest, inverse
   navigation) is then an integer-indexed load instead of a string
   lookup. *)
type compiled_pred = { pslot : int; pcmp : Oql_ast.cmp; pconst : Value.t }

let compile_preds db ~cls preds =
  List.map
    (fun { Plan.attr; cmp; const } ->
      { pslot = Database.attr_slot db ~cls attr; pcmp = cmp; pconst = const })
    preds

(* [(name, slot)] for the attributes [select] needs from a side. *)
let compile_attrs db ~cls attrs =
  List.map (fun a -> (a, Database.attr_slot db ~cls a)) attrs

(* Harvest exactly the attributes [select] needs from a live Handle. *)
let make_payload db h ~slots =
  {
    Op.self = h.Handle.rid;
    attrs = List.map (fun (a, slot) -> (a, Database.get_att_slot db h slot)) slots;
  }

let eval_select db select ~lookup =
  let rec ev = function
    | Oql_ast.Const lit -> Oql_ast.literal_to_value lit
    | Oql_ast.Var v -> (
        match lookup v with
        | Op.Live h -> Value.Ref h.Handle.rid
        | Op.Stored p -> Value.Ref p.Op.self)
    | Oql_ast.Path (v, attr) -> (
        match lookup v with
        | Op.Live h -> Database.get_att db h attr
        | Op.Stored p -> (
            match List.assoc_opt attr p.Op.attrs with
            | Some x -> x
            | None -> invalid_arg ("Exec: attribute " ^ attr ^ " not stowed")))
    | Oql_ast.Mk_tuple fields ->
        Value.Tuple (List.map (fun (n, e) -> (n, ev e)) fields)
  in
  ev select

let eval_preds db h preds =
  List.for_all
    (fun { pslot; pcmp; pconst } ->
      Sim.charge_compare (Database.sim db) 1;
      Oql_ast.eval_cmp pcmp (Database.get_att_slot db h pslot) pconst)
    preds

let key_of_inverse db inv_slot h =
  match Database.get_att_slot db h inv_slot with
  | Value.Ref prid -> Some prid
  | Value.Nil -> None
  | _ -> invalid_arg "Exec: inverse attribute is not a reference"

let compile_key db ~cls = function
  | Op.K_self -> fun h -> Some h.Handle.rid
  | Op.K_inverse attr ->
      let slot = Database.attr_slot db ~cls attr in
      key_of_inverse db slot

(* Figure 8 right: the matching Rids are buffered, sorted so the fetches
   become (at worst) one sequential sweep, and streamed out.  The buffer's
   simulated memory is released even when a downstream operator raises —
   a failed query must not leak claimed RAM. *)
let with_sorted_rids sim ~rids ~count f =
  let claim = count * Rid.on_disk_bytes in
  Sim.claim_bytes sim claim;
  Fun.protect
    ~finally:(fun () -> Sim.release_bytes sim claim)
    (fun () ->
      Sim.charge_sort sim count;
      let arr = Array.of_list rids in
      Array.sort Rid.compare arr;
      f arr)

let sorted_rids sim ~rids ~count f =
  with_sorted_rids sim ~rids ~count (fun arr -> Array.iter f arr)

(* External-sort accounting: [n log n] comparisons, plus write+read passes
   when the run does not fit in memory. *)
let charge_external_sort sim ~elems ~bytes =
  Sim.charge_sort sim elems;
  let avail = Tb_sim.Cost_model.available_bytes sim.Sim.cost in
  if bytes > avail && avail > 0 then begin
    let fan_in = 8.0 in
    let passes =
      int_of_float
        (ceil (log (float_of_int bytes /. float_of_int avail) /. log fan_in))
    in
    let pages = (bytes / sim.Sim.cost.Tb_sim.Cost_model.page_size) + 1 in
    for _ = 1 to max 1 passes * pages do
      Sim.charge_disk_write sim;
      Sim.charge_disk_read sim
    done
  end

(* Claim a gathered (key, payload) run and sort it by key.  The sort is
   unstable, so the input order — newest-first, exactly as the gather loop
   prepends — is part of the deterministic contract. *)
let claim_and_sort sim kvs ~bytes =
  Sim.claim_bytes sim bytes;
  (* The claim deliberately survives the return — the caller owns it — but
     must not survive a raise below, or the bytes would never be released. *)
  match
    let arr = Array.of_list kvs in
    charge_external_sort sim ~elems:(Array.length arr) ~bytes;
    Array.sort (fun (a, _) (b, _) -> Rid.compare a b) arr;
    arr
  with
  | arr -> arr
  | exception e ->
      Sim.release_bytes sim bytes;
      raise e

let release_bytes sim n = Sim.release_bytes sim n

(* Merge two sorted runs.  Runs that do not fit in memory together are
   streamed through disk once more (write out, read back for the merge);
   parents' keys are unique (their own Rids). *)
let merge_join sim ~bytes ~parents ~children emit =
  if Sim.excess_ratio sim > 0.0 then begin
    let pages = (bytes / sim.Sim.cost.Tb_sim.Cost_model.page_size) + 1 in
    for _ = 1 to pages do
      Sim.charge_disk_write sim;
      Sim.charge_disk_read sim
    done
  end;
  let np = Array.length parents and nc = Array.length children in
  let i = ref 0 in
  for j = 0 to nc - 1 do
    let ckey, cp = children.(j) in
    while !i < np && Rid.compare (fst parents.(!i)) ckey < 0 do
      Sim.charge_compare sim 1;
      incr i
    done;
    Sim.charge_compare sim 1;
    if !i < np && Rid.equal (fst parents.(!i)) ckey then
      emit (snd parents.(!i)) cp
  done

(* --- spilled partitions (hybrid hashing, DeWitt/Katz/Olken-style) --- *)

(* A spilled payload travels as an encoded tuple whose first field is the
   join key. *)
let spill_record ~key (payload : Op.payload) =
  Tb_store.Codec.encode
    (Value.Tuple
       (("@key", Value.Ref key)
       :: ("@self", Value.Ref payload.Op.self)
       :: payload.Op.attrs))

let unspill_record body =
  match Tb_store.Codec.decode_exn body with
  | Value.Tuple (("@key", Value.Ref key) :: ("@self", Value.Ref self) :: attrs)
    ->
      (key, { Op.self; attrs })
  | _ -> invalid_arg "Exec: corrupt spill record"

let new_spill_files db n =
  Array.init n (fun _ -> Tb_storage.Heap_file.create_temp (Database.stack db))

let spill file ~key payload =
  ignore (Tb_storage.Heap_file.insert file (spill_record ~key payload))
