(** The charging kernels behind the physical operators.

    treelint's R1 charge discipline is split along this boundary: these
    functions are the modeled engine components and may charge the
    simulated cost model; the interpreter in {!Exec} orchestrates them and
    may not charge anything itself.  Each kernel reproduces the charge
    order of the pre-operator monolithic drivers verbatim — the golden
    counter fingerprint depends on the sequence, not just the totals. *)

(** Simulated size of a stowed payload (Rid + encoded attributes). *)
val payload_bytes : Op.payload -> int

(** A predicate with its attribute resolved to a schema slot. *)
type compiled_pred = {
  pslot : int;
  pcmp : Oql_ast.cmp;
  pconst : Tb_store.Value.t;
}

val compile_preds :
  Tb_store.Database.t -> cls:string -> Plan.attr_pred list -> compiled_pred list

(** [(name, slot)] pairs for a side's harvested attributes. *)
val compile_attrs :
  Tb_store.Database.t -> cls:string -> string list -> (string * int) list

(** Harvest exactly the listed attributes from a live Handle (one charged
    attribute access per slot). *)
val make_payload :
  Tb_store.Database.t -> Tb_store.Handle.t -> slots:(string * int) list -> Op.payload

(** Evaluate the projection; Handle-backed variables charge attribute
    accesses, stowed ones read the harvested payload. *)
val eval_select :
  Tb_store.Database.t ->
  Oql_ast.expr ->
  lookup:(string -> Op.source) ->
  Tb_store.Value.t

(** Short-circuit conjunction; one charged comparison and one charged
    attribute access per evaluated predicate. *)
val eval_preds : Tb_store.Database.t -> Tb_store.Handle.t -> compiled_pred list -> bool

(** Resolve a {!Op.key_spec} against a side's class: [K_self] is free,
    [K_inverse] charges one attribute access per row and yields [None] on
    [Nil].  Raises [Invalid_argument] when the inverse attribute is not a
    reference. *)
val compile_key :
  Tb_store.Database.t ->
  cls:string ->
  Op.key_spec ->
  Tb_store.Handle.t ->
  Tb_storage.Rid.t option

(** [with_sorted_rids sim ~rids ~count f] claims the Rid buffer, charges
    the sort, hands [f] the sorted array inside the claim window and
    releases the claim — also when [f] raises ([Fun.protect]), so a failed
    query cannot leak simulated RAM.  The vectorized executor chunks its
    emission from within [f]. *)
val with_sorted_rids :
  Tb_sim.Sim.t ->
  rids:Tb_storage.Rid.t list ->
  count:int ->
  (Tb_storage.Rid.t array -> unit) ->
  unit

(** [sorted_rids sim ~rids ~count f] is {!with_sorted_rids} streaming one
    Rid at a time. *)
val sorted_rids :
  Tb_sim.Sim.t -> rids:Tb_storage.Rid.t list -> count:int -> (Tb_storage.Rid.t -> unit) -> unit

(** [n log n] comparisons plus write+read passes when the run exceeds
    memory. *)
val charge_external_sort : Tb_sim.Sim.t -> elems:int -> bytes:int -> unit

(** Claim a gathered (key, payload) run and sort it by key.  Ownership of
    the claimed bytes passes to the caller, who must
    {!release_bytes} them (under [Fun.protect]) when the merge is done. *)
val claim_and_sort :
  Tb_sim.Sim.t ->
  (Tb_storage.Rid.t * Op.payload) list ->
  bytes:int ->
  (Tb_storage.Rid.t * Op.payload) array

val release_bytes : Tb_sim.Sim.t -> int -> unit

(** Merge two key-sorted runs, charging one comparison per advance and the
    extra disk pass when the combined runs exceed memory; [emit] receives
    each matching (left, right) payload pair. *)
val merge_join :
  Tb_sim.Sim.t ->
  bytes:int ->
  parents:(Tb_storage.Rid.t * Op.payload) array ->
  children:(Tb_storage.Rid.t * Op.payload) array ->
  (Op.payload -> Op.payload -> unit) ->
  unit

(** Decode one spilled record back into (key, payload).
    Raises [Invalid_argument] on corrupt records. *)
val unspill_record : bytes -> Tb_storage.Rid.t * Op.payload

(** [n] fresh temporary heap files for spilled partitions. *)
val new_spill_files : Tb_store.Database.t -> int -> Tb_storage.Heap_file.t array

(** Append one (key, payload) record to a spill file (charged as ordinary
    heap-page traffic). *)
val spill : Tb_storage.Heap_file.t -> key:Tb_storage.Rid.t -> Op.payload -> unit
