type token =
  | SELECT
  | FROM
  | WHERE
  | IN
  | AND
  | NIL
  | TRUE
  | FALSE
  | IDENT of string
  | INT of int
  | STRING of string
  | CHAR of char
  | COMMA
  | DOT
  | COLON
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | EOF

exception Lex_error of string

let keyword = function
  | "select" -> Some SELECT
  | "from" -> Some FROM
  | "where" -> Some WHERE
  | "in" -> Some IN
  | "and" -> Some AND
  | "nil" -> Some NIL
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let rec go pos acc =
    if pos >= n then List.rev (EOF :: acc)
    else
      let c = s.[pos] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (pos + 1) acc
      else if is_ident_start c then begin
        let stop = ref pos in
        while !stop < n && is_ident s.[!stop] do
          incr stop
        done;
        let word = String.sub s pos (!stop - pos) in
        let tok =
          match keyword (String.lowercase_ascii word) with
          | Some t -> t
          | None -> IDENT word
        in
        go !stop (tok :: acc)
      end
      else if is_digit c || (c = '-' && pos + 1 < n && is_digit s.[pos + 1]) then begin
        let stop = ref (pos + 1) in
        while !stop < n && is_digit s.[!stop] do
          incr stop
        done;
        go !stop (INT (int_of_string (String.sub s pos (!stop - pos))) :: acc)
      end
      else if c = '"' then begin
        let stop = ref (pos + 1) in
        while !stop < n && s.[!stop] <> '"' do
          incr stop
        done;
        if !stop >= n then raise (Lex_error "unterminated string literal");
        go (!stop + 1) (STRING (String.sub s (pos + 1) (!stop - pos - 1)) :: acc)
      end
      else if c = '\'' then begin
        if pos + 2 >= n || s.[pos + 2] <> '\'' then
          raise (Lex_error "malformed char literal");
        go (pos + 3) (CHAR s.[pos + 1] :: acc)
      end
      else
        let two = if pos + 1 < n then String.sub s pos 2 else "" in
        match two with
        | "<=" -> go (pos + 2) (LE :: acc)
        | ">=" -> go (pos + 2) (GE :: acc)
        | "<>" -> go (pos + 2) (NE :: acc)
        | "!=" -> go (pos + 2) (NE :: acc)
        | _ -> (
            match c with
            | ',' -> go (pos + 1) (COMMA :: acc)
            | '.' -> go (pos + 1) (DOT :: acc)
            | ':' -> go (pos + 1) (COLON :: acc)
            | '[' -> go (pos + 1) (LBRACKET :: acc)
            | ']' -> go (pos + 1) (RBRACKET :: acc)
            | '(' -> go (pos + 1) (LPAREN :: acc)
            | ')' -> go (pos + 1) (RPAREN :: acc)
            | '<' -> go (pos + 1) (LT :: acc)
            | '>' -> go (pos + 1) (GT :: acc)
            | '=' -> go (pos + 1) (EQ :: acc)
            | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c)))
  in
  go 0 []

let equal a b =
  match (a, b) with
  | IDENT x, IDENT y | STRING x, STRING y -> String.equal x y
  | INT x, INT y -> Int.equal x y
  | CHAR x, CHAR y -> Char.equal x y
  | _ ->
      (* constant constructors are immediates, so physical equality is tag
         equality; mixed payload constructors fall through to [false] *)
      a == b

let pp_token ppf tok =
  Format.pp_print_string ppf
    (match tok with
    | SELECT -> "select"
    | FROM -> "from"
    | WHERE -> "where"
    | IN -> "in"
    | AND -> "and"
    | NIL -> "nil"
    | TRUE -> "true"
    | FALSE -> "false"
    | IDENT s -> s
    | INT i -> string_of_int i
    | STRING s -> Printf.sprintf "%S" s
    | CHAR c -> Printf.sprintf "'%c'" c
    | COMMA -> ","
    | DOT -> "."
    | COLON -> ":"
    | LBRACKET -> "["
    | RBRACKET -> "]"
    | LPAREN -> "("
    | RPAREN -> ")"
    | LT -> "<"
    | LE -> "<="
    | GT -> ">"
    | GE -> ">="
    | EQ -> "="
    | NE -> "<>"
    | EOF -> "<eof>")
