(** Tokenizer for the OQL subset. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | IN
  | AND
  | NIL
  | TRUE
  | FALSE
  | IDENT of string
  | INT of int
  | STRING of string
  | CHAR of char
  | COMMA
  | DOT
  | COLON
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | EOF

exception Lex_error of string

(** [tokenize s] — raises {!Lex_error} on malformed input. *)
val tokenize : string -> token list

(** Structural token equality without polymorphic compare. *)
val equal : token -> token -> bool

val pp_token : Format.formatter -> token -> unit
