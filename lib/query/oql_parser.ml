open Oql_ast

exception Parse_error of string

type state = { mutable toks : Oql_lexer.token list }

let peek st = match st.toks with [] -> Oql_lexer.EOF | t :: _ -> t

let peek2 st =
  match st.toks with _ :: t :: _ -> t | _ -> Oql_lexer.EOF

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail_at st msg =
  raise
    (Parse_error
       (Format.asprintf "%s (at %a)" msg Oql_lexer.pp_token (peek st)))

let expect st tok msg =
  if Oql_lexer.equal (peek st) tok then advance st else fail_at st msg

let ident st =
  match peek st with
  | Oql_lexer.IDENT name ->
      advance st;
      name
  | _ -> fail_at st "expected identifier"

(* literal | ident[.ident] | [ fields ] *)
let rec parse_expr st =
  match peek st with
  | Oql_lexer.INT i ->
      advance st;
      Const (L_int i)
  | Oql_lexer.STRING s ->
      advance st;
      Const (L_string s)
  | Oql_lexer.CHAR c ->
      advance st;
      Const (L_char c)
  | Oql_lexer.TRUE ->
      advance st;
      Const (L_bool true)
  | Oql_lexer.FALSE ->
      advance st;
      Const (L_bool false)
  | Oql_lexer.NIL ->
      advance st;
      Const L_nil
  | Oql_lexer.IDENT _ -> begin
      let v = ident st in
      match peek st with
      | Oql_lexer.DOT ->
          advance st;
          Path (v, ident st)
      | _ -> Var v
    end
  | Oql_lexer.LBRACKET ->
      advance st;
      let rec fields acc =
        let fld =
          match peek st with
          | Oql_lexer.IDENT _ -> begin
              let name = ident st in
              match peek st with
              | Oql_lexer.COLON ->
                  advance st;
                  (name, parse_expr st)
              | Oql_lexer.DOT ->
                  (* shorthand: p.name contributes a field called "name" *)
                  advance st;
                  let attr = ident st in
                  (attr, Path (name, attr))
              | _ -> (name, Var name)
            end
          | _ -> fail_at st "expected tuple field"
        in
        let acc = fld :: acc in
        match peek st with
        | Oql_lexer.COMMA ->
            advance st;
            fields acc
        | Oql_lexer.RBRACKET ->
            advance st;
            List.rev acc
        | _ -> fail_at st "expected ',' or ']'"
      in
      Mk_tuple (fields [])
  | _ -> fail_at st "expected expression"

let parse_cmp st =
  let cmp =
    match peek st with
    | Oql_lexer.LT -> Lt
    | Oql_lexer.LE -> Le
    | Oql_lexer.GT -> Gt
    | Oql_lexer.GE -> Ge
    | Oql_lexer.EQ -> Eq
    | Oql_lexer.NE -> Ne
    | _ -> fail_at st "expected comparison operator"
  in
  advance st;
  cmp

let rec parse_pred_atoms st =
  let atom =
    match peek st with
    | Oql_lexer.LPAREN ->
        advance st;
        let p = parse_pred_atoms st in
        expect st Oql_lexer.RPAREN "expected ')'";
        p
    | Oql_lexer.TRUE ->
        advance st;
        True
    | _ ->
        let lhs = parse_expr st in
        let cmp = parse_cmp st in
        let rhs = parse_expr st in
        Cmp (lhs, cmp, rhs)
  in
  match peek st with
  | Oql_lexer.AND ->
      advance st;
      And (atom, parse_pred_atoms st)
  | _ -> atom

let agg_of_name name =
  match String.lowercase_ascii name with
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

let parse_projection st =
  match peek st with
  | Oql_lexer.IDENT name when Oql_lexer.equal (peek2 st) Oql_lexer.LPAREN -> (
      match agg_of_name name with
      | Some agg ->
          advance st;
          advance st;
          let e = parse_expr st in
          expect st Oql_lexer.RPAREN "expected ')' after aggregate";
          Aggregate (agg, e)
      | None -> fail_at st "unknown aggregate function")
  | _ -> Rows (parse_expr st)

let parse_binding st =
  let var = ident st in
  expect st Oql_lexer.IN "expected 'in'";
  let base = ident st in
  match peek st with
  | Oql_lexer.DOT ->
      advance st;
      { var; source = Sub_collection (base, ident st) }
  | _ -> { var; source = Extent base }

let parse_query st =
  expect st Oql_lexer.SELECT "expected 'select'";
  let select = parse_projection st in
  expect st Oql_lexer.FROM "expected 'from'";
  let rec bindings acc =
    let acc = parse_binding st :: acc in
    match peek st with
    | Oql_lexer.COMMA ->
        advance st;
        bindings acc
    | _ -> List.rev acc
  in
  let from = bindings [] in
  let where =
    match peek st with
    | Oql_lexer.WHERE ->
        advance st;
        parse_pred_atoms st
    | _ -> True
  in
  expect st Oql_lexer.EOF "trailing input";
  { select; from; where }

let parse s = parse_query { toks = Oql_lexer.tokenize s }

let parse_pred s =
  let st = { toks = Oql_lexer.tokenize s } in
  let p = parse_pred_atoms st in
  expect st Oql_lexer.EOF "trailing input";
  p
