(* Packed execution: predicate evaluation and payload harvest straight off
   slotted-page record bytes.

   A predicate + key + payload request against a class is compiled once per
   operator into an *offset program*: a slot-ordered seek pass that records
   the byte position of every needed attribute (one [Codec.skip] walk over
   the record prefix — variable-length attributes make constant offsets
   unsound, any slot may hold a 1-byte Nil), then evaluation steps that
   compare or decode at those positions.  Rejected rows decode nothing: an
   integer predicate is a tag check and a 4-byte load, a string predicate a
   byte loop — no [Value.t], no Handle attribute walk.

   Charge discipline: evaluation re-issues exactly the charges the Handle
   path makes, in the same order — per predicate a [charge_compare] then a
   [charge_get_att]; per key / payload attribute a [charge_get_att] — so the
   golden counter fingerprint is byte-identical with packed execution on or
   off.  The seek pass itself is charge-free host work, exactly like the
   offset bookkeeping the Handle path used to do.

   This module is the single place the query layer reads raw record bytes
   (treelint R5 whitelists its [Bytes.unsafe_get]); everything it reads was
   bounds-established by [Codec.skip] over the same buffer. *)

module Value = Tb_store.Value
module Database = Tb_store.Database
module Codec = Tb_store.Codec
module Rid = Tb_storage.Rid
module Sim = Tb_sim.Sim

type const = C_int of int | C_string of string

type pinstr = {
  src : int;  (* scratch register holding the attribute's position *)
  pcmp : Oql_ast.cmp;
  pconst : const;
  pfallback : Value.t;  (* original constant, for the decode fallback *)
}

(* One step of the seek pass: skip [skips] encoded values from the cursor,
   then record the cursor into scratch register [dst]. *)
type seek = { skips : int; dst : int }

type prog = {
  seeks : seek array;
  scratch : int array;  (* absolute attribute offsets, filled per record *)
  preds : pinstr array;  (* in predicate order *)
  payload : (string * int) array;  (* (attr, register), in select order *)
  inverse : int;  (* register of the inverse reference; -1 for K_self *)
}

(* A predicate is packed-compilable when its constant compares by raw
   bytes: ints (tag + int32) and strings (tag + u16 length + bytes).
   Decided from the constant alone so {!Planner.lower} stays pure — a
   runtime tag mismatch falls back to decoding (see [eval_preds]). *)
let compilable preds =
  List.for_all
    (fun (p : Plan.attr_pred) ->
      match p.Plan.const with
      | Value.Int _ | Value.String _ -> true
      | Value.Nil | Value.Real _ | Value.Bool _ | Value.Char _ | Value.Ref _
      | Value.Tuple _ | Value.Set _ | Value.List _ | Value.Big_set _ ->
          false)
    preds

let compile db ~cls ?(preds = []) ?(key = Op.K_self) ?(attrs = []) () =
  let pred_slots =
    List.map (fun (p : Plan.attr_pred) -> Database.attr_slot db ~cls p.Plan.attr) preds
  in
  let payload_slots = List.map (fun a -> Database.attr_slot db ~cls a) attrs in
  let inverse_slot =
    match key with
    | Op.K_self -> None
    | Op.K_inverse attr -> Some (Database.attr_slot db ~cls attr)
  in
  let needed =
    List.sort_uniq Int.compare
      (pred_slots @ payload_slots
      @ (match inverse_slot with Some s -> [ s ] | None -> []))
  in
  let reg_of_slot slot =
    let rec go i = function
      | [] -> invalid_arg "Packed.compile: unregistered slot"
      | s :: _ when s = slot -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 needed
  in
  let seeks =
    let prev = ref 0 in
    Array.of_list
      (List.mapi
         (fun i slot ->
           let skips = slot - !prev in
           prev := slot;
           { skips; dst = i })
         needed)
  in
  let preds =
    Array.of_list
      (List.map2
         (fun (p : Plan.attr_pred) slot ->
           {
             src = reg_of_slot slot;
             pcmp = p.Plan.cmp;
             pconst =
               (match p.Plan.const with
               | Value.Int k -> C_int k
               | Value.String s -> C_string s
               | _ -> invalid_arg "Packed.compile: non-compilable constant");
             pfallback = p.Plan.const;
           })
         preds pred_slots)
  in
  {
    seeks;
    scratch = Array.make (List.length needed) 0;
    preds;
    payload =
      Array.of_list (List.map2 (fun a slot -> (a, reg_of_slot slot)) attrs payload_slots);
    inverse = (match inverse_slot with Some s -> reg_of_slot s | None -> -1);
  }

(* Charge-free position pass: one cursor walk from the first attribute,
   recording where each needed slot's encoding starts. *)
let seek_all prog buf ~pos =
  let cursor = ref pos in
  Array.iter
    (fun { skips; dst } ->
      for _ = 1 to skips do
        cursor := Codec.skip buf ~pos:!cursor
      done;
      prog.scratch.(dst) <- !cursor)
    prog.seeks

let apply_cmp cmp ord =
  match cmp with
  | Oql_ast.Lt -> ord < 0
  | Oql_ast.Le -> ord <= 0
  | Oql_ast.Gt -> ord > 0
  | Oql_ast.Ge -> ord >= 0
  | Oql_ast.Eq -> ord = 0
  | Oql_ast.Ne -> ord <> 0

(* String.compare on the encoded bytes, without building the string. *)
let cmp_str buf base len s =
  let slen = String.length s in
  let n = if len < slen then len else slen in
  let rec go i =
    if i >= n then Int.compare len slen
    else
      let c = Char.compare (Bytes.unsafe_get buf (base + i)) (String.unsafe_get s i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Per predicate: the Handle path's exact charges (one compare, one
   get_att), then a raw-byte comparison at the recorded position.  A tag
   other than the constant's — a Nil attribute, say — falls back to
   decoding the value and [Oql_ast.eval_cmp], reproducing the Handle
   path's results and errors bit for bit. *)
let eval_preds db prog buf =
  let sim = Database.sim db in
  let n = Array.length prog.preds in
  let rec go i =
    i >= n
    ||
    let p = prog.preds.(i) in
    Sim.charge_compare sim 1;
    Sim.charge_get_att sim;
    let pos = prog.scratch.(p.src) in
    let tag = Char.code (Bytes.unsafe_get buf pos) in
    let pass =
      match p.pconst with
      | C_int k when tag = Codec.tag_int ->
          apply_cmp p.pcmp
            (Int.compare (Int32.to_int (Bytes.get_int32_le buf (pos + 1))) k)
      | C_string s when tag = Codec.tag_string ->
          apply_cmp p.pcmp
            (cmp_str buf (pos + 3) (Bytes.get_uint16_le buf (pos + 1)) s)
      | C_int _ | C_string _ ->
          Oql_ast.eval_cmp p.pcmp (fst (Codec.decode buf ~pos)) p.pfallback
    in
    pass && go (i + 1)
  in
  go 0

(* Join key off the record bytes: the object's own identity (free, as in
   [Operators.compile_key]) or the stored inverse reference (one get_att
   charge, Rid decoded straight from the encoding). *)
let eval_key db prog buf ~self =
  if prog.inverse < 0 then Some self
  else begin
    Sim.charge_get_att (Database.sim db);
    let pos = prog.scratch.(prog.inverse) in
    let tag = Char.code (Bytes.unsafe_get buf pos) in
    if tag = Codec.tag_ref then Some (Rid.decode buf ~pos:(pos + 1))
    else if tag = Codec.tag_nil then None
    else invalid_arg "Exec: inverse attribute is not a reference"
  end

(* Harvest the payload attributes in select order: per attribute the
   Handle path's get_att charge, then one decode at the recorded position
   (the packed path's only per-row [Value.t] allocation, for rows that
   survived the predicates). *)
let make_payload db prog buf ~self =
  let sim = Database.sim db in
  {
    Op.self;
    attrs =
      Array.to_list
        (Array.map
           (fun (name, reg) ->
             Sim.charge_get_att sim;
             (name, fst (Codec.decode buf ~pos:prog.scratch.(reg))))
           prog.payload);
  }
