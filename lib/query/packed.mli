(** Packed execution: offset programs over slotted-page record bytes.

    Compiles a predicate conjunction, join key and payload prefix against a
    class's schema slots into a flat program evaluated in place on the
    record bytes a {!Tb_store.Database.packed_body} exposes — no Handle
    attribute walk, and no [Value.t] decode for rows a predicate rejects.

    Charge discipline: {!eval_preds}, {!eval_key} and {!make_payload}
    re-issue exactly the simulated charges of the Handle path
    ({!Operators.eval_preds} / [compile_key] / [make_payload]) in the same
    order, so switching paths never moves a counter.  {!seek_all} is
    charge-free host work.  This module is a charging kernel in the sense
    of treelint R1 (listed in [charge_allowed]) and the only query-layer
    module allowed raw byte reads (R5). *)

type prog

(** [compilable preds] — every predicate constant compares by raw bytes
    (ints and strings).  Pure; {!Planner.lower} consults this to pick the
    execution mode. *)
val compilable : Plan.attr_pred list -> bool

(** [compile db ~cls ?preds ?key ?attrs ()] resolves attribute names to
    schema slots and lays out the seek/evaluation program.  Raises
    [Invalid_argument] if a predicate constant is not compilable — callers
    must check {!compilable} first. *)
val compile :
  Tb_store.Database.t ->
  cls:string ->
  ?preds:Plan.attr_pred list ->
  ?key:Op.key_spec ->
  ?attrs:string list ->
  unit ->
  prog

(** [seek_all prog buf ~pos] records the byte position of every attribute
    the program needs, walking once from [pos] (the record's first
    attribute).  Charge-free; must precede the evaluators for each row. *)
val seek_all : prog -> bytes -> pos:int -> unit

(** [eval_preds db prog buf] evaluates the conjunction left to right with
    short-circuit, charging one compare and one get_att per predicate
    evaluated — exactly the Handle path's sequence. *)
val eval_preds : Tb_store.Database.t -> prog -> bytes -> bool

(** [eval_key db prog buf ~self] is the join key: [Some self] (charge-free)
    when the program was compiled with [K_self], otherwise the stored
    inverse reference (one get_att charge; [None] on Nil; raises
    [Invalid_argument] when the attribute is not a reference — the Handle
    path's exact behaviour). *)
val eval_key :
  Tb_store.Database.t -> prog -> bytes -> self:Tb_storage.Rid.t -> Tb_storage.Rid.t option

(** [make_payload db prog buf ~self] harvests the payload attributes in
    select order, one get_att charge per attribute. *)
val make_payload :
  Tb_store.Database.t -> prog -> bytes -> self:Tb_storage.Rid.t -> Op.payload
