module Value = Tb_store.Value
module Schema = Tb_store.Schema
module Database = Tb_store.Database

exception Unsupported of string

type attr_pred = { attr : string; cmp : Oql_ast.cmp; const : Value.t }

type access =
  | Seq_scan of { cls : string; preds : attr_pred list }
  | Index_scan of {
      index : Tb_store.Index_def.t;
      lo : int option;
      hi : int option;
      sorted : bool;
      residual : attr_pred list;
    }

type join_algo = NL | NOJOIN | PHJ | CHJ | PHHJ | CHHJ | SMJ

type t =
  | Selection of {
      var : string;
      cls : string;
      access : access;
      select : Oql_ast.expr;
      aggregate : Oql_ast.agg option;
    }
  | Hier_join of {
      algo : join_algo;
      parent_var : string;
      parent_cls : string;
      child_var : string;
      child_cls : string;
      set_attr : string;
      inv_attr : string option;
      parent_access : access;
      child_access : access;
      partitions : int;
      select : Oql_ast.expr;
      aggregate : Oql_ast.agg option;
    }

type bound =
  | B_selection of {
      var : string;
      cls : string;
      preds : attr_pred list;
      select : Oql_ast.expr;
      aggregate : Oql_ast.agg option;
    }
  | B_hier of {
      parent_var : string;
      parent_cls : string;
      child_var : string;
      child_cls : string;
      set_attr : string;
      inv_attr : string option;
      parent_preds : attr_pred list;
      child_preds : attr_pred list;
      select : Oql_ast.expr;
      aggregate : Oql_ast.agg option;
    }

let flip = function
  | Oql_ast.Lt -> Oql_ast.Gt
  | Oql_ast.Le -> Oql_ast.Ge
  | Oql_ast.Gt -> Oql_ast.Lt
  | Oql_ast.Ge -> Oql_ast.Le
  | Oql_ast.Eq -> Oql_ast.Eq
  | Oql_ast.Ne -> Oql_ast.Ne

(* Resolve an extent name through the schema roots: a root of type
   set(ClassName) names the extent of that class. *)
let extent_class schema name =
  match List.assoc_opt name (Schema.roots schema) with
  | Some (Schema.TSet (Schema.TRef cls)) | Some (Schema.TList (Schema.TRef cls))
    ->
      cls
  | Some _ -> raise (Unsupported ("root " ^ name ^ " is not an object extent"))
  | None -> invalid_arg ("unknown extent " ^ name)

let check_attr schema ~cls ~attr =
  match Schema.attr_type schema ~cls ~attr with
  | _ -> ()
  | exception Not_found ->
      invalid_arg (Printf.sprintf "class %s has no attribute %s" cls attr)

(* Normalize one conjunct into (var, attr_pred). *)
let normalize_conjunct vars = function
  | Oql_ast.Cmp (Oql_ast.Path (v, attr), cmp, Oql_ast.Const lit)
    when List.mem v vars ->
      (v, { attr; cmp; const = Oql_ast.literal_to_value lit })
  | Oql_ast.Cmp (Oql_ast.Const lit, cmp, Oql_ast.Path (v, attr))
    when List.mem v vars ->
      (v, { attr; cmp = flip cmp; const = Oql_ast.literal_to_value lit })
  | p ->
      raise
        (Unsupported
           (Format.asprintf "predicate %a is not of the form var.attr CMP const"
              Oql_ast.pp_pred p))

let check_select_vars vars select =
  let rec go = function
    | Oql_ast.Const _ -> ()
    | Oql_ast.Var v | Oql_ast.Path (v, _) ->
        if not (List.mem v vars) then invalid_arg ("unknown variable " ^ v)
    | Oql_ast.Mk_tuple fields -> List.iter (fun (_, e) -> go e) fields
  in
  go select

(* The child class attribute referencing the parent class, if the schema
   declares one (the ODMG inverse traversal path). *)
let infer_inverse schema ~parent_cls ~child_cls =
  let child = Schema.find_class schema child_cls in
  List.find_map
    (fun (attr, ty) ->
      match ty with
      | Schema.TRef c when String.equal c parent_cls -> Some attr
      | _ -> None)
    child.Schema.attrs

let bind db (q : Oql_ast.query) =
  let schema = Database.schema db in
  let select, aggregate =
    match q.Oql_ast.select with
    | Oql_ast.Rows e -> (e, None)
    | Oql_ast.Aggregate (a, e) -> (e, Some a)
  in
  match q.Oql_ast.from with
  | [ { var; source = Oql_ast.Extent root } ] ->
      let cls = extent_class schema root in
      check_select_vars [ var ] select;
      let preds =
        List.map (normalize_conjunct [ var ]) (Oql_ast.conjuncts q.Oql_ast.where)
      in
      List.iter
        (fun (v, p) ->
          assert (String.equal v var);
          check_attr schema ~cls ~attr:p.attr)
        preds;
      B_selection { var; cls; preds = List.map snd preds; select; aggregate }
  | [
   { var = parent_var; source = Oql_ast.Extent root };
   { var = child_var; source = Oql_ast.Sub_collection (owner, set_attr) };
  ] ->
      if not (String.equal owner parent_var) then
        raise
          (Unsupported
             (Printf.sprintf "%s ranges over %s.%s but %s is not a prior variable"
                child_var owner set_attr owner));
      let parent_cls = extent_class schema root in
      let child_cls =
        match Schema.attr_type schema ~cls:parent_cls ~attr:set_attr with
        | Schema.TSet (Schema.TRef c) | Schema.TList (Schema.TRef c) -> c
        | _ ->
            raise
              (Unsupported
                 (Printf.sprintf "%s.%s is not a collection of objects"
                    parent_cls set_attr))
        | exception Not_found ->
            invalid_arg
              (Printf.sprintf "class %s has no attribute %s" parent_cls set_attr)
      in
      let vars = [ parent_var; child_var ] in
      check_select_vars vars select;
      let preds =
        List.map (normalize_conjunct vars) (Oql_ast.conjuncts q.Oql_ast.where)
      in
      let parent_preds =
        List.filter_map
          (fun (v, p) -> if String.equal v parent_var then Some p else None)
          preds
      and child_preds =
        List.filter_map
          (fun (v, p) -> if String.equal v child_var then Some p else None)
          preds
      in
      List.iter (fun p -> check_attr schema ~cls:parent_cls ~attr:p.attr) parent_preds;
      List.iter (fun p -> check_attr schema ~cls:child_cls ~attr:p.attr) child_preds;
      B_hier
        {
          parent_var;
          parent_cls;
          child_var;
          child_cls;
          set_attr;
          inv_attr = infer_inverse schema ~parent_cls ~child_cls;
          parent_preds;
          child_preds;
          select;
          aggregate;
        }
  | [] -> raise (Unsupported "empty from clause")
  | _ ->
      raise
        (Unsupported
           "only single-extent queries and extent + sub-collection joins are \
            supported")

let key_range p =
  match p.const with
  | Value.Int k -> (
      match p.cmp with
      | Oql_ast.Lt -> Some (None, Some k)
      | Oql_ast.Le -> Some (None, Some (k + 1))
      | Oql_ast.Gt -> Some (Some (k + 1), None)
      | Oql_ast.Ge -> Some (Some k, None)
      | Oql_ast.Eq -> Some (Some k, Some (k + 1))
      | Oql_ast.Ne -> None)
  | _ -> None

let needed_attrs var expr =
  let attrs = ref [] in
  let self = ref false in
  let rec go = function
    | Oql_ast.Const _ -> ()
    | Oql_ast.Var v -> if String.equal v var then self := true
    | Oql_ast.Path (v, a) ->
        if String.equal v var && not (List.mem a !attrs) then attrs := a :: !attrs
    | Oql_ast.Mk_tuple fields -> List.iter (fun (_, e) -> go e) fields
  in
  go expr;
  (List.rev !attrs, !self)

let algo_name = function
  | NL -> "NL"
  | NOJOIN -> "NOJOIN"
  | PHJ -> "PHJ"
  | CHJ -> "CHJ"
  | PHHJ -> "PHHJ"
  | CHHJ -> "CHHJ"
  | SMJ -> "SMJ"

let pp_access ppf = function
  | Seq_scan { cls; preds } ->
      Format.fprintf ppf "seq_scan(%s)[%d preds]" cls (List.length preds)
  | Index_scan { index; lo; hi; sorted; residual } ->
      Format.fprintf ppf "index_scan(%s%s)[%s,%s)%s"
        index.Tb_store.Index_def.name
        (if sorted then ", sorted" else "")
        (match lo with Some k -> string_of_int k | None -> "-inf")
        (match hi with Some k -> string_of_int k | None -> "+inf")
        (match residual with
        | [] -> ""
        | _ -> Printf.sprintf " +%d residual" (List.length residual))

let pp_aggregate ppf = function
  | None -> ()
  | Some a -> Format.fprintf ppf " agg:%s" (Oql_ast.agg_name a)

let pp ppf = function
  | Selection { var; cls; access; aggregate; _ } ->
      Format.fprintf ppf "select %s:%s via %a%a" var cls pp_access access
        pp_aggregate aggregate
  | Hier_join
      {
        algo;
        parent_cls;
        child_cls;
        parent_access;
        child_access;
        partitions;
        aggregate;
        _;
      } ->
      Format.fprintf ppf "%s(%s, %s) parent:%a child:%a%s%a" (algo_name algo)
        parent_cls child_cls pp_access parent_access pp_access child_access
        (match algo with
        | PHHJ | CHHJ -> Printf.sprintf " partitions:%d" partitions
        | NL | NOJOIN | PHJ | CHJ | SMJ -> "")
        pp_aggregate aggregate
