module Database = Tb_store.Database
module Index_def = Tb_store.Index_def
module Schema = Tb_store.Schema

type mode = Heuristic | Cost_based

(* --- statistics --- *)

let pred_selectivity db ~cls (p : Plan.attr_pred) =
  match (Plan.key_range p, Database.find_index db ~cls ~attr:p.Plan.attr) with
  | Some (lo, hi), Some ix ->
      let below = function
        | Some k -> Index_def.selectivity_below ix k
        | None -> 1.0
      in
      let above = match lo with Some k -> Index_def.selectivity_below ix k | None -> 0.0 in
      Float.max 0.001 (below hi -. above)
  | _ -> (
      (* System-R style magic numbers when no statistics help. *)
      match p.Plan.cmp with
      | Oql_ast.Eq -> 0.01
      | Oql_ast.Ne -> 0.99
      | Oql_ast.Lt | Oql_ast.Le | Oql_ast.Gt | Oql_ast.Ge -> 1.0 /. 3.0)

let side_selectivity db ~cls preds =
  List.fold_left (fun acc p -> acc *. pred_selectivity db ~cls p) 1.0 preds

(* --- access path construction --- *)

(* Choose the most selective indexable conjunct; the rest stay residual. *)
let choose_access db ~cls ~preds ~sorted ~force_seq =
  let candidates =
    if force_seq then []
    else
      List.filter_map
        (fun p ->
          match (Plan.key_range p, Database.find_index db ~cls ~attr:p.Plan.attr) with
          | Some (lo, hi), Some ix -> Some (p, ix, lo, hi, pred_selectivity db ~cls p)
          | _ -> None)
        preds
  in
  match candidates with
  | [] -> Plan.Seq_scan { cls; preds }
  | _ :: _ ->
      let best =
        List.fold_left
          (fun acc c ->
            let _, _, _, _, sel = c and _, _, _, _, best_sel = acc in
            if sel < best_sel then c else acc)
          (List.hd candidates) (List.tl candidates)
      in
      let chosen, index, lo, hi, _ = best in
      let residual = List.filter (fun p -> p != chosen) preds in
      Plan.Index_scan { index; lo; hi; sorted; residual }

let rough_attr_bytes schema ~cls attr =
  match Schema.attr_type schema ~cls ~attr with
  | Schema.TInt -> 5
  | Schema.TString -> 21
  | Schema.TChar | Schema.TBool -> 2
  | Schema.TReal -> 9
  | Schema.TRef _ -> 9
  | Schema.TSet _ | Schema.TList _ | Schema.TTuple _ -> 16
  | exception Not_found -> 9

let payload_bytes_of db ~cls ~var select =
  let attrs, _self = Plan.needed_attrs var select in
  List.fold_left
    (fun acc a -> acc + rough_attr_bytes (Database.schema db) ~cls a)
    Tb_storage.Rid.on_disk_bytes attrs

(* --- env assembly --- *)

let make_side db ~cls ~preds ~payload =
  let card = Database.cardinality db ~cls in
  let pages = Database.extent_pages db ~cls in
  let indexable =
    List.filter_map
      (fun p ->
        match (Plan.key_range p, Database.find_index db ~cls ~attr:p.Plan.attr) with
        | Some _, Some ix -> Some ix
        | _ -> None)
      preds
  in
  {
    Estimate.card;
    pages;
    sel = side_selectivity db ~cls preds;
    has_index = (match indexable with [] -> false | _ -> true);
    index_clustered =
      (match indexable with ix :: _ -> Index_def.is_clustered ix | [] -> false);
    payload_bytes = payload;
  }

let default_organization db ~parent_cls ~child_cls =
  let same =
    Tb_storage.Heap_file.file_id (Database.class_file db ~cls:parent_cls)
    = Tb_storage.Heap_file.file_id (Database.class_file db ~cls:child_cls)
  in
  if same then Estimate.Shared_random else Estimate.Separate_files

let join_env db bound ~organization =
  match bound with
  | Plan.B_selection _ -> invalid_arg "Planner.join_env: not a join"
  | Plan.B_hier
      {
        parent_var;
        parent_cls;
        child_var;
        child_cls;
        parent_preds;
        child_preds;
        select;
        _;
      } ->
      let sim = Database.sim db in
      let parent =
        make_side db ~cls:parent_cls ~preds:parent_preds
          ~payload:(payload_bytes_of db ~cls:parent_cls ~var:parent_var select)
      in
      let child =
        make_side db ~cls:child_cls ~preds:child_preds
          ~payload:(payload_bytes_of db ~cls:child_cls ~var:child_var select)
      in
      {
        Estimate.cost = sim.Tb_sim.Sim.cost;
        organization;
        client_cache_pages =
          Tb_storage.Cache_stack.client_capacity (Database.stack db);
        parent;
        child;
        fanout =
          (if parent.Estimate.card = 0 then 0.0
           else float_of_int child.Estimate.card /. float_of_int parent.Estimate.card);
        result_bytes_per_row =
          parent.Estimate.payload_bytes + child.Estimate.payload_bytes + 16;
      }

(* --- plan construction --- *)

let selection_plan db ~mode ~force_sorted ~force_seq ~var ~cls ~preds ~select
    ~aggregate =
  let sorted =
    match force_sorted with
    | Some s -> s
    | None -> (
        match mode with
        | Heuristic -> false (* O2 fetched in index order, unsorted *)
        | Cost_based ->
            (* Sorting the Rids is the Section 4.2 win; cost it both ways. *)
            let side = make_side db ~cls ~preds ~payload:16 in
            let env =
              {
                Estimate.cost = (Database.sim db).Tb_sim.Sim.cost;
                organization = Estimate.Separate_files;
                client_cache_pages =
                  Tb_storage.Cache_stack.client_capacity (Database.stack db);
                parent = side;
                child = side;
                fanout = 0.0;
                result_bytes_per_row = 24;
              }
            in
            Estimate.selection_index_ms env ~sorted:true
            <= Estimate.selection_index_ms env ~sorted:false)
  in
  let access = choose_access db ~cls ~preds ~sorted ~force_seq in
  (* Cost-based planning falls back to the scan when the index loses (the
     1%-5% crossover of Section 4.2). *)
  let access =
    match (mode, access) with
    | Cost_based, Plan.Index_scan { sorted; _ } ->
        let side = make_side db ~cls ~preds ~payload:16 in
        let env =
          {
            Estimate.cost = (Database.sim db).Tb_sim.Sim.cost;
            organization = Estimate.Separate_files;
            client_cache_pages =
              Tb_storage.Cache_stack.client_capacity (Database.stack db);
            parent = side;
            child = side;
            fanout = 0.0;
            result_bytes_per_row = 24;
          }
        in
        if
          Estimate.selection_seq_ms env
          < Estimate.selection_index_ms env ~sorted
          && not (force_seq || Option.is_some force_sorted)
        then Plan.Seq_scan { cls; preds }
        else access
    | _ -> access
  in
  Plan.Selection { var; cls; access; select; aggregate }

let join_plan db ~mode ~organization ~force_algo ~force_sorted ~force_seq bound =
  match bound with
  | Plan.B_selection _ -> assert false
  | Plan.B_hier
      {
        parent_var;
        parent_cls;
        child_var;
        child_cls;
        set_attr;
        inv_attr;
        parent_preds;
        child_preds;
        select;
        aggregate;
      } ->
      let organization =
        match organization with
        | Some o -> o
        | None -> default_organization db ~parent_cls ~child_cls
      in
      let env = join_env db bound ~organization in
      let algo =
        match force_algo with
        | Some a -> a
        | None -> (
            match mode with
            | Heuristic -> Plan.NL (* the navigation bias of Section 2 *)
            | Cost_based ->
                let viable (a, _) =
                  match a with
                  | Plan.NL -> true
                  | Plan.NOJOIN | Plan.PHJ | Plan.CHJ | Plan.PHHJ | Plan.CHHJ
                  | Plan.SMJ ->
                      Option.is_some inv_attr
                in
                (match List.filter viable (Estimate.rank_joins env) with
                | (a, _) :: _ -> a
                | [] -> Plan.NL))
      in
      (* Hybrid hashing: enough partitions that each spilled bucket fits
         comfortably in memory. *)
      let partitions =
        let budget =
          0.8 *. float_of_int (Tb_sim.Cost_model.available_bytes
                                 (Database.sim db).Tb_sim.Sim.cost)
        in
        let build_side_bytes =
          let side_bytes (s : Estimate.side) =
            s.Estimate.sel *. float_of_int s.Estimate.card
            *. float_of_int
                 (s.Estimate.payload_bytes + Mem_hash.entry_overhead
                + Mem_hash.group_overhead)
          in
          match algo with
          | Plan.PHHJ -> side_bytes env.Estimate.parent
          | Plan.CHHJ -> side_bytes env.Estimate.child
          | Plan.NL | Plan.NOJOIN | Plan.PHJ | Plan.CHJ | Plan.SMJ -> 0.0
        in
        if budget <= 0.0 then 8
        else max 1 (int_of_float (ceil (build_side_bytes /. budget)))
      in
      let sorted = match force_sorted with Some s -> s | None -> mode = Cost_based in
      let idx cls preds =
        choose_access db ~cls ~preds ~sorted ~force_seq
      in
      let seq cls preds = Plan.Seq_scan { cls; preds } in
      let parent_access, child_access =
        match algo with
        | Plan.NL -> (idx parent_cls parent_preds, seq child_cls child_preds)
        | Plan.NOJOIN -> (seq parent_cls parent_preds, idx child_cls child_preds)
        | Plan.PHJ | Plan.CHJ | Plan.PHHJ | Plan.CHHJ | Plan.SMJ ->
            (idx parent_cls parent_preds, idx child_cls child_preds)
      in
      Plan.Hier_join
        {
          algo;
          parent_var;
          parent_cls;
          child_var;
          child_cls;
          set_attr;
          inv_attr;
          parent_access;
          child_access;
          partitions;
          select;
          aggregate;
        }

let plan ?(mode = Cost_based) ?organization ?force_algo ?force_sorted
    ?(force_seq = false) db q =
  match Plan.bind db q with
  | Plan.B_selection { var; cls; preds; select; aggregate } ->
      selection_plan db ~mode ~force_sorted ~force_seq ~var ~cls ~preds ~select
        ~aggregate
  | Plan.B_hier _ as bound ->
      join_plan db ~mode ~organization ~force_algo ~force_sorted ~force_seq bound

(* --- lowering: Plan.t -> physical operator tree --- *)

(* Lowering is pure plan surgery: attribute names stay symbolic (the
   executor resolves slots once per operator), so no database access — and
   in particular no charge — happens here. *)

let access_preds = function
  | Plan.Seq_scan { preds; _ } -> preds
  | Plan.Index_scan { residual; _ } -> residual

let lower_access access =
  match access with
  | Plan.Seq_scan { cls; _ } -> Op.make (Op.Seq_scan { cls })
  | Plan.Index_scan { index; lo; hi; sorted; _ } ->
      let scan = Op.make (Op.Index_scan { index; lo; hi }) in
      if sorted then Op.make (Op.Sort_rids { child = scan }) else scan

let require_inv = function
  | Some attr -> attr
  | None ->
      raise
        (Plan.Unsupported
           "this algorithm navigates child-to-parent but the schema declares \
            no inverse reference")

let make_finish ~select ~aggregate env_op =
  Op.make
    (Op.Materialize
       { child = Op.make (Op.Project { child = env_op; select }); aggregate })

(* A Fetch that binds [var] to each surviving object of [access].  The
   covering shortcut — skip Handles entirely when the access path
   absorbed every predicate and the query only uses the object's
   identity — is only sound for selections; join sides always need
   attribute or set access.  The packed mode is chosen from the residual
   predicates alone ({!Packed.compilable}), keeping lowering pure. *)
let make_fetch ~packed ~batch ?(covering = false) access ~cls ~var =
  let preds = access_preds access in
  let mode =
    if packed && Packed.compilable preds then Op.Packed else Op.Handle
  in
  Op.make
    (Op.Fetch { child = lower_access access; cls; var; preds; covering; mode; batch })

(* Keys and payload prefixes are always packed-compilable; [~mode] is
   forced to Handle for hybrid probe-side harvests, which the hybrid
   driver evaluates through the Handle kernels. *)
let make_harvest ~packed ?mode side ~key ~cls ~var select =
  let mode =
    match mode with
    | Some m -> m
    | None -> if packed then Op.Packed else Op.Handle
  in
  let attrs, _self = Plan.needed_attrs var select in
  Op.make (Op.Harvest { child = side; key; cls; attrs; mode })

let lower ?(packed = true) ?(batch = 256) plan =
  let finish = make_finish in
  let fetch ?covering access ~cls ~var =
    make_fetch ~packed ~batch ?covering access ~cls ~var
  in
  let harvest ?mode side ~key ~cls ~var select =
    make_harvest ~packed ?mode side ~key ~cls ~var select
  in
  match plan with
  | Plan.Selection { var; cls; access; select; aggregate } ->
      let covering =
        match (access_preds access, Plan.needed_attrs var select) with
        | [], ([], _) -> true
        | _ -> false
      in
      finish ~select ~aggregate (fetch ~covering access ~cls ~var)
  | Plan.Hier_join
      {
        algo;
        parent_var;
        parent_cls;
        child_var;
        child_cls;
        set_attr;
        inv_attr;
        parent_access;
        child_access;
        partitions;
        select;
        aggregate;
      } -> (
      let parent_fetch () =
        fetch parent_access ~cls:parent_cls ~var:parent_var
      in
      let child_fetch () = fetch child_access ~cls:child_cls ~var:child_var in
      let parent_harvest ?mode () =
        harvest ?mode (parent_fetch ()) ~key:Op.K_self ~cls:parent_cls
          ~var:parent_var select
      in
      let child_harvest ?mode () =
        harvest ?mode
          (child_fetch ())
          ~key:(Op.K_inverse (require_inv inv_attr))
          ~cls:child_cls ~var:child_var select
      in
      let partitions = max 1 partitions in
      match algo with
      | Plan.NL ->
          (* NL cannot use the child index: the child side's predicates
             are evaluated during navigation. *)
          let child_preds =
            match child_access with
            | Plan.Seq_scan { preds; _ } -> preds
            | Plan.Index_scan _ ->
                invalid_arg "Exec: NL child access must be a scan"
          in
          finish ~select ~aggregate
            (Op.make
               (Op.Nav_set
                  {
                    child = parent_fetch ();
                    set_attr;
                    owner_cls = parent_cls;
                    nav_var = child_var;
                    nav_cls = child_cls;
                    preds = child_preds;
                  }))
      | Plan.NOJOIN ->
          let parent_preds =
            match parent_access with
            | Plan.Seq_scan { preds; _ } -> preds
            | Plan.Index_scan _ ->
                invalid_arg "Exec: NOJOIN parent access must be a scan"
          in
          finish ~select ~aggregate
            (Op.make
               (Op.Nav_inverse
                  {
                    child = child_fetch ();
                    inv_attr = require_inv inv_attr;
                    owner_cls = child_cls;
                    nav_var = parent_var;
                    nav_cls = parent_cls;
                    preds = parent_preds;
                  }))
      | Plan.PHJ ->
          finish ~select ~aggregate
            (Op.make
               (Op.Hash_probe
                  {
                    build = Op.make (Op.Hash_build { child = parent_harvest () });
                    probe = child_fetch ();
                    probe_key = Op.K_inverse (require_inv inv_attr);
                    probe_cls = child_cls;
                    build_var = parent_var;
                    probe_var = child_var;
                  }))
      | Plan.CHJ ->
          finish ~select ~aggregate
            (Op.make
               (Op.Hash_probe
                  {
                    build = Op.make (Op.Hash_build { child = child_harvest () });
                    probe = parent_fetch ();
                    probe_key = Op.K_self;
                    probe_cls = parent_cls;
                    build_var = child_var;
                    probe_var = parent_var;
                  }))
      | Plan.PHHJ ->
          finish ~select ~aggregate
            (Op.make
               (Op.Hash_probe
                  {
                    build =
                      Op.make
                        (Op.Hash_build
                           {
                             child =
                               Op.make
                                 (Op.Spill_partition
                                    { child = parent_harvest (); partitions });
                           });
                    probe =
                      Op.make
                        (Op.Spill_partition
                           { child = child_harvest ~mode:Op.Handle (); partitions });
                    probe_key = Op.K_inverse (require_inv inv_attr);
                    probe_cls = child_cls;
                    build_var = parent_var;
                    probe_var = child_var;
                  }))
      | Plan.CHHJ ->
          finish ~select ~aggregate
            (Op.make
               (Op.Hash_probe
                  {
                    build =
                      Op.make
                        (Op.Hash_build
                           {
                             child =
                               Op.make
                                 (Op.Spill_partition
                                    { child = child_harvest (); partitions });
                           });
                    probe =
                      Op.make
                        (Op.Spill_partition
                           { child = parent_harvest ~mode:Op.Handle (); partitions });
                    probe_key = Op.K_self;
                    probe_cls = parent_cls;
                    build_var = child_var;
                    probe_var = parent_var;
                  }))
      | Plan.SMJ ->
          finish ~select ~aggregate
            (Op.make
               (Op.Merge
                  {
                    left = Op.make (Op.Sort { child = parent_harvest () });
                    right = Op.make (Op.Sort { child = child_harvest () });
                    left_var = parent_var;
                    right_var = child_var;
                  })))

(* --- sharded lowering: Plan.t -> Gather over per-shard subtrees --- *)

module Shard_map = Tb_store.Shard_map

(* The logical plan is made against shard 0, whose Index_def values name
   shard 0's B-trees; every shard replicates the same index set, so the
   per-shard subtree swaps in its own catalog entry by (class, attribute).
   Still pure plan surgery: [Database.find_index] is a catalog lookup and
   never touches pages. *)
let remap_access db access =
  match access with
  | Plan.Seq_scan _ -> access
  | Plan.Index_scan { index; lo; hi; sorted; residual } -> (
      match
        Database.find_index db ~cls:index.Index_def.cls
          ~attr:index.Index_def.attr
      with
      | Some index -> Plan.Index_scan { index; lo; hi; sorted; residual }
      | None ->
          invalid_arg
            ("Planner: shard is missing replicated index " ^ index.Index_def.name))

let remap_plan db = function
  | Plan.Selection ({ access; _ } as r) ->
      Plan.Selection { r with access = remap_access db access }
  | Plan.Hier_join ({ parent_access; child_access; _ } as r) ->
      Plan.Hier_join
        {
          r with
          parent_access = remap_access db parent_access;
          child_access = remap_access db child_access;
        }

let key_name = function Op.K_self -> "self" | Op.K_inverse a -> a

(* One shard's lane of an exchange (hash-join) plan: both sides harvested
   locally, routed through Exchange by retagged join key, rebuilt and
   probed on the destination.  PHHJ/CHHJ degenerate to their in-memory
   cousins — repartitioning already splits the build side S ways, which is
   exactly the memory-pressure relief the spill partitions bought. *)
let hash_lane ~packed ~batch ~shards ~shard plan_s =
  match plan_s with
  | Plan.Hier_join
      {
        algo;
        parent_var;
        parent_cls;
        child_var;
        child_cls;
        inv_attr;
        parent_access;
        child_access;
        select;
        aggregate;
        _;
      } ->
      let parent_harvest =
        make_harvest ~packed
          (make_fetch ~packed ~batch parent_access ~cls:parent_cls
             ~var:parent_var)
          ~key:Op.K_self ~cls:parent_cls ~var:parent_var select
      in
      let child_harvest =
        make_harvest ~packed
          (make_fetch ~packed ~batch child_access ~cls:child_cls ~var:child_var)
          ~key:(Op.K_inverse (require_inv inv_attr))
          ~cls:child_cls ~var:child_var select
      in
      let build, probe, probe_key, probe_cls, build_var, probe_var =
        match algo with
        | Plan.PHJ | Plan.PHHJ ->
            ( parent_harvest,
              child_harvest,
              Op.K_inverse (require_inv inv_attr),
              child_cls,
              parent_var,
              child_var )
        | Plan.CHJ | Plan.CHHJ ->
            (child_harvest, parent_harvest, Op.K_self, parent_cls, child_var, parent_var)
        | Plan.NL | Plan.NOJOIN | Plan.SMJ -> assert false
      in
      let exchange harv =
        let part_key =
          key_name
            (match harv.Op.kind with
            | Op.Harvest { key; _ } -> key
            | _ -> assert false)
        in
        Op.make (Op.Exchange { child = harv; shards; part_key })
      in
      Op.make
        (Op.Shard_lane
           {
             child =
               make_finish ~select ~aggregate
                 (Op.make
                    (Op.Hash_probe
                       {
                         build =
                           Op.make (Op.Hash_build { child = exchange build });
                         probe = exchange probe;
                         probe_key;
                         probe_cls;
                         build_var;
                         probe_var;
                       }));
             shard;
             shards;
           })
  | Plan.Selection _ -> assert false

(* [lower_sharded smap plan] rewrites the plan into per-shard subtrees
   under a Gather root.  With a single shard this is exactly [lower]: no
   Gather, no Shard_lane — the one-shard engine is the unsharded engine by
   construction, which is what keeps the golden fingerprint byte-identical
   at S=1. *)
let lower_sharded ?(packed = true) ?(batch = 256) smap plan =
  let shards = Shard_map.count smap in
  if shards = 1 then lower ~packed ~batch (remap_plan (Shard_map.shard smap 0) plan)
  else
    let ordered =
      match plan with
      | Plan.Selection { access = Plan.Index_scan { sorted = true; _ }; _ } ->
          true
      | _ -> false
    in
    let lanes =
      Array.init shards (fun s ->
          let plan_s = remap_plan (Shard_map.shard smap s) plan in
          match plan_s with
          | Plan.Hier_join
              { algo = Plan.PHJ | Plan.CHJ | Plan.PHHJ | Plan.CHHJ; _ } ->
              hash_lane ~packed ~batch ~shards ~shard:s plan_s
          | _ ->
              Op.make
                (Op.Shard_lane
                   { child = lower ~packed ~batch plan_s; shard = s; shards }))
    in
    Op.make
      (Op.Gather { lanes; shards; part_key = Shard_map.key_attr smap; ordered })

let run ?mode ?organization ?force_algo ?force_sorted ?force_seq ?packed ?batch
    ?(keep = false) db text =
  let q = Oql_parser.parse text in
  let p = plan ?mode ?organization ?force_algo ?force_sorted ?force_seq db q in
  Exec.run db (lower ?packed ?batch p) ~keep

let run_explained ?mode ?organization ?force_algo ?force_sorted ?force_seq
    ?packed ?batch ?(keep = false) db text =
  let q = Oql_parser.parse text in
  let p = plan ?mode ?organization ?force_algo ?force_sorted ?force_seq db q in
  let root = lower ?packed ?batch p in
  let result, global = Exec.run_explained db root ~keep in
  (result, root, global)

(* Planning happens against shard 0: every shard replicates the schema and
   index set, and shard-0 statistics (1/S of the data) rank algorithms the
   same way the global statistics do for our uniform generators. *)
let run_sharded_explained ?mode ?organization ?force_algo ?force_sorted
    ?force_seq ?packed ?batch ?(keep = false) smap text =
  let db0 = Shard_map.shard smap 0 in
  let q = Oql_parser.parse text in
  let p = plan ?mode ?organization ?force_algo ?force_sorted ?force_seq db0 q in
  let root = lower_sharded ?packed ?batch smap p in
  if Shard_map.count smap = 1 then
    let result, global = Exec.run_explained db0 root ~keep in
    ( result,
      root,
      global,
      {
        Exec.lane_ms = [| global.Op.t_ms |];
        merge_ms = 0.0;
        elapsed_ms = global.Op.t_ms;
        critical = 0;
        failovers = [];
        degraded = false;
      } )
  else
    let result, global, lanes = Exec.run_sharded_explained smap root ~keep in
    (result, root, global, lanes)

let run_sharded ?mode ?organization ?force_algo ?force_sorted ?force_seq
    ?packed ?batch ?keep smap text =
  let result, _, _, _ =
    run_sharded_explained ?mode ?organization ?force_algo ?force_sorted
      ?force_seq ?packed ?batch ?keep smap text
  in
  result

(* --- the optimizer pipeline: enumerate -> cost -> pick -> validate --- *)

module Sc = Tb_statcore.Stat_catalog

(* The explicit path under its pipeline name: benches and the golden
   fingerprint lower a [plan]-chosen (or forced) plan directly, bypassing
   enumeration.  Byte-identical to [lower] by construction. *)
let lower_forced = lower

type choice = {
  ch_desc : string;
  ch_packed : bool;
  ch_cost_ms : float;
}

type decision = {
  d_plan : Plan.t;
  d_root : Op.t;  (* lowered + annotated chosen tree *)
  d_desc : string;
  d_packed : bool;
  d_cost_ms : float;
  d_candidates : choice list;  (* every candidate, ranked best-first *)
  d_stats : Sc.t;
  d_organization : Estimate.organization;
}

(* [optimize db text] runs the first three stages: enumerate the candidate
   space, lower and cost every candidate against catalog statistics, and
   pick the argmin.  The argmin is strict-<, so on equal cost the FIRST
   enumerated candidate wins — which is how the tie policy (originals over
   extensions, index over scan, packed over handle) is enforced.

   Statistics default to a fresh [Stat_catalog.analyze]; pass a retained
   catalog to let validate-stage feedback from earlier runs reach this
   optimization. *)
let optimize ?stats ?organization ?(batch = 256) db text =
  let q = Oql_parser.parse text in
  let stats = match stats with Some s -> s | None -> Sc.analyze db in
  let bound = Plan.bind db q in
  let organization =
    match organization with
    | Some o -> o
    | None -> (
        match bound with
        | Plan.B_hier { parent_cls; child_cls; _ } ->
            default_organization db ~parent_cls ~child_cls
        | Plan.B_selection _ -> Estimate.Separate_files)
  in
  let scored =
    List.map
      (fun (c : Enumerate.candidate) ->
        let root = lower ~packed:c.Enumerate.c_packed ~batch c.Enumerate.c_plan in
        Estimate.annotate ~stats ~organization root;
        (c, root, Estimate.plan_cost_ms root))
      (Enumerate.candidates stats db bound)
  in
  match scored with
  | [] -> raise (Plan.Unsupported "optimizer: empty candidate space")
  | first :: rest ->
      let best =
        List.fold_left
          (fun acc x ->
            let _, _, acc_ms = acc and _, _, x_ms = x in
            if x_ms < acc_ms then x else acc)
          first rest
      in
      let c, root, cost_ms = best in
      let ranked =
        List.stable_sort
          (fun a b -> Float.compare a.ch_cost_ms b.ch_cost_ms)
          (List.map
             (fun ((c : Enumerate.candidate), _, ms) ->
               {
                 ch_desc = c.Enumerate.c_desc;
                 ch_packed = c.Enumerate.c_packed;
                 ch_cost_ms = ms;
               })
             scored)
      in
      {
        d_plan = c.Enumerate.c_plan;
        d_root = root;
        d_desc = c.Enumerate.c_desc;
        d_packed = c.Enumerate.c_packed;
        d_cost_ms = cost_ms;
        d_candidates = ranked;
        d_stats = stats;
        d_organization = organization;
      }

(* Optimize, execute, validate: the full four-stage pipeline.  The
   returned checks carry per-operator q-errors; mis-estimates have already
   fed corrections back into the decision's catalog. *)
let run_optimized_explained ?stats ?organization ?batch ?(keep = false) db text =
  let d = optimize ?stats ?organization ?batch db text in
  let result, global = Exec.run_explained db d.d_root ~keep in
  let checks = Exec.validate ~stats:d.d_stats d.d_root in
  (result, d, global, checks)

let run_optimized ?stats ?organization ?batch ?keep db text =
  let result, _, _, _ =
    run_optimized_explained ?stats ?organization ?batch ?keep db text
  in
  result

(* --- sharded break-even from statistics alone --- *)

type shard_decision = {
  sd_shards : int;
  sd_unsharded_ms : float;  (* best single-node candidate *)
  sd_sharded_ms : float;  (* the same plan sharded, fork/join elapsed *)
  sd_use_sharded : bool;
  sd_decision : decision;  (* the underlying single-node optimization *)
}

(* Compare the best single-node plan against its sharded rewrite, both
   costed from the merged global catalog (each Shard_lane estimates
   against a 1/S-scaled view).  Nothing executes: the break-even comes
   from statistics alone. *)
let optimize_sharded ?organization ?(batch = 256) smap text =
  let shards = Shard_map.count smap in
  let stats =
    Sc.merge
      (List.init shards (fun s -> Sc.analyze (Shard_map.shard smap s)))
  in
  let d = optimize ~stats ?organization ~batch (Shard_map.shard smap 0) text in
  let sharded_ms =
    if shards = 1 then d.d_cost_ms
    else begin
      let root = lower_sharded ~packed:d.d_packed ~batch smap d.d_plan in
      Estimate.annotate ~stats ~organization:d.d_organization root;
      Estimate.plan_cost_ms root
    end
  in
  {
    sd_shards = shards;
    sd_unsharded_ms = d.d_cost_ms;
    sd_sharded_ms = sharded_ms;
    sd_use_sharded = sharded_ms < d.d_cost_ms;
    sd_decision = d;
  }
