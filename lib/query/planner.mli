(** Plan selection: the heuristic strategy O2 shipped with, and the
    cost-based strategy the authors were working toward.

    - [Heuristic] mimics the navigation-biased optimizer of Section 2: an
      available index is always taken (unsorted — Section 4.2 shows O2 did
      not sort Rids), and hierarchical joins are evaluated by navigation
      (NL).
    - [Cost_based] ranks every access path and join algorithm with
      {!Estimate} and picks the cheapest — including the sorted-index-scan
      and hybrid choices the paper's findings motivate. *)

type mode = Heuristic | Cost_based

(** [plan db q] chooses a physical plan.

    [organization] tells the optimizer how the database was laid out
    (defaults to [Separate_files] when the two classes live in different
    files, [Shared_random] otherwise — composition clustering cannot be
    detected from the catalog and must be declared).
    [force_algo] pins the join algorithm (the benchmarks run all four);
    [force_sorted] pins the sorted-Rid flag of index scans.
    Raises {!Plan.Unsupported} on queries outside the subset. *)
val plan :
  ?mode:mode ->
  ?organization:Estimate.organization ->
  ?force_algo:Plan.join_algo ->
  ?force_sorted:bool ->
  ?force_seq:bool ->
  Tb_store.Database.t ->
  Oql_ast.query ->
  Plan.t

(** [join_env db bound ~organization] assembles the statistics {!Estimate}
    needs for a bound hierarchical join (exposed for benches and tests).
    Raises [Invalid_argument] if [bound] is a selection. *)
val join_env :
  Tb_store.Database.t -> Plan.bound -> organization:Estimate.organization -> Estimate.env

(** [lower plan] assembles the physical operator tree {!Exec} runs.  Pure
    plan surgery — no database access, no charges: attribute names stay
    symbolic and the executor resolves slots once per operator.

    [packed] (default true) lets Fetch/Harvest evaluate on raw record
    bytes whenever the predicates are packed-compilable
    ({!Packed.compilable} — decided from the predicate constants alone, so
    lowering stays pure); non-compilable predicates fall back to the
    Handle path, visible as [mode=handle] in the lowered tree.  [batch]
    (default 256) sets the rows-per-vector of the Rid streams feeding
    Fetch.  Neither knob moves a single simulated charge.

    Raises {!Plan.Unsupported} when the algorithm needs an inverse
    reference the schema does not declare, [Invalid_argument] when
    NL/NOJOIN receive an index access on the navigated side (the planner
    never builds those). *)
val lower : ?packed:bool -> ?batch:int -> Plan.t -> Op.t

(** Parse, plan and execute in one call (the public "just run it" API). *)
val run :
  ?mode:mode ->
  ?organization:Estimate.organization ->
  ?force_algo:Plan.join_algo ->
  ?force_sorted:bool ->
  ?force_seq:bool ->
  ?packed:bool ->
  ?batch:int ->
  ?keep:bool ->
  Tb_store.Database.t ->
  string ->
  Query_result.t

(** Like {!run}, but returns the executed operator tree (frames populated)
    and the run's global counter deltas, ready for {!Op.pp_report}. *)
val run_explained :
  ?mode:mode ->
  ?organization:Estimate.organization ->
  ?force_algo:Plan.join_algo ->
  ?force_sorted:bool ->
  ?force_seq:bool ->
  ?packed:bool ->
  ?batch:int ->
  ?keep:bool ->
  Tb_store.Database.t ->
  string ->
  Query_result.t * Op.t * Op.totals

(** [lower_sharded smap plan] rewrites [plan] into per-shard subtrees
    under an {!Op.Gather} root.  Shard-local algorithms (selections, NL,
    NOJOIN, SMJ — sound because placement colocates each provider with its
    patients) get one plain subtree per shard; hash joins get both sides
    harvested locally and routed through {!Op.Exchange} by retagged join
    key (PHHJ/CHHJ degenerate to PHJ/CHJ: repartitioning already splits
    the build side S ways).  Index accesses are remapped to each shard's
    replicated catalog entry.  With a single shard this returns exactly
    [lower plan] — no Gather, no Shard_lane — so the S=1 engine is the
    unsharded engine by construction. *)
val lower_sharded : ?packed:bool -> ?batch:int -> Tb_store.Shard_map.t -> Plan.t -> Op.t

(** Parse, plan (against shard 0) and execute across the shard map. *)
val run_sharded :
  ?mode:mode ->
  ?organization:Estimate.organization ->
  ?force_algo:Plan.join_algo ->
  ?force_sorted:bool ->
  ?force_seq:bool ->
  ?packed:bool ->
  ?batch:int ->
  ?keep:bool ->
  Tb_store.Shard_map.t ->
  string ->
  Query_result.t

(** Like {!run_sharded}, but also returns the executed tree (per-shard
    frames populated), the global work totals ([Op.reconciles] holds), and
    the {!Exec.lane_report} with per-shard elapsed and the critical-path
    shard.  At S=1 the report is a single lane equal to the run's total. *)
val run_sharded_explained :
  ?mode:mode ->
  ?organization:Estimate.organization ->
  ?force_algo:Plan.join_algo ->
  ?force_sorted:bool ->
  ?force_seq:bool ->
  ?packed:bool ->
  ?batch:int ->
  ?keep:bool ->
  Tb_store.Shard_map.t ->
  string ->
  Query_result.t * Op.t * Op.totals * Exec.lane_report

(** {2 The optimizer pipeline — enumerate → cost → pick → validate}

    The explicit path above ([plan] + [lower], with its [force_*] knobs)
    survives as the forced path; the pipeline below searches the whole
    candidate space instead. *)

(** [lower_forced] is {!lower} under its pipeline name: the forced path
    benches and the golden fingerprint use, bypassing enumeration. *)
val lower_forced : ?packed:bool -> ?batch:int -> Plan.t -> Op.t

(** One costed candidate, for explain output and snapshots. *)
type choice = {
  ch_desc : string;  (** e.g. ["PHJ parent=index child=seq packed"] *)
  ch_packed : bool;
  ch_cost_ms : float;
}

(** The pick stage's output: the chosen plan, its lowered and annotated
    tree (ready to execute), and the whole ranked candidate space. *)
type decision = {
  d_plan : Plan.t;
  d_root : Op.t;
  d_desc : string;
  d_packed : bool;
  d_cost_ms : float;
  d_candidates : choice list;  (** ranked best-first; ties keep enumeration order *)
  d_stats : Tb_statcore.Stat_catalog.t;
  d_organization : Estimate.organization;
}

(** [optimize db text] enumerates every candidate plan, costs each by
    lowering and annotating it against catalog statistics, and picks the
    strict argmin — on equal cost the first enumerated candidate wins,
    which enforces the tie policy (the paper's originals over extensions,
    index over scan, packed over handle).  [stats] defaults to a fresh
    {!Tb_statcore.Stat_catalog.analyze}; pass a retained catalog so
    validate-stage feedback reaches the next optimization.  Never
    executes and never charges. *)
val optimize :
  ?stats:Tb_statcore.Stat_catalog.t ->
  ?organization:Estimate.organization ->
  ?batch:int ->
  Tb_store.Database.t ->
  string ->
  decision

(** The full pipeline: optimize, execute the chosen tree, then validate —
    reconcile every operator's estimate against its accounted frame,
    feeding mis-estimates (q-error > 2) back into the decision's
    catalog. *)
val run_optimized_explained :
  ?stats:Tb_statcore.Stat_catalog.t ->
  ?organization:Estimate.organization ->
  ?batch:int ->
  ?keep:bool ->
  Tb_store.Database.t ->
  string ->
  Query_result.t * decision * Op.totals * Exec.est_check list

val run_optimized :
  ?stats:Tb_statcore.Stat_catalog.t ->
  ?organization:Estimate.organization ->
  ?batch:int ->
  ?keep:bool ->
  Tb_store.Database.t ->
  string ->
  Query_result.t

(** The sharded-vs-unsharded break-even, decided from statistics alone. *)
type shard_decision = {
  sd_shards : int;
  sd_unsharded_ms : float;
  sd_sharded_ms : float;
  sd_use_sharded : bool;
  sd_decision : decision;
}

(** [optimize_sharded smap text] optimizes against the merged global
    catalog, then costs the chosen plan's sharded rewrite (each lane
    against a 1/S-scaled view, fork/join elapsed at the Gather) and says
    which side of the break-even the query falls on.  Nothing executes. *)
val optimize_sharded :
  ?organization:Estimate.organization ->
  ?batch:int ->
  Tb_store.Shard_map.t ->
  string ->
  shard_decision
