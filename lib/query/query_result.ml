module Value = Tb_store.Value

type acc = {
  mutable n : int;
  mutable sum : float;
  mutable saw_real : bool;
  mutable minv : Value.t option;
  mutable maxv : Value.t option;
}

type mode =
  | Materialize
  | Fold of Oql_ast.agg * acc

type t = {
  sim : Tb_sim.Sim.t;
  keep : bool;
  standard : bool;
  mode : mode;
  mutable count : int;  (** rows through [append] *)
  mutable bytes : int;
  mutable resident_bytes : int;
      (** claimed against simulated RAM; overflow beyond physical memory is
          spilled sequentially (charged by the appends) and stops being
          resident *)
  mutable kept : Value.t list;
  mutable sample : Value.t list;
  mutable disposed : bool;
}

let sample_size = 16

let create ?(standard = true) ?aggregate sim ~keep =
  let mode =
    match aggregate with
    | None -> Materialize
    | Some agg ->
        Fold (agg, { n = 0; sum = 0.0; saw_real = false; minv = None; maxv = None })
  in
  {
    sim;
    keep;
    standard;
    mode;
    count = 0;
    bytes = 0;
    resident_bytes = 0;
    kept = [];
    sample = [];
    disposed = false;
  }

(* In-memory size of a result element: raw data plus a small per-row
   overhead (field names are shared structure, not per-row storage). *)
let rec mem_bytes v =
  match v with
  | Value.Nil | Value.Bool _ | Value.Char _ -> 1
  | Value.Int _ -> 4
  | Value.Real _ -> 8
  | Value.String s -> String.length s
  | Value.Ref _ | Value.Big_set _ -> 8
  | Value.Tuple fields ->
      List.fold_left (fun acc (_, x) -> acc + mem_bytes x) 0 fields
  | Value.Set xs | Value.List xs ->
      List.fold_left (fun acc x -> acc + mem_bytes x) 0 xs

let numeric v =
  match v with
  | Value.Int i -> (float_of_int i, false)
  | Value.Real r -> (r, true)
  | _ -> invalid_arg "Query_result: aggregate over a non-numeric value"

let fold_row agg acc v =
  acc.n <- acc.n + 1;
  match agg with
  | Oql_ast.Count -> ()
  | Oql_ast.Sum | Oql_ast.Avg ->
      let x, real = numeric v in
      acc.sum <- acc.sum +. x;
      if real then acc.saw_real <- true
  | Oql_ast.Min ->
      if
        match acc.minv with
        | None -> true
        | Some m -> Oql_ast.eval_cmp Oql_ast.Lt v m
      then acc.minv <- Some v
  | Oql_ast.Max ->
      if
        match acc.maxv with
        | None -> true
        | Some m -> Oql_ast.eval_cmp Oql_ast.Gt v m
      then acc.maxv <- Some v

let append t v =
  if t.disposed then invalid_arg "Query_result.append: disposed";
  t.count <- t.count + 1;
  match t.mode with
  | Fold (agg, acc) ->
      (* Folding costs one comparison/addition, not a collection insert. *)
      Tb_sim.Sim.charge_compare t.sim 1;
      fold_row agg acc v
  | Materialize ->
      let bytes = mem_bytes v + 8 in
      t.bytes <- t.bytes + bytes;
      if t.keep then t.kept <- v :: t.kept
      else if t.count <= sample_size then t.sample <- v :: t.sample;
      Tb_sim.Sim.charge_result_append t.sim ~bytes ~standard:t.standard;
      (* Past physical memory the collection spills sequentially (the
         append already paid the page fault): the spilled part is no longer
         resident and must not make unrelated random accesses thrash. *)
      if Tb_sim.Sim.excess_ratio t.sim > 0.0 then
        Tb_sim.Sim.release_bytes t.sim bytes
      else t.resident_bytes <- t.resident_bytes + bytes

(* Merge a partial (per-shard) result into [t] without re-paying per-row
   construction: the rows were already built — and charged — by the shard
   that produced them; the gather operator charges their shipping
   separately.  Charge-free bookkeeping only, enforced by treelint's rule
   that the merge loop may not charge. *)
let absorb t src =
  if t.disposed then invalid_arg "Query_result.absorb: disposed";
  if src.disposed then invalid_arg "Query_result.absorb: source disposed";
  if t == src then invalid_arg "Query_result.absorb: self";
  (match (t.mode, src.mode) with
  | Materialize, Materialize ->
      t.bytes <- t.bytes + src.bytes;
      if t.keep then t.kept <- src.kept @ t.kept
      else begin
        let have = List.length t.sample in
        if have < sample_size then begin
          let take = ref (sample_size - have) in
          List.iter
            (fun v ->
              if !take > 0 then begin
                t.sample <- v :: t.sample;
                decr take
              end)
            (List.rev src.sample)
        end
      end
  | Fold (agg_t, acc_t), Fold (agg_s, acc_s) when agg_t = agg_s ->
      acc_t.n <- acc_t.n + acc_s.n;
      acc_t.sum <- acc_t.sum +. acc_s.sum;
      acc_t.saw_real <- acc_t.saw_real || acc_s.saw_real;
      let merge_bound cmp cur incoming =
        match (cur, incoming) with
        | _, None -> cur
        | None, some -> some
        | Some m, Some v -> if Oql_ast.eval_cmp cmp v m then incoming else cur
      in
      acc_t.minv <- merge_bound Oql_ast.Lt acc_t.minv acc_s.minv;
      acc_t.maxv <- merge_bound Oql_ast.Gt acc_t.maxv acc_s.maxv
  | _ -> invalid_arg "Query_result.absorb: incompatible result modes");
  t.count <- t.count + src.count;
  (* The source's resident claim transfers: both results account against
     the same simulation, so nothing is claimed or released here — [t]'s
     dispose now covers it. *)
  t.resident_bytes <- t.resident_bytes + src.resident_bytes;
  src.resident_bytes <- 0;
  src.disposed <- true;
  src.kept <- [];
  src.sample <- []

let aggregate_value agg acc =
  match agg with
  | Oql_ast.Count -> Some (Value.Int acc.n)
  | Oql_ast.Sum ->
      Some
        (if acc.saw_real then Value.Real acc.sum
         else Value.Int (int_of_float acc.sum))
  | Oql_ast.Avg ->
      if acc.n = 0 then None
      else Some (Value.Real (acc.sum /. float_of_int acc.n))
  | Oql_ast.Min -> acc.minv
  | Oql_ast.Max -> acc.maxv

let aggregate_row t =
  match t.mode with
  | Materialize -> None
  | Fold (agg, acc) -> aggregate_value agg acc

let count t =
  match t.mode with
  | Materialize -> t.count
  | Fold _ -> ( match aggregate_row t with Some _ -> 1 | None -> 0)

let rows_seen t = t.count

let values t =
  match t.mode with
  | Fold _ -> ( match aggregate_row t with Some v -> [ v ] | None -> [])
  | Materialize ->
      if not t.keep then invalid_arg "Query_result.values: result not kept";
      List.rev t.kept

let sample t =
  match t.mode with
  | Fold _ -> values t
  | Materialize -> if t.keep then List.rev t.kept else List.rev t.sample

let size_bytes t = t.bytes

let dispose t =
  if not t.disposed then begin
    Tb_sim.Sim.release_bytes t.sim t.resident_bytes;
    t.resident_bytes <- 0;
    t.disposed <- true;
    t.kept <- [];
    t.sample <- []
  end
