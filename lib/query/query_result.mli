(** Materialized query results, or folded aggregates.

    Under a standard transaction O2 builds a materialized result "as if it
    could become persistent", which is why constructing a collection of 1.8
    million integers takes ~18 minutes (Section 4.2).  Appends charge that
    cost and claim memory; a result too large for RAM spills sequentially
    (the spilled part stops being resident).

    In aggregate mode ({!create} with [~aggregate]) rows are folded into a
    scalar instead: no per-row construction cost, no memory — which is
    exactly what makes [count(...)] so much cheaper than materializing. *)

type t

(** [create sim ~keep] — when [keep] is true every value is retained for
    inspection (tests, small runs); otherwise only counts and a bounded
    sample are kept, while costs are charged identically.  [standard]
    (default true) selects the standard-transaction construction cost; the
    paper's measurements all ran in that mode.  [aggregate] switches to
    folding. *)
val create :
  ?standard:bool -> ?aggregate:Oql_ast.agg -> Tb_sim.Sim.t -> keep:bool -> t

(** [append t v] materializes or folds one row.
    Raises [Invalid_argument] when folding a non-numeric value into
    [sum]/[avg]/[min]/[max], or on a disposed result. *)
val append : t -> Tb_store.Value.t -> unit

(** [absorb t src] merges a partial (per-shard) result into [t] and
    retires [src] (it becomes disposed; its resident memory claim
    transfers to [t]).  Charge-free: the rows were built — and paid for —
    by the shard that produced them; the gather operator charges their
    shipping separately.  Raises [Invalid_argument] when either result is
    disposed, [t == src], or the modes/aggregates differ. *)
val absorb : t -> t -> unit

(** Rows materialized, or the single aggregate row (0 while no row has been
    folded and the aggregate is undefined, 1 otherwise; [count] is always
    defined). *)
val count : t -> int

(** Rows that went through [append] (equals [count] when materializing). *)
val rows_seen : t -> int

(** All values (insertion order) when [keep], or the aggregate's value;
    raises [Invalid_argument] on an unkept materialized result. *)
val values : t -> Tb_store.Value.t list

(** First few values (or the aggregate), always available. *)
val sample : t -> Tb_store.Value.t list

(** Simulated bytes the result occupies (0 for aggregates). *)
val size_bytes : t -> int

(** Release the claimed memory. *)
val dispose : t -> unit
