type t = { mutable now_ms : float; mutable work_ms : float }

let create () = { now_ms = 0.0; work_ms = 0.0 }

let advance t ms =
  if ms < 0.0 then invalid_arg "Clock.advance: negative duration";
  t.now_ms <- t.now_ms +. ms;
  t.work_ms <- t.work_ms +. ms

let now_ms t = t.now_ms
let now_s t = t.now_ms /. 1000.0
let work_ms t = t.work_ms

let reset t =
  t.now_ms <- 0.0;
  t.work_ms <- 0.0

(* Fork/join scopes: simulated parallelism over shard lanes.

   A scope remembers the fork point and one saved timeline per lane.
   [enter_lane] swaps [now_ms] to the lane's saved time, so every charge
   site in the engine — including the hand-inlined stores in the B+-tree
   bulk loader — transparently advances the active lane.  [join] parks
   the active lane and sets [now_ms] to the latest lane: elapsed time is
   the max over lanes, while [work_ms] (never rewound) keeps accumulating
   the sum of all advances, which is what per-operator attribution and
   additive counters reconcile against. *)

type scope = {
  sc_clock : t;
  sc_base : float;
  sc_lane : float array;
  mutable sc_active : int;
}

let fork t ~lanes =
  if lanes <= 0 then invalid_arg "Clock.fork: lanes must be positive";
  {
    sc_clock = t;
    sc_base = t.now_ms;
    sc_lane = Array.make lanes t.now_ms;
    sc_active = -1;
  }

let park sc =
  if sc.sc_active >= 0 then begin
    sc.sc_lane.(sc.sc_active) <- sc.sc_clock.now_ms;
    sc.sc_active <- -1
  end

let enter_lane sc i =
  if i < 0 || i >= Array.length sc.sc_lane then
    invalid_arg "Clock.enter_lane: lane out of range";
  park sc;
  sc.sc_active <- i;
  sc.sc_clock.now_ms <- sc.sc_lane.(i)

let join sc =
  park sc;
  sc.sc_clock.now_ms <- Array.fold_left Float.max sc.sc_base sc.sc_lane

let lane_ms sc i =
  if i < 0 || i >= Array.length sc.sc_lane then
    invalid_arg "Clock.lane_ms: lane out of range";
  (if i = sc.sc_active then sc.sc_clock.now_ms else sc.sc_lane.(i))
  -. sc.sc_base
