(** The simulated elapsed-time clock.

    All times are kept in milliseconds of simulated wall-clock time.  The
    paper concludes (Section 3.5) that elapsed time is "as good a measure as
    anything else" because it tracks I/Os and RPCs; here it is defined as
    exactly their weighted sum.

    [now_ms] is the elapsed timeline: under a fork/join {!scope} it swaps
    between shard-local lanes and joins to their max.  [work_ms] is the
    monotone sum of every advance ever charged — CPU-seconds rather than
    wall-seconds — and is what per-operator attribution reads, because it
    never jumps when the scope switches lanes.  Outside any scope both
    fields accumulate the identical float-add sequence, so they agree
    bit-for-bit. *)

(** Exposed representation so per-event hot paths (the B+-tree bulk append
    loop) can advance the clock with a plain float store instead of a
    cross-module call.  Inlined advances must mirror {!advance} exactly:
    [now_ms <- now_ms +. ms] and [work_ms <- work_ms +. ms] with a
    non-negative [ms]. *)
type t = { mutable now_ms : float; mutable work_ms : float }

val create : unit -> t

(** [advance t ms] moves the clock forward; negative amounts are rejected. *)
val advance : t -> float -> unit

(** Current simulated time in milliseconds since [create]/[reset]. *)
val now_ms : t -> float

(** Current simulated time in seconds — the unit of every paper table. *)
val now_s : t -> float

(** Total simulated work in milliseconds since [create]/[reset]: the sum of
    every advance across all lanes, never rewound by {!join}. *)
val work_ms : t -> float

val reset : t -> unit

(** {2 Fork/join scopes}

    Simulated parallelism for sharded execution.  [fork] snapshots the
    current time as the base of [lanes] shard-local timelines;
    [enter_lane] parks the active lane (if any) and installs lane [i]'s
    saved time as [now_ms]; [join] parks and sets [now_ms] to the maximum
    over lanes — elapsed = max, while counters and [work_ms] stay
    additive.  Scopes may be created sequentially (fork, run lanes, join,
    fork again) but must not be interleaved. *)

type scope

(** [fork t ~lanes] opens a scope of [lanes] timelines, each starting at
    the current [now_ms].  No lane is active until {!enter_lane}. *)
val fork : t -> lanes:int -> scope

(** [enter_lane sc i] saves the active lane's clock and resumes lane [i]. *)
val enter_lane : scope -> int -> unit

(** [join sc] parks the active lane and sets the clock to the latest lane.
    [work_ms] is untouched: joining discards overlap from the elapsed
    timeline only. *)
val join : scope -> unit

(** [lane_ms sc i] is lane [i]'s elapsed time since the fork point (the
    live clock value if [i] is active, its parked value otherwise). *)
val lane_ms : scope -> int -> float
