(** The simulated elapsed-time clock.

    All times are kept in milliseconds of simulated wall-clock time.  The
    paper concludes (Section 3.5) that elapsed time is "as good a measure as
    anything else" because it tracks I/Os and RPCs; here it is defined as
    exactly their weighted sum. *)

(** Exposed representation so per-event hot paths (the B+-tree bulk append
    loop) can advance the clock with a plain float store instead of a
    cross-module call.  Inlined advances must mirror {!advance} exactly:
    a single [now_ms <- now_ms +. ms] with a non-negative [ms]. *)
type t = { mutable now_ms : float }

val create : unit -> t

(** [advance t ms] moves the clock forward; negative amounts are rejected. *)
val advance : t -> float -> unit

(** Current simulated time in milliseconds since [create]/[reset]. *)
val now_ms : t -> float

(** Current simulated time in seconds — the unit of every paper table. *)
val now_s : t -> float

val reset : t -> unit
