type handle_kind = Fat | Compact

type t = {
  page_size : int;
  page_fill : float;
  page_read_ms : float;
  page_write_ms : float;
  rpc_fixed_ms : float;
  rpc_page_ms : float;
  client_hit_ms : float;
  handle_alloc_fat_us : float;
  handle_free_fat_us : float;
  handle_alloc_compact_us : float;
  handle_free_compact_us : float;
  handle_bytes_fat : int;
  handle_bytes_compact : int;
  get_att_us : float;
  compare_us : float;
  hash_insert_us : float;
  hash_probe_us : float;
  sort_cmp_us : float;
  result_append_standard_us : float;
  result_append_load_us : float;
  swap_fault_ms : float;
  thrash_factor : float;
  read_retry_backoff_ms : float;
  rpc_timeout_ms : float;
  rpc_retry_base_ms : float;
  promote_fixed_ms : float;
  promote_page_ms : float;
  ram_bytes : int;
  reserved_bytes : int;
}

let mib n = n * 1024 * 1024

let default =
  {
    page_size = 4096;
    page_fill = 0.93;
    page_read_ms = 10.0;
    page_write_ms = 10.0;
    rpc_fixed_ms = 0.3;
    rpc_page_ms = 0.7;
    client_hit_ms = 0.002;
    handle_alloc_fat_us = 150.0;
    handle_free_fat_us = 100.0;
    handle_alloc_compact_us = 8.0;
    handle_free_compact_us = 4.0;
    handle_bytes_fat = 60;
    handle_bytes_compact = 16;
    get_att_us = 2.0;
    compare_us = 0.1;
    hash_insert_us = 1.5;
    hash_probe_us = 1.0;
    sort_cmp_us = 0.35;
    result_append_standard_us = 600.0;
    result_append_load_us = 30.0;
    swap_fault_ms = 10.0;
    thrash_factor = 4.0;
    read_retry_backoff_ms = 5.0;
    rpc_timeout_ms = 25.0;
    rpc_retry_base_ms = 2.0;
    promote_fixed_ms = 20.0;
    promote_page_ms = 0.05;
    ram_bytes = mib 128;
    (* 4 MB server cache + 32 MB client cache + ~28 MB of system, window
       manager and AFS overhead the paper could not evaluate. *)
    reserved_bytes = mib 64;
  }

let scaled n =
  if n <= 0 then invalid_arg "Cost_model.scaled: factor must be positive";
  {
    default with
    ram_bytes = default.ram_bytes / n;
    reserved_bytes = default.reserved_bytes / n;
  }

let available_bytes t = max 0 (t.ram_bytes - t.reserved_bytes)

let records_per_page t ~record_bytes =
  if record_bytes <= 0 then invalid_arg "Cost_model.records_per_page";
  let usable = int_of_float (float_of_int t.page_size *. t.page_fill) in
  max 1 (usable / record_bytes)

let handle_bytes t = function
  | Fat -> t.handle_bytes_fat
  | Compact -> t.handle_bytes_compact

let handle_alloc_us t = function
  | Fat -> t.handle_alloc_fat_us
  | Compact -> t.handle_alloc_compact_us

let handle_free_us t = function
  | Fat -> t.handle_free_fat_us
  | Compact -> t.handle_free_compact_us
