(** Cost model for the simulated O2-like system.

    The paper measures elapsed time on a Sparc 20 (Solaris 2.6, SCSI disk) and
    reasons about it as a sum of per-event costs — e.g. Section 4.2 assumes
    "10ms per page read" and derives the CPU component of a scan from the
    residual.  We make that decomposition explicit: every storage, handle,
    hash, sort and result-construction event carries a calibrated cost, and
    simulated elapsed time is the weighted event count.

    Calibration anchors taken from the paper:
    - 10 ms per disk page read (Section 4.2);
    - constructing a collection of 1.8 million integers in standard
      transaction mode costs about 1100 s, i.e. ~0.6 ms per element
      (Section 4.2);
    - the gap between a full scan and a sorted unclustered index scan at 90%
      selectivity is dominated by ~200,000 extra Handle get/unreference pairs
      (Figure 9), putting a fat-Handle pair in the 0.2-0.3 ms range;
    - fat Handles occupy 60 bytes of memory each (Section 4.4). *)

type handle_kind =
  | Fat      (** the 60-byte O2 Handle of Section 4.4 *)
  | Compact  (** the slimmed-down Handle the paper proposes *)

type t = {
  page_size : int;            (** bytes per page; the paper's O2 uses 4K *)
  page_fill : float;          (** target fill factor; O2 leaves growth slack *)
  page_read_ms : float;       (** disk -> server cache *)
  page_write_ms : float;      (** server cache -> disk *)
  rpc_fixed_ms : float;       (** per client<->server round trip *)
  rpc_page_ms : float;        (** per page shipped server -> client *)
  client_hit_ms : float;      (** touching a page already in the client cache *)
  handle_alloc_fat_us : float;
  handle_free_fat_us : float;
  handle_alloc_compact_us : float;
  handle_free_compact_us : float;
  handle_bytes_fat : int;     (** 60 in O2 *)
  handle_bytes_compact : int;
  get_att_us : float;         (** reading one attribute through a Handle *)
  compare_us : float;         (** one key comparison *)
  hash_insert_us : float;
  hash_probe_us : float;
  sort_cmp_us : float;        (** per comparison inside a Rid sort *)
  result_append_standard_us : float;
      (** appending to a query result under a standard transaction: the
          system builds the collection as if it could become persistent *)
  result_append_load_us : float;  (** same, in transaction-off mode *)
  swap_fault_ms : float;      (** one page fault once memory is exceeded *)
  thrash_factor : float;      (** how sharply fault probability rises *)
  read_retry_backoff_ms : float;
      (** settle time before re-issuing a page read after a transient disk
          error (fault injection only; never charged on the healthy path) *)
  rpc_timeout_ms : float;
      (** how long the client waits before declaring a shard RPC lost — the
          detection cost of every transient, partition or crash event
          (fault injection only; never charged on the healthy path) *)
  rpc_retry_base_ms : float;
      (** base of the exponential backoff before re-issuing a timed-out
          shard RPC; the k-th retry waits [base * 2^k * jitter] with jitter
          drawn from the seeded fault Rng (fault injection only) *)
  promote_fixed_ms : float;
      (** fixed cost of promoting a replica to primary: election + catalog
          handoff (fault injection only) *)
  promote_page_ms : float;
      (** per durable page verified (checksum walk) during promotion
          (fault injection only) *)
  ram_bytes : int;            (** physical memory (128 MB on the Sparc 20) *)
  reserved_bytes : int;
      (** memory not available to query operators: O2 caches, window
          manager, AFS daemons... (Section 5.1, Figure 10 discussion) *)
}

(** The default model, calibrated against the paper's anchors at full scale
    (128 MB RAM machine, 4 MB server / 32 MB client caches). *)
val default : t

(** [scaled n] divides every capacity (RAM, reserved memory) by [n] so that a
    database generated at [1/n] of the paper's cardinalities keeps the same
    capacity ratios — and therefore the same crossover points.  Per-event
    costs are unchanged. [scaled 1 = default]. *)
val scaled : int -> t

(** [available_bytes t] is the memory left for query-operator working
    structures (hash tables, result buffers) before swapping begins. *)
val available_bytes : t -> int

(** [records_per_page t ~record_bytes] is how many records of the given size
    (including the slot-directory entry) fit on a page at the target fill. *)
val records_per_page : t -> record_bytes:int -> int

(** [handle_bytes t kind] / [handle_alloc_us t kind] / [handle_free_us t kind]
    select the per-kind Handle parameters. *)
val handle_bytes : t -> handle_kind -> int

val handle_alloc_us : t -> handle_kind -> float
val handle_free_us : t -> handle_kind -> float
