type t = {
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable rpc_count : int;
  mutable rpc_pages : int;
  mutable server_hits : int;
  mutable server_misses : int;
  mutable client_hits : int;
  mutable client_misses : int;
  mutable handle_allocs : int;
  mutable handle_frees : int;
  mutable handle_hits : int;
  mutable get_atts : int;
  mutable comparisons : int;
  mutable hash_inserts : int;
  mutable hash_probes : int;
  mutable sort_comparisons : int;
  mutable result_appends : int;
  mutable swap_faults : int;
  mutable wal_appends : int;
  mutable redo_pages : int;
  mutable undo_pages : int;
  mutable read_retries : int;
  mutable rpc_timeouts : int;
  mutable rpc_retries : int;
  mutable failovers : int;
}

let create () =
  {
    disk_reads = 0;
    disk_writes = 0;
    rpc_count = 0;
    rpc_pages = 0;
    server_hits = 0;
    server_misses = 0;
    client_hits = 0;
    client_misses = 0;
    handle_allocs = 0;
    handle_frees = 0;
    handle_hits = 0;
    get_atts = 0;
    comparisons = 0;
    hash_inserts = 0;
    hash_probes = 0;
    sort_comparisons = 0;
    result_appends = 0;
    swap_faults = 0;
    wal_appends = 0;
    redo_pages = 0;
    undo_pages = 0;
    read_retries = 0;
    rpc_timeouts = 0;
    rpc_retries = 0;
    failovers = 0;
  }

let reset t =
  t.disk_reads <- 0;
  t.disk_writes <- 0;
  t.rpc_count <- 0;
  t.rpc_pages <- 0;
  t.server_hits <- 0;
  t.server_misses <- 0;
  t.client_hits <- 0;
  t.client_misses <- 0;
  t.handle_allocs <- 0;
  t.handle_frees <- 0;
  t.handle_hits <- 0;
  t.get_atts <- 0;
  t.comparisons <- 0;
  t.hash_inserts <- 0;
  t.hash_probes <- 0;
  t.sort_comparisons <- 0;
  t.result_appends <- 0;
  t.swap_faults <- 0;
  t.wal_appends <- 0;
  t.redo_pages <- 0;
  t.undo_pages <- 0;
  t.read_retries <- 0;
  t.rpc_timeouts <- 0;
  t.rpc_retries <- 0;
  t.failovers <- 0

let snapshot t = { t with disk_reads = t.disk_reads }

let diff ~later ~earlier =
  {
    disk_reads = later.disk_reads - earlier.disk_reads;
    disk_writes = later.disk_writes - earlier.disk_writes;
    rpc_count = later.rpc_count - earlier.rpc_count;
    rpc_pages = later.rpc_pages - earlier.rpc_pages;
    server_hits = later.server_hits - earlier.server_hits;
    server_misses = later.server_misses - earlier.server_misses;
    client_hits = later.client_hits - earlier.client_hits;
    client_misses = later.client_misses - earlier.client_misses;
    handle_allocs = later.handle_allocs - earlier.handle_allocs;
    handle_frees = later.handle_frees - earlier.handle_frees;
    handle_hits = later.handle_hits - earlier.handle_hits;
    get_atts = later.get_atts - earlier.get_atts;
    comparisons = later.comparisons - earlier.comparisons;
    hash_inserts = later.hash_inserts - earlier.hash_inserts;
    hash_probes = later.hash_probes - earlier.hash_probes;
    sort_comparisons = later.sort_comparisons - earlier.sort_comparisons;
    result_appends = later.result_appends - earlier.result_appends;
    swap_faults = later.swap_faults - earlier.swap_faults;
    wal_appends = later.wal_appends - earlier.wal_appends;
    redo_pages = later.redo_pages - earlier.redo_pages;
    undo_pages = later.undo_pages - earlier.undo_pages;
    read_retries = later.read_retries - earlier.read_retries;
    rpc_timeouts = later.rpc_timeouts - earlier.rpc_timeouts;
    rpc_retries = later.rpc_retries - earlier.rpc_retries;
    failovers = later.failovers - earlier.failovers;
  }

let rate misses hits =
  let total = misses + hits in
  if total = 0 then 0.0 else 100.0 *. float_of_int misses /. float_of_int total

let client_miss_rate t = rate t.client_misses t.client_hits
let server_miss_rate t = rate t.server_misses t.server_hits

let pp ppf t =
  Format.fprintf ppf
    "@[<v>disk reads/writes: %d/%d@ rpc: %d (%d pages)@ server hit/miss: \
     %d/%d@ client hit/miss: %d/%d@ handles alloc/free/hit: %d/%d/%d@ \
     get_att: %d cmp: %d@ hash ins/probe: %d/%d sortcmp: %d@ result: %d swap \
     faults: %d@ wal appends: %d redo/undo pages: %d/%d read retries: %d@ \
     rpc timeout/retry: %d/%d failovers: %d@]"
    t.disk_reads t.disk_writes t.rpc_count t.rpc_pages t.server_hits
    t.server_misses t.client_hits t.client_misses t.handle_allocs
    t.handle_frees t.handle_hits t.get_atts t.comparisons t.hash_inserts
    t.hash_probes t.sort_comparisons t.result_appends t.swap_faults
    t.wal_appends t.redo_pages t.undo_pages t.read_retries t.rpc_timeouts
    t.rpc_retries t.failovers
