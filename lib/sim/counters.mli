(** Event counters for one measurement window.

    These mirror the metrics the authors record per experiment in their own
    benchmark-results database (Figure 3): disk-to-server-cache page reads
    (D2SC), server-to-client reads (SC2CC), RPC count and volume, cache hit
    and miss counts, plus the CPU-side events (Handle traffic, comparisons,
    hash operations, sorts, result construction, swap faults) that Section 4
    shows dominate cold associative accesses. *)

type t = {
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable rpc_count : int;
  mutable rpc_pages : int;
  mutable server_hits : int;
  mutable server_misses : int;
  mutable client_hits : int;
  mutable client_misses : int;
  mutable handle_allocs : int;
  mutable handle_frees : int;
  mutable handle_hits : int;  (** accesses served by an already-live Handle *)
  mutable get_atts : int;
  mutable comparisons : int;
  mutable hash_inserts : int;
  mutable hash_probes : int;
  mutable sort_comparisons : int;
  mutable result_appends : int;
  mutable swap_faults : int;
  mutable wal_appends : int;  (** log records appended (physiological) *)
  mutable redo_pages : int;   (** pages restored from after-images at recovery *)
  mutable undo_pages : int;   (** pages restored from before-images at abort/recovery *)
  mutable read_retries : int; (** transient read errors retried (fault injection) *)
  mutable rpc_timeouts : int; (** shard RPCs declared lost after the timeout window *)
  mutable rpc_retries : int;  (** shard RPCs re-issued after a timeout *)
  mutable failovers : int;    (** replica promotions (mid-query or explicit) *)
}

(** A zeroed counter set. *)
val create : unit -> t

(** Reset every counter to zero. *)
val reset : t -> unit

(** An independent snapshot of the current values. *)
val snapshot : t -> t

(** [diff ~later ~earlier] is the per-field difference — the events that
    happened between two snapshots. *)
val diff : later:t -> earlier:t -> t

(** Client-cache miss rate in percent, as stored in the paper's [Stat]
    objects ([CCMissrate]); [0.] when there was no traffic. *)
val client_miss_rate : t -> float

(** Server-cache miss rate in percent ([SCMissrate]). *)
val server_miss_rate : t -> float

(** Pretty-printer for debug output and reports. *)
val pp : Format.formatter -> t -> unit
