type t = {
  cost : Cost_model.t;
  clock : Clock.t;
  counters : Counters.t;
  rng : Rng.t;
  mutable working_bytes : int;
  mutable peak_working_bytes : int;
  mutable random_fault_accum : float;
  mutable seq_fault_accum : float;
}

let create ?(seed = 42) cost =
  {
    cost;
    clock = Clock.create ();
    counters = Counters.create ();
    rng = Rng.create seed;
    working_bytes = 0;
    peak_working_bytes = 0;
    random_fault_accum = 0.0;
    seq_fault_accum = 0.0;
  }

let elapsed_s t = Clock.now_s t.clock

let reset t =
  Clock.reset t.clock;
  Counters.reset t.counters;
  t.peak_working_bytes <- t.working_bytes;
  t.random_fault_accum <- 0.0;
  t.seq_fault_accum <- 0.0

let claim_bytes t n =
  if n < 0 then invalid_arg "Sim.claim_bytes: negative";
  t.working_bytes <- t.working_bytes + n;
  if t.working_bytes > t.peak_working_bytes then
    t.peak_working_bytes <- t.working_bytes

let release_bytes t n =
  if n < 0 then invalid_arg "Sim.release_bytes: negative";
  t.working_bytes <- max 0 (t.working_bytes - n)

let working_bytes t = t.working_bytes

let excess_ratio t =
  let avail = Cost_model.available_bytes t.cost in
  if avail <= 0 then if t.working_bytes > 0 then 1.0 else 0.0
  else
    let excess = t.working_bytes - avail in
    if excess <= 0 then 0.0 else float_of_int excess /. float_of_int avail

let us t micros = Clock.advance t.clock (micros /. 1000.0)

(* Deterministic swap accounting: accumulate fractional faults and charge
   whole ones, so results do not depend on PRNG draws. *)
let swap_random t =
  let p = Float.min 1.0 (excess_ratio t *. t.cost.Cost_model.thrash_factor) in
  if p > 0.0 then begin
    t.random_fault_accum <- t.random_fault_accum +. p;
    if t.random_fault_accum >= 1.0 then begin
      let faults = int_of_float t.random_fault_accum in
      t.random_fault_accum <- t.random_fault_accum -. float_of_int faults;
      t.counters.Counters.swap_faults <-
        t.counters.Counters.swap_faults + faults;
      Clock.advance t.clock (float_of_int faults *. t.cost.Cost_model.swap_fault_ms)
    end
  end

let swap_sequential t bytes =
  if excess_ratio t > 0.0 then begin
    let pages = float_of_int bytes /. float_of_int t.cost.Cost_model.page_size in
    t.seq_fault_accum <- t.seq_fault_accum +. pages;
    if t.seq_fault_accum >= 1.0 then begin
      let faults = int_of_float t.seq_fault_accum in
      t.seq_fault_accum <- t.seq_fault_accum -. float_of_int faults;
      t.counters.Counters.swap_faults <-
        t.counters.Counters.swap_faults + faults;
      Clock.advance t.clock (float_of_int faults *. t.cost.Cost_model.swap_fault_ms)
    end
  end

let charge_disk_read t =
  t.counters.Counters.disk_reads <- t.counters.Counters.disk_reads + 1;
  Clock.advance t.clock t.cost.Cost_model.page_read_ms

let charge_disk_write t =
  t.counters.Counters.disk_writes <- t.counters.Counters.disk_writes + 1;
  Clock.advance t.clock t.cost.Cost_model.page_write_ms

let charge_rpc t ~pages =
  t.counters.Counters.rpc_count <- t.counters.Counters.rpc_count + 1;
  t.counters.Counters.rpc_pages <- t.counters.Counters.rpc_pages + pages;
  Clock.advance t.clock
    (t.cost.Cost_model.rpc_fixed_ms
    +. (float_of_int pages *. t.cost.Cost_model.rpc_page_ms))

let charge_client_hit t =
  t.counters.Counters.client_hits <- t.counters.Counters.client_hits + 1;
  Clock.advance t.clock t.cost.Cost_model.client_hit_ms

let charge_handle_alloc t kind =
  t.counters.Counters.handle_allocs <- t.counters.Counters.handle_allocs + 1;
  us t (Cost_model.handle_alloc_us t.cost kind)

let charge_handle_free t kind =
  t.counters.Counters.handle_frees <- t.counters.Counters.handle_frees + 1;
  us t (Cost_model.handle_free_us t.cost kind)

let charge_handle_hit t =
  t.counters.Counters.handle_hits <- t.counters.Counters.handle_hits + 1

let charge_get_att t =
  t.counters.Counters.get_atts <- t.counters.Counters.get_atts + 1;
  us t t.cost.Cost_model.get_att_us

let charge_compare t n =
  if n > 0 then begin
    t.counters.Counters.comparisons <- t.counters.Counters.comparisons + n;
    us t (float_of_int n *. t.cost.Cost_model.compare_us)
  end

let charge_hash_insert t =
  t.counters.Counters.hash_inserts <- t.counters.Counters.hash_inserts + 1;
  us t t.cost.Cost_model.hash_insert_us;
  swap_random t

let charge_hash_probe t =
  t.counters.Counters.hash_probes <- t.counters.Counters.hash_probes + 1;
  us t t.cost.Cost_model.hash_probe_us;
  swap_random t

let charge_sort t n =
  if n > 1 then begin
    let cmps = int_of_float (float_of_int n *. (log (float_of_int n) /. log 2.0)) in
    t.counters.Counters.sort_comparisons <-
      t.counters.Counters.sort_comparisons + cmps;
    us t (float_of_int cmps *. t.cost.Cost_model.sort_cmp_us)
  end

(* Appending a log record is a memory write into the current log page; the
   I/O it implies is charged separately, one page write per filled log page
   (see [Tb_store.Wal]).  Counter only, no clock. *)
let charge_wal_append t =
  t.counters.Counters.wal_appends <- t.counters.Counters.wal_appends + 1

let charge_redo_page t =
  t.counters.Counters.redo_pages <- t.counters.Counters.redo_pages + 1;
  charge_disk_write t

let charge_undo_page t =
  t.counters.Counters.undo_pages <- t.counters.Counters.undo_pages + 1;
  charge_disk_write t

(* A transient read error: the failed read is paid for, plus the settle time
   before the retry is issued.  The backoff is supplied by the caller so the
   jitter draw stays in [Fault]'s seeded Rng (never wall clock). *)
let charge_read_retry t ~backoff_ms =
  t.counters.Counters.read_retries <- t.counters.Counters.read_retries + 1;
  charge_disk_read t;
  Clock.advance t.clock backoff_ms

(* A shard RPC declared lost: the full timeout window elapses before the
   caller learns anything.  Detection cost of every injected transient,
   partition or crash event. *)
let charge_rpc_timeout t =
  t.counters.Counters.rpc_timeouts <- t.counters.Counters.rpc_timeouts + 1;
  Clock.advance t.clock t.cost.Cost_model.rpc_timeout_ms

(* Re-issuing a timed-out shard RPC after an exponential-backoff wait.  Only
   the wait is charged here — the re-issued RPC itself goes through
   [charge_rpc] like any other, so traffic counters stay honest. *)
let charge_rpc_retry t ~backoff_ms =
  t.counters.Counters.rpc_retries <- t.counters.Counters.rpc_retries + 1;
  Clock.advance t.clock backoff_ms

(* Promoting a replica to primary: election plus a checksum walk over the
   follower's durable pages. *)
let charge_failover t ~pages =
  t.counters.Counters.failovers <- t.counters.Counters.failovers + 1;
  Clock.advance t.clock
    (t.cost.Cost_model.promote_fixed_ms
    +. (float_of_int pages *. t.cost.Cost_model.promote_page_ms))

let charge_result_append t ~bytes ~standard =
  t.counters.Counters.result_appends <- t.counters.Counters.result_appends + 1;
  us t
    (if standard then t.cost.Cost_model.result_append_standard_us
     else t.cost.Cost_model.result_append_load_us);
  claim_bytes t bytes;
  swap_sequential t bytes
