(** Simulation context: one per simulated machine.

    Bundles the cost model, the simulated clock, the event counters, the
    deterministic PRNG and the transient-memory accountant.  Every layer of
    the system (disk, buffer pools, handles, query operators) charges its
    events here, so that simulated elapsed time and the Figure-3-style
    statistics fall out of one place.

    {2 Memory accounting and swapping}

    Query operators register their transient structures (hash tables, result
    buffers) with [claim_bytes]/[release_bytes].  While the total exceeds the
    memory left over by the caches and the OS ([Cost_model.available_bytes]),
    random accesses (hash inserts and probes) suffer page faults with a
    probability that rises with the excess — the thrashing the paper observed
    when a "hash on a very large table" implied "a lot of memory swap"
    (Sections 3.5 and 5.1).  Sequential growth (result construction) pays at
    most one fault per page of excess, modelling write-behind. *)

type t = {
  cost : Cost_model.t;
  clock : Clock.t;
  counters : Counters.t;
  rng : Rng.t;
  mutable working_bytes : int;
  mutable peak_working_bytes : int;  (** high-water mark since last [reset] *)
  mutable random_fault_accum : float;
  mutable seq_fault_accum : float;
}

(** [create ?seed cost] makes a fresh context; [seed] defaults to 42. *)
val create : ?seed:int -> Cost_model.t -> t

(** Simulated elapsed seconds since the last [reset]. *)
val elapsed_s : t -> float

(** Reset clock, counters and fault accumulators (not the PRNG, not the
    claimed working memory). Used between cold runs. *)
val reset : t -> unit

(** {2 Transient memory} *)

val claim_bytes : t -> int -> unit
val release_bytes : t -> int -> unit

(** Bytes of transient query memory currently claimed. *)
val working_bytes : t -> int

(** [excess_ratio t] is [(claimed - available) / available], clamped at 0 —
    how far past physical memory the working structures have grown. *)
val excess_ratio : t -> float

(** {2 Charging events}

    Each [charge_*] bumps the matching counter and advances the clock. *)

val charge_disk_read : t -> unit
val charge_disk_write : t -> unit

(** [charge_rpc t ~pages] is one client/server round trip shipping [pages]
    pages. *)
val charge_rpc : t -> pages:int -> unit

val charge_client_hit : t -> unit
val charge_handle_alloc : t -> Cost_model.handle_kind -> unit
val charge_handle_free : t -> Cost_model.handle_kind -> unit

(** An object access served by an already-live Handle (delayed free paid
    off). *)
val charge_handle_hit : t -> unit

val charge_get_att : t -> unit
val charge_compare : t -> int -> unit

(** Hash-table traffic; these also roll the swap dice when the working set
    exceeds memory. *)
val charge_hash_insert : t -> unit

val charge_hash_probe : t -> unit

(** [charge_sort t n] charges an [n log2 n]-comparison sort (the Rid sort of
    Section 4.2). *)
val charge_sort : t -> int -> unit

(** One log record appended to the write-ahead log.  Counter only: the log's
    I/O is charged one page write per filled log page by the WAL itself, so
    the healthy path stays bit-identical to the pre-WAL accounting. *)
val charge_wal_append : t -> unit

(** One page restored from its after-image during crash recovery (a disk
    write plus the [redo_pages] counter). *)
val charge_redo_page : t -> unit

(** One page restored from its before-image during abort or recovery (a disk
    write plus the [undo_pages] counter). *)
val charge_undo_page : t -> unit

(** One transient read error: charges the wasted read plus the supplied
    settle time.  The caller computes [backoff_ms] from
    {!Cost_model.t.read_retry_backoff_ms} and the seeded fault Rng's jitter
    so retry charges are reproducible bit for bit.  Fault injection only. *)
val charge_read_retry : t -> backoff_ms:float -> unit

(** One shard RPC declared lost after {!Cost_model.t.rpc_timeout_ms} —
    the detection cost of a transient, partition or crash.  Fault injection
    only. *)
val charge_rpc_timeout : t -> unit

(** The exponential-backoff wait before re-issuing a timed-out shard RPC.
    The re-issued RPC itself is charged through {!charge_rpc}.  Fault
    injection only. *)
val charge_rpc_retry : t -> backoff_ms:float -> unit

(** One replica promotion: election plus a [pages]-page checksum walk over
    the follower's durable images.  Fault injection only. *)
val charge_failover : t -> pages:int -> unit

(** [charge_result_append t ~bytes ~standard] appends one element to the
    query result.  Under a standard transaction the system builds the
    collection "as if it could become persistent" (Section 4.2), which is
    what makes it cost ~0.6 ms per element. *)
val charge_result_append : t -> bytes:int -> standard:bool -> unit
