(* The optimizer's statistics catalog: everything the cost stage is allowed
   to know, snapshotted from maintained catalog state only.

   Every read here is charge-free by construction: cardinalities and page
   counts are Database bookkeeping, clustering / key bounds / histograms are
   the maintained Index_def fields refreshed at index build time.  Nothing
   in this module walks a page or touches the cache stack — treelint's R1
   keeps it that way (Stat_catalog is not in [charge_allowed]).

   The catalog also carries the validate stage's feedback: per-operator
   correction factors written back when an executed plan's accounted frame
   disagrees with its estimate by more than the q-error threshold.  The
   corrections live behind a shared ref so scaled per-shard views and the
   global view of one sharded database learn from the same observations. *)

module Database = Tb_store.Database
module Index_def = Tb_store.Index_def
module Schema = Tb_store.Schema

type extent = {
  x_cls : string;
  x_card : int;
  x_pages : int;
  x_rows_per_page : float;
  x_file : int;  (* heap-file id: detects classes sharing one file *)
}

type index = {
  i_def : Index_def.t;
  i_cls : string;
  i_attr : string;
  i_clustering : float;  (* maintained clustering factor, [0,1] *)
  i_lo : int;
  i_hi : int;
}

(* Multiplicative-with-offset correction: est' = raw * c_mul + c_add.  The
   additive leg exists for operators whose raw estimate is ~zero (a model
   blind spot), where no multiplier can reach the observed cost. *)
type corr = { c_mul : float; c_add : float }

type t = {
  cost : Tb_sim.Cost_model.t;
  client_cache_pages : int;
  schema : Schema.t;
  extents : extent list;
  indexes : index list;
  corrections : (string * corr) list ref;
  fed_back : int ref;
}

let analyze db =
  let sim = Database.sim db in
  let schema = Database.schema db in
  let extents =
    List.map
      (fun (c : Schema.cls) ->
        let cls = c.Schema.cls_name in
        let card = Database.cardinality db ~cls in
        let pages = Database.extent_pages db ~cls in
        {
          x_cls = cls;
          x_card = card;
          x_pages = pages;
          x_rows_per_page =
            (if pages = 0 then 0.0 else float_of_int card /. float_of_int pages);
          x_file =
            Tb_storage.Heap_file.file_id (Database.class_file db ~cls);
        })
      (Schema.classes schema)
  in
  let indexes =
    List.map
      (fun ix ->
        {
          i_def = ix;
          i_cls = ix.Index_def.cls;
          i_attr = ix.Index_def.attr;
          i_clustering = ix.Index_def.clustering;
          i_lo = ix.Index_def.lo_key;
          i_hi = ix.Index_def.hi_key;
        })
      (Database.indexes db)
  in
  {
    cost = sim.Tb_sim.Sim.cost;
    client_cache_pages =
      Tb_storage.Cache_stack.client_capacity (Database.stack db);
    schema;
    extents;
    indexes;
    corrections = ref [];
    fed_back = ref 0;
  }

let cost t = t.cost
let client_cache_pages t = t.client_cache_pages
let available_bytes t = Tb_sim.Cost_model.available_bytes t.cost

let extent t ~cls =
  List.find_opt (fun e -> String.equal e.x_cls cls) t.extents

let index_on t ~cls ~attr =
  List.find_opt
    (fun i -> String.equal i.i_cls cls && String.equal i.i_attr attr)
    t.indexes

let is_clustered i = i.i_clustering >= 0.8

(* Fraction of the index's entries with key strictly below [k], from the
   maintained histogram (or the uniform assumption when none was built). *)
let selectivity_below i k = Index_def.selectivity_below i.i_def k

let shared_file t cls_a cls_b =
  match (extent t ~cls:cls_a, extent t ~cls:cls_b) with
  | Some a, Some b -> a.x_file = b.x_file
  | _ -> false

let attr_bytes t ~cls attr =
  match Schema.attr_type t.schema ~cls ~attr with
  | Schema.TInt -> 5
  | Schema.TString -> 21
  | Schema.TChar | Schema.TBool -> 2
  | Schema.TReal -> 9
  | Schema.TRef _ -> 9
  | Schema.TSet _ | Schema.TList _ | Schema.TTuple _ -> 16
  | exception Not_found -> 9

(* --- sharded views --- *)

(* One shard's view of an S-way partitioned database: 1/S of every extent's
   rows and pages, same indexes and histograms (every shard replicates the
   index set over its slice, and the uniform generators keep per-shard key
   distributions identical).  Corrections stay shared. *)
let scale t ~shards =
  if shards <= 1 then t
  else
    {
      t with
      extents =
        List.map
          (fun e ->
            {
              e with
              x_card = (e.x_card + shards - 1) / shards;
              x_pages = max 1 ((e.x_pages + shards - 1) / shards);
            })
          t.extents;
    }

(* The global view over per-shard catalogs: summed cardinalities and pages,
   widened key bounds.  Index selectivity functions come from the first
   shard (partitioning is row-wise, so per-shard key distributions match
   the global one).  Corrections are shared with the first catalog. *)
let merge ts =
  match ts with
  | [] -> invalid_arg "Stat_catalog.merge: empty"
  | first :: rest ->
      let sum_extent e =
        List.fold_left
          (fun acc t ->
            match extent t ~cls:e.x_cls with
            | Some e' -> (fst acc + e'.x_card, snd acc + e'.x_pages)
            | None -> acc)
          (e.x_card, e.x_pages)
          rest
      in
      let extents =
        List.map
          (fun e ->
            let card, pages = sum_extent e in
            {
              e with
              x_card = card;
              x_pages = pages;
              x_rows_per_page =
                (if pages = 0 then 0.0
                 else float_of_int card /. float_of_int pages);
            })
          first.extents
      in
      let indexes =
        List.map
          (fun i ->
            List.fold_left
              (fun acc t ->
                match index_on t ~cls:i.i_cls ~attr:i.i_attr with
                | Some i' ->
                    {
                      acc with
                      i_lo = min acc.i_lo i'.i_lo;
                      i_hi = max acc.i_hi i'.i_hi;
                    }
                | None -> acc)
              i rest)
          first.indexes
      in
      { first with extents; indexes }

(* --- validate-stage feedback --- *)

let correction t key =
  match
    List.find_opt (fun (k, _) -> String.equal k key) !(t.corrections)
  with
  | Some (_, c) -> c
  | None -> { c_mul = 1.0; c_add = 0.0 }

let corrected_ms t ~key raw =
  let c = correction t key in
  (raw *. c.c_mul) +. c.c_add

(* Record a mis-estimate: scale the operator's correction so the corrected
   estimate reproduces [actual_ms] exactly on the next round.  When the
   (already corrected) estimate is ~zero the multiplier has nothing to act
   on, so the observation lands on the additive leg instead. *)
let observe t ~key ~est_ms ~actual_ms =
  let cur = correction t key in
  let next =
    if est_ms > 1e-3 then
      let f = actual_ms /. est_ms in
      { c_mul = cur.c_mul *. f; c_add = cur.c_add *. f }
    else { cur with c_add = actual_ms }
  in
  t.corrections :=
    (key, next)
    :: List.filter (fun (k, _) -> not (String.equal k key)) !(t.corrections);
  incr t.fed_back

let fed_back t = !(t.fed_back)

let corrections t =
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (List.map (fun (k, c) -> (k, c.c_mul, c.c_add)) !(t.corrections))

let reset_corrections t =
  t.corrections := [];
  t.fed_back := 0
