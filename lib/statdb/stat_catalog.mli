(** The optimizer's statistics catalog — the "what statistics should the
    system maintain" half of the paper's closing question, packaged for the
    cost stage.

    [analyze] snapshots maintained catalog state only: per-extent
    cardinality and page count, heap-file identity, index clustering
    factors, key bounds and histograms, plus the cost model's RAM budget.
    It never fetches a page and never charges — treelint R1 enforces that
    costing code stays out of the charging set.

    The catalog also carries the validate stage's feedback: per-operator-key
    correction factors ({!observe}) that {!corrected_ms} folds into later
    estimates, so a repeated query converges onto its accounted cost. *)

type extent = {
  x_cls : string;
  x_card : int;  (** extent cardinality (catalog counter) *)
  x_pages : int;  (** pages of the heap file slice holding the extent *)
  x_rows_per_page : float;
  x_file : int;  (** heap-file id: classes sharing a file share an id *)
}

type index = {
  i_def : Tb_store.Index_def.t;
  i_cls : string;
  i_attr : string;
  i_clustering : float;  (** maintained clustering factor in [0,1] *)
  i_lo : int;  (** smallest indexed key *)
  i_hi : int;  (** largest indexed key *)
}

(** est' = raw * c_mul + c_add; the additive leg serves operators whose raw
    estimate is ~zero. *)
type corr = { c_mul : float; c_add : float }

type t

(** Snapshot a database's maintained statistics.  Charge-free: reads only
    catalog counters and {!Tb_store.Index_def} fields. *)
val analyze : Tb_store.Database.t -> t

val cost : t -> Tb_sim.Cost_model.t
val client_cache_pages : t -> int

(** RAM left after the engine's reservation — what a hash table may grow
    into before the thrash model bites. *)
val available_bytes : t -> int

val extent : t -> cls:string -> extent option
val index_on : t -> cls:string -> attr:string -> index option
val is_clustered : index -> bool

(** Fraction of the index's entries with key strictly below [k]
    (histogram when built, uniform assumption otherwise). *)
val selectivity_below : index -> int -> float

(** Whether two classes share one heap file (Figure 2's organizations). *)
val shared_file : t -> string -> string -> bool

(** Rough stored width of one attribute, from the schema type. *)
val attr_bytes : t -> cls:string -> string -> int

(** One shard's view of an S-way partitioned database: extents shrunk to
    1/S, indexes and corrections shared.  Identity at [shards <= 1]. *)
val scale : t -> shards:int -> t

(** The global view over per-shard catalogs: cardinalities and pages
    summed, key bounds widened; corrections shared with the first.
    Raises [Invalid_argument] on an empty list. *)
val merge : t list -> t

(** {2 Feedback} *)

val correction : t -> string -> corr

(** Apply the key's correction to a raw estimate. *)
val corrected_ms : t -> key:string -> float -> float

(** Record a mis-estimate for [key]: after this call, [corrected_ms] of the
    same raw estimate returns [actual_ms] (one-round convergence). *)
val observe : t -> key:string -> est_ms:float -> actual_ms:float -> unit

(** Mis-estimate observations recorded since the last
    {!reset_corrections}. *)
val fed_back : t -> int

(** All live corrections as [(key, mul, add)], sorted by key. *)
val corrections : t -> (string * float * float) list

val reset_corrections : t -> unit
