module Schema = Tb_store.Schema

let stat_cls = "Stat"
let query_cls = "Query"
let extent_cls = "Extent"
let system_cls = "System"
let estimate_cls = "Estimate"
let stats_extent = "Stats"
let queries_extent = "Queries"
let extents_extent = "Extents"
let systems_extent = "Systems"
let estimates_extent = "Estimates"

(* Figure 3, with the one adaptation that [ElapsedTime] is stored in
   milliseconds as an integer so that it can be indexed and compared by the
   OQL subset (which indexes integers only). A real-typed mirror attribute
   keeps the original unit. *)
let schema =
  Schema.make
    ~classes:
      [
        {
          Schema.cls_name = query_cls;
          attrs =
            [
              ("cold", Schema.TBool);
              ("projectiontype", Schema.TString);
              ("selectivity", Schema.TInt);
              ("text", Schema.TString);
            ];
        };
        {
          Schema.cls_name = extent_cls;
          attrs =
            [
              ("classname", Schema.TString);
              ("size", Schema.TInt);
              ( "associations",
                Schema.TSet
                  (Schema.TTuple
                     [ ("extent", Schema.TRef extent_cls); ("linkratio", Schema.TInt) ])
              );
            ];
        };
        {
          Schema.cls_name = system_cls;
          attrs =
            [
              ("servercachesize", Schema.TInt);
              ("clientcachesize", Schema.TInt);
              ("sameworkstation", Schema.TBool);
            ];
        };
        {
          Schema.cls_name = stat_cls;
          attrs =
            [
              ("numtest", Schema.TInt);
              ("query", Schema.TRef query_cls);
              ("database", Schema.TSet (Schema.TRef extent_cls));
              ("cluster", Schema.TString);
              ("algo", Schema.TString);
              ("system", Schema.TRef system_cls);
              ("CCPagefaults", Schema.TInt);
              ("ElapsedTime", Schema.TReal);
              ("ElapsedTimeMs", Schema.TInt);
              ("RPCsnumber", Schema.TInt);
              ("RPCstotalsize", Schema.TInt);
              ("D2SCreadpages", Schema.TInt);
              ("SC2CCreadpages", Schema.TInt);
              ("CCMissrate", Schema.TInt);
              ("SCMissrate", Schema.TInt);
            ];
        };
        (* The validate stage's audit trail: one object per reconciled
           operator, in the same queryable store the paper's Stat objects
           live in.  Times are integer milliseconds (the OQL subset
           indexes integers only); the q-error is stored in percent. *)
        {
          Schema.cls_name = estimate_cls;
          attrs =
            [
              ("numtest", Schema.TInt);
              ("operator", Schema.TString);
              ("EstimatedMs", Schema.TInt);
              ("ActualMs", Schema.TInt);
              ("QErrorPct", Schema.TInt);
              ("fedback", Schema.TBool);
            ];
        };
      ]
    ~roots:
      [
        (stats_extent, Schema.TSet (Schema.TRef stat_cls));
        (queries_extent, Schema.TSet (Schema.TRef query_cls));
        (extents_extent, Schema.TSet (Schema.TRef extent_cls));
        (systems_extent, Schema.TSet (Schema.TRef system_cls));
        (estimates_extent, Schema.TSet (Schema.TRef estimate_cls));
      ]
