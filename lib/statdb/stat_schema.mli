(** The benchmark-results schema of Figure 3.

    "Large benchmark equals many numbers: why not use a database?"
    (Section 3.3) — the authors ended up storing every experiment as a
    [Stat] object in O2 itself.  We do the same: this schema is instantiated
    on our own object store, and the stored results can be queried back
    with the same OQL subset the benchmark measures. *)

val schema : Tb_store.Schema.t

val stat_cls : string
val query_cls : string
val extent_cls : string
val system_cls : string

(** The validate stage's audit trail: one object per reconciled operator
    (estimated vs actual ms, q-error in percent, whether it fed a
    correction back). *)
val estimate_cls : string

val stats_extent : string
val queries_extent : string
val extents_extent : string
val systems_extent : string
val estimates_extent : string
