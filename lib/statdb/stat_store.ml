module Value = Tb_store.Value
module Database = Tb_store.Database
module Rid = Tb_storage.Rid

type observation = {
  numtest : int;
  query_text : string;
  projection : string;
  selectivity : int;
  cold : bool;
  database : string;
  cluster : string;
  algo : string;
  server_cache_pages : int;
  client_cache_pages : int;
  elapsed_s : float;
  rpcs : int;
  rpc_pages : int;
  d2sc_reads : int;
  sc2cc_reads : int;
  cc_missrate : float;
  sc_missrate : float;
  cc_pagefaults : int;
}

type t = {
  db : Database.t;
  mutable systems : ((int * int) * Rid.t) list;
  mutable extents : (string * Rid.t) list;
  mutable recorded : (Rid.t * observation) list;  (* newest first *)
}

let create () =
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 16) in
  let db =
    Database.create sim ~schema:Stat_schema.schema ~server_pages:64
      ~client_pages:256 ~txn_mode:Tb_store.Transaction.Load_off ()
  in
  List.iter
    (fun (cls, file) ->
      Database.bind_class db ~cls (Database.new_file db ~name:file))
    [
      (Stat_schema.stat_cls, "stats");
      (Stat_schema.query_cls, "queries");
      (Stat_schema.extent_cls, "extents");
      (Stat_schema.system_cls, "systems");
      (Stat_schema.estimate_cls, "estimates");
    ];
  (* Index the stats on test number so they can be ranged over in OQL. *)
  let t = { db; systems = []; extents = []; recorded = [] } in
  ignore
    (Database.create_index db ~name:"numtest" ~cls:Stat_schema.stat_cls
       ~attr:"numtest");
  t

let db t = t.db

let system_rid t ~server ~client =
  match List.assoc_opt (server, client) t.systems with
  | Some rid -> rid
  | None ->
      let rid =
        Database.insert_object t.db ~cls:Stat_schema.system_cls
          (Value.Tuple
             [
               ("servercachesize", Value.Int server);
               ("clientcachesize", Value.Int client);
               ("sameworkstation", Value.Bool true);
             ])
      in
      t.systems <- ((server, client), rid) :: t.systems;
      rid

let register_extent t ~classname ~size ~links =
  let assoc =
    List.map
      (fun (name, ratio) ->
        let target =
          match List.assoc_opt name t.extents with
          | Some rid -> rid
          | None -> raise Not_found
        in
        Value.Tuple [ ("extent", Value.Ref target); ("linkratio", Value.Int ratio) ])
      links
  in
  let rid =
    Database.insert_object t.db ~cls:Stat_schema.extent_cls
      (Value.Tuple
         [
           ("classname", Value.String classname);
           ("size", Value.Int size);
           ("associations", Value.Set assoc);
         ])
  in
  t.extents <- (classname, rid) :: t.extents;
  rid

let record t obs =
  let query_rid =
    Database.insert_object t.db ~cls:Stat_schema.query_cls
      (Value.Tuple
         [
           ("cold", Value.Bool obs.cold);
           ("projectiontype", Value.String obs.projection);
           ("selectivity", Value.Int obs.selectivity);
           ("text", Value.String obs.query_text);
         ])
  in
  let system_rid =
    system_rid t ~server:obs.server_cache_pages ~client:obs.client_cache_pages
  in
  let stat_rid =
    Database.insert_object t.db ~cls:Stat_schema.stat_cls
      (Value.Tuple
         [
           ("numtest", Value.Int obs.numtest);
           ("query", Value.Ref query_rid);
           ("database", Value.Set (List.map (fun (_, r) -> Value.Ref r) t.extents));
           ("cluster", Value.String obs.cluster);
           ("algo", Value.String obs.algo);
           ("system", Value.Ref system_rid);
           ("CCPagefaults", Value.Int obs.cc_pagefaults);
           ("ElapsedTime", Value.Real obs.elapsed_s);
           ("ElapsedTimeMs", Value.Int (int_of_float (obs.elapsed_s *. 1000.0)));
           ("RPCsnumber", Value.Int obs.rpcs);
           ("RPCstotalsize", Value.Int obs.rpc_pages);
           ("D2SCreadpages", Value.Int obs.d2sc_reads);
           ("SC2CCreadpages", Value.Int obs.sc2cc_reads);
           ("CCMissrate", Value.Int (int_of_float obs.cc_missrate));
           ("SCMissrate", Value.Int (int_of_float obs.sc_missrate));
         ])
  in
  t.recorded <- (stat_rid, obs) :: t.recorded;
  stat_rid

let count t = List.length t.recorded
let observations t = List.rev_map snd t.recorded
let query t oql = Tb_query.Planner.run t.db oql ~keep:true

(* One validate-stage reconciliation, made queryable: ms figures rounded
   to integers (the indexable type), q-error in percent. *)
let record_estimate t ~numtest (ec : Tb_query.Exec.est_check) =
  Database.insert_object t.db ~cls:Stat_schema.estimate_cls
    (Value.Tuple
       [
         ("numtest", Value.Int numtest);
         ("operator", Value.String ec.Tb_query.Exec.ec_key);
         ( "EstimatedMs",
           Value.Int (int_of_float (Float.round ec.Tb_query.Exec.ec_est_ms)) );
         ( "ActualMs",
           Value.Int (int_of_float (Float.round ec.Tb_query.Exec.ec_actual_ms)) );
         ( "QErrorPct",
           Value.Int (int_of_float (Float.round (ec.Tb_query.Exec.ec_q *. 100.0))) );
         ("fedback", Value.Bool ec.Tb_query.Exec.ec_fed_back);
       ])

let record_estimates t ~numtest checks =
  List.map (record_estimate t ~numtest) checks

let csv_header =
  "numtest,algo,cluster,database,selectivity,cold,elapsed_s,rpcs,rpc_pages,\
   d2sc_reads,sc2cc_reads,cc_missrate,sc_missrate,cc_pagefaults,query"

(* RFC 4180 quoting: a field containing a comma, a double quote, or a line
   break is wrapped in double quotes with embedded quotes doubled.  The old
   exporter printed text fields raw (and the query through OCaml's [%S]),
   so an algo name or query containing a comma shifted every column after
   it. *)
let csv_escape s =
  let needs_quoting =
    String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n' || ch = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* Split one CSV record back into fields (the inverse of [csv_escape]
   applied per field) — exposed so the export can be round-trip tested.
   The record may span multiple source lines when a quoted field embeds a
   newline; [csv_split] consumes the whole string as one record. *)
let csv_split line =
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length line in
  let rec plain i =
    if i >= n then finish ()
    else
      match line.[i] with
      | ',' ->
          fields := Buffer.contents buf :: !fields;
          Buffer.clear buf;
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | ch ->
          Buffer.add_char buf ch;
          plain (i + 1)
  and quoted i =
    if i >= n then finish () (* unterminated quote: best effort *)
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | ch ->
          Buffer.add_char buf ch;
          quoted (i + 1)
  and finish () =
    fields := Buffer.contents buf :: !fields;
    List.rev !fields
  in
  plain 0

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%d,%b,%.3f,%d,%d,%d,%d,%.1f,%.1f,%d,%s\n"
           o.numtest (csv_escape o.algo) (csv_escape o.cluster)
           (csv_escape o.database) o.selectivity o.cold o.elapsed_s o.rpcs
           o.rpc_pages o.d2sc_reads o.sc2cc_reads o.cc_missrate o.sc_missrate
           o.cc_pagefaults (csv_escape o.query_text)))
    (observations t);
  Buffer.contents buf
