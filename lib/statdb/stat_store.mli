(** The benchmark-results database: record one [Stat] object per experiment
    (Section 3.3), query them back, export them.

    The store runs on its own simulated machine whose costs do not pollute
    the experiments being recorded. *)

type observation = {
  numtest : int;
  query_text : string;
  projection : string;
  selectivity : int;  (** percent, as in the paper's Query class *)
  cold : bool;
  database : string;  (** e.g. "2000x1000" *)
  cluster : string;  (** organization name *)
  algo : string;  (** "NL", "PHJ", "scan", ... *)
  server_cache_pages : int;
  client_cache_pages : int;
  elapsed_s : float;
  rpcs : int;
  rpc_pages : int;
  d2sc_reads : int;
  sc2cc_reads : int;
  cc_missrate : float;
  sc_missrate : float;
  cc_pagefaults : int;
}

type t

val create : unit -> t

(** The underlying object database (it answers the same OQL subset the
    benchmarks measure). *)
val db : t -> Tb_store.Database.t

(** [record t obs] creates the [Query], [System] (deduplicated) and [Stat]
    objects and returns the Stat's Rid. *)
val record : t -> observation -> Tb_storage.Rid.t

(** [register_extent t ~classname ~size ~links] declares an [Extent] object
    ([links] are (classname, linkratio) pairs to already-registered
    extents). Raises [Not_found] if a link target is unknown. *)
val register_extent :
  t -> classname:string -> size:int -> links:(string * int) list -> Tb_storage.Rid.t

val count : t -> int

(** All observations, in recording order. *)
val observations : t -> observation list

(** [query t oql] runs the OQL subset over the stats database, e.g.
    [select s.ElapsedTimeMs from s in Stats where s.numtest < 10]. *)
val query : t -> string -> Tb_query.Query_result.t

(** [record_estimate t ~numtest check] stores one validate-stage
    reconciliation as an [Estimate] object (ms rounded to integers,
    q-error in percent) and returns its Rid.  [record_estimates] stores a
    whole check list, e.g. the output of [Planner.run_optimized_explained]. *)
val record_estimate :
  t -> numtest:int -> Tb_query.Exec.est_check -> Tb_storage.Rid.t

val record_estimates :
  t -> numtest:int -> Tb_query.Exec.est_check list -> Tb_storage.Rid.t list

(** CSV export (header + one line per stat) — the paper fed its results to
    data-analysis tools and Gnuplot; this is our conversion path.  Fields
    containing commas, double quotes or line breaks are RFC 4180 quoted. *)
val to_csv : t -> string

(** [csv_escape s] quotes one field the way {!to_csv} does (identity when
    no quoting is needed). *)
val csv_escape : string -> string

(** [csv_split record] splits one CSV record back into its fields,
    undoing {!csv_escape} — the round-trip inverse used by the tests.  A
    record whose quoted field embeds a newline is one string here. *)
val csv_split : string -> string list
