(* Intrusive doubly-linked LRU threaded through a hash table.  A circular
   sentinel node replaces the old [node option] head/tail: unlink and
   push-tail are straight pointer swaps with no option boxing, and when the
   pool is full the evicted node is recycled for the incoming page, so the
   steady state allocates nothing per touch.  [sentinel.next] is the least
   recently used entry, [sentinel.prev] the most recent. *)

type node = {
  mutable id : Page_id.t;
  mutable page : Page_layout.t;
  mutable prev : node;
  mutable next : node;
}

type t = {
  capacity : int;
  table : (Page_id.t, node) Hashtbl.t;
  sentinel : node;
}

let create ~capacity_pages =
  if capacity_pages <= 0 then invalid_arg "Buffer_pool.create: capacity";
  let rec sentinel =
    {
      id = Page_id.make ~file:0 ~index:0;
      page = Page_layout.create ~size:64;
      prev = sentinel;
      next = sentinel;
    }
  in
  {
    capacity = capacity_pages;
    table = Hashtbl.create (min 65536 (capacity_pages + 1));
    sentinel;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

(* Insert just before the sentinel: the most-recently-used position. *)
let push_tail t node =
  let s = t.sentinel in
  node.prev <- s.prev;
  node.next <- s;
  s.prev.next <- node;
  s.prev <- node

let touch t node =
  unlink node;
  push_tail t node

let find t id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some node ->
      touch t node;
      Some node.page

let mem t id = Hashtbl.mem t.table id

(* Like [find] but leaves recency untouched: a host-level probe for callers
   that must not perturb the pools' eviction order (the B+-tree bulk build,
   the WAL's after-image capture). *)
let peek t id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some node -> Some node.page

let add t id page =
  match Hashtbl.find_opt t.table id with
  | Some node ->
      (* Re-adding refreshes recency only; the cached page stays. *)
      ignore page;
      touch t node;
      None
  | None ->
      if Hashtbl.length t.table >= t.capacity then begin
        (* Full: evict the LRU entry and recycle its node for the newcomer. *)
        let lru = t.sentinel.next in
        let victim = (lru.id, lru.page) in
        Hashtbl.remove t.table lru.id;
        lru.id <- id;
        lru.page <- page;
        Hashtbl.replace t.table id lru;
        touch t lru;
        Some victim
      end
      else begin
        let node = { id; page; prev = t.sentinel; next = t.sentinel } in
        Hashtbl.replace t.table id node;
        push_tail t node;
        None
      end

let remove t id =
  match Hashtbl.find_opt t.table id with
  | None -> ()
  | Some node ->
      unlink node;
      Hashtbl.remove t.table id

let iter t f =
  let s = t.sentinel in
  let rec go node =
    if node != s then begin
      f node.id node.page;
      go node.next
    end
  in
  go s.next

let clear t =
  Hashtbl.reset t.table;
  t.sentinel.prev <- t.sentinel;
  t.sentinel.next <- t.sentinel
