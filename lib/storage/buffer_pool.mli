(** A fixed-capacity LRU pool of pages.

    Used twice per database: once as the server cache (4 MB by default) and
    once as the client cache (32 MB in the paper's tuned configuration) —
    see {!Cache_stack}.  The pool itself is policy-free bookkeeping: lookups
    refresh recency, insertions report the victim so the caller can charge
    the write-back. *)

type t

(** [create ~capacity_pages] — capacity must be positive. *)
val create : capacity_pages:int -> t

val capacity : t -> int
val size : t -> int

(** [find t id] returns the cached page and marks it most recently used. *)
val find : t -> Page_id.t -> Page_layout.t option

val mem : t -> Page_id.t -> bool

(** [peek t id] is the cached page without refreshing recency — a pure probe
    that cannot perturb eviction order. *)
val peek : t -> Page_id.t -> Page_layout.t option

(** [add t id page] caches [page]; if the pool was full, the least recently
    used entry is evicted and returned.  Re-adding a present id refreshes
    recency and returns [None]. *)
val add : t -> Page_id.t -> Page_layout.t -> (Page_id.t * Page_layout.t) option

(** [remove t id] drops an entry if present. *)
val remove : t -> Page_id.t -> unit

(** [iter t f] visits every cached entry, least recently used first. *)
val iter : t -> (Page_id.t -> Page_layout.t -> unit) -> unit

(** Drop everything (server shutdown between cold runs). *)
val clear : t -> unit
