type t = {
  sim : Tb_sim.Sim.t;
  disk : Disk.t;
  server : Buffer_pool.t;
  client : Buffer_pool.t;
}

let create sim disk ~server_pages ~client_pages =
  {
    sim;
    disk;
    server = Buffer_pool.create ~capacity_pages:server_pages;
    client = Buffer_pool.create ~capacity_pages:client_pages;
  }

let server_capacity t = Buffer_pool.capacity t.server
let client_capacity t = Buffer_pool.capacity t.client
let disk t = t.disk
let sim t = t.sim

(* Page objects are shared between disk and caches; "writing" a page to disk
   is therefore pure cost accounting plus clearing the dirty bit. *)
let write_to_disk t page =
  if Page_layout.dirty page then begin
    Tb_sim.Sim.charge_disk_write t.sim;
    Page_layout.set_dirty page false
  end

(* Install a page in the server pool; a dirty victim goes to disk. *)
let server_add t id page =
  match Buffer_pool.add t.server id page with
  | None -> ()
  | Some (_vid, victim) -> write_to_disk t victim

(* Install a page in the client pool; a dirty victim is shipped back to the
   server (one RPC) and stays dirty there until the server evicts it. *)
let client_add t id page =
  match Buffer_pool.add t.client id page with
  | None -> ()
  | Some (vid, victim) ->
      if Page_layout.dirty victim then begin
        Tb_sim.Sim.charge_rpc t.sim ~pages:1;
        server_add t vid victim
      end

let fetch_from_server t id =
  match Buffer_pool.find t.server id with
  | Some page ->
      t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.server_hits <-
        t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.server_hits + 1;
      page
  | None ->
      t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.server_misses <-
        t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.server_misses + 1;
      Tb_sim.Sim.charge_disk_read t.sim;
      let page = Disk.page t.disk id in
      server_add t id page;
      page

let fetch t id =
  match Buffer_pool.find t.client id with
  | Some page ->
      Tb_sim.Sim.charge_client_hit t.sim;
      page
  | None ->
      t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.client_misses <-
        t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.client_misses + 1;
      Tb_sim.Sim.charge_rpc t.sim ~pages:1;
      let page = fetch_from_server t id in
      client_add t id page;
      page

let fetch_for_write t id =
  let page = fetch t id in
  Page_layout.set_dirty page true;
  page

(* Charge-free, recency-free client-pool membership probe: lets a caller
   prove that a [fetch] would be a client hit without simulating anything
   (the B+-tree's bulk-build fast path). *)
let resident t id = Buffer_pool.mem t.client id

let flush t =
  (* Client-side dirty pages cost an RPC each on their way down. *)
  Buffer_pool.iter t.client (fun _id page ->
      if Page_layout.dirty page then begin
        Tb_sim.Sim.charge_rpc t.sim ~pages:1;
        write_to_disk t page
      end);
  Buffer_pool.iter t.server (fun _id page -> write_to_disk t page)

let clear t =
  flush t;
  Buffer_pool.clear t.client;
  Buffer_pool.clear t.server
