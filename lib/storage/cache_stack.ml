type t = {
  sim : Tb_sim.Sim.t;
  disk : Disk.t;
  server : Buffer_pool.t;
  client : Buffer_pool.t;
  mutable fault : Fault.t option;
  mutable write_observer : (Page_id.t -> Page_layout.t -> unit) option;
}

let create sim disk ~server_pages ~client_pages =
  {
    sim;
    disk;
    server = Buffer_pool.create ~capacity_pages:server_pages;
    client = Buffer_pool.create ~capacity_pages:client_pages;
    fault = None;
    write_observer = None;
  }

let server_capacity t = Buffer_pool.capacity t.server
let client_capacity t = Buffer_pool.capacity t.client
let disk t = t.disk
let sim t = t.sim
let set_fault t f = t.fault <- f
let fault t = t.fault
let set_write_observer t obs = t.write_observer <- obs

(* Writing a page to disk: charge the I/O, copy the working bytes into the
   durable image, clear the dirty bit.  The fault layer decides whether the
   machine survives the write; a crashing write is not charged (the charge
   models a completed transfer) and leaves the image untouched — or, torn,
   half-updated under the wrong checksum. *)
let write_to_disk t id page =
  if Page_layout.dirty page then begin
    (match t.fault with
    | None -> ()
    | Some f -> (
        match Fault.on_write f with
        | Fault.Ok -> ()
        | Fault.Crash_lost -> raise Fault.Crash
        | Fault.Crash_torn ->
            Disk.persist_torn t.disk id page;
            raise Fault.Crash));
    Tb_sim.Sim.charge_disk_write t.sim;
    Disk.persist t.disk id page;
    Page_layout.set_dirty page false
  end

(* Install a page in the server pool; a dirty victim goes to disk. *)
let server_add t id page =
  match Buffer_pool.add t.server id page with
  | None -> ()
  | Some (vid, victim) -> write_to_disk t vid victim

(* Install a page in the client pool; a dirty victim is shipped back to the
   server (one RPC) and stays dirty there until the server evicts it. *)
let client_add t id page =
  match Buffer_pool.add t.client id page with
  | None -> ()
  | Some (vid, victim) ->
      if Page_layout.dirty victim then begin
        Tb_sim.Sim.charge_rpc t.sim ~pages:1;
        server_add t vid victim
      end

let fetch_from_server t id =
  match Buffer_pool.find t.server id with
  | Some page ->
      t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.server_hits <-
        t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.server_hits + 1;
      page
  | None ->
      t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.server_misses <-
        t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.server_misses + 1;
      (* Transient read errors burn a read plus an exponentially backed-off
         settle each, then the retry succeeds (bounded by the fault layer's
         retry budget).  The jitter multiplier comes from the fault layer's
         seeded Rng, so the charge stream replays bit for bit. *)
      (match t.fault with
      | None -> ()
      | Some f ->
          let budget = Fault.max_read_retries f in
          let base = t.sim.Tb_sim.Sim.cost.Tb_sim.Cost_model.read_retry_backoff_ms in
          let rec attempt k scale =
            if k < budget && Fault.read_fails f then begin
              Tb_sim.Sim.charge_read_retry t.sim
                ~backoff_ms:(base *. scale *. Fault.backoff_jitter f);
              attempt (k + 1) (scale *. 2.0)
            end
          in
          attempt 0 1.0);
      Tb_sim.Sim.charge_disk_read t.sim;
      let page = Disk.load_page t.disk id in
      server_add t id page;
      page

let fetch t id =
  match Buffer_pool.find t.client id with
  | Some page ->
      Tb_sim.Sim.charge_client_hit t.sim;
      page
  | None ->
      t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.client_misses <-
        t.sim.Tb_sim.Sim.counters.Tb_sim.Counters.client_misses + 1;
      Tb_sim.Sim.charge_rpc t.sim ~pages:1;
      let page = fetch_from_server t id in
      client_add t id page;
      page

let fetch_for_write t id =
  let page = fetch t id in
  Page_layout.set_dirty page true;
  (* The observer (the WAL) runs after the fetch but before the caller can
     mutate: a first touch captures the page's pre-transaction image, and
     every touch refreshes the WAL's reference to the current working
     object.  Charge-free. *)
  (match t.write_observer with None -> () | Some obs -> obs id page);
  page

(* Charge-free, recency-free client-pool membership probe: lets a caller
   prove that a [fetch] would be a client hit without simulating anything
   (the B+-tree's bulk-build fast path). *)
let resident t id = Buffer_pool.mem t.client id

(* The client-pool working object itself, same contract as [resident]. *)
let peek t id = Buffer_pool.peek t.client id

let flush t =
  (* Client-side dirty pages cost an RPC each on their way down. *)
  Buffer_pool.iter t.client (fun id page ->
      if Page_layout.dirty page then begin
        Tb_sim.Sim.charge_rpc t.sim ~pages:1;
        write_to_disk t id page
      end);
  Buffer_pool.iter t.server (fun id page -> write_to_disk t id page)

let drop_pools t =
  Buffer_pool.clear t.client;
  Buffer_pool.clear t.server

(* Drop both pools without flushing: the crash/abort path.  Dirty working
   pages are simply lost; the durable images stay whatever the last persists
   made them.  The disk's working-object memos go too — with dirty objects
   dying unpersisted, byte-equality with the images can no longer be
   assumed for any of them. *)
let drop t =
  drop_pools t;
  Disk.invalidate_cached t.disk

(* Cold restart: flush, then drop.  After the flush every working object is
   clean and byte-identical to its durable image, so the disk's memos stay
   valid — a clean shutdown, unlike a crash, loses no decode work. *)
let clear t =
  flush t;
  drop_pools t
