(** The two-tier O2 cache architecture: client cache over server cache over
    disk.

    A page touch goes client → (RPC) → server → (I/O) → disk, charging the
    simulated clock at each boundary it crosses; this is how the paper's
    [RPCsnumber], [SC2CCreadpages] and [D2SCreadpages] statistics arise.
    Section 3.2's observation that "the number of IOs depends on the largest
    cache size, independently of its function" is an emergent property of
    this stack.

    Dirty pages written by the client are shipped back on eviction (one RPC)
    and reach the disk when the server in turn evicts them, or at [flush].

    [clear] models the server shutdown the authors perform between runs so
    every query starts cold. *)

type t

val create :
  Tb_sim.Sim.t -> Disk.t -> server_pages:int -> client_pages:int -> t

(** Capacities, in pages. *)
val server_capacity : t -> int

val client_capacity : t -> int

(** [fetch t id] brings the page to the client cache (charging whatever
    boundaries it crosses) and returns it. *)
val fetch : t -> Page_id.t -> Page_layout.t

(** Like [fetch], and marks the page dirty.  Every call is reported to the
    write observer (after the fetch, before the caller can mutate), which is
    how the WAL captures before-images and tracks working objects. *)
val fetch_for_write : t -> Page_id.t -> Page_layout.t

(** [resident t id] is whether a [fetch] would be a client-cache hit.
    Charges nothing and does not refresh recency — a host-level probe for
    callers that replay hit charges themselves (the B+-tree bulk build). *)
val resident : t -> Page_id.t -> bool

(** The client-cached working page under the same charge-free, recency-free
    contract as [resident]. *)
val peek : t -> Page_id.t -> Page_layout.t option

(** Push every dirty page down to disk, charging writes. *)
val flush : t -> unit

(** Drop both caches without flushing — dirty working pages are lost.  This
    is what a crash does to the volatile state, and what abort does on
    purpose (the durable images were or will be put right by the log). *)
val drop : t -> unit

(** [flush] then [drop]: cold restart. *)
val clear : t -> unit

(** {2 Logging and fault hooks} *)

(** [set_write_observer t obs] installs the callback run on every
    [fetch_for_write] (the WAL's page-image capture); [None] removes it. *)
val set_write_observer : t -> (Page_id.t -> Page_layout.t -> unit) option -> unit

(** [set_fault t f] installs a fault-injection layer under the stack: every
    page persist ticks its crash countdown, every physical read rolls its
    transient-error dice.  [None] (the default) is the infallible disk. *)
val set_fault : t -> Fault.t option -> unit

val fault : t -> Fault.t option

(** The underlying disk (for file allocation). *)
val disk : t -> Disk.t

val sim : t -> Tb_sim.Sim.t
