(** The two-tier O2 cache architecture: client cache over server cache over
    disk.

    A page touch goes client → (RPC) → server → (I/O) → disk, charging the
    simulated clock at each boundary it crosses; this is how the paper's
    [RPCsnumber], [SC2CCreadpages] and [D2SCreadpages] statistics arise.
    Section 3.2's observation that "the number of IOs depends on the largest
    cache size, independently of its function" is an emergent property of
    this stack.

    Dirty pages written by the client are shipped back on eviction (one RPC)
    and reach the disk when the server in turn evicts them, or at [flush].

    [clear] models the server shutdown the authors perform between runs so
    every query starts cold. *)

type t

val create :
  Tb_sim.Sim.t -> Disk.t -> server_pages:int -> client_pages:int -> t

(** Capacities, in pages. *)
val server_capacity : t -> int

val client_capacity : t -> int

(** [fetch t id] brings the page to the client cache (charging whatever
    boundaries it crosses) and returns it. *)
val fetch : t -> Page_id.t -> Page_layout.t

(** Like [fetch], and marks the page dirty. *)
val fetch_for_write : t -> Page_id.t -> Page_layout.t

(** [resident t id] is whether a [fetch] would be a client-cache hit.
    Charges nothing and does not refresh recency — a host-level probe for
    callers that replay hit charges themselves (the B+-tree bulk build). *)
val resident : t -> Page_id.t -> bool

(** Push every dirty page down to disk, charging writes. *)
val flush : t -> unit

(** [flush] then drop both caches: cold restart. *)
val clear : t -> unit

(** The underlying disk (for file allocation). *)
val disk : t -> Disk.t

val sim : t -> Tb_sim.Sim.t
