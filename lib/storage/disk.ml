(* The durable medium.  Each page is a byte image plus an out-of-band
   descriptor word pair: the LSN of the last persist and a checksum of the
   image as written.  Working [Page_layout.t] objects live only in the
   buffer pools; [load_page] materializes a fresh copy from the image and
   [persist] copies working bytes back.  Keeping the two words outside the
   page bytes preserves the page's record capacity (the golden counter gate
   pins every capacity-derived count); the page_fill slack is what a real
   layout would carve them from. *)

type durable = {
  mutable image : Bytes.t;
  mutable lsn : int;
  mutable checksum : int;
  (* Host-level memo of the last working object whose bytes are known to
     equal [image]: set by [persist] and [load_page], dropped whenever that
     guarantee lapses (per-page on [restore_image]/[persist_torn], wholesale
     via the epoch on [invalidate_cached] — the crash path, where pools
     vanish with dirty objects in them).  Reusing the object keeps its
     version counter, so decoded-node caches stay valid across a clean
     restart exactly as far as the bytes do. *)
  mutable obj : Page_layout.t option;
  mutable obj_epoch : int;
}

type file = {
  name : string;
  mutable pages : durable array;
  mutable n_pages : int;
}

type t = {
  sim : Tb_sim.Sim.t;
  mutable files : file list;
  mutable n_files : int;
  (* Pristine page image and its checksum, computed once: the page size is
     fixed by the cost model, and [append_page] runs on loader hot paths. *)
  mutable empty : (Bytes.t * int) option;
  mutable epoch : int;
}

let create sim = { sim; files = []; n_files = 0; empty = None; epoch = 0 }
let page_size t = t.sim.Tb_sim.Sim.cost.Tb_sim.Cost_model.page_size

(* FNV-1a with the offset basis folded into 62 bits, so the hash stays an
   immediate int on 64-bit OCaml.  Mixes a word at a time — this runs over
   the full page on every persist. *)
let fnv_basis = 0x0bf29ce484222325

let checksum_of bytes =
  let n = Bytes.length bytes in
  let h = ref fnv_basis in
  let words = n lsr 3 in
  for i = 0 to words - 1 do
    h :=
      (!h lxor Int64.to_int (Bytes.get_int64_le bytes (i lsl 3)))
      * 0x100000001b3
  done;
  for i = words lsl 3 to n - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get bytes i)) * 0x100000001b3
  done;
  !h land max_int

let new_file t ~name =
  let id = t.n_files in
  t.files <- t.files @ [ { name; pages = [||]; n_pages = 0 } ];
  t.n_files <- id + 1;
  id

let file_count t = t.n_files

let get_file t id =
  if id < 0 || id >= t.n_files then invalid_arg "Disk: bad file id";
  List.nth t.files id

let file_name t id = (get_file t id).name

let find_file t ~name =
  let rec go i = function
    | [] -> None
    | f :: rest -> if String.equal f.name name then Some i else go (i + 1) rest
  in
  go 0 t.files

let page_count t id = (get_file t id).n_pages

let empty_template t =
  match t.empty with
  | Some e -> e
  | None ->
      let image = Page_layout.snapshot (Page_layout.create ~size:(page_size t)) in
      let e = (image, checksum_of image) in
      t.empty <- Some e;
      e

let fresh_durable t =
  let template, checksum = empty_template t in
  { image = Bytes.copy template; lsn = 0; checksum; obj = None; obj_epoch = 0 }

let durable_of t pid =
  let f = get_file t (Page_id.file pid) in
  let index = Page_id.index pid in
  if index < 0 || index >= f.n_pages then
    invalid_arg "Disk: no such page";
  f.pages.(index)

let append_page t ~file =
  let f = get_file t file in
  if f.n_pages = Array.length f.pages then begin
    let cap = max 8 (2 * Array.length f.pages) in
    let fresh = Array.make cap (fresh_durable t) in
    Array.blit f.pages 0 fresh 0 f.n_pages;
    f.pages <- fresh
  end;
  f.pages.(f.n_pages) <- fresh_durable t;
  f.n_pages <- f.n_pages + 1;
  f.n_pages - 1

let load_page t pid =
  let d = durable_of t pid in
  match d.obj with
  | Some page when d.obj_epoch = t.epoch -> page
  | _ ->
      let page = Page_layout.of_bytes ~lsn:d.lsn d.image in
      d.obj <- Some page;
      d.obj_epoch <- t.epoch;
      page

let persist t pid page =
  let d = durable_of t pid in
  Bytes.blit (Page_layout.buffer page) 0 d.image 0 (Bytes.length d.image);
  d.lsn <- Page_layout.lsn page;
  d.checksum <- checksum_of d.image;
  d.obj <- Some page;
  d.obj_epoch <- t.epoch

(* After a crash the buffer pools evaporate with dirty working objects
   still in them; nothing proves any memoized object matches its image any
   more, so the whole memo generation is retired at once. *)
let invalidate_cached t = t.epoch <- t.epoch + 1

(* A torn write: the crash interrupted the transfer after the first
   half-page (which, in a layout that kept the descriptor words in the page
   header, is the half carrying the new checksum).  The image ends up half
   new, half old, under the checksum of the complete new image — exactly the
   state [verify] exists to flag. *)
let persist_torn t pid page =
  let d = durable_of t pid in
  let half = Bytes.length d.image / 2 in
  let full = Page_layout.buffer page in
  let new_checksum = checksum_of full in
  Bytes.blit full 0 d.image 0 half;
  d.lsn <- Page_layout.lsn page;
  d.obj <- None;
  (* If the surviving old tail equals the new tail, the image IS the new
     page and the checksum matches: the tear is harmless and invisible,
     which is also what a real page checksum would conclude. *)
  d.checksum <- new_checksum

let restore_image t pid image ~lsn =
  let d = durable_of t pid in
  Bytes.blit image 0 d.image 0 (Bytes.length d.image);
  d.lsn <- lsn;
  d.checksum <- checksum_of d.image;
  d.obj <- None

let read_image t pid = Bytes.copy (durable_of t pid).image
let page_lsn t pid = (durable_of t pid).lsn

let verify t =
  let torn = ref [] in
  List.iteri
    (fun file f ->
      for index = f.n_pages - 1 downto 0 do
        let d = f.pages.(index) in
        if checksum_of d.image <> d.checksum then
          torn := Page_id.make ~file ~index :: !torn
      done)
    t.files;
  !torn

let truncate_file t ~file ~pages =
  let f = get_file t file in
  if pages < 0 || pages > f.n_pages then invalid_arg "Disk.truncate_file";
  f.n_pages <- pages

let truncate_files t ~keep =
  if keep < 0 || keep > t.n_files then invalid_arg "Disk.truncate_files";
  t.files <- List.filteri (fun i _ -> i < keep) t.files;
  t.n_files <- keep

let page_counts t = Array.of_list (List.map (fun f -> f.n_pages) t.files)

let total_pages t = List.fold_left (fun acc f -> acc + f.n_pages) 0 t.files
let total_bytes t = total_pages t * page_size t

(* Digest of the durable state: file names, page counts and image bytes.
   LSNs and checksums are excluded — the LSN is advisory and the checksum a
   function of the image — so two states are digest-equal iff a restart
   would materialize identical pages. *)
let durable_digest t =
  let h = ref fnv_basis in
  let mix_byte b = h := (!h lxor b) * 0x100000001b3 in
  let mix_int n =
    for shift = 0 to 7 do
      mix_byte ((n lsr (8 * shift)) land 0xff)
    done
  in
  let mix_bytes s =
    for i = 0 to Bytes.length s - 1 do
      mix_byte (Char.code (Bytes.unsafe_get s i))
    done
  in
  mix_int t.n_files;
  List.iter
    (fun f ->
      String.iter (fun ch -> mix_byte (Char.code ch)) f.name;
      mix_int f.n_pages;
      for index = 0 to f.n_pages - 1 do
        mix_bytes f.pages.(index).image
      done)
    t.files;
  Printf.sprintf "%016x" (!h land max_int)
