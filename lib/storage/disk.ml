type file = {
  name : string;
  mutable pages : Page_layout.t array;
  mutable n_pages : int;
}

type t = { sim : Tb_sim.Sim.t; mutable files : file list; mutable n_files : int }

let create sim = { sim; files = []; n_files = 0 }
let page_size t = t.sim.Tb_sim.Sim.cost.Tb_sim.Cost_model.page_size

let new_file t ~name =
  let id = t.n_files in
  t.files <- t.files @ [ { name; pages = [||]; n_pages = 0 } ];
  t.n_files <- id + 1;
  id

let file_count t = t.n_files

let get_file t id =
  if id < 0 || id >= t.n_files then invalid_arg "Disk: bad file id";
  List.nth t.files id

let file_name t id = (get_file t id).name

let find_file t ~name =
  let rec go i = function
    | [] -> None
    | f :: rest -> if String.equal f.name name then Some i else go (i + 1) rest
  in
  go 0 t.files

let page_count t id = (get_file t id).n_pages

let page t pid =
  let f = get_file t (Page_id.file pid) in
  let index = Page_id.index pid in
  if index < 0 || index >= f.n_pages then invalid_arg "Disk.page: no such page";
  f.pages.(index)

let append_page t ~file =
  let f = get_file t file in
  if f.n_pages = Array.length f.pages then begin
    let cap = max 8 (2 * Array.length f.pages) in
    let fresh = Array.make cap (Page_layout.create ~size:(page_size t)) in
    Array.blit f.pages 0 fresh 0 f.n_pages;
    f.pages <- fresh
  end;
  f.pages.(f.n_pages) <- Page_layout.create ~size:(page_size t);
  f.n_pages <- f.n_pages + 1;
  f.n_pages - 1

let total_pages t = List.fold_left (fun acc f -> acc + f.n_pages) 0 t.files
let total_bytes t = total_pages t * page_size t
