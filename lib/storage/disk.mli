(** The simulated disk: a set of files, each an extendable array of durable
    page images.

    The disk is the authoritative store.  Each page carries, out of band, the
    LSN of the write that produced it and a checksum of the image as written
    (a real layout would carve the two words from the page_fill slack; we
    keep them outside the page bytes so record capacities — and with them
    every golden-gated simulated count — are unchanged).  Working
    {!Page_layout.t} objects live only in the buffer pools: {!load_page}
    materializes a fresh copy, {!persist} writes one back.

    The disk charges nothing by itself — I/O costs are charged by the buffer
    layer ({!Cache_stack}) when pages actually cross the disk/server-cache
    boundary, mirroring how the paper counts [D2SCreadpages]. *)

type t

val create : Tb_sim.Sim.t -> t

(** Page size in bytes (from the cost model; 4K in the paper). *)
val page_size : t -> int

(** [new_file t ~name] allocates an empty file and returns its id. *)
val new_file : t -> name:string -> int

val file_count : t -> int
val file_name : t -> int -> string

(** [find_file t ~name] is the id of the file named [name], if any. *)
val find_file : t -> name:string -> int option

(** Number of pages currently allocated to a file. *)
val page_count : t -> int -> int

(** [append_page t ~file] allocates a fresh (empty, checksummed) page at the
    end of [file] and returns its index.  File allocation metadata is
    durable immediately, like a file system with synchronous metadata;
    recovery reclaims a loser's allocations by truncating back to the
    checkpointed counts. *)
val append_page : t -> file:int -> int

(** [load_page t pid] is a working copy of the durable image.  Raises
    [Invalid_argument] if the page does not exist.  As a host-level
    optimisation the disk memoizes the last working object per page and
    hands it back while its bytes are provably identical to the image
    (set by {!persist} and [load_page] itself, voided by
    {!invalidate_cached}, {!restore_image} and {!persist_torn}), so
    decode caches keyed on the object's version survive a clean
    restart. *)
val load_page : t -> Page_id.t -> Page_layout.t

(** Retire every memoized working object at once — called when the buffer
    pools are dropped without a flush (crash, abort), after which dirty
    objects no longer match their images. *)
val invalidate_cached : t -> unit

(** [persist t pid page] makes the working bytes durable and refreshes the
    page's LSN and checksum. *)
val persist : t -> Page_id.t -> Page_layout.t -> unit

(** [persist_torn t pid page] models a write interrupted by a crash: only
    the first half-page (the half that would carry the checksum word)
    reaches the medium, leaving an image whose checksum does not match —
    unless the tear happened to change nothing. *)
val persist_torn : t -> Page_id.t -> Page_layout.t -> unit

(** [restore_image t pid image ~lsn] overwrites the durable image from a
    log image (recovery's redo/undo primitive). *)
val restore_image : t -> Page_id.t -> Bytes.t -> lsn:int -> unit

(** A copy of the durable image (recovery and tests). *)
val read_image : t -> Page_id.t -> Bytes.t

(** LSN of the last persist of that page. *)
val page_lsn : t -> Page_id.t -> int

(** [verify t] recomputes every page checksum and returns the mismatching
    (torn) pages. *)
val verify : t -> Page_id.t list

(** [truncate_file t ~file ~pages] drops pages beyond [pages] (recovery of a
    loser's appends). *)
val truncate_file : t -> file:int -> pages:int -> unit

(** [truncate_files t ~keep] drops files with id >= [keep] (recovery of a
    loser's file creations; ids are allocation-ordered). *)
val truncate_files : t -> keep:int -> unit

(** Per-file page counts, indexed by file id (checkpoint capture). *)
val page_counts : t -> int array

(** Total pages across all files (the "buy big!" arithmetic of §3.1). *)
val total_pages : t -> int

(** Total bytes of allocated pages. *)
val total_bytes : t -> int

(** Hex digest of the durable state (file names, page counts, image bytes;
    LSNs and checksums excluded).  Equal digests mean a restart would
    materialize identical databases — the recovery oracle. *)
val durable_digest : t -> string
