exception Crash
exception Shard_down of int

type write_outcome = Ok | Crash_lost | Crash_torn
type boundary_outcome = B_ok | B_partitioned of int

type t = {
  rng : Tb_sim.Rng.t;
  shard : int;
  mutable writes_until_crash : int; (* < 0: disarmed *)
  mutable torn : bool;
  mutable read_fail_permille : int;
  mutable max_read_retries : int;
  mutable rpc_fail_permille : int;
  mutable max_rpc_retries : int;
  mutable boundaries_until_crash : int; (* < 0: disarmed *)
  mutable partition_at_boundary : int; (* < 0: disarmed *)
  mutable partition_rounds : int;
  mutable writes_seen : int;
  mutable reads_seen : int;
  mutable boundaries_seen : int;
  mutable crashed : bool;
  mutable down : bool;
}

let make ~seed ~shard =
  {
    rng = Tb_sim.Rng.create seed;
    shard;
    writes_until_crash = -1;
    torn = false;
    read_fail_permille = 0;
    max_read_retries = 0;
    rpc_fail_permille = 0;
    max_rpc_retries = 0;
    boundaries_until_crash = -1;
    partition_at_boundary = -1;
    partition_rounds = 0;
    writes_seen = 0;
    reads_seen = 0;
    boundaries_seen = 0;
    crashed = false;
    down = false;
  }

let create ~seed = make ~seed ~shard:0

let schedule_crash t ~at_write ~torn =
  if at_write <= 0 then invalid_arg "Fault.schedule_crash: at_write";
  t.writes_until_crash <- at_write;
  t.torn <- torn;
  t.crashed <- false

let set_read_faults t ~permille ~max_retries =
  if permille < 0 || permille > 1000 then
    invalid_arg "Fault.set_read_faults: permille";
  if max_retries < 0 then invalid_arg "Fault.set_read_faults: max_retries";
  t.read_fail_permille <- permille;
  t.max_read_retries <- max_retries

let set_rpc_faults t ~permille ~max_retries =
  if permille < 0 || permille > 1000 then
    invalid_arg "Fault.set_rpc_faults: permille";
  if max_retries < 0 then invalid_arg "Fault.set_rpc_faults: max_retries";
  t.rpc_fail_permille <- permille;
  t.max_rpc_retries <- max_retries

let schedule_shard_crash t ~at_boundary =
  if at_boundary <= 0 then invalid_arg "Fault.schedule_shard_crash: at_boundary";
  t.boundaries_until_crash <- at_boundary;
  t.down <- false

let schedule_partition t ~at_boundary ~rounds =
  if at_boundary <= 0 then invalid_arg "Fault.schedule_partition: at_boundary";
  if rounds <= 0 then invalid_arg "Fault.schedule_partition: rounds";
  t.partition_at_boundary <- at_boundary;
  t.partition_rounds <- rounds

(* Every write that would reach the durable medium — data-page persists and
   WAL log-page writes alike — ticks the same countdown, so a crash point is
   one global write ordinal, reproducible across runs. *)
let on_write t =
  t.writes_seen <- t.writes_seen + 1;
  if t.writes_until_crash < 0 then Ok
  else begin
    t.writes_until_crash <- t.writes_until_crash - 1;
    if t.writes_until_crash > 0 then Ok
    else begin
      t.writes_until_crash <- -1;
      t.crashed <- true;
      if t.torn then Crash_torn else Crash_lost
    end
  end

let read_fails t =
  t.reads_seen <- t.reads_seen + 1;
  t.read_fail_permille > 0
  && Tb_sim.Rng.int t.rng 1000 < t.read_fail_permille

(* Every exchange boundary the shard's lane reaches ticks the same ordinal
   counter, so a shard-kill point is one global boundary ordinal — the
   sharded twin of the write-ordinal crash sweep above.  A crash takes the
   shard down for good (until [revive]); a partition merely delays it. *)
let on_boundary t =
  if t.down then raise (Shard_down t.shard);
  t.boundaries_seen <- t.boundaries_seen + 1;
  if t.boundaries_until_crash >= 0 then begin
    t.boundaries_until_crash <- t.boundaries_until_crash - 1;
    if t.boundaries_until_crash <= 0 then begin
      t.boundaries_until_crash <- -1;
      t.down <- true;
      raise (Shard_down t.shard)
    end
  end;
  if t.partition_at_boundary >= 0 then begin
    t.partition_at_boundary <- t.partition_at_boundary - 1;
    if t.partition_at_boundary <= 0 then begin
      t.partition_at_boundary <- -1;
      B_partitioned t.partition_rounds
    end
    else B_ok
  end
  else B_ok

let rpc_fails t =
  t.rpc_fail_permille > 0
  && Tb_sim.Rng.int t.rng 1000 < t.rpc_fail_permille

(* One seeded draw — a multiplier in [0.5, 1.5) applied to whatever backoff
   base the caller computed.  Never wall clock. *)
let backoff_jitter t = 0.5 +. Tb_sim.Rng.float t.rng 1.0

let revive t =
  t.down <- false;
  t.boundaries_until_crash <- -1;
  t.partition_at_boundary <- -1;
  t.boundaries_seen <- 0

let max_read_retries t = t.max_read_retries
let max_rpc_retries t = t.max_rpc_retries
let writes_seen t = t.writes_seen
let reads_seen t = t.reads_seen
let boundaries_seen t = t.boundaries_seen
let crashed t = t.crashed
let down t = t.down
let shard t = t.shard

(* --- shard-addressable registry --- *)

type registry = { faults : t array }

let registry ~seed ~shards =
  if shards <= 0 then invalid_arg "Fault.registry: shards";
  (* Derive per-shard seeds from one master seed through a dedicated Rng so
     schedules are independent yet fully determined by [seed]. *)
  let master = Tb_sim.Rng.create seed in
  {
    faults =
      Array.init shards (fun shard ->
          make ~seed:(Tb_sim.Rng.int master 0x3FFF_FFFF) ~shard);
  }

let shard_fault r s =
  if s < 0 || s >= Array.length r.faults then invalid_arg "Fault.shard_fault";
  r.faults.(s)

let registry_size r = Array.length r.faults
let iter_registry r f = Array.iter f r.faults
