exception Crash

type write_outcome = Ok | Crash_lost | Crash_torn

type t = {
  rng : Tb_sim.Rng.t;
  mutable writes_until_crash : int; (* < 0: disarmed *)
  mutable torn : bool;
  mutable read_fail_permille : int;
  mutable max_read_retries : int;
  mutable writes_seen : int;
  mutable reads_seen : int;
  mutable crashed : bool;
}

let create ~seed =
  {
    rng = Tb_sim.Rng.create seed;
    writes_until_crash = -1;
    torn = false;
    read_fail_permille = 0;
    max_read_retries = 0;
    writes_seen = 0;
    reads_seen = 0;
    crashed = false;
  }

let schedule_crash t ~at_write ~torn =
  if at_write <= 0 then invalid_arg "Fault.schedule_crash: at_write";
  t.writes_until_crash <- at_write;
  t.torn <- torn;
  t.crashed <- false

let set_read_faults t ~permille ~max_retries =
  if permille < 0 || permille > 1000 then
    invalid_arg "Fault.set_read_faults: permille";
  if max_retries < 0 then invalid_arg "Fault.set_read_faults: max_retries";
  t.read_fail_permille <- permille;
  t.max_read_retries <- max_retries

(* Every write that would reach the durable medium — data-page persists and
   WAL log-page writes alike — ticks the same countdown, so a crash point is
   one global write ordinal, reproducible across runs. *)
let on_write t =
  t.writes_seen <- t.writes_seen + 1;
  if t.writes_until_crash < 0 then Ok
  else begin
    t.writes_until_crash <- t.writes_until_crash - 1;
    if t.writes_until_crash > 0 then Ok
    else begin
      t.writes_until_crash <- -1;
      t.crashed <- true;
      if t.torn then Crash_torn else Crash_lost
    end
  end

let read_fails t =
  t.reads_seen <- t.reads_seen + 1;
  t.read_fail_permille > 0
  && Tb_sim.Rng.int t.rng 1000 < t.read_fail_permille

let max_read_retries t = t.max_read_retries
let writes_seen t = t.writes_seen
let reads_seen t = t.reads_seen
let crashed t = t.crashed
