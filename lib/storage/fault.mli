(** Deterministic disk-fault injection.

    A [Fault.t] sits under the cache stack and the WAL and decides, for each
    write that would reach the durable medium, whether the machine survives
    it.  Everything is driven by its own {!Tb_sim.Rng} and explicit
    schedules, so a failing run replays exactly from its seed — the point of
    the exercise is a crash sweep the test suite can enumerate.

    Three fault classes:
    - {e scheduled crashes}: the [N]th write from now kills the machine.
      The write itself is lost ([Crash_lost]) or half-applied
      ([Crash_torn]: the first half of the page, including the checksum
      word, reaches the platter; the tail does not — the classic torn
      write a page checksum exists to catch);
    - {e torn writes} only arise from a scheduled crash: a lone torn write
      without a crash would be caught by the drive's own write-back;
    - {e transient read errors}: each physical page read fails with a fixed
      probability and is retried after a backoff charged to the simulated
      clock ({!Tb_sim.Sim.charge_read_retry}), up to [max_retries] times
      before the read succeeds (the fault is transient by definition). *)

exception Crash
(** Raised by the storage layer at the scheduled crash point, after the
    fault's write outcome has been applied to the durable state. *)

type write_outcome =
  | Ok          (** the write completes *)
  | Crash_lost  (** machine dies; the write never reached the medium *)
  | Crash_torn  (** machine dies; only the first half-page reached it *)

type t

(** [create ~seed] is a quiescent fault layer (no crash scheduled, no read
    errors) with its own deterministic PRNG. *)
val create : seed:int -> t

(** [schedule_crash t ~at_write ~torn] arms the countdown: the [at_write]th
    subsequent durable write (1-based) crashes the machine, torn or clean.
    Re-arming replaces any previous schedule. *)
val schedule_crash : t -> at_write:int -> torn:bool -> unit

(** [set_read_faults t ~permille ~max_retries] makes each physical read fail
    with probability [permille]/1000, retried at most [max_retries] times
    before succeeding regardless. *)
val set_read_faults : t -> permille:int -> max_retries:int -> unit

(** Tick the write countdown.  The caller applies the outcome (persist,
    half-persist, or nothing) and raises {!Crash} on either crash result. *)
val on_write : t -> write_outcome

(** One PRNG draw against the read-error probability. *)
val read_fails : t -> bool

val max_read_retries : t -> int

(** Writes / reads that have passed through this layer (diagnostics). *)
val writes_seen : t -> int

val reads_seen : t -> int

(** Whether the scheduled crash has fired. *)
val crashed : t -> bool
