(** Deterministic disk-fault injection.

    A [Fault.t] sits under the cache stack and the WAL and decides, for each
    write that would reach the durable medium, whether the machine survives
    it.  Everything is driven by its own {!Tb_sim.Rng} and explicit
    schedules, so a failing run replays exactly from its seed — the point of
    the exercise is a crash sweep the test suite can enumerate.

    Three fault classes:
    - {e scheduled crashes}: the [N]th write from now kills the machine.
      The write itself is lost ([Crash_lost]) or half-applied
      ([Crash_torn]: the first half of the page, including the checksum
      word, reaches the platter; the tail does not — the classic torn
      write a page checksum exists to catch);
    - {e torn writes} only arise from a scheduled crash: a lone torn write
      without a crash would be caught by the drive's own write-back;
    - {e transient read errors}: each physical page read fails with a fixed
      probability and is retried after a backoff charged to the simulated
      clock ({!Tb_sim.Sim.charge_read_retry}), up to [max_retries] times
      before the read succeeds (the fault is transient by definition).

    Since PR 8 a [Fault.t] also carries the {e shard-scoped} fault classes
    used by the sharded executor — whole-shard crashes and partitions keyed
    to exchange-boundary ordinals, and transient RPC loss — plus a
    {!registry} that gives every shard its own independently-seeded
    schedule.  The single-node API is unchanged. *)

exception Crash
(** Raised by the storage layer at the scheduled crash point, after the
    fault's write outcome has been applied to the durable state. *)

exception Shard_down of int
(** Raised at an exchange boundary when the shard's scheduled crash fires
    (or when the shard is already down).  Only [Fault], [Exchange] and
    [Exec] may raise or catch this (treelint rule R6): the executor turns
    it into a replica failover, everything else must stay oblivious. *)

type write_outcome =
  | Ok          (** the write completes *)
  | Crash_lost  (** machine dies; the write never reached the medium *)
  | Crash_torn  (** machine dies; only the first half-page reached it *)

type boundary_outcome =
  | B_ok                  (** the boundary passes cleanly *)
  | B_partitioned of int  (** unreachable for that many timeout rounds *)

type t

(** [create ~seed] is a quiescent fault layer (no crash scheduled, no read
    errors) with its own deterministic PRNG. *)
val create : seed:int -> t

(** [schedule_crash t ~at_write ~torn] arms the countdown: the [at_write]th
    subsequent durable write (1-based) crashes the machine, torn or clean.
    Re-arming replaces any previous schedule. *)
val schedule_crash : t -> at_write:int -> torn:bool -> unit

(** [set_read_faults t ~permille ~max_retries] makes each physical read fail
    with probability [permille]/1000, retried at most [max_retries] times
    before succeeding regardless. *)
val set_read_faults : t -> permille:int -> max_retries:int -> unit

(** [set_rpc_faults t ~permille ~max_retries] makes each shard RPC time out
    with probability [permille]/1000, re-issued at most [max_retries] times
    before going through regardless (the loss is transient by definition). *)
val set_rpc_faults : t -> permille:int -> max_retries:int -> unit

(** [schedule_shard_crash t ~at_boundary] arms the shard-kill countdown: the
    [at_boundary]th subsequent exchange boundary (1-based) takes the whole
    shard down — {!on_boundary} raises {!Shard_down} there and at every
    later boundary until {!revive}. *)
val schedule_shard_crash : t -> at_boundary:int -> unit

(** [schedule_partition t ~at_boundary ~rounds] makes the shard unreachable
    at the given boundary for [rounds] timeout windows; unlike a crash it
    heals by itself and the boundary then passes. *)
val schedule_partition : t -> at_boundary:int -> rounds:int -> unit

(** Tick the write countdown.  The caller applies the outcome (persist,
    half-persist, or nothing) and raises {!Crash} on either crash result. *)
val on_write : t -> write_outcome

(** One PRNG draw against the read-error probability. *)
val read_fails : t -> bool

(** Tick the exchange-boundary ordinal.  Raises {!Shard_down} if the
    scheduled shard crash fires here (or already did); otherwise reports
    whether a partition delays this boundary.  A quiescent fault layer
    neither draws from the Rng nor charges anything — the fault-free path
    stays bit-identical. *)
val on_boundary : t -> boundary_outcome

(** One PRNG draw against the RPC-loss probability. *)
val rpc_fails : t -> bool

(** One PRNG draw — a backoff multiplier in [0.5, 1.5) applied to whatever
    base the caller computed.  The only randomness in retry timing, and it
    comes from the seeded Rng, never wall clock. *)
val backoff_jitter : t -> float

(** Bring a downed shard back and disarm its boundary schedules (the chaos
    harness reuses one build across kill points).  Also resets the boundary
    ordinal so a re-armed schedule counts from the next query's start. *)
val revive : t -> unit

val max_read_retries : t -> int
val max_rpc_retries : t -> int

(** Writes / reads / exchange boundaries that have passed through this layer
    (diagnostics; boundary ordinals also parameterize the chaos sweep). *)
val writes_seen : t -> int

val reads_seen : t -> int
val boundaries_seen : t -> int

(** Whether the scheduled crash has fired. *)
val crashed : t -> bool

(** Whether the shard is currently down (crash fired, not yet revived). *)
val down : t -> bool

(** The shard id this layer is scoped to (0 for a single-node layer). *)
val shard : t -> int

(** {2 Shard-addressable registry}

    One [Fault.t] per shard, each with its own Rng seeded deterministically
    from a single master seed — the composable replacement for PR 3's
    one-global-schedule shape. *)

type registry

(** [registry ~seed ~shards] derives [shards] independent fault layers from
    one master seed. *)
val registry : seed:int -> shards:int -> registry

(** The fault layer scoped to shard [s]. *)
val shard_fault : registry -> int -> t

val registry_size : registry -> int
val iter_registry : registry -> (t -> unit) -> unit
