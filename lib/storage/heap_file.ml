(* On-page record framing: one tag byte then the payload.
   tag 0 = ordinary record: body follows;
   tag 1 = forwarding stub: 8-byte target Rid follows;
   tag 2 = relocated body: 8-byte home Rid, then the body.
   A record relocated by a growing update is thus visible both at its home
   slot (as a stub) and at its new location (as a relocated body that still
   knows its home Rid), so scans can present it under its physical
   identifier of record. Chains never exceed one hop. *)

let tag_normal = '\000'
let tag_forward = '\001'
let tag_relocated = '\002'

type t = {
  stack : Cache_stack.t;
  file : int;
  mutable tail : int; (* page currently receiving inserts; -1 when empty *)
}

let create stack ~name =
  let file = Disk.new_file (Cache_stack.disk stack) ~name in
  { stack; file; tail = -1 }

let create_temp stack =
  let name =
    Printf.sprintf "__temp_%d" (Disk.file_count (Cache_stack.disk stack))
  in
  create stack ~name

let of_file stack ~file =
  { stack; file; tail = Disk.page_count (Cache_stack.disk stack) file - 1 }

let file_id t = t.file
let page_count t = Disk.page_count (Cache_stack.disk t.stack) t.file
let cache t = t.stack
let tail t = t.tail

let set_tail t tail =
  if tail < -1 then invalid_arg "Heap_file.set_tail";
  t.tail <- tail

let fill_limit t =
  let cost = (Cache_stack.sim t.stack).Tb_sim.Sim.cost in
  int_of_float
    (float_of_int cost.Tb_sim.Cost_model.page_size
    *. cost.Tb_sim.Cost_model.page_fill)

let frame_normal body =
  let b = Bytes.create (1 + Bytes.length body) in
  Bytes.set b 0 tag_normal;
  Bytes.blit body 0 b 1 (Bytes.length body);
  b

let frame_stub target =
  let b = Bytes.create (1 + Rid.on_disk_bytes) in
  Bytes.set b 0 tag_forward;
  Bytes.blit (Rid.encode target) 0 b 1 Rid.on_disk_bytes;
  b

let frame_relocated ~home body =
  let b = Bytes.create (1 + Rid.on_disk_bytes + Bytes.length body) in
  Bytes.set b 0 tag_relocated;
  Bytes.blit (Rid.encode home) 0 b 1 Rid.on_disk_bytes;
  Bytes.blit body 0 b (1 + Rid.on_disk_bytes) (Bytes.length body);
  b

let body_of framed =
  match Bytes.get framed 0 with
  | c when c = tag_normal -> Bytes.sub framed 1 (Bytes.length framed - 1)
  | c when c = tag_relocated ->
      let skip = 1 + Rid.on_disk_bytes in
      Bytes.sub framed skip (Bytes.length framed - skip)
  | _ -> invalid_arg "Heap_file: not a body record"

let fresh_page t =
  let index = Disk.append_page (Cache_stack.disk t.stack) ~file:t.file in
  t.tail <- index;
  let pid = Page_id.make ~file:t.file ~index in
  (index, Cache_stack.fetch_for_write t.stack pid)

(* Insert a framed record, preferring the tail page below the fill target. *)
let insert_framed t framed =
  let len = Bytes.length framed in
  let try_page index =
    let pid = Page_id.make ~file:t.file ~index in
    let page = Cache_stack.fetch_for_write t.stack pid in
    let used =
      Page_layout.live_bytes page + (4 * Page_layout.slot_count page)
    in
    if used + len + 4 <= fill_limit t then Page_layout.insert page framed
    else None
  in
  let index, slot =
    match if t.tail >= 0 then try_page t.tail else None with
    | Some slot -> (t.tail, slot)
    | None ->
        let index, page = fresh_page t in
        let slot =
          match Page_layout.insert page framed with
          | Some s -> s
          | None -> failwith "Heap_file.insert: record larger than a page"
        in
        (index, slot)
  in
  Rid.make ~file:t.file ~page:index ~slot

let insert t body = insert_framed t (frame_normal body)

let fetch_slot t (rid : Rid.t) =
  let pid = Page_id.make ~file:rid.Rid.file ~index:rid.Rid.page in
  let page = Cache_stack.fetch t.stack pid in
  (page, Page_layout.read page rid.Rid.slot)

let read t rid =
  let _, framed = fetch_slot t rid in
  if Bytes.get framed 0 = tag_forward then
    let target = Rid.decode framed ~pos:1 in
    let _, framed' = fetch_slot t target in
    body_of framed'
  else body_of framed

(* Zero-copy read path: resolve a Rid to the page object holding its body
   plus the body's span inside that page's buffer, following at most one
   forwarding hop.  The charge sequence (one fetch per page touched) is
   identical to [read]; the difference is purely host-side — no Bytes.sub.
   Returns [(page, slot, pos, len)] where [slot] is the physical slot on
   [page] whose record contains the body (it differs from [rid.slot] when
   the record was relocated), so callers can re-derive the span after the
   page compacts under them. *)
let locate t (rid : Rid.t) =
  let pid = Page_id.make ~file:rid.Rid.file ~index:rid.Rid.page in
  let page = Cache_stack.fetch t.stack pid in
  let off, len = Page_layout.record_span page rid.Rid.slot in
  let buf = Page_layout.buffer page in
  match Bytes.get buf off with
  | c when c = tag_normal -> (page, rid.Rid.slot, off + 1, len - 1)
  | c when c = tag_forward ->
      let target = Rid.decode buf ~pos:(off + 1) in
      let tpid = Page_id.make ~file:target.Rid.file ~index:target.Rid.page in
      let tpage = Cache_stack.fetch t.stack tpid in
      let toff, tlen = Page_layout.record_span tpage target.Rid.slot in
      if Bytes.get (Page_layout.buffer tpage) toff <> tag_relocated then
        invalid_arg "Heap_file.locate: stub does not point at a relocated body";
      let hop = 1 + Rid.on_disk_bytes in
      (tpage, target.Rid.slot, toff + hop, tlen - hop)
  | c when c = tag_relocated ->
      let hop = 1 + Rid.on_disk_bytes in
      (page, rid.Rid.slot, off + hop, len - hop)
  | _ -> invalid_arg "Heap_file.locate: bad record tag"

(* The page stays pinned (a live OCaml reference) for the duration of [f];
   [f] must not mutate the page or trigger record movement on it. *)
let with_record_bytes t rid ~f =
  let page, _, pos, len = locate t rid in
  f (Page_layout.buffer page) ~pos ~len

let write_for t (rid : Rid.t) =
  let pid = Page_id.make ~file:rid.Rid.file ~index:rid.Rid.page in
  Cache_stack.fetch_for_write t.stack pid

(* Relocate [body] elsewhere and point [home]'s slot at it. *)
let relocate t ~(home : Rid.t) body =
  let fresh = insert_framed t (frame_relocated ~home body) in
  let page = write_for t home in
  if not (Page_layout.update page home.Rid.slot (frame_stub fresh)) then
    failwith "Heap_file: cannot write forwarding stub"

let update t (rid : Rid.t) body =
  let page = write_for t rid in
  let framed_old = Page_layout.read page rid.Rid.slot in
  match Bytes.get framed_old 0 with
  | c when c = tag_normal ->
      if not (Page_layout.update page rid.Rid.slot (frame_normal body)) then
        relocate t ~home:rid body
  | c when c = tag_forward ->
      let target = Rid.decode framed_old ~pos:1 in
      let tpage = write_for t target in
      let framed = frame_relocated ~home:rid body in
      if not (Page_layout.update tpage target.Rid.slot framed) then begin
        Page_layout.delete tpage target.Rid.slot;
        relocate t ~home:rid body
      end
  | _ -> invalid_arg "Heap_file.update: rid addresses a relocated body"

let delete t (rid : Rid.t) =
  let page = write_for t rid in
  let framed = Page_layout.read page rid.Rid.slot in
  if Bytes.get framed 0 = tag_forward then begin
    let target = Rid.decode framed ~pos:1 in
    let tpage = write_for t target in
    Page_layout.delete tpage target.Rid.slot
  end;
  Page_layout.delete page rid.Rid.slot

let iter_page_records t ~page:index f =
  let pid = Page_id.make ~file:t.file ~index in
  let page = Cache_stack.fetch t.stack pid in
  Page_layout.iter page (fun slot framed ->
      match Bytes.get framed 0 with
      | c when c = tag_normal ->
          f (Rid.make ~file:t.file ~page:index ~slot) (body_of framed)
      | c when c = tag_relocated -> f (Rid.decode framed ~pos:1) (body_of framed)
      | _ -> () (* stubs: their body is visited at its new location *))

(* Zero-copy page walk: [f rid buf pos len] sees each live body in place
   (same visiting order and Rid presentation as [iter_page_records]). *)
let iter_page_spans t ~page:index f =
  let pid = Page_id.make ~file:t.file ~index in
  let page = Cache_stack.fetch t.stack pid in
  let buf = Page_layout.buffer page in
  Page_layout.iter_spans page (fun slot off len ->
      match Bytes.get buf off with
      | c when c = tag_normal ->
          f (Rid.make ~file:t.file ~page:index ~slot) buf (off + 1) (len - 1)
      | c when c = tag_relocated ->
          let hop = 1 + Rid.on_disk_bytes in
          f (Rid.decode buf ~pos:(off + 1)) buf (off + hop) (len - hop)
      | _ -> ())

let scan t f =
  for index = 0 to page_count t - 1 do
    iter_page_records t ~page:index f
  done

let record_count t =
  let n = ref 0 in
  scan t (fun _ _ -> incr n);
  !n
