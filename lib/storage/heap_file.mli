(** Heap files: variable-length records addressed by {!Rid}.

    A heap file appends records to its tail page up to the fill target (O2
    "always leaves some extra space to deal with growing strings or
    collections" — Section 2), so insertion order is physical order.  That
    single property is what the three clustering strategies of Figure 2
    exploit: the loader controls placement purely by choosing the order in
    which it creates objects.

    Records that outgrow their page on update are relocated and a forwarding
    stub is left at the original Rid, preserving physical identifiers at the
    cost of an extra hop — the price of updates "resulting in size increase"
    the paper warns about in Section 5.2. *)

type t

(** [create stack ~name] allocates a fresh file on [stack]'s disk. *)
val create : Cache_stack.t -> name:string -> t

(** [create_temp stack] allocates a scratch file (spill partitions and the
    like) whose name derives from the disk's current file count, so no
    caller-side counter — and no process-global state — is needed. *)
val create_temp : Cache_stack.t -> t

(** [of_file stack ~file] wraps an existing disk file id. *)
val of_file : Cache_stack.t -> file:int -> t

val file_id : t -> int
val page_count : t -> int

(** Live records (excluding forwarding stubs). *)
val record_count : t -> int

(** [insert t body] appends a record, returns its Rid. *)
val insert : t -> bytes -> Rid.t

(** [read t rid] fetches the record body, following at most one forwarding
    hop. Raises [Not_found] on a dead Rid. *)
val read : t -> Rid.t -> bytes

(** [locate t rid] resolves [rid] to [(page, slot, pos, len)]: the page
    object holding the record's body, the physical slot on that page (it
    differs from [rid.slot] for relocated bodies), and the body's span in
    the page buffer — following at most one forwarding hop.  Charges are
    identical to {!read} (one cache fetch per page touched); no copy is
    made.  The span is valid until the page next compacts; use [slot] with
    {!Page_layout.record_span} to re-derive it. Raises [Not_found] on a
    dead Rid. *)
val locate : t -> Rid.t -> Page_layout.t * int * int * int

(** [with_record_bytes t rid ~f] runs [f buf ~pos ~len] on the record's
    body in place, with the page pinned for the duration of [f].  [f] must
    not mutate the buffer or move records on the page. *)
val with_record_bytes :
  t -> Rid.t -> f:(bytes -> pos:int -> len:int -> 'a) -> 'a

(** [update t rid body] rewrites the record; relocates and leaves a
    forwarding stub when the body no longer fits near its page. *)
val update : t -> Rid.t -> bytes -> unit

(** [delete t rid] removes the record (and its relocated body if any). *)
val delete : t -> Rid.t -> unit

(** [scan t f] visits every live record in physical order — the sequential
    access path. Forwarded bodies are visited at their *original* Rid. *)
val scan : t -> (Rid.t -> bytes -> unit) -> unit

(** [iter_page_records t ~page f] visits the live records of one page. *)
val iter_page_records : t -> page:int -> (Rid.t -> bytes -> unit) -> unit

(** [iter_page_spans t ~page f] visits the live records of one page without
    copying: [f rid buf pos len] sees each body in place in the page
    buffer.  Same visiting order and Rid presentation as
    {!iter_page_records}; [f] must not mutate the buffer. *)
val iter_page_spans :
  t -> page:int -> (Rid.t -> bytes -> int -> int -> unit) -> unit

val cache : t -> Cache_stack.t

(** {2 Checkpoint support}

    The tail (the page index currently receiving inserts; [-1] when empty)
    is the only volatile state a heap file carries; recovery snapshots and
    restores it alongside the catalog. *)

val tail : t -> int
val set_tail : t -> int -> unit
