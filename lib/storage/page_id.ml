(* A page identity packed into one immediate int: file id in the high bits,
   page index in the low 40.  Keys hash and compare without boxing — the
   buffer pool used to hash a freshly allocated (file, index) tuple on every
   page touch, which showed up in the --micro profiles. *)

type t = int

let index_bits = 40
let index_mask = (1 lsl index_bits) - 1

let make ~file ~index =
  if file < 0 || index < 0 || index > index_mask then
    invalid_arg "Page_id.make";
  (file lsl index_bits) lor index

let file t = t lsr index_bits
let index t = t land index_mask
let compare = Int.compare
let equal : t -> t -> bool = Int.equal
(* The packed int is non-negative by construction, so it is its own
   deterministic hash — no need for Hashtbl.hash's version-specific mix. *)
let hash (t : t) = t
let pp ppf t = Format.fprintf ppf "%d/%d" (file t) (index t)
