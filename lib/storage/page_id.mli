(** Identity of one page: which file, which page index within it.

    Packed into a single immediate int (file in the high bits, index in the
    low 40), so ids live in registers, compare with one instruction and
    never allocate. *)

type t = private int

val make : file:int -> index:int -> t
val file : t -> int
val index : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
