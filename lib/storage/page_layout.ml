(* Layout of a page of [size] bytes:
     bytes 0..1   n_slots (u16)
     bytes 2..3   free_off (u16): first byte of the contiguous free region
     bytes 4..    record bodies, growing upward
     ...
     bytes size-4*n_slots .. size-1   slot directory, growing downward.
   Directory entry for slot i, at [size - 4*(i+1)]: offset u16, length u16.
   offset = 0 marks a dead slot (live offsets are always >= header_size). *)

type t = {
  buf : Bytes.t;
  size : int;
  mutable dirty : bool;
  mutable version : int;
  mutable lsn : int;
}

(* Versions are drawn from one monotonic counter shared by every page
   object, so a version can never repeat across objects: a working copy
   materialized from a durable image after a crash or cold restart can never
   alias a stale decoded view of the object it replaced. *)
let version_counter = ref 0

let next_version () =
  incr version_counter;
  !version_counter

let header_size = 4
let dir_entry = 4

let create ~size =
  if size < 64 || size > 65528 then invalid_arg "Page_layout.create: size";
  let buf = Bytes.make size '\000' in
  Bytes.set_uint16_le buf 2 header_size;
  { buf; size; dirty = false; version = next_version (); lsn = 0 }

(* A working copy of a durable page image.  The LSN and checksum live in the
   disk's per-page descriptor, not in the page bytes: growing the header
   would change every capacity-derived simulated count, and the page_fill
   slack already reserves more space than the two words need. *)
let of_bytes ?(lsn = 0) image =
  {
    buf = Bytes.copy image;
    size = Bytes.length image;
    dirty = false;
    version = next_version ();
    lsn;
  }

(* Full-page physical image, the WAL's before/after unit. *)
let snapshot t = Bytes.copy t.buf

let size t = t.size
let dirty t = t.dirty
let set_dirty t d = t.dirty <- d
let version t = t.version
let lsn t = t.lsn
let set_lsn t l = t.lsn <- l
let slot_count t = Bytes.get_uint16_le t.buf 0
let free_off t = Bytes.get_uint16_le t.buf 2
let set_slot_count t n = Bytes.set_uint16_le t.buf 0 n
let set_free_off t off = Bytes.set_uint16_le t.buf 2 off
let dir_pos t slot = t.size - (dir_entry * (slot + 1))
let slot_offset t slot = Bytes.get_uint16_le t.buf (dir_pos t slot)
let slot_length t slot = Bytes.get_uint16_le t.buf (dir_pos t slot + 2)

let set_slot t slot ~off ~len =
  Bytes.set_uint16_le t.buf (dir_pos t slot) off;
  Bytes.set_uint16_le t.buf (dir_pos t slot + 2) len

let live_count t =
  let n = ref 0 in
  for slot = 0 to slot_count t - 1 do
    if slot_offset t slot <> 0 then incr n
  done;
  !n

let live_bytes t =
  let n = ref 0 in
  for slot = 0 to slot_count t - 1 do
    if slot_offset t slot <> 0 then n := !n + slot_length t slot
  done;
  !n

let dir_start t = t.size - (dir_entry * slot_count t)

(* Free space if we compacted: everything between the live bodies and the
   current directory. *)
let free_bytes t = dir_start t - header_size - live_bytes t

let find_dead_slot t =
  let n = slot_count t in
  let rec go slot =
    if slot >= n then None
    else if slot_offset t slot = 0 then Some slot
    else go (slot + 1)
  in
  go 0

let fits t len =
  if len <= 0 then false
  else
    let need =
      match find_dead_slot t with None -> len + dir_entry | Some _ -> len
    in
    need <= free_bytes t

(* Slide all live bodies down to the front, in (current) offset order, so
   the free region becomes contiguous again. *)
let compact t =
  let n = slot_count t in
  let live = ref [] in
  for slot = 0 to n - 1 do
    let off = slot_offset t slot in
    if off <> 0 then live := (off, slot) :: !live
  done;
  let by_offset = List.sort (fun (a, _) (b, _) -> Int.compare a b) !live in
  let cursor = ref header_size in
  List.iter
    (fun (off, slot) ->
      let len = slot_length t slot in
      if off <> !cursor then begin
        Bytes.blit t.buf off t.buf !cursor len;
        set_slot t slot ~off:!cursor ~len
      end;
      cursor := !cursor + len)
    by_offset;
  set_free_off t !cursor;
  t.dirty <- true;
  t.version <- next_version ()

let contiguous_free t = dir_start t - free_off t

let insert t body =
  let len = Bytes.length body in
  if len <= 0 || len > t.size - header_size - dir_entry then
    invalid_arg "Page_layout.insert: body size";
  if not (fits t len) then None
  else begin
    let slot, new_slot =
      match find_dead_slot t with
      | Some slot -> (slot, false)
      | None -> (slot_count t, true)
    in
    let needed = if new_slot then len + dir_entry else len in
    if contiguous_free t < needed then compact t;
    if new_slot then set_slot_count t (slot + 1);
    let off = free_off t in
    Bytes.blit body 0 t.buf off len;
    set_slot t slot ~off ~len;
    set_free_off t (off + len);
    t.dirty <- true;
    t.version <- next_version ();
    Some slot
  end

let check_slot t slot =
  if slot < 0 || slot >= slot_count t then raise Not_found

let read t slot =
  check_slot t slot;
  let off = slot_offset t slot in
  if off = 0 then raise Not_found;
  Bytes.sub t.buf off (slot_length t slot)

(* Zero-copy access for owners that patch a record's bytes in place (the
   B+-tree's node editing): the backing buffer plus a live record's span.
   A caller that writes through [buffer] must call [record_modified] so the
   dirty bit and the version counter stay truthful. *)
let buffer t = t.buf

let record_span t slot =
  check_slot t slot;
  let off = slot_offset t slot in
  if off = 0 then raise Not_found;
  (off, slot_length t slot)

let record_modified t =
  t.dirty <- true;
  t.version <- next_version ()

let delete t slot =
  check_slot t slot;
  if slot_offset t slot <> 0 then begin
    set_slot t slot ~off:0 ~len:0;
    t.dirty <- true;
    t.version <- next_version ()
  end

let update t slot body =
  check_slot t slot;
  let off = slot_offset t slot in
  if off = 0 then raise Not_found;
  let old_len = slot_length t slot in
  let len = Bytes.length body in
  if len <= 0 || len > t.size - header_size - dir_entry then
    invalid_arg "Page_layout.update: body size";
  if len <= old_len then begin
    Bytes.blit body 0 t.buf off len;
    set_slot t slot ~off ~len;
    t.dirty <- true;
    t.version <- next_version ();
    true
  end
  else if free_bytes t + old_len >= len then begin
    (* Move within the page: free the old body, compact, re-append. *)
    set_slot t slot ~off:0 ~len:0;
    compact t;
    let off = free_off t in
    Bytes.blit body 0 t.buf off len;
    set_slot t slot ~off ~len;
    set_free_off t (off + len);
    t.dirty <- true;
    t.version <- next_version ();
    true
  end
  else false

let iter t f =
  for slot = 0 to slot_count t - 1 do
    if slot_offset t slot <> 0 then f slot (read t slot)
  done

let iter_spans t f =
  for slot = 0 to slot_count t - 1 do
    let off = slot_offset t slot in
    if off <> 0 then f slot off (slot_length t slot)
  done

let check_invariants t =
  let n = slot_count t in
  let fo = free_off t in
  if fo < header_size || fo > dir_start t then
    failwith "page: free_off out of bounds";
  if dir_start t < header_size then failwith "page: directory overflow";
  let spans = ref [] in
  for slot = 0 to n - 1 do
    let off = slot_offset t slot in
    if off <> 0 then begin
      let len = slot_length t slot in
      if off < header_size || off + len > fo then
        failwith "page: record outside data region";
      spans := (off, off + len) :: !spans
    end
  done;
  let sorted =
    List.sort
      (fun ((s1, e1) : int * int) (s2, e2) ->
        match Int.compare s1 s2 with 0 -> Int.compare e1 e2 | c -> c)
      !spans
  in
  let rec overlap : (int * int) list -> unit = function
    | (_, e1) :: ((s2, _) :: _ as rest) ->
        if e1 > s2 then failwith "page: overlapping records";
        overlap rest
    | _ -> ()
  in
  overlap sorted;
  if live_bytes t > fo - header_size then failwith "page: live bytes exceed data region"
