(** Slotted-page layout.

    Classic variable-length record page: a small header, record bodies
    growing up from the front, and a slot directory growing down from the
    back.  All metadata lives inside the page bytes, so a page is exactly
    what the simulated disk stores and the buffer pools ship around.

    Slots are stable: a record keeps its slot number for life (its Rid is a
    physical address), deletion leaves a dead slot that later insertions may
    reuse, and in-place updates that no longer fit are the caller's problem
    (heap files relocate the body and leave a forwarding stub — the price of
    O2's growable strings and collections that Section 5.2 mentions). *)

type t

(** [create ~size] is an empty page of [size] bytes. [size] must be at least
    64 and at most 65528 (offsets are 16-bit). *)
val create : size:int -> t

(** [of_bytes image] is a clean working copy of a durable page image (the
    disk hands these out; see {!Disk.load_page}).  [lsn] seeds the advisory
    log sequence number. *)
val of_bytes : ?lsn:int -> Bytes.t -> t

(** A copy of the full page bytes — the WAL's before/after-image unit. *)
val snapshot : t -> Bytes.t

val size : t -> int
val dirty : t -> bool
val set_dirty : t -> bool -> unit

(** Write-version counter: bumped by every mutation of the page's contents
    ([insert], [update], [delete], internal compaction, and
    [record_modified]).  Decoded views of a page (the B+-tree's node cache)
    key their validity on [(page, version)]: equal version means the bytes
    have not changed since the view was built.  Versions are globally unique
    across page objects (one shared monotonic counter), so a page
    re-materialized from disk never revalidates a stale view. *)
val version : t -> int

(** Advisory log sequence number of the last WAL record covering this page.
    Recovery does not trust it (the B+-tree bulk path patches bytes without
    bumping it); redo/undo compare images instead.  See DESIGN.md §5. *)
val lsn : t -> int

val set_lsn : t -> int -> unit

(** Number of slot-directory entries (live or dead). *)
val slot_count : t -> int

(** Number of live records. *)
val live_count : t -> int

(** Bytes a fresh insert of length [len] would need right now, accounting
    for slot reuse; [None] when it cannot fit even after compaction. *)
val fits : t -> int -> bool

(** Free bytes available to new records after compaction (not counting the
    directory entry a brand-new slot would need). *)
val free_bytes : t -> int

(** Bytes occupied by live record bodies. *)
val live_bytes : t -> int

(** [insert t body] stores [body] and returns its slot, or [None] if the
    page is full. Compacts transparently when fragmentation is the only
    obstacle. Raises [Invalid_argument] on an empty or oversized body. *)
val insert : t -> bytes -> int option

(** [read t slot] is a copy of the record body.
    Raises [Not_found] for dead or out-of-range slots. *)
val read : t -> int -> bytes

(** {2 In-place record patching}

    A record owner that knows its own encoding (the B+-tree: one node per
    page) can edit record bytes directly instead of building a fresh body
    and calling [update] — an equal-length [update] copies the whole body,
    while a patch blits only the bytes that moved. *)

(** The page's backing buffer.  Writes outside a span obtained from
    [record_span], or without a following [record_modified], corrupt the
    page. *)
val buffer : t -> Bytes.t

(** [record_span t slot] is the live record's [(offset, length)] within
    [buffer].  The span is stable until a different record on the page is
    inserted, resized or deleted (those may compact the page).
    Raises [Not_found] for dead or out-of-range slots. *)
val record_span : t -> int -> int * int

(** Declare that record bytes were patched through [buffer]: marks the page
    dirty and bumps [version]. *)
val record_modified : t -> unit

(** [delete t slot] frees the slot (idempotent on dead slots within range).
    Raises [Not_found] if out of range. *)
val delete : t -> int -> unit

(** [update t slot body] rewrites the record in place, possibly moving it
    within the page; [false] if the new body cannot fit on this page (the
    slot is left unchanged in that case).
    Raises [Not_found] for dead or out-of-range slots. *)
val update : t -> int -> bytes -> bool

(** [iter t f] applies [f slot body] to every live record in slot order. *)
val iter : t -> (int -> bytes -> unit) -> unit

(** [iter_spans t f] applies [f slot offset length] to every live record in
    slot order, without copying bodies; spans index into [buffer].  [f] must
    not mutate the page. *)
val iter_spans : t -> (int -> int -> int -> unit) -> unit

(** Internal-consistency check for tests: directory within bounds, no record
    overlap, free space arithmetic coherent. Raises [Failure] on violation. *)
val check_invariants : t -> unit
