type t = { file : int; page : int; slot : int }

let make ~file ~page ~slot = { file; page; slot }
let nil = { file = -1; page = -1; slot = -1 }
let is_nil t = t.file < 0

let compare a b =
  let c = Int.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.page b.page in
    if c <> 0 then c else Int.compare a.slot b.slot

let equal a b = compare a b = 0

(* FNV-1a over the triple: deterministic across runs and OCaml versions
   (Hashtbl.hash is specified only per-version), masked non-negative so
   [hash t mod n] is a valid bucket index. *)
let hash t =
  let mix h x = (h lxor x) * 0x0100_0193 in
  mix (mix (mix 0x811c_9dc5 t.file) t.page) t.slot land max_int

(* 2 bytes of file id, 4 of page number, 2 of slot: 8 bytes, as in the
   paper's size accounting. Nil encodes as all-ones. *)
let on_disk_bytes = 8

let encode_into t b ~pos =
  if is_nil t then Bytes.fill b pos on_disk_bytes '\xff'
  else begin
    Bytes.set_uint16_le b pos t.file;
    Bytes.set_int32_le b (pos + 2) (Int32.of_int t.page);
    Bytes.set_uint16_le b (pos + 6) t.slot
  end

let encode t =
  let b = Bytes.create on_disk_bytes in
  encode_into t b ~pos:0;
  b

let decode b ~pos =
  if Bytes.get b pos = '\xff' && Bytes.get b (pos + 1) = '\xff' then nil
  else
    {
      file = Bytes.get_uint16_le b pos;
      page = Int32.to_int (Bytes.get_int32_le b (pos + 2));
      slot = Bytes.get_uint16_le b (pos + 6);
    }

let pp ppf t =
  if is_nil t then Format.pp_print_string ppf "@nil"
  else Format.fprintf ppf "@%d:%d.%d" t.file t.page t.slot

let to_string t = Format.asprintf "%a" pp t
