(** Physical record identifiers.

    O2's internal [Rid] type is a physical disk address (the [@p1], [@d2]
    markers of Figure 2).  The paper's join study deliberately targets
    physical identifiers (in contrast to the logical OIDs of Braumandl et
    al.), so a Rid here is exactly a (file, page, slot) triple.  Rids order
    by physical position — sorting Rids before fetching is the Section 4.2
    optimization that makes unclustered index scans sequential. *)

type t = { file : int; page : int; slot : int }

val make : file:int -> page:int -> slot:int -> t

(** A sentinel used for "nil" references (a retired doctor's patients...). *)
val nil : t

val is_nil : t -> bool

(** Physical order: file, then page, then slot. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** Bytes a Rid occupies on disk (the paper counts 8 per identifier). *)
val on_disk_bytes : int

(** Fixed-width binary encoding, [on_disk_bytes] long. *)
val encode : t -> bytes

(** [encode_into t b ~pos] writes the encoding at [pos] without
    allocating. *)
val encode_into : t -> Bytes.t -> pos:int -> unit

val decode : bytes -> pos:int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
