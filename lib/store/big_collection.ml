(* Chunk record: 8-byte next-chunk Rid (nil at the tail), u16 element count,
   then the encoded elements. Chunks are written tail-first so each knows
   its successor's Rid. *)

let spill_threshold = 4096
let chunk_budget = 3200 (* encoded element bytes per chunk *)

let encode_chunk ~next elems =
  let payload = List.map Codec.encode elems in
  let size =
    List.fold_left (fun acc b -> acc + Bytes.length b) 0 payload
  in
  let b = Bytes.create (Tb_storage.Rid.on_disk_bytes + 2 + size) in
  Bytes.blit (Tb_storage.Rid.encode next) 0 b 0 Tb_storage.Rid.on_disk_bytes;
  Bytes.set_uint16_le b Tb_storage.Rid.on_disk_bytes (List.length elems);
  let pos = ref (Tb_storage.Rid.on_disk_bytes + 2) in
  List.iter
    (fun p ->
      Bytes.blit p 0 b !pos (Bytes.length p);
      pos := !pos + Bytes.length p)
    payload;
  b

let decode_chunk b =
  let next = Tb_storage.Rid.decode b ~pos:0 in
  let n = Bytes.get_uint16_le b Tb_storage.Rid.on_disk_bytes in
  let rec elems pos acc = function
    | 0 -> List.rev acc
    | k ->
        let v, pos = Codec.decode b ~pos in
        elems pos (v :: acc) (k - 1)
  in
  (next, elems (Tb_storage.Rid.on_disk_bytes + 2) [] n)

(* Greedily pack elements into chunks of at most [chunk_budget] encoded
   bytes (at least one element per chunk). *)
let chunks_of elems =
  let rec go current current_bytes acc = function
    | [] ->
        let acc =
          match current with [] -> acc | _ -> List.rev current :: acc
        in
        List.rev acc
    | v :: rest ->
        let sz = Codec.encoded_size v in
        let non_empty = match current with [] -> false | _ -> true in
        if non_empty && current_bytes + sz > chunk_budget then
          go [ v ] sz (List.rev current :: acc) rest
        else go (v :: current) (current_bytes + sz) acc rest
  in
  go [] 0 [] elems

let create heap elems =
  match chunks_of elems with
  | [] -> Tb_storage.Heap_file.insert heap (encode_chunk ~next:Tb_storage.Rid.nil [])
  | chunks ->
      let rec write_tail_first = function
        | [] -> Tb_storage.Rid.nil
        | chunk :: rest ->
            let next = write_tail_first rest in
            Tb_storage.Heap_file.insert heap (encode_chunk ~next chunk)
      in
      write_tail_first chunks

let iter heap head f =
  let rec go rid =
    if not (Tb_storage.Rid.is_nil rid) then begin
      let next, elems = decode_chunk (Tb_storage.Heap_file.read heap rid) in
      List.iter f elems;
      go next
    end
  in
  go head

let length heap head =
  let n = ref 0 in
  iter heap head (fun _ -> incr n);
  !n

let to_list heap head =
  let acc = ref [] in
  iter heap head (fun v -> acc := v :: !acc);
  List.rev !acc
