(* One node per page, stored as record 0 of the page.

   Leaf encoding:     u8 1 | i32 next_page | u16 n | cap * (i64 key, 8B rid)
   Internal encoding: u8 0 | u16 n | (cap+1) * i32 child | cap * (i64 key, 8B rid)

   Records are capacity-sized (only the first n entries are live), so a node
   keeps one fixed on-page footprint for life: in-place edits can patch the
   record bytes directly instead of re-encoding, and an equal-length
   [Page_layout.update] never relocates the record.  Record sizes are
   invisible to the cost model — all simulated charges are per page touch,
   never per byte.

   Entries and separators are (key, rid) pairs under lexicographic order, so
   the tree never contains equal keys internally; child_i of an internal
   node covers entries e with sep_(i-1) <= e < sep_i.

   Host-side performance (none of this changes a simulated number):
   - decoded nodes are memoized per page, keyed on the page's write-version
     counter ([Page_layout.version]), so repeat visits skip re-decode;
   - the hot mutations (leaf insert/remove, internal separator insert) shift
     capacity-sized arrays in place and blit only the moved tail of the
     record bytes; splits and delete-time rebalancing keep the simple
     build-a-fresh-node path;
   - [bulk_add] appends a sorted run along a remembered rightmost path,
     replaying exactly the client-hit and comparison charges the per-entry
     descent would have emitted. *)

module Rid = Tb_storage.Rid
module Page_layout = Tb_storage.Page_layout

type entry = { key : int; rid : Rid.t }

type leaf = {
  mutable next : int;
  mutable n : int;
  entries : entry array; (* capacity [leaf_cap + 1]: one slot of split slack *)
}

type internal = {
  mutable nk : int; (* live separators; live children = nk + 1 *)
  children : int array; (* capacity [internal_cap + 2] *)
  seps : entry array; (* capacity [internal_cap + 1] *)
}

type node = Leaf of leaf | Internal of internal

(* Decoded-node cache entry: valid while [ver] matches the page's
   write-version counter. *)
type cached = { mutable ver : int; mutable node : node }

type t = {
  stack : Tb_storage.Cache_stack.t;
  file : int;
  name : string;
  mutable root : int;
  mutable entries : int;
  cache : (int, cached) Hashtbl.t; (* page index -> decoded node *)
}

let leaf_cap = 200
let internal_cap = 150

let cmp_entry a b =
  let c = Int.compare a.key b.key in
  if c <> 0 then c else Rid.compare a.rid b.rid

let dummy_entry = { key = 0; rid = Rid.nil }

let new_leaf ~next =
  { next; n = 0; entries = Array.make (leaf_cap + 1) dummy_entry }

let new_internal () =
  {
    nk = 0;
    children = Array.make (internal_cap + 2) (-1);
    seps = Array.make (internal_cap + 1) dummy_entry;
  }

(* Build nodes from exact-length plain arrays (the rebalancing paths, which
   construct fresh nodes piecewise the way the original code did). *)
let mk_leaf ~next src =
  let lf = new_leaf ~next in
  Array.blit src 0 lf.entries 0 (Array.length src);
  lf.n <- Array.length src;
  Leaf lf

(* [mk_leaf] over a slice of [src], without the intermediate [Array.sub]. *)
let leaf_of_range ~next src pos len =
  let lf = new_leaf ~next in
  Array.blit src pos lf.entries 0 len;
  lf.n <- len;
  Leaf lf

let mk_internal children seps =
  let ino = new_internal () in
  Array.blit children 0 ino.children 0 (Array.length children);
  Array.blit seps 0 ino.seps 0 (Array.length seps);
  ino.nk <- Array.length seps;
  Internal ino

(* Live prefixes as plain arrays. *)
let leaf_entries (lf : leaf) = Array.sub lf.entries 0 lf.n
let internal_children ino = Array.sub ino.children 0 (ino.nk + 1)
let internal_seps ino = Array.sub ino.seps 0 ino.nk

(* --- node serialization --- *)

let entry_bytes = 16
let leaf_base = 7
let leaf_record_bytes = leaf_base + (entry_bytes * leaf_cap)
let internal_seps_base = 3 + (4 * (internal_cap + 1))
let internal_record_bytes = internal_seps_base + (entry_bytes * internal_cap)

let put_entry b pos e =
  Bytes.set_int64_le b pos (Int64.of_int e.key);
  Rid.encode_into e.rid b ~pos:(pos + 8)

let encode_node node =
  match node with
  | Leaf lf ->
      assert (lf.n <= leaf_cap);
      let b = Bytes.make leaf_record_bytes '\000' in
      Bytes.set_uint8 b 0 1;
      Bytes.set_int32_le b 1 (Int32.of_int lf.next);
      Bytes.set_uint16_le b 5 lf.n;
      for i = 0 to lf.n - 1 do
        put_entry b (leaf_base + (entry_bytes * i)) lf.entries.(i)
      done;
      b
  | Internal ino ->
      assert (ino.nk <= internal_cap);
      let b = Bytes.make internal_record_bytes '\000' in
      Bytes.set_uint8 b 0 0;
      Bytes.set_uint16_le b 1 ino.nk;
      for i = 0 to ino.nk do
        Bytes.set_int32_le b (3 + (4 * i)) (Int32.of_int ino.children.(i))
      done;
      for i = 0 to ino.nk - 1 do
        put_entry b (internal_seps_base + (entry_bytes * i)) ino.seps.(i)
      done;
      b

(* Decode record 0 straight out of the page buffer (no [Page_layout.read]
   copy). *)
let decode_page page =
  let b = Page_layout.buffer page in
  let off, _len = Page_layout.record_span page 0 in
  let read_entry pos =
    {
      key = Int64.to_int (Bytes.get_int64_le b pos);
      rid = Rid.decode b ~pos:(pos + 8);
    }
  in
  if Bytes.get_uint8 b off = 1 then begin
    let lf = new_leaf ~next:(Int32.to_int (Bytes.get_int32_le b (off + 1))) in
    let n = Bytes.get_uint16_le b (off + 5) in
    for i = 0 to n - 1 do
      lf.entries.(i) <- read_entry (off + leaf_base + (entry_bytes * i))
    done;
    lf.n <- n;
    Leaf lf
  end
  else begin
    let ino = new_internal () in
    let n = Bytes.get_uint16_le b (off + 1) in
    for i = 0 to n do
      ino.children.(i) <- Int32.to_int (Bytes.get_int32_le b (off + 3 + (4 * i)))
    done;
    for i = 0 to n - 1 do
      ino.seps.(i) <- read_entry (off + internal_seps_base + (entry_bytes * i))
    done;
    ino.nk <- n;
    Internal ino
  end

(* --- page access --- *)

let page_for t index writable =
  let pid = Tb_storage.Page_id.make ~file:t.file ~index in
  if writable then Tb_storage.Cache_stack.fetch_for_write t.stack pid
  else Tb_storage.Cache_stack.fetch t.stack pid

(* Cache slot for [index], (re)decoding if the page has been written since
   the slot was filled. *)
let cached_for t index page =
  let v = Page_layout.version page in
  match Hashtbl.find_opt t.cache index with
  | Some c ->
      if c.ver <> v then begin
        c.node <- decode_page page;
        c.ver <- v
      end;
      c
  | None ->
      let c = { ver = v; node = decode_page page } in
      Hashtbl.replace t.cache index c;
      c

let read_node t index = (cached_for t index (page_for t index false)).node

(* Re-point the cache at [node], valid as of the page's current version. *)
let stamp t index page node =
  match Hashtbl.find_opt t.cache index with
  | Some c ->
      c.node <- node;
      c.ver <- Page_layout.version page
  | None ->
      Hashtbl.replace t.cache index { ver = Page_layout.version page; node }

let write_node t index node =
  let page = page_for t index true in
  let b = encode_node node in
  (if Page_layout.slot_count page = 0 then
     match Page_layout.insert page b with
     | Some 0 -> ()
     | Some _ | None -> failwith "Btree: node page corrupt"
   else if not (Page_layout.update page 0 b) then
     failwith "Btree: node exceeds page");
  stamp t index page node

let alloc_node t node =
  let index =
    Tb_storage.Disk.append_page (Tb_storage.Cache_stack.disk t.stack) ~file:t.file
  in
  write_node t index node;
  index

let create stack ~name =
  let file = Tb_storage.Disk.new_file (Tb_storage.Cache_stack.disk stack) ~name in
  let t =
    { stack; file; name; root = 0; entries = 0; cache = Hashtbl.create 64 }
  in
  t.root <- alloc_node t (Leaf (new_leaf ~next:(-1)));
  t

let name t = t.name
let entry_count t = t.entries

let page_count t =
  Tb_storage.Disk.page_count (Tb_storage.Cache_stack.disk t.stack) t.file

let sim t = Tb_storage.Cache_stack.sim t.stack

(* Binary search over the live prefix [arr.(0 .. n-1)]: index of the first
   element strictly greater than [e]; charges the comparisons it performs. *)
let upper_bound t arr n e =
  let cmps = ref 0 in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr cmps;
    if cmp_entry e arr.(mid) < 0 then hi := mid else lo := mid + 1
  done;
  Tb_sim.Sim.charge_compare (sim t) !cmps;
  !lo

(* Position of the first element >= e. *)
let lower_bound t arr n e =
  let cmps = ref 0 in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr cmps;
    if cmp_entry arr.(mid) e < 0 then lo := mid + 1 else hi := mid
  done;
  Tb_sim.Sim.charge_compare (sim t) !cmps;
  !lo

let array_insert arr pos x =
  let n = Array.length arr in
  Array.init (n + 1) (fun i ->
      if i < pos then arr.(i) else if i = pos then x else arr.(i - 1))

let array_remove arr pos =
  let n = Array.length arr in
  Array.init (n - 1) (fun i -> if i < pos then arr.(i) else arr.(i + 1))

(* --- in-place edits ---

   Each helper fetches the page for writing first (the same single write
   fetch the old encode-the-whole-node path charged), mutates the decoded
   node's arrays, and patches only the record bytes that moved. *)

let leaf_insert_inplace t index (lf : leaf) pos e =
  let page = page_for t index true in
  let off, _ = Page_layout.record_span page 0 in
  Array.blit lf.entries pos lf.entries (pos + 1) (lf.n - pos);
  lf.entries.(pos) <- e;
  lf.n <- lf.n + 1;
  let b = Page_layout.buffer page in
  let epos = off + leaf_base + (entry_bytes * pos) in
  Bytes.blit b epos b (epos + entry_bytes) (entry_bytes * (lf.n - 1 - pos));
  put_entry b epos e;
  Bytes.set_uint16_le b (off + 5) lf.n;
  Page_layout.record_modified page;
  stamp t index page (Leaf lf)

let leaf_remove_inplace t index (lf : leaf) pos =
  let page = page_for t index true in
  let off, _ = Page_layout.record_span page 0 in
  Array.blit lf.entries (pos + 1) lf.entries pos (lf.n - pos - 1);
  lf.n <- lf.n - 1;
  let b = Page_layout.buffer page in
  let epos = off + leaf_base + (entry_bytes * pos) in
  Bytes.blit b (epos + entry_bytes) b epos (entry_bytes * (lf.n - pos));
  Bytes.set_uint16_le b (off + 5) lf.n;
  Page_layout.record_modified page;
  stamp t index page (Leaf lf)

(* Insert separator [sep] / right child after child [child_idx]; only for
   non-overflowing parents (nk < internal_cap). *)
let internal_insert_inplace t index ino child_idx sep right_page =
  let page = page_for t index true in
  let off, _ = Page_layout.record_span page 0 in
  let nk = ino.nk in
  Array.blit ino.seps child_idx ino.seps (child_idx + 1) (nk - child_idx);
  ino.seps.(child_idx) <- sep;
  Array.blit ino.children (child_idx + 1) ino.children (child_idx + 2)
    (nk - child_idx);
  ino.children.(child_idx + 1) <- right_page;
  ino.nk <- nk + 1;
  let b = Page_layout.buffer page in
  let cpos = off + 3 + (4 * (child_idx + 1)) in
  Bytes.blit b cpos b (cpos + 4) (4 * (nk - child_idx));
  Bytes.set_int32_le b cpos (Int32.of_int right_page);
  let spos = off + internal_seps_base + (entry_bytes * child_idx) in
  Bytes.blit b spos b (spos + entry_bytes) (entry_bytes * (nk - child_idx));
  put_entry b spos sep;
  Bytes.set_uint16_le b (off + 1) ino.nk;
  Page_layout.record_modified page;
  stamp t index page (Internal ino)

(* --- insertion --- *)

type split = No_split | Split of entry * int (* separator, right page *)

let rec ins t index e =
  match read_node t index with
  | Leaf lf ->
      let pos = lower_bound t lf.entries lf.n e in
      if pos < lf.n && cmp_entry lf.entries.(pos) e = 0 then
        No_split (* duplicate (key, rid): ignored *)
      else begin
        t.entries <- t.entries + 1;
        if lf.n < leaf_cap then begin
          leaf_insert_inplace t index lf pos e;
          No_split
        end
        else begin
          (* Overflow into the slack slot, then split. *)
          Array.blit lf.entries pos lf.entries (pos + 1) (lf.n - pos);
          lf.entries.(pos) <- e;
          lf.n <- lf.n + 1;
          let total = lf.n in
          let mid = total / 2 in
          let right = leaf_of_range ~next:lf.next lf.entries mid (total - mid) in
          let sep = lf.entries.(mid) in
          let right_page = alloc_node t right in
          (* The left half stays on this page: only the bytes at
             [pos .. mid) moved (none when the insert landed in the right
             half), plus the next pointer and the count. *)
          let page = page_for t index true in
          let off, _ = Page_layout.record_span page 0 in
          let b = Page_layout.buffer page in
          if pos < mid then begin
            let epos = off + leaf_base + (entry_bytes * pos) in
            Bytes.blit b epos b (epos + entry_bytes)
              (entry_bytes * (mid - 1 - pos));
            put_entry b epos e
          end;
          lf.n <- mid;
          lf.next <- right_page;
          Bytes.set_int32_le b (off + 1) (Int32.of_int right_page);
          Bytes.set_uint16_le b (off + 5) mid;
          Page_layout.record_modified page;
          stamp t index page (Leaf lf);
          Split (sep, right_page)
        end
      end
  | Internal ino -> (
      let child_idx = upper_bound t ino.seps ino.nk e in
      match ins t ino.children.(child_idx) e with
      | No_split -> No_split
      | Split (sep, right_page) ->
          if ino.nk < internal_cap then begin
            internal_insert_inplace t index ino child_idx sep right_page;
            No_split
          end
          else begin
            Array.blit ino.seps child_idx ino.seps (child_idx + 1)
              (ino.nk - child_idx);
            ino.seps.(child_idx) <- sep;
            Array.blit ino.children (child_idx + 1) ino.children (child_idx + 2)
              (ino.nk - child_idx);
            ino.children.(child_idx + 1) <- right_page;
            ino.nk <- ino.nk + 1;
            let total = ino.nk in
            let mid = total / 2 in
            let up = ino.seps.(mid) in
            let right =
              mk_internal
                (Array.sub ino.children (mid + 1) (total - mid))
                (Array.sub ino.seps (mid + 1) (total - mid - 1))
            in
            let right_page = alloc_node t right in
            ino.nk <- mid;
            write_node t index (Internal ino);
            Split (up, right_page)
          end)

let insert t ~key ~rid =
  match ins t t.root { key; rid } with
  | No_split -> ()
  | Split (sep, right_page) ->
      let new_root = alloc_node t (mk_internal [| t.root; right_page |] [| sep |]) in
      t.root <- new_root

(* --- lookup --- *)

(* Leaf that may contain the first entry >= e, plus the in-leaf position. *)
let rec descend t index e =
  match read_node t index with
  | Leaf lf -> (lf, lower_bound t lf.entries lf.n e)
  | Internal ino -> descend t ino.children.(upper_bound t ino.seps ino.nk e) e

(* Walk entries in order starting at the first >= start, while [keep] holds.
   The callback must not mutate the tree: it runs against the live decoded
   nodes. *)
let walk_from t start ~keep f =
  let lf0, pos0 = descend t t.root start in
  let rec leaf_loop (lf : leaf) pos =
    if pos >= lf.n then begin
      if lf.next >= 0 then
        match read_node t lf.next with
        | Leaf lf' -> leaf_loop lf' 0
        | Internal _ -> failwith "Btree: leaf chain reaches internal node"
    end
    else begin
      let e = lf.entries.(pos) in
      Tb_sim.Sim.charge_compare (sim t) 1;
      if keep e then begin
        f e;
        leaf_loop lf (pos + 1)
      end
    end
  in
  leaf_loop lf0 pos0

(* Single pass: the leaf chain yields entries in ascending (key, rid) order
   already, so build the result front-to-back instead of accumulating a
   reversed list and flipping it. *)
let search t ~key =
  let rec collect (lf : leaf) pos =
    if pos >= lf.n then
      if lf.next < 0 then []
      else
        match read_node t lf.next with
        | Leaf lf' -> collect lf' 0
        | Internal _ -> failwith "Btree: leaf chain reaches internal node"
    else begin
      let e = lf.entries.(pos) in
      Tb_sim.Sim.charge_compare (sim t) 1;
      if e.key = key then e.rid :: collect lf (pos + 1) else []
    end
  in
  let lf, pos = descend t t.root { key; rid = Rid.nil } in
  collect lf pos

let range t ?lo ?hi f =
  let start =
    match lo with
    | Some k -> { key = k; rid = Rid.nil }
    | None -> { key = min_int; rid = Rid.nil }
  in
  let keep e = match hi with Some h -> e.key < h | None -> true in
  walk_from t start ~keep (fun e -> f e.key e.rid)

let iter t f = range t f

(* --- deletion with rebalancing ---

   Underfull nodes (below half capacity) borrow from a sibling when one can
   spare an entry, and merge with a sibling otherwise; merges may propagate
   underflow upward, and an internal root left with a single child is
   replaced by it (height shrink).  Merged-away pages are simply abandoned
   (the simulated disk has no free list; O2 reclaimed space on
   dump-and-reload, Section 2). *)

let min_leaf = leaf_cap / 2
let min_internal = internal_cap / 2

let internal_parts = function
  | Internal ino -> (internal_children ino, internal_seps ino)
  | Leaf _ -> failwith "Btree: expected internal node"

(* Rebalance underfull child [i] of the internal node at [index].  The
   rebalancing paths build fresh nodes out of plain-array slices — they run
   once per ~half-node's worth of deletions, so the simple code wins. *)
let fix_child t index i =
  let children, seps = internal_parts (read_node t index) in
  let child = read_node t children.(i) in
  let borrow_from_left () =
    if i = 0 then false
    else
      match (read_node t children.(i - 1), child) with
      | Leaf left, Leaf right when left.n > min_leaf ->
          let n = left.n in
          let moved = left.entries.(n - 1) in
          write_node t children.(i - 1)
            (mk_leaf ~next:left.next (Array.sub left.entries 0 (n - 1)));
          write_node t children.(i)
            (mk_leaf ~next:right.next (array_insert (leaf_entries right) 0 moved));
          let seps = Array.copy seps in
          seps.(i - 1) <- moved;
          write_node t index (mk_internal children seps);
          true
      | Internal left, Internal right when left.nk > min_internal ->
          let n = left.nk in
          (* Rotate through the parent separator. *)
          let right' =
            mk_internal
              (array_insert (internal_children right) 0 left.children.(n))
              (array_insert (internal_seps right) 0 seps.(i - 1))
          in
          let seps = Array.copy seps in
          seps.(i - 1) <- left.seps.(n - 1);
          write_node t children.(i - 1)
            (mk_internal
               (Array.sub left.children 0 n)
               (Array.sub left.seps 0 (n - 1)));
          write_node t children.(i) right';
          write_node t index (mk_internal children seps);
          true
      | _ -> false
  in
  let borrow_from_right () =
    if i >= Array.length children - 1 then false
    else
      match (child, read_node t children.(i + 1)) with
      | Leaf left, Leaf right when right.n > min_leaf ->
          let moved = right.entries.(0) in
          write_node t children.(i)
            (mk_leaf ~next:left.next (array_insert (leaf_entries left) left.n moved));
          write_node t
            children.(i + 1)
            (mk_leaf ~next:right.next (array_remove (leaf_entries right) 0));
          let seps = Array.copy seps in
          seps.(i) <- right.entries.(1);
          write_node t index (mk_internal children seps);
          true
      | Internal left, Internal right when right.nk > min_internal ->
          let left' =
            mk_internal
              (array_insert (internal_children left) (left.nk + 1) right.children.(0))
              (array_insert (internal_seps left) left.nk seps.(i))
          in
          let seps = Array.copy seps in
          seps.(i) <- right.seps.(0);
          write_node t children.(i) left';
          write_node t
            children.(i + 1)
            (mk_internal
               (array_remove (internal_children right) 0)
               (array_remove (internal_seps right) 0));
          write_node t index (mk_internal children seps);
          true
      | _ -> false
  in
  (* Merge child [l] with child [l+1]. *)
  let merge l =
    (match (read_node t children.(l), read_node t children.(l + 1)) with
    | Leaf left, Leaf right ->
        write_node t children.(l)
          (mk_leaf ~next:right.next
             (Array.append (leaf_entries left) (leaf_entries right)))
    | Internal left, Internal right ->
        write_node t children.(l)
          (mk_internal
             (Array.append (internal_children left) (internal_children right))
             (Array.concat [ internal_seps left; [| seps.(l) |]; internal_seps right ]))
    | _ -> failwith "Btree: sibling arity mismatch");
    write_node t index
      (mk_internal (array_remove children (l + 1)) (array_remove seps l))
  in
  if not (borrow_from_left () || borrow_from_right ()) then
    if i > 0 then merge (i - 1) else merge i

let underfull = function
  | Leaf lf -> lf.n < min_leaf
  | Internal ino -> ino.nk < min_internal

(* Returns (found, now_underfull). *)
let rec delete_rec t index e =
  match read_node t index with
  | Leaf lf ->
      let pos = lower_bound t lf.entries lf.n e in
      if pos < lf.n && cmp_entry lf.entries.(pos) e = 0 then begin
        leaf_remove_inplace t index lf pos;
        (true, lf.n < min_leaf)
      end
      else (false, false)
  | Internal ino ->
      let i = upper_bound t ino.seps ino.nk e in
      let found, under = delete_rec t ino.children.(i) e in
      if found && under then begin
        fix_child t index i;
        (true, underfull (read_node t index))
      end
      else (found, false)

let delete t ~key ~rid =
  let found, _ = delete_rec t t.root { key; rid } in
  if found then begin
    t.entries <- t.entries - 1;
    (* Height shrink: an internal root with a single child is redundant. *)
    match read_node t t.root with
    | Internal ino when ino.nk = 0 -> t.root <- ino.children.(0)
    | Internal _ | Leaf _ -> ()
  end;
  found

(* --- sorted bulk build --- *)

(* Comparisons [upper_bound]/[lower_bound] perform over [n] sorted entries
   when the probe is greater than all of them: the search always takes the
   upper half, so the count depends only on [n]. *)
let bound_count_above n =
  let c = ref 0 and lo = ref 0 and hi = ref n in
  while !lo < !hi do
    incr c;
    lo := ((!lo + !hi) / 2) + 1
  done;
  !c

(* Comparisons [lower_bound] performs when the probe equals the last of [n]
   strictly increasing entries. *)
let lb_count_last n =
  let c = ref 0 and lo = ref 0 and hi = ref n in
  while !lo < !hi do
    incr c;
    let mid = (!lo + !hi) / 2 in
    if mid = n - 1 then hi := mid else lo := mid + 1
  done;
  !c

(* Precomputed [bound_count_above] for every occupancy the fast path can
   see, so each append pays a table lookup instead of a loop. *)
let bound_above_tbl =
  lazy
    (let cap = if leaf_cap > internal_cap then leaf_cap else internal_cap in
     Array.init (cap + 1) bound_count_above)

let bulk_add t run =
  (* One O(n) pass decides whether the run needs sorting at all.  The
     production caller — [Database.create_index] over a clustered extent —
     hands us an already-sorted run, which then skips the host sort
     entirely. *)
  let n = Array.length run in
  let sorted = ref true in
  let i = ref 0 in
  while !sorted && !i < n - 1 do
    let k1, r1 = Array.unsafe_get run !i
    and k2, r2 = Array.unsafe_get run (!i + 1) in
    if k1 > k2 || (k1 = k2 && Rid.compare r1 r2 > 0) then sorted := false;
    incr i
  done;
  let run =
    if !sorted then run
    else begin
      let a = Array.copy run in
      Array.sort
        (fun (k1, r1) (k2, r2) ->
          let c = Int.compare k1 k2 in
          if c <> 0 then c else Rid.compare r1 r2)
        a;
      a
    end
  in
  if t.entries <> 0 then
    (* Entries may interleave with existing keys, so the append fast path
       does not apply; the tree shape and the simulated charges are exactly
       those of the caller looping [insert] over the sorted run. *)
    Array.iter (fun (key, rid) -> insert t ~key ~rid) run
  else begin
    let sim_ = sim t in
    let tbl = Lazy.force bound_above_tbl in
    (* Hand-inlined [Sim.charge_client_hit] / [Sim.charge_compare]: the
       same counter bumps and the same float additions in the same order,
       minus two call levels per event.  [Clock.t] exposes its field for
       exactly this loop. *)
    let ctr = sim_.Tb_sim.Sim.counters in
    let clk = sim_.Tb_sim.Sim.clock in
    let hit_ms = sim_.Tb_sim.Sim.cost.Tb_sim.Cost_model.client_hit_ms in
    let cmp_us = sim_.Tb_sim.Sim.cost.Tb_sim.Cost_model.compare_us in
    let hit () =
      ctr.Tb_sim.Counters.client_hits <- ctr.Tb_sim.Counters.client_hits + 1;
      clk.Tb_sim.Clock.now_ms <- clk.Tb_sim.Clock.now_ms +. hit_ms;
      clk.Tb_sim.Clock.work_ms <- clk.Tb_sim.Clock.work_ms +. hit_ms
    in
    let cmps n =
      if n > 0 then begin
        ctr.Tb_sim.Counters.comparisons <-
          ctr.Tb_sim.Counters.comparisons + n;
        let ms = float_of_int n *. cmp_us /. 1000.0 in
        clk.Tb_sim.Clock.now_ms <- clk.Tb_sim.Clock.now_ms +. ms;
        clk.Tb_sim.Clock.work_ms <- clk.Tb_sim.Clock.work_ms +. ms
      end
    in
    (* Rightmost-path state, rebuilt charge-free after every real insert.
       Between real inserts nothing touches the cache stack, so every path
       page verified [resident] stays resident, each append's fetches are
       guaranteed client hits, and the pools' eviction order cannot diverge
       from the per-entry build's (only real inserts add pages, and they
       re-touch the path in the same relative order an append would). *)
    let live = ref false in
    (* Binary-search compare count per internal level, top-down. *)
    let spine = ref [||] in
    (* Placeholders until the first [refresh]; [live] gates their use. *)
    let bleaf = ref (new_leaf ~next:(-1)) in
    let bpage = ref (Page_layout.create ~size:64) in
    let boff = ref 0 in
    let bcache = ref { ver = -1; node = Leaf !bleaf } in
    (* Appends mutate only the cached node; the page bytes lag behind until
       [close] patches them in one pass.  [synced] counts the leaf entries
       the page already reflects.  Nothing can observe the stale bytes in
       between: the cache serves reads (the version is untouched), no flush
       runs inside [bulk_add], and [close] runs before every real insert —
       whose split path is the only writer that assumes current bytes —
       and before returning. *)
    let synced = ref 0 in
    let bdirty = ref false in
    let close () =
      let lf = !bleaf in
      if !live && lf.n > !synced then begin
        let page = !bpage and off = !boff in
        let b = Page_layout.buffer page in
        for i = !synced to lf.n - 1 do
          put_entry b (off + leaf_base + (entry_bytes * i)) lf.entries.(i)
        done;
        Bytes.set_uint16_le b (off + 5) lf.n;
        Page_layout.record_modified page;
        !bcache.ver <- Page_layout.version page;
        synced := lf.n
      end
    in
    let refresh () =
      live := true;
      let rec go index acc =
        let pid = Tb_storage.Page_id.make ~file:t.file ~index in
        match Tb_storage.Cache_stack.peek t.stack pid with
        | None -> live := false
        | Some page -> (
            let c = cached_for t index page in
            match c.node with
            | Internal ino -> go ino.children.(ino.nk) (tbl.(ino.nk) :: acc)
            | Leaf lf ->
                spine := Array.of_list (List.rev acc);
                bleaf := lf;
                bpage := page;
                boff := fst (Page_layout.record_span page 0);
                bcache := c;
                synced := lf.n;
                bdirty := Page_layout.dirty page)
      in
      go t.root []
    in
    let slow key rid =
      close ();
      insert t ~key ~rid;
      refresh ()
    in
    for i = 0 to n - 1 do
      let key, rid = Array.unsafe_get run i in
      let lf = !bleaf in
      if (not !live) || lf.n = 0 || lf.n >= leaf_cap then slow key rid
      else begin
        let last = Array.unsafe_get lf.entries (lf.n - 1) in
        let cls =
          if key > last.key then 1
          else if key < last.key then -1
          else Rid.compare rid last.rid
        in
        if cls < 0 then slow key rid (* unreachable for a sorted run *)
        else begin
          (* Replay the per-entry descent's simulated charges: a client-hit
             fetch then a binary search per level. *)
          let sc = !spine in
          for l = 0 to Array.length sc - 1 do
            hit ();
            cmps (Array.unsafe_get sc l)
          done;
          hit ();
          if cls = 0 then
            (* Duplicate (key, rid): the descent prices its probe and stops
               before the write fetch, as [ins] does. *)
            cmps (lb_count_last lf.n)
          else begin
            cmps (Array.unsafe_get tbl lf.n);
            hit ();
            (* Idempotent while no flush can intervene, so set once per
               refreshed leaf instead of once per append. *)
            if not !bdirty then begin
              Page_layout.set_dirty !bpage true;
              bdirty := true
            end;
            Array.unsafe_set lf.entries lf.n { key; rid };
            lf.n <- lf.n + 1;
            t.entries <- t.entries + 1
          end
        end
      end
    done;
    close ()
  end

let bulk_build stack ~name run =
  let t = create stack ~name in
  bulk_add t run;
  t

(* --- statistics and checks --- *)

let clustering_factor t =
  let in_order = ref 0 and total = ref 0 in
  let prev = ref None in
  iter t (fun _ rid ->
      (match !prev with
      | Some p ->
          incr total;
          if Rid.compare p rid <= 0 then incr in_order
      | None -> ());
      prev := Some rid);
  if !total = 0 then 1.0 else float_of_int !in_order /. float_of_int !total

let key_bounds t =
  let bounds = ref None in
  iter t (fun key _ ->
      bounds :=
        Some
          (match !bounds with
          | None -> (key, key)
          | Some (lo, hi) -> (min lo key, max hi key)));
  !bounds

let check_invariants t =
  let rec check index lo hi =
    match read_node t index with
    | Leaf lf ->
        for i = 0 to lf.n - 1 do
          let e = lf.entries.(i) in
          (match lo with
          | Some l when cmp_entry e l < 0 -> failwith "btree: entry below bound"
          | _ -> ());
          (match hi with
          | Some h when cmp_entry e h >= 0 -> failwith "btree: entry above bound"
          | _ -> ());
          if i > 0 && cmp_entry lf.entries.(i - 1) e >= 0 then
            failwith "btree: leaf out of order"
        done
    | Internal ino ->
        for i = 1 to ino.nk - 1 do
          if cmp_entry ino.seps.(i - 1) ino.seps.(i) >= 0 then
            failwith "btree: separators out of order"
        done;
        for i = 0 to ino.nk do
          let lo' = if i = 0 then lo else Some ino.seps.(i - 1) in
          let hi' = if i = ino.nk then hi else Some ino.seps.(i) in
          check ino.children.(i) lo' hi'
        done
  in
  (* Occupancy: every non-root node is at least half full. *)
  let rec occupancy index =
    match read_node t index with
    | Leaf lf ->
        if index <> t.root && lf.n < min_leaf then failwith "btree: underfull leaf"
    | Internal ino ->
        if index <> t.root && ino.nk < min_internal then
          failwith "btree: underfull internal node"
        else
          for i = 0 to ino.nk do
            occupancy ino.children.(i)
          done
  in
  occupancy t.root;
  check t.root None None;
  (* Every entry is reachable through the leaf chain. *)
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  if !n <> t.entries then failwith "btree: entry count mismatch"

(* Checkpoint support: the tree's volatile state is the root index and the
   entry count; everything else lives on pages (recovered by the log) or in
   the decoded-node cache (rebuilt on demand, and cleared on restore because
   restored page bytes must not be shadowed by stale decodes). *)

type state = { st_root : int; st_entries : int }

let checkpoint t = { st_root = t.root; st_entries = t.entries }

let restore t s =
  t.root <- s.st_root;
  t.entries <- s.st_entries;
  Hashtbl.reset t.cache

let drop_cache t = Hashtbl.reset t.cache
