(** Page-resident B+-trees over integer keys.

    O2 indexes arbitrary collections and stores object identifiers in the
    leaves ("both indexes are clustered and store only object identifiers in
    their leaves" — Section 5).  Nodes occupy one page each in a dedicated
    index file and are fetched through the same two-tier cache as data
    pages, so an index scan really does "read all the collection pages but
    also those of the index structure" (Section 4.2).

    Entries are (key, Rid) pairs ordered lexicographically, which makes
    duplicates unique internally; a key search is a range scan over all Rids
    carrying that key.  Whether the tree is *physically* clustered is not a
    flag but an emergent property of how key order correlates with Rid
    order — {!clustering_factor} measures it. *)

type t

(** [create stack ~name] builds an empty tree in a fresh file. *)
val create : Tb_storage.Cache_stack.t -> name:string -> t

val name : t -> string
val entry_count : t -> int

(** Pages allocated to the tree's file. *)
val page_count : t -> int

(** [insert t ~key ~rid] adds an entry; duplicate (key, rid) pairs are
    ignored. *)
val insert : t -> key:int -> rid:Tb_storage.Rid.t -> unit

(** [bulk_add t run] inserts every (key, rid) pair of [run] in sorted
    (key, rid) order — exactly equivalent, in both resulting tree and
    simulated charges, to sorting [run] and looping {!insert} over it.
    On an empty tree the host work is done by an append-only fast path
    along the remembered rightmost spine (the charges it replays are the
    per-entry descent's), so building from a sorted run costs O(n) host
    time instead of O(n · node size). *)
val bulk_add : t -> (int * Tb_storage.Rid.t) array -> unit

(** [bulk_build stack ~name run] is {!create} followed by {!bulk_add}. *)
val bulk_build :
  Tb_storage.Cache_stack.t -> name:string -> (int * Tb_storage.Rid.t) array -> t

(** [delete t ~key ~rid] removes the exact entry if present; returns whether
    it was found.  Underfull nodes borrow from or merge with a sibling, and
    the tree height shrinks when the root empties. *)
val delete : t -> key:int -> rid:Tb_storage.Rid.t -> bool

(** [search t ~key] is every Rid stored under [key], in ascending Rid
    order (entries live in the leaves in (key, rid) order and the walk
    collects them front-to-back in a single pass). *)
val search : t -> key:int -> Tb_storage.Rid.t list

(** [range t ?lo ?hi f] visits entries with [lo <= key < hi] in key order
    ([lo] unbounded-below when omitted, [hi] unbounded-above). *)
val range : t -> ?lo:int -> ?hi:int -> (int -> Tb_storage.Rid.t -> unit) -> unit

(** Visit every entry in key order. *)
val iter : t -> (int -> Tb_storage.Rid.t -> unit) -> unit

(** Fraction of adjacent leaf entries whose Rids are in physical order —
    1.0 for a perfectly clustered index, ~0 for a random key.  Walks the
    leaves. *)
val clustering_factor : t -> float

(** Smallest and largest key, or [None] when empty. Walks to the edges. *)
val key_bounds : t -> (int * int) option

(** Structural check for tests: ordering within and across nodes, separator
    consistency, half-full occupancy of every non-root node, reachability of
    every entry via the leaf chain.  Raises [Failure] on violation. *)
val check_invariants : t -> unit

(** {2 Checkpoint support} *)

(** The tree's volatile state: root page index and entry count.  Everything
    else is page bytes (the log's problem) or the decoded-node cache
    (rebuilt on demand). *)
type state

val checkpoint : t -> state

(** [restore t s] reinstates a checkpointed state and clears the decoded-node
    cache, so restored page bytes are never shadowed by stale decodes. *)
val restore : t -> state -> unit

(** Clear the decoded-node cache only (crash recovery of a winner: the
    structure is current but durable bytes were rewritten). *)
val drop_cache : t -> unit
