(* Tags. Integers are 4-byte two's complement (the paper counts 4 bytes per
   integer); references are 8 bytes (Rid encoding); strings and field names
   are u16-length-prefixed. *)

let tag_nil = 0
let tag_int = 1
let tag_real = 2
let tag_bool = 3
let tag_char = 4
let tag_string = 5
let tag_ref = 6
let tag_tuple = 7
let tag_set = 8
let tag_list = 9
let tag_big_set = 10

let rec encoded_size = function
  | Value.Nil -> 1
  | Value.Int _ -> 5
  | Value.Real _ -> 9
  | Value.Bool _ | Value.Char _ -> 2
  | Value.String s -> 3 + String.length s
  | Value.Ref _ | Value.Big_set _ -> 1 + Tb_storage.Rid.on_disk_bytes
  | Value.Tuple fields ->
      List.fold_left
        (fun acc (n, v) -> acc + 2 + String.length n + encoded_size v)
        3 fields
  | Value.Set xs | Value.List xs ->
      List.fold_left (fun acc v -> acc + encoded_size v) 5 xs

let encode v =
  let buf = Bytes.create (encoded_size v) in
  let rec write pos v =
    let tag t =
      Bytes.set_uint8 buf pos t;
      pos + 1
    in
    match v with
    | Value.Nil -> tag tag_nil
    | Value.Int i ->
        let pos = tag tag_int in
        Bytes.set_int32_le buf pos (Int32.of_int i);
        pos + 4
    | Value.Real r ->
        let pos = tag tag_real in
        Bytes.set_int64_le buf pos (Int64.bits_of_float r);
        pos + 8
    | Value.Bool b ->
        let pos = tag tag_bool in
        Bytes.set_uint8 buf pos (if b then 1 else 0);
        pos + 1
    | Value.Char c ->
        let pos = tag tag_char in
        Bytes.set buf pos c;
        pos + 1
    | Value.String s ->
        let pos = tag tag_string in
        Bytes.set_uint16_le buf pos (String.length s);
        Bytes.blit_string s 0 buf (pos + 2) (String.length s);
        pos + 2 + String.length s
    | Value.Ref rid ->
        let pos = tag tag_ref in
        Bytes.blit (Tb_storage.Rid.encode rid) 0 buf pos
          Tb_storage.Rid.on_disk_bytes;
        pos + Tb_storage.Rid.on_disk_bytes
    | Value.Big_set rid ->
        let pos = tag tag_big_set in
        Bytes.blit (Tb_storage.Rid.encode rid) 0 buf pos
          Tb_storage.Rid.on_disk_bytes;
        pos + Tb_storage.Rid.on_disk_bytes
    | Value.Tuple fields ->
        let pos = tag tag_tuple in
        Bytes.set_uint16_le buf pos (List.length fields);
        List.fold_left
          (fun pos (n, v) ->
            Bytes.set_uint16_le buf pos (String.length n);
            Bytes.blit_string n 0 buf (pos + 2) (String.length n);
            write (pos + 2 + String.length n) v)
          (pos + 2) fields
    | Value.Set xs ->
        let pos = tag tag_set in
        Bytes.set_int32_le buf pos (Int32.of_int (List.length xs));
        List.fold_left write (pos + 4) xs
    | Value.List xs ->
        let pos = tag tag_list in
        Bytes.set_int32_le buf pos (Int32.of_int (List.length xs));
        List.fold_left write (pos + 4) xs
  in
  let final = write 0 v in
  assert (final = Bytes.length buf);
  buf

let decode b ~pos =
  let rec read pos =
    if pos >= Bytes.length b then invalid_arg "Codec.decode: truncated";
    let tag = Bytes.get_uint8 b pos in
    let pos = pos + 1 in
    if tag = tag_nil then (Value.Nil, pos)
    else if tag = tag_int then
      (Value.Int (Int32.to_int (Bytes.get_int32_le b pos)), pos + 4)
    else if tag = tag_real then
      (Value.Real (Int64.float_of_bits (Bytes.get_int64_le b pos)), pos + 8)
    else if tag = tag_bool then (Value.Bool (Bytes.get_uint8 b pos <> 0), pos + 1)
    else if tag = tag_char then (Value.Char (Bytes.get b pos), pos + 1)
    else if tag = tag_string then begin
      let len = Bytes.get_uint16_le b pos in
      (Value.String (Bytes.sub_string b (pos + 2) len), pos + 2 + len)
    end
    else if tag = tag_ref then
      (Value.Ref (Tb_storage.Rid.decode b ~pos), pos + Tb_storage.Rid.on_disk_bytes)
    else if tag = tag_big_set then
      ( Value.Big_set (Tb_storage.Rid.decode b ~pos),
        pos + Tb_storage.Rid.on_disk_bytes )
    else if tag = tag_tuple then begin
      let n = Bytes.get_uint16_le b pos in
      let rec fields pos acc = function
        | 0 -> (Value.Tuple (List.rev acc), pos)
        | k ->
            let len = Bytes.get_uint16_le b pos in
            let name = Bytes.sub_string b (pos + 2) len in
            let v, pos = read (pos + 2 + len) in
            fields pos ((name, v) :: acc) (k - 1)
      in
      fields (pos + 2) [] n
    end
    else if tag = tag_set || tag = tag_list then begin
      let n = Int32.to_int (Bytes.get_int32_le b pos) in
      let rec elems pos acc = function
        | 0 ->
            let xs = List.rev acc in
            ((if tag = tag_set then Value.Set xs else Value.List xs), pos)
        | k ->
            let v, pos = read pos in
            elems pos (v :: acc) (k - 1)
      in
      elems (pos + 4) [] n
    end
    else invalid_arg "Codec.decode: bad tag"
  in
  read pos

(* Walk over one encoded value without materializing it: the backbone of
   the lazy record view, which only needs the *positions* of a record's
   fields until an attribute is actually read. *)
let rec skip b ~pos =
  if pos >= Bytes.length b then invalid_arg "Codec.skip: truncated";
  let tag = Bytes.get_uint8 b pos in
  let pos = pos + 1 in
  if tag = tag_nil then pos
  else if tag = tag_int then pos + 4
  else if tag = tag_real then pos + 8
  else if tag = tag_bool || tag = tag_char then pos + 1
  else if tag = tag_string then pos + 2 + Bytes.get_uint16_le b pos
  else if tag = tag_ref || tag = tag_big_set then
    pos + Tb_storage.Rid.on_disk_bytes
  else if tag = tag_tuple then begin
    let n = Bytes.get_uint16_le b pos in
    let pos = ref (pos + 2) in
    for _ = 1 to n do
      let len = Bytes.get_uint16_le b !pos in
      pos := skip b ~pos:(!pos + 2 + len)
    done;
    !pos
  end
  else if tag = tag_set || tag = tag_list then begin
    let n = Int32.to_int (Bytes.get_int32_le b pos) in
    let pos = ref (pos + 4) in
    for _ = 1 to n do
      pos := skip b ~pos:!pos
    done;
    !pos
  end
  else invalid_arg "Codec.skip: bad tag"

let decode_exn b =
  let v, final = decode b ~pos:0 in
  if final <> Bytes.length b then invalid_arg "Codec.decode_exn: trailing bytes";
  v
