(** Binary encoding of values into heap-file records.

    The encoding follows the paper's size arithmetic: 4 bytes per integer,
    8 per object reference or address (Section 2), strings as length-prefixed
    bytes.  Record sizes therefore reproduce the page counts the paper
    reports (~30 providers / ~57 patients per 4K page). *)

(** [encoded_size v] is the exact number of bytes [encode] will produce. *)
val encoded_size : Value.t -> int

val encode : Value.t -> bytes

(** [decode b ~pos] reads one value starting at [pos] and returns it with
    the position one past its encoding.
    Raises [Invalid_argument] on malformed input. *)
val decode : bytes -> pos:int -> Value.t * int

(** [skip b ~pos] returns the position one past the value starting at
    [pos] without allocating it — how the lazy record view finds field
    offsets.  Raises [Invalid_argument] on malformed input. *)
val skip : bytes -> pos:int -> int

(** [decode_exn b] decodes a whole buffer holding exactly one value. *)
val decode_exn : bytes -> Value.t

(** {2 Wire tags}

    The one-byte type tag that opens every encoded value, exported so the
    packed execution path ({!Tb_query.Packed}) can compare encoded values
    in place without decoding them. *)

val tag_nil : int
val tag_int : int
val tag_real : int
val tag_bool : int
val tag_char : int
val tag_string : int
val tag_ref : int
val tag_tuple : int
val tag_set : int
val tag_list : int
val tag_big_set : int
