module Rid = Tb_storage.Rid
module Heap_file = Tb_storage.Heap_file

(* A catalog checkpoint: the volatile state that pages alone cannot
   recover.  Captured after every commit (and, for a commit in flight, at
   commit-record force time), reinstated by rollback and crash recovery.
   Heap files, trees and index definitions are shared mutable objects;
   the checkpoint records the scalars needed to rewind them. *)
type ckpt = {
  ck_class_files : (string * Heap_file.t) list;
  ck_index_list : Index_def.t list;
  ck_next_index_id : int;
  ck_cardinalities : (string * int) list;
  ck_files : (int * Heap_file.t * int) list; (* id, heap, tail page *)
  ck_btrees : (Btree.t * Btree.state) list;
  ck_page_counts : int array; (* per disk file, in file-id order *)
}

type t = {
  sim : Tb_sim.Sim.t;
  stack : Tb_storage.Cache_stack.t;
  schema : Schema.t;
  handles : Handle_table.t;
  txn : Transaction.t;
  collections : Heap_file.t;
  files_by_id : (int, Heap_file.t) Hashtbl.t;
  mutable class_files : (string * Heap_file.t) list;
  mutable index_list : Index_def.t list;
  mutable next_index_id : int;
  cardinalities : (string, int ref) Hashtbl.t;
  mutable commit_seq : int;
  mutable checkpoint : ckpt;
  mutable pending_ckpt : ckpt option;
  mutable on_commit : (seq:int -> unit) option;
}

let register_file t heap =
  Hashtbl.replace t.files_by_id (Heap_file.file_id heap) heap;
  heap

let take_ckpt t =
  {
    ck_class_files = t.class_files;
    ck_index_list = t.index_list;
    ck_next_index_id = t.next_index_id;
    ck_cardinalities =
      Hashtbl.fold (fun cls r acc -> (cls, !r) :: acc) t.cardinalities [];
    ck_files =
      Hashtbl.fold
        (fun id hf acc -> (id, hf, Heap_file.tail hf) :: acc)
        t.files_by_id [];
    ck_btrees =
      List.map
        (fun ix -> (ix.Index_def.tree, Btree.checkpoint ix.Index_def.tree))
        t.index_list;
    ck_page_counts = Tb_storage.Disk.page_counts (Tb_storage.Cache_stack.disk t.stack);
  }

(* Reinstate a checkpoint: drop files and pages created past it, rewind
   the catalog scalars, reset tree roots and decoded-node caches. *)
let install_ckpt t c =
  let disk = Tb_storage.Cache_stack.disk t.stack in
  Tb_storage.Disk.truncate_files disk ~keep:(Array.length c.ck_page_counts);
  Array.iteri
    (fun file pages -> Tb_storage.Disk.truncate_file disk ~file ~pages)
    c.ck_page_counts;
  t.class_files <- c.ck_class_files;
  t.index_list <- c.ck_index_list;
  t.next_index_id <- c.ck_next_index_id;
  Hashtbl.reset t.cardinalities;
  List.iter
    (fun (cls, n) -> Hashtbl.replace t.cardinalities cls (ref n))
    c.ck_cardinalities;
  Hashtbl.reset t.files_by_id;
  List.iter
    (fun (id, hf, tail) ->
      Hashtbl.replace t.files_by_id id hf;
      Heap_file.set_tail hf tail)
    c.ck_files;
  List.iter (fun (tree, st) -> Btree.restore tree st) c.ck_btrees

let create sim ~schema ~server_pages ~client_pages
    ?(handle_kind = Tb_sim.Cost_model.Fat) ?(zombie_limit = 8192)
    ?(txn_mode = Transaction.Standard) ?(uncommitted_limit = 50_000) () =
  let disk = Tb_storage.Disk.create sim in
  let stack = Tb_storage.Cache_stack.create sim disk ~server_pages ~client_pages in
  let t =
    {
      sim;
      stack;
      schema;
      handles = Handle_table.create sim ~kind:handle_kind ~zombie_limit;
      txn = Transaction.create sim txn_mode ~uncommitted_limit;
      collections = Heap_file.create stack ~name:"__collections";
      files_by_id = Hashtbl.create 16;
      class_files = [];
      index_list = [];
      next_index_id = 0;
      cardinalities = Hashtbl.create 16;
      commit_seq = 0;
      checkpoint =
        {
          ck_class_files = [];
          ck_index_list = [];
          ck_next_index_id = 0;
          ck_cardinalities = [];
          ck_files = [];
          ck_btrees = [];
          ck_page_counts = [||];
        };
      pending_ckpt = None;
      on_commit = None;
    }
  in
  ignore (register_file t t.collections);
  (* The WAL observes every write fetch; transaction-off mode logs
     nothing, exactly as O2's loading mode drops the log. *)
  Tb_storage.Cache_stack.set_write_observer stack
    (Some
       (fun pid page ->
         if Transaction.mode t.txn = Transaction.Standard then
           Wal.note_touch (Transaction.wal t.txn) pid page));
  t.checkpoint <- take_ckpt t;
  t

let sim t = t.sim
let schema t = t.schema
let stack t = t.stack
let txn t = t.txn
let handles t = t.handles
let collections_file t = t.collections
let new_file t ~name = register_file t (Heap_file.create t.stack ~name)

let bind_class t ~cls file =
  ignore (Schema.find_class t.schema cls);
  t.class_files <- (cls, file) :: List.remove_assoc cls t.class_files;
  if not (Hashtbl.mem t.cardinalities cls) then
    Hashtbl.replace t.cardinalities cls (ref 0)

let class_file t ~cls =
  match List.assoc_opt cls t.class_files with
  | Some f -> f
  | None -> raise Not_found

let heap_of_rid t (rid : Rid.t) =
  match Hashtbl.find_opt t.files_by_id rid.Rid.file with
  | Some heap -> heap
  | None -> invalid_arg "Database: rid belongs to no registered file"

(* Spill oversized inline collections into the collection file. *)
let rec spill t v =
  match v with
  | Value.Tuple fields ->
      Value.Tuple (List.map (fun (n, x) -> (n, spill t x)) fields)
  | Value.Set xs when Codec.encoded_size v > Big_collection.spill_threshold ->
      Value.Big_set (Big_collection.create t.collections xs)
  | Value.Nil | Value.Int _ | Value.Real _ | Value.Bool _ | Value.Char _
  | Value.String _ | Value.Ref _ | Value.Set _ | Value.List _
  | Value.Big_set _ ->
      v

(* Objects are encoded schema-positionally: the header carries the class
   id, and attribute values follow in schema order with no field names —
   which is how a 60-byte Patient stays 60 bytes (the paper's size
   arithmetic, Section 2). *)
let encode_object schema header value =
  let cls = Schema.class_of_id schema (Obj_header.class_id header) in
  let hb = Obj_header.encode header in
  let fields =
    List.map (fun (attr, _) -> Codec.encode (Value.field value attr)) cls.Schema.attrs
  in
  let size = List.fold_left (fun acc b -> acc + Bytes.length b) (Bytes.length hb) fields in
  let b = Bytes.create size in
  Bytes.blit hb 0 b 0 (Bytes.length hb);
  let pos = ref (Bytes.length hb) in
  List.iter
    (fun fb ->
      Bytes.blit fb 0 b !pos (Bytes.length fb);
      pos := !pos + Bytes.length fb)
    fields;
  b

let decode_object schema body =
  let header, pos = Obj_header.decode body ~pos:0 in
  let cls = Schema.class_of_id schema (Obj_header.class_id header) in
  let pos = ref pos in
  let fields =
    List.map
      (fun (attr, _) ->
        let v, pos' = Codec.decode body ~pos:!pos in
        pos := pos';
        (attr, v))
      cls.Schema.attrs
  in
  (header, Value.Tuple fields)

let class_ty t cls =
  Schema.TTuple (Schema.find_class t.schema cls).Schema.attrs

let indexes_on t cls =
  List.filter (fun ix -> String.equal ix.Index_def.cls cls) t.index_list

let key_of t value attr =
  ignore t;
  match Value.field value attr with
  | Value.Int k -> k
  | _ -> invalid_arg "Database: indexed attribute is not an integer"

let insert_object t ~cls ?(indexed = false) value =
  let heap = class_file t ~cls in
  if not (Schema.conforms t.schema (class_ty t cls) value) then
    invalid_arg ("Database.insert_object: value does not conform to " ^ cls);
  let value = spill t value in
  let member_of = indexes_on t cls in
  let slotted = indexed || (match member_of with [] -> false | _ -> true) in
  let header =
    List.fold_left
      (fun h ix -> Obj_header.add_index h ix.Index_def.id)
      (Obj_header.create ~class_id:(Schema.class_id t.schema cls) ~indexed:slotted)
      member_of
  in
  let body = encode_object t.schema header value in
  let rid = Heap_file.insert heap body in
  Transaction.on_write t.txn ~bytes:(Bytes.length body);
  (match Hashtbl.find_opt t.cardinalities cls with
  | Some r -> incr r
  | None -> Hashtbl.replace t.cardinalities cls (ref 1));
  List.iter
    (fun ix ->
      Btree.insert ix.Index_def.tree ~key:(key_of t value ix.Index_def.attr) ~rid)
    member_of;
  rid

let read_object t rid = decode_object t.schema (Heap_file.read (heap_of_rid t rid) rid)

(* Packed load: locate the record in the buffer pool and note where its
   attributes start — no body copy, no offsets table, no header slots array.
   Attribute reads skip-walk the page bytes from [p_body] on demand.  The
   charge sequence is identical to the old copy-out load (locate fetches
   the same pages [Heap_file.read] did); only host work changes. *)
let acquire t rid =
  Handle_table.acquire t.handles rid ~load:(fun () ->
      let page, slot, pos, _len = Heap_file.locate (heap_of_rid t rid) rid in
      let span_off, _ = Tb_storage.Page_layout.record_span page slot in
      let buf = Tb_storage.Page_layout.buffer page in
      let class_id = Obj_header.peek_class_id buf ~pos in
      let body = Obj_header.skip buf ~pos in
      ( class_id,
        Handle.Packed
          {
            Handle.p_page = page;
            p_slot = slot;
            p_delta = body - span_off;
            p_version = Tb_storage.Page_layout.version page;
            p_body = body;
          } ))

let unref t h = Handle_table.unreference t.handles h

(* Revalidate a packed handle against its page and return the buffer.  The
   page object stays GC-alive (the handle references it) with frozen bytes
   even if evicted from the pool; the only way its contents move is in-page
   compaction, which record_span re-resolves.  A same-rid update installs a
   Whole repr via [update_object]'s resident-coherence hook before it could
   be observed here, so the record body itself is unchanged whenever this
   runs. *)
let packed_buf (p : Handle.packed) =
  let v = Tb_storage.Page_layout.version p.Handle.p_page in
  if v <> p.Handle.p_version then begin
    let off, _ = Tb_storage.Page_layout.record_span p.Handle.p_page p.Handle.p_slot in
    p.Handle.p_body <- off + p.Handle.p_delta;
    p.Handle.p_version <- v
  end;
  Tb_storage.Page_layout.buffer p.Handle.p_page

let get_att_slot t h slot =
  Tb_sim.Sim.charge_get_att t.sim;
  match h.Handle.repr with
  | Handle.Packed p ->
      let buf = packed_buf p in
      let pos = ref p.Handle.p_body in
      for _ = 1 to slot do
        pos := Codec.skip buf ~pos:!pos
      done;
      fst (Codec.decode buf ~pos:!pos)
  | Handle.Whole (Value.Tuple fields) -> snd (List.nth fields slot)
  | Handle.Whole _ -> invalid_arg "Database.get_att_slot: not a tuple"

(* Charge-free peek at a packed handle's record bytes: [Some (buf, body)]
   with [body] the offset of the first attribute, or [None] when the handle
   was materialized (e.g. by an update) and callers must take the decoded
   path. *)
let packed_body (_t : t) h =
  match h.Handle.repr with
  | Handle.Packed p -> Some (packed_buf p, p.Handle.p_body)
  | Handle.Whole _ -> None

let with_record_bytes t rid ~f =
  Heap_file.with_record_bytes (heap_of_rid t rid) rid ~f

let attr_slot t ~cls attr =
  match Schema.attr_slot t.schema ~class_id:(Schema.class_id t.schema cls) ~attr with
  | slot -> slot
  | exception Not_found -> invalid_arg ("Database.attr_slot: no field " ^ attr)

let get_att t h attr =
  match Schema.attr_slot t.schema ~class_id:h.Handle.class_id ~attr with
  | slot -> get_att_slot t h slot
  | exception Not_found ->
      Tb_sim.Sim.charge_get_att t.sim;
      invalid_arg ("Value.field: no field " ^ attr)

(* Materialize a Handle's full value (slow path: updates, tests). *)
let handle_value t h =
  match h.Handle.repr with
  | Handle.Whole v -> v
  | Handle.Packed p ->
      let cls = Schema.class_of_id t.schema h.Handle.class_id in
      let buf = packed_buf p in
      let pos = ref p.Handle.p_body in
      Value.Tuple
        (List.map
           (fun (name, _) ->
             let v, pos' = Codec.decode buf ~pos:!pos in
             pos := pos';
             (name, v))
           cls.Schema.attrs)

let class_name t h = (Schema.class_of_id t.schema h.Handle.class_id).Schema.cls_name

let update_object t rid value =
  let heap = heap_of_rid t rid in
  let header, old_value = decode_object t.schema (Heap_file.read heap rid) in
  let cls = (Schema.class_of_id t.schema (Obj_header.class_id header)).Schema.cls_name in
  if not (Schema.conforms t.schema (class_ty t cls) value) then
    invalid_arg ("Database.update_object: value does not conform to " ^ cls);
  let value = spill t value in
  List.iter
    (fun ix ->
      let old_key = key_of t old_value ix.Index_def.attr in
      let new_key = key_of t value ix.Index_def.attr in
      if old_key <> new_key then begin
        ignore (Btree.delete ix.Index_def.tree ~key:old_key ~rid);
        Btree.insert ix.Index_def.tree ~key:new_key ~rid
      end)
    (indexes_on t cls);
  let body = encode_object t.schema header value in
  Heap_file.update heap rid body;
  Transaction.on_write t.txn ~bytes:(Bytes.length body);
  (* Keep any resident handle coherent. *)
  match Handle_table.find_resident t.handles rid with
  | Some h -> Handle.set_value h value
  | None -> ()

let delete_object t rid =
  let heap = heap_of_rid t rid in
  let header, value = decode_object t.schema (Heap_file.read heap rid) in
  let cls = (Schema.class_of_id t.schema (Obj_header.class_id header)).Schema.cls_name in
  List.iter
    (fun ix ->
      ignore (Btree.delete ix.Index_def.tree ~key:(key_of t value ix.Index_def.attr) ~rid))
    (indexes_on t cls);
  Heap_file.delete heap rid;
  Transaction.on_write t.txn ~bytes:16;
  (match Hashtbl.find_opt t.cardinalities cls with
  | Some r -> decr r
  | None -> ());
  ()

let iter_set t v f =
  match v with
  | Value.Set xs | Value.List xs -> List.iter f xs
  | Value.Big_set head -> Big_collection.iter t.collections head f
  | Value.Nil -> ()
  | Value.Int _ | Value.Real _ | Value.Bool _ | Value.Char _ | Value.String _
  | Value.Ref _ | Value.Tuple _ ->
      invalid_arg "Database.iter_set: not a collection"

let set_length t v =
  let n = ref 0 in
  iter_set t v (fun _ -> incr n);
  !n

(* Pull-style extent scan: the executor's Seq_scan operator advances this
   one Rid at a time.  A page is fetched (and charged) exactly when the
   cursor first needs a Rid from it; the per-page record walk is
   chargeless, so the charge order is identical to the push-style
   [scan_extent] below. *)
type cursor = {
  c_heap : Heap_file.t;
  c_want : int;
  c_pages : int;
  mutable c_page : int;
  mutable c_pending : Rid.t list;
}

let scan_cursor t ~cls =
  let heap = class_file t ~cls in
  {
    c_heap = heap;
    c_want = Schema.class_id t.schema cls;
    c_pages = Heap_file.page_count heap;
    c_page = 0;
    c_pending = [];
  }

(* Fill [c_pending] from the next page with matching records; false at end
   of extent.  The header peek is on the page bytes in place — no body
   copy, no header decode. *)
let rec cursor_fill cur =
  if cur.c_page >= cur.c_pages then false
  else begin
    let acc = ref [] in
    Heap_file.iter_page_spans cur.c_heap ~page:cur.c_page
      (fun rid buf pos _len ->
        if
          Obj_header.peek_class_id buf ~pos = cur.c_want
          && not (Obj_header.peek_deleted buf ~pos)
        then acc := rid :: !acc);
    cur.c_page <- cur.c_page + 1;
    match List.rev !acc with
    | [] -> cursor_fill cur
    | pending ->
        cur.c_pending <- pending;
        true
  end

let cursor_next cur =
  match cur.c_pending with
  | rid :: rest ->
      cur.c_pending <- rest;
      Some rid
  | [] ->
      if cursor_fill cur then begin
        match cur.c_pending with
        | rid :: rest ->
            cur.c_pending <- rest;
            Some rid
        | [] -> assert false
      end
      else None

(* Batched variant: all matching Rids of the next non-empty page at once.
   Deliberately page-bounded — merging across pages would fetch page N+1
   before the per-row work on page N's rows, reordering the cache access
   sequence under small pools. *)
let cursor_next_page cur =
  match cur.c_pending with
  | _ :: _ as pending ->
      cur.c_pending <- [];
      Some pending
  | [] ->
      if cursor_fill cur then begin
        let pending = cur.c_pending in
        cur.c_pending <- [];
        Some pending
      end
      else None

let scan_extent t ~cls f =
  let cur = scan_cursor t ~cls in
  let rec go () =
    match cursor_next cur with
    | Some rid ->
        f rid;
        go ()
    | None -> ()
  in
  go ()

let cardinality t ~cls =
  match Hashtbl.find_opt t.cardinalities cls with Some r -> !r | None -> 0

let extent_pages t ~cls = Heap_file.page_count (class_file t ~cls)

(* Commit: force the commit record (standard mode), capture the catalog
   image the commit leads to, flush dirty pages, truncate the log, and
   publish the new checkpoint.  The capture happens between force and
   flush so a crash during the flush — a winner, its commit record already
   durable — can recover the catalog that matches the replayed pages. *)
let commit t =
  let wal = Transaction.wal t.txn in
  (match Transaction.mode t.txn with
  | Transaction.Standard -> Wal.force wal
  | Transaction.Load_off -> Wal.discard wal);
  t.pending_ckpt <- Some (take_ckpt t);
  Tb_storage.Cache_stack.flush t.stack;
  Transaction.reset t.txn;
  Wal.checkpoint wal;
  (match t.pending_ckpt with Some c -> t.checkpoint <- c | None -> ());
  t.pending_ckpt <- None;
  t.commit_seq <- t.commit_seq + 1;
  match t.on_commit with None -> () | Some f -> f ~seq:t.commit_seq

let create_index t ~name ~cls ~attr =
  (match Schema.attr_type t.schema ~cls ~attr with
  | Schema.TInt -> ()
  | _ -> invalid_arg "Database.create_index: only integer keys are supported");
  let id = t.next_index_id in
  t.next_index_id <- id + 1;
  let tree = Btree.create t.stack ~name:("__idx_" ^ name) in
  let ix = Index_def.make ~id ~name ~cls ~attr ~tree in
  let heap = class_file t ~cls in
  let since_commit = ref 0 in
  (* Pass 1: rewrite every object header and collect the (key, rid) run in
     scan order. *)
  let run = ref [] in
  scan_extent t ~cls (fun rid ->
      let header, value = decode_object t.schema (Heap_file.read heap rid) in
      run := (key_of t value attr, rid) :: !run;
      (* Record membership in the object header.  Objects created without
         slot space must be rewritten with a bigger header — which is what
         made the authors' first post-load index build take hours and
         destroyed their physical organizations. *)
      let header' =
        Obj_header.add_index (Obj_header.with_slots header) id
      in
      let body = encode_object t.schema header' value in
      Heap_file.update heap rid body;
      Transaction.on_write t.txn ~bytes:(Bytes.length body);
      (* An index build touches every object; under standard transactions
         it must commit periodically or hit the Section 3.2 "out of
         memory". *)
      incr since_commit;
      if Transaction.mode t.txn = Transaction.Standard && !since_commit >= 10_000
      then begin
        commit t;
        since_commit := 0
      end);
  (* Pass 2: build the tree.  The emergent tree shape (and with it every
     query-time charge) is a function of insertion order, so an unsorted run
     must be inserted in scan order exactly as before; when the scan order
     is already sorted — the clustered organizations of Section 2 — the
     per-entry inserts and the bulk append produce the same tree for the
     same charges, and the bulk path's host cost is O(n). *)
  let run = Array.of_list (List.rev !run) in
  let sorted =
    let ok = ref true in
    for i = 0 to Array.length run - 2 do
      let k1, r1 = run.(i) and k2, r2 = run.(i + 1) in
      let c = Int.compare k1 k2 in
      if c > 0 || (c = 0 && Rid.compare r1 r2 >= 0) then ok := false
    done;
    !ok
  in
  if sorted then Btree.bulk_add tree run
  else Array.iter (fun (key, rid) -> Btree.insert tree ~key ~rid) run;
  Index_def.refresh_stats ix;
  t.index_list <- t.index_list @ [ ix ];
  ix

let find_index t ~cls ~attr =
  List.find_opt
    (fun ix ->
      String.equal ix.Index_def.cls cls && String.equal ix.Index_def.attr attr)
    t.index_list

let indexes t = t.index_list

let analyze ?(buckets = 64) t =
  List.iter (fun ix -> Index_def.build_histogram ix ~buckets) t.index_list

(* Rollback: restore durable before-images from the log, drop the volatile
   working pages and client handles, rewind the catalog to the last
   checkpoint.  Transaction-off mode keeps no log, so there is nothing to
   roll back to — stolen pages may already be on disk (the price the paper's
   loading mode pays for its speed). *)
let rollback t =
  (match Transaction.mode t.txn with
  | Transaction.Load_off ->
      invalid_arg "Database.rollback: transaction-off mode keeps no log"
  | Transaction.Standard -> ());
  let undone = Transaction.abort t.txn t.stack in
  Handle_table.discard t.handles;
  install_ckpt t t.checkpoint;
  t.pending_ckpt <- None;
  undone

(* {2 Transaction handles} *)

type txn_handle = { h_db : t; mutable resolved : bool }

let begin_txn t = { h_db = t; resolved = false }

let commit_txn h =
  if h.resolved then invalid_arg "Database.commit_txn: already resolved";
  h.resolved <- true;
  commit h.h_db

let abort_txn h =
  if h.resolved then invalid_arg "Database.abort_txn: already resolved";
  h.resolved <- true;
  ignore (rollback h.h_db : int)

let with_txn t f =
  let h = begin_txn t in
  match f t with
  | v ->
      commit_txn h;
      v
  | exception Tb_storage.Fault.Crash ->
      (* A crash is not an application error: nothing volatile survives to
         abort with.  Leave recovery to [crash_and_recover]. *)
      h.resolved <- true;
      raise Tb_storage.Fault.Crash
  | exception e ->
      if not h.resolved then abort_txn h;
      raise e

(* {2 Faults and crash recovery} *)

let set_fault t f =
  Tb_storage.Cache_stack.set_fault t.stack f;
  Wal.set_fault (Transaction.wal t.txn) f

let commit_seq t = t.commit_seq
let set_commit_hook t hook = t.on_commit <- hook

let durable_fingerprint t =
  Tb_storage.Disk.durable_digest (Tb_storage.Cache_stack.disk t.stack)

let durable_pages t =
  Tb_storage.Disk.total_pages (Tb_storage.Cache_stack.disk t.stack)

type recovery = {
  outcome : [ `Winner | `Loser ];
  torn_pages : int;
  redone : int;
  undone : int;
}

(* Restart after a crash.  Volatile state (both cache tiers, client
   handles, decoded nodes) is gone by definition; the durable images plus
   the log are the whole truth.  The log holds at most one transaction
   (commits checkpoint it), so recovery is a single decision: if the
   commit record became durable, replay the after-images and install the
   catalog captured at force time; otherwise restore the before-images,
   truncate pages and files the loser created, and rewind the catalog.
   Checksum verification brackets the pass: torn pages found before must
   be healed, and none may survive. *)
let crash_and_recover t =
  let disk = Tb_storage.Cache_stack.disk t.stack in
  let wal = Transaction.wal t.txn in
  Tb_storage.Cache_stack.set_fault t.stack None;
  Wal.set_fault wal None;
  Tb_storage.Cache_stack.drop t.stack;
  Handle_table.discard t.handles;
  let torn = Tb_storage.Disk.verify disk in
  let outcome, redone, undone =
    if Wal.commit_durable wal then begin
      let redone = Wal.redo wal disk in
      (match t.pending_ckpt with
      | Some c -> t.checkpoint <- c
      | None ->
          failwith "Database.crash_and_recover: winner without a checkpoint");
      install_ckpt t t.checkpoint;
      t.commit_seq <- t.commit_seq + 1;
      (`Winner, redone, 0)
    end
    else begin
      let undone = Wal.undo wal disk in
      install_ckpt t t.checkpoint;
      (`Loser, 0, undone)
    end
  in
  Wal.discard wal;
  Transaction.reset t.txn;
  t.pending_ckpt <- None;
  (match Tb_storage.Disk.verify disk with
  | [] -> ()
  | _ :: _ ->
      failwith "Database.crash_and_recover: torn page survived recovery");
  { outcome; torn_pages = List.length torn; redone; undone }

let cold_restart t =
  Handle_table.discard t.handles;
  Tb_storage.Cache_stack.clear t.stack
