(** The database façade: schema + files + objects + handles + indexes.

    One [Database.t] is one simulated O2 instance: a disk, a two-tier cache
    stack, a handle table, a transaction context and a catalog of class
    files and indexes.  The loader decides which classes share which heap
    files — that choice *is* the physical organization (class clustering,
    random, composition) of Figure 2. *)

type t

val create :
  Tb_sim.Sim.t ->
  schema:Schema.t ->
  server_pages:int ->
  client_pages:int ->
  ?handle_kind:Tb_sim.Cost_model.handle_kind ->
  ?zombie_limit:int ->
  ?txn_mode:Transaction.mode ->
  ?uncommitted_limit:int ->
  unit ->
  t

val sim : t -> Tb_sim.Sim.t
val schema : t -> Schema.t
val stack : t -> Tb_storage.Cache_stack.t
val txn : t -> Transaction.t
val handles : t -> Handle_table.t

(** The shared file where spilled collections live. *)
val collections_file : t -> Tb_storage.Heap_file.t

(** {2 Files and classes} *)

(** [new_file t ~name] allocates and registers a heap file. *)
val new_file : t -> name:string -> Tb_storage.Heap_file.t

(** [bind_class t ~cls file] declares that objects of [cls] are created in
    [file]. Several classes may share a file (random / composition
    clustering). *)
val bind_class : t -> cls:string -> Tb_storage.Heap_file.t -> unit

(** Raises [Not_found] when the class is unbound. *)
val class_file : t -> cls:string -> Tb_storage.Heap_file.t

(** {2 Objects} *)

(** [insert_object t ~cls value] creates a persistent object and returns its
    physical identifier.  Sets too large for a page are spilled to the
    collection file.  [indexed] provisions index slots in the object header
    even when no index exists yet (the documented way to avoid the
    first-index reallocation).  Raises [Invalid_argument] if [value] does
    not conform to the class. *)
val insert_object : t -> cls:string -> ?indexed:bool -> Value.t -> Tb_storage.Rid.t

(** Low-level read: header and value, bypassing the handle machinery
    (charges only the page fetches). *)
val read_object : t -> Tb_storage.Rid.t -> Obj_header.t * Value.t

(** [acquire t rid] yields the object's Handle (see {!Handle_table}). *)
val acquire : t -> Tb_storage.Rid.t -> Handle.t

val unref : t -> Handle.t -> unit

(** [get_att t h attr] reads one attribute through a Handle, charging the
    per-attribute CPU cost of Figure 8's [get_att]. *)
val get_att : t -> Handle.t -> string -> Value.t

(** [attr_slot t ~cls attr] resolves an attribute name to its schema slot
    once; the slot then feeds {!get_att_slot} on the hot path.  Raises
    [Invalid_argument] for an unknown attribute. *)
val attr_slot : t -> cls:string -> string -> int

(** [get_att_slot t h slot] is {!get_att} with the name already resolved:
    same simulated charge, attribute decoded in place off the handle's
    page bytes. *)
val get_att_slot : t -> Handle.t -> int -> Value.t

(** [packed_body t h] is [Some (buf, pos)] — the handle's record bytes in
    place, [pos] at the first attribute — when the handle is packed, or
    [None] when it was materialized (e.g. by an update) and the caller must
    use {!get_att_slot}/{!handle_value} instead.  Charge-free; the packed
    execution path ({!Tb_query.Packed}) evaluates on these bytes. *)
val packed_body : t -> Handle.t -> (bytes * int) option

(** [with_record_bytes t rid ~f] runs [f buf ~pos ~len] over the record's
    body bytes in place, pinning the page for the duration of [f] and
    charging exactly what the Handle-path page access would (one cache
    fetch per page touched, forwarding hops included).  [f] must not
    mutate the buffer. *)
val with_record_bytes :
  t -> Tb_storage.Rid.t -> f:(bytes -> pos:int -> len:int -> 'a) -> 'a

(** [handle_value t h] materializes the Handle's full value (slow path —
    tests and updates; queries should use {!get_att_slot}). *)
val handle_value : t -> Handle.t -> Value.t

val class_name : t -> Handle.t -> string

(** [update_object t rid value] rewrites the object and maintains its
    indexes. *)
val update_object : t -> Tb_storage.Rid.t -> Value.t -> unit

val delete_object : t -> Tb_storage.Rid.t -> unit

(** {2 Collections} *)

(** [iter_set t v f] iterates an inline [Set]/[List] or a spilled [Big_set]
    uniformly. *)
val iter_set : t -> Value.t -> (Value.t -> unit) -> unit

val set_length : t -> Value.t -> int

(** {2 Indexes} *)

(** [create_index t ~name ~cls ~attr] builds a B+-tree over the class
    extent.  Objects created without index slots are reallocated on disk to
    gain them — the Section 3.2 catastrophe; objects created with
    [~indexed:true] just get their membership recorded. *)
val create_index : t -> name:string -> cls:string -> attr:string -> Index_def.t

val find_index : t -> cls:string -> attr:string -> Index_def.t option
val indexes : t -> Index_def.t list

(** [analyze t] rebuilds optimizer statistics (key bounds, clustering
    factors, equi-width histograms) for every index — the ANALYZE the
    paper's cost-model project called for. *)
val analyze : ?buckets:int -> t -> unit

(** {2 Extents} *)

(** [scan_extent t ~cls f] visits the Rids of every live object of [cls] in
    physical order, fetching data pages as it goes.  Under shared-file
    organizations this reads pages holding other classes too — exactly the
    composition-clustering tax of Section 5.3. *)
val scan_extent : t -> cls:string -> (Tb_storage.Rid.t -> unit) -> unit

(** Pull-style extent scan for the executor's Seq_scan operator.  A data
    page is fetched (and charged) exactly when the cursor first needs a
    Rid from it, so driving a cursor to exhaustion produces the same
    charge sequence as {!scan_extent}. *)
type cursor

val scan_cursor : t -> cls:string -> cursor
val cursor_next : cursor -> Tb_storage.Rid.t option

(** [cursor_next_page cur] returns all remaining matching Rids of the next
    page at once (never straddling a page boundary, so interleaving
    per-row page accesses with cursor advances keeps the exact charge
    order of {!cursor_next}).  The vectorized Seq_scan feeds on this. *)
val cursor_next_page : cursor -> Tb_storage.Rid.t list option

val cardinality : t -> cls:string -> int

(** Pages of the file backing [cls] (shared files count whole). *)
val extent_pages : t -> cls:string -> int

(** {2 Lifecycle} *)

(** Commit the running transaction: force the log's commit record
    (standard mode; transaction-off drops the log), flush dirty pages,
    truncate the log, advance {!commit_seq} and fire the commit hook.
    Repeat-callable — the loaders commit every few thousand objects. *)
val commit : t -> unit

(** Roll the running transaction back: restore durable before-images from
    the log, drop volatile pages and handles, rewind the catalog (files,
    indexes, cardinalities, tree roots) to the last commit.  Returns the
    number of pages restored.  Raises [Invalid_argument] in transaction-off
    mode, which keeps no log to roll back from. *)
val rollback : t -> int

(** One-shot transaction handles over {!commit}/{!rollback}: resolving a
    handle twice (commit after commit, abort after abort, or any mix)
    raises [Invalid_argument]. *)
type txn_handle

val begin_txn : t -> txn_handle
val commit_txn : txn_handle -> unit
val abort_txn : txn_handle -> unit

(** [with_txn t f] runs [f t] and commits, or rolls back if [f] raises
    (including {!Transaction.Out_of_memory}) and re-raises.  A
    {!Tb_storage.Fault.Crash} is re-raised {e without} rolling back: a
    crashed machine has nothing volatile left to abort with — recover with
    {!crash_and_recover}. *)
val with_txn : t -> (t -> 'a) -> 'a

(** Shut the server down and drop the client's handles: the cold state in
    which every measured query starts. *)
val cold_restart : t -> unit

(** {2 Faults and crash recovery} *)

(** Arm ([Some]) or disarm ([None]) deterministic fault injection on both
    the page store and the log. *)
val set_fault : t -> Tb_storage.Fault.t option -> unit

(** Completed commits since creation (crash recovery of a winner counts
    its in-flight commit). *)
val commit_seq : t -> int

(** [set_commit_hook t (Some f)] runs [f ~seq] after every completed
    commit — the recovery oracle records durable fingerprints here. *)
val set_commit_hook : t -> (seq:int -> unit) option -> unit

(** Digest of the durable state only: file names and page images, no
    volatile state, no LSNs.  Two databases with equal fingerprints hold
    identical committed data. *)
val durable_fingerprint : t -> string

(** Total durable pages across all files — the size of the checksum walk a
    replica promotion verifies. *)
val durable_pages : t -> int

type recovery = {
  outcome : [ `Winner | `Loser ];
  torn_pages : int;  (** pages whose checksum exposed a torn write *)
  redone : int;  (** pages replayed from after-images *)
  undone : int;  (** pages restored from before-images *)
}

(** Restart after a {!Tb_storage.Fault.Crash}: drop all volatile state,
    verify checksums, then — commit record durable — replay the winner's
    after-images and install its catalog, or — not durable — restore the
    loser's before-images, truncate its page and file allocations, and
    rewind the catalog to the last commit.  Disarms fault injection.
    Raises [Failure] if a torn page survives recovery. *)
val crash_and_recover : t -> recovery
