(* A freshly loaded Handle points straight into the buffer-pool page that
   holds its record ([Packed]); attributes decode on demand by skip-walking
   the record bytes, so acquiring an object allocates nothing per attribute.
   [Whole] is the fully-materialized form (updates install it so resident
   Handles stay coherent with the store). *)

type packed = {
  p_page : Tb_storage.Page_layout.t;  (* page holding the record body *)
  p_slot : int;  (* physical slot on p_page (not the home slot if relocated) *)
  p_delta : int;  (* first attribute's offset relative to the record span *)
  mutable p_version : int;  (* p_page version p_body was derived under *)
  mutable p_body : int;  (* absolute offset of the first attribute *)
}

type repr = Whole of Value.t | Packed of packed

type t = {
  rid : Tb_storage.Rid.t;
  class_id : int;
  mutable repr : repr;
  mutable refcount : int;
  mem_bytes : int;
}

let make ~rid ~class_id ~repr ~mem_bytes =
  { rid; class_id; repr; refcount = 1; mem_bytes }

let set_value t v = t.repr <- Whole v
