(* A freshly loaded Handle holds the record's raw bytes plus a field-offset
   table; attributes decode on first access and memoize into [cache], so a
   repeated get_att on a live Handle is an array load.  [Whole] is the
   fully-materialized form (updates install it so resident Handles stay
   coherent with the store). *)

type view = {
  body : bytes;
  offsets : int array;  (* absolute start of each attribute's encoding *)
  cache : Value.t option array;  (* decoded attributes, by slot *)
}

type repr = Whole of Value.t | View of view

type t = {
  rid : Tb_storage.Rid.t;
  class_id : int;
  mutable repr : repr;
  mutable refcount : int;
  mem_bytes : int;
}

let make ~rid ~class_id ~repr ~mem_bytes =
  { rid; class_id; repr; refcount = 1; mem_bytes }

let set_value t v = t.repr <- Whole v
