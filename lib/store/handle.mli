(** In-memory object representatives.

    Section 4 is a post-mortem of these: every object touched by a query
    gets a Handle — a structure that in O2 carries ~60 bytes of flags,
    type/version/index pointers and a refcount, and whose allocation and
    (delayed) destruction dominate the CPU cost of cold associative
    accesses.  The [kind] (fat vs compact) selects between the measured O2
    behaviour and the slimmed-down representative the paper proposes in
    Section 4.4; the ablation bench flips it.

    The representative itself is lazy: loading a Handle stores the record
    body and a per-attribute offset table ([View]); attributes are decoded
    on first access and memoized, so acquiring an object never pays for
    attributes the query ignores.  All of this is real-time machinery only —
    the simulated costs (handle alloc/free, get_att) are charged exactly as
    before. *)

type view = {
  body : bytes;
  offsets : int array;  (** absolute start of each attribute's encoding *)
  cache : Value.t option array;  (** decoded attributes, memoized by slot *)
}

type repr =
  | Whole of Value.t  (** fully materialized (e.g. after an update) *)
  | View of view  (** lazy: decode attributes on demand *)

type t = {
  rid : Tb_storage.Rid.t;
  class_id : int;
  mutable repr : repr;
  mutable refcount : int;
  mem_bytes : int;  (** accounted against simulated RAM while live *)
}

val make :
  rid:Tb_storage.Rid.t -> class_id:int -> repr:repr -> mem_bytes:int -> t

(** [set_value t v] installs a materialized value (update coherence). *)
val set_value : t -> Value.t -> unit
