(** In-memory object representatives.

    Section 4 is a post-mortem of these: every object touched by a query
    gets a Handle — a structure that in O2 carries ~60 bytes of flags,
    type/version/index pointers and a refcount, and whose allocation and
    (delayed) destruction dominate the CPU cost of cold associative
    accesses.  The [kind] (fat vs compact) selects between the measured O2
    behaviour and the slimmed-down representative the paper proposes in
    Section 4.4; the ablation bench flips it.

    The representative itself is packed: loading a Handle records where the
    object's attributes live inside the buffer-pool page ([Packed]) and
    attribute reads skip-walk those bytes in place, so acquiring an object
    copies nothing and never pays for attributes the query ignores.  All of
    this is real-time machinery only — the simulated costs (handle
    alloc/free, get_att) are charged exactly as before. *)

type packed = {
  p_page : Tb_storage.Page_layout.t;  (** page holding the record body *)
  p_slot : int;
      (** physical slot on [p_page]; differs from the home Rid's slot when
          the record was relocated by a growing update *)
  p_delta : int;
      (** offset of the first attribute relative to the record span start
          (framing tag + header); immutable for a given record body *)
  mutable p_version : int;  (** page version [p_body] was computed under *)
  mutable p_body : int;  (** absolute offset of the first attribute *)
}

type repr =
  | Whole of Value.t  (** fully materialized (e.g. after an update) *)
  | Packed of packed  (** in-place: decode attributes straight off the page *)

type t = {
  rid : Tb_storage.Rid.t;
  class_id : int;
  mutable repr : repr;
  mutable refcount : int;
  mem_bytes : int;  (** accounted against simulated RAM while live *)
}

val make :
  rid:Tb_storage.Rid.t -> class_id:int -> repr:repr -> mem_bytes:int -> t

(** [set_value t v] installs a materialized value (update coherence). *)
val set_value : t -> Value.t -> unit
