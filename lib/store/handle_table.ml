module H = Hashtbl.Make (Tb_storage.Rid)

type t = {
  sim : Tb_sim.Sim.t;
  kind : Tb_sim.Cost_model.handle_kind;
  table : Handle.t H.t;
  zombies : Tb_storage.Rid.t Queue.t;
  zombie_limit : int;
}

let create sim ~kind ~zombie_limit =
  if zombie_limit < 0 then invalid_arg "Handle_table.create: zombie_limit";
  { sim; kind; table = H.create 4096; zombies = Queue.create (); zombie_limit }

let kind t = t.kind

let destroy t h =
  Tb_sim.Sim.charge_handle_free t.sim t.kind;
  Tb_sim.Sim.release_bytes t.sim h.Handle.mem_bytes;
  H.remove t.table h.Handle.rid

(* Pop zombies until the pool is back under its limit.  Queue entries can be
   stale (resurrected or re-queued rids); only genuinely unreferenced
   residents are destroyed. *)
let trim t =
  while Queue.length t.zombies > t.zombie_limit do
    let rid = Queue.pop t.zombies in
    match H.find_opt t.table rid with
    | Some h when h.Handle.refcount = 0 -> destroy t h
    | Some _ | None -> ()
  done

let acquire t rid ~load =
  match H.find_opt t.table rid with
  | Some h ->
      Tb_sim.Sim.charge_handle_hit t.sim;
      h.Handle.refcount <- h.Handle.refcount + 1;
      h
  | None ->
      Tb_sim.Sim.charge_handle_alloc t.sim t.kind;
      let mem_bytes = Tb_sim.Cost_model.handle_bytes t.sim.Tb_sim.Sim.cost t.kind in
      Tb_sim.Sim.claim_bytes t.sim mem_bytes;
      let class_id, repr = load () in
      let h = Handle.make ~rid ~class_id ~repr ~mem_bytes in
      H.replace t.table rid h;
      h

let unreference t h =
  if h.Handle.refcount <= 0 then
    invalid_arg "Handle_table.unreference: refcount already zero";
  h.Handle.refcount <- h.Handle.refcount - 1;
  if h.Handle.refcount = 0 then begin
    Queue.push h.Handle.rid t.zombies;
    trim t
  end

let find_resident t rid = H.find_opt t.table rid
let resident_count t = H.length t.table

let flush t =
  H.iter (fun _ h ->
      Tb_sim.Sim.charge_handle_free t.sim t.kind;
      Tb_sim.Sim.release_bytes t.sim h.Handle.mem_bytes) t.table;
  H.reset t.table;
  Queue.clear t.zombies

let discard t =
  H.iter
    (fun _ h -> Tb_sim.Sim.release_bytes t.sim h.Handle.mem_bytes)
    t.table;
  H.reset t.table;
  Queue.clear t.zombies
