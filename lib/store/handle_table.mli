(** The table of live (and not-yet-destroyed) Handles.

    O2 keeps one representative per object in memory, refcounted, and delays
    destruction "as much as possible so as to avoid unnecessary
    free/allocate" (Section 4.4).  We model that with a bounded FIFO of
    zombies: unreferenced Handles stay resident (and can be resurrected for
    free) until the zombie pool overflows, at which point the oldest are
    actually freed — each alloc and each free charging the per-kind CPU cost
    that Figure 9 identifies. *)

type t

(** [create sim ~kind ~zombie_limit] — [zombie_limit] is how many
    unreferenced Handles may linger before real destruction begins. *)
val create : Tb_sim.Sim.t -> kind:Tb_sim.Cost_model.handle_kind -> zombie_limit:int -> t

val kind : t -> Tb_sim.Cost_model.handle_kind

(** [acquire t rid ~load] returns the object's Handle with its refcount
    bumped.  A resident Handle (live or zombie) is reused for almost
    nothing; otherwise a new one is allocated (charged) and [load] is called
    to produce the object's representation (usually a {!Handle.Packed}). *)
val acquire :
  t -> Tb_storage.Rid.t -> load:(unit -> int * Handle.repr) -> Handle.t

(** [unreference t h] drops one reference; at zero the Handle becomes a
    zombie and may be destroyed later. Raises [Invalid_argument] if the
    refcount is already zero. *)
val unreference : t -> Handle.t -> unit

(** [find_resident t rid] peeks at a resident Handle without charging or
    changing its refcount (used to keep Handles coherent on update). *)
val find_resident : t -> Tb_storage.Rid.t -> Handle.t option

(** Handles currently resident (live + zombies). *)
val resident_count : t -> int

(** Destroy every resident Handle, charging the frees. *)
val flush : t -> unit

(** Drop everything without charging (used when simulating a process
    restart, whose teardown the paper does not measure). *)
val discard : t -> unit
