(* Encoding: u16 class id; u8 flags (bit 0 = has slots, bit 1 = deleted);
   if slotted: u8 slot count then u16 per slot (0xFFFF = empty). *)

type t = { class_id : int; deleted : bool; slots : int array option }

let default_slot_count = 8
let empty_slot = 0xFFFF

let create ~class_id ~indexed =
  {
    class_id;
    deleted = false;
    slots = (if indexed then Some (Array.make default_slot_count empty_slot) else None);
  }

let class_id t = t.class_id

let indexes t =
  match t.slots with
  | None -> []
  | Some slots ->
      Array.fold_right
        (fun s acc -> if s <> empty_slot then s :: acc else acc)
        slots []

let has_slots t = Option.is_some t.slots

let add_index t idx =
  if idx < 0 || idx >= empty_slot then invalid_arg "Obj_header.add_index: id";
  match t.slots with
  | None ->
      invalid_arg
        "Obj_header.add_index: object created without index slots; reallocate \
         it first"
  | Some slots ->
      if Array.exists (fun s -> s = idx) slots then t
      else begin
        let free = ref (-1) in
        Array.iteri (fun i s -> if s = empty_slot && !free < 0 then free := i) slots;
        let slots =
          if !free >= 0 then begin
            let slots = Array.copy slots in
            slots.(!free) <- idx;
            slots
          end
          else begin
            (* Extend: the header grows, as the O2 documentation allows. *)
            let bigger = Array.make (Array.length slots + default_slot_count) empty_slot in
            Array.blit slots 0 bigger 0 (Array.length slots);
            bigger.(Array.length slots) <- idx;
            bigger
          end
        in
        { t with slots = Some slots }
      end

let remove_index t idx =
  match t.slots with
  | None -> t
  | Some slots ->
      let slots = Array.map (fun s -> if s = idx then empty_slot else s) slots in
      { t with slots = Some slots }

let with_slots t =
  match t.slots with
  | Some _ -> t
  | None -> { t with slots = Some (Array.make default_slot_count empty_slot) }

let deleted t = t.deleted
let set_deleted t deleted = { t with deleted }

let encoded_size t =
  match t.slots with None -> 3 | Some slots -> 4 + (2 * Array.length slots)

let encode t =
  let b = Bytes.create (encoded_size t) in
  Bytes.set_uint16_le b 0 t.class_id;
  let flags =
    (if Option.is_some t.slots then 1 else 0) lor if t.deleted then 2 else 0
  in
  Bytes.set_uint8 b 2 flags;
  (match t.slots with
  | None -> ()
  | Some slots ->
      Bytes.set_uint8 b 3 (Array.length slots);
      Array.iteri (fun i s -> Bytes.set_uint16_le b (4 + (2 * i)) s) slots);
  b

(* Header peeking for the packed read path: pull the class id and the body
   offset out of a raw record without materializing the slots array. *)
let peek_class_id b ~pos = Bytes.get_uint16_le b pos
let peek_deleted b ~pos = Bytes.get_uint8 b (pos + 2) land 2 <> 0

let skip b ~pos =
  if Bytes.get_uint8 b (pos + 2) land 1 = 0 then pos + 3
  else pos + 4 + (2 * Bytes.get_uint8 b (pos + 3))

let decode b ~pos =
  let class_id = Bytes.get_uint16_le b pos in
  let flags = Bytes.get_uint8 b (pos + 2) in
  let deleted = flags land 2 <> 0 in
  if flags land 1 = 0 then ({ class_id; deleted; slots = None }, pos + 3)
  else begin
    let n = Bytes.get_uint8 b (pos + 3) in
    let slots = Array.init n (fun i -> Bytes.get_uint16_le b (pos + 4 + (2 * i))) in
    ({ class_id; deleted; slots = Some slots }, pos + 4 + (2 * n))
  end
