(** Per-object disk headers.

    Section 3.2's hard truth: when an object becomes persistent inside an
    indexed collection, O2 gives it a header with room for 8 index entries;
    objects created unindexed get no such room.  Creating the *first* index
    after loading therefore reallocates every object on disk — destroying
    both hours and the carefully imposed physical organization.  We
    reproduce that exactly: the header's encoded size depends on whether
    index slots were provisioned, and {!Database.create_index} must rewrite
    (and possibly relocate) objects whose headers lack slots. *)

type t

(** Slots provisioned when an object is created as a member of an indexed
    collection. *)
val default_slot_count : int

(** [create ~class_id ~indexed] — [indexed] provisions
    [default_slot_count] empty index slots. *)
val create : class_id:int -> indexed:bool -> t

val class_id : t -> int

(** Index ids this object belongs to. *)
val indexes : t -> int list

val has_slots : t -> bool

(** [add_index t idx] records membership; grows the slot array beyond
    {!default_slot_count} when needed ("it can be extended if required").
    Raises [Invalid_argument] if the header has no slot space at all —
    the object must be reallocated with a slotted header first. *)
val add_index : t -> int -> t

val remove_index : t -> int -> t

(** [with_slots t] is [t] with slot space provisioned (used during the
    reallocation pass). *)
val with_slots : t -> t

val deleted : t -> bool
val set_deleted : t -> bool -> t

(** Encoded size in bytes: 4 without slots, [4 + 2*slots] with. *)
val encoded_size : t -> int

val encode : t -> bytes
val decode : bytes -> pos:int -> t * int

(** [peek_class_id b ~pos] reads just the class id of a header encoded at
    [pos] — no allocation. *)
val peek_class_id : bytes -> pos:int -> int

(** [peek_deleted b ~pos] reads just the deleted flag — no allocation. *)
val peek_deleted : bytes -> pos:int -> bool

(** [skip b ~pos] is the offset just past the header encoded at [pos]
    (i.e. where the attribute values begin), without decoding it. *)
val skip : bytes -> pos:int -> int
