type ty =
  | TInt
  | TReal
  | TBool
  | TChar
  | TString
  | TRef of string
  | TSet of ty
  | TList of ty
  | TTuple of (string * ty) list

type cls = { cls_name : string; attrs : (string * ty) list }

(* [attr_names]/[attr_slots] are compiled once per schema: the attribute
   list of each class as a positional array and its inverse.  Hot-path
   attribute resolution (get_att, predicate evaluation, payload harvest) is
   a hash probe or an array load instead of an assoc-list walk. *)
type t = {
  classes : cls array;
  roots : (string * ty) list;
  attr_names : string array array;
  attr_slots : (string, int) Hashtbl.t array;
}

let rec check_ty class_names = function
  | TInt | TReal | TBool | TChar | TString -> ()
  | TRef name ->
      if not (List.mem name class_names) then
        invalid_arg ("Schema: reference to unknown class " ^ name)
  | TSet ty | TList ty -> check_ty class_names ty
  | TTuple fields -> List.iter (fun (_, ty) -> check_ty class_names ty) fields

let make ~classes ~roots =
  let names = List.map (fun c -> c.cls_name) classes in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.exists (String.equal x) rest then Some x else dup rest
  in
  (match dup names with
  | Some n -> invalid_arg ("Schema: duplicate class " ^ n)
  | None -> ());
  List.iter
    (fun c -> List.iter (fun (_, ty) -> check_ty names ty) c.attrs)
    classes;
  List.iter (fun (_, ty) -> check_ty names ty) roots;
  let classes = Array.of_list classes in
  let attr_names =
    Array.map (fun c -> Array.of_list (List.map fst c.attrs)) classes
  in
  let attr_slots =
    Array.map
      (fun names ->
        let tbl = Hashtbl.create (2 * Array.length names) in
        Array.iteri (fun i n -> Hashtbl.replace tbl n i) names;
        tbl)
      attr_names
  in
  { classes; roots; attr_names; attr_slots }

let classes t = Array.to_list t.classes
let roots t = t.roots

let find_class t name =
  match Array.find_opt (fun c -> String.equal c.cls_name name) t.classes with
  | Some c -> c
  | None -> raise Not_found

let class_id t name =
  let rec go i =
    if i >= Array.length t.classes then raise Not_found
    else if String.equal t.classes.(i).cls_name name then i
    else go (i + 1)
  in
  go 0

let class_of_id t id =
  if id < 0 || id >= Array.length t.classes then raise Not_found
  else t.classes.(id)

let attr_count t ~class_id = Array.length t.attr_names.(class_id)
let attr_name t ~class_id slot = t.attr_names.(class_id).(slot)
let attr_slot t ~class_id ~attr = Hashtbl.find t.attr_slots.(class_id) attr

let attr_type t ~cls ~attr =
  let c = find_class t cls in
  match List.assoc_opt attr c.attrs with
  | Some ty -> ty
  | None -> raise Not_found

let rec conforms t ty v =
  match (ty, v) with
  | _, Value.Nil -> true
  | TInt, Value.Int _ -> true
  | TReal, Value.Real _ -> true
  | TBool, Value.Bool _ -> true
  | TChar, Value.Char _ -> true
  | TString, Value.String _ -> true
  | TRef _, Value.Ref _ -> true
  | (TSet _ | TList _), Value.Big_set _ -> true
  | TSet ty, Value.Set xs | TList ty, Value.List xs ->
      List.for_all (conforms t ty) xs
  | TTuple fields, Value.Tuple vs ->
      List.length fields = List.length vs
      && List.for_all2
           (fun (n, ty) (n', v) -> String.equal n n' && conforms t ty v)
           fields vs
  | ( ( TInt | TReal | TBool | TChar | TString | TRef _ | TSet _ | TList _
      | TTuple _ ),
      _ ) ->
      false

let rec pp_ty ppf = function
  | TInt -> Format.pp_print_string ppf "integer"
  | TReal -> Format.pp_print_string ppf "real"
  | TBool -> Format.pp_print_string ppf "boolean"
  | TChar -> Format.pp_print_string ppf "char"
  | TString -> Format.pp_print_string ppf "string"
  | TRef c -> Format.pp_print_string ppf c
  | TSet ty -> Format.fprintf ppf "set(%a)" pp_ty ty
  | TList ty -> Format.fprintf ppf "list(%a)" pp_ty ty
  | TTuple fields ->
      Format.fprintf ppf "tuple(@[%a@])"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (n, ty) -> Format.fprintf ppf "%s: %a" n pp_ty ty))
        fields
