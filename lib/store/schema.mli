(** Database schemas: classes, attribute types, named roots.

    Mirrors the paper's Figure 1 structure: classes ([Provider], [Patient])
    with typed attributes, and names binding extents ([Providers],
    [Patients]) to set types — persistence by attachment to names, as in
    ODMG. *)

type ty =
  | TInt
  | TReal
  | TBool
  | TChar
  | TString
  | TRef of string  (** reference to an object of the named class *)
  | TSet of ty
  | TList of ty
  | TTuple of (string * ty) list

type cls = { cls_name : string; attrs : (string * ty) list }

type t

(** [make ~classes ~roots] validates that referenced classes exist, class
    names are unique, and root types are well formed.
    Raises [Invalid_argument] otherwise. *)
val make : classes:cls list -> roots:(string * ty) list -> t

val classes : t -> cls list
val roots : t -> (string * ty) list

(** [find_class t name] — raises [Not_found] if absent. *)
val find_class : t -> string -> cls

(** Stable small integer for on-disk object headers. *)
val class_id : t -> string -> int

val class_of_id : t -> int -> cls

(** {2 Compiled attribute slots}

    Attribute positions in schema order, compiled once by {!make}.  A slot
    is both the index into the class's on-disk field sequence and into a
    Handle's memo array. *)

val attr_count : t -> class_id:int -> int

(** [attr_name t ~class_id slot] — raises [Invalid_argument] if the slot is
    out of range. *)
val attr_name : t -> class_id:int -> int -> string

(** [attr_slot t ~class_id ~attr] — raises [Not_found] if the class has no
    such attribute. *)
val attr_slot : t -> class_id:int -> attr:string -> int

(** [attr_type t ~cls ~attr] — raises [Not_found] if the class or attribute
    is unknown. *)
val attr_type : t -> cls:string -> attr:string -> ty

(** [conforms t ty v] checks a value against a type.  [Nil] conforms to any
    reference type (a retired doctor's patients point nowhere). [Big_set]
    conforms to set types. *)
val conforms : t -> ty -> Value.t -> bool

val pp_ty : Format.formatter -> ty -> unit
