(* Horizontal partitioning: S databases, one simulated machine.

   Each shard is a full [Database.t] — its own heap files, buffer pools,
   WAL and indexes — sharing one [Sim.t], so charges from every shard land
   in the same global counters and the same clock.  Simulated parallelism
   is the executor's business (it wraps shard work in [Clock.fork]/[join]
   scopes); the map itself only owns placement: a deterministic salted
   hash from partition-key values to shard numbers.

   The salt comes from a private [Rng] seeded from the generator seed —
   private, because drawing it from the shared simulation RNG would
   perturb the generated data and break the S=1 ⇔ unsharded bit-identity
   the parity suite pins. *)

type t = {
  sim : Tb_sim.Sim.t;
  salt : int;
  key_attr : string;
  shards : Database.t array;
}

let create sim ~schema ~shards ~server_pages ~client_pages ?handle_kind
    ?zombie_limit ?txn_mode ~key_attr ~seed () =
  if shards <= 0 then invalid_arg "Shard_map.create: shards must be positive";
  (* One machine's worth of cache, divided: sharding partitions the buffer
     pool, it does not grow it. *)
  let per_shard pages = max 2 (pages / shards) in
  let dbs =
    Array.init shards (fun _ ->
        Database.create sim ~schema ~server_pages:(per_shard server_pages)
          ~client_pages:(per_shard client_pages) ?handle_kind ?zombie_limit
          ?txn_mode ())
  in
  let salt = Tb_sim.Rng.int (Tb_sim.Rng.create seed) 0x4000_0000 in
  { sim; salt; key_attr; shards = dbs }

let count t = Array.length t.shards

let shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Shard_map.shard: index out of range";
  t.shards.(i)

let sim t = t.sim
let key_attr t = t.key_attr
let salt t = t.salt

(* Fibonacci-style multiplicative mix of the salted key: cheap, stateless,
   and spreads consecutive provider ids evenly across shards. *)
let shard_of_key t key =
  if Array.length t.shards = 1 then 0
  else
    let h = (key lxor t.salt) * 0x2545F491 land max_int in
    h mod Array.length t.shards

let iter t f = Array.iteri f t.shards
let cold_restart t = Array.iter Database.cold_restart t.shards
let commit t = Array.iter Database.commit t.shards
