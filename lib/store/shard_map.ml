(* Horizontal partitioning: S databases, one simulated machine.

   Each shard is a full [Database.t] — its own heap files, buffer pools,
   WAL and indexes — sharing one [Sim.t], so charges from every shard land
   in the same global counters and the same clock.  Simulated parallelism
   is the executor's business (it wraps shard work in [Clock.fork]/[join]
   scopes); the map itself only owns placement: a deterministic salted
   hash from partition-key values to shard numbers.

   The salt comes from a private [Rng] seeded from the generator seed —
   private, because drawing it from the shared simulation RNG would
   perturb the generated data and break the S=1 ⇔ unsharded bit-identity
   the parity suite pins.

   Since PR 8 each shard can carry R-1 follower replicas: byte-identical
   twins built by applying the primary's statement stream to databases on
   distinct "nodes" (node of replica r of shard s is (s + r) mod S).  At
   R=1 no follower databases exist and nothing below is reachable, so the
   PR 7 charge stream is untouched.  [promote] turns the next follower
   into the primary after a WAL catch-up and checksum walk
   ([Database.crash_and_recover] — it refuses if a torn page survives),
   charging the failover to the shared clock; [repair] undoes every
   promotion so a chaos sweep can reuse one build across kill points. *)

module Fault = Tb_storage.Fault

type t = {
  sim : Tb_sim.Sim.t;
  salt : int;
  key_attr : string;
  replicas : int;
  primaries : Database.t array;  (* current primary per shard *)
  followers : Database.t list array;  (* promotion order, head next *)
  original_primaries : Database.t array;
  original_followers : Database.t list array;
  faults : Fault.t option array;  (* active schedule per shard *)
  mutable registry : Fault.registry option;
}

let create sim ~schema ~shards ?(replicas = 1) ~server_pages ~client_pages
    ?handle_kind ?zombie_limit ?txn_mode ~key_attr ~seed () =
  if shards <= 0 then invalid_arg "Shard_map.create: shards must be positive";
  if replicas < 1 then invalid_arg "Shard_map.create: replicas must be >= 1";
  if replicas > shards then
    invalid_arg
      "Shard_map.create: replicas cannot exceed shards (one node each)";
  (* One machine's worth of cache, divided: sharding partitions the buffer
     pool, it does not grow it. *)
  let per_shard pages = max 2 (pages / shards) in
  let mk () =
    Database.create sim ~schema ~server_pages:(per_shard server_pages)
      ~client_pages:(per_shard client_pages) ?handle_kind ?zombie_limit
      ?txn_mode ()
  in
  let dbs = Array.init shards (fun _ -> mk ()) in
  let followers =
    Array.init shards (fun _ -> List.init (replicas - 1) (fun _ -> mk ()))
  in
  let salt = Tb_sim.Rng.int (Tb_sim.Rng.create seed) 0x4000_0000 in
  {
    sim;
    salt;
    key_attr;
    replicas;
    primaries = dbs;
    followers = Array.copy followers;
    original_primaries = Array.copy dbs;
    original_followers = followers;
    faults = Array.make shards None;
    registry = None;
  }

let count t = Array.length t.primaries
let replicas t = t.replicas

let shard t i =
  if i < 0 || i >= Array.length t.primaries then
    invalid_arg "Shard_map.shard: index out of range";
  t.primaries.(i)

(* Primary first, then the followers still awaiting promotion: the order
   the build's statement stream is applied in. *)
let group t i = shard t i :: t.followers.(i)

let live_replicas t i = 1 + List.length t.followers.(i)

(* The "node" a replica lives on: primaries spread one per node, follower
   r of shard s on the node r steps around the ring — distinct from its
   primary's by the R <= S check in [create]. *)
let node_of t ~shard ~replica = (shard + replica) mod count t

let sim t = t.sim
let key_attr t = t.key_attr
let salt t = t.salt

(* Fibonacci-style multiplicative mix of the salted key: cheap, stateless,
   and spreads consecutive provider ids evenly across shards. *)
let shard_of_key t key =
  if Array.length t.primaries = 1 then 0
  else
    let h = (key lxor t.salt) * 0x2545F491 land max_int in
    h mod Array.length t.primaries

let iter t f = Array.iteri f t.primaries

let iter_group t f =
  Array.iteri (fun s _ -> f s (group t s)) t.primaries

let cold_restart t =
  Array.iteri
    (fun s p ->
      Database.cold_restart p;
      List.iter Database.cold_restart t.followers.(s))
    t.primaries

let commit t =
  Array.iteri
    (fun s p ->
      Database.commit p;
      List.iter Database.commit t.followers.(s))
    t.primaries

(* --- fault wiring --- *)

let set_fault_registry t reg =
  t.registry <- reg;
  match reg with
  | None ->
      Array.iteri
        (fun s db ->
          Database.set_fault db None;
          t.faults.(s) <- None)
        t.primaries
  | Some r ->
      if Fault.registry_size r <> count t then
        invalid_arg "Shard_map.set_fault_registry: registry size mismatch";
      Array.iteri
        (fun s db ->
          let f = Fault.shard_fault r s in
          t.faults.(s) <- Some f;
          Database.set_fault db (Some f))
        t.primaries

let fault t s =
  if s < 0 || s >= count t then invalid_arg "Shard_map.fault";
  t.faults.(s)

(* --- failover --- *)

(* Promote the next follower of a dead shard.  Catch-up and verification
   ride the machinery recovery already has: [crash_and_recover] drops the
   follower's volatile state, walks every durable page's checksum, replays
   or unwinds the WAL tail, and refuses (raises [Failure]) if a torn page
   survives — in which case the replica is consumed but not installed, and
   the caller can try the next one.  The promotion charge (election plus
   the checksum walk, one unit per durable page) lands on the shared
   clock, inside whatever lane scope the caller holds. *)
let promote t ~shard:s =
  if s < 0 || s >= count t then invalid_arg "Shard_map.promote";
  match t.followers.(s) with
  | [] -> Error "no replica left"
  | f :: rest -> (
      t.followers.(s) <- rest;
      match Database.crash_and_recover f with
      | exception Failure msg -> Error msg
      | (_ : Database.recovery) ->
          Tb_sim.Sim.charge_failover t.sim ~pages:(Database.durable_pages f);
          t.primaries.(s) <- f;
          (* The replica starts with a clean slate: the dead primary's
             armed schedule must not follow it. *)
          t.faults.(s) <- None;
          Ok f)

(* Undo every promotion and re-arm per-shard faults from the registry:
   the chaos sweep's "fix the cluster" step between kill points. *)
let repair t =
  Array.iteri
    (fun s p ->
      t.primaries.(s) <- p;
      t.followers.(s) <- t.original_followers.(s))
    t.original_primaries;
  match t.registry with
  | None -> Array.fill t.faults 0 (count t) None
  | Some r ->
      Array.iteri
        (fun s db ->
          let f = Fault.shard_fault r s in
          Fault.revive f;
          t.faults.(s) <- Some f;
          Database.set_fault db (Some f))
        t.primaries
