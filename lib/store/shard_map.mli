(** Horizontal partitioning: S full databases behind one simulation.

    A shard map owns S {!Database.t} instances — each with its own heap
    files, buffer pools, WAL and indexes — all charging the one shared
    {!Tb_sim.Sim.t}.  Placement is a deterministic salted hash on the
    partition key ([shard_of_key]); the salt is drawn from a private
    {!Tb_sim.Rng} seeded by the caller so placement never consumes draws
    from (or perturbs) the data-generation RNG.

    Simulated parallelism lives in the executor's {!Tb_sim.Clock} fork/join
    scopes, not here: the map is pure placement and lifecycle.

    Since PR 8 each shard can carry [replicas - 1] follower databases —
    byte-identical twins on distinct "nodes", built by applying the
    primary's statement stream to the whole {!group}.  {!promote} installs
    the next follower as primary after WAL catch-up and a checksum walk,
    {!repair} undoes every promotion, and {!set_fault_registry} gives each
    shard its own {!Tb_storage.Fault} schedule.  At [replicas = 1] (the
    default) none of it exists: no follower databases are created and the
    PR 7 charge stream is bit-identical. *)

type t

(** [create sim ~schema ~shards ~server_pages ~client_pages ~key_attr ~seed ()]
    builds [shards] databases over [sim].  The page budgets are one
    machine's worth and are divided evenly across shards (floor, min 2) —
    sharding partitions the cache, it does not grow it.  [key_attr] names
    the attribute whose hash places an object ("upin" for Derby).
    [replicas] (default 1) is the total copies of each shard, primary
    included; raises [Invalid_argument] when [shards <= 0], [replicas < 1]
    or [replicas > shards] (each copy needs its own node). *)
val create :
  Tb_sim.Sim.t ->
  schema:Schema.t ->
  shards:int ->
  ?replicas:int ->
  server_pages:int ->
  client_pages:int ->
  ?handle_kind:Tb_sim.Cost_model.handle_kind ->
  ?zombie_limit:int ->
  ?txn_mode:Transaction.mode ->
  key_attr:string ->
  seed:int ->
  unit ->
  t

val count : t -> int

(** Configured copies per shard (primary included); 1 when unreplicated. *)
val replicas : t -> int

(** [shard t i] is shard [i]'s current primary; raises [Invalid_argument]
    out of range. *)
val shard : t -> int -> Database.t

(** [group t i] is shard [i]'s primary followed by its not-yet-promoted
    followers — the databases a replicated build applies each statement
    to.  A singleton at [replicas = 1]. *)
val group : t -> int -> Database.t list

(** Copies of shard [i] still standing (primary plus followers). *)
val live_replicas : t -> int -> int

(** The node replica [replica] of [shard] lives on: [(shard + replica) mod
    count] — distinct nodes for every copy because [replicas <= count]. *)
val node_of : t -> shard:int -> replica:int -> int

val sim : t -> Tb_sim.Sim.t

(** The partition-key attribute name chosen at [create]. *)
val key_attr : t -> string

(** The placement salt (exposed so plan labels can print a stable id). *)
val salt : t -> int

(** [shard_of_key t k] maps a partition-key value to its shard number.
    Always [0] when [count t = 1]. *)
val shard_of_key : t -> int -> int

(** [iter t f] runs [f i db] over shard primaries in index order. *)
val iter : t -> (int -> Database.t -> unit) -> unit

(** [iter_group t f] runs [f i group] over shards in index order, where
    [group] is the primary plus its standing followers. *)
val iter_group : t -> (int -> Database.t list -> unit) -> unit

(** Per-shard {!Database.cold_restart} (followers included), shard order. *)
val cold_restart : t -> unit

(** Per-shard {!Database.commit} (followers included), shard order. *)
val commit : t -> unit

(** {2 Faults and failover} *)

(** [set_fault_registry t (Some r)] wires shard [s]'s fault layer
    [Fault.shard_fault r s] into its primary (transient read faults) and
    exposes it through {!fault} (boundary / RPC events, consulted by the
    sharded executor).  [None] disarms everything.  Raises
    [Invalid_argument] when the registry size differs from [count]. *)
val set_fault_registry : t -> Tb_storage.Fault.registry option -> unit

(** The armed fault layer scoped to shard [s] — [None] when no registry is
    wired or after the shard failed over (a promoted replica starts with a
    clean slate, so fault-free boundaries stay charge-free). *)
val fault : t -> int -> Tb_storage.Fault.t option

(** [promote t ~shard] installs the shard's next follower as primary:
    drops its volatile state, verifies every durable page's checksum and
    catches up from its WAL ({!Database.crash_and_recover}), then charges
    the failover (election + checksum walk) to the shared clock.  [Error]
    when no follower remains or a torn page survives verification — the
    refusing replica is consumed, so a retry proceeds to the next one. *)
val promote : t -> shard:int -> (Database.t, string) result

(** Undo every promotion (original primaries and follower order restored)
    and re-arm per-shard faults from the wired registry — the chaos
    sweep's repair step between kill points. *)
val repair : t -> unit
