(** Horizontal partitioning: S full databases behind one simulation.

    A shard map owns S {!Database.t} instances — each with its own heap
    files, buffer pools, WAL and indexes — all charging the one shared
    {!Tb_sim.Sim.t}.  Placement is a deterministic salted hash on the
    partition key ([shard_of_key]); the salt is drawn from a private
    {!Tb_sim.Rng} seeded by the caller so placement never consumes draws
    from (or perturbs) the data-generation RNG.

    Simulated parallelism lives in the executor's {!Tb_sim.Clock} fork/join
    scopes, not here: the map is pure placement and lifecycle. *)

type t

(** [create sim ~schema ~shards ~server_pages ~client_pages ~key_attr ~seed ()]
    builds [shards] databases over [sim].  The page budgets are one
    machine's worth and are divided evenly across shards (floor, min 2) —
    sharding partitions the cache, it does not grow it.  [key_attr] names
    the attribute whose hash places an object ("upin" for Derby).  Raises
    [Invalid_argument] when [shards <= 0]. *)
val create :
  Tb_sim.Sim.t ->
  schema:Schema.t ->
  shards:int ->
  server_pages:int ->
  client_pages:int ->
  ?handle_kind:Tb_sim.Cost_model.handle_kind ->
  ?zombie_limit:int ->
  ?txn_mode:Transaction.mode ->
  key_attr:string ->
  seed:int ->
  unit ->
  t

val count : t -> int

(** [shard t i] is shard [i]; raises [Invalid_argument] out of range. *)
val shard : t -> int -> Database.t

val sim : t -> Tb_sim.Sim.t

(** The partition-key attribute name chosen at [create]. *)
val key_attr : t -> string

(** The placement salt (exposed so plan labels can print a stable id). *)
val salt : t -> int

(** [shard_of_key t k] maps a partition-key value to its shard number.
    Always [0] when [count t = 1]. *)
val shard_of_key : t -> int -> int

(** [iter t f] runs [f i db] over shards in index order. *)
val iter : t -> (int -> Database.t -> unit) -> unit

(** Per-shard {!Database.cold_restart}, in shard order. *)
val cold_restart : t -> unit

(** Per-shard {!Database.commit}, in shard order. *)
val commit : t -> unit
