type mode = Standard | Load_off

exception Out_of_memory

type t = {
  sim : Tb_sim.Sim.t;
  wal : Wal.t;
  mutable mode : mode;
  mutable uncommitted : int;
  uncommitted_limit : int;
}

let create sim mode ~uncommitted_limit =
  if uncommitted_limit <= 0 then invalid_arg "Transaction.create: limit";
  { sim; wal = Wal.create sim; mode; uncommitted = 0; uncommitted_limit }

let mode t = t.mode
let set_mode t m = t.mode <- m
let uncommitted t = t.uncommitted
let wal t = t.wal
let pending_log_bytes t = Wal.pending_bytes t.wal

let on_write t ~bytes =
  match t.mode with
  | Load_off -> ()
  | Standard ->
      t.uncommitted <- t.uncommitted + 1;
      if t.uncommitted > t.uncommitted_limit then raise Out_of_memory;
      Wal.logical_write t.wal ~bytes

let reset t = t.uncommitted <- 0

let commit t stack =
  (match t.mode with
  | Standard -> Wal.force t.wal
  | Load_off ->
      (* A mode switch mid-transaction used to leave the standard-mode log
         tail pending across the commit, to be charged to the next
         transaction; transaction-off commits now drop it. *)
      Wal.discard t.wal);
  Tb_storage.Cache_stack.flush stack;
  t.uncommitted <- 0;
  Wal.checkpoint t.wal

let abort t stack =
  let undone = Wal.undo t.wal (Tb_storage.Cache_stack.disk stack) in
  Tb_storage.Cache_stack.drop stack;
  Wal.discard t.wal;
  t.uncommitted <- 0;
  undone
