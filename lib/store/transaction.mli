(** Transaction management: standard mode vs the "transaction-off" loading
    mode.

    Section 3.2's loading lessons, reproduced:
    - in standard mode every write is logged (costing I/O) and uncommitted
      objects pile up in memory until the famous "out of memory" — the
      loader must commit every few thousand objects;
    - the transaction-off mode drops the log and the locks, which is how a
      1 GB load gets from 12 hours toward 1.

    The log is a real {!Wal}: standard-mode commits force it, and {!abort}
    rolls the durable state back from its before-images. *)

type mode =
  | Standard  (** log maintained, bounded uncommitted set *)
  | Load_off  (** the O2 transaction-off loading mode *)

exception Out_of_memory
(** Raised in [Standard] mode when too many objects are created without
    committing. *)

type t

(** [create sim mode ~uncommitted_limit] — the limit is the number of
    uncommitted object creations/updates tolerated before
    {!Out_of_memory}.  Owns a fresh {!Wal}. *)
val create : Tb_sim.Sim.t -> mode -> uncommitted_limit:int -> t

val mode : t -> mode
val set_mode : t -> mode -> unit
val uncommitted : t -> int

(** The transaction's log (for observer wiring and recovery). *)
val wal : t -> Wal.t

(** Standard-mode log bytes buffered below one page. *)
val pending_log_bytes : t -> int

(** [on_write t ~bytes] accounts one object creation or update of [bytes]
    encoded size.  In [Standard] mode this appends a logical write record
    to the log (charging one page write per page worth of log) and may
    raise {!Out_of_memory}. *)
val on_write : t -> bytes:int -> unit

(** [commit t stack] forces the log (standard mode; transaction-off drops
    it, including any tail left by a mid-transaction mode switch), flushes
    dirty pages, releases the uncommitted set, and truncates the log. *)
val commit : t -> Tb_storage.Cache_stack.t -> unit

(** [abort t stack] rolls back: restores durable before-images from the
    log, drops both caches (the volatile working pages), and releases the
    uncommitted set.  Returns the number of pages restored.  In
    transaction-off mode there are no images — writes since the last
    commit are simply lost, caches dropped. *)
val abort : t -> Tb_storage.Cache_stack.t -> int

(** Release the uncommitted set without touching the log or caches
    (recovery bookkeeping). *)
val reset : t -> unit
