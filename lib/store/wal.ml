module Page_id = Tb_storage.Page_id
module Page_layout = Tb_storage.Page_layout
module Disk = Tb_storage.Disk
module Fault = Tb_storage.Fault

(* One consolidated physical record per (transaction, page): the before-image
   captured at the first write fetch after the last checkpoint, the
   after-image captured when the commit record is forced.  [page] is
   refreshed on every write fetch so the after-image is always read from the
   live working object, never from a copy that eviction already replaced. *)
type touch = {
  pid : Page_id.t;
  mutable page : Page_layout.t;
  before : Bytes.t;
  before_lsn : int;
  lsn : int;
  mutable after : Bytes.t option;
}

type t = {
  sim : Tb_sim.Sim.t;
  touched : (Page_id.t, touch) Hashtbl.t;
  mutable order : touch list; (* reverse first-touch order = undo order *)
  mutable pending : int; (* log bytes not yet filling a whole page *)
  mutable next_lsn : int;
  mutable commit_durable : bool;
  mutable fault : Fault.t option;
}

let create sim =
  {
    sim;
    touched = Hashtbl.create 64;
    order = [];
    pending = 0;
    next_lsn = 1;
    commit_durable = false;
    fault = None;
  }

let set_fault t f = t.fault <- f
let pending_bytes t = t.pending
let commit_durable t = t.commit_durable
let covers t pid = Hashtbl.mem t.touched pid
let touched_pages t = Hashtbl.length t.touched

let tick_write t =
  match t.fault with
  | None -> ()
  | Some f -> (
      match Fault.on_write f with
      | Fault.Ok -> ()
      | Fault.Crash_lost | Fault.Crash_torn ->
          (* A torn log-page write loses its tail records just the same:
             either way this write — and everything it would have made
             durable — never happened. *)
          raise Fault.Crash)

(* The write observer: runs on every [Cache_stack.fetch_for_write].  A first
   touch appends the physical before-image record; repeat touches only
   re-point [page] at the current working object.  Charge-free: the paper's
   "before/after images go to the log" I/O is already priced by
   [logical_write]'s byte accounting, and a per-page physical record is a
   consolidation of those same bytes, not new ones. *)
let note_touch t pid page =
  match Hashtbl.find_opt t.touched pid with
  | Some tch -> tch.page <- page
  | None ->
      Tb_sim.Sim.charge_wal_append t.sim;
      let lsn = t.next_lsn in
      t.next_lsn <- lsn + 1;
      let tch =
        {
          pid;
          page;
          before = Page_layout.snapshot page;
          before_lsn = Page_layout.lsn page;
          lsn;
          after = None;
        }
      in
      Page_layout.set_lsn page lsn;
      Hashtbl.replace t.touched pid tch;
      t.order <- tch :: t.order

(* One logical write record: [bytes] of before-image plus [bytes] of
   after-image join the log, and every filled log page costs one disk
   write.  This is, to the byte, the `log_bytes_pending` arithmetic the
   pre-WAL [Transaction.on_write] charged — the cost accounting is now
   derived from the records instead of asserted. *)
let logical_write t ~bytes =
  Tb_sim.Sim.charge_wal_append t.sim;
  t.pending <- t.pending + (2 * bytes);
  let page = t.sim.Tb_sim.Sim.cost.Tb_sim.Cost_model.page_size in
  while t.pending >= page do
    tick_write t;
    Tb_sim.Sim.charge_disk_write t.sim;
    t.pending <- t.pending - page
  done

(* Force the commit record: flush the partial log tail (one write, exactly
   the old commit-time charge), then capture after-images.  When the tail is
   empty the commit record piggybacks on the last full log page at no extra
   charge.  [commit_durable] flips only once the tail write survives — a
   crash during the force leaves a loser.  After-images are captured only
   under an armed fault layer: without one no crash can interrupt the
   upcoming page flush, so the copies would be pure host cost. *)
let force t =
  Tb_sim.Sim.charge_wal_append t.sim;
  if t.pending > 0 then begin
    tick_write t;
    Tb_sim.Sim.charge_disk_write t.sim;
    t.pending <- 0
  end;
  if Option.is_some t.fault then
    List.iter
      (fun tch -> tch.after <- Some (Page_layout.snapshot tch.page))
      t.order;
  t.commit_durable <- true

(* Truncate the log after a completed commit: serial transactions need no
   history past the last checkpoint. *)
let checkpoint t =
  Hashtbl.reset t.touched;
  t.order <- [];
  t.commit_durable <- false

(* Drop everything including the unflushed tail: transaction-off commits
   (which never logged their writes' images to begin with) and abort. *)
let discard t =
  checkpoint t;
  t.pending <- 0

(* Roll back: restore every touched page's durable image to its
   before-image, newest touch first.  Restores only pages whose image
   actually diverged (an untouched-on-disk page costs nothing), charging one
   undo write each. *)
let undo t disk =
  let restored = ref 0 in
  List.iter
    (fun tch ->
      if not (Bytes.equal (Disk.read_image disk tch.pid) tch.before) then begin
        Tb_sim.Sim.charge_undo_page t.sim;
        Disk.restore_image disk tch.pid tch.before ~lsn:tch.before_lsn;
        incr restored
      end)
    t.order;
  !restored

(* Replay a winner: restore every touched page's durable image to its
   after-image, oldest touch first. *)
let redo t disk =
  let restored = ref 0 in
  List.iter
    (fun tch ->
      match tch.after with
      | None -> failwith "Wal.redo: commit record without after-images"
      | Some after ->
          if not (Bytes.equal (Disk.read_image disk tch.pid) after) then begin
            Tb_sim.Sim.charge_redo_page t.sim;
            Disk.restore_image disk tch.pid after ~lsn:tch.lsn;
            incr restored
          end)
    (List.rev t.order);
  !restored
