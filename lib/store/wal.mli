(** ARIES-lite write-ahead log for the serial transaction model.

    O2's EWS logs before- and after-images of modified objects (Section 2:
    the "log file" the benchmark pays for in transaction mode).  This module
    makes that log real enough to recover from: it consolidates the images
    into one physical record per touched page (before-image at first write
    fetch, after-image at commit force), while the {e cost} of logging is
    still charged per logical object write — two images' worth of bytes, one
    simulated disk write per filled log page — exactly the arithmetic the
    pre-WAL accounting used, so fault-free runs are bit-identical.

    Transactions are serial, and the log is checkpointed (truncated) after
    every commit, so at any crash the log holds at most one transaction:
    a winner if its commit record became durable, else a loser. *)

type t

val create : Tb_sim.Sim.t -> t

(** Arm/disarm fault injection for log-page writes ([None] disarms). *)
val set_fault : t -> Tb_storage.Fault.t option -> unit

(** [note_touch t pid page] records a write fetch of [pid].  First touch
    per checkpoint interval captures the before-image and stamps the page
    with a fresh LSN; every touch re-points the log at the current working
    object.  Installed as the {!Tb_storage.Cache_stack} write observer. *)
val note_touch : t -> Tb_storage.Page_id.t -> Tb_storage.Page_layout.t -> unit

(** [logical_write t ~bytes] appends one logical write record ([bytes] of
    before- plus [bytes] of after-image) and charges one simulated disk
    write per log page filled.  May raise {!Tb_storage.Fault.Crash}. *)
val logical_write : t -> bytes:int -> unit

(** Log bytes buffered below one page (the unforced tail). *)
val pending_bytes : t -> int

(** Force the commit record: flush the log tail (one write if non-empty),
    capture after-images (under an armed fault layer), and mark the commit
    durable.  May raise {!Tb_storage.Fault.Crash} — in which case the
    commit is {e not} durable and recovery sees a loser. *)
val force : t -> unit

(** Whether the current interval's commit record reached the log. *)
val commit_durable : t -> bool

(** Truncate the log after a completed commit. *)
val checkpoint : t -> unit

(** Drop records and tail without forcing: transaction-off commits and
    abort. *)
val discard : t -> unit

(** Whether [pid] has a physical record in the current interval. *)
val covers : t -> Tb_storage.Page_id.t -> bool

val touched_pages : t -> int

(** [undo t disk] restores diverged durable images to their before-images,
    newest touch first, charging one undo write each.  Returns the number
    of pages restored. *)
val undo : t -> Tb_storage.Disk.t -> int

(** [redo t disk] restores diverged durable images to their after-images,
    oldest touch first, charging one redo write each.  Returns the number
    of pages restored.  Only valid after a durable commit. *)
val redo : t -> Tb_storage.Disk.t -> int
