(* Property tests for the B+-tree index layer: random operation sequences
   checked against a sorted-list reference model, deterministic split and
   rebalance boundary cases, leaf-chain range iteration, and the bulk-build
   equivalence guarantee — same tree, same search results, and bit-identical
   simulated charges as the incremental build it replaces. *)

open Tb_store
module Rid = Tb_storage.Rid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh_stack () =
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100) in
  let disk = Tb_storage.Disk.create sim in
  ( sim,
    Tb_storage.Cache_stack.create sim disk ~server_pages:64 ~client_pages:256
  )

let rid i = Rid.make ~file:0 ~page:(i / 8) ~slot:(i mod 8)

let cmp_pair (k1, r1) (k2, r2) =
  let c = compare (k1 : int) k2 in
  if c <> 0 then c else Rid.compare r1 r2

(* Reference model: a sorted (key, rid) list with set semantics — exactly
   the contract btree.mli documents. *)
let model_insert m p =
  if List.exists (fun q -> cmp_pair p q = 0) m then m
  else List.sort cmp_pair (p :: m)

let model_delete m p = List.filter (fun q -> cmp_pair p q <> 0) m
let model_mem m p = List.exists (fun q -> cmp_pair p q = 0) m

let model_search m k =
  List.filter_map (fun (k', r) -> if k' = k then Some r else None) m

let dump t =
  let acc = ref [] in
  Btree.iter t (fun k r -> acc := (k, r) :: !acc);
  List.rev !acc

let same_rids = List.for_all2 (fun a b -> Rid.compare a b = 0)

(* --- random operations vs the reference model --- *)

let prop_vs_model =
  QCheck.Test.make ~name:"btree: random ops agree with sorted-map model"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 100 400) (pair (int_range 0 60) bool))
    (fun ops ->
      let _sim, stack = fresh_stack () in
      let t = Btree.create stack ~name:"prop" in
      let model = ref [] in
      List.iteri
        (fun i (key, ins) ->
          let p = (key, rid (i mod 64)) in
          if ins then begin
            Btree.insert t ~key ~rid:(snd p);
            model := model_insert !model p
          end
          else begin
            let expected = model_mem !model p in
            let found = Btree.delete t ~key ~rid:(snd p) in
            if found <> expected then
              QCheck.Test.fail_reportf "delete %d reported %b, model %b" key
                found expected;
            model := model_delete !model p
          end;
          if Btree.entry_count t <> List.length !model then
            QCheck.Test.fail_reportf "entry_count %d, model %d"
              (Btree.entry_count t) (List.length !model))
        ops;
      Btree.check_invariants t;
      (* Full contents in order, then per-key search results. *)
      if dump t <> !model then QCheck.Test.fail_report "iter disagrees";
      for key = 0 to 60 do
        if not (same_rids (Btree.search t ~key) (model_search !model key))
        then QCheck.Test.fail_reportf "search %d disagrees" key
      done;
      true)

(* --- split boundaries --- *)

(* leaf_cap is 200: 201 sorted inserts force exactly one leaf split. *)
let test_leaf_split_boundary () =
  let _sim, stack = fresh_stack () in
  let t = Btree.create stack ~name:"leaf" in
  for i = 0 to 200 do
    Btree.insert t ~key:i ~rid:(rid i)
  done;
  Btree.check_invariants t;
  check_int "all entries" 201 (Btree.entry_count t);
  check_int "iter count" 201 (List.length (dump t));
  List.iteri
    (fun i (k, r) ->
      check_int "sorted key" i k;
      check_bool "rid kept" true (Rid.compare r (rid i) = 0))
    (dump t)

(* internal_cap is 150: a sorted load large enough to split ~160 leaves off
   the rightmost path forces an internal (root) split and a height-3 tree;
   draining a prefix then exercises borrow/merge and the height shrink. *)
let test_internal_split_and_drain () =
  let _sim, stack = fresh_stack () in
  let t = Btree.create stack ~name:"deep" in
  let n = 16_384 in
  for i = 0 to n - 1 do
    Btree.insert t ~key:i ~rid:(rid i)
  done;
  Btree.check_invariants t;
  check_int "all entries" n (Btree.entry_count t);
  check_bool "spot search" true
    (same_rids (Btree.search t ~key:12_345) [ rid 12_345 ]);
  (* Delete a contiguous prefix: every removal lands in the leftmost leaf,
     repeatedly driving it under min occupancy — borrows, merges and
     eventually root height shrinks. *)
  for i = 0 to (3 * n / 4) - 1 do
    check_bool "prefix delete found" true (Btree.delete t ~key:i ~rid:(rid i))
  done;
  Btree.check_invariants t;
  check_int "remaining" (n / 4) (Btree.entry_count t);
  check_bool "deleted gone" true (Btree.search t ~key:0 = []);
  check_bool "survivor intact" true
    (same_rids (Btree.search t ~key:(n - 1)) [ rid (n - 1) ]);
  (* Drain completely: the tree must collapse back to a single empty leaf. *)
  for i = 3 * n / 4 to n - 1 do
    ignore (Btree.delete t ~key:i ~rid:(rid i))
  done;
  Btree.check_invariants t;
  check_int "empty" 0 (Btree.entry_count t)

(* --- leaf-chain range iteration --- *)

let test_range_over_leaf_chain () =
  let _sim, stack = fresh_stack () in
  let t = Btree.create stack ~name:"range" in
  (* Insert in a scattered order so the leaf chain is built by splits. *)
  for i = 0 to 999 do
    let k = i * 617 mod 1000 in
    Btree.insert t ~key:k ~rid:(rid k)
  done;
  let seen = ref [] in
  Btree.range t ~lo:250 ~hi:750 (fun k r -> seen := (k, r) :: !seen);
  let seen = List.rev !seen in
  check_int "range size" 500 (List.length seen);
  List.iteri
    (fun i (k, r) ->
      check_int "range key in order" (250 + i) k;
      check_bool "range rid" true (Rid.compare r (rid (250 + i)) = 0))
    seen

(* --- bulk build: same tree, same charges --- *)

(* The incremental reference bulk_add promises to match: sort the run, then
   loop the ordinary insert. *)
let build_incremental run =
  let sim, stack = fresh_stack () in
  let t = Btree.create stack ~name:"idx" in
  let sorted = Array.copy run in
  Array.sort cmp_pair sorted;
  Array.iter (fun (key, rid) -> Btree.insert t ~key ~rid) sorted;
  (sim, t)

let build_bulk run =
  let sim, stack = fresh_stack () in
  (sim, Btree.bulk_build stack ~name:"idx" run)

let assert_equiv label run =
  let sim_a, a = build_incremental run in
  let sim_b, b = build_bulk run in
  (* Charges first: [dump], [search] and [check_invariants] below fetch
     pages and so charge the sims themselves.  The bulk path must have been
     invisible to the simulation up to this point — every counter equal and
     the clock bit-identical (same float additions in the same order). *)
  check_bool (label ^ ": counters") true
    (sim_a.Tb_sim.Sim.counters = sim_b.Tb_sim.Sim.counters);
  check_bool (label ^ ": clock bits") true
    (Int64.bits_of_float (Tb_sim.Sim.elapsed_s sim_a)
    = Int64.bits_of_float (Tb_sim.Sim.elapsed_s sim_b));
  Btree.check_invariants b;
  check_int (label ^ ": entry_count") (Btree.entry_count a)
    (Btree.entry_count b);
  check_bool (label ^ ": contents") true (dump a = dump b);
  Array.iter
    (fun (key, _) ->
      check_bool
        (Printf.sprintf "%s: search %d" label key)
        true
        (same_rids (Btree.search a ~key) (Btree.search b ~key)))
    run

let test_bulk_equivalence () =
  assert_equiv "empty" [||];
  assert_equiv "single" [| (7, rid 7) |];
  assert_equiv "sorted unique" (Array.init 2000 (fun i -> (i, rid i)));
  assert_equiv "unsorted"
    (Array.init 2000 (fun i -> (i * 617 mod 2000, rid (i mod 512))));
  assert_equiv "duplicate keys, distinct rids"
    (Array.init 1500 (fun i -> (i / 3, rid i)));
  assert_equiv "exact duplicate pairs"
    (Array.init 1200 (fun i -> (i / 2, rid (i / 2))))

(* bulk_add into a non-empty tree must take the interleaving-safe path and
   still match the incremental reference exactly. *)
let test_bulk_into_nonempty () =
  let seed = Array.init 50 (fun i -> ((i * 40) + 7, rid i)) in
  let run = Array.init 800 (fun i -> (i * 617 mod 1000, rid (i mod 256))) in
  let sorted = Array.copy run in
  Array.sort cmp_pair sorted;
  let sim_a, a =
    let sim, stack = fresh_stack () in
    let t = Btree.create stack ~name:"idx" in
    Array.iter (fun (key, rid) -> Btree.insert t ~key ~rid) seed;
    Array.iter (fun (key, rid) -> Btree.insert t ~key ~rid) sorted;
    (sim, t)
  in
  let sim_b, b =
    let sim, stack = fresh_stack () in
    let t = Btree.create stack ~name:"idx" in
    Array.iter (fun (key, rid) -> Btree.insert t ~key ~rid) seed;
    Btree.bulk_add t run;
    (sim, t)
  in
  check_bool "nonempty: counters" true
    (sim_a.Tb_sim.Sim.counters = sim_b.Tb_sim.Sim.counters);
  check_bool "nonempty: clock bits" true
    (Int64.bits_of_float (Tb_sim.Sim.elapsed_s sim_a)
    = Int64.bits_of_float (Tb_sim.Sim.elapsed_s sim_b));
  Btree.check_invariants b;
  check_int "nonempty: entry_count" (Btree.entry_count a) (Btree.entry_count b);
  check_bool "nonempty: contents" true (dump a = dump b)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_vs_model;
    Alcotest.test_case "leaf split at capacity boundary" `Quick
      test_leaf_split_boundary;
    Alcotest.test_case "internal split, borrow/merge, height shrink" `Quick
      test_internal_split_and_drain;
    Alcotest.test_case "range iteration across the leaf chain" `Quick
      test_range_over_leaf_chain;
    Alcotest.test_case "bulk build matches incremental build and charges"
      `Quick test_bulk_equivalence;
    Alcotest.test_case "bulk add into non-empty tree stays equivalent" `Quick
      test_bulk_into_nonempty;
  ]
