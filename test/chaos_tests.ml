(* The chaos harness: breaking shards on purpose, deterministically.

   An S=4, R=2 replicated build is attacked through the registry of
   per-shard fault schedules: whole-shard kills keyed to exchange-boundary
   ordinals, self-healing partitions, and transient RPC loss.  Every run
   must produce the fault-free twin's result multiset, reconcile its
   per-operator frames exactly against the global counters, and — given
   the same seed — replay the same failover decisions bit for bit.

   The default suite smokes one kill point per algorithm plus one per
   failover phase (dispatch, pre-ship, route, dest); set
   TREEBENCH_CHAOS_FULL=1 to kill every shard at every boundary across
   the full algorithm × access-path matrix. *)

open Tb_query
module Database = Tb_store.Database
module Shard_map = Tb_store.Shard_map
module Fault = Tb_storage.Fault
module Value = Tb_store.Value
module Counters = Tb_sim.Counters
module Sim = Tb_sim.Sim
module Generator = Tb_derby.Generator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let full_sweep () = Sys.getenv_opt "TREEBENCH_CHAOS_FULL" <> None

let small_cfg () =
  let scale = 1000 in
  {
    (Generator.config ~scale `Deep Generator.Class_clustered) with
    Generator.n_providers = 25;
    fanout = 4;
  }

let small_cost = Tb_sim.Cost_model.scaled 1000
let shards = 4
let reg_seed = 0xC4A05

(* One replicated build for the whole suite: [Shard_map.repair] between
   runs restores the original primaries and followers, so every kill point
   attacks the same bytes. *)
let built =
  lazy (Generator.build_sharded ~cost:small_cost ~shards ~replicas:2 (small_cfg ()))

let built_r1 =
  lazy (Generator.build_sharded ~cost:small_cost ~shards (small_cfg ()))

type cap = {
  rows : int;
  values : string list;  (* sorted rendering: the result multiset *)
  counters : string;
  clock_bits : int64;
  peak : int;
  reconciled : bool;
  lanes : Exec.lane_report;
  boundaries : int array;  (* per-shard exchange-boundary count *)
  rpc_timeouts : int;
  rpc_retries : int;
  failovers : int;
}

(* Run one query cold against [smap] under a fresh registry (same master
   seed every time — determinism is the whole point), optionally armed by
   [arm].  [registry = false] runs with no fault layer at all, the
   baseline the armed-but-quiescent run must match bit for bit. *)
let run_chaos ?(registry = true) ?(arm = fun _ -> ()) ~smap ?force_algo
    ?force_seq ?force_sorted q =
  let sim = Shard_map.sim smap in
  Shard_map.set_fault_registry smap None;
  Shard_map.repair smap;
  let reg =
    if registry then begin
      let reg = Fault.registry ~seed:reg_seed ~shards:(Shard_map.count smap) in
      Shard_map.set_fault_registry smap (Some reg);
      arm reg;
      Some reg
    end
    else None
  in
  Shard_map.cold_restart smap;
  Sim.reset sim;
  let r, root, global, lanes =
    Planner.run_sharded_explained smap q ?force_algo ?force_seq ?force_sorted
      ~keep:true
  in
  let rows = Query_result.count r in
  let values =
    List.sort compare
      (List.map (Format.asprintf "%a" Value.pp) (Query_result.values r))
  in
  Query_result.dispose r;
  let c = sim.Sim.counters in
  {
    rows;
    values;
    counters = Format.asprintf "%a" Counters.pp c;
    clock_bits = Int64.bits_of_float (Sim.elapsed_s sim);
    peak = sim.Sim.peak_working_bytes;
    reconciled = Op.reconciles ~global root;
    lanes;
    boundaries =
      (match reg with
      | None -> [||]
      | Some reg ->
          Array.init (Fault.registry_size reg) (fun s ->
              Fault.boundaries_seen (Fault.shard_fault reg s)));
    rpc_timeouts = c.Counters.rpc_timeouts;
    rpc_retries = c.Counters.rpc_retries;
    failovers = c.Counters.failovers;
  }

let sel = "select pa.age from pa in Patients where pa.mrn < 40"

let join =
  "select [p.name, pa.age] from p in Providers, pa in p.clients where pa.mrn \
   < 60 and p.upin < 15"

let algos =
  [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]

(* name, force_algo, force_seq, force_sorted, query *)
let matrix () =
  [
    ("sel/seq", None, Some true, None, sel);
    ("sel/index", None, None, Some false, sel);
    ("sel/sorted", None, None, Some true, sel);
  ]
  @ List.concat_map
      (fun algo ->
        let n = Plan.algo_name algo in
        [
          (n ^ "/seq", Some algo, Some true, None, join);
          (n ^ "/index", Some algo, None, Some false, join);
          (n ^ "/sorted", Some algo, None, Some true, join);
        ])
      algos

(* The phase a kill at 1-based boundary [k] must fail over in: local plans
   tick twice per shard (dispatch, pre-ship), exchange plans three times
   (pre-route, post-route, pre-dest). *)
let expected_phase ~per_shard ~k =
  if per_shard = 2 then "local" else if k <= 2 then "route" else "dest"

(* Kill shard [victim] at boundary [k] and hold the run to the fault-free
   twin: same multiset, frames reconcile, exactly one recorded failover
   with the right coordinates. *)
let check_kill ~name ~baseline ~smap ?force_algo ?force_seq ?force_sorted q
    ~victim ~k =
  let cap =
    run_chaos ~smap ?force_algo ?force_seq ?force_sorted q
      ~arm:(fun reg ->
        Fault.schedule_shard_crash (Fault.shard_fault reg victim) ~at_boundary:k)
  in
  let tag = Printf.sprintf "%s kill s%d@b%d" name victim k in
  check_int (tag ^ ": rows") baseline.rows cap.rows;
  Alcotest.(check (list string))
    (tag ^ ": result multiset survives the kill")
    baseline.values cap.values;
  check_bool (tag ^ ": frames reconcile") true cap.reconciled;
  check_bool (tag ^ ": degraded") true cap.lanes.Exec.degraded;
  check_int (tag ^ ": one failover charged") 1 cap.failovers;
  match cap.lanes.Exec.failovers with
  | [ fo ] ->
      check_int (tag ^ ": failover shard") victim fo.Exec.fo_shard;
      check_int (tag ^ ": failover boundary") k fo.Exec.fo_boundary;
      check_string
        (tag ^ ": failover phase")
        (expected_phase ~per_shard:baseline.boundaries.(victim) ~k)
        fo.Exec.fo_phase;
      check_bool (tag ^ ": failover took lane time") true (fo.Exec.fo_ms > 0.0)
  | fos -> Alcotest.failf "%s: expected 1 failover, saw %d" tag (List.length fos)

(* --- armed-but-quiescent adds nothing --- *)

(* The fault machinery must be free when it does not fire: an R=2 build
   with a wired (but quiescent) registry replays the R=1 run's query-time
   charge stream bit for bit — counters, clock, peak memory.  This is the
   query-side half of the PR 7 parity promise; the S=1/R=1 golden
   fingerprint in [Invariance_tests] is the other half. *)
let test_quiescent_bit_identity () =
  let r1 = (Lazy.force built_r1).Generator.smap in
  let r2 = (Lazy.force built).Generator.smap in
  let check_q name ?force_algo ?force_seq ?force_sorted q =
    let a = run_chaos ~registry:false ~smap:r1 ?force_algo ?force_seq ?force_sorted q in
    let b = run_chaos ~smap:r2 ?force_algo ?force_seq ?force_sorted q in
    check_int (name ^ ": rows") a.rows b.rows;
    check_string (name ^ ": counters") a.counters b.counters;
    Alcotest.(check int64) (name ^ ": clock bits") a.clock_bits b.clock_bits;
    check_int (name ^ ": peak working bytes") a.peak b.peak;
    check_int (name ^ ": no timeouts") 0 b.rpc_timeouts;
    check_int (name ^ ": no failovers") 0 b.failovers
  in
  check_q "sel/seq" ~force_seq:true sel;
  check_q "sel/sorted" ~force_sorted:true sel;
  check_q "phj" ~force_algo:Plan.PHJ join;
  check_q "smj" ~force_algo:Plan.SMJ join

(* --- the kill sweep --- *)

(* Default: one first-boundary kill per algorithm, plus one kill per
   failover phase (pre-ship for a local plan, post-route and pre-dest for
   an exchange plan).  TREEBENCH_CHAOS_FULL=1: every shard × every
   boundary × the whole algorithm × access-path matrix. *)
let test_kill_sweep () =
  let smap = (Lazy.force built).Generator.smap in
  let full = full_sweep () in
  List.iter
    (fun (name, force_algo, force_seq, force_sorted, q) ->
      let baseline =
        run_chaos ~smap ?force_algo ?force_seq ?force_sorted q
      in
      check_bool (name ^ ": baseline reconciles") true baseline.reconciled;
      check_bool
        (name ^ ": boundaries ticked on every shard")
        true
        (Array.for_all (fun b -> b >= 2) baseline.boundaries);
      let kills =
        if full then
          List.concat_map
            (fun victim ->
              List.init baseline.boundaries.(victim) (fun k ->
                  (victim, k + 1)))
            (List.init shards Fun.id)
        else
          (* One kill per plan, victims strided by name.  sel/seq dies at
             its pre-ship boundary and phj/index at its deepest one, so the
             smoke still crosses all three failover phases. *)
          match name with
          | "sel/seq" -> [ (1, 2) ]
          | "phj/index" -> [ (2, baseline.boundaries.(2)) ]
          | _ -> [ (Hashtbl.hash name mod shards, 1) ]
      in
      List.iter
        (fun (victim, k) ->
          check_kill ~name ~baseline ~smap ?force_algo ?force_seq
            ?force_sorted q ~victim ~k)
        kills)
    (if full then matrix ()
     else
       (* Smoke: every algorithm once, plus the three selection paths. *)
       List.filter
         (fun (name, _, _, _, _) ->
           String.length name >= 4
           && (String.sub name 0 4 = "sel/"
              || Filename.check_suffix name "/index"))
         (matrix ()))

(* --- partitions heal without failover --- *)

let test_partition_heals () =
  let smap = (Lazy.force built).Generator.smap in
  let baseline = run_chaos ~smap ~force_seq:true sel in
  let cap =
    run_chaos ~smap ~force_seq:true sel ~arm:(fun reg ->
        Fault.schedule_partition (Fault.shard_fault reg 2) ~at_boundary:1
          ~rounds:3)
  in
  Alcotest.(check (list string))
    "partition: result multiset unchanged" baseline.values cap.values;
  check_int "partition: three timeout rounds charged" 3 cap.rpc_timeouts;
  check_int "partition: three backoff retries charged" 3 cap.rpc_retries;
  check_int "partition: no failover" 0 cap.failovers;
  check_bool "partition: not degraded" false cap.lanes.Exec.degraded;
  check_bool "partition: reconciles" true cap.reconciled;
  check_bool "partition: waiting cost is on the clock" true
    (cap.clock_bits <> baseline.clock_bits)

(* --- transient RPC loss --- *)

let test_rpc_retries () =
  let smap = (Lazy.force built).Generator.smap in
  let baseline = run_chaos ~smap ~force_algo:Plan.PHJ join in
  let cap =
    run_chaos ~smap ~force_algo:Plan.PHJ join ~arm:(fun reg ->
        Fault.iter_registry reg (fun f ->
            Fault.set_rpc_faults f ~permille:300 ~max_retries:3))
  in
  Alcotest.(check (list string))
    "rpc loss: result multiset unchanged" baseline.values cap.values;
  check_bool "rpc loss: timeouts happened" true (cap.rpc_timeouts > 0);
  check_int "rpc loss: every timeout retried" cap.rpc_timeouts cap.rpc_retries;
  check_int "rpc loss: no failover" 0 cap.failovers;
  check_bool "rpc loss: reconciles" true cap.reconciled

(* --- determinism: the same seed replays the same disaster --- *)

let test_chaos_determinism () =
  let smap = (Lazy.force built).Generator.smap in
  let attack reg =
    Fault.iter_registry reg (fun f ->
        Fault.set_rpc_faults f ~permille:250 ~max_retries:3);
    Fault.schedule_shard_crash (Fault.shard_fault reg 0) ~at_boundary:1
  in
  let once () = run_chaos ~smap ~force_algo:Plan.PHJ join ~arm:attack in
  let a = once () and b = once () in
  check_string "counters replay bit for bit" a.counters b.counters;
  Alcotest.(check int64) "clock replays bit for bit" a.clock_bits b.clock_bits;
  Alcotest.(check (list string)) "same rows" a.values b.values;
  check_int "same retry count" a.rpc_retries b.rpc_retries;
  Alcotest.(check (list string))
    "same failover decisions"
    (List.map
       (fun fo ->
         Printf.sprintf "s%d b%d %s %h" fo.Exec.fo_shard fo.Exec.fo_boundary
           fo.Exec.fo_phase fo.Exec.fo_ms)
       a.lanes.Exec.failovers)
    (List.map
       (fun fo ->
         Printf.sprintf "s%d b%d %s %h" fo.Exec.fo_shard fo.Exec.fo_boundary
           fo.Exec.fo_phase fo.Exec.fo_ms)
       b.lanes.Exec.failovers);
  check_bool "the attack actually fired" true
    (a.failovers = 1 && a.rpc_retries > 0)

(* --- promotion verification (QCheck) --- *)

let promo_schema =
  Tb_store.Schema.make
    ~classes:
      [
        {
          Tb_store.Schema.cls_name = "Patient";
          attrs =
            [
              ("name", Tb_store.Schema.TString);
              ("mrn", Tb_store.Schema.TInt);
              ("age", Tb_store.Schema.TInt);
            ];
        };
      ]
    ~roots:[ ("Patients", Tb_store.Schema.TSet (Tb_store.Schema.TRef "Patient")) ]

let promo_patient i =
  Value.Tuple
    [
      ("name", Value.String (Printf.sprintf "p%04d" i));
      ("mrn", Value.Int i);
      ("age", Value.Int (20 + (i mod 60)));
    ]

(* Crash the follower's own machine mid-commit (clean or torn), then ask
   [Shard_map.promote] to install it: promotion must either refuse or
   produce a shard byte-identical to a commit-hook oracle — never a
   silently corrupt primary.  Crash points beyond the workload's writes
   degenerate to promoting a clean follower, which must also hold. *)
let promotion_catches_damage (at_write, torn) =
  let sim = Sim.create (Tb_sim.Cost_model.scaled 100) in
  let smap =
    Shard_map.create sim ~schema:promo_schema ~shards:2 ~replicas:2
      ~server_pages:32 ~client_pages:48
      ~txn_mode:Tb_store.Transaction.Standard ~key_attr:"mrn" ~seed:5 ()
  in
  Shard_map.iter_group smap (fun _ group ->
      List.iter
        (fun db ->
          let f = Database.new_file db ~name:"patients" in
          Database.bind_class db ~cls:"Patient" f)
        group);
  let follower = List.nth (Shard_map.group smap 0) 1 in
  let digests = Hashtbl.create 8 in
  Database.set_commit_hook follower
    (Some
       (fun ~seq ->
         Hashtbl.replace digests seq (Database.durable_fingerprint follower)));
  Database.commit follower;
  Hashtbl.replace digests
    (Database.commit_seq follower)
    (Database.durable_fingerprint follower);
  let f = Fault.create ~seed:13 in
  Database.set_fault follower (Some f);
  Fault.schedule_crash f ~at_write ~torn;
  (try
     for batch = 0 to 5 do
       Database.with_txn follower (fun db ->
           for i = batch * 30 to (batch * 30) + 29 do
             ignore (Database.insert_object db ~cls:"Patient" ~indexed:true
                       (promo_patient i))
           done)
     done
   with Fault.Crash -> ());
  match Shard_map.promote smap ~shard:0 with
  | Error _ -> true (* verification refused the damaged replica *)
  | Ok db -> (
      let seq = Database.commit_seq db in
      match Hashtbl.find_opt digests seq with
      | None -> false
      | Some fp -> String.equal fp (Database.durable_fingerprint db))

let promotion_prop =
  QCheck.Test.make ~count:25
    ~name:"promotion: checksum walk catches every torn/lost page"
    QCheck.(pair (int_range 1 400) bool)
    promotion_catches_damage

(* Exhausting the replicas is an error, not a wrong answer. *)
let test_unrecoverable () =
  let smap = (Lazy.force built).Generator.smap in
  Shard_map.set_fault_registry smap None;
  Shard_map.repair smap;
  let reg = Fault.registry ~seed:reg_seed ~shards in
  Shard_map.set_fault_registry smap (Some reg);
  check_int "R=2: one follower standing" 2 (Shard_map.live_replicas smap 1);
  (match Shard_map.promote smap ~shard:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "healthy follower refused: %s" e);
  check_int "after promote: primary only" 1 (Shard_map.live_replicas smap 1);
  (match Shard_map.promote smap ~shard:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "promoted a replica that does not exist");
  Shard_map.set_fault_registry smap None;
  Shard_map.repair smap

let suite =
  [
    Alcotest.test_case "quiescent faults add zero charges (R=2 = R=1)" `Quick
      test_quiescent_bit_identity;
    Alcotest.test_case "kill sweep: every death yields the fault-free answer"
      `Slow test_kill_sweep;
    Alcotest.test_case "partition: heals by itself, charged wait" `Quick
      test_partition_heals;
    Alcotest.test_case "rpc loss: retried with backoff, same answer" `Quick
      test_rpc_retries;
    Alcotest.test_case "determinism: one seed, one disaster" `Quick
      test_chaos_determinism;
    QCheck_alcotest.to_alcotest promotion_prop;
    Alcotest.test_case "promotion: refuses when no replica remains" `Quick
      test_unrecoverable;
  ]
