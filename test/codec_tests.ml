(* Codec property tests: for every Value.t constructor — including the
   empty-string and nested-collection corners — encode/decode must
   round-trip, [skip] must land exactly where [decode] does, and both must
   behave identically when the encoding sits mid-buffer.  The packed
   execution path navigates records purely with [skip], so a single
   off-by-one here silently corrupts every offset program. *)

module Value = Tb_store.Value
module Codec = Tb_store.Codec
module Rid = Tb_storage.Rid

let rid_gen =
  QCheck.Gen.(
    map3
      (fun file page slot -> Rid.make ~file ~page ~slot)
      (int_range 0 7) (int_range 0 10_000) (int_range 0 200))

(* Sized generator covering every constructor; collections recurse with a
   shrinking budget so nesting terminates but still reaches depth 3+. *)
let value_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Value.Nil;
            map (fun i -> Value.Int i) (int_range (-0x4000_0000) 0x3FFF_FFFF);
            map (fun f -> Value.Real f) (float_range (-1e9) 1e9);
            map (fun b -> Value.Bool b) bool;
            map (fun c -> Value.Char (Char.chr c)) (int_range 0 255);
            (* Deliberately weight the empty string in. *)
            map
              (fun s -> Value.String s)
              (oneof [ return ""; string_size (int_range 0 40) ]);
            map (fun r -> Value.Ref r) rid_gen;
            map (fun r -> Value.Big_set r) rid_gen;
          ]
      in
      if n <= 0 then leaf
      else
        let sub = self (n / 4) in
        oneof
          [
            leaf;
            map (fun vs -> Value.Set vs) (list_size (int_range 0 5) sub);
            map (fun vs -> Value.List vs) (list_size (int_range 0 5) sub);
            map
              (fun vs ->
                Value.Tuple (List.mapi (fun i v -> ("f" ^ string_of_int i, v)) vs))
              (list_size (int_range 0 5) sub);
          ])

let value_arb =
  QCheck.make value_gen ~print:(fun v -> Format.asprintf "%a" Value.pp v)

(* Embed the encoding mid-buffer between junk guard bytes, so decode/skip
   are exercised at a nonzero [pos] with trailing garbage — exactly how
   the packed path sees them inside a slotted page. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"codec: decode/skip round-trip every constructor"
    ~count:500 value_arb (fun v ->
      let enc = Codec.encode v in
      let size = Codec.encoded_size v in
      if Bytes.length enc <> size then
        QCheck.Test.fail_reportf "encoded_size %d but encode produced %d" size
          (Bytes.length enc);
      let pad = 5 in
      let buf = Bytes.make (pad + size + 7) '\xAA' in
      Bytes.blit enc 0 buf pad size;
      let v', after = Codec.decode buf ~pos:pad in
      if not (Value.equal v v') then
        QCheck.Test.fail_reportf "decode disagrees: %a vs %a" Value.pp v
          Value.pp v';
      if after <> pad + size then
        QCheck.Test.fail_reportf "decode stopped at %d, expected %d" after
          (pad + size);
      let skipped = Codec.skip buf ~pos:pad in
      if skipped <> after then
        QCheck.Test.fail_reportf "skip landed at %d, decode at %d" skipped
          after;
      true)

(* The corners the generator might under-sample, pinned explicitly. *)
let explicit_corners () =
  let check v =
    let enc = Codec.encode v in
    let v', after = Codec.decode enc ~pos:0 in
    Alcotest.(check bool)
      (Format.asprintf "round-trip %a" Value.pp v)
      true
      (Value.equal v v' && after = Bytes.length enc
      && Codec.skip enc ~pos:0 = after)
  in
  List.iter check
    [
      Value.Nil;
      Value.String "";
      Value.Char '\000';
      Value.Int (-0x4000_0000);
      Value.Set [];
      Value.List [];
      Value.Tuple [];
      Value.List [ Value.List [ Value.List [ Value.String "" ] ] ];
      Value.Tuple
        [
          ("empty", Value.String "");
          ("nested", Value.Set [ Value.Nil; Value.List [ Value.Int 0 ] ]);
        ];
    ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "codec: explicit corner values" `Quick explicit_corners;
  ]
