(* Edge cases and failure injection across the stack. *)

open Tb_query
module Value = Tb_store.Value
module Schema = Tb_store.Schema
module Database = Tb_store.Database
module Rid = Tb_storage.Rid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- storage --- *)

let test_page_slot_bounds () =
  let p = Tb_storage.Page_layout.create ~size:128 in
  check_bool "read out of range" true
    (match Tb_storage.Page_layout.read p 3 with
    | exception Not_found -> true
    | _ -> false);
  check_bool "delete out of range" true
    (match Tb_storage.Page_layout.delete p 0 with
    | exception Not_found -> true
    | _ -> false);
  check_bool "empty insert rejected" true
    (match Tb_storage.Page_layout.insert p (Bytes.create 0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cache_read_your_writes_under_pressure () =
  (* Write a record, evict it through a tiny cache, read it back. *)
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100) in
  let disk = Tb_storage.Disk.create sim in
  let stack =
    Tb_storage.Cache_stack.create sim disk ~server_pages:2 ~client_pages:2
  in
  let hf = Tb_storage.Heap_file.create stack ~name:"h" in
  let rid = Tb_storage.Heap_file.insert hf (Bytes.of_string "precious") in
  (* Flood both caches. *)
  for _ = 1 to 40 do
    ignore (Tb_storage.Heap_file.insert hf (Bytes.make 600 'x'))
  done;
  Alcotest.(check string)
    "written data survives eviction" "precious"
    (Bytes.to_string (Tb_storage.Heap_file.read hf rid))

let test_big_collection_chunk_boundaries () =
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100) in
  let disk = Tb_storage.Disk.create sim in
  let stack =
    Tb_storage.Cache_stack.create sim disk ~server_pages:32 ~client_pages:64
  in
  let heap = Tb_storage.Heap_file.create stack ~name:"coll" in
  (* Elements sized so several land exactly on the packing boundary. *)
  List.iter
    (fun n ->
      let elems = List.init n (fun i -> Tb_store.Value.Int i) in
      let head = Tb_store.Big_collection.create heap elems in
      check_int
        (Printf.sprintf "roundtrip %d elements" n)
        n
        (Tb_store.Big_collection.length heap head);
      let back = Tb_store.Big_collection.to_list heap head in
      check_bool "order kept" true (List.for_all2 Tb_store.Value.equal elems back))
    [ 1; 639; 640; 641; 1280; 5000 ]

(* --- btree --- *)

let test_btree_empty_and_degenerate_ranges () =
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100) in
  let disk = Tb_storage.Disk.create sim in
  let stack =
    Tb_storage.Cache_stack.create sim disk ~server_pages:8 ~client_pages:16
  in
  let tree = Tb_store.Btree.create stack ~name:"t" in
  check_int "empty search" 0 (List.length (Tb_store.Btree.search tree ~key:5));
  check_bool "empty bounds" true (Tb_store.Btree.key_bounds tree = None);
  let n = ref 0 in
  Tb_store.Btree.range tree (fun _ _ -> incr n);
  check_int "empty range" 0 !n;
  for i = 0 to 99 do
    Tb_store.Btree.insert tree ~key:i ~rid:(Rid.make ~file:0 ~page:i ~slot:0)
  done;
  let m = ref 0 in
  Tb_store.Btree.range tree ~lo:50 ~hi:50 (fun _ _ -> incr m);
  check_int "lo = hi is empty" 0 !m;
  Tb_store.Btree.range tree ~lo:70 ~hi:60 (fun _ _ -> incr m);
  check_int "inverted range is empty" 0 !m

let btree_mixed_ops_invariants =
  QCheck.Test.make ~name:"btree: invariants across mixed insert/delete" ~count:25
    QCheck.(list_of_size (Gen.int_range 50 300) (pair (int_range 0 40) bool))
    (fun ops ->
      let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100) in
      let disk = Tb_storage.Disk.create sim in
      let stack =
        Tb_storage.Cache_stack.create sim disk ~server_pages:16 ~client_pages:64
      in
      let tree = Tb_store.Btree.create stack ~name:"t" in
      List.iteri
        (fun i (key, insert) ->
          let rid = Rid.make ~file:0 ~page:i ~slot:0 in
          if insert then Tb_store.Btree.insert tree ~key ~rid
          else ignore (Tb_store.Btree.delete tree ~key ~rid))
        ops;
      Tb_store.Btree.check_invariants tree;
      true)

(* --- OQL corner cases --- *)

let small_db () =
  let cfg =
    {
      (Tb_derby.Generator.config ~scale:1000 `Deep
         Tb_derby.Generator.Class_clustered)
      with
      Tb_derby.Generator.n_providers = 20;
      fanout = 5;
    }
  in
  Tb_derby.Generator.build ~cost:(Tb_sim.Cost_model.scaled 1000) cfg

let test_parser_aggregate_roundtrip () =
  let q = Oql_parser.parse "select avg(pa.age) from pa in Patients where pa.num >= 3" in
  (match q.Oql_ast.select with
  | Oql_ast.Aggregate (Oql_ast.Avg, Oql_ast.Path ("pa", "age")) -> ()
  | _ -> Alcotest.fail "aggregate shape");
  let printed = Format.asprintf "%a" Oql_ast.pp_query q in
  check_bool "pp/parse roundtrip" true (Oql_parser.parse printed = q)

let test_equality_predicate_uses_index () =
  let b = small_db () in
  let db = b.Tb_derby.Generator.db in
  (match
     Planner.plan db (Oql_parser.parse "select pa from pa in Patients where pa.mrn = 42")
   with
  | Plan.Selection { access = Plan.Index_scan { lo = Some 42; hi = Some 43; _ }; _ }
    ->
      ()
  | p -> Alcotest.failf "expected point index scan, got %a" Plan.pp p);
  let r = Planner.run db "select pa.name from pa in Patients where pa.mrn = 42" ~keep:true in
  check_int "point lookup" 1 (Query_result.count r);
  Query_result.dispose r

let test_gt_and_multi_predicates () =
  let b = small_db () in
  let db = b.Tb_derby.Generator.db in
  (* 20*5 = 100 patients; mrn in 0..99. *)
  let r =
    Planner.run db
      "select pa.name from pa in Patients where pa.mrn > 89 and pa.mrn <= 95"
      ~keep:true
  in
  check_int "window" 6 (Query_result.count r);
  Query_result.dispose r;
  (* Residual predicate on a non-indexed attribute. *)
  let r =
    Planner.run db
      "select pa.name from pa in Patients where pa.mrn < 50 and pa.sex = 'F'"
      ~keep:true
  in
  check_int "residual sex filter" 25 (Query_result.count r);
  Query_result.dispose r

let test_select_constant_and_nil () =
  let b = small_db () in
  let db = b.Tb_derby.Generator.db in
  let r = Planner.run db "select 7 from pa in Patients where pa.mrn < 3" ~keep:true in
  Alcotest.(check (list bool))
    "constant rows" [ true; true; true ]
    (List.map (fun v -> Value.equal v (Value.Int 7)) (Query_result.values r));
  Query_result.dispose r

(* --- schemas without an inverse reference --- *)

let forest_schema =
  Schema.make
    ~classes:
      [
        {
          Schema.cls_name = "Parent";
          attrs = [ ("pid", Schema.TInt); ("kids", Schema.TSet (Schema.TRef "Kid")) ];
        };
        { Schema.cls_name = "Kid"; attrs = [ ("kid_id", Schema.TInt) ] };
      ]
    ~roots:
      [
        ("ParentsExt", Schema.TSet (Schema.TRef "Parent"));
        ("KidsExt", Schema.TSet (Schema.TRef "Kid"));
      ]

let forest_db () =
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 1000) in
  let db =
    Database.create sim ~schema:forest_schema ~server_pages:16 ~client_pages:64
      ~txn_mode:Tb_store.Transaction.Load_off ()
  in
  Database.bind_class db ~cls:"Parent" (Database.new_file db ~name:"parents");
  Database.bind_class db ~cls:"Kid" (Database.new_file db ~name:"kids");
  let kid_count = ref 0 in
  for pid = 0 to 9 do
    let kids =
      List.init 4 (fun _ ->
          let id = !kid_count in
          incr kid_count;
          Database.insert_object db ~cls:"Kid" (Value.Tuple [ ("kid_id", Value.Int id) ]))
    in
    ignore
      (Database.insert_object db ~cls:"Parent"
         (Value.Tuple
            [
              ("pid", Value.Int pid);
              ("kids", Value.Set (List.map (fun r -> Value.Ref r) kids));
            ]))
  done;
  db

let test_no_inverse_falls_back_to_nl () =
  let db = forest_db () in
  let q = Oql_parser.parse "select k from p in ParentsExt, k in p.kids" in
  (* Cost-based planning must not pick an algorithm that needs the missing
     inverse. *)
  (match Planner.plan ~mode:Planner.Cost_based db q with
  | Plan.Hier_join { algo = Plan.NL; inv_attr = None; _ } -> ()
  | p -> Alcotest.failf "expected NL, got %a" Plan.pp p);
  let r = Exec.run db (Planner.lower (Planner.plan db q)) ~keep:true in
  check_int "all pairs" 40 (Query_result.count r);
  Query_result.dispose r;
  (* Forcing a child-to-parent algorithm raises Unsupported. *)
  check_bool "forced NOJOIN rejected" true
    (match
       Exec.run db (Planner.lower (Planner.plan ~force_algo:Plan.NOJOIN db q)) ~keep:false
     with
    | exception Plan.Unsupported _ -> true
    | r ->
        Query_result.dispose r;
        false)

(* --- spilled clients collections in joins --- *)

let test_joins_over_spilled_collections () =
  (* Fanout large enough that the clients sets live in the collection file;
     every algorithm must still agree. *)
  let cfg =
    {
      (Tb_derby.Generator.config ~scale:1000 `Wide
         Tb_derby.Generator.Class_clustered)
      with
      Tb_derby.Generator.n_providers = 4;
      fanout = 600;
    }
  in
  let b = Tb_derby.Generator.build ~cost:(Tb_sim.Cost_model.scaled 1000) cfg in
  let db = b.Tb_derby.Generator.db in
  (* Confirm the premise: clients really did spill. *)
  let _, pv = Database.read_object db b.Tb_derby.Generator.providers.(0) in
  (match Value.field pv "clients" with
  | Value.Big_set _ -> ()
  | _ -> Alcotest.fail "expected spilled clients");
  let q =
    "select count(pa) from p in Providers, pa in p.clients where pa.mrn < \
     1200 and p.upin < 3"
  in
  let counts =
    List.map
      (fun algo ->
        Database.cold_restart db;
        let r = Planner.run db q ~force_algo:algo ~keep:true in
        let n =
          match Query_result.values r with
          | [ Value.Int n ] -> n
          | _ -> Alcotest.fail "count shape"
        in
        Query_result.dispose r;
        n)
      [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]
  in
  match counts with
  | c :: rest ->
      check_bool "positive" true (c > 0);
      List.iter (check_int "all algorithms agree over Big_sets" c) rest
  | [] -> Alcotest.fail "no counts"

let suite =
  [
    Alcotest.test_case "page: slot bounds" `Quick test_page_slot_bounds;
    Alcotest.test_case "cache: read your writes under pressure" `Quick
      test_cache_read_your_writes_under_pressure;
    Alcotest.test_case "big collection: chunk boundaries" `Quick
      test_big_collection_chunk_boundaries;
    Alcotest.test_case "btree: empty and degenerate ranges" `Quick
      test_btree_empty_and_degenerate_ranges;
    QCheck_alcotest.to_alcotest btree_mixed_ops_invariants;
    Alcotest.test_case "parser: aggregate roundtrip" `Quick
      test_parser_aggregate_roundtrip;
    Alcotest.test_case "planner: equality predicate uses the index" `Quick
      test_equality_predicate_uses_index;
    Alcotest.test_case "exec: windows and residual predicates" `Quick
      test_gt_and_multi_predicates;
    Alcotest.test_case "exec: constant projection" `Quick
      test_select_constant_and_nil;
    Alcotest.test_case "no inverse: NL fallback, NOJOIN rejected" `Quick
      test_no_inverse_falls_back_to_nl;
    Alcotest.test_case "joins over spilled collections" `Quick
      test_joins_over_spilled_collections;
  ]
