(* The regression gate behind the hot-path overhaul: every real-time
   optimisation (lazy record decode, slot-compiled attributes, packed page
   ids, the intrusive LRU) must be invisible to the simulated cost model.
   The golden file was captured from the engine before the optimisations
   landed; re-running the same fig6/fig7/fig9/fig11-fig15 workload must
   reproduce it bit for bit — the simulated clock is compared as raw float
   bits, alongside every Counters field, the result cardinality and the
   simulated memory peak.

   To re-capture after an *intentional* cost-model change:
     dune exec bench/fingerprint_dump.exe > test/counter_golden_scale40.txt *)

let golden_file = "counter_golden_scale40.txt"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_counters_match_golden () =
  let golden = read_lines golden_file in
  let got = Tb_core.Fingerprint.collect ~scale:40 () in
  Alcotest.(check int) "fingerprint line count" (List.length golden)
    (List.length got);
  List.iter2
    (fun want have -> Alcotest.(check string) "fingerprint line" want have)
    golden got

(* Process-level state hygiene (treelint rule R4's dynamic counterpart):
   running the whole workload twice in one process must give bit-identical
   fingerprints.  Any toplevel ref/table that survives a run and leaks into
   the next — a forgotten spill counter, a stale cache — shows up here. *)
let test_back_to_back_runs_identical () =
  let first = Tb_core.Fingerprint.collect ~scale:10 () in
  let second = Tb_core.Fingerprint.collect ~scale:10 () in
  Alcotest.(check int) "fingerprint line count" (List.length first)
    (List.length second);
  List.iter2
    (fun want have -> Alcotest.(check string) "fingerprint line" want have)
    first second

(* The sharded engine at S=1 must be the unsharded engine, bit for bit:
   one-shard sharded runs of the selection workload reproduce the golden
   file's "sel " lines byte-identically — same build charge stream, same
   plans (no Gather/Shard_lane at S=1), same clock bits. *)
let test_sharded_s1_matches_golden () =
  let is_sel l = String.length l >= 4 && String.equal (String.sub l 0 4) "sel " in
  let golden = List.filter is_sel (read_lines golden_file) in
  let got = Tb_core.Fingerprint.sharded_selection_lines ~shards:1 ~scale:40 () in
  Alcotest.(check int) "selection line count" (List.length golden)
    (List.length got);
  List.iter2
    (fun want have -> Alcotest.(check string) "S=1 sharded line" want have)
    golden got

let suite =
  [
    Alcotest.test_case "counters: golden fingerprint (scale 40)" `Slow
      test_counters_match_golden;
    Alcotest.test_case "counters: back-to-back runs are identical" `Slow
      test_back_to_back_runs_identical;
    Alcotest.test_case "counters: S=1 sharded engine matches golden" `Slow
      test_sharded_s1_matches_golden;
  ]
