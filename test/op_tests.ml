(* Per-operator tests: the covering-Fetch shortcut, spill-record round
   trips, the Spill_partition bucket-0 memory guarantee, claim/release
   leaks on mid-query exceptions, and the explain invariance — every
   operator frame must reconcile exactly against the global counters. *)

open Tb_query
module Database = Tb_store.Database
module Value = Tb_store.Value
module Rid = Tb_storage.Rid
module Sim = Tb_sim.Sim
module Generator = Tb_derby.Generator
module Derby = Tb_derby.Derby

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_built ?(fanout = 4) ?(n_providers = 25) () =
  let scale = 1000 in
  let cfg =
    {
      (Generator.config ~scale `Deep Generator.Class_clustered) with
      Generator.n_providers;
      fanout;
    }
  in
  Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg

let join_query k1 k2 =
  Printf.sprintf
    "select [p.name, pa.age] from p in Providers, pa in p.clients where \
     pa.mrn < %d and p.upin < %d"
    k1 k2

(* --- Fetch: the covering shortcut --- *)

let test_covering_no_handles () =
  let b = small_built () in
  let db = b.Generator.db in
  Database.cold_restart db;
  (* Identity-only selection with no predicates: the plan lowers to a
     covering Fetch and the whole run acquires zero Handles. *)
  let r, root, global = Planner.run_explained db "select pa from pa in Patients" ~keep:false in
  check_int "row per patient" (Array.length b.Generator.patients)
    (Query_result.count r);
  Query_result.dispose r;
  check_int "no handles anywhere" 0 global.Op.t_handles;
  check_int "no attribute reads" 0 global.Op.t_get_atts;
  let saw_covering = ref false in
  Op.iter
    (fun node ->
      match node.Op.kind with
      | Op.Fetch { covering; _ } -> if covering then saw_covering := true
      | _ -> ())
    root;
  check_bool "plan used the covering shortcut" true !saw_covering;
  (* A predicate forces Handles again. *)
  Database.cold_restart db;
  let r, _, global =
    Planner.run_explained db "select pa from pa in Patients where pa.age < 200"
      ~force_seq:true ~keep:false
  in
  Query_result.dispose r;
  check_bool "predicates force handles" true (global.Op.t_handles > 0)

(* --- spill records: payload round-trip through a heap file --- *)

let test_spill_roundtrip () =
  let b = small_built () in
  let db = b.Generator.db in
  let file = (Operators.new_spill_files db 1).(0) in
  let key = b.Generator.providers.(3) in
  let payload =
    {
      Op.self = b.Generator.patients.(7);
      attrs = [ ("age", Value.Int 42); ("name", Value.String "pp0007") ];
    }
  in
  Operators.spill file ~key payload;
  Operators.spill file ~key:b.Generator.providers.(1)
    { Op.self = b.Generator.patients.(1); attrs = [] };
  let got = ref [] in
  Tb_storage.Heap_file.scan file (fun _ body ->
      got := Operators.unspill_record body :: !got);
  match List.rev !got with
  | [ (k1, p1); (k2, p2) ] ->
      check_bool "key 1" true (Rid.equal k1 key);
      check_bool "self 1" true (Rid.equal p1.Op.self payload.Op.self);
      check_bool "attrs survive" true (p1.Op.attrs = payload.Op.attrs);
      check_bool "key 2" true (Rid.equal k2 b.Generator.providers.(1));
      check_bool "empty attrs survive" true (p2.Op.attrs = []);
  | other -> Alcotest.failf "expected 2 records, got %d" (List.length other)

(* --- Spill_partition: bucket 0 never touches disk --- *)

let with_partitions plan n =
  match plan with
  | Plan.Hier_join
      {
        algo;
        parent_var;
        parent_cls;
        child_var;
        child_cls;
        set_attr;
        inv_attr;
        parent_access;
        child_access;
        partitions = _;
        select;
        aggregate;
      } ->
      Plan.Hier_join
        {
          algo;
          parent_var;
          parent_cls;
          child_var;
          child_cls;
          set_attr;
          inv_attr;
          parent_access;
          child_access;
          partitions = n;
          select;
          aggregate;
        }
  | Plan.Selection _ -> Alcotest.fail "expected a join plan"

let spill_frames root =
  let acc = ref [] in
  Op.iter
    (fun node ->
      match node.Op.kind with
      | Op.Spill_partition _ -> acc := node.Op.frame :: !acc
      | _ -> ())
    root;
  !acc

let test_hybrid_bucket0_in_memory () =
  let b = small_built () in
  let db = b.Generator.db in
  let q = Oql_parser.parse (join_query 60 15) in
  let hybrid n =
    let plan = with_partitions (Planner.plan db q ~force_algo:Plan.PHHJ) n in
    Database.cold_restart db;
    let r, global = Exec.run_explained db (Planner.lower plan) ~keep:false in
    let count = Query_result.count r in
    Query_result.dispose r;
    (count, global)
  in
  let baseline, g1 = hybrid 1 in
  (* partitions = 1: everything is bucket 0, nothing may be written. *)
  check_int "bucket 0 stays in memory" 0 g1.Op.t_pages_written;
  (* partitions = 4: the other buckets spill through temp heap files. *)
  let plan4 = with_partitions (Planner.plan db q ~force_algo:Plan.PHHJ) 4 in
  let root4 = Planner.lower plan4 in
  Database.cold_restart db;
  let r, global = Exec.run_explained db root4 ~keep:false in
  check_int "same result when spilling" baseline (Query_result.count r);
  Query_result.dispose r;
  check_bool "spilled buckets hit the disk" true (global.Op.t_pages_written > 0);
  let spilled =
    List.fold_left
      (fun acc fr -> acc + fr.Op.pages_written)
      0 (spill_frames root4)
  in
  check_bool "writes attributed to Spill_partition frames" true (spilled > 0)

(* --- claim/release leaks on mid-query exceptions --- *)

let test_sorted_rids_leak_on_raise () =
  let b = small_built () in
  let db = b.Generator.db in
  let index =
    match Database.find_index db ~cls:Derby.patient_cls ~attr:"mrn" with
    | Some ix -> ix
    | None -> Alcotest.fail "mrn index missing"
  in
  (* A sorted-Rid scan feeding a projection that raises mid-stream: the
     covering Fetch keeps Handles out of the picture, so any residue is
     the sort buffer's claim. *)
  let tree =
    Op.make
      (Op.Materialize
         {
           child =
             Op.make
               (Op.Project
                  {
                    child =
                      Op.make
                        (Op.Fetch
                           {
                             child =
                               Op.make
                                 (Op.Sort_rids
                                    {
                                      child =
                                        Op.make
                                          (Op.Index_scan
                                             { index; lo = None; hi = Some 40 });
                                    });
                             cls = Derby.patient_cls;
                             var = "pa";
                             preds = [];
                             covering = true;
                             mode = Op.Handle;
                             batch = 256;
                           });
                    select = Oql_ast.Path ("pa", "age");
                  });
           aggregate = None;
         })
  in
  Database.cold_restart db;
  let sim = Database.sim db in
  let baseline = Sim.working_bytes sim in
  (match Exec.run db tree ~keep:false with
  | exception Invalid_argument _ -> ()
  | r ->
      Query_result.dispose r;
      Alcotest.fail "expected the projection to raise");
  check_int "sort buffer released on raise" baseline (Sim.working_bytes sim)

let test_merge_leak_on_raise () =
  let b = small_built () in
  let db = b.Generator.db in
  let fetch cls var =
    Op.make
      (Op.Fetch
         {
           child = Op.make (Op.Seq_scan { cls });
           cls;
           var;
           preds = [];
           covering = false;
           mode = Op.Handle;
           batch = 256;
         })
  in
  (* The left run is gathered, claimed and sorted; the right side then
     fails at operator-compile time (unknown inverse attribute).  The
     interpreter must release the left run's claim on the way out. *)
  let tree =
    Op.make
      (Op.Materialize
         {
           child =
             Op.make
               (Op.Project
                  {
                    child =
                      Op.make
                        (Op.Merge
                           {
                             left =
                               Op.make
                                 (Op.Sort
                                    {
                                      child =
                                        Op.make
                                          (Op.Harvest
                                             {
                                               child =
                                                 fetch Derby.provider_cls "p";
                                               key = Op.K_self;
                                               cls = Derby.provider_cls;
                                               attrs = [ "name" ];
                                               mode = Op.Handle;
                                             });
                                    });
                             right =
                               Op.make
                                 (Op.Sort
                                    {
                                      child =
                                        Op.make
                                          (Op.Harvest
                                             {
                                               child =
                                                 fetch Derby.patient_cls "pa";
                                               key = Op.K_inverse "nonexistent";
                                               cls = Derby.patient_cls;
                                               attrs = [];
                                               mode = Op.Handle;
                                             });
                                    });
                             left_var = "p";
                             right_var = "pa";
                           });
                    select = Oql_ast.Var "p";
                  });
           aggregate = None;
         })
  in
  Database.cold_restart db;
  let sim = Database.sim db in
  let failing_run () =
    match Exec.run db tree ~keep:false with
    | exception Invalid_argument _ -> ()
    | r ->
        Query_result.dispose r;
        Alcotest.fail "expected the right side to raise"
  in
  (* Handles linger as zombies after a first run, so leak-detect by
     fixpoint: a second identical failure must not grow the working set. *)
  failing_run ();
  let after_first = Sim.working_bytes sim in
  failing_run ();
  check_int "no claim residue per failing run" after_first
    (Sim.working_bytes sim)

(* --- explain invariance: frames always reconcile with the counters --- *)

let test_reconciliation () =
  let b = small_built () in
  let db = b.Generator.db in
  let check_q name ?force_algo ?force_seq ?force_sorted q =
    Database.cold_restart db;
    let r, root, global =
      Planner.run_explained db q ?force_algo ?force_seq ?force_sorted
        ~keep:false
    in
    Query_result.dispose r;
    check_bool (name ^ " reconciles") true (Op.reconciles ~global root)
  in
  (* Figure 8: the three selection access paths. *)
  let sel = "select pa.age from pa in Patients where pa.mrn < 40" in
  check_q "selection/seq" ~force_seq:true sel;
  check_q "selection/index" ~force_sorted:false sel;
  check_q "selection/sorted" ~force_sorted:true sel;
  check_q "selection/aggregate" "select count(pa) from pa in Patients";
  (* The join algorithms over the paper's query shape. *)
  let join = join_query 60 15 in
  List.iter
    (fun algo ->
      check_q (Plan.algo_name algo) ~force_algo:algo join)
    [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]

let suite =
  [
    Alcotest.test_case "fetch: covering shortcut skips handles" `Quick
      test_covering_no_handles;
    Alcotest.test_case "spill records round-trip" `Quick test_spill_roundtrip;
    Alcotest.test_case "hybrid: bucket 0 never touches disk" `Quick
      test_hybrid_bucket0_in_memory;
    Alcotest.test_case "sorted rids: no leak when a row raises" `Quick
      test_sorted_rids_leak_on_raise;
    Alcotest.test_case "merge: no leak when one side fails" `Quick
      test_merge_leak_on_raise;
    Alcotest.test_case "explain frames reconcile with global counters" `Quick
      test_reconciliation;
  ]
