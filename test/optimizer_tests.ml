(* Tests for the four-stage optimizer pipeline: enumerate → cost → pick →
   validate, and for the estimator primitives underneath it. *)

open Tb_query
module Generator = Tb_derby.Generator
module Sc = Tb_statcore.Stat_catalog
module Database = Tb_store.Database

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- S1: Cardenas distinct-page boundaries --- *)

let test_distinct_pages_bounds () =
  let dp = Estimate.distinct_pages in
  (* Degenerate inputs touch nothing. *)
  Alcotest.(check (float 0.0)) "no pages" 0.0 (dp ~n:50.0 ~pages:0.0 ());
  Alcotest.(check (float 0.0)) "no rows" 0.0 (dp ~n:0.0 ~pages:10.0 ());
  Alcotest.(check (float 0.0)) "negative rows" 0.0 (dp ~n:(-3.0) ~pages:10.0 ());
  Alcotest.(check (float 0.0)) "negative pages" 0.0 (dp ~n:5.0 ~pages:(-1.0) ());
  (* Fetching every row saturates at exactly the extent size — the
     unclamped formula would leave pages*(1-1/e) at the boundary. *)
  Alcotest.(check (float 0.0)) "full extent saturates" 10.0
    (dp ~rows_per_page:10.0 ~n:100.0 ~pages:10.0 ());
  Alcotest.(check (float 0.0)) "overfull extent still saturates" 10.0
    (dp ~rows_per_page:10.0 ~n:1000.0 ~pages:10.0 ());
  check_bool "one short of full stays under" true
    (dp ~rows_per_page:10.0 ~n:99.0 ~pages:10.0 () < 10.0);
  (* Without a rows-per-page hint the curve approaches but never reaches
     the extent. *)
  let near = dp ~n:1000.0 ~pages:100.0 () in
  check_bool "default hint never saturates" true (near < 100.0 && near > 99.9);
  (* Monotone in n, and never above min(n, pages). *)
  let prev = ref 0.0 in
  for n = 1 to 50 do
    let d = dp ~rows_per_page:10.0 ~n:(float_of_int n) ~pages:20.0 () in
    check_bool "monotone" true (d >= !prev);
    check_bool "<= n" true (d <= float_of_int n +. 1e-9);
    check_bool "<= pages" true (d <= 20.0);
    prev := d
  done

(* --- shared build helpers --- *)

let built org =
  Generator.build
    ~cost:(Tb_sim.Cost_model.scaled 40)
    (Generator.config ~scale:40 `Wide org)

let actual_ms root =
  let t = ref 0.0 in
  Op.iter (fun n -> t := !t +. n.Op.frame.Op.ms) root;
  !t

let plan_q root =
  Op.Est.q ~est:(Estimate.plan_cost_ms root) ~actual:(actual_ms root)

(* Run one forced plan cold and return its plan-level q-error. *)
let forced_q b ?force_algo ?force_sorted ?force_seq oql =
  let db = b.Generator.db in
  let stats = Sc.analyze db in
  let organization = Generator.estimate_organization b.Generator.cfg in
  let ast = Oql_parser.parse oql in
  let plan = Planner.plan ~organization ?force_algo ?force_sorted ?force_seq db ast in
  let root = Planner.lower_forced plan in
  Estimate.annotate ~stats ~organization root;
  Database.cold_restart db;
  let r, _totals = Exec.run_explained db root ~keep:false in
  Query_result.dispose r;
  plan_q root

(* --- S3: q-error matrix --- *)

(* Every join algorithm and every physical organization, at 1/40 scale:
   the cost model must land within [matrix_bound] of the accounted truth
   at the plan level.  The bound is documented in DESIGN.md §4l; it is the
   contract the validate stage's feedback loop then tightens to 2x. *)
let matrix_bound = 4.0

let org_name = function
  | Generator.Class_clustered -> "class"
  | Generator.Randomized -> "random"
  | Generator.Composition -> "composition"
  | Generator.Assoc_ordered -> "assoc"

let join_oql = "select [p.name, pa.age] from p in Providers, pa in p.clients where pa.num < 5000"

let test_q_error_matrix_joins () =
  List.iter
    (fun org ->
      let b = built org in
      List.iter
        (fun algo ->
          match forced_q b ~force_algo:algo join_oql with
          | q ->
              Printf.eprintf "[matrix] %-12s %-6s q=%.2f\n%!" (org_name org)
                (Plan.algo_name algo) q;
              check_bool
                (Printf.sprintf "%s/%s q %.2f <= %.1f" (org_name org)
                   (Plan.algo_name algo) q matrix_bound)
                true (q <= matrix_bound)
          | exception Plan.Unsupported _ -> ())
        Estimate.all_algos)
    [ Generator.Class_clustered; Generator.Randomized; Generator.Composition;
      Generator.Assoc_ordered ]

let test_q_error_matrix_accesses () =
  let oql = "select pa.age from pa in Patients where pa.num < 2500" in
  List.iter
    (fun org ->
      let b = built org in
      List.iter
        (fun (label, sorted, seq) ->
          let q = forced_q b ?force_sorted:sorted ?force_seq:seq oql in
          Printf.eprintf "[matrix] %-12s %-12s q=%.2f\n%!" (org_name org) label q;
          check_bool
            (Printf.sprintf "%s/%s q %.2f <= %.1f" (org_name org) label q
               matrix_bound)
            true (q <= matrix_bound))
        [
          ("seq", None, Some true);
          ("index", Some false, None);
          ("index+sort", Some true, None);
        ])
    [ Generator.Class_clustered; Generator.Randomized ]

(* --- S3: feedback convergence --- *)

let test_feedback_converges () =
  (* Composition clustering is invisible to the catalog (DESIGN.md §4l):
     the optimizer costs the shared file as randomly organized, so the
     first run mis-estimates and validate feeds corrections back.  After
     one round every operator must sit within the 2x threshold. *)
  let b = built Generator.Composition in
  let db = b.Generator.db in
  let stats = Sc.analyze db in
  let run () =
    Database.cold_restart db;
    let r, _d, _g, checks = Planner.run_optimized_explained ~stats db join_oql in
    Query_result.dispose r;
    checks
  in
  let first = run () in
  let q1 = Exec.worst_q first in
  let fed = List.exists (fun c -> c.Exec.ec_fed_back) first in
  let second = run () in
  let q2 = Exec.worst_q second in
  Printf.eprintf "[feedback] first worst q=%.2f fed_back=%b second worst q=%.2f\n%!"
    q1 fed q2;
  check_bool "first run feeds corrections back" true fed;
  check_bool "corrections recorded in catalog" true (Sc.fed_back stats > 0);
  check_bool
    (Printf.sprintf "after one round worst q %.2f <= 2.0" q2)
    true (q2 <= 2.0);
  check_bool "feedback never makes it worse" true (q2 <= q1 +. 1e-9)

(* --- tentpole: fig6 crossover rediscovered from statistics alone --- *)

let test_fig6_crossover_from_stats () =
  let b = built Generator.Class_clustered in
  let db = b.Generator.db in
  let stats = Sc.analyze db in
  let n = Array.length b.Generator.patients in
  let two_way permille =
    let d =
      Planner.optimize ~stats db
        (Printf.sprintf "select pa.age from pa in Patients where pa.num < %d"
           (permille * n / 1000))
    in
    let cost desc =
      match
        List.find_opt
          (fun ch -> String.equal ch.Planner.ch_desc desc)
          d.Planner.d_candidates
      with
      | Some ch -> ch.Planner.ch_cost_ms
      | None -> Alcotest.failf "candidate %s missing at %d permille" desc permille
    in
    (cost "index packed", cost "seq packed")
  in
  (* Fig 6's two-way menu: the unsorted unclustered index wins at 0.1-1%
     and loses from 5% on — the same verdicts `treebench figure fig6`
     measures, recovered here without executing anything. *)
  List.iter
    (fun permille ->
      let ix, sq = two_way permille in
      check_bool (Printf.sprintf "index wins at %d permille" permille) true
        (ix < sq))
    [ 1; 10 ];
  List.iter
    (fun permille ->
      let ix, sq = two_way permille in
      check_bool (Printf.sprintf "scan wins at %d permille" permille) true
        (sq < ix))
    [ 50; 100; 300; 600; 900 ]

let test_pick_tie_policy () =
  (* Equal-cost candidates resolve by enumeration order: packed before
     handle, so the winner is always the packed twin. *)
  let b = built Generator.Class_clustered in
  let db = b.Generator.db in
  let stats = Sc.analyze db in
  let d =
    Planner.optimize ~stats db
      "select pa.age from pa in Patients where pa.num < 50"
  in
  check_bool "winner is packed" true d.Planner.d_packed;
  match d.Planner.d_candidates with
  | a :: b :: _ ->
      check_bool "top two tie" true (Float.equal a.Planner.ch_cost_ms b.Planner.ch_cost_ms);
      check_bool "packed enumerated first" true
        (a.Planner.ch_packed && not b.Planner.ch_packed)
  | _ -> Alcotest.fail "expected at least two candidates"

let test_validate_covers_every_operator () =
  let b = built Generator.Class_clustered in
  let db = b.Generator.db in
  Database.cold_restart db;
  let r, d, _g, checks =
    Planner.run_optimized_explained db
      "select pa.age from pa in Patients where pa.num < 500"
  in
  Query_result.dispose r;
  let ops = ref 0 in
  Op.iter (fun _ -> incr ops) d.Planner.d_root;
  check_int "one check per operator" !ops (List.length checks);
  check_bool "worst q sane" true (Exec.worst_q checks >= 1.0)

let suite =
  [
    Alcotest.test_case "distinct pages: boundaries" `Quick
      test_distinct_pages_bounds;
    Alcotest.test_case "q-error matrix: joins" `Slow test_q_error_matrix_joins;
    Alcotest.test_case "q-error matrix: access paths" `Slow
      test_q_error_matrix_accesses;
    Alcotest.test_case "feedback converges" `Quick test_feedback_converges;
    Alcotest.test_case "fig6 crossover from statistics" `Quick
      test_fig6_crossover_from_stats;
    Alcotest.test_case "pick: tie policy" `Quick test_pick_tie_policy;
    Alcotest.test_case "validate covers every operator" `Quick
      test_validate_covers_every_operator;
  ]
