(* Packed/Handle charge parity: lowering with [~packed:true] and
   [~packed:false] must be observationally identical to the cost model.
   For every query in the snapshot matrix — the selection access paths and
   all seven join algorithms over each access path — a cold run on two
   identically built databases must produce the same rows, the same
   per-field counter totals, bit-identical simulated clocks and the same
   per-operator frame counters.  The packed path may only change real
   wall-clock time, never a simulated charge. *)

open Tb_query
module Database = Tb_store.Database
module Counters = Tb_sim.Counters
module Sim = Tb_sim.Sim
module Generator = Tb_derby.Generator

let check_int = Alcotest.(check int)

let small_built () =
  let scale = 1000 in
  let cfg =
    {
      (Generator.config ~scale `Deep Generator.Class_clustered) with
      Generator.n_providers = 25;
      fanout = 4;
    }
  in
  Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg

type capture = {
  rows : int;
  counters : string;       (* every Counters field, formatted *)
  clock_bits : int64;      (* simulated clock, compared exactly *)
  peak : int;              (* simulated memory high-water mark *)
  frames : string list;    (* per-operator counters in Op.iter order *)
}

let frame_line (fr : Op.frame) =
  Printf.sprintf "in=%d out=%d h=%d pr=%d pw=%d ga=%d cmp=%d hash=%d sort=%d b=%d"
    fr.Op.rows_in fr.Op.rows_out fr.Op.handles fr.Op.pages_read
    fr.Op.pages_written fr.Op.get_atts fr.Op.cmps fr.Op.hash_ops
    fr.Op.sort_cmps fr.Op.bytes

let capture db ~packed ?force_algo ?force_seq ?force_sorted q =
  Database.cold_restart db;
  let r, root, _ =
    Planner.run_explained db q ?force_algo ?force_seq ?force_sorted ~packed
      ~keep:false
  in
  let rows = Query_result.count r in
  Query_result.dispose r;
  let frames = ref [] in
  Op.iter (fun node -> frames := frame_line node.Op.frame :: !frames) root;
  let sim = Database.sim db in
  {
    rows;
    counters = Format.asprintf "%a" Counters.pp sim.Sim.counters;
    clock_bits = Int64.bits_of_float (Sim.elapsed_s sim);
    peak = sim.Sim.peak_working_bytes;
    frames = List.rev !frames;
  }

let test_packed_handle_parity () =
  (* Two databases built from the same seed: the query sequence runs in
     lockstep on both, so absolute clocks and peaks compare exactly. *)
  let db_packed = (small_built ()).Generator.db in
  let db_plain = (small_built ()).Generator.db in
  let check_q name ?force_algo ?force_seq ?force_sorted q =
    let a =
      capture db_packed ~packed:true ?force_algo ?force_seq ?force_sorted q
    in
    let b =
      capture db_plain ~packed:false ?force_algo ?force_seq ?force_sorted q
    in
    check_int (name ^ ": rows") a.rows b.rows;
    Alcotest.(check string) (name ^ ": counters") b.counters a.counters;
    Alcotest.(check int64) (name ^ ": clock bits") b.clock_bits a.clock_bits;
    check_int (name ^ ": peak working bytes") b.peak a.peak;
    check_int (name ^ ": frame count") (List.length b.frames)
      (List.length a.frames);
    List.iteri
      (fun i (want, have) ->
        Alcotest.(check string)
          (Printf.sprintf "%s: frame %d" name i)
          want have)
      (List.combine b.frames a.frames)
  in
  let sel = "select pa.age from pa in Patients where pa.mrn < 40" in
  check_q "selection/seq" ~force_seq:true sel;
  check_q "selection/index" ~force_sorted:false sel;
  check_q "selection/sorted" ~force_sorted:true sel;
  check_q "selection/covering" "select pa from pa in Patients";
  check_q "selection/aggregate" "select count(pa) from pa in Patients";
  (* Non-compilable predicate: both sides lower to the Handle kernels. *)
  check_q "selection/char" ~force_seq:true
    "select pa.age from pa in Patients where pa.sex = 'F'";
  let join =
    "select [p.name, pa.age] from p in Providers, pa in p.clients where \
     pa.mrn < 60 and p.upin < 15"
  in
  List.iter
    (fun algo ->
      let name = Plan.algo_name algo in
      check_q (name ^ "/seq") ~force_algo:algo ~force_seq:true join;
      check_q (name ^ "/index") ~force_algo:algo ~force_sorted:false join;
      check_q (name ^ "/sorted") ~force_algo:algo ~force_sorted:true join)
    [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]

(* Batch size is a pure interpreter knob: sweeping it must not move a
   single charge either. *)
let test_batch_size_parity () =
  let db_a = (small_built ()).Generator.db in
  let db_b = (small_built ()).Generator.db in
  let q = "select pa.age from pa in Patients where pa.mrn < 40" in
  let cap db batch =
    Database.cold_restart db;
    let r = Planner.run db q ~force_seq:true ~batch ~keep:false in
    let rows = Query_result.count r in
    Query_result.dispose r;
    let sim = Database.sim db in
    ( rows,
      Format.asprintf "%a" Counters.pp sim.Sim.counters,
      Int64.bits_of_float (Sim.elapsed_s sim),
      sim.Sim.peak_working_bytes )
  in
  (* Lockstep again: run batch=1 on [db_a] mirrored by the default on
     [db_b], then 1024 vs default, comparing absolute state each time. *)
  List.iter
    (fun batch ->
      let r1, c1, t1, p1 = cap db_a batch in
      let r2, c2, t2, p2 = cap db_b 256 in
      check_int (Printf.sprintf "batch %d: rows" batch) r2 r1;
      Alcotest.(check string) (Printf.sprintf "batch %d: counters" batch) c2 c1;
      Alcotest.(check int64) (Printf.sprintf "batch %d: clock" batch) t2 t1;
      check_int (Printf.sprintf "batch %d: peak" batch) p2 p1)
    [ 1; 64; 1024 ]

let suite =
  [
    Alcotest.test_case "packed vs handle: identical charges everywhere" `Quick
      test_packed_handle_parity;
    Alcotest.test_case "batch size: charge-invariant" `Quick
      test_batch_size_parity;
  ]
