(* Tests for the OQL front end, the executor's five operators and the two
   planners. *)

open Tb_query
module Value = Tb_store.Value
module Database = Tb_store.Database

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- lexer / parser --- *)

let test_lexer () =
  let toks = Oql_lexer.tokenize "select p.name from p in Providers where p.upin <= 10" in
  check_int "token count" 15 (List.length toks);
  check_bool "keywords case-insensitive" true
    (List.hd (Oql_lexer.tokenize "SELECT x FROM y IN Z") = Oql_lexer.SELECT);
  check_bool "bad char rejected" true
    (match Oql_lexer.tokenize "a # b" with
    | exception Oql_lexer.Lex_error _ -> true
    | _ -> false)

let test_parser_paper_query () =
  let q =
    Oql_parser.parse
      "select [p.name, pa.age] from p in Providers, pa in p.clients where \
       pa.mrn < 100 and p.upin < 10"
  in
  check_int "two bindings" 2 (List.length q.Oql_ast.from);
  (match q.Oql_ast.select with
  | Oql_ast.Rows
      (Oql_ast.Mk_tuple
        [ ("name", Oql_ast.Path ("p", "name")); ("age", Oql_ast.Path ("pa", "age")) ])
    ->
      ()
  | _ -> Alcotest.fail "unexpected select shape");
  check_int "two conjuncts" 2 (List.length (Oql_ast.conjuncts q.Oql_ast.where));
  (* Round-trip through the printer re-parses to the same AST. *)
  let printed = Format.asprintf "%a" Oql_ast.pp_query q in
  check_bool "pp/parse roundtrip" true (Oql_parser.parse printed = q)

let test_parser_errors () =
  let bad s =
    match Oql_parser.parse s with
    | exception Oql_parser.Parse_error _ -> true
    | _ -> false
  in
  check_bool "missing from" true (bad "select x where x.a < 1");
  check_bool "dangling and" true (bad "select x from x in E where x.a < 1 and");
  check_bool "trailing junk" true (bad "select x from x in E 42")

let test_parser_literals () =
  let p = Oql_parser.parse_pred "x.sex = 'F' and x.name = \"abc\" and x.ok = true" in
  check_int "three conjuncts" 3 (List.length (Oql_ast.conjuncts p))

(* --- a small Derby database for execution tests --- *)

let small_built ?(organization = Tb_derby.Generator.Class_clustered) ?(fanout = 4)
    ?(n_providers = 25) ?(scale = 1000) () =
  let cfg =
    {
      (Tb_derby.Generator.config ~scale `Deep organization) with
      Tb_derby.Generator.n_providers;
      fanout;
    }
  in
  Tb_derby.Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg

let paper_query k1 k2 =
  Printf.sprintf
    "select [p.name, pa.age] from p in Providers, pa in p.clients where \
     pa.mrn < %d and p.upin < %d"
    k1 k2

(* Ground truth straight from the generator's assignment. *)
let expected_pairs (built : Tb_derby.Generator.built) k1 k2 =
  let nc = Array.length built.Tb_derby.Generator.patients in
  let fanout = built.Tb_derby.Generator.cfg.Tb_derby.Generator.fanout in
  ignore fanout;
  let count = ref 0 in
  for j = 0 to min (k1 - 1) (nc - 1) do
    (* provider of patient j: recover via the database. *)
    let _, v = Database.read_object built.Tb_derby.Generator.db built.Tb_derby.Generator.patients.(j) in
    let prid = Value.to_ref (Value.field v "primary_care_provider") in
    let _, pv = Database.read_object built.Tb_derby.Generator.db prid in
    if Value.to_int (Value.field pv "upin") < k2 then incr count
  done;
  !count

let sort_values vs = List.sort compare (List.map (Format.asprintf "%a" Value.pp) vs)

let test_all_algorithms_agree () =
  List.iter
    (fun organization ->
      let built = small_built ~organization () in
      let db = built.Tb_derby.Generator.db in
      let expected = expected_pairs built 60 15 in
      Database.cold_restart db;
      let reference = ref None in
      List.iter
        (fun algo ->
          Database.cold_restart db;
          let r =
            Planner.run db (paper_query 60 15) ~force_algo:algo ~keep:true
          in
          check_int
            (Printf.sprintf "%s count" (Plan.algo_name algo))
            expected (Query_result.count r);
          let digest = sort_values (Query_result.values r) in
          (match !reference with
          | None -> reference := Some digest
          | Some d ->
              check_bool
                (Printf.sprintf "%s same multiset" (Plan.algo_name algo))
                true (d = digest));
          Query_result.dispose r)
        [
          Plan.NL;
          Plan.NOJOIN;
          Plan.PHJ;
          Plan.CHJ;
          Plan.PHHJ;
          Plan.CHHJ;
          Plan.SMJ;
        ])
    [
      Tb_derby.Generator.Class_clustered;
      Tb_derby.Generator.Randomized;
      Tb_derby.Generator.Composition;
      Tb_derby.Generator.Assoc_ordered;
    ]

let algorithms_agree_prop =
  QCheck.Test.make ~name:"join algorithms agree on random cut-offs" ~count:12
    QCheck.(pair (int_range 0 110) (int_range 0 30))
    (fun (k1, k2) ->
      let built = small_built () in
      let db = built.Tb_derby.Generator.db in
      let counts =
        List.map
          (fun algo ->
            Database.cold_restart db;
            let r = Planner.run db (paper_query k1 k2) ~force_algo:algo ~keep:false in
            let c = Query_result.count r in
            Query_result.dispose r;
            c)
          [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]
      in
      match counts with
      | c :: rest -> List.for_all (Int.equal c) rest
      | [] -> false)

let test_selection_correctness () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  (* num is a random permutation of 0..nc-1, so num < k selects exactly k. *)
  let r =
    Planner.run db "select pa.age from pa in Patients where pa.num < 40" ~keep:true
  in
  check_int "selectivity exact" 40 (Query_result.count r);
  Query_result.dispose r;
  (* Same through a sequential scan. *)
  let r2 =
    Planner.run db "select pa.age from pa in Patients where pa.num < 40"
      ~force_seq:true ~keep:true
  in
  check_int "scan agrees" 40 (Query_result.count r2);
  Query_result.dispose r2

let test_sorted_vs_unsorted_same_rows () =
  let built = small_built ~n_providers:50 () in
  let db = built.Tb_derby.Generator.db in
  let q = "select pa.name from pa in Patients where pa.num < 150" in
  Database.cold_restart db;
  let a = Planner.run db q ~force_sorted:false ~keep:true in
  Database.cold_restart db;
  let b = Planner.run db q ~force_sorted:true ~keep:true in
  check_bool "same rows" true
    (sort_values (Query_result.values a) = sort_values (Query_result.values b));
  Query_result.dispose a;
  Query_result.dispose b

let test_sorted_index_scan_beats_unsorted_at_high_selectivity () =
  (* Section 4.2: with a random key and high selectivity, fetching in index
     order re-reads pages; sorting the Rids first makes one pass. *)
  let built = small_built ~n_providers:400 ~fanout:3 () in
  let db = built.Tb_derby.Generator.db in
  let sim = Database.sim db in
  let q = "select pa.age from pa in Patients where pa.num < 1080" in
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let r = Planner.run db q ~force_sorted:false ~keep:false in
  Query_result.dispose r;
  let unsorted_reads = sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads in
  let unsorted_time = Tb_sim.Sim.elapsed_s sim in
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let r = Planner.run db q ~force_sorted:true ~keep:false in
  Query_result.dispose r;
  let sorted_reads = sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads in
  let sorted_time = Tb_sim.Sim.elapsed_s sim in
  check_bool "sorted reads fewer pages" true (sorted_reads < unsorted_reads);
  check_bool "sorted is faster" true (sorted_time < unsorted_time)

let test_identity_projection_skips_handles () =
  (* select pa from ... with an index: no object needs materialising. *)
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  let sim = Database.sim db in
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let r = Planner.run db "select pa from pa in Patients where pa.num < 10" ~keep:true in
  check_int "rows" 10 (Query_result.count r);
  check_int "no handles" 0 sim.Tb_sim.Sim.counters.Tb_sim.Counters.handle_allocs;
  Query_result.dispose r

(* --- binder --- *)

let test_bind_errors () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  let bad_invalid s =
    match Plan.bind db (Oql_parser.parse s) with
    | exception Invalid_argument _ -> true
    | _ -> false
  and bad_unsupported s =
    match Plan.bind db (Oql_parser.parse s) with
    | exception Plan.Unsupported _ -> true
    | _ -> false
  in
  check_bool "unknown extent" true (bad_invalid "select x from x in Nowhere");
  check_bool "unknown attribute" true
    (bad_invalid "select x.zzz from x in Patients where x.zzz < 1");
  check_bool "var-to-var predicate unsupported" true
    (bad_unsupported
       "select [p.name, pa.age] from p in Providers, pa in p.clients where \
        pa.mrn < p.upin")

let test_bind_infers_inverse () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  match
    Plan.bind db (Oql_parser.parse "select pa from p in Providers, pa in p.clients")
  with
  | Plan.B_hier { inv_attr; set_attr; parent_cls; child_cls; _ } ->
      check_string "set attr" "clients" set_attr;
      check_string "parent" "Provider" parent_cls;
      check_string "child" "Patient" child_cls;
      check_bool "inverse found" true (inv_attr = Some "primary_care_provider")
  | _ -> Alcotest.fail "expected a hierarchical join"

(* --- planner --- *)

let test_heuristic_planner_is_navigation_biased () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  match Planner.plan ~mode:Planner.Heuristic db (Oql_parser.parse (paper_query 50 10)) with
  | Plan.Hier_join { algo = Plan.NL; _ } -> ()
  | p -> Alcotest.fail (Format.asprintf "expected NL, got %a" Plan.pp p)

let test_heuristic_selection_takes_index_unsorted () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  match
    Planner.plan ~mode:Planner.Heuristic db
      (Oql_parser.parse "select pa.age from pa in Patients where pa.num < 10")
  with
  | Plan.Selection { access = Plan.Index_scan { sorted = false; _ }; _ } -> ()
  | p -> Alcotest.fail (Format.asprintf "expected unsorted index scan, got %a" Plan.pp p)

let test_cost_based_selection_sorts () =
  (* A random key (num), a file well beyond the client cache, moderate
     selectivity: fetching in index order would thrash, so the cost-based
     planner must sort the Rids first (Section 4.2's lesson). *)
  let built = small_built ~n_providers:400 ~fanout:3 () in
  let db = built.Tb_derby.Generator.db in
  match
    Planner.plan ~mode:Planner.Cost_based db
      (Oql_parser.parse "select pa.age from pa in Patients where pa.num < 480")
  with
  | Plan.Selection { access = Plan.Index_scan { sorted = true; _ }; _ } -> ()
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_cost_based_join_prefers_navigation_under_composition () =
  (* Figure 13's regime at paper scale: 2,000 providers and 2M patients in
     one composition-clustered file; NL wins every cell. *)
  let built = small_built ~organization:Tb_derby.Generator.Composition () in
  let db = built.Tb_derby.Generator.db in
  let bound = Plan.bind db (Oql_parser.parse (paper_query 1000 1000)) in
  let env =
    Planner.join_env db bound ~organization:Estimate.Shared_composition
  in
  let env =
    {
      env with
      Estimate.cost = Tb_sim.Cost_model.default;
      Estimate.parent =
        {
          env.Estimate.parent with
          Estimate.card = 2_000;
          pages = 44_000;
          sel = 0.1;
          index_clustered = true;
        };
      child =
        {
          env.Estimate.child with
          Estimate.card = 2_000_000;
          pages = 44_000;
          sel = 0.1;
          (* mrn order no longer matches composition placement *)
          index_clustered = false;
        };
      fanout = 1_000.0;
      client_cache_pages = 8_192;
    }
  in
  match Estimate.rank_joins env with
  | (Plan.NL, _) :: _ -> ()
  | (a, _) :: _ ->
      Alcotest.fail (Printf.sprintf "expected NL to win, got %s" (Plan.algo_name a))
  | [] -> Alcotest.fail "no ranking"

let test_cost_based_join_prefers_hash_on_deep_class_clusters () =
  (* 1:3 shape, class clustering, low selectivities: Figure 12 says the
     hash joins win by an order of magnitude over navigation. *)
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  let bound = Plan.bind db (Oql_parser.parse (paper_query 10 3)) in
  let env = Planner.join_env db bound ~organization:Estimate.Separate_files in
  (* Force paper-scale statistics: 1M providers, 3M patients, 10%/10%. *)
  let env =
    {
      env with
      Estimate.cost = Tb_sim.Cost_model.default;
      Estimate.parent =
        { env.Estimate.parent with Estimate.card = 1_000_000; pages = 33_000; sel = 0.1 };
      child =
        { env.Estimate.child with Estimate.card = 3_000_000; pages = 49_000; sel = 0.1 };
      fanout = 3.0;
      client_cache_pages = 8_192;
    }
  in
  match Estimate.rank_joins env with
  | (Plan.PHJ, _) :: _ | (Plan.CHJ, _) :: _ -> ()
  | (a, _) :: _ ->
      Alcotest.fail (Printf.sprintf "expected a hash join to win, got %s" (Plan.algo_name a))
  | [] -> Alcotest.fail "no ranking"

let test_estimate_swap_degrades_hash () =
  (* Figure 12's 90/90 cell: hash tables outgrow memory and navigation
     takes over. *)
  let cost = Tb_sim.Cost_model.default in
  let side card pages =
    {
      Estimate.card;
      pages;
      sel = 0.9;
      has_index = true;
      index_clustered = true;
      payload_bytes = 29;
    }
  in
  let env =
    {
      Estimate.cost;
      organization = Estimate.Separate_files;
      client_cache_pages = 8_192;
      parent = side 1_000_000 33_000;
      child = side 3_000_000 49_000;
      fanout = 3.0;
      result_bytes_per_row = 40;
    }
  in
  let nojoin = Estimate.join_ms env Plan.NOJOIN in
  let phj = Estimate.join_ms env Plan.PHJ in
  let chj = Estimate.join_ms env Plan.CHJ in
  check_bool "NOJOIN beats PHJ when the table swaps" true (nojoin < phj);
  check_bool "NOJOIN beats CHJ when the table swaps" true (nojoin < chj)

(* --- extensions: hybrid hashing, sort-merge --- *)

let deep_90_90 b =
  let nc = Array.length b.Tb_derby.Generator.patients in
  let np = Array.length b.Tb_derby.Generator.providers in
  paper_query (90 * nc / 100) (90 * np / 100)

let test_hybrid_avoids_swap () =
  (* At the memory-bound Figure 12 cell, the hybrid variants must not
     thrash, and must run substantially faster than their in-memory
     counterparts. *)
  let built = small_built ~n_providers:3000 ~fanout:3 ~scale:800 () in
  let db = built.Tb_derby.Generator.db in
  let sim = Database.sim db in
  let q = deep_90_90 built in
  let run algo =
    Database.cold_restart db;
    Tb_sim.Sim.reset sim;
    let r = Planner.run db q ~force_algo:algo ~force_sorted:true ~keep:false in
    let count = Query_result.count r in
    Query_result.dispose r;
    (Tb_sim.Sim.elapsed_s sim, sim.Tb_sim.Sim.counters.Tb_sim.Counters.swap_faults, count)
  in
  let chj_t, chj_faults, chj_n = run Plan.CHJ in
  let chhj_t, chhj_faults, chhj_n = run Plan.CHHJ in
  check_int "same rows" chj_n chhj_n;
  check_bool "plain CHJ thrashes here" true (chj_faults > 100);
  check_bool "hybrid barely faults" true (chhj_faults < chj_faults / 10);
  check_bool "hybrid is much faster" true (chhj_t < chj_t /. 1.5)

let test_hybrid_spills_to_real_pages () =
  let built = small_built ~n_providers:3000 ~fanout:3 ~scale:800 () in
  let db = built.Tb_derby.Generator.db in
  let sim = Database.sim db in
  let q = deep_90_90 built in
  let plan =
    Planner.plan db (Oql_parser.parse q) ~force_algo:Plan.CHHJ ~force_sorted:true
  in
  (match plan with
  | Plan.Hier_join { partitions; _ } ->
      check_bool "multiple partitions planned" true (partitions > 1)
  | Plan.Selection _ -> Alcotest.fail "expected a join");
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let writes_before = sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_writes in
  let r = Exec.run db (Planner.lower plan) ~keep:false in
  Query_result.dispose r;
  Tb_storage.Cache_stack.flush (Database.stack db);
  check_bool "spill traffic reached the disk" true
    (sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_writes > writes_before)

let test_smj_loses_in_memory () =
  (* The authors' observation: in the regime where everything fits, the
     sort-based join is not better than the hash-based ones. *)
  let built = small_built ~n_providers:400 ~fanout:3 () in
  let db = built.Tb_derby.Generator.db in
  let sim = Database.sim db in
  let nc = Array.length built.Tb_derby.Generator.patients in
  let np = Array.length built.Tb_derby.Generator.providers in
  let q = paper_query (nc / 10) (np / 10) in
  let time algo =
    Database.cold_restart db;
    Tb_sim.Sim.reset sim;
    let r = Planner.run db q ~force_algo:algo ~force_sorted:true ~keep:false in
    Query_result.dispose r;
    Tb_sim.Sim.elapsed_s sim
  in
  check_bool "SMJ not faster than PHJ" true (time Plan.SMJ >= time Plan.PHJ)

let test_planner_considers_hybrids_under_pressure () =
  (* With paper-scale statistics and the deep 90/90 regime, the cost-based
     ranking must place the spilling variants above the thrashing in-memory
     hash joins. *)
  let cost = Tb_sim.Cost_model.default in
  let side card pages =
    {
      Estimate.card;
      pages;
      sel = 0.9;
      has_index = true;
      index_clustered = true;
      payload_bytes = 29;
    }
  in
  let env =
    {
      Estimate.cost;
      organization = Estimate.Separate_files;
      client_cache_pages = 8_192;
      parent = side 1_000_000 33_000;
      child = side 3_000_000 49_000;
      fanout = 3.0;
      result_bytes_per_row = 40;
    }
  in
  let ranking = Estimate.rank_joins env in
  let pos a =
    match List.find_index (fun (x, _) -> x = a) ranking with
    | Some i -> i
    | None -> Alcotest.fail "algorithm missing from ranking"
  in
  check_bool "CHHJ ranked above CHJ" true (pos Plan.CHHJ < pos Plan.CHJ);
  check_bool "PHHJ ranked above PHJ" true (pos Plan.PHHJ < pos Plan.PHJ)

(* --- aggregates --- *)

let test_aggregates_basic () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  let run q =
    let r = Planner.run db q ~keep:true in
    let vs = Query_result.values r in
    Query_result.dispose r;
    vs
  in
  (match run "select count(pa) from pa in Patients where pa.num < 40" with
  | [ Value.Int 40 ] -> ()
  | vs -> Alcotest.failf "count: got %s" (String.concat ";" (List.map (Format.asprintf "%a" Value.pp) vs)));
  (* mrn is 0..99 over the whole extent: check sum/min/max/avg. *)
  (match run "select sum(pa.mrn) from pa in Patients" with
  | [ Value.Int s ] -> check_int "sum of 0..99" (99 * 100 / 2) s
  | _ -> Alcotest.fail "sum");
  (match run "select min(pa.mrn) from pa in Patients" with
  | [ Value.Int 0 ] -> ()
  | _ -> Alcotest.fail "min");
  (match run "select max(pa.mrn) from pa in Patients" with
  | [ Value.Int 99 ] -> ()
  | _ -> Alcotest.fail "max");
  (match run "select avg(pa.mrn) from pa in Patients" with
  | [ Value.Real a ] -> check_bool "avg" true (abs_float (a -. 49.5) < 1e-9)
  | _ -> Alcotest.fail "avg")

let test_aggregate_empty () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  let r = Planner.run db "select count(pa) from pa in Patients where pa.num < 0" ~keep:true in
  (match Query_result.values r with
  | [ Value.Int 0 ] -> ()
  | _ -> Alcotest.fail "count over empty set is 0");
  Query_result.dispose r;
  let r = Planner.run db "select avg(pa.mrn) from pa in Patients where pa.num < 0" ~keep:true in
  check_int "avg over empty set is undefined" 0 (Query_result.count r);
  Query_result.dispose r

let test_aggregate_over_join () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  let q =
    "select count(pa) from p in Providers, pa in p.clients where pa.mrn < 60 \
     and p.upin < 15"
  in
  let expected = expected_pairs built 60 15 in
  List.iter
    (fun algo ->
      Database.cold_restart db;
      let r = Planner.run db q ~force_algo:algo ~keep:true in
      (match Query_result.values r with
      | [ Value.Int n ] ->
          check_int (Printf.sprintf "count via %s" (Plan.algo_name algo)) expected n
      | _ -> Alcotest.fail "expected one integer");
      Query_result.dispose r)
    [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]

let test_aggregate_skips_result_construction () =
  (* Section 4.2: materializing 1.8M elements costs ~18 minutes; folding
     them into a count should cost almost nothing by comparison. *)
  let built = small_built ~n_providers:400 ~fanout:3 () in
  let db = built.Tb_derby.Generator.db in
  let sim = Database.sim db in
  let time q =
    Database.cold_restart db;
    Tb_sim.Sim.reset sim;
    let r = Planner.run db q ~force_seq:true ~keep:false in
    Query_result.dispose r;
    Tb_sim.Sim.elapsed_s sim
  in
  let materialize = time "select pa.age from pa in Patients where pa.num < 1080" in
  let fold = time "select count(pa.age) from pa in Patients where pa.num < 1080" in
  check_bool "folding avoids the collection construction" true
    (materialize > 1.5 *. fold)

let test_aggregate_non_numeric_rejected () =
  let built = small_built () in
  let db = built.Tb_derby.Generator.db in
  check_bool "sum over strings rejected" true
    (match Planner.run db "select sum(pa.name) from pa in Patients" ~keep:true with
    | exception Invalid_argument _ -> true
    | r ->
        Query_result.dispose r;
        false)

(* --- mem_hash --- *)

let test_mem_hash () =
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100) in
  let h = Mem_hash.create sim in
  let key i = Tb_storage.Rid.make ~file:0 ~page:i ~slot:0 in
  Mem_hash.add h ~key:(key 1) ~payload_bytes:10 "a";
  Mem_hash.add h ~key:(key 1) ~payload_bytes:10 "b";
  Mem_hash.add h ~key:(key 2) ~payload_bytes:10 "c";
  Alcotest.(check (list string)) "group order" [ "a"; "b" ] (Mem_hash.find h ~key:(key 1));
  Alcotest.(check (list string)) "missing key" [] (Mem_hash.find h ~key:(key 9));
  check_int "groups" 2 (Mem_hash.group_count h);
  check_int "elements" 3 (Mem_hash.element_count h);
  let claimed = Tb_sim.Sim.working_bytes sim in
  check_bool "claims memory" true (claimed >= Mem_hash.size_bytes h);
  Mem_hash.dispose h;
  check_int "dispose releases" (claimed - Mem_hash.size_bytes h)
    (Tb_sim.Sim.working_bytes sim)

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "parser: the paper's query" `Quick test_parser_paper_query;
    Alcotest.test_case "parser: errors" `Quick test_parser_errors;
    Alcotest.test_case "parser: literals" `Quick test_parser_literals;
    Alcotest.test_case "exec: all four algorithms agree (4 organizations)"
      `Slow test_all_algorithms_agree;
    QCheck_alcotest.to_alcotest algorithms_agree_prop;
    Alcotest.test_case "exec: selection correctness" `Quick
      test_selection_correctness;
    Alcotest.test_case "exec: sorted vs unsorted rows agree" `Quick
      test_sorted_vs_unsorted_same_rows;
    Alcotest.test_case "exec: sorted index scan wins at high selectivity"
      `Quick test_sorted_index_scan_beats_unsorted_at_high_selectivity;
    Alcotest.test_case "exec: identity projection needs no handles" `Quick
      test_identity_projection_skips_handles;
    Alcotest.test_case "bind: errors" `Quick test_bind_errors;
    Alcotest.test_case "bind: inverse inference" `Quick test_bind_infers_inverse;
    Alcotest.test_case "planner: heuristic is navigation-biased" `Quick
      test_heuristic_planner_is_navigation_biased;
    Alcotest.test_case "planner: heuristic index scans are unsorted" `Quick
      test_heuristic_selection_takes_index_unsorted;
    Alcotest.test_case "planner: cost-based sorts Rids" `Quick
      test_cost_based_selection_sorts;
    Alcotest.test_case "planner: composition favours navigation" `Quick
      test_cost_based_join_prefers_navigation_under_composition;
    Alcotest.test_case "planner: deep class clusters favour hash joins" `Quick
      test_cost_based_join_prefers_hash_on_deep_class_clusters;
    Alcotest.test_case "estimate: swap degrades hash joins" `Quick
      test_estimate_swap_degrades_hash;
    Alcotest.test_case "hybrid: avoids swap at 90/90" `Slow
      test_hybrid_avoids_swap;
    Alcotest.test_case "hybrid: real spill pages, partitions planned" `Slow
      test_hybrid_spills_to_real_pages;
    Alcotest.test_case "smj: loses in the in-memory regime" `Quick
      test_smj_loses_in_memory;
    Alcotest.test_case "estimate: hybrids beat plain hash under pressure"
      `Quick test_planner_considers_hybrids_under_pressure;
    Alcotest.test_case "aggregates: basics" `Quick test_aggregates_basic;
    Alcotest.test_case "aggregates: empty input" `Quick test_aggregate_empty;
    Alcotest.test_case "aggregates: over joins, all algorithms" `Slow
      test_aggregate_over_join;
    Alcotest.test_case "aggregates: skip result construction" `Quick
      test_aggregate_skips_result_construction;
    Alcotest.test_case "aggregates: non-numeric rejected" `Quick
      test_aggregate_non_numeric_rejected;
    Alcotest.test_case "mem_hash" `Quick test_mem_hash;
  ]
