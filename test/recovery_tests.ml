(* Tests for the recovery subsystem: the WAL, abort/rollback, deterministic
   fault injection, torn-write detection, and the seeded crash-point sweep
   that proves every crash recovers to the last committed state.

   The sweep strides through the crash points at tier-1 scale; set
   TREEBENCH_RECOVERY_FULL=1 to crash at every single durable write. *)

open Tb_store
module Fault = Tb_storage.Fault
module Counters = Tb_sim.Counters

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh_sim () = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100)

let schema () =
  Schema.make
    ~classes:
      [
        {
          Schema.cls_name = "Patient";
          attrs =
            [
              ("name", Schema.TString);
              ("mrn", Schema.TInt);
              ("age", Schema.TInt);
            ];
        };
      ]
    ~roots:[ ("Patients", Schema.TSet (Schema.TRef "Patient")) ]

let patient i =
  Value.Tuple
    [
      ("name", Value.String (Printf.sprintf "p%04d" i));
      ("mrn", Value.Int i);
      ("age", Value.Int (20 + (i mod 60)));
    ]

(* Small pools on purpose: mid-transaction evictions steal uncommitted dirty
   pages to disk, so abort and crash recovery have real damage to undo. *)
let mk_db ?(uncommitted_limit = 50_000) () =
  let sim = fresh_sim () in
  Database.create sim ~schema:(schema ()) ~server_pages:16 ~client_pages:32
    ~txn_mode:Transaction.Standard ~uncommitted_limit ()

let bind_patients db =
  let f = Database.new_file db ~name:"patients" in
  Database.bind_class db ~cls:"Patient" f

let insert_patient db i =
  Database.insert_object db ~cls:"Patient" ~indexed:true (patient i)

(* --- the Load_off log-tail leak (regression) --- *)

let test_load_off_commit_drops_log_tail () =
  let sim = fresh_sim () in
  let disk = Tb_storage.Disk.create sim in
  let stack =
    Tb_storage.Cache_stack.create sim disk ~server_pages:8 ~client_pages:8
  in
  let txn = Transaction.create sim Transaction.Standard ~uncommitted_limit:1000 in
  Transaction.on_write txn ~bytes:100;
  check_bool "log tail pending" true (Transaction.pending_log_bytes txn > 0);
  (* The bug: switching to transaction-off mid-transaction and committing
     used to carry the standard-mode log tail into the next transaction,
     which then paid a disk write for bytes that were never logged. *)
  Transaction.set_mode txn Transaction.Load_off;
  Transaction.commit txn stack;
  check_int "tail dropped at transaction-off commit" 0
    (Transaction.pending_log_bytes txn);
  Transaction.set_mode txn Transaction.Standard;
  let dw = sim.Tb_sim.Sim.counters.Counters.disk_writes in
  Transaction.commit txn stack;
  check_int "no leaked log charge on the next commit" dw
    sim.Tb_sim.Sim.counters.Counters.disk_writes

(* --- abort edges --- *)

let test_abort_zero_writes () =
  let db = mk_db () in
  bind_patients db;
  Database.commit db;
  let fp = Database.durable_fingerprint db in
  let seq = Database.commit_seq db in
  check_int "empty rollback restores nothing" 0 (Database.rollback db);
  check_string "fingerprint unchanged" fp (Database.durable_fingerprint db);
  check_int "commit_seq unchanged" seq (Database.commit_seq db)

let test_abort_restores_state () =
  let db = mk_db () in
  bind_patients db;
  for i = 0 to 199 do
    ignore (insert_patient db i)
  done;
  Database.commit db;
  let fp = Database.durable_fingerprint db in
  let card = Database.cardinality db ~cls:"Patient" in
  (* Enough inserts to overflow both cache tiers: uncommitted pages reach
     the disk mid-transaction and must be rolled back from before-images. *)
  check_bool "aborted" true
    (match
       Database.with_txn db (fun db ->
           for i = 1_000 to 3_999 do
             ignore (insert_patient db i)
           done;
           raise Exit)
     with
    | exception Exit -> true
    | _ -> false);
  check_string "durable state restored" fp (Database.durable_fingerprint db);
  check_int "cardinality rewound" card (Database.cardinality db ~cls:"Patient");
  check_bool "stolen pages were undone" true
    ((Database.sim db).Tb_sim.Sim.counters.Counters.undo_pages > 0);
  (* The store stays usable after rollback. *)
  Database.with_txn db (fun db -> ignore (insert_patient db 5_000));
  check_int "post-rollback insert lands" (card + 1)
    (Database.cardinality db ~cls:"Patient")

let test_abort_after_out_of_memory () =
  let db = mk_db ~uncommitted_limit:500 () in
  bind_patients db;
  for i = 0 to 99 do
    ignore (insert_patient db i)
  done;
  Database.commit db;
  let fp = Database.durable_fingerprint db in
  check_bool "out of memory propagates" true
    (match
       Database.with_txn db (fun db ->
           for i = 1_000 to 2_999 do
             ignore (insert_patient db i)
           done)
     with
    | exception Transaction.Out_of_memory -> true
    | _ -> false);
  check_string "rolled back to last commit" fp (Database.durable_fingerprint db)

let test_double_resolve_raises () =
  let db = mk_db () in
  bind_patients db;
  Database.commit db;
  let invalid f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  let h = Database.begin_txn db in
  Database.commit_txn h;
  check_bool "commit after commit raises" true (invalid (fun () ->
      Database.commit_txn h));
  check_bool "abort after commit raises" true (invalid (fun () ->
      Database.abort_txn h));
  let h2 = Database.begin_txn db in
  Database.abort_txn h2;
  check_bool "abort after abort raises" true (invalid (fun () ->
      Database.abort_txn h2));
  check_bool "commit after abort raises" true (invalid (fun () ->
      Database.commit_txn h2))

(* --- the crash workload and its oracle --- *)

(* A miniature Derby life cycle in four transactions: bulk creation, a
   post-load index build (the Section 3.2 header-rewrite catastrophe),
   index-maintaining updates with forced relocations, then deletes mixed
   with fresh inserts. *)
let workload db =
  Database.with_txn db (fun db ->
      for i = 0 to 599 do
        ignore (insert_patient db i)
      done);
  Database.with_txn db (fun db ->
      ignore (Database.create_index db ~name:"mrn" ~cls:"Patient" ~attr:"mrn"));
  Database.with_txn db (fun db ->
      let rids = ref [] in
      Database.scan_extent db ~cls:"Patient" (fun rid -> rids := rid :: !rids);
      List.iteri
        (fun i rid ->
          if i mod 7 = 0 then begin
            let _, v = Database.read_object db rid in
            let v = Value.set_field v "mrn" (Value.Int (100_000 + i)) in
            let v = Value.set_field v "name" (Value.String (String.make 40 'x')) in
            Database.update_object db rid v
          end)
        (List.rev !rids));
  Database.with_txn db (fun db ->
      let rids = ref [] in
      Database.scan_extent db ~cls:"Patient" (fun rid -> rids := rid :: !rids);
      List.iteri
        (fun i rid -> if i mod 11 = 0 then Database.delete_object db rid)
        (List.rev !rids);
      for i = 600 to 649 do
        ignore (insert_patient db i)
      done)

(* Run the workload under an armed fault layer, recording the durable
   fingerprint after every commit: F[seq] is the oracle a run crashed after
   [seq] commits must recover to.  [crash_at = 0] never crashes (the
   reference run — its fault layer still counts the durable writes, which
   is how the sweep learns its crash points). *)
let run ?(crash_at = 0) ~torn () =
  let db = mk_db () in
  let digests = Hashtbl.create 16 in
  Database.set_commit_hook db
    (Some (fun ~seq -> Hashtbl.replace digests seq (Database.durable_fingerprint db)));
  let f = Fault.create ~seed:7 in
  Database.set_fault db (Some f);
  if crash_at > 0 then Fault.schedule_crash f ~at_write:crash_at ~torn;
  (* F[0]: the creation-time checkpoint a crash before the first commit
     recovers to. *)
  Hashtbl.replace digests 0 (Database.durable_fingerprint db);
  match
    bind_patients db;
    Database.commit db;
    workload db
  with
  | () -> `Completed (db, digests, Fault.writes_seen f)
  | exception Fault.Crash -> `Crashed (db, digests)

let recover_and_check ~point db ref_digests =
  let r = Database.crash_and_recover db in
  let seq = Database.commit_seq db in
  let expect =
    match Hashtbl.find_opt ref_digests seq with
    | Some fp -> fp
    | None ->
        Alcotest.failf "crash point %d: no reference digest for seq %d" point
          seq
  in
  check_string
    (Printf.sprintf "crash point %d recovers to commit %d" point seq)
    expect
    (Database.durable_fingerprint db);
  r

(* --- torn-write detection --- *)

let test_torn_write_detected () =
  (* The last durable write of the run happens during the final commit's
     page flush: tearing it leaves a half-written data page under the full
     image's checksum, a durable commit record, and a winner to replay. *)
  let ref_digests, total =
    match run ~torn:false () with
    | `Completed (_, d, w) -> (d, w)
    | `Crashed _ -> Alcotest.fail "reference run crashed"
  in
  match run ~crash_at:total ~torn:true () with
  | `Completed _ -> Alcotest.fail "scheduled crash did not fire"
  | `Crashed (db, _) ->
      let r = recover_and_check ~point:total db ref_digests in
      check_bool "checksum caught the torn page" true (r.Database.torn_pages > 0);
      check_bool "winner replayed" true (r.Database.outcome = `Winner);
      check_int "redo counter matches" r.Database.redone
        (Database.sim db).Tb_sim.Sim.counters.Counters.redo_pages

(* --- transient read faults --- *)

let test_read_retries_charged () =
  let scan_with fault =
    let db = mk_db () in
    bind_patients db;
    for i = 0 to 499 do
      ignore (insert_patient db i)
    done;
    Database.commit db;
    (match fault with
    | None -> ()
    | Some permille ->
        let f = Fault.create ~seed:11 in
        Fault.set_read_faults f ~permille ~max_retries:3;
        Database.set_fault db (Some f));
    Database.cold_restart db;
    Tb_sim.Sim.reset (Database.sim db);
    let n = ref 0 in
    Database.scan_extent db ~cls:"Patient" (fun _ -> incr n);
    let sim = Database.sim db in
    (!n, sim.Tb_sim.Sim.counters.Counters.read_retries, Tb_sim.Sim.elapsed_s sim)
  in
  let rows, retries, elapsed = scan_with (Some 300) in
  let rows0, retries0, elapsed0 = scan_with None in
  check_int "same result with and without faults" rows0 rows;
  check_int "no retries without faults" 0 retries0;
  check_bool "retries happened" true (retries > 0);
  check_bool "backoff charged to the clock" true (elapsed > elapsed0)

(* --- the seeded crash-point sweep --- *)

let test_crash_sweep () =
  let ref_digests, total =
    match run ~torn:false () with
    | `Completed (_, d, w) -> (d, w)
    | `Crashed _ -> Alcotest.fail "reference run crashed"
  in
  check_bool
    (Printf.sprintf "workload yields >= 50 crash points (got %d)" total)
    true (total >= 50);
  let full = Sys.getenv_opt "TREEBENCH_RECOVERY_FULL" <> None in
  let stride = if full then 1 else max 1 (total / 60) in
  let points = ref 0 in
  let winners = ref 0 and losers = ref 0 and torn_seen = ref 0 in
  let k = ref 1 in
  while !k <= total do
    (* Alternate clean and torn crashes across the sweep. *)
    let torn = !k mod 2 = 1 in
    (match run ~crash_at:!k ~torn () with
    | `Completed _ -> Alcotest.failf "crash point %d did not fire" !k
    | `Crashed (db, _) ->
        incr points;
        let r = recover_and_check ~point:!k db ref_digests in
        (match r.Database.outcome with
        | `Winner -> incr winners
        | `Loser -> incr losers);
        torn_seen := !torn_seen + r.Database.torn_pages;
        (* Every few points: the recovered store accepts new transactions. *)
        if !k mod (7 * stride) = 1 then
          Database.with_txn db (fun db -> ignore (insert_patient db 9_000)));
    k := !k + stride
  done;
  check_bool
    (Printf.sprintf "swept >= 50 crash points (got %d)" !points)
    true (!points >= 50);
  check_bool "both winners and losers recovered" true
    (!winners > 0 && !losers > 0);
  check_bool "torn writes exercised in the sweep" true (!torn_seen > 0)

let suite =
  [
    Alcotest.test_case "txn: transaction-off commit drops the log tail" `Quick
      test_load_off_commit_drops_log_tail;
    Alcotest.test_case "abort: zero writes is a no-op" `Quick
      test_abort_zero_writes;
    Alcotest.test_case "abort: restores the last committed state" `Quick
      test_abort_restores_state;
    Alcotest.test_case "abort: recovers from out of memory" `Quick
      test_abort_after_out_of_memory;
    Alcotest.test_case "txn handles: double resolve raises" `Quick
      test_double_resolve_raises;
    Alcotest.test_case "crash: torn write detected and replayed" `Quick
      test_torn_write_detected;
    Alcotest.test_case "faults: read retries charged to the clock" `Quick
      test_read_retries_charged;
    Alcotest.test_case "crash: seeded sweep recovers every point" `Slow
      test_crash_sweep;
  ]
