(* Sharded-execution parity: the full algorithm × access-path matrix on
   twin databases.

   Two layers of guarantees, mirroring [Parity_tests] for PR 6's knobs:

   - S=1 is the unsharded engine, bit for bit.  A one-shard build replays
     the same charge stream as [Generator.build], and every query in the
     matrix produces the same rows, the same counter totals, a
     bit-identical clock, the same peak memory and the same per-operator
     frames as the plain engine on a twin database.

   - S=4 computes the same answer.  Result multisets are identical to the
     one-shard run, and the per-shard frames reconcile exactly (to the
     integer) against the global counter deltas.  Counter *totals* are not
     asserted equal across S: partitioning genuinely changes the physics —
     each shard pays its own partial tail pages, its B-trees have their
     own shapes, and hash joins ship rows — which is precisely the point;
     reconciliation proves nothing is double- or under-counted. *)

open Tb_query
module Database = Tb_store.Database
module Shard_map = Tb_store.Shard_map
module Value = Tb_store.Value
module Counters = Tb_sim.Counters
module Sim = Tb_sim.Sim
module Generator = Tb_derby.Generator

let check_int = Alcotest.(check int)

let small_cfg () =
  let scale = 1000 in
  {
    (Generator.config ~scale `Deep Generator.Class_clustered) with
    Generator.n_providers = 25;
    fanout = 4;
  }

let small_cost = Tb_sim.Cost_model.scaled 1000

let small_built () = Generator.build ~cost:small_cost (small_cfg ())

let small_sharded shards =
  Generator.build_sharded ~cost:small_cost ~shards (small_cfg ())

type capture = {
  rows : int;
  counters : string;
  clock_bits : int64;
  peak : int;
  frames : string list;
}

let frame_line (fr : Op.frame) =
  Printf.sprintf "in=%d out=%d h=%d pr=%d pw=%d ga=%d cmp=%d hash=%d sort=%d b=%d"
    fr.Op.rows_in fr.Op.rows_out fr.Op.handles fr.Op.pages_read
    fr.Op.pages_written fr.Op.get_atts fr.Op.cmps fr.Op.hash_ops
    fr.Op.sort_cmps fr.Op.bytes

let capture_of sim root rows =
  let frames = ref [] in
  Op.iter (fun node -> frames := frame_line node.Op.frame :: !frames) root;
  {
    rows;
    counters = Format.asprintf "%a" Counters.pp sim.Sim.counters;
    clock_bits = Int64.bits_of_float (Sim.elapsed_s sim);
    peak = sim.Sim.peak_working_bytes;
    frames = List.rev !frames;
  }

let capture_plain db ?force_algo ?force_seq ?force_sorted q =
  Database.cold_restart db;
  let r, root, _ =
    Planner.run_explained db q ?force_algo ?force_seq ?force_sorted ~keep:false
  in
  let rows = Query_result.count r in
  Query_result.dispose r;
  capture_of (Database.sim db) root rows

let capture_sharded smap ?force_algo ?force_seq ?force_sorted ?(keep = false) q
    =
  Shard_map.cold_restart smap;
  let r, root, global, lanes =
    Planner.run_sharded_explained smap q ?force_algo ?force_seq ?force_sorted
      ~keep
  in
  let rows = Query_result.count r in
  let values = if keep then Query_result.values r else [] in
  let cap = capture_of (Shard_map.sim smap) root rows in
  Query_result.dispose r;
  (cap, root, global, lanes, values)

let check_capture name (want : capture) (have : capture) =
  check_int (name ^ ": rows") want.rows have.rows;
  Alcotest.(check string) (name ^ ": counters") want.counters have.counters;
  Alcotest.(check int64) (name ^ ": clock bits") want.clock_bits have.clock_bits;
  check_int (name ^ ": peak working bytes") want.peak have.peak;
  check_int (name ^ ": frame count") (List.length want.frames)
    (List.length have.frames);
  List.iteri
    (fun i (w, h) ->
      Alcotest.(check string) (Printf.sprintf "%s: frame %d" name i) w h)
    (List.combine want.frames have.frames)

let sel = "select pa.age from pa in Patients where pa.mrn < 40"

let join =
  "select [p.name, pa.age] from p in Providers, pa in p.clients where pa.mrn \
   < 60 and p.upin < 15"

let algos =
  [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ]

(* S=1 sharded load and engine vs the plain build and engine: bit parity
   over the whole matrix. *)
let test_one_shard_bit_identity () =
  let plain = small_built () in
  let sh = small_sharded 1 in
  Alcotest.(check int64)
    "load: simulated seconds bit-identical"
    (Int64.bits_of_float plain.Generator.load_seconds)
    (Int64.bits_of_float sh.Generator.sh_load_seconds);
  let db = plain.Generator.db and smap = sh.Generator.smap in
  let check_q name ?force_algo ?force_seq ?force_sorted q =
    let a = capture_plain db ?force_algo ?force_seq ?force_sorted q in
    let b, _, _, lanes, _ =
      capture_sharded smap ?force_algo ?force_seq ?force_sorted q
    in
    check_capture name a b;
    check_int (name ^ ": one lane") 1 (Array.length lanes.Exec.lane_ms);
    check_int (name ^ ": critical shard") 0 lanes.Exec.critical
  in
  check_q "selection/seq" ~force_seq:true sel;
  check_q "selection/index" ~force_sorted:false sel;
  check_q "selection/sorted" ~force_sorted:true sel;
  check_q "selection/covering" "select pa from pa in Patients";
  check_q "selection/aggregate" "select count(pa) from pa in Patients";
  List.iter
    (fun algo ->
      let name = Plan.algo_name algo in
      check_q (name ^ "/seq") ~force_algo:algo ~force_seq:true join;
      check_q (name ^ "/index") ~force_algo:algo ~force_sorted:false join;
      check_q (name ^ "/sorted") ~force_algo:algo ~force_sorted:true join)
    algos

let sorted_values vs =
  List.sort compare (List.map (Format.asprintf "%a" Value.pp) vs)

(* S=4 vs S=1: identical result multisets, and the per-shard frames
   reconcile exactly against the global deltas. *)
let test_four_shard_answers () =
  let s1 = small_sharded 1 in
  let s4 = small_sharded 4 in
  (* [multiset:false] for queries returning object references: Rids are
     physical addresses and legitimately differ across partitionings. *)
  let check_q ?(multiset = true) name ?force_algo ?force_seq ?force_sorted q =
    let a, _, _, _, va =
      capture_sharded s1.Generator.smap ?force_algo ?force_seq ?force_sorted
        ~keep:true q
    in
    let b, root, global, lanes, vb =
      capture_sharded s4.Generator.smap ?force_algo ?force_seq ?force_sorted
        ~keep:true q
    in
    check_int (name ^ ": rows") a.rows b.rows;
    if multiset then
      Alcotest.(check (list string))
        (name ^ ": result multiset")
        (sorted_values va) (sorted_values vb);
    Alcotest.(check bool)
      (name ^ ": frames reconcile with global totals")
      true
      (Op.reconciles ~global root);
    let shard_lanes = ref 0 in
    Op.iter
      (fun node ->
        match node.Op.kind with
        | Op.Shard_lane _ -> incr shard_lanes
        | _ -> ())
      root;
    check_int (name ^ ": per-shard frames present") 4 !shard_lanes;
    check_int (name ^ ": lane report size") 4 (Array.length lanes.Exec.lane_ms);
    Alcotest.(check bool)
      (name ^ ": critical lane is the max")
      true
      (Array.for_all
         (fun ms -> ms <= lanes.Exec.lane_ms.(lanes.Exec.critical))
         lanes.Exec.lane_ms)
  in
  check_q "selection/seq" ~force_seq:true sel;
  check_q "selection/index" ~force_sorted:false sel;
  check_q "selection/sorted" ~force_sorted:true sel;
  check_q ~multiset:false "selection/covering" "select pa from pa in Patients";
  check_q "selection/aggregate" "select count(pa) from pa in Patients";
  List.iter
    (fun algo ->
      let name = Plan.algo_name algo in
      check_q (name ^ "/seq") ~force_algo:algo ~force_seq:true join;
      check_q (name ^ "/index") ~force_algo:algo ~force_sorted:false join;
      check_q (name ^ "/sorted") ~force_algo:algo ~force_sorted:true join)
    algos

(* Colocation invariant behind shard-local join soundness: every patient
   lands on its provider's shard. *)
let test_colocation () =
  let sh = small_sharded 4 in
  let smap = sh.Generator.smap in
  Array.iteri
    (fun i shard ->
      Alcotest.(check bool)
        (Printf.sprintf "provider %d on its hashed shard" i)
        true
        (shard = Shard_map.shard_of_key smap i))
    sh.Generator.provider_shard

(* Simulated speedup: a shard-local scan at S=4 must run ≥3× faster in
   simulated elapsed time than at S=1 (work splits four ways; the Gather
   merge is the only serial tail). *)
let test_speedup () =
  let scale = 500 in
  let cfg =
    {
      (Generator.config ~scale `Deep Generator.Class_clustered) with
      Generator.n_providers = 200;
      fanout = 3;
    }
  in
  let cost = Tb_sim.Cost_model.scaled scale in
  let s1 = Generator.build_sharded ~cost ~shards:1 cfg in
  let s4 = Generator.build_sharded ~cost ~shards:4 cfg in
  let q = "select pa.age from pa in Patients where pa.mrn < 100000" in
  let elapsed (b : Generator.built_sharded) =
    Shard_map.cold_restart b.Generator.smap;
    let r, _, _, lanes =
      Planner.run_sharded_explained b.Generator.smap q ~force_seq:true
        ~keep:false
    in
    Query_result.dispose r;
    lanes
  in
  let l1 = elapsed s1 and l4 = elapsed s4 in
  let speedup = l1.Exec.elapsed_ms /. l4.Exec.elapsed_ms in
  Alcotest.(check bool)
    (Printf.sprintf "S=4 elapsed speedup %.2f ≥ 3" speedup)
    true (speedup >= 3.0);
  Alcotest.(check bool)
    "merge cost is visible but small"
    true
    (l4.Exec.merge_ms > 0.0
    && l4.Exec.merge_ms < 0.5 *. l4.Exec.elapsed_ms)

let suite =
  [
    Alcotest.test_case "S=1: bit-identical to the unsharded engine" `Quick
      test_one_shard_bit_identity;
    Alcotest.test_case "S=4: same answers, frames reconcile" `Quick
      test_four_shard_answers;
    Alcotest.test_case "colocation: provider hash owns the family" `Quick
      test_colocation;
    Alcotest.test_case "S=4 full scan: ≥3× simulated speedup" `Quick
      test_speedup;
  ]
