(* Optimizer-choice snapshots: for every selectivity of the paper's Figure
   6 sweep, the plan the four-stage pipeline picks, its top-3 candidate
   costs, and the verdict within Figure 6's own two-way menu (unsorted
   unclustered index vs sequential scan) — the crossover rediscovered from
   catalog statistics alone, with the switch point pinned at the bottom.
   A second section pins the sharded-vs-unsharded break-even.  All costs
   are simulated ms, so the output is deterministic; `dune promote`
   records intentional changes. *)

open Tb_query
module Generator = Tb_derby.Generator
module Sc = Tb_statcore.Stat_catalog

let sweep = [ 1; 10; 50; 100; 300; 600; 900 ]

let wide40 () =
  Generator.build
    ~cost:(Tb_sim.Cost_model.scaled 40)
    (Generator.config ~scale:40 `Wide Generator.Class_clustered)

let selection_query b permille =
  let k = permille * Array.length b.Generator.patients / 1000 in
  Printf.sprintf "select pa.age from pa in Patients where pa.num < %d" k

let candidate_cost d desc =
  List.find_opt
    (fun ch -> String.equal ch.Planner.ch_desc desc)
    d.Planner.d_candidates

let () =
  let b = wide40 () in
  let db = b.Generator.db in
  let stats = Sc.analyze db in
  Format.printf
    "=== optimizer sweep: selection on Patients.num (wide, 1/40 scale) ===@.";
  let switch = ref 0 in
  List.iter
    (fun permille ->
      let d = Planner.optimize ~stats db (selection_query b permille) in
      Format.printf "--- sel %.1f%%: chose %s (est %.3f ms)@."
        (float_of_int permille /. 10.0)
        d.Planner.d_desc d.Planner.d_cost_ms;
      Format.printf "    plan: %a@." Plan.pp d.Planner.d_plan;
      List.iteri
        (fun i ch ->
          if i < 3 then
            Format.printf "    #%d %-20s %14.3f ms@." (i + 1)
              ch.Planner.ch_desc ch.Planner.ch_cost_ms)
        d.Planner.d_candidates;
      match (candidate_cost d "index packed", candidate_cost d "seq packed") with
      | Some ix, Some sq ->
          let ix_ms = ix.Planner.ch_cost_ms and sq_ms = sq.Planner.ch_cost_ms in
          if ix_ms > sq_ms && !switch = 0 then switch := permille;
          Format.printf
            "    fig6 menu: unsorted index %.3f ms vs scan %.3f ms -> %s@."
            ix_ms sq_ms
            (if ix_ms <= sq_ms then "index wins" else "index loses")
      | _ -> Format.printf "    fig6 menu: candidate missing@.")
    sweep;
  (if !switch = 0 then
     Format.printf "switch point: the unsorted index never loses in the sweep@."
   else
     Format.printf
       "switch point: scan first beats the unsorted index at %.1f%% selectivity@."
       (float_of_int !switch /. 10.0));
  (* --- sharded break-even, from statistics alone --- *)
  Format.printf "@.=== sharded break-even (wide, 1/40 scale, 4 shards) ===@.";
  let bs =
    Generator.build_sharded
      ~cost:(Tb_sim.Cost_model.scaled 40)
      ~shards:4
      (Generator.config ~scale:40 `Wide Generator.Class_clustered)
  in
  let smap = bs.Generator.smap in
  let show title oql =
    let sd = Planner.optimize_sharded smap oql in
    Format.printf
      "%-24s chose %s: unsharded %.3f ms vs sharded %.3f ms -> %s@." title
      sd.Planner.sd_decision.Planner.d_desc sd.Planner.sd_unsharded_ms
      sd.Planner.sd_sharded_ms
      (if sd.Planner.sd_use_sharded then "shard it" else "stay single-node");
    sd.Planner.sd_use_sharded
  in
  (* Tiny point lookups should stay single-node (the Gather RPCs cost more
     than the work they spread); bulk work should shard.  Pin where the
     statistics put the flip. *)
  let break_even = ref 0 in
  List.iter
    (fun k ->
      let sharded =
        show
          (Printf.sprintf "selection num < %d" k)
          (Printf.sprintf
             "select pa.age from pa in Patients where pa.num < %d" k)
      in
      if sharded && !break_even = 0 then break_even := k)
    [ 1; 5; 25; 250; 2500; 25000 ];
  (if !break_even = 0 then
     Format.printf "break-even: sharding never pays off in the sweep@."
   else
     Format.printf
       "break-even: sharding first pays off at num < %d (%.3f%% selectivity)@."
       !break_even
       (float_of_int !break_even /. 500.0));
  ignore
    (show "hierarchical join"
       "select [p.name, pa.age] from p in Providers, pa in p.clients where \
        pa.num < 5000 and p.upin < 500")
