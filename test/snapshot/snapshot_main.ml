(* Snapshot generator: prints, for every (join algorithm x access path)
   combination plus the selection shapes, the chosen Plan.pp line and the
   operator tree Planner.lower assembles — followed by one deterministic
   EXPLAIN ANALYZE report.  `dune runtest` diffs the output against
   lowering.expected; `dune promote` records intentional changes. *)

open Tb_query
module Database = Tb_store.Database
module Generator = Tb_derby.Generator

let small_built () =
  let scale = 1000 in
  let cfg =
    {
      (Generator.config ~scale `Deep Generator.Class_clustered) with
      Generator.n_providers = 25;
      fanout = 4;
    }
  in
  Generator.build ~cost:(Tb_sim.Cost_model.scaled scale) cfg

let selection = "select pa.age from pa in Patients where pa.mrn < 40"
let identity_selection = "select pa from pa in Patients"
let aggregate_selection = "select count(pa) from pa in Patients"

(* A char-typed comparison: not packed-compilable, so the lowered Fetch
   must fall back to mode=handle. *)
let char_selection = "select pa.age from pa in Patients where pa.sex = 'F'"

let join =
  "select [p.name, pa.age] from p in Providers, pa in p.clients where pa.mrn \
   < 60 and p.upin < 15"

let show db title ?force_algo ?force_seq ?force_sorted q =
  let plan = Planner.plan db ?force_algo ?force_seq ?force_sorted (Oql_parser.parse q) in
  Format.printf "=== %s@.plan: %a@.%a@." title Plan.pp plan Op.pp_tree
    (Planner.lower plan)

let small_sharded shards =
  let scale = 1000 in
  let cfg =
    {
      (Generator.config ~scale `Deep Generator.Class_clustered) with
      Generator.n_providers = 25;
      fanout = 4;
    }
  in
  Generator.build_sharded ~cost:(Tb_sim.Cost_model.scaled scale) ~shards cfg

(* Sharded lowering: the labels carry shard count and partition key
   (shard[i/S], exchange(shards=S, key=...), gather(shards=S, key=upin)).
   At S=1 the tree must be exactly the unsharded one — no Gather, no
   Shard_lane. *)
let show_sharded smap title ?force_algo ?force_seq ?force_sorted q =
  let db0 = Tb_store.Shard_map.shard smap 0 in
  let plan =
    Planner.plan db0 ?force_algo ?force_seq ?force_sorted (Oql_parser.parse q)
  in
  Format.printf "=== %s@.plan: %a@.%a@." title Plan.pp plan Op.pp_tree
    (Planner.lower_sharded smap plan)

let () =
  let b = small_built () in
  let db = b.Generator.db in
  show db "selection seq" ~force_seq:true selection;
  show db "selection index" ~force_sorted:false selection;
  show db "selection sorted" ~force_sorted:true selection;
  show db "selection covering" identity_selection;
  show db "selection aggregate" aggregate_selection;
  show db "selection char fallback" ~force_seq:true char_selection;
  List.iter
    (fun algo ->
      let name = Plan.algo_name algo in
      (* NL navigates the child side and NOJOIN the parent side through
         collections, so those sides are always sequential; every other
         combination exercises both access paths. *)
      show db (name ^ " seq") ~force_algo:algo ~force_seq:true join;
      show db (name ^ " index") ~force_algo:algo ~force_sorted:false join;
      show db (name ^ " sorted") ~force_algo:algo ~force_sorted:true join)
    [ Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ; Plan.SMJ ];
  (* One full EXPLAIN ANALYZE, pinned down to the simulated microsecond. *)
  Format.printf "=== explain analyze (CHJ, aggregate)@.";
  Database.cold_restart db;
  let r, root, global =
    Planner.run_explained db
      "select count(pa) from p in Providers, pa in p.clients where p.upin < 15"
      ~force_algo:Plan.CHJ ~keep:false
  in
  Query_result.dispose r;
  Format.printf "%a" (Op.pp_report ~global) root;
  (* The sharded matrix, S ∈ {1, 4}: shard count and partition key in the
     operator labels; the S=1 trees are byte-identical to the plain ones
     above. *)
  List.iter
    (fun shards ->
      let smap = (small_sharded shards).Generator.smap in
      let tag = Printf.sprintf " S=%d" shards in
      show_sharded smap ("sharded selection seq" ^ tag) ~force_seq:true
        selection;
      show_sharded smap ("sharded selection index" ^ tag) ~force_sorted:false
        selection;
      show_sharded smap ("sharded selection sorted" ^ tag) ~force_sorted:true
        selection;
      show_sharded smap ("sharded selection covering" ^ tag) identity_selection;
      show_sharded smap
        ("sharded selection aggregate" ^ tag)
        aggregate_selection;
      List.iter
        (fun algo ->
          let name = "sharded " ^ Plan.algo_name algo in
          show_sharded smap (name ^ " seq" ^ tag) ~force_algo:algo
            ~force_seq:true join;
          show_sharded smap (name ^ " index" ^ tag) ~force_algo:algo
            ~force_sorted:false join;
          show_sharded smap (name ^ " sorted" ^ tag) ~force_algo:algo
            ~force_sorted:true join)
        [
          Plan.NL; Plan.NOJOIN; Plan.PHJ; Plan.CHJ; Plan.PHHJ; Plan.CHHJ;
          Plan.SMJ;
        ])
    [ 1; 4 ];
  (* A sharded EXPLAIN ANALYZE: per-shard frames reconciling against the
     global totals, plus the lane report with the critical-path shard. *)
  Format.printf "=== sharded explain analyze (PHJ, aggregate, S=4)@.";
  let smap = (small_sharded 4).Generator.smap in
  let r, root, global, lanes =
    Planner.run_sharded_explained smap
      "select count(pa) from p in Providers, pa in p.clients where p.upin < 15"
      ~force_algo:Plan.PHJ ~keep:false
  in
  Query_result.dispose r;
  Format.printf "%a" (Op.pp_report ~global) root;
  Array.iteri
    (fun i ms -> Format.printf "lane %d: %.3f ms@." i ms)
    lanes.Exec.lane_ms;
  Format.printf "merge: %.3f ms@.critical shard: %d@.elapsed: %.3f ms@."
    lanes.Exec.merge_ms lanes.Exec.critical lanes.Exec.elapsed_ms
