(* Tests for the Figure-3 benchmark-results database. *)

open Tb_statdb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let obs ?(numtest = 1) ?(algo = "PHJ") ?(elapsed = 1.5) () =
  {
    Stat_store.numtest;
    query_text = "select pa from pa in Patients";
    projection = "tuple";
    selectivity = 10;
    cold = true;
    database = "2000x1000";
    cluster = "class";
    algo;
    server_cache_pages = 1024;
    client_cache_pages = 8192;
    elapsed_s = elapsed;
    rpcs = 100;
    rpc_pages = 100;
    d2sc_reads = 90;
    sc2cc_reads = 100;
    cc_missrate = 12.5;
    sc_missrate = 50.0;
    cc_pagefaults = 0;
  }

let test_record_and_read_back () =
  let t = Stat_store.create () in
  for i = 1 to 20 do
    ignore (Stat_store.record t (obs ~numtest:i ~elapsed:(float_of_int i) ()))
  done;
  check_int "count" 20 (Stat_store.count t);
  let all = Stat_store.observations t in
  check_int "ordered" 1 (List.hd all).Stat_store.numtest;
  (* The Stat objects exist in the object store itself. *)
  check_int "Stat extent" 20
    (Tb_store.Database.cardinality (Stat_store.db t) ~cls:Stat_schema.stat_cls);
  check_int "Query objects" 20
    (Tb_store.Database.cardinality (Stat_store.db t) ~cls:Stat_schema.query_cls);
  (* Systems are deduplicated. *)
  check_int "one System" 1
    (Tb_store.Database.cardinality (Stat_store.db t) ~cls:Stat_schema.system_cls)

let test_oql_over_stats () =
  (* Section 3.3's payoff: "a query language can be used to extract the
     information you are looking for". *)
  let t = Stat_store.create () in
  for i = 1 to 30 do
    ignore (Stat_store.record t (obs ~numtest:i ~elapsed:(float_of_int (i * 100)) ()))
  done;
  let r =
    Stat_store.query t
      "select s.ElapsedTimeMs from s in Stats where s.numtest < 11"
  in
  check_int "10 matching stats" 10 (Tb_query.Query_result.count r);
  Tb_query.Query_result.dispose r

let test_extents_and_links () =
  let t = Stat_store.create () in
  let _prov = Stat_store.register_extent t ~classname:"Provider" ~size:2000 ~links:[] in
  let _pat =
    Stat_store.register_extent t ~classname:"Patient" ~size:2_000_000
      ~links:[ ("Provider", 1000) ]
  in
  check_bool "unknown link rejected" true
    (match
       Stat_store.register_extent t ~classname:"X" ~size:1 ~links:[ ("Nope", 1) ]
     with
    | exception Not_found -> true
    | _ -> false);
  ignore (Stat_store.record t (obs ()));
  check_int "stat recorded with extents" 1 (Stat_store.count t)

let test_csv_export () =
  let t = Stat_store.create () in
  ignore (Stat_store.record t (obs ()));
  ignore (Stat_store.record t (obs ~numtest:2 ~algo:"NL" ()));
  let csv = Stat_store.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 rows" 3 (List.length lines);
  check_bool "algo present" true
    (List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "2,") lines)

let test_csv_round_trip () =
  (* csv_split is the exact inverse of csv_escape, field by field. *)
  let fields =
    [
      "plain";
      "has,comma";
      "has \"quotes\"";
      "comma, and \"both\"";
      "line\nbreak";
      "cr\r\nlf";
      "";
      "  spaces  ";
      "\"";
      ",";
    ]
  in
  let record = String.concat "," (List.map Stat_store.csv_escape fields) in
  Alcotest.(check (list string)) "escape/split inverse" fields
    (Stat_store.csv_split record);
  (* A query containing commas and quotes survives a full to_csv line. *)
  let t = Stat_store.create () in
  let tricky = "select [pa.name, pa.age] from pa in \"Patients\", wk in pa.kin" in
  ignore
    (Stat_store.record t { (obs ()) with Stat_store.query_text = tricky });
  let csv = Stat_store.to_csv t in
  match String.split_on_char '\n' (String.trim csv) with
  | [ header; row ] ->
      let names = Stat_store.csv_split header in
      let cells = Stat_store.csv_split row in
      check_int "row matches header" (List.length names) (List.length cells);
      check_bool "query text intact" true
        (List.exists (String.equal tricky) cells)
  | lines -> Alcotest.failf "expected 2 csv lines, got %d" (List.length lines)

let test_record_estimates () =
  let t = Stat_store.create () in
  let check q fed =
    {
      Tb_query.Exec.ec_label = "fetch(pa:Patient)";
      ec_key = "fetch/Patient";
      ec_est_ms = 100.0 *. q;
      ec_actual_ms = 100.0;
      ec_q = q;
      ec_fed_back = fed;
    }
  in
  let rids =
    Stat_store.record_estimates t ~numtest:7 [ check 1.25 false; check 3.0 true ]
  in
  check_int "two Estimate objects" 2 (List.length rids);
  check_int "Estimate extent" 2
    (Tb_store.Database.cardinality (Stat_store.db t)
       ~cls:Stat_schema.estimate_cls);
  let r =
    Stat_store.query t
      "select e.QErrorPct from e in Estimates where e.QErrorPct < 200"
  in
  check_int "queryable back" 1 (Tb_query.Query_result.count r);
  Tb_query.Query_result.dispose r

let test_gnuplot_report () =
  let t = Stat_store.create () in
  List.iter
    (fun (algo, sel, elapsed) ->
      ignore
        (Stat_store.record t
           {
             (obs ~algo ~elapsed ()) with
             Stat_store.selectivity = sel;
             numtest = sel;
           }))
    [ ("PHJ", 10, 1.0); ("PHJ", 90, 3.0); ("NL", 10, 5.0); ("NL", 90, 50.0) ];
  let dat = Stat_report.gnuplot_data t in
  check_bool "two indexed blocks" true
    (String.length dat > 0
    && List.length (String.split_on_char '#' dat) >= 4 (* 2 groups x 2 headers *));
  check_bool "data rows present" true
    (List.exists
       (fun line -> String.equal line "90  50.000")
       (String.split_on_char '\n' dat));
  let script = Stat_report.gnuplot_script ~data_file:"out.dat" t in
  check_bool "script plots both groups" true
    (List.length (String.split_on_char '\n' script) >= 5);
  let s = Stat_report.summary t in
  check_bool "summary mentions slowest" true
    (List.exists
       (fun line ->
         String.length line >= 8 && String.equal (String.sub line 0 8) "slowest:")
       (String.split_on_char '\n' s))

let suite =
  [
    Alcotest.test_case "gnuplot report" `Quick test_gnuplot_report;
    Alcotest.test_case "record and read back" `Quick test_record_and_read_back;
    Alcotest.test_case "OQL over the stats" `Quick test_oql_over_stats;
    Alcotest.test_case "extents and link ratios" `Quick test_extents_and_links;
    Alcotest.test_case "csv export" `Quick test_csv_export;
    Alcotest.test_case "csv round trip" `Quick test_csv_round_trip;
    Alcotest.test_case "record estimates" `Quick test_record_estimates;
  ]
