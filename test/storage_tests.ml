(* Tests for the storage engine: Rids, slotted pages, LRU pools, the
   two-tier cache stack and heap files. *)

open Tb_storage

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh_stack ?(server = 8) ?(client = 16) () =
  let sim = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100) in
  let disk = Disk.create sim in
  (sim, disk, Cache_stack.create sim disk ~server_pages:server ~client_pages:client)

(* --- Rid --- *)

let test_rid_roundtrip () =
  let rid = Rid.make ~file:3 ~page:123456 ~slot:77 in
  let decoded = Rid.decode (Rid.encode rid) ~pos:0 in
  check_bool "roundtrip" true (Rid.equal rid decoded);
  check_bool "nil roundtrip" true
    (Rid.is_nil (Rid.decode (Rid.encode Rid.nil) ~pos:0))

let test_rid_order_is_physical () =
  let a = Rid.make ~file:0 ~page:5 ~slot:9 in
  let b = Rid.make ~file:0 ~page:6 ~slot:0 in
  let c = Rid.make ~file:1 ~page:0 ~slot:0 in
  check_bool "page order" true (Rid.compare a b < 0);
  check_bool "file order" true (Rid.compare b c < 0)

(* --- Slotted page --- *)

let body s = Bytes.of_string s

let test_page_insert_read () =
  let p = Page_layout.create ~size:256 in
  let s0 = Option.get (Page_layout.insert p (body "hello")) in
  let s1 = Option.get (Page_layout.insert p (body "world!")) in
  check_string "slot 0" "hello" (Bytes.to_string (Page_layout.read p s0));
  check_string "slot 1" "world!" (Bytes.to_string (Page_layout.read p s1));
  check_int "live" 2 (Page_layout.live_count p);
  Page_layout.check_invariants p

let test_page_delete_and_reuse () =
  let p = Page_layout.create ~size:256 in
  let s0 = Option.get (Page_layout.insert p (body "aaaa")) in
  let _s1 = Option.get (Page_layout.insert p (body "bbbb")) in
  Page_layout.delete p s0;
  check_bool "dead read raises" true
    (match Page_layout.read p s0 with
    | exception Not_found -> true
    | _ -> false);
  let s2 = Option.get (Page_layout.insert p (body "cc")) in
  check_int "dead slot reused" s0 s2;
  Page_layout.check_invariants p

let test_page_full () =
  let p = Page_layout.create ~size:64 in
  (* 64 bytes: 4 header + per record (10 body + 4 dir) -> at most 4. *)
  let inserted = ref 0 in
  (try
     while true do
       match Page_layout.insert p (Bytes.make 10 'x') with
       | Some _ -> incr inserted
       | None -> raise Exit
     done
   with Exit -> ());
  check_int "fills then refuses" 4 !inserted;
  Page_layout.check_invariants p

let test_page_compaction_recovers_space () =
  let p = Page_layout.create ~size:128 in
  let slots =
    List.init 5 (fun _ -> Option.get (Page_layout.insert p (Bytes.make 20 'a')))
  in
  (* Free alternating slots: contiguous space is tight, total space is not. *)
  List.iteri (fun i s -> if i mod 2 = 0 then Page_layout.delete p s) slots;
  check_bool "large insert succeeds via compaction" true
    (Option.is_some (Page_layout.insert p (Bytes.make 40 'z')));
  Page_layout.check_invariants p

let test_page_update_in_place_and_grow () =
  let p = Page_layout.create ~size:256 in
  let s = Option.get (Page_layout.insert p (body "short")) in
  check_bool "shrink ok" true (Page_layout.update p s (body "s"));
  check_string "shrunk" "s" (Bytes.to_string (Page_layout.read p s));
  check_bool "grow ok" true (Page_layout.update p s (Bytes.make 100 'g'));
  check_int "grown" 100 (Bytes.length (Page_layout.read p s));
  let _ = Option.get (Page_layout.insert p (Bytes.make 100 'f')) in
  check_bool "grow past capacity fails" false
    (Page_layout.update p s (Bytes.make 200 'g'));
  check_int "unchanged on failure" 100 (Bytes.length (Page_layout.read p s));
  Page_layout.check_invariants p

(* Model-based property test: random op sequences against an association
   list model. *)
let page_model_test =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (6, map (fun n -> `Insert (max 1 (n mod 60))) nat);
          (2, map (fun i -> `Delete i) nat);
          (2, map2 (fun i n -> `Update (i, max 1 (n mod 60))) nat nat);
        ])
  in
  let ops = make Gen.(list_size (int_range 1 120) op_gen) in
  Test.make ~name:"slotted page behaves like its model" ~count:200 ops
    (fun ops ->
      let p = Page_layout.create ~size:512 in
      let model : (int, bytes) Hashtbl.t = Hashtbl.create 16 in
      let counter = ref 0 in
      let payload len =
        incr counter;
        Bytes.make len (Char.chr (65 + (!counter mod 26)))
      in
      let live_slots () = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
      List.iter
        (fun op ->
          (match op with
          | `Insert len -> (
              let b = payload len in
              match Page_layout.insert p b with
              | Some slot ->
                  if Hashtbl.mem model slot then failwith "slot reused while live";
                  Hashtbl.replace model slot b
              | None ->
                  (* Refusal is only legal when the page really is full. *)
                  if Page_layout.free_bytes p >= len + 4 then
                    failwith "refused although it fits")
          | `Delete i -> (
              match live_slots () with
              | [] -> ()
              | slots ->
                  let slot = List.nth slots (i mod List.length slots) in
                  Page_layout.delete p slot;
                  Hashtbl.remove model slot)
          | `Update (i, len) -> (
              match live_slots () with
              | [] -> ()
              | slots ->
                  let slot = List.nth slots (i mod List.length slots) in
                  let b = payload len in
                  if Page_layout.update p slot b then Hashtbl.replace model slot b));
          Page_layout.check_invariants p)
        ops;
      (* Final state agrees with the model. *)
      Hashtbl.iter
        (fun slot b ->
          if not (Bytes.equal (Page_layout.read p slot) b) then
            failwith "content mismatch")
        model;
      Page_layout.live_count p = Hashtbl.length model)

(* --- Page ids --- *)

let test_page_id_packing () =
  (* Page ids pack into a single immediate int: the accessors must invert
     [make] across the whole supported range. *)
  List.iter
    (fun (file, index) ->
      let id = Page_id.make ~file ~index in
      check_int "file" file (Page_id.file id);
      check_int "index" index (Page_id.index id))
    [ (0, 0); (7, 123_456_789); (1 lsl 20, (1 lsl 40) - 1) ];
  check_bool "negative file rejected" true
    (match Page_id.make ~file:(-1) ~index:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "oversized index rejected" true
    (match Page_id.make ~file:0 ~index:(1 lsl 40) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "equal/compare agree" true
    (Page_id.equal (Page_id.make ~file:1 ~index:2) (Page_id.make ~file:1 ~index:2)
    && Page_id.compare (Page_id.make ~file:1 ~index:2) (Page_id.make ~file:2 ~index:0) < 0)

(* --- Buffer pool --- *)

let pid i = Page_id.make ~file:0 ~index:i
let page () = Page_layout.create ~size:64

let test_pool_lru_eviction () =
  let pool = Buffer_pool.create ~capacity_pages:2 in
  let p0 = page () and p1 = page () and p2 = page () in
  check_bool "no victim" true (Buffer_pool.add pool (pid 0) p0 = None);
  check_bool "no victim" true (Buffer_pool.add pool (pid 1) p1 = None);
  (* Touch 0 so 1 becomes the LRU. *)
  ignore (Buffer_pool.find pool (pid 0));
  (match Buffer_pool.add pool (pid 2) p2 with
  | Some (vid, _) -> check_bool "evicts LRU (1)" true (Page_id.equal vid (pid 1))
  | None -> Alcotest.fail "expected eviction");
  check_bool "0 still in" true (Buffer_pool.mem pool (pid 0));
  check_bool "1 out" false (Buffer_pool.mem pool (pid 1))

let test_pool_readd_refreshes () =
  let pool = Buffer_pool.create ~capacity_pages:2 in
  ignore (Buffer_pool.add pool (pid 0) (page ()));
  ignore (Buffer_pool.add pool (pid 1) (page ()));
  ignore (Buffer_pool.add pool (pid 0) (page ()));
  (match Buffer_pool.add pool (pid 2) (page ()) with
  | Some (vid, _) -> check_bool "1 was LRU" true (Page_id.equal vid (pid 1))
  | None -> Alcotest.fail "expected eviction");
  Buffer_pool.clear pool;
  check_int "cleared" 0 (Buffer_pool.size pool)

let pool_never_exceeds_capacity =
  QCheck.Test.make ~name:"pool never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 30)))
    (fun (cap, adds) ->
      let pool = Buffer_pool.create ~capacity_pages:cap in
      List.iter (fun i -> ignore (Buffer_pool.add pool (pid i) (page ()))) adds;
      Buffer_pool.size pool <= cap)

let expect_victim pool id p want =
  match Buffer_pool.add pool id p with
  | Some (vid, _) ->
      check_bool
        (Printf.sprintf "victim is %d" (Page_id.index want))
        true
        (Page_id.equal vid want)
  | None -> Alcotest.fail "expected eviction"

let test_pool_interleaved_order () =
  (* The eviction order must track an interleaving of find/add/remove, not
     just insertion order. *)
  let pool = Buffer_pool.create ~capacity_pages:3 in
  ignore (Buffer_pool.add pool (pid 0) (page ()));
  ignore (Buffer_pool.add pool (pid 1) (page ()));
  ignore (Buffer_pool.add pool (pid 2) (page ()));
  (* Recency (old -> new) is 0 1 2; touch 0 and drop 1: now 2 0. *)
  ignore (Buffer_pool.find pool (pid 0));
  Buffer_pool.remove pool (pid 1);
  check_int "remove shrinks" 2 (Buffer_pool.size pool);
  check_bool "freed slot absorbs an add" true
    (Buffer_pool.add pool (pid 3) (page ()) = None);
  (* Chain is 2 0 3: successive adds evict in exactly that order. *)
  expect_victim pool (pid 4) (page ()) (pid 2);
  expect_victim pool (pid 5) (page ()) (pid 0);
  expect_victim pool (pid 6) (page ()) (pid 3);
  (* iter agrees with the chain, LRU first. *)
  let order = ref [] in
  Buffer_pool.iter pool (fun id _ -> order := Page_id.index id :: !order);
  Alcotest.(check (list int)) "iter order" [ 4; 5; 6 ] (List.rev !order)

let test_pool_capacity_one () =
  let pool = Buffer_pool.create ~capacity_pages:1 in
  let p0 = page () in
  check_bool "first add fits" true (Buffer_pool.add pool (pid 0) p0 = None);
  (match Buffer_pool.add pool (pid 1) (page ()) with
  | Some (vid, vp) ->
      check_bool "sole resident is the victim" true (Page_id.equal vid (pid 0));
      check_bool "victim page returned" true (vp == p0)
  | None -> Alcotest.fail "expected eviction");
  check_bool "newcomer resident" true (Buffer_pool.mem pool (pid 1));
  check_bool "victim gone" false (Buffer_pool.mem pool (pid 0));
  check_int "still one entry" 1 (Buffer_pool.size pool);
  (* The recycled node keeps working: find and evict again. *)
  check_bool "find newcomer" true (Buffer_pool.find pool (pid 1) <> None);
  expect_victim pool (pid 2) (page ()) (pid 1)

let test_pool_clear_resets_chain () =
  let pool = Buffer_pool.create ~capacity_pages:2 in
  ignore (Buffer_pool.add pool (pid 0) (page ()));
  ignore (Buffer_pool.add pool (pid 1) (page ()));
  Buffer_pool.clear pool;
  check_int "empty" 0 (Buffer_pool.size pool);
  let seen = ref 0 in
  Buffer_pool.iter pool (fun _ _ -> incr seen);
  check_int "iter sees nothing" 0 !seen;
  check_bool "stale id gone" false (Buffer_pool.mem pool (pid 0));
  (* The chain restarts from scratch; no stale node resurfaces. *)
  ignore (Buffer_pool.add pool (pid 2) (page ()));
  ignore (Buffer_pool.add pool (pid 3) (page ()));
  expect_victim pool (pid 4) (page ()) (pid 2)

(* --- Cache stack --- *)

let test_stack_charges_layers () =
  let sim, disk, stack = fresh_stack () in
  let file = Disk.new_file disk ~name:"f" in
  let index = Disk.append_page disk ~file in
  let id = Page_id.make ~file ~index in
  Tb_sim.Sim.reset sim;
  ignore (Cache_stack.fetch stack id);
  let c = sim.Tb_sim.Sim.counters in
  check_int "first touch misses both caches" 1 c.Tb_sim.Counters.disk_reads;
  check_int "one rpc" 1 c.Tb_sim.Counters.rpc_count;
  ignore (Cache_stack.fetch stack id);
  check_int "second touch is a client hit" 1 c.Tb_sim.Counters.client_hits;
  check_int "no extra disk read" 1 c.Tb_sim.Counters.disk_reads

let test_stack_server_hit_after_client_eviction () =
  let sim, disk, stack = fresh_stack ~server:8 ~client:2 () in
  let file = Disk.new_file disk ~name:"f" in
  let ids =
    List.init 3 (fun _ -> Page_id.make ~file ~index:(Disk.append_page disk ~file))
  in
  List.iter (fun id -> ignore (Cache_stack.fetch stack id)) ids;
  (* Page 0 fell out of the 2-page client cache but not the server cache. *)
  Tb_sim.Sim.reset sim;
  ignore (Cache_stack.fetch stack (List.hd ids));
  let c = sim.Tb_sim.Sim.counters in
  check_int "no disk read" 0 c.Tb_sim.Counters.disk_reads;
  check_int "served by server" 1 c.Tb_sim.Counters.server_hits;
  check_int "still one rpc" 1 c.Tb_sim.Counters.rpc_count

let test_stack_cold_after_clear () =
  let sim, disk, stack = fresh_stack () in
  let file = Disk.new_file disk ~name:"f" in
  let id = Page_id.make ~file ~index:(Disk.append_page disk ~file) in
  ignore (Cache_stack.fetch stack id);
  Cache_stack.clear stack;
  Tb_sim.Sim.reset sim;
  ignore (Cache_stack.fetch stack id);
  check_int "cold again" 1 sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads

let test_stack_dirty_writeback () =
  let sim, disk, stack = fresh_stack () in
  let file = Disk.new_file disk ~name:"f" in
  let id = Page_id.make ~file ~index:(Disk.append_page disk ~file) in
  let page = Cache_stack.fetch_for_write stack id in
  ignore (Page_layout.insert page (Bytes.of_string "dirty"));
  Tb_sim.Sim.reset sim;
  Cache_stack.flush stack;
  check_int "flushed to disk" 1 sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_writes;
  Tb_sim.Sim.reset sim;
  Cache_stack.flush stack;
  check_int "flush is idempotent" 0
    sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_writes

(* --- Heap file --- *)

let test_heap_insert_read_scan () =
  let _, _, stack = fresh_stack () in
  let hf = Heap_file.create stack ~name:"heap" in
  let rids =
    List.init 100 (fun i -> Heap_file.insert hf (body (Printf.sprintf "rec-%03d" i)))
  in
  List.iteri
    (fun i rid ->
      check_string "read back"
        (Printf.sprintf "rec-%03d" i)
        (Bytes.to_string (Heap_file.read hf rid)))
    rids;
  let scanned = ref [] in
  Heap_file.scan hf (fun rid b -> scanned := (rid, Bytes.to_string b) :: !scanned);
  check_int "scan count" 100 (List.length !scanned);
  check_int "record_count" 100 (Heap_file.record_count hf)

let test_heap_insertion_order_is_physical_order () =
  let _, _, stack = fresh_stack () in
  let hf = Heap_file.create stack ~name:"heap" in
  let rids = Array.init 200 (fun i -> Heap_file.insert hf (body (string_of_int i))) in
  let sorted = Array.copy rids in
  Array.sort Rid.compare sorted;
  check_bool "rids already in physical order" true (rids = sorted)

let test_heap_update_relocation () =
  let sim, _, stack = fresh_stack () in
  let hf = Heap_file.create stack ~name:"heap" in
  (* Fill a page almost completely, then grow the first record. *)
  let first = Heap_file.insert hf (Bytes.make 50 'a') in
  let page_size = sim.Tb_sim.Sim.cost.Tb_sim.Cost_model.page_size in
  let filler_count = (page_size / 60) + 2 in
  let _ = List.init filler_count (fun _ -> Heap_file.insert hf (Bytes.make 50 'f')) in
  Heap_file.update hf first (Bytes.make 600 'B');
  check_int "reads back the grown body" 600
    (Bytes.length (Heap_file.read hf first));
  (* The scan still presents the record at its home Rid. *)
  let seen = ref false in
  Heap_file.scan hf (fun rid b ->
      if Rid.equal rid first then begin
        seen := true;
        check_int "scan body" 600 (Bytes.length b)
      end);
  check_bool "scan shows home rid" true !seen;
  (* And only once. *)
  let count = ref 0 in
  Heap_file.scan hf (fun rid _ -> if Rid.equal rid first then incr count);
  check_int "no duplicates" 1 !count

let test_heap_update_after_relocation_again () =
  let _, _, stack = fresh_stack () in
  let hf = Heap_file.create stack ~name:"heap" in
  let first = Heap_file.insert hf (Bytes.make 50 'a') in
  let _ = List.init 80 (fun _ -> Heap_file.insert hf (Bytes.make 50 'f')) in
  Heap_file.update hf first (Bytes.make 900 'B');
  Heap_file.update hf first (Bytes.make 1200 'C');
  check_int "second growth" 1200 (Bytes.length (Heap_file.read hf first));
  Heap_file.update hf first (Bytes.make 10 'd');
  check_string "shrink after forwarding" (String.make 10 'd')
    (Bytes.to_string (Heap_file.read hf first))

let test_heap_delete () =
  let _, _, stack = fresh_stack () in
  let hf = Heap_file.create stack ~name:"heap" in
  let a = Heap_file.insert hf (body "a") in
  let b = Heap_file.insert hf (body "b") in
  Heap_file.delete hf a;
  check_bool "deleted read raises" true
    (match Heap_file.read hf a with exception Not_found -> true | _ -> false);
  check_string "other record intact" "b" (Bytes.to_string (Heap_file.read hf b));
  check_int "count" 1 (Heap_file.record_count hf)

let test_heap_respects_fill_factor () =
  let sim, _, stack = fresh_stack () in
  let hf = Heap_file.create stack ~name:"heap" in
  (* 120-byte records, as providers: the paper expects ~30 per 4K page. *)
  let record_bytes = 120 in
  for _ = 1 to 300 do
    ignore (Heap_file.insert hf (Bytes.make record_bytes 'p'))
  done;
  let per_page =
    Tb_sim.Cost_model.records_per_page sim.Tb_sim.Sim.cost
      ~record_bytes:(record_bytes + 4 + 1)
  in
  let expected_pages = (300 + per_page - 1) / per_page in
  check_bool "page count near the paper's density" true
    (abs (Heap_file.page_count hf - expected_pages) <= 1)

let heap_roundtrip_prop =
  QCheck.Test.make ~name:"heap file: insert/read roundtrip" ~count:50
    QCheck.(small_list (string_of_size (Gen.int_range 1 300)))
    (fun bodies ->
      let _, _, stack = fresh_stack ~server:64 ~client:128 () in
      let hf = Heap_file.create stack ~name:"heap" in
      let rids = List.map (fun s -> (Heap_file.insert hf (body s), s)) bodies in
      List.for_all
        (fun (rid, s) -> String.equal (Bytes.to_string (Heap_file.read hf rid)) s)
        rids)

let suite =
  [
    Alcotest.test_case "rid: encode/decode" `Quick test_rid_roundtrip;
    Alcotest.test_case "rid: physical order" `Quick test_rid_order_is_physical;
    Alcotest.test_case "page: insert/read" `Quick test_page_insert_read;
    Alcotest.test_case "page: delete and slot reuse" `Quick
      test_page_delete_and_reuse;
    Alcotest.test_case "page: refuses when full" `Quick test_page_full;
    Alcotest.test_case "page: compaction" `Quick
      test_page_compaction_recovers_space;
    Alcotest.test_case "page: update in place and grow" `Quick
      test_page_update_in_place_and_grow;
    QCheck_alcotest.to_alcotest page_model_test;
    Alcotest.test_case "page id: packing roundtrip" `Quick test_page_id_packing;
    Alcotest.test_case "pool: LRU eviction" `Quick test_pool_lru_eviction;
    Alcotest.test_case "pool: re-add refreshes recency" `Quick
      test_pool_readd_refreshes;
    QCheck_alcotest.to_alcotest pool_never_exceeds_capacity;
    Alcotest.test_case "pool: interleaved find/add/remove order" `Quick
      test_pool_interleaved_order;
    Alcotest.test_case "pool: capacity one" `Quick test_pool_capacity_one;
    Alcotest.test_case "pool: clear resets the chain" `Quick
      test_pool_clear_resets_chain;
    Alcotest.test_case "stack: layer charging" `Quick test_stack_charges_layers;
    Alcotest.test_case "stack: server absorbs client evictions" `Quick
      test_stack_server_hit_after_client_eviction;
    Alcotest.test_case "stack: cold after clear" `Quick test_stack_cold_after_clear;
    Alcotest.test_case "stack: dirty write-back" `Quick test_stack_dirty_writeback;
    Alcotest.test_case "heap: insert/read/scan" `Quick test_heap_insert_read_scan;
    Alcotest.test_case "heap: insertion order = physical order" `Quick
      test_heap_insertion_order_is_physical_order;
    Alcotest.test_case "heap: relocation keeps the Rid valid" `Quick
      test_heap_update_relocation;
    Alcotest.test_case "heap: repeated growth" `Quick
      test_heap_update_after_relocation_again;
    Alcotest.test_case "heap: delete" `Quick test_heap_delete;
    Alcotest.test_case "heap: fill factor density" `Quick
      test_heap_respects_fill_factor;
    QCheck_alcotest.to_alcotest heap_roundtrip_prop;
  ]
