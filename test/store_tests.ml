(* Tests for the object engine: values, codec, schema, headers, handles,
   big collections, B+-trees, transactions and the database façade. *)

open Tb_store
module Rid = Tb_storage.Rid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh_sim () = Tb_sim.Sim.create (Tb_sim.Cost_model.scaled 100)

let fresh_stack ?(server = 64) ?(client = 256) () =
  let sim = fresh_sim () in
  let disk = Tb_storage.Disk.create sim in
  (sim, Tb_storage.Cache_stack.create sim disk ~server_pages:server ~client_pages:client)

(* --- Value --- *)

let test_value_field () =
  let v = Value.Tuple [ ("name", Value.String "x"); ("age", Value.Int 3) ] in
  check_int "field" 3 (Value.to_int (Value.field v "age"));
  check_bool "missing field raises" true
    (match Value.field v "zzz" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let v' = Value.set_field v "age" (Value.Int 4) in
  check_int "set_field" 4 (Value.to_int (Value.field v' "age"));
  check_string "other fields kept" "x" (Value.to_string_exn (Value.field v' "name"))

(* --- Codec --- *)

let value_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [
        return Value.Nil;
        map (fun i -> Value.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Value.Real f) (float_bound_inclusive 1e6);
        map (fun b -> Value.Bool b) bool;
        map (fun c -> Value.Char c) printable;
        map (fun s -> Value.String s) (string_size (int_range 0 40));
        map
          (fun (f, p, s) -> Value.Ref (Rid.make ~file:f ~page:p ~slot:s))
          (triple (int_range 0 100) (int_range 0 100000) (int_range 0 200));
      ]
  in
  let rec value n =
    if n <= 0 then base
    else
      frequency
        [
          (4, base);
          (1, map (fun xs -> Value.Set xs) (list_size (int_range 0 5) (value (n - 1))));
          (1, map (fun xs -> Value.List xs) (list_size (int_range 0 5) (value (n - 1))));
          ( 2,
            map
              (fun xs ->
                Value.Tuple (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) xs))
              (list_size (int_range 0 5) (value (n - 1))) );
        ]
  in
  value 3

let codec_roundtrip =
  QCheck.Test.make ~name:"codec: roundtrip" ~count:500 (QCheck.make value_gen)
    (fun v ->
      let b = Codec.encode v in
      Bytes.length b = Codec.encoded_size v
      && Value.equal v (Codec.decode_exn b)
      && Codec.skip b ~pos:0 = Bytes.length b)

let test_codec_every_constructor () =
  (* One value per constructor — including [Big_set], which the generator
     above never produces — must round-trip, and [skip] must consume
     exactly the bytes [decode] would. *)
  let rid = Rid.make ~file:3 ~page:17 ~slot:5 in
  let values =
    [
      Value.Nil;
      Value.Int (-123_456);
      Value.Real 3.5;
      Value.Bool true;
      Value.Char 'x';
      Value.String "hello";
      Value.String "";
      Value.Ref rid;
      Value.Tuple [ ("a", Value.Int 1); ("b", Value.Set [ Value.Int 2 ]) ];
      Value.Tuple [];
      Value.Set [ Value.Int 1; Value.Nil ];
      Value.List [ Value.String ""; Value.Bool false ];
      Value.Big_set rid;
    ]
  in
  List.iter
    (fun v ->
      let b = Codec.encode v in
      check_bool "roundtrip" true (Value.equal v (Codec.decode_exn b));
      check_int "skip consumes the whole encoding" (Bytes.length b)
        (Codec.skip b ~pos:0))
    values

let test_codec_int_is_4_bytes () =
  (* The paper counts 4 bytes per integer, 8 per reference. *)
  check_int "int" 5 (Codec.encoded_size (Value.Int 42));
  check_int "ref" 9
    (Codec.encoded_size (Value.Ref (Rid.make ~file:0 ~page:0 ~slot:0)))

(* --- Schema --- *)

let derby_schema () =
  Schema.make
    ~classes:
      [
        {
          Schema.cls_name = "Provider";
          attrs =
            [
              ("name", Schema.TString);
              ("upin", Schema.TInt);
              ("clients", Schema.TSet (Schema.TRef "Patient"));
            ];
        };
        {
          Schema.cls_name = "Patient";
          attrs =
            [
              ("name", Schema.TString);
              ("mrn", Schema.TInt);
              ("primary_care_provider", Schema.TRef "Provider");
            ];
        };
      ]
    ~roots:
      [
        ("Providers", Schema.TSet (Schema.TRef "Provider"));
        ("Patients", Schema.TSet (Schema.TRef "Patient"));
      ]

let test_schema_validation () =
  check_bool "unknown ref rejected" true
    (match
       Schema.make
         ~classes:[ { Schema.cls_name = "A"; attrs = [ ("x", Schema.TRef "B") ] } ]
         ~roots:[]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "duplicate class rejected" true
    (match
       Schema.make
         ~classes:
           [
             { Schema.cls_name = "A"; attrs = [] };
             { Schema.cls_name = "A"; attrs = [] };
           ]
         ~roots:[]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_schema_conforms () =
  let s = derby_schema () in
  let patient =
    Value.Tuple
      [
        ("name", Value.String "Daisy");
        ("mrn", Value.Int 7);
        ("primary_care_provider", Value.Ref (Rid.make ~file:0 ~page:0 ~slot:0));
      ]
  in
  let ty = Schema.TTuple (Schema.find_class s "Patient").Schema.attrs in
  check_bool "conforms" true (Schema.conforms s ty patient);
  check_bool "wrong type rejected" false
    (Schema.conforms s ty (Value.set_field patient "mrn" (Value.String "x")));
  check_bool "nil reference ok" true
    (Schema.conforms s ty (Value.set_field patient "primary_care_provider" Value.Nil));
  check_int "class ids distinct" 1
    (abs (Schema.class_id s "Provider" - Schema.class_id s "Patient"))

(* --- Object header --- *)

let test_header_roundtrip () =
  let h = Obj_header.create ~class_id:3 ~indexed:true in
  let h = Obj_header.add_index h 5 in
  let h = Obj_header.add_index h 9 in
  let decoded, len = Obj_header.decode (Obj_header.encode h) ~pos:0 in
  check_int "consumed" (Obj_header.encoded_size h) len;
  check_int "class" 3 (Obj_header.class_id decoded);
  Alcotest.(check (list int)) "indexes" [ 5; 9 ] (Obj_header.indexes decoded)

let test_header_size_depends_on_slots () =
  let plain = Obj_header.create ~class_id:0 ~indexed:false in
  let slotted = Obj_header.create ~class_id:0 ~indexed:true in
  check_int "unindexed: 3 bytes" 3 (Obj_header.encoded_size plain);
  check_int "indexed: room for 8 indexes" (4 + 16) (Obj_header.encoded_size slotted);
  check_bool "add_index without slots rejected" true
    (match Obj_header.add_index plain 1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_header_slot_growth () =
  let h = ref (Obj_header.create ~class_id:0 ~indexed:true) in
  for i = 0 to 9 do
    h := Obj_header.add_index !h i
  done;
  check_int "10 memberships" 10 (List.length (Obj_header.indexes !h));
  let h = Obj_header.remove_index !h 4 in
  check_int "one removed" 9 (List.length (Obj_header.indexes h));
  (* idempotent add *)
  let h = Obj_header.add_index h 5 in
  check_int "re-add is idempotent" 9 (List.length (Obj_header.indexes h))

(* --- Handle table --- *)

let dummy_load () = (0, Handle.Whole (Value.Int 1))

let test_handles_refcount_and_zombies () =
  let sim = fresh_sim () in
  let tbl = Handle_table.create sim ~kind:Tb_sim.Cost_model.Fat ~zombie_limit:2 in
  let rid i = Rid.make ~file:0 ~page:i ~slot:0 in
  let h0 = Handle_table.acquire tbl (rid 0) ~load:dummy_load in
  check_int "one alloc" 1 sim.Tb_sim.Sim.counters.Tb_sim.Counters.handle_allocs;
  let h0' = Handle_table.acquire tbl (rid 0) ~load:(fun () -> Alcotest.fail "reload") in
  check_bool "same handle" true (h0 == h0');
  check_int "hit counted" 1 sim.Tb_sim.Sim.counters.Tb_sim.Counters.handle_hits;
  Handle_table.unreference tbl h0;
  Handle_table.unreference tbl h0';
  (* Zombie: resurrecting is free. *)
  let h0'' = Handle_table.acquire tbl (rid 0) ~load:(fun () -> Alcotest.fail "reload") in
  check_int "still one alloc" 1 sim.Tb_sim.Sim.counters.Tb_sim.Counters.handle_allocs;
  Handle_table.unreference tbl h0'';
  (* Push enough zombies to force real frees. *)
  for i = 1 to 5 do
    let h = Handle_table.acquire tbl (rid i) ~load:dummy_load in
    Handle_table.unreference tbl h
  done;
  check_bool "delayed frees happened" true
    (sim.Tb_sim.Sim.counters.Tb_sim.Counters.handle_frees > 0);
  check_bool "resident bounded" true (Handle_table.resident_count tbl <= 4)

let test_handles_double_unref_rejected () =
  let sim = fresh_sim () in
  let tbl = Handle_table.create sim ~kind:Tb_sim.Cost_model.Fat ~zombie_limit:8 in
  let h = Handle_table.acquire tbl (Rid.make ~file:0 ~page:0 ~slot:0) ~load:dummy_load in
  Handle_table.unreference tbl h;
  check_bool "double unref raises" true
    (match Handle_table.unreference tbl h with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_handles_memory_accounting () =
  let sim = fresh_sim () in
  let tbl = Handle_table.create sim ~kind:Tb_sim.Cost_model.Fat ~zombie_limit:100 in
  let before = Tb_sim.Sim.working_bytes sim in
  let hs =
    List.init 10 (fun i ->
        Handle_table.acquire tbl (Rid.make ~file:0 ~page:i ~slot:0) ~load:dummy_load)
  in
  check_int "60 bytes per fat handle" (before + 600) (Tb_sim.Sim.working_bytes sim);
  List.iter (Handle_table.unreference tbl) hs;
  Handle_table.flush tbl;
  check_int "flush releases" before (Tb_sim.Sim.working_bytes sim)

let test_compact_handles_cheaper () =
  let run kind =
    let sim = fresh_sim () in
    let tbl = Handle_table.create sim ~kind ~zombie_limit:0 in
    for i = 1 to 1000 do
      let h =
        Handle_table.acquire tbl (Rid.make ~file:0 ~page:i ~slot:0) ~load:dummy_load
      in
      Handle_table.unreference tbl h
    done;
    Tb_sim.Sim.elapsed_s sim
  in
  check_bool "fat handles dominate CPU" true
    (run Tb_sim.Cost_model.Fat > 5.0 *. run Tb_sim.Cost_model.Compact)

(* --- Big collections --- *)

let test_big_collection_roundtrip () =
  let _, stack = fresh_stack () in
  let heap = Tb_storage.Heap_file.create stack ~name:"coll" in
  let elems = List.init 1000 (fun i -> Value.Ref (Rid.make ~file:1 ~page:i ~slot:0)) in
  let head = Big_collection.create heap elems in
  check_int "length" 1000 (Big_collection.length heap head);
  let back = Big_collection.to_list heap head in
  check_bool "order preserved" true (List.for_all2 Value.equal elems back);
  check_bool "spilled across several chunks/pages" true
    (Tb_storage.Heap_file.page_count heap >= 2)

let test_big_collection_empty () =
  let _, stack = fresh_stack () in
  let heap = Tb_storage.Heap_file.create stack ~name:"coll" in
  let head = Big_collection.create heap [] in
  check_int "empty" 0 (Big_collection.length heap head)

(* --- B+-tree --- *)

let test_btree_basic () =
  let _, stack = fresh_stack () in
  let tree = Btree.create stack ~name:"t" in
  let rid i = Rid.make ~file:9 ~page:i ~slot:0 in
  for i = 0 to 999 do
    Btree.insert tree ~key:(i * 7 mod 1000) ~rid:(rid i)
  done;
  check_int "count" 1000 (Btree.entry_count tree);
  Btree.check_invariants tree;
  (* Every key from the permutation is present exactly once. *)
  let found = Btree.search tree ~key:0 in
  check_int "single match" 1 (List.length found);
  check_bool "bounds" true (Btree.key_bounds tree = Some (0, 999))

let test_btree_duplicates () =
  let _, stack = fresh_stack () in
  let tree = Btree.create stack ~name:"t" in
  for i = 0 to 499 do
    Btree.insert tree ~key:(i mod 5) ~rid:(Rid.make ~file:0 ~page:i ~slot:0)
  done;
  Btree.check_invariants tree;
  check_int "100 rids under key 3" 100 (List.length (Btree.search tree ~key:3));
  (* duplicate (key, rid) ignored *)
  Btree.insert tree ~key:3 ~rid:(Rid.make ~file:0 ~page:3 ~slot:0);
  check_int "no duplicate entry" 500 (Btree.entry_count tree)

let test_btree_range () =
  let _, stack = fresh_stack () in
  let tree = Btree.create stack ~name:"t" in
  for i = 0 to 999 do
    Btree.insert tree ~key:i ~rid:(Rid.make ~file:0 ~page:i ~slot:0)
  done;
  let seen = ref [] in
  Btree.range tree ~lo:100 ~hi:200 (fun k _ -> seen := k :: !seen);
  check_int "100 keys in [100,200)" 100 (List.length !seen);
  check_int "first" 100 (List.hd (List.rev !seen));
  check_int "last" 199 (List.hd !seen);
  let all = ref 0 in
  Btree.range tree (fun _ _ -> incr all);
  check_int "unbounded range sees all" 1000 !all

let test_btree_delete () =
  let _, stack = fresh_stack () in
  let tree = Btree.create stack ~name:"t" in
  let rid i = Rid.make ~file:0 ~page:i ~slot:0 in
  for i = 0 to 99 do
    Btree.insert tree ~key:i ~rid:(rid i)
  done;
  check_bool "delete hits" true (Btree.delete tree ~key:50 ~rid:(rid 50));
  check_bool "second delete misses" false (Btree.delete tree ~key:50 ~rid:(rid 50));
  check_int "count" 99 (Btree.entry_count tree);
  check_int "gone" 0 (List.length (Btree.search tree ~key:50));
  Btree.check_invariants tree

let test_btree_mass_delete_rebalances () =
  (* Grow a three-level tree, then delete most of it: occupancy, ordering
     and the leaf chain must survive every merge/borrow, and the height
     must shrink back. *)
  let _, stack = fresh_stack ~server:256 ~client:1024 () in
  let tree = Btree.create stack ~name:"t" in
  let n = 30_000 in
  let rid i = Rid.make ~file:0 ~page:i ~slot:0 in
  for i = 0 to n - 1 do
    Btree.insert tree ~key:(i * 17 mod n) ~rid:(rid i)
  done;
  Btree.check_invariants tree;
  (* Delete 90% in a scattered order. *)
  for i = 0 to n - 1 do
    if i mod 10 <> 3 then
      ignore (Btree.delete tree ~key:(i * 17 mod n) ~rid:(rid i))
  done;
  Btree.check_invariants tree;
  check_int "10% left" (n / 10) (Btree.entry_count tree);
  (* Every survivor is still findable, every deleted key gone. *)
  for i = 0 to (n / 100) - 1 do
    let key = i * 17 mod n in
    let found = List.exists (Rid.equal (rid i)) (Btree.search tree ~key) in
    check_bool (Printf.sprintf "entry %d presence" i) (i mod 10 = 3) found
  done;
  (* Empty it out completely. *)
  for i = 0 to n - 1 do
    ignore (Btree.delete tree ~key:(i * 17 mod n) ~rid:(rid i))
  done;
  check_int "empty" 0 (Btree.entry_count tree);
  Btree.check_invariants tree;
  check_bool "no keys left" true (Btree.key_bounds tree = None);
  (* And it still works afterwards. *)
  Btree.insert tree ~key:5 ~rid:(rid 1);
  check_int "reusable" 1 (List.length (Btree.search tree ~key:5))

let btree_delete_model_prop =
  QCheck.Test.make ~name:"btree: delete agrees with a model under churn"
    ~count:15
    QCheck.(pair (int_range 1 2000) (int_range 0 10_000))
    (fun (n, seed) ->
      let _, stack = fresh_stack ~server:128 ~client:512 () in
      let tree = Btree.create stack ~name:"t" in
      let rng = Tb_sim.Rng.create seed in
      let module S = Set.Make (Int) in
      let live = ref S.empty in
      for i = 0 to n - 1 do
        Btree.insert tree ~key:i ~rid:(Rid.make ~file:0 ~page:i ~slot:0);
        live := S.add i !live
      done;
      for _ = 1 to n do
        let k = Tb_sim.Rng.int rng n in
        if Tb_sim.Rng.bool rng then begin
          ignore (Btree.delete tree ~key:k ~rid:(Rid.make ~file:0 ~page:k ~slot:0));
          live := S.remove k !live
        end
      done;
      Btree.check_invariants tree;
      Btree.entry_count tree = S.cardinal !live
      && S.for_all (fun k -> Btree.search tree ~key:k <> []) !live)

let test_btree_clustering_factor () =
  let _, stack = fresh_stack () in
  let sequential = Btree.create stack ~name:"seq" in
  for i = 0 to 2999 do
    Btree.insert sequential ~key:i ~rid:(Rid.make ~file:0 ~page:(i / 50) ~slot:(i mod 50))
  done;
  check_bool "creation-order key is clustered" true
    (Btree.clustering_factor sequential > 0.95);
  let rng = Tb_sim.Rng.create 5 in
  let random = Btree.create stack ~name:"rand" in
  let perm = Tb_sim.Rng.permutation rng 3000 in
  for i = 0 to 2999 do
    Btree.insert random ~key:perm.(i)
      ~rid:(Rid.make ~file:0 ~page:(i / 50) ~slot:(i mod 50))
  done;
  check_bool "random key is unclustered" true (Btree.clustering_factor random < 0.6)

let btree_model_prop =
  QCheck.Test.make ~name:"btree agrees with a sorted-map model" ~count:60
    QCheck.(
      small_list (pair (int_range 0 50) (int_range 0 1000)))
    (fun ops ->
      let _, stack = fresh_stack () in
      let tree = Btree.create stack ~name:"t" in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      List.iter
        (fun (key, page) ->
          let rid = Rid.make ~file:0 ~page ~slot:0 in
          Btree.insert tree ~key ~rid;
          model :=
            M.update key
              (function
                | None -> Some [ rid ]
                | Some rids ->
                    if List.exists (Rid.equal rid) rids then Some rids
                    else Some (rid :: rids))
              !model)
        ops;
      Btree.check_invariants tree;
      M.for_all
        (fun key rids ->
          let got = Btree.search tree ~key in
          List.length got = List.length rids
          && List.for_all (fun r -> List.exists (Rid.equal r) got) rids)
        !model)

let test_btree_index_pages_cost_ios () =
  let sim, stack = fresh_stack ~server:4 ~client:8 () in
  let tree = Btree.create stack ~name:"t" in
  for i = 0 to 9999 do
    Btree.insert tree ~key:i ~rid:(Rid.make ~file:0 ~page:i ~slot:0)
  done;
  check_bool "tree spans many pages" true (Btree.page_count tree > 10);
  Tb_storage.Cache_stack.clear stack;
  Tb_sim.Sim.reset sim;
  let n = ref 0 in
  Btree.range tree (fun _ _ -> incr n);
  check_int "full scan" 10000 !n;
  check_bool "cold index scan reads leaf pages" true
    (sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads > 10)

(* --- Histograms --- *)

let test_histogram_matches_uniform_on_uniform_keys () =
  let _, stack = fresh_stack () in
  let tree = Btree.create stack ~name:"t" in
  for i = 0 to 9_999 do
    Btree.insert tree ~key:i ~rid:(Rid.make ~file:0 ~page:i ~slot:0)
  done;
  let ix = Index_def.make ~id:0 ~name:"t" ~cls:"C" ~attr:"a" ~tree in
  Index_def.refresh_stats ix;
  let uniform = Index_def.selectivity_below ix 2_500 in
  Index_def.build_histogram ix ~buckets:32;
  let hist = Index_def.selectivity_below ix 2_500 in
  check_bool "both near 0.25" true
    (abs_float (uniform -. 0.25) < 0.01 && abs_float (hist -. 0.25) < 0.01)

let test_histogram_beats_uniform_on_skew () =
  (* 90% of keys in [0, 1000), a thin tail to 100_000: the uniform model is
     off by an order of magnitude, the histogram is not. *)
  let _, stack = fresh_stack () in
  let tree = Btree.create stack ~name:"t" in
  for i = 0 to 8_999 do
    Btree.insert tree ~key:(i mod 1_000) ~rid:(Rid.make ~file:0 ~page:i ~slot:0)
  done;
  for i = 0 to 999 do
    Btree.insert tree ~key:(1_000 + (i * 99)) ~rid:(Rid.make ~file:1 ~page:i ~slot:0)
  done;
  let ix = Index_def.make ~id:0 ~name:"t" ~cls:"C" ~attr:"a" ~tree in
  Index_def.refresh_stats ix;
  (* True selectivity of key < 1000 is 0.9. *)
  let uniform = Index_def.selectivity_below ix 1_000 in
  Index_def.build_histogram ix ~buckets:512;
  let hist = Index_def.selectivity_below ix 1_000 in
  check_bool "uniform badly off" true (uniform < 0.3);
  check_bool "histogram close to truth" true (abs_float (hist -. 0.9) < 0.05)

(* --- Transactions --- *)

let test_txn_out_of_memory () =
  let sim = fresh_sim () in
  let txn = Transaction.create sim Transaction.Standard ~uncommitted_limit:100 in
  check_bool "limit enforced" true
    (match
       for _ = 1 to 200 do
         Transaction.on_write txn ~bytes:64
       done
     with
    | exception Transaction.Out_of_memory -> true
    | () -> false)

let test_txn_load_mode_free () =
  let sim = fresh_sim () in
  let txn = Transaction.create sim Transaction.Load_off ~uncommitted_limit:10 in
  for _ = 1 to 1000 do
    Transaction.on_write txn ~bytes:256
  done;
  check_int "no log writes" 0 sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_writes;
  let sim2 = fresh_sim () in
  let txn2 = Transaction.create sim2 Transaction.Standard ~uncommitted_limit:10_000 in
  for _ = 1 to 1000 do
    Transaction.on_write txn2 ~bytes:256
  done;
  check_bool "standard mode logs" true
    (sim2.Tb_sim.Sim.counters.Tb_sim.Counters.disk_writes > 50)

(* --- Database --- *)

let mk_db ?(txn_mode = Transaction.Load_off) () =
  let sim = fresh_sim () in
  let db =
    Database.create sim ~schema:(derby_schema ()) ~server_pages:64
      ~client_pages:256 ~txn_mode ()
  in
  let pf = Database.new_file db ~name:"providers" in
  let qf = Database.new_file db ~name:"patients" in
  Database.bind_class db ~cls:"Provider" pf;
  Database.bind_class db ~cls:"Patient" qf;
  (sim, db)

let provider ?(clients = []) name upin =
  Value.Tuple
    [
      ("name", Value.String name);
      ("upin", Value.Int upin);
      ("clients", Value.Set clients);
    ]

let patient name mrn pcp =
  Value.Tuple
    [
      ("name", Value.String name);
      ("mrn", Value.Int mrn);
      ("primary_care_provider", pcp);
    ]

let test_db_insert_and_read () =
  let _, db = mk_db () in
  let prid = Database.insert_object db ~cls:"Provider" (provider "Asterix" 1) in
  let parid =
    Database.insert_object db ~cls:"Patient" (patient "Obelix" 14 (Value.Ref prid))
  in
  let _, v = Database.read_object db parid in
  check_int "mrn" 14 (Value.to_int (Value.field v "mrn"));
  check_bool "pcp ref" true
    (Rid.equal prid (Value.to_ref (Value.field v "primary_care_provider")));
  let h = Database.acquire db parid in
  check_string "get_att through handle" "Obelix"
    (Value.to_string_exn (Database.get_att db h "name"));
  check_string "class name" "Patient" (Database.class_name db h);
  Database.unref db h

let test_db_lazy_handle_matches_read_object () =
  (* A Handle decodes attributes on demand; whatever the access order, what
     it returns must agree with the eager [read_object] decode. *)
  let _, db = mk_db () in
  let clients = List.init 3 (fun i -> Value.Ref (Rid.make ~file:1 ~page:i ~slot:0)) in
  let prid = Database.insert_object db ~cls:"Provider" (provider ~clients "Lazy" 42) in
  let _, whole = Database.read_object db prid in
  let h = Database.acquire db prid in
  (* Partial decode: touch one attribute, repeatedly.  The packed repr
     re-decodes from the pinned page bytes on every access, so the
     guarantee is value identity, not physical sharing. *)
  check_int "upin" 42 (Value.to_int (Database.get_att db h "upin"));
  check_bool "repeat access returns the same value" true
    (Value.equal (Database.get_att db h "upin") (Database.get_att db h "upin"));
  (* Slot-compiled access sees the same attribute. *)
  let slot = Database.attr_slot db ~cls:"Provider" "name" in
  check_string "slot access" "Lazy"
    (Value.to_string_exn (Database.get_att_slot db h slot));
  (* Every attribute agrees with the eager decoder... *)
  (match whole with
  | Value.Tuple fields ->
      List.iter
        (fun (name, v) ->
          check_bool ("attr " ^ name) true
            (Value.equal v (Database.get_att db h name)))
        fields
  | _ -> Alcotest.fail "expected tuple");
  (* ...and so does the fully materialized view. *)
  check_bool "handle_value equals read_object" true
    (Value.equal whole (Database.handle_value db h));
  Database.unref db h

let test_db_conformance_enforced () =
  let _, db = mk_db () in
  check_bool "bad value rejected" true
    (match Database.insert_object db ~cls:"Provider" (Value.Int 3) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_db_large_set_spills () =
  let _, db = mk_db () in
  let clients = List.init 1000 (fun i -> Value.Ref (Rid.make ~file:1 ~page:i ~slot:0)) in
  let prid = Database.insert_object db ~cls:"Provider" (provider ~clients "Big" 1) in
  let _, v = Database.read_object db prid in
  (match Value.field v "clients" with
  | Value.Big_set _ -> ()
  | _ -> Alcotest.fail "expected spilled collection");
  check_int "iter_set sees all elements" 1000
    (Database.set_length db (Value.field v "clients"));
  (* A small set stays inline. *)
  let small =
    Database.insert_object db ~cls:"Provider"
      (provider ~clients:[ Value.Ref (Rid.make ~file:1 ~page:0 ~slot:0) ] "Small" 2)
  in
  let _, v = Database.read_object db small in
  match Value.field v "clients" with
  | Value.Set _ -> ()
  | _ -> Alcotest.fail "expected inline collection"

let test_db_scan_extent_filters_classes () =
  let sim = fresh_sim () in
  let db =
    Database.create sim ~schema:(derby_schema ()) ~server_pages:64
      ~client_pages:256 ~txn_mode:Transaction.Load_off ()
  in
  (* Shared file: the random/composition organizations. *)
  let shared = Database.new_file db ~name:"objects" in
  Database.bind_class db ~cls:"Provider" shared;
  Database.bind_class db ~cls:"Patient" shared;
  for i = 0 to 49 do
    let prid = Database.insert_object db ~cls:"Provider" (provider "p" i) in
    ignore
      (Database.insert_object db ~cls:"Patient" (patient "q" i (Value.Ref prid)))
  done;
  let n = ref 0 in
  Database.scan_extent db ~cls:"Patient" (fun _ -> incr n);
  check_int "only patients" 50 !n;
  check_int "cardinality" 50 (Database.cardinality db ~cls:"Provider")

let test_db_index_maintenance () =
  let _, db = mk_db () in
  let rids =
    List.init 100 (fun i ->
        Database.insert_object db ~cls:"Patient"
          (patient (Printf.sprintf "p%d" i) i Value.Nil))
  in
  let ix = Database.create_index db ~name:"mrn" ~cls:"Patient" ~attr:"mrn" in
  check_int "indexed all" 100 (Btree.entry_count ix.Index_def.tree);
  check_bool "creation-order key clustered" true (Index_def.is_clustered ix);
  (* Inserts after creation are indexed automatically. *)
  let extra =
    Database.insert_object db ~cls:"Patient" (patient "late" 1000 Value.Nil)
  in
  check_bool "new object findable" true
    (List.exists (Rid.equal extra) (Btree.search ix.Index_def.tree ~key:1000));
  (* Updates move the entry. *)
  let first = List.hd rids in
  Database.update_object db first (patient "p0" 777 Value.Nil);
  check_bool "old key gone" true
    (not (List.exists (Rid.equal first) (Btree.search ix.Index_def.tree ~key:0)));
  check_bool "new key present" true
    (List.exists (Rid.equal first) (Btree.search ix.Index_def.tree ~key:777));
  (* Deletes remove it. *)
  Database.delete_object db extra;
  check_int "deleted gone" 0 (List.length (Btree.search ix.Index_def.tree ~key:1000));
  (* Header membership was recorded. *)
  let header, _ = Database.read_object db first in
  Alcotest.(check (list int)) "membership" [ ix.Index_def.id ]
    (Obj_header.indexes header)

let test_db_first_index_reallocation_cost () =
  (* The Section 3.2 story: indexing after an unindexed load rewrites every
     object (headers grow), costing far more I/O than indexing objects that
     were created with slot space. *)
  let build ~indexed =
    let sim, db = mk_db () in
    for i = 0 to 999 do
      ignore
        (Database.insert_object db ~cls:"Patient" ~indexed
           (patient (Printf.sprintf "p%04d" i) i Value.Nil))
    done;
    Database.commit db;
    Database.cold_restart db;
    Tb_sim.Sim.reset sim;
    ignore (Database.create_index db ~name:"mrn" ~cls:"Patient" ~attr:"mrn");
    Database.commit db;
    (sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_writes, db)
  in
  let writes_realloc, db1 = build ~indexed:false in
  let writes_clean, db2 = build ~indexed:true in
  check_bool "reallocation writes more" true (writes_realloc > writes_clean);
  (* And it degrades physical clustering: relocated objects moved away. *)
  let ix1 = Option.get (Database.find_index db1 ~cls:"Patient" ~attr:"mrn") in
  let ix2 = Option.get (Database.find_index db2 ~cls:"Patient" ~attr:"mrn") in
  check_bool "clean load stays clustered" true
    (ix2.Index_def.clustering >= ix1.Index_def.clustering)

let test_analyze_builds_all_histograms () =
  let _, db = mk_db () in
  for i = 0 to 99 do
    ignore (Database.insert_object db ~cls:"Patient" (patient "p" i Value.Nil))
  done;
  let _ = Database.create_index db ~name:"mrn" ~cls:"Patient" ~attr:"mrn" in
  Database.analyze db;
  List.iter
    (fun ix ->
      check_bool "histogram installed" true (ix.Index_def.histogram <> None))
    (Database.indexes db)

let test_db_cold_restart () =
  let sim, db = mk_db () in
  let rid = Database.insert_object db ~cls:"Provider" (provider "x" 1) in
  Database.commit db;
  Database.cold_restart db;
  Tb_sim.Sim.reset sim;
  let h = Database.acquire db rid in
  Database.unref db h;
  check_bool "cold fetch hits the disk" true
    (sim.Tb_sim.Sim.counters.Tb_sim.Counters.disk_reads > 0)

let suite =
  [
    Alcotest.test_case "value: fields" `Quick test_value_field;
    QCheck_alcotest.to_alcotest codec_roundtrip;
    Alcotest.test_case "codec: every constructor roundtrips and skips" `Quick
      test_codec_every_constructor;
    Alcotest.test_case "codec: paper byte sizes" `Quick test_codec_int_is_4_bytes;
    Alcotest.test_case "schema: validation" `Quick test_schema_validation;
    Alcotest.test_case "schema: conformance" `Quick test_schema_conforms;
    Alcotest.test_case "header: roundtrip" `Quick test_header_roundtrip;
    Alcotest.test_case "header: size depends on slots" `Quick
      test_header_size_depends_on_slots;
    Alcotest.test_case "header: slot growth" `Quick test_header_slot_growth;
    Alcotest.test_case "handles: refcount and zombies" `Quick
      test_handles_refcount_and_zombies;
    Alcotest.test_case "handles: double unref rejected" `Quick
      test_handles_double_unref_rejected;
    Alcotest.test_case "handles: memory accounting" `Quick
      test_handles_memory_accounting;
    Alcotest.test_case "handles: compact kind is cheaper" `Quick
      test_compact_handles_cheaper;
    Alcotest.test_case "big collection: roundtrip" `Quick
      test_big_collection_roundtrip;
    Alcotest.test_case "big collection: empty" `Quick test_big_collection_empty;
    Alcotest.test_case "btree: basic" `Quick test_btree_basic;
    Alcotest.test_case "btree: duplicates" `Quick test_btree_duplicates;
    Alcotest.test_case "btree: range" `Quick test_btree_range;
    Alcotest.test_case "btree: delete" `Quick test_btree_delete;
    Alcotest.test_case "btree: mass delete rebalances" `Slow
      test_btree_mass_delete_rebalances;
    QCheck_alcotest.to_alcotest btree_delete_model_prop;
    Alcotest.test_case "btree: clustering factor" `Quick
      test_btree_clustering_factor;
    QCheck_alcotest.to_alcotest btree_model_prop;
    Alcotest.test_case "btree: index pages cost I/Os" `Quick
      test_btree_index_pages_cost_ios;
    Alcotest.test_case "histogram: uniform keys" `Quick
      test_histogram_matches_uniform_on_uniform_keys;
    Alcotest.test_case "histogram: beats uniform on skew" `Quick
      test_histogram_beats_uniform_on_skew;
    Alcotest.test_case "db: analyze installs histograms" `Quick
      test_analyze_builds_all_histograms;
    Alcotest.test_case "txn: out of memory" `Quick test_txn_out_of_memory;
    Alcotest.test_case "txn: load mode skips the log" `Quick
      test_txn_load_mode_free;
    Alcotest.test_case "db: insert/read/handle" `Quick test_db_insert_and_read;
    Alcotest.test_case "db: lazy handle matches read_object" `Quick
      test_db_lazy_handle_matches_read_object;
    Alcotest.test_case "db: conformance enforced" `Quick
      test_db_conformance_enforced;
    Alcotest.test_case "db: large sets spill" `Quick test_db_large_set_spills;
    Alcotest.test_case "db: extent scan filters classes" `Quick
      test_db_scan_extent_filters_classes;
    Alcotest.test_case "db: index maintenance" `Quick test_db_index_maintenance;
    Alcotest.test_case "db: first-index reallocation" `Quick
      test_db_first_index_reallocation_cost;
    Alcotest.test_case "db: cold restart" `Quick test_db_cold_restart;
  ]
