let () =
  Alcotest.run "treebench"
    [ ("sim", Sim_tests.suite); ("storage", Storage_tests.suite); ("store", Store_tests.suite); ("recovery", Recovery_tests.suite); ("btree_prop", Btree_prop_tests.suite); ("codec", Codec_tests.suite); ("query", Query_tests.suite); ("op", Op_tests.suite); ("parity", Parity_tests.suite); ("shard_parity", Shard_parity_tests.suite); ("chaos", Chaos_tests.suite); ("derby", Derby_tests.suite); ("statdb", Statdb_tests.suite); ("core", Core_tests.suite); ("oo7", Oo7_tests.suite); ("edge", Edge_tests.suite); ("invariance", Invariance_tests.suite) ]
