(* treelint — static analysis over the .cmt typed ASTs dune emits.

   Usage:
     treelint --config treelint.toml [--baseline FILE] [--json FILE]
              [--cmi FILE]... [--verbose] [--update-baseline] DIR...

   Each DIR is searched recursively for .cmt files.  When a DIR holds no
   cmts but _build/default/DIR does (the tool was launched from the source
   root rather than from inside _build), the build copy is scanned instead,
   so `dune exec tools/treelint/bin/treelint.exe -- ... lib` works as well
   as the @lint rule. *)

module Config = Treelint_config
module Diag = Treelint_diag
module Engine = Treelint_engine

let read_baseline path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l ->
          let l = String.trim l in
          go (if l = "" || l.[0] = '#' then acc else l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let usage () =
  prerr_endline
    "usage: treelint --config FILE [--baseline FILE] [--json FILE] [--cmi \
     FILE]... [--verbose] [--update-baseline] DIR...";
  exit 2

let () =
  let config_path = ref "" in
  let baseline_path = ref "" in
  let json_path = ref "" in
  let cmi_files = ref [] in
  let dirs = ref [] in
  let verbose = ref false in
  let update_baseline = ref false in
  let rec parse = function
    | [] -> ()
    | "--config" :: v :: rest ->
        config_path := v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline_path := v;
        parse rest
    | "--json" :: v :: rest ->
        json_path := v;
        parse rest
    | "--cmi" :: v :: rest ->
        cmi_files := v :: !cmi_files;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | "--update-baseline" :: rest ->
        update_baseline := true;
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "treelint: unknown option %s\n" arg;
        usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !config_path = "" || !dirs = [] then usage ();
  let config =
    try Config.load !config_path
    with Config.Parse_error msg ->
      Printf.eprintf "treelint: %s: %s\n" !config_path msg;
      exit 2
  in
  let baseline =
    if !baseline_path = "" then [] else read_baseline !baseline_path
  in
  let resolve dir =
    if Engine.find_cmts dir [] <> [] then dir
    else
      let built = Filename.concat (Filename.concat "_build" "default") dir in
      if Sys.file_exists built then built else dir
  in
  let dirs = List.map resolve (List.rev !dirs) in
  let extra_dirs = List.map Filename.dirname !cmi_files in
  let result = Engine.run ~config ~baseline ~extra_dirs ~dirs () in
  List.iter
    (fun d ->
      match d.Diag.status with
      | Diag.Violation -> Format.printf "%a@." Diag.pp d
      | Diag.Allowlisted reason ->
          if !verbose then
            Format.printf "%a (allowlisted: %s)@." Diag.pp d reason
      | Diag.Baselined ->
          if !verbose then Format.printf "%a (baselined)@." Diag.pp d)
    result.diagnostics;
  if !json_path <> "" then
    write_file !json_path (Diag.report_to_json result.diagnostics);
  if !update_baseline then begin
    let lines =
      List.filter_map
        (fun d ->
          match d.Diag.status with
          | Diag.Violation | Diag.Baselined -> Some (Diag.fingerprint d)
          | Diag.Allowlisted _ -> None)
        result.diagnostics
      |> List.sort_uniq String.compare
    in
    write_file !baseline_path
      ("# treelint baseline: grandfathered diagnostics, one fingerprint per \
        line.\n# Regenerate with --update-baseline; shrink it, never grow \
        it.\n" ^ String.concat "\n" lines
      ^ if lines = [] then "" else "\n");
    Printf.printf "treelint: baseline rewritten with %d entries\n"
      (List.length lines)
  end;
  Printf.printf
    "treelint: %d rules, %d files, %d violations (%d allowlisted, %d \
     baselined)\n"
    Engine.rule_count result.files_scanned result.violations result.allowlisted
    result.baselined;
  if result.violations > 0 && not !update_baseline then exit 1
