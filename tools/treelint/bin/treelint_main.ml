(* treelint — static analysis over the .cmt typed ASTs dune emits.

   Usage:
     treelint --config treelint.toml [--baseline FILE] [--json FILE]
              [--sarif FILE] [--cache FILE] [--explain RULE]
              [--cmi FILE]... [--verbose] [--update-baseline] DIR...

   Each DIR is searched recursively for .cmt files.  When a DIR holds no
   cmts but _build/default/DIR does (the tool was launched from the source
   root rather than from inside _build), the build copy is scanned instead,
   so `dune exec tools/treelint/bin/treelint.exe -- ... lib` works as well
   as the @lint rule.

   --sarif emits a SARIF 2.1.0 report (validated before writing).
   --cache keys the whole run on the digests of every scanned cmt plus the
   config and baseline files; a full hit replays the previous findings
   without opening a single cmt.
   --explain RULE prints the dataflow trace under each of RULE's
   diagnostics, including allowlisted/baselined ones.
   Exit status is 1 only when an error-severity violation remains;
   warning/note-severity findings report but do not gate. *)

module Config = Treelint_config
module Diag = Treelint_diag
module Engine = Treelint_engine
module Sarif = Treelint_sarif

let read_baseline path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l ->
          let l = String.trim l in
          go (if l = "" || l.[0] = '#' then acc else l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  end

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let usage () =
  prerr_endline
    "usage: treelint --config FILE [--baseline FILE] [--json FILE] [--sarif \
     FILE] [--cache FILE] [--explain RULE] [--cmi FILE]... [--verbose] \
     [--update-baseline] DIR...";
  exit 2

let () =
  let config_path = ref "" in
  let baseline_path = ref "" in
  let json_path = ref "" in
  let sarif_path = ref "" in
  let cache_path = ref "" in
  let explain = ref [] in
  let cmi_files = ref [] in
  let dirs = ref [] in
  let verbose = ref false in
  let update_baseline = ref false in
  let rec parse = function
    | [] -> ()
    | "--config" :: v :: rest ->
        config_path := v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline_path := v;
        parse rest
    | "--json" :: v :: rest ->
        json_path := v;
        parse rest
    | "--sarif" :: v :: rest ->
        sarif_path := v;
        parse rest
    | "--cache" :: v :: rest ->
        cache_path := v;
        parse rest
    | "--explain" :: v :: rest ->
        explain := v :: !explain;
        parse rest
    | "--cmi" :: v :: rest ->
        cmi_files := v :: !cmi_files;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | "--update-baseline" :: rest ->
        update_baseline := true;
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "treelint: unknown option %s\n" arg;
        usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !config_path = "" || !dirs = [] then usage ();
  let config =
    try Config.load !config_path
    with Config.Parse_error msg ->
      Printf.eprintf "treelint: %s: %s\n" !config_path msg;
      exit 2
  in
  let baseline =
    if !baseline_path = "" then [] else read_baseline !baseline_path
  in
  let resolve dir =
    if Engine.find_cmts dir [] <> [] then dir
    else
      let built = Filename.concat (Filename.concat "_build" "default") dir in
      if Sys.file_exists built then built else dir
  in
  let dirs = List.map resolve (List.rev !dirs) in
  let extra_dirs = List.map Filename.dirname !cmi_files in
  let cache =
    if !cache_path = "" then None
    else
      (* everything besides the cmts that shapes the result feeds the salt *)
      let salt =
        Treelint_cache.digest_string
          (String.concat "\x00"
             [ read_file !config_path; read_file !baseline_path ])
      in
      Some (!cache_path, salt)
  in
  let result = Engine.run ?cache ~config ~baseline ~extra_dirs ~dirs () in
  let explain_wanted d = List.mem d.Diag.rule !explain in
  List.iter
    (fun d ->
      (match d.Diag.status with
      | Diag.Violation ->
          Format.printf "%a [%s]@." Diag.pp d
            (Diag.severity_string d.Diag.severity)
      | Diag.Allowlisted reason ->
          if !verbose || explain_wanted d then
            Format.printf "%a (allowlisted: %s)@." Diag.pp d reason
      | Diag.Baselined ->
          if !verbose || explain_wanted d then
            Format.printf "%a (baselined)@." Diag.pp d);
      if explain_wanted d then Format.printf "%a" Diag.pp_trace d)
    result.diagnostics;
  if !json_path <> "" then
    write_file !json_path (Diag.report_to_json result.diagnostics);
  if !sarif_path <> "" then begin
    let sarif = Sarif.report result.diagnostics in
    (match Sarif.parse sarif with
    | Error msg ->
        Printf.eprintf "treelint: internal: emitted SARIF fails to parse: %s\n"
          msg;
        exit 2
    | Ok j -> (
        match Sarif.validate j with
        | Ok () -> ()
        | Error errs ->
            List.iter
              (Printf.eprintf "treelint: internal: SARIF invalid: %s\n")
              errs;
            exit 2));
    write_file !sarif_path sarif
  end;
  if !update_baseline then begin
    (* Stable order: the diagnostics are already sorted by file/line/col/
       rule/offender; keep the first occurrence of each fingerprint so the
       baseline reads in source order and rewrites are deterministic. *)
    let seen = Hashtbl.create 64 in
    let lines =
      List.filter_map
        (fun d ->
          match d.Diag.status with
          | Diag.Violation | Diag.Baselined ->
              let fp = Diag.fingerprint d in
              if Hashtbl.mem seen fp then None
              else begin
                Hashtbl.replace seen fp ();
                Some fp
              end
          | Diag.Allowlisted _ -> None)
        result.diagnostics
    in
    write_file !baseline_path
      ("# treelint baseline: grandfathered diagnostics, one fingerprint per \
        line,\n# in source order (file, line, rule).  Regenerate with \
        --update-baseline;\n# shrink it, never grow it.\n"
     ^ String.concat "\n" lines
      ^ if lines = [] then "" else "\n");
    Printf.printf "treelint: baseline rewritten with %d entries\n"
      (List.length lines)
  end;
  Printf.printf
    "treelint: %d rules, %d files, %d violations (%d allowlisted, %d \
     baselined)\n"
    Engine.rule_count result.files_scanned result.violations result.allowlisted
    result.baselined;
  let gating =
    List.exists
      (fun d ->
        d.Diag.status = Diag.Violation && d.Diag.severity = Diag.Error)
      result.diagnostics
  in
  if gating && not !update_baseline then exit 1
