(* Content-hash incremental cache.

   The cache key is the full analysis input: the digest of every scanned
   .cmt, plus an opaque [salt] the caller derives from everything else
   that shapes the result (config file, baseline file, tool version).
   Reuse is all-or-nothing: any drifted digest, added or removed file, or
   salt change discards the cache and the whole run recomputes.  That
   keeps the invariant trivial — a warm run's findings are byte-identical
   to a cold run's because they *are* the cold run's findings.

   The payload is the marshalled diagnostic list (plain data plus a
   mutable status field, which Marshal round-trips fine). *)

module Diag = Treelint_diag

let format_tag = "treelint-cache-3"

type key = {
  k_salt : string;
  k_files : (string * string) list;  (* cmt path -> Digest.to_hex, sorted *)
}

let digest_file path = Digest.to_hex (Digest.file path)

let digest_string s = Digest.to_hex (Digest.string s)

let key ~salt files =
  let entries =
    List.filter_map
      (fun f ->
        match digest_file f with
        | d -> Some (f, d)
        | exception Sys_error _ -> None)
      files
  in
  { k_salt = salt; k_files = List.sort compare entries }

type entry = {
  e_tag : string;
  e_key : key;
  e_diags : Diag.t list;
  e_files_scanned : int;
}

let load ~path (k : key) : (Diag.t list * int) option =
  if not (Sys.file_exists path) then None
  else
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        let r =
          match (Marshal.from_channel ic : entry) with
          | e when e.e_tag = format_tag && e.e_key = k ->
              Some (e.e_diags, e.e_files_scanned)
          | _ -> None
          | exception _ -> None
        in
        close_in_noerr ic;
        r

let store ~path (k : key) diags ~files_scanned =
  let tmp = path ^ ".tmp" in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
      Marshal.to_channel oc
        { e_tag = format_tag; e_key = k; e_diags = diags;
          e_files_scanned = files_scanned }
        [];
      close_out oc;
      (try Sys.rename tmp path with Sys_error _ -> ())
