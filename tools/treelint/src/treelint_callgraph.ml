(* Call graph over the CFGs of every scanned module.

   Resolution is name-based for qualified calls ("Operators.release_bytes")
   and stamp-based for local ones: a call whose callee is a let-bound
   function resolves through the enclosing fn's [fn_locals], then the
   module's toplevel binding table.  Unresolved calls are external —
   the rules treat them by name (config member lists) or worst-case.

   Summaries live here as an untyped store keyed by fn_id; the dataflow
   rules own their contents.  [fixpoint] drives rounds of per-function
   analysis until no summary changes, in deterministic module/function
   order (bounded: summaries only grow and the lattices are finite). *)

module Cfg = Treelint_cfg

type t = {
  fns : (string, Cfg.fn) Hashtbl.t;  (* fn_id -> fn *)
  mods : (string, Cfg.mod_cfg) Hashtbl.t;  (* module name -> cfg *)
  order : Cfg.fn list;  (* deterministic analysis order *)
}

let build (mods : Cfg.mod_cfg list) : t =
  let fns = Hashtbl.create 256 in
  let mtbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun mc ->
      Hashtbl.replace mtbl mc.Cfg.mc_module mc;
      List.iter
        (fun (fn : Cfg.fn) ->
          Hashtbl.replace fns fn.Cfg.fn_id fn;
          order := fn :: !order)
        mc.Cfg.mc_fns)
    mods;
  { fns; mods = mtbl; order = List.rev !order }

let find t fn_id = Hashtbl.find_opt t.fns fn_id

(* Resolve a call made from [fn] to a known fn_id, if any.  Qualified
   names hit the table directly; an unqualified name is first scoped to
   the caller's module (a call to a sibling toplevel), and stamp-based
   resolution through [fn_locals]/[mc_toplevel] covers let-bound
   functions whatever their printed name. *)
let resolve t (fn : Cfg.fn) (c : Cfg.call) : string option =
  let by_name name =
    if name <> "" && Hashtbl.mem t.fns name then Some name else None
  in
  let by_stamp () =
    if c.Cfg.c_fn < 0 then None
    else
      match List.assoc_opt c.Cfg.c_fn fn.Cfg.fn_locals with
      | Some id -> if Hashtbl.mem t.fns id then Some id else None
      | None -> (
          match Hashtbl.find_opt t.mods fn.Cfg.fn_module with
          | Some mc -> (
              match List.assoc_opt c.Cfg.c_fn mc.Cfg.mc_toplevel with
              | Some id when Hashtbl.mem t.fns id -> Some id
              | _ -> None)
          | None -> None)
  in
  match by_name c.Cfg.c_name with
  | Some id -> Some id
  | None -> (
      match by_stamp () with
      | Some id -> Some id
      | None ->
          if String.contains c.Cfg.c_name '.' then None
          else by_name (fn.Cfg.fn_module ^ "." ^ c.Cfg.c_name))

(* Generic summary store: the rules stash whatever record they like. *)
type 'a summaries = (string, 'a) Hashtbl.t

let new_summaries () : 'a summaries = Hashtbl.create 256
let summary (s : 'a summaries) fn_id = Hashtbl.find_opt s fn_id

(* Run [analyze] over every function until summaries stabilize.
   [analyze] returns true when it changed the summary store.  The round
   cap is a backstop: the rule lattices are finite so convergence is
   expected well before it. *)
let fixpoint t ~max_rounds analyze =
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    List.iter (fun fn -> if analyze fn then changed := true) t.order
  done
